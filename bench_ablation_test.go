package bullion

// Ablation benchmarks for the design choices DESIGN.md calls out:
// cascade recursion depth (§2.6's open question), sparse restart interval,
// column reordering + coalesced reads (§2.5), and the normalized-BF16
// packing (§2.4 opportunity 2).

import (
	"fmt"
	"math/rand"
	"testing"

	"bullion/internal/core"
	"bullion/internal/enc"
	"bullion/internal/iostats"
	"bullion/internal/quant"
	"bullion/internal/sparse"
	"bullion/internal/workload"
)

// BenchmarkAblationCascadeDepth answers §2.6's "what is the ideal recursion
// depth" with measurements: deeper cascades on composite-friendly data.
func BenchmarkAblationCascadeDepth(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(43))
	vs := genBenchRuns(rng, 65536)
	raw := 8 * len(vs)
	for depth := 0; depth <= 3; depth++ {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			opts := enc.DefaultOptions()
			opts.MaxDepth = depth
			var size int
			b.SetBytes(int64(raw))
			for i := 0; i < b.N; i++ {
				encoded, err := enc.EncodeInts(nil, vs, opts)
				if err != nil {
					b.Fatal(err)
				}
				size = len(encoded)
			}
			b.ReportMetric(100*float64(size)/float64(raw), "size_%ofplain")
		})
	}
}

// BenchmarkAblationSparseRestart sweeps the restart interval: shorter
// intervals bound delta chains (cheaper partial decode) at a size cost.
func BenchmarkAblationSparseRestart(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(44))
	vectors := workload.SlidingWindows(rng, 2048, 256, 0.4)
	raw := 0
	for _, v := range vectors {
		raw += 8 * len(v)
	}
	for _, interval := range []int{8, 32, 64, 256} {
		b.Run(fmt.Sprint(interval), func(b *testing.B) {
			b.ReportAllocs()
			opts := sparse.DefaultOptions()
			opts.RestartInterval = interval
			var size int
			b.SetBytes(int64(raw))
			for i := 0; i < b.N; i++ {
				encoded, err := sparse.EncodeColumn(vectors, opts)
				if err != nil {
					b.Fatal(err)
				}
				size = len(encoded)
			}
			b.ReportMetric(100*float64(size)/float64(raw), "size_%ofplain")
		})
	}
}

// BenchmarkReorderCoalesced measures §2.5 column reordering: a 20-column
// hot set projected from a 200-column table, per read strategy.
func BenchmarkReorderCoalesced(b *testing.B) {
	b.ReportAllocs()
	const nCols = 200
	const nRows = 10000
	hot := make([]string, 20)
	for i := range hot {
		hot[i] = fmt.Sprintf("feat_%03d", i*10)
	}
	build := func(reorder bool) (*core.File, *iostats.Counters) {
		rng := rand.New(rand.NewSource(45))
		fields := make([]core.Field, nCols)
		cols := make([]core.ColumnData, nCols)
		for i := 0; i < nCols; i++ {
			fields[i] = core.Field{Name: fmt.Sprintf("feat_%03d", i), Type: core.Type{Kind: core.Int64}}
			vs := make(core.Int64Data, nRows)
			for r := range vs {
				vs[r] = rng.Int63n(1 << 20)
			}
			cols[i] = vs
		}
		schema, err := core.NewSchema(fields...)
		if err != nil {
			b.Fatal(err)
		}
		if reorder {
			reordered, perm, err := core.ReorderFields(schema, hot)
			if err != nil {
				b.Fatal(err)
			}
			schema = reordered
			cols = core.ReorderBatchColumns(cols, perm)
		}
		batch, err := core.NewBatch(schema, cols)
		if err != nil {
			b.Fatal(err)
		}
		mf := &benchFile{}
		w, err := core.NewWriter(mf, schema, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Write(batch); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		var c iostats.Counters
		c.Reset()
		f, err := core.Open(&iostats.ReaderAt{R: mf, C: &c}, mf.Size())
		if err != nil {
			b.Fatal(err)
		}
		return f, &c
	}

	for _, tc := range []struct {
		name     string
		reorder  bool
		coalesce bool
	}{
		{"scattered-naive", false, false},
		{"scattered-coalesced", false, true},
		{"hotfirst-coalesced", true, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			f, c := build(tc.reorder)
			b.ResetTimer()
			var ops int64
			for i := 0; i < b.N; i++ {
				before := c.Snapshot()
				var err error
				if tc.coalesce {
					_, err = f.ProjectCoalesced(hot...)
				} else {
					_, err = f.Project(hot...)
				}
				if err != nil {
					b.Fatal(err)
				}
				ops += c.Snapshot().Sub(before).ReadOps
			}
			b.ReportMetric(float64(ops)/float64(b.N), "read_ops/op")
		})
	}
}

// BenchmarkNormalizedBF16 measures the §2.4 opportunity: 12-bit packing of
// normalized embeddings vs raw BF16 and the general cascade.
func BenchmarkNormalizedBF16(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(46))
	embs := workload.Embeddings(rng, 2048, 64)
	flat := make([]float32, 0, 2048*64)
	for _, e := range embs {
		flat = append(flat, e...)
	}
	rawBF16 := 2 * len(flat)

	b.Run("pack", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(4 * len(flat)))
		var size int
		for i := 0; i < b.N; i++ {
			size = len(quant.EncodeNormalizedEmbedding(flat))
		}
		b.ReportMetric(100*float64(size)/float64(rawBF16), "size_%ofbf16")
	})
	b.Run("unpack", func(b *testing.B) {
		b.ReportAllocs()
		encoded := quant.EncodeNormalizedEmbedding(flat)
		b.SetBytes(int64(4 * len(flat)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := quant.DecodeNormalizedEmbedding(encoded); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cascade-baseline", func(b *testing.B) {
		b.ReportAllocs()
		bits, err := quant.Quantize(flat, quant.BF16)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(4 * len(flat)))
		var size int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			encoded, err := enc.EncodeInts(nil, bits, enc.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			size = len(encoded)
		}
		b.ReportMetric(100*float64(size)/float64(rawBF16), "size_%ofbf16")
	})
}

// BenchmarkFooterRoundTrip measures the compact footer itself: marshal and
// zero-copy open at production widths.
func BenchmarkFooterOpen(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{1000, 10000, 20000} {
		b.Run(fmt.Sprint(n), func(b *testing.B) {
			b.ReportAllocs()
			mf := buildWideBullion(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Open(mf, mf.Size()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
