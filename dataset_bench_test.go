package bullion

// Dataset-layer benchmarks: an 8-file dataset of 16 int64 columns, keys
// globally increasing so each member file covers a disjoint key/row
// range. Three effects are measured (recorded in BENCH_scan.json):
//
//   - multi-file overlap: FileConcurrency 8 vs 1 (single-file-sequential)
//     on the 1 ms-per-ReadAt blob model — concurrent member engines hide
//     each other's storage latency;
//   - file-level pruning: a selective Range touches one member file;
//     ReadOps confirms the other seven are never read (they are never
//     even opened — pruning happens on the manifest alone);
//   - allocation flatness: the in-memory variant drives the CI allocs/op
//     ceiling alongside the single-file coalesced-scan ceiling.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"
)

const (
	dsBenchFiles   = 8
	dsBenchRows    = 8192 // rows per member file
	dsBenchCols    = 16
	dsBenchLatency = time.Millisecond
)

var dsBench struct {
	once sync.Once
	dir  string
	mem  *Dataset // direct readers (page-cache-hot model)
	blob *Dataset // every member ReadAt carries dsBenchLatency
}

// dsBenchDataset builds the shared on-disk dataset once per process and
// opens one handle per storage model (member opens are cached per
// handle, so steady-state iterations issue data reads only).
func dsBenchDataset(b *testing.B, latency time.Duration) *Dataset {
	b.Helper()
	dsBench.once.Do(func() {
		dir, err := os.MkdirTemp("", "bullion-dsbench")
		if err != nil {
			panic(err)
		}
		dsBench.dir = dir
		fields := make([]Field, dsBenchCols)
		for c := range fields {
			fields[c] = Field{Name: fmt.Sprintf("feat_%03d", c), Type: Type{Kind: Int64}}
		}
		fields[0].Name = "key"
		schema, err := NewSchema(fields...)
		if err != nil {
			panic(err)
		}
		opts := DefaultOptions()
		opts.GroupRows = dsBenchRows
		opts.Compliance = Level1
		ds, err := CreateDataset(dir, schema, &DatasetOptions{Writer: opts})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(4177))
		for f := 0; f < dsBenchFiles; f++ {
			cols := make([]ColumnData, dsBenchCols)
			for c := range cols {
				vals := make(Int64Data, dsBenchRows)
				if c == 0 {
					for r := range vals {
						vals[r] = int64(f*dsBenchRows + r)
					}
				} else {
					for r := range vals {
						vals[r] = rng.Int63n(1 << 20)
					}
				}
				cols[c] = vals
			}
			batch, err := NewBatch(schema, cols)
			if err != nil {
				panic(err)
			}
			if err := ds.Append(batch); err != nil {
				panic(err)
			}
		}
		ds.Close()

		// DisableCache keeps these benches measuring the raw scan path:
		// with the shared artifact cache on, the page tier would absorb
		// the modeled blob latency and readops/op would collapse to the
		// cache-miss fraction (that effect has its own benchmark pair in
		// rescan_bench_test.go).
		if dsBench.mem, err = OpenDataset(dir, &DatasetOptions{DisableCache: true}); err != nil {
			panic(err)
		}
		dsBench.blob, err = OpenDataset(dir, &DatasetOptions{
			DisableCache: true,
			WrapReader: func(name string, r io.ReaderAt, size int64) io.ReaderAt {
				return &latencyReaderAt{r: r, d: dsBenchLatency}
			},
		})
		if err != nil {
			panic(err)
		}
	})
	if latency > 0 {
		return dsBench.blob
	}
	return dsBench.mem
}

// dsBenchHot is the blob benches' projection: 2 physically adjacent
// columns, so each member file costs exactly one coalesced data read and
// the member's wall-clock is dominated by storage latency — the axis the
// FileConcurrency comparison isolates. The in-memory benches project all
// 16 columns (decode-bound).
var dsBenchHot = []string{"key", "feat_001"}

// benchDatasetScan drives one full (or Range-restricted) dataset scan per
// iteration, verifying row counts and reporting rows/sec, readops, and
// file pruning.
func benchDatasetScan(b *testing.B, fileConc int, latency time.Duration, rng *RowRange, cols []string) {
	ds := dsBenchDataset(b, latency)
	wantRows := dsBenchFiles * dsBenchRows
	if rng != nil {
		wantRows = int(rng.Hi - rng.Lo)
	}
	opts := DatasetScanOptions{
		ScanOptions: ScanOptions{
			Columns:      cols,
			BatchRows:    dsBenchRows,
			Workers:      1, // isolate the file-level axis
			Range:        rng,
			ReuseBatches: true,
		},
		FileConcurrency: fileConc,
	}
	// Warm member handles (footer opens) outside the timed region.
	warm, err := ds.Scan(opts)
	if err != nil {
		b.Fatal(err)
	}
	warm.Close()

	b.ReportAllocs()
	b.ResetTimer()
	var readOps, pruned int64
	for i := 0; i < b.N; i++ {
		sc, err := ds.Scan(opts)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			batch, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			rows += batch.NumRows()
			sc.Recycle(batch)
		}
		stats := sc.Stats()
		readOps += stats.ReadOps
		pruned += int64(stats.FilesPruned)
		sc.Close()
		if rows != wantRows {
			b.Fatalf("scanned %d rows, want %d", rows, wantRows)
		}
	}
	b.ReportMetric(float64(readOps)/float64(b.N), "readops/op")
	b.ReportMetric(float64(pruned)/float64(b.N), "filespruned/op")
	rows := float64(wantRows) * float64(b.N)
	b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/sec")
}

// In-memory, full 16-column projection: the allocation-flatness axis (CI
// pins allocs/op on the 1-file-at-a-time variant).
func BenchmarkDatasetScan1(b *testing.B) { benchDatasetScan(b, 1, 0, nil, nil) }
func BenchmarkDatasetScan8(b *testing.B) { benchDatasetScan(b, 8, 0, nil, nil) }

// Blob, hot 2-column projection: FileConcurrency 8 vs the
// single-file-sequential baseline on 1 ms-latency storage — the
// acceptance pair.
func BenchmarkDatasetScanBlob1(b *testing.B) { benchDatasetScan(b, 1, dsBenchLatency, nil, dsBenchHot) }
func BenchmarkDatasetScanBlob8(b *testing.B) { benchDatasetScan(b, 8, dsBenchLatency, nil, dsBenchHot) }

// Pruned: a selective Range covering exactly member file 5. FilesPruned
// must be 7 and readops/op counts only the matching file's reads.
func BenchmarkDatasetScanPrunedBlob(b *testing.B) {
	benchDatasetScan(b, 8, dsBenchLatency, &RowRange{Lo: 5 * dsBenchRows, Hi: 6 * dsBenchRows}, dsBenchHot)
}
