package bullion

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func tmpPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func adsMini(t *testing.T) (*Schema, *Batch) {
	t.Helper()
	schema, err := NewSchema(
		Field{Name: "uid", Type: Type{Kind: Int64}},
		Field{Name: "clk_seq_cids", Type: Type{Kind: List, Elem: Int64}, Sparse: true},
		Field{Name: "ctr", Type: Type{Kind: Float64}},
		Field{Name: "embed", Type: Type{Kind: Float32, Quant: FP16}},
	)
	if err != nil {
		t.Fatal(err)
	}
	n := 1000
	rng := rand.New(rand.NewSource(1))
	uid := make(Int64Data, n)
	clk := make(ListInt64Data, n)
	ctr := make(Float64Data, n)
	embed := make(Float32Data, n)
	window := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	for i := 0; i < n; i++ {
		uid[i] = int64(i / 10)
		if rng.Intn(3) == 0 {
			window = append([]int64{rng.Int63n(1 << 30)}, window[:len(window)-1]...)
		}
		clk[i] = append([]int64{}, window...)
		ctr[i] = rng.Float64()
		embed[i] = float32(rng.Float64() - 0.5)
	}
	batch, err := NewBatch(schema, []ColumnData{uid, clk, ctr, embed})
	if err != nil {
		t.Fatal(err)
	}
	return schema, batch
}

func TestFileLifecycle(t *testing.T) {
	schema, batch := adsMini(t)
	path := tmpPath(t, "ads.bln")

	w, err := Create(path, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := OpenPath(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumRows() != 1000 {
		t.Fatalf("NumRows = %d", f.NumRows())
	}
	if f.Compliance() != Level2 {
		t.Fatalf("Compliance = %d", f.Compliance())
	}
	proj, err := f.Project("uid", "ctr")
	if err != nil {
		t.Fatal(err)
	}
	uid := proj.Columns[0].(Int64Data)
	if uid[999] != 99 {
		t.Fatalf("uid[999] = %d", uid[999])
	}
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteThroughPublicAPI(t *testing.T) {
	schema, batch := adsMini(t)
	path := tmpPath(t, "ads.bln")
	w, err := Create(path, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := OpenPath(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Delete user 5's rows (50..59).
	rows := make([]uint64, 10)
	for i := range rows {
		rows[i] = uint64(50 + i)
	}
	if err := f.DeleteRows(rows); err != nil {
		t.Fatal(err)
	}
	if got := f.NumLiveRows(); got != 990 {
		t.Fatalf("live rows = %d", got)
	}
	data, err := f.ReadColumn("uid")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range data.(Int64Data) {
		if v == 5 {
			t.Fatal("deleted user still readable")
		}
	}
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk: the deletion persisted.
	f2, err := OpenPath(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if got := f2.NumLiveRows(); got != 990 {
		t.Fatalf("live rows after reopen = %d", got)
	}
}

func TestQuantHelpers(t *testing.T) {
	vs := []float32{0.5, -0.25, 0.125}
	bits, err := Quantize(vs, FP16)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Dequantize(bits, FP16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if back[i] != vs[i] { // exact powers of two survive FP16
			t.Fatalf("value %d = %v", i, back[i])
		}
	}
	hi, lo := SplitBF16Columns(vs)
	joined := JoinBF16Columns(hi, lo)
	for i := range vs {
		if joined[i] != vs[i] {
			t.Fatalf("dual-column join lost value %d", i)
		}
	}
}

func TestOpenPathErrors(t *testing.T) {
	if _, err := OpenPath(tmpPath(t, "missing.bln")); err == nil {
		t.Fatal("missing file opened")
	}
	bad := tmpPath(t, "bad.bln")
	if err := os.WriteFile(bad, []byte("not a bullion file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPath(bad); err == nil {
		t.Fatal("garbage file opened")
	}
}
