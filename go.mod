module bullion

go 1.22
