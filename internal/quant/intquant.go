package quant

import (
	"fmt"
	"sort"
)

// Integer quantization (paper §2.4): "for integer features, quantization
// provides lossless compression by rehashing the input space to a smaller
// range". IntQuantizer builds a dense code table over the distinct values
// of a sparse ID feature; codes fit the smallest integer width covering the
// cardinality (INT8/INT16/INT32) and remain losslessly invertible through
// the table.

// IntQuantizer maps a sparse int64 domain onto dense codes.
type IntQuantizer struct {
	codeOf map[int64]int64
	values []int64 // code -> original value
}

// NewIntQuantizer builds the code table from the distinct values of vs.
// Codes are assigned in sorted value order so that ordered inputs stay
// ordered after quantization (helps downstream delta/FOR encodings).
func NewIntQuantizer(vs []int64) *IntQuantizer {
	uniq := make(map[int64]struct{}, len(vs))
	for _, v := range vs {
		uniq[v] = struct{}{}
	}
	values := make([]int64, 0, len(uniq))
	for v := range uniq {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	codeOf := make(map[int64]int64, len(values))
	for i, v := range values {
		codeOf[v] = int64(i)
	}
	return &IntQuantizer{codeOf: codeOf, values: values}
}

// Cardinality returns the number of distinct values in the table.
func (q *IntQuantizer) Cardinality() int { return len(q.values) }

// CodeBits returns the narrowest standard integer width (8/16/32/64) that
// holds every code.
func (q *IntQuantizer) CodeBits() int {
	n := len(q.values)
	switch {
	case n <= 1<<8:
		return 8
	case n <= 1<<16:
		return 16
	case n <= 1<<32:
		return 32
	default:
		return 64
	}
}

// Quantize maps values to codes. Unknown values error: the table is the
// source of truth for losslessness.
func (q *IntQuantizer) Quantize(vs []int64) ([]int64, error) {
	out := make([]int64, len(vs))
	for i, v := range vs {
		c, ok := q.codeOf[v]
		if !ok {
			return nil, fmt.Errorf("quant: value %d not in code table", v)
		}
		out[i] = c
	}
	return out, nil
}

// Dequantize maps codes back to original values.
func (q *IntQuantizer) Dequantize(codes []int64) ([]int64, error) {
	out := make([]int64, len(codes))
	for i, c := range codes {
		if c < 0 || c >= int64(len(q.values)) {
			return nil, fmt.Errorf("quant: code %d out of range [0,%d)", c, len(q.values))
		}
		out[i] = q.values[c]
	}
	return out, nil
}

// Table returns the code table (code -> value), for persisting alongside
// the quantized column.
func (q *IntQuantizer) Table() []int64 { return q.values }

// IntQuantizerFromTable reconstructs a quantizer from a persisted table.
func IntQuantizerFromTable(values []int64) *IntQuantizer {
	codeOf := make(map[int64]int64, len(values))
	for i, v := range values {
		codeOf[v] = int64(i)
	}
	return &IntQuantizer{codeOf: codeOf, values: values}
}

// DowncastBits returns the narrowest standard width (8/16/32/64) that
// represents every value in vs without loss, for direct downcasting when
// the domain is already small.
func DowncastBits(vs []int64) int {
	bits := 8
	for _, v := range vs {
		for v < minOfBits(bits) || v > maxOfBits(bits) {
			bits *= 2
			if bits == 64 {
				return 64
			}
		}
	}
	return bits
}

func minOfBits(b int) int64 { return -(int64(1) << uint(b-1)) }
func maxOfBits(b int) int64 { return int64(1)<<uint(b-1) - 1 }
