// Package quant implements Bullion's storage quantization (paper §2.4,
// Figure 6): reduced-precision float formats for features and embeddings
// (FP16, BF16, TF32, FP8 E4M3/E5M2), the dual-column FP32 decomposition,
// and lossless integer rehash quantization for sparse ID features.
//
// Quantized values are stored as raw bit patterns and ride the integer
// cascade in internal/enc (bit-packing, dictionaries and bit-shuffle work
// directly on the narrow patterns).
package quant

import (
	"fmt"
	"math"
)

// Format identifies a storage float format from Figure 6. The zero value
// is FP32 ("no quantization"), so unconfigured float32 columns store their
// native bits.
type Format uint8

const (
	FP32    Format = iota // IEEE 754 single: 1/8/23 (native, no quantization)
	FP64                  // IEEE 754 double: 1/11/52
	TF32                  // NVIDIA TF32: 1/8/10 (stored in 32 bits, low mantissa cleared)
	FP16                  // IEEE 754 half: 1/5/10
	BF16                  // Google bfloat16: 1/8/7
	FP8E4M3               // NVIDIA FP8: 1/4/3 (no Inf; S.1111.111 = NaN)
	FP8E5M2               // NVIDIA FP8: 1/5/2 (IEEE-style specials)
)

// String returns the format name as used in Figure 6.
func (f Format) String() string {
	switch f {
	case FP64:
		return "FP64"
	case FP32:
		return "FP32"
	case TF32:
		return "TF32"
	case FP16:
		return "FP16"
	case BF16:
		return "BF16"
	case FP8E4M3:
		return "FP8-E4M3"
	case FP8E5M2:
		return "FP8-E5M2"
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// Bits returns the storage width in bits. TF32 occupies 32 stored bits
// (19 significant); the narrower footprint comes from compression of the
// cleared mantissa tail.
func (f Format) Bits() int {
	switch f {
	case FP64:
		return 64
	case FP32, TF32:
		return 32
	case FP16, BF16:
		return 16
	case FP8E4M3, FP8E5M2:
		return 8
	}
	return 0
}

// Bytes returns the storage width in bytes.
func (f Format) Bytes() int { return f.Bits() / 8 }

// MaxRelError returns an upper bound on the relative rounding error for
// values in the format's normal range: 2^-(mantissaBits+1).
func (f Format) MaxRelError() float64 {
	switch f {
	case FP64:
		return 0
	case FP32:
		return math.Ldexp(1, -24)
	case TF32:
		return math.Ldexp(1, -11)
	case FP16:
		return math.Ldexp(1, -11)
	case BF16:
		return math.Ldexp(1, -8)
	case FP8E4M3:
		return math.Ldexp(1, -4)
	case FP8E5M2:
		return math.Ldexp(1, -3)
	}
	return 1
}

// ---- generic minifloat conversion ----
//
// encodeMini rounds a float64 to a 1/expBits/manBits minifloat with
// round-to-nearest-even, returning the bit pattern. e4m3 selects the
// NVIDIA E4M3 convention: no infinities, exponent-max mantissa-max is NaN,
// overflow saturates to the maximum finite value.

func encodeMini(v float64, expBits, manBits int, e4m3 bool) uint16 {
	bias := 1<<(expBits-1) - 1
	expMax := 1<<expBits - 1
	manMax := 1<<manBits - 1
	signBit := uint16(0)
	if math.Signbit(v) {
		signBit = 1 << uint(expBits+manBits)
		v = -v
	}
	switch {
	case math.IsNaN(v):
		// Canonical NaN: exponent all ones, mantissa all ones for E4M3,
		// mantissa MSB for IEEE-style.
		if e4m3 {
			return signBit | uint16(expMax<<manBits) | uint16(manMax)
		}
		return signBit | uint16(expMax<<manBits) | uint16(1<<(manBits-1))
	case math.IsInf(v, 0):
		if e4m3 {
			// E4M3 has no infinity; saturate to max finite.
			return signBit | miniMaxFinite(expBits, manBits, true)
		}
		return signBit | uint16(expMax<<manBits)
	case v == 0:
		return signBit
	}

	e := math.Ilogb(v)
	if e < 1-bias { // subnormal candidate
		q := math.Ldexp(1, 1-bias-manBits) // subnormal quantum
		m := int(math.RoundToEven(v / q))
		if m <= manMax {
			return signBit | uint16(m)
		}
		// Rounded up into the smallest normal.
		return signBit | uint16(1<<manBits)
	}

	// Normal: mantissa fraction in [1,2).
	frac := v / math.Ldexp(1, e) // in [1,2)
	m := int(math.RoundToEven((frac - 1) * float64(int(1)<<manBits)))
	if m > manMax {
		e++
		m = 0
	}
	biasedE := e + bias
	finiteExpMax := expMax - 1
	if e4m3 {
		finiteExpMax = expMax
	}
	if biasedE > finiteExpMax {
		if e4m3 {
			return signBit | miniMaxFinite(expBits, manBits, true)
		}
		return signBit | uint16(expMax<<manBits) // infinity
	}
	if e4m3 && biasedE == expMax && m == manMax {
		// That pattern is NaN in E4M3; saturate one step down.
		return signBit | uint16(expMax<<manBits) | uint16(manMax-1)
	}
	return signBit | uint16(biasedE<<manBits) | uint16(m)
}

// miniMaxFinite returns the bit pattern of the largest finite magnitude.
func miniMaxFinite(expBits, manBits int, e4m3 bool) uint16 {
	expMax := 1<<expBits - 1
	manMax := 1<<manBits - 1
	if e4m3 {
		return uint16(expMax<<manBits) | uint16(manMax-1) // 448 for E4M3
	}
	return uint16((expMax-1)<<manBits) | uint16(manMax)
}

// decodeMini expands a minifloat bit pattern to float64 exactly.
func decodeMini(bits uint16, expBits, manBits int, e4m3 bool) float64 {
	bias := 1<<(expBits-1) - 1
	expMax := 1<<expBits - 1
	manMax := 1<<manBits - 1
	sign := 1.0
	if bits&(1<<uint(expBits+manBits)) != 0 {
		sign = -1
	}
	e := int(bits>>uint(manBits)) & expMax
	m := int(bits) & manMax
	switch {
	case e == expMax && e4m3 && m == manMax:
		return math.NaN()
	case e == expMax && !e4m3 && m != 0:
		return math.NaN()
	case e == expMax && !e4m3:
		return sign * math.Inf(1)
	case e == 0:
		return sign * math.Ldexp(float64(m), 1-bias-manBits)
	default:
		return sign * math.Ldexp(1+float64(m)/float64(int(1)<<manBits), e-bias)
	}
}

// ---- FP16 ----

// FP16FromFloat32 converts v to IEEE half precision (round-to-nearest-even).
func FP16FromFloat32(v float32) uint16 {
	return encodeMini(float64(v), 5, 10, false)
}

// Float32FromFP16 expands an IEEE half bit pattern.
func Float32FromFP16(bits uint16) float32 {
	return float32(decodeMini(bits, 5, 10, false))
}

// ---- BF16 ----

// BF16FromFloat32 converts v to bfloat16 with round-to-nearest-even on the
// dropped 16 mantissa bits.
func BF16FromFloat32(v float32) uint16 {
	b := math.Float32bits(v)
	if v != v { // NaN: truncation could silently turn it into Inf
		return uint16(b>>16) | 0x0040
	}
	// Round to nearest even: add 0x7FFF + LSB of the surviving part.
	round := uint32(0x7FFF) + (b>>16)&1
	return uint16((b + round) >> 16)
}

// Float32FromBF16 expands a bfloat16 bit pattern.
func Float32FromBF16(bits uint16) float32 {
	return math.Float32frombits(uint32(bits) << 16)
}

// ---- TF32 ----

// TF32FromFloat32 rounds v to TF32: FP32 with the mantissa reduced to 10
// bits (the low 13 cleared), round-to-nearest-even. The result remains a
// valid float32 bit pattern.
func TF32FromFloat32(v float32) uint32 {
	b := math.Float32bits(v)
	if v != v {
		return b | 0x0400 // keep NaN a NaN after clearing
	}
	exp := b >> 23 & 0xFF
	if exp == 0xFF {
		return b &^ 0x1FFF // preserve Inf/NaN class
	}
	round := uint32(0xFFF) + (b>>13)&1
	b += round
	return b &^ 0x1FFF
}

// Float32FromTF32 reinterprets a TF32 pattern as float32 (identity: TF32
// patterns are valid float32).
func Float32FromTF32(bits uint32) float32 { return math.Float32frombits(bits) }

// ---- FP8 ----

// FP8E4M3FromFloat32 converts v to NVIDIA FP8 E4M3.
func FP8E4M3FromFloat32(v float32) uint8 {
	return uint8(encodeMini(float64(v), 4, 3, true))
}

// Float32FromFP8E4M3 expands an E4M3 bit pattern.
func Float32FromFP8E4M3(bits uint8) float32 {
	return float32(decodeMini(uint16(bits), 4, 3, true))
}

// FP8E5M2FromFloat32 converts v to NVIDIA FP8 E5M2.
func FP8E5M2FromFloat32(v float32) uint8 {
	return uint8(encodeMini(float64(v), 5, 2, false))
}

// Float32FromFP8E5M2 expands an E5M2 bit pattern.
func Float32FromFP8E5M2(bits uint8) float32 {
	return float32(decodeMini(uint16(bits), 5, 2, false))
}

// ---- vector API ----

// Quantize converts float32 values to the format's bit patterns, widened to
// int64 for the integer cascade. FP32 passes bit patterns through; FP64 is
// rejected (use the float64 cascade for doubles).
func Quantize(vs []float32, f Format) ([]int64, error) {
	out := make([]int64, len(vs))
	switch f {
	case FP32:
		for i, v := range vs {
			out[i] = int64(math.Float32bits(v))
		}
	case TF32:
		for i, v := range vs {
			out[i] = int64(TF32FromFloat32(v))
		}
	case FP16:
		for i, v := range vs {
			out[i] = int64(FP16FromFloat32(v))
		}
	case BF16:
		for i, v := range vs {
			out[i] = int64(BF16FromFloat32(v))
		}
	case FP8E4M3:
		for i, v := range vs {
			out[i] = int64(FP8E4M3FromFloat32(v))
		}
	case FP8E5M2:
		for i, v := range vs {
			out[i] = int64(FP8E5M2FromFloat32(v))
		}
	default:
		return nil, fmt.Errorf("quant: cannot quantize float32 to %v", f)
	}
	return out, nil
}

// Dequantize expands bit patterns produced by Quantize back to float32.
func Dequantize(bits []int64, f Format) ([]float32, error) {
	return DequantizeInto(make([]float32, len(bits)), bits, f)
}

// DequantizeInto expands bit patterns into out, which must have the same
// length as bits; every element is overwritten, so callers may pass
// recycled slices.
func DequantizeInto(out []float32, bits []int64, f Format) ([]float32, error) {
	if len(out) != len(bits) {
		return nil, fmt.Errorf("quant: dst length %d != src %d", len(out), len(bits))
	}
	switch f {
	case FP32:
		for i, b := range bits {
			out[i] = math.Float32frombits(uint32(b))
		}
	case TF32:
		for i, b := range bits {
			out[i] = Float32FromTF32(uint32(b))
		}
	case FP16:
		for i, b := range bits {
			out[i] = Float32FromFP16(uint16(b))
		}
	case BF16:
		for i, b := range bits {
			out[i] = Float32FromBF16(uint16(b))
		}
	case FP8E4M3:
		for i, b := range bits {
			out[i] = Float32FromFP8E4M3(uint8(b))
		}
	case FP8E5M2:
		for i, b := range bits {
			out[i] = Float32FromFP8E5M2(uint8(b))
		}
	default:
		return nil, fmt.Errorf("quant: cannot dequantize %v to float32", f)
	}
	return out, nil
}
