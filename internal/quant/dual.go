package quant

import "math"

// Dual-column decomposition (paper §2.4, opportunity 3): business-critical
// FP32 features are split into two 16-bit columns so that precision-
// insensitive models read only the primary column while critical models
// reconstruct full FP32 precision through a 1:1 join.
//
// Two variants are provided:
//
//   - SplitBF16: the primary column is the value truncated to bfloat16
//     (directly usable as a BF16 feature) and the residual column holds the
//     dropped low 16 mantissa bits. The join (hi<<16 | lo) reconstructs the
//     original FP32 *bit-exactly*.
//
//   - SplitFP16: the paper's literal description — primary = fp16(v),
//     residual = fp16(v - float32(primary)). The join hi+lo recovers most
//     of the precision but is approximate outside fp16's exponent range;
//     prefer SplitBF16 when exactness matters.

// SplitBF16 decomposes v into a truncated-bfloat16 primary and a 16-bit
// mantissa residual. JoinBF16(hi, lo) == v bit-exactly for every v.
func SplitBF16(v float32) (hi, lo uint16) {
	b := math.Float32bits(v)
	return uint16(b >> 16), uint16(b)
}

// JoinBF16 reconstructs the exact FP32 value from a SplitBF16 pair.
func JoinBF16(hi, lo uint16) float32 {
	return math.Float32frombits(uint32(hi)<<16 | uint32(lo))
}

// SplitFP16 decomposes v into an fp16 primary and an fp16 residual
// (hi = fp16(v), lo = fp16(v - hi)).
func SplitFP16(v float32) (hi, lo uint16) {
	hi = FP16FromFloat32(v)
	rem := v - Float32FromFP16(hi)
	lo = FP16FromFloat32(rem)
	return hi, lo
}

// JoinFP16 reconstructs an approximation of the original value from a
// SplitFP16 pair.
func JoinFP16(hi, lo uint16) float32 {
	return Float32FromFP16(hi) + Float32FromFP16(lo)
}

// SplitBF16Columns decomposes a column; the two outputs are stored as
// separate Bullion columns and joined 1:1 on read.
func SplitBF16Columns(vs []float32) (hi, lo []int64) {
	hi = make([]int64, len(vs))
	lo = make([]int64, len(vs))
	for i, v := range vs {
		h, l := SplitBF16(v)
		hi[i], lo[i] = int64(h), int64(l)
	}
	return hi, lo
}

// JoinBF16Columns reconstructs the FP32 column from its two halves.
func JoinBF16Columns(hi, lo []int64) []float32 {
	out := make([]float32, len(hi))
	for i := range hi {
		out[i] = JoinBF16(uint16(hi[i]), uint16(lo[i]))
	}
	return out
}
