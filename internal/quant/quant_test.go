package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFP16Exhaustive checks that every representable FP16 pattern survives
// decode→encode exactly (canonical NaN excepted).
func TestFP16Exhaustive(t *testing.T) {
	for b := 0; b < 1<<16; b++ {
		bits := uint16(b)
		v := Float32FromFP16(bits)
		if v != v { // NaN patterns re-encode to the canonical NaN
			back := Float32FromFP16(FP16FromFloat32(v))
			if back == back {
				t.Fatalf("bits %04x: NaN did not survive", bits)
			}
			continue
		}
		got := FP16FromFloat32(v)
		// -0 and +0 are distinct patterns and must both survive.
		if got != bits {
			t.Fatalf("bits %04x decode to %v re-encode to %04x", bits, v, got)
		}
	}
}

// TestFP8Exhaustive does the same for both FP8 variants (256 patterns).
func TestFP8Exhaustive(t *testing.T) {
	for b := 0; b < 256; b++ {
		bits := uint8(b)
		{
			v := Float32FromFP8E4M3(bits)
			if v == v {
				if got := FP8E4M3FromFloat32(v); got != bits {
					t.Fatalf("e4m3 bits %02x decode to %v re-encode to %02x", bits, v, got)
				}
			}
		}
		{
			v := Float32FromFP8E5M2(bits)
			if v == v && !math.IsInf(float64(v), 0) {
				if got := FP8E5M2FromFloat32(v); got != bits {
					t.Fatalf("e5m2 bits %02x decode to %v re-encode to %02x", bits, v, got)
				}
			}
		}
	}
}

func TestFP16KnownValues(t *testing.T) {
	cases := []struct {
		v    float32
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF}, // max finite half
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
		{5.9604645e-8, 0x0001}, // smallest subnormal half
	}
	for _, c := range cases {
		if got := FP16FromFloat32(c.v); got != c.bits {
			t.Errorf("FP16(%v) = %04x, want %04x", c.v, got, c.bits)
		}
	}
	// Overflow saturates to infinity in IEEE half.
	if got := FP16FromFloat32(1e6); got != 0x7C00 {
		t.Errorf("FP16(1e6) = %04x, want Inf (7C00)", got)
	}
}

func TestE4M3KnownValues(t *testing.T) {
	if got := Float32FromFP8E4M3(FP8E4M3FromFloat32(448)); got != 448 {
		t.Errorf("E4M3 max finite: got %v, want 448", got)
	}
	// No infinity: overflow saturates.
	if got := Float32FromFP8E4M3(FP8E4M3FromFloat32(1e9)); got != 448 {
		t.Errorf("E4M3 overflow: got %v, want saturation to 448", got)
	}
	// S.1111.111 is NaN.
	if v := Float32FromFP8E4M3(0x7F); v == v {
		t.Error("E4M3 0x7F must be NaN")
	}
	if got := Float32FromFP8E4M3(FP8E4M3FromFloat32(1.0)); got != 1.0 {
		t.Errorf("E4M3(1.0) round-trips to %v", got)
	}
}

func TestE5M2Specials(t *testing.T) {
	inf := FP8E5M2FromFloat32(float32(math.Inf(1)))
	if !math.IsInf(float64(Float32FromFP8E5M2(inf)), 1) {
		t.Error("E5M2 +Inf lost")
	}
	if v := Float32FromFP8E5M2(FP8E5M2FromFloat32(float32(math.NaN()))); v == v {
		t.Error("E5M2 NaN lost")
	}
	if got := Float32FromFP8E5M2(FP8E5M2FromFloat32(1e9)); !math.IsInf(float64(got), 1) {
		t.Errorf("E5M2 overflow should be Inf, got %v", got)
	}
}

func TestBF16Truncation(t *testing.T) {
	if got := Float32FromBF16(BF16FromFloat32(1.0)); got != 1.0 {
		t.Errorf("BF16(1.0) = %v", got)
	}
	// BF16 keeps FP32's exponent range: a huge value survives.
	if got := Float32FromBF16(BF16FromFloat32(1e38)); math.IsInf(float64(got), 0) {
		t.Errorf("BF16(1e38) overflowed to %v", got)
	}
	if v := Float32FromBF16(BF16FromFloat32(float32(math.NaN()))); v == v {
		t.Error("BF16 NaN lost")
	}
}

func TestTF32ClearsMantissaTail(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := float32(rng.NormFloat64())
		bits := TF32FromFloat32(v)
		if bits&0x1FFF != 0 {
			t.Fatalf("TF32(%v) = %08x has low mantissa bits set", v, bits)
		}
	}
	if bits := TF32FromFloat32(float32(math.Inf(1))); math.Float32frombits(bits) != float32(math.Inf(1)) {
		t.Error("TF32 Inf lost")
	}
	if v := Float32FromTF32(TF32FromFloat32(float32(math.NaN()))); v == v {
		t.Error("TF32 NaN lost")
	}
}

// Property: relative error of each lossy format stays within its bound for
// values in the format's normal range.
func TestRelativeErrorBounds(t *testing.T) {
	formats := []struct {
		f         Format
		normalMin float64
		normalMax float64
	}{
		{FP16, 6.2e-5, 65000},
		{BF16, 1.2e-38, 3e38},
		{TF32, 1.2e-38, 3e38},
		{FP8E4M3, 0.016, 448},
		{FP8E5M2, 6.2e-5, 57344},
	}
	for _, tc := range formats {
		f := func(raw float64) bool {
			mag := tc.normalMin + math.Mod(math.Abs(raw), tc.normalMax-tc.normalMin)
			v := float32(mag)
			q, err := Quantize([]float32{v}, tc.f)
			if err != nil {
				return false
			}
			d, err := Dequantize(q, tc.f)
			if err != nil {
				return false
			}
			rel := math.Abs(float64(d[0])-float64(v)) / math.Abs(float64(v))
			return rel <= tc.f.MaxRelError()*1.0000001
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", tc.f, err)
		}
	}
}

func TestQuantizeVectorFP32Lossless(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vs := make([]float32, 1000)
	for i := range vs {
		vs[i] = float32(rng.NormFloat64())
	}
	bits, err := Quantize(vs, FP32)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Dequantize(bits, FP32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if back[i] != vs[i] {
			t.Fatalf("FP32 roundtrip lost value %d", i)
		}
	}
}

func TestQuantizeRejectsFP64(t *testing.T) {
	if _, err := Quantize([]float32{1}, FP64); err == nil {
		t.Fatal("Quantize accepted FP64")
	}
	if _, err := Dequantize([]int64{0}, FP64); err == nil {
		t.Fatal("Dequantize accepted FP64")
	}
}

func TestFormatMetadata(t *testing.T) {
	if FP16.Bits() != 16 || FP8E4M3.Bits() != 8 || FP64.Bits() != 64 || TF32.Bits() != 32 {
		t.Fatal("Bits() wrong")
	}
	if FP16.Bytes() != 2 {
		t.Fatal("Bytes() wrong")
	}
	for _, f := range []Format{FP64, FP32, TF32, FP16, BF16, FP8E4M3, FP8E5M2} {
		if f.String() == "" || f.String()[0] == 'F' == false && f != TF32 && f != BF16 {
			t.Fatalf("bad name for %d", f)
		}
	}
}
