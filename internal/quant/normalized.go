package quant

import (
	"encoding/binary"
	"fmt"

	"bullion/internal/bitutil"
)

// Normalized-BF16 packing — the §2.4 "opportunity": embedding vectors are
// typically normalized to (-1, 1), so a BF16 pattern's exponent field is
// confined to a narrow band below the bias (values >= 1 cannot occur).
// Exploiting that, each in-range value packs into 12 bits:
//
//	sign(1) expDelta(4) mantissa(7)
//
// where expDelta = 126 - exponent in [0, 14] (magnitudes from ~6.1e-5 up
// to but excluding 1.0). expDelta 15 flags an exception (zeros, subnormals,
// out-of-range patterns), whose full 16-bit pattern goes to a side list.
//
//	stream := n(uvarint) nExc(uvarint) packed12 excPos(uvarint deltas) excBits(2B each)
//
// 12/16 bits = 25% below raw BF16 and 62.5% below FP32 before any further
// cascade compression; the packing is lossless with respect to BF16.

const (
	nbf16ExpBias  = 126 // top exponent for magnitudes < 1.0
	nbf16ExpRange = 15  // expDelta values 0..14; 15 = exception
)

// EncodeNormalizedBF16 packs BF16 bit patterns (as produced by
// BF16FromFloat32) into the 12-bit normalized layout.
func EncodeNormalizedBF16(patterns []uint16) []byte {
	packed := make([]uint64, len(patterns))
	var excPos []int
	var excBits []uint16
	for i, p := range patterns {
		sign := uint64(p >> 15)
		exp := int(p >> 7 & 0xFF)
		man := uint64(p & 0x7F)
		delta := nbf16ExpBias - exp
		if delta < 0 || delta >= nbf16ExpRange {
			packed[i] = nbf16ExpRange << 7 // exception marker, sign/man zero
			excPos = append(excPos, i)
			excBits = append(excBits, p)
			continue
		}
		packed[i] = sign<<11 | uint64(delta)<<7 | man
	}
	out := binary.AppendUvarint(nil, uint64(len(patterns)))
	out = binary.AppendUvarint(out, uint64(len(excPos)))
	out = bitutil.Pack(out, packed, 12)
	prev := 0
	for _, p := range excPos {
		out = binary.AppendUvarint(out, uint64(p-prev))
		prev = p
	}
	for _, b := range excBits {
		out = binary.LittleEndian.AppendUint16(out, b)
	}
	return out
}

// DecodeNormalizedBF16 unpacks a normalized-BF16 stream back to the exact
// original BF16 bit patterns.
func DecodeNormalizedBF16(data []byte) ([]uint16, error) {
	n64, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("quant: normalized-bf16: bad count")
	}
	data = data[sz:]
	nExc, sz := binary.Uvarint(data)
	if sz <= 0 || nExc > n64 {
		return nil, fmt.Errorf("quant: normalized-bf16: bad exception count")
	}
	data = data[sz:]
	n := int(n64)
	need := bitutil.PackedLen(n, 12)
	if len(data) < need {
		return nil, fmt.Errorf("quant: normalized-bf16: short packed section")
	}
	packed, err := bitutil.Unpack(make([]uint64, n), data[:need], n, 12)
	if err != nil {
		return nil, err
	}
	data = data[need:]
	out := make([]uint16, n)
	for i, v := range packed {
		delta := int(v >> 7 & 0xF)
		if delta == nbf16ExpRange {
			continue // patched from the exception list below
		}
		sign := uint16(v>>11) & 1
		man := uint16(v & 0x7F)
		exp := uint16(nbf16ExpBias - delta)
		out[i] = sign<<15 | exp<<7 | man
	}
	positions := make([]int, nExc)
	pos := 0
	for e := range positions {
		d, sz := binary.Uvarint(data)
		if sz <= 0 {
			return nil, fmt.Errorf("quant: normalized-bf16: truncated exception positions")
		}
		data = data[sz:]
		pos += int(d)
		if pos >= n {
			return nil, fmt.Errorf("quant: normalized-bf16: exception position %d out of range", pos)
		}
		positions[e] = pos
	}
	if len(data) < int(nExc)*2 {
		return nil, fmt.Errorf("quant: normalized-bf16: truncated exception bits")
	}
	for e, p := range positions {
		out[p] = binary.LittleEndian.Uint16(data[2*e:])
	}
	return out, nil
}

// EncodeNormalizedEmbedding is the convenience path: quantize float32
// embedding components to BF16 and pack with the normalized layout.
func EncodeNormalizedEmbedding(vs []float32) []byte {
	patterns := make([]uint16, len(vs))
	for i, v := range vs {
		patterns[i] = BF16FromFloat32(v)
	}
	return EncodeNormalizedBF16(patterns)
}

// DecodeNormalizedEmbedding reverses EncodeNormalizedEmbedding.
func DecodeNormalizedEmbedding(data []byte) ([]float32, error) {
	patterns, err := DecodeNormalizedBF16(data)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(patterns))
	for i, p := range patterns {
		out[i] = Float32FromBF16(p)
	}
	return out, nil
}
