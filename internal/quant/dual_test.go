package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: SplitBF16/JoinBF16 is bit-exact for every float32.
func TestSplitBF16Exact(t *testing.T) {
	f := func(bits uint32) bool {
		v := math.Float32frombits(bits)
		hi, lo := SplitBF16(v)
		return math.Float32bits(JoinBF16(hi, lo)) == bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// The primary column of SplitBF16 must itself be a usable BF16 value close
// to the original (truncation, so within one BF16 ulp).
func TestSplitBF16PrimaryUsable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := float32(rng.NormFloat64())
		hi, _ := SplitBF16(v)
		approx := Float32FromBF16(hi)
		rel := math.Abs(float64(approx-v)) / math.Abs(float64(v))
		if rel > 1.0/128 { // 2^-7: BF16 truncation bound
			t.Fatalf("primary column error %v too large for %v", rel, v)
		}
	}
}

func TestSplitFP16Approximation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		// Values in fp16's normal range: the residual stays normal too.
		// (Outside it the residual goes subnormal and precision degrades —
		// that is why SplitBF16 is the recommended exact variant.)
		v := float32(0.5 + math.Abs(rng.NormFloat64())*10)
		hi, lo := SplitFP16(v)
		joined := JoinFP16(hi, lo)
		rel := math.Abs(float64(joined-v)) / float64(v)
		// Two fp16s give ~21 mantissa bits; demand much better than fp16 alone.
		if rel > 1e-5 {
			t.Fatalf("join error %v too large for %v (hi=%04x lo=%04x)", rel, v, hi, lo)
		}
	}
}

func TestSplitBF16Columns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vs := make([]float32, 500)
	for i := range vs {
		vs[i] = float32(rng.NormFloat64() * 100)
	}
	hi, lo := SplitBF16Columns(vs)
	back := JoinBF16Columns(hi, lo)
	for i := range vs {
		if math.Float32bits(back[i]) != math.Float32bits(vs[i]) {
			t.Fatalf("column join lost value %d", i)
		}
	}
}
