package quant

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntQuantizerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Sparse ad IDs: huge domain, few distinct.
	domain := make([]int64, 200)
	for i := range domain {
		domain[i] = rng.Int63()
	}
	vs := make([]int64, 5000)
	for i := range vs {
		vs[i] = domain[rng.Intn(len(domain))]
	}
	q := NewIntQuantizer(vs)
	if q.Cardinality() > 200 {
		t.Fatalf("cardinality %d > 200", q.Cardinality())
	}
	if q.CodeBits() != 8 {
		t.Fatalf("CodeBits = %d, want 8 for <=256 distinct", q.CodeBits())
	}
	codes, err := q.Quantize(vs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := q.Dequantize(codes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if back[i] != vs[i] {
			t.Fatalf("value %d lost", i)
		}
	}
}

func TestIntQuantizerOrderPreserving(t *testing.T) {
	q := NewIntQuantizer([]int64{100, -5, 7, 100, 7})
	codes, err := q.Quantize([]int64{-5, 7, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !(codes[0] < codes[1] && codes[1] < codes[2]) {
		t.Fatalf("codes not order preserving: %v", codes)
	}
}

func TestIntQuantizerUnknownValue(t *testing.T) {
	q := NewIntQuantizer([]int64{1, 2})
	if _, err := q.Quantize([]int64{3}); err == nil {
		t.Fatal("unknown value accepted")
	}
	if _, err := q.Dequantize([]int64{99}); err == nil {
		t.Fatal("out-of-range code accepted")
	}
}

func TestIntQuantizerPersistence(t *testing.T) {
	q := NewIntQuantizer([]int64{10, 20, 30})
	q2 := IntQuantizerFromTable(q.Table())
	codes, err := q2.Quantize([]int64{30, 10})
	if err != nil {
		t.Fatal(err)
	}
	back, err := q2.Dequantize(codes)
	if err != nil {
		t.Fatal(err)
	}
	if back[0] != 30 || back[1] != 10 {
		t.Fatalf("persisted table misdecodes: %v", back)
	}
}

func TestIntQuantizerProperty(t *testing.T) {
	f := func(vs []int64) bool {
		if len(vs) == 0 {
			return true
		}
		q := NewIntQuantizer(vs)
		codes, err := q.Quantize(vs)
		if err != nil {
			return false
		}
		back, err := q.Dequantize(codes)
		if err != nil {
			return false
		}
		for i := range vs {
			if back[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDowncastBits(t *testing.T) {
	cases := []struct {
		vs   []int64
		want int
	}{
		{[]int64{0, 1, -1}, 8},
		{[]int64{127, -128}, 8},
		{[]int64{128}, 16},
		{[]int64{40000}, 32},
		{[]int64{1 << 40}, 64},
		{[]int64{}, 8},
	}
	for _, c := range cases {
		if got := DowncastBits(c.vs); got != c.want {
			t.Errorf("DowncastBits(%v) = %d, want %d", c.vs, got, c.want)
		}
	}
}
