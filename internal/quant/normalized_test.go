package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalizedBF16RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	patterns := make([]uint16, 5000)
	for i := range patterns {
		v := float32(rng.Float64()*2 - 1) // in (-1,1): the target domain
		patterns[i] = BF16FromFloat32(v)
	}
	encoded := EncodeNormalizedBF16(patterns)
	got, err := DecodeNormalizedBF16(encoded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range patterns {
		if got[i] != patterns[i] {
			t.Fatalf("pattern %d = %04x, want %04x", i, got[i], patterns[i])
		}
	}
	// 12 bits/value + small header: must be well under raw bf16 (16 bits).
	if len(encoded) >= 2*len(patterns) {
		t.Fatalf("normalized packing %d bytes >= raw bf16 %d", len(encoded), 2*len(patterns))
	}
	ratio := float64(len(encoded)) / float64(2*len(patterns))
	if ratio > 0.78 {
		t.Fatalf("packing ratio %.2f, want ~0.75", ratio)
	}
}

func TestNormalizedBF16Exceptions(t *testing.T) {
	// Zeros, values >= 1, tiny subnormal-exponent values, infinities, NaN:
	// all must round-trip exactly via the exception path.
	vals := []float32{0, float32(math.Copysign(0, -1)), 1.0, -2.5, 1e-20,
		float32(math.Inf(1)), float32(math.NaN()), 0.5, -0.25}
	patterns := make([]uint16, len(vals))
	for i, v := range vals {
		patterns[i] = BF16FromFloat32(v)
	}
	encoded := EncodeNormalizedBF16(patterns)
	got, err := DecodeNormalizedBF16(encoded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range patterns {
		if got[i] != patterns[i] {
			t.Fatalf("value %v: pattern %04x, want %04x", vals[i], got[i], patterns[i])
		}
	}
}

// Property: every possible BF16 pattern survives (exceptions included).
func TestNormalizedBF16Property(t *testing.T) {
	f := func(raw []uint16) bool {
		encoded := EncodeNormalizedBF16(raw)
		got, err := DecodeNormalizedBF16(encoded)
		if err != nil {
			return false
		}
		if len(got) != len(raw) {
			return false
		}
		for i := range raw {
			if got[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedEmbeddingHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vs := make([]float32, 1000)
	for i := range vs {
		vs[i] = float32(rng.NormFloat64() * 0.3)
	}
	encoded := EncodeNormalizedEmbedding(vs)
	got, err := DecodeNormalizedEmbedding(encoded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		want := Float32FromBF16(BF16FromFloat32(vs[i]))
		if got[i] != want {
			t.Fatalf("value %d = %v, want %v", i, got[i], want)
		}
	}
}

func TestNormalizedBF16Corrupt(t *testing.T) {
	patterns := []uint16{BF16FromFloat32(0.5), BF16FromFloat32(-0.25)}
	encoded := EncodeNormalizedBF16(patterns)
	for cut := 0; cut < len(encoded); cut++ {
		if _, err := DecodeNormalizedBF16(encoded[:cut]); err == nil && cut < len(encoded) {
			t.Fatalf("truncation to %d decoded without error", cut)
		}
	}
	if _, err := DecodeNormalizedBF16(nil); err == nil {
		t.Fatal("empty stream decoded")
	}
}

func TestNormalizedBF16Empty(t *testing.T) {
	encoded := EncodeNormalizedBF16(nil)
	got, err := DecodeNormalizedBF16(encoded)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d patterns from empty input", len(got))
	}
}
