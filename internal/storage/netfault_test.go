package storage

import (
	"bytes"
	"io"
	"testing"
)

// netFaultTrace replays nReads sequential full-file reads against a
// freshly seeded fault backend and records each outcome.
func netFaultTrace(t *testing.T, nf NetFaults, data []byte, nReads int) []string {
	t.Helper()
	b := NewFaultFromState("mem://netfault", map[string][]byte{"f": data})
	b.SetNetFaults(&nf)
	f, _, err := b.ReadAt("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := make([]string, 0, nReads)
	p := make([]byte, len(data))
	for i := 0; i < nReads; i++ {
		n, err := f.ReadAt(p, 0)
		switch {
		case err == nil:
			out = append(out, "ok")
		case IsRetryable(err):
			out = append(out, "transient@"+itoa(n))
		default:
			t.Fatalf("read %d: non-retryable injected error %v", i, err)
		}
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestNetFaultsDeterministic: equal seeds replay the identical fault
// sequence; a different seed diverges. This is what makes remote-read
// failures reproducible in tests and benchmarks.
func TestNetFaultsDeterministic(t *testing.T) {
	data := conformanceData()
	nf := NetFaults{Seed: 42, ErrRate: 0.3, PartialRate: 0.3}
	a := netFaultTrace(t, nf, data, 200)
	b := netFaultTrace(t, nf, data, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d diverged under equal seeds: %q vs %q", i, a[i], b[i])
		}
	}
	sawTransient := false
	for _, o := range a {
		if o != "ok" {
			sawTransient = true
		}
	}
	if !sawTransient {
		t.Fatal("0.3+0.3 fault rates over 200 reads injected nothing")
	}
	c := netFaultTrace(t, NetFaults{Seed: 43, ErrRate: 0.3, PartialRate: 0.3}, data, 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds replayed the identical sequence")
	}
}

// TestNetFaultsShapes: each fault shape honors its contract — errors
// are Transient (retryable), partial reads really serve a proper
// prefix, truncation caps at the configured byte count.
func TestNetFaultsShapes(t *testing.T) {
	data := conformanceData()

	t.Run("err-before-first-byte", func(t *testing.T) {
		b := NewFaultFromState("mem://nf1", map[string][]byte{"f": data})
		b.SetNetFaults(&NetFaults{Seed: 1, ErrRate: 1})
		f, _, _ := b.ReadAt("f")
		p := make([]byte, 64)
		n, err := f.ReadAt(p, 0)
		if n != 0 || err == nil || !IsRetryable(err) {
			t.Fatalf("read = (%d, %v), want (0, transient)", n, err)
		}
	})

	t.Run("partial-prefix", func(t *testing.T) {
		b := NewFaultFromState("mem://nf2", map[string][]byte{"f": data})
		b.SetNetFaults(&NetFaults{Seed: 1, PartialRate: 1})
		f, _, _ := b.ReadAt("f")
		p := make([]byte, 256)
		n, err := f.ReadAt(p, 100)
		if err == nil || !IsRetryable(err) {
			t.Fatalf("err = %v, want transient", err)
		}
		if n <= 0 || n >= 256 {
			t.Fatalf("partial read served %d of 256 bytes, want a proper prefix", n)
		}
		if !bytes.Equal(p[:n], data[100:100+n]) {
			t.Fatal("partial prefix holds wrong bytes")
		}
	})

	t.Run("truncate-after", func(t *testing.T) {
		b := NewFaultFromState("mem://nf3", map[string][]byte{"f": data})
		b.SetNetFaults(&NetFaults{Seed: 1, TruncateAfter: 10})
		f, _, _ := b.ReadAt("f")
		p := make([]byte, 64)
		n, err := f.ReadAt(p, 0)
		if n != 10 || err == nil || !IsRetryable(err) {
			t.Fatalf("read = (%d, %v), want (10, transient)", n, err)
		}
		// Requests at or under the cap pass untouched.
		small := make([]byte, 10)
		if n, err := f.ReadAt(small, 0); n != 10 || err != nil {
			t.Fatalf("under-cap read = (%d, %v), want (10, nil)", n, err)
		}
	})

	t.Run("resilient-recovers-through-faults", func(t *testing.T) {
		// End-to-end: a 30% flaky backend behind the retry policy reads
		// byte-identically to the clean file.
		b := NewFaultFromState("mem://nf4", map[string][]byte{"f": data})
		b.SetNetFaults(&NetFaults{Seed: 7, ErrRate: 0.2, PartialRate: 0.1})
		r := NewResilient(b, &ResilienceOptions{
			MaxRetries:  8,
			BackoffBase: 1, // nanoseconds: keep the test instant
			HedgeDelay:  DisableHedging,
		})
		f, size, err := r.ReadAt("f")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, size)
		for i := 0; i < 50; i++ {
			n, err := f.ReadAt(got, 0)
			if err != nil && err != io.EOF {
				t.Fatalf("read %d: %v", i, err)
			}
			if n != len(data) || !bytes.Equal(got, data) {
				t.Fatalf("read %d returned wrong bytes", i)
			}
		}
		if st := r.ResilienceStats(); st.Retries == 0 {
			t.Fatal("fault rates injected nothing across 50 reads")
		}
	})
}
