package storage

import (
	"bytes"
	"errors"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

func TestIsHTTPURL(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"http://example.com/data", true},
		{"https://example.com/data", true},
		{"HTTP://example.com/data", true},
		{"ftp://example.com/data", false},
		{"/var/data/bullion", false},
		{"relative/dir", false},
		{"", false},
	}
	for _, c := range cases {
		if got := IsHTTPURL(c.in); got != c.want {
			t.Errorf("IsHTTPURL(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// serveDir stands up the reference handler over a local directory and
// returns the backend, the directory, and the server URL.
func serveDir(t *testing.T) (Backend, string, string) {
	t.Helper()
	dir := t.TempDir()
	local, err := NewLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHTTPHandler(local))
	t.Cleanup(srv.Close)
	return local, dir, srv.URL
}

// TestHTTPChangedUnderRead: the ETag pinned at open must fence off any
// reads that would otherwise observe a replaced object — the backend
// surfaces ErrChangedUnderRead instead of torn bytes.
func TestHTTPChangedUnderRead(t *testing.T) {
	const name = "part-000001-000.bln"
	local, dir, url := serveDir(t)
	writeViaBackend(t, local, name, conformanceData())

	h, err := NewHTTP(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := h.ReadAt(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := make([]byte, 64)
	if n, err := f.ReadAt(p, 0); n != 64 || err != nil {
		t.Fatalf("pre-replace read = (%d, %v)", n, err)
	}

	// Replace the object with different-size content; the handler's
	// ETag covers size, so the pin no longer matches.
	if err := os.WriteFile(filepath.Join(dir, name), []byte("entirely new and shorter"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(p, 0); !errors.Is(err, ErrChangedUnderRead) {
		t.Fatalf("post-replace read err = %v, want ErrChangedUnderRead", err)
	}
	if IsRetryable(err) {
		t.Fatal("ErrChangedUnderRead must not be retryable: retrying cannot restore the old object")
	}

	// A fresh open re-pins against the new object and reads cleanly.
	f2, size, err := h.ReadAt(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	want := []byte("entirely new and shorter")
	if size != int64(len(want)) {
		t.Fatalf("re-opened size = %d, want %d", size, len(want))
	}
	got := make([]byte, len(want))
	if n, err := f2.ReadAt(got, 0); n != len(want) || err != nil || !bytes.Equal(got, want) {
		t.Fatalf("re-opened read = (%d, %v, %q)", n, err, got[:n])
	}
}

// TestHTTPPinningDisabled: with DisableETagPinning the backend keeps
// reading through replacements (the caller has opted out of the fence).
func TestHTTPPinningDisabled(t *testing.T) {
	const name = "part-000001-000.bln"
	local, dir, url := serveDir(t)
	writeViaBackend(t, local, name, conformanceData())

	h, err := NewHTTP(url, &HTTPOptions{DisableETagPinning: true})
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := h.ReadAt(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	replacement := make([]byte, 1000) // same size: the range math still lines up
	for i := range replacement {
		replacement[i] = byte(255 - i)
	}
	if err := os.WriteFile(filepath.Join(dir, name), replacement, 0o644); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 100)
	if n, err := f.ReadAt(p, 200); n != 100 || err != nil {
		t.Fatalf("unpinned post-replace read = (%d, %v), want success", n, err)
	}
}

func TestHTTPHandlerRejectsWrites(t *testing.T) {
	local, _, url := serveDir(t)
	writeViaBackend(t, local, "CURRENT", []byte("1"))

	for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
		req, err := http.NewRequest(method, url+"/CURRENT", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s status = %d, want 405", method, resp.StatusCode)
		}
	}
	// Path traversal and malformed names never reach the filesystem.
	resp, err := http.Get(url + "/../../etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("traversal request must not succeed")
	}
}

// TestHTTPServerErrorsClassified: 5xx responses surface as retryable
// StatusError; the policy layer is allowed to try again.
func TestHTTPServerErrorsClassified(t *testing.T) {
	var failing bool
	local, _, _ := serveDir(t)
	writeViaBackend(t, local, "part-000001-000.bln", conformanceData())
	inner := NewHTTPHandler(local)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	h, err := NewHTTP(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := h.ReadAt("part-000001-000.bln")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	failing = true
	_, rerr := f.ReadAt(make([]byte, 16), 0)
	var se *StatusError
	if !errors.As(rerr, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want StatusError 503", rerr)
	}
	if !IsRetryable(rerr) {
		t.Fatal("503 must be retryable")
	}

	failing = false
	if n, err := f.ReadAt(make([]byte, 16), 0); n != 16 || err != nil {
		t.Fatalf("recovered read = (%d, %v)", n, err)
	}
}

func TestHTTPReadOnlySurface(t *testing.T) {
	local, _, url := serveDir(t)
	writeViaBackend(t, local, "CURRENT", []byte("1"))
	h, err := NewHTTP(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Create("x"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Create err = %v, want ErrReadOnly", err)
	}
	if err := h.Rename("a", "b"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Rename err = %v, want ErrReadOnly", err)
	}
	if err := h.Remove("a"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Remove err = %v, want ErrReadOnly", err)
	}
	if _, err := h.List(); !errors.Is(err, ErrListUnsupported) {
		t.Fatalf("List err = %v, want ErrListUnsupported", err)
	}
	if _, _, err := h.ReadAt("missing.bln"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing open err = %v, want fs.ErrNotExist", err)
	}
}
