package storage

import (
	"errors"
	"fmt"
	"io"
	"testing"
)

func writeFile(t *testing.T, b Backend, name, data string, sync bool) {
	t.Helper()
	f, err := b.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(data)); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readFileOr(t *testing.T, b Backend, name string) (string, error) {
	t.Helper()
	data, err := ReadFile(b, name)
	return string(data), err
}

func TestFaultUnsyncedWriteLostOnCrash(t *testing.T) {
	fb := NewFault("t")
	writeFile(t, fb, "a", "synced", true)
	if err := fb.SyncDir(); err != nil {
		t.Fatal(err)
	}
	writeFile(t, fb, "b", "never synced", false)

	fb.Crash()

	if _, err := readFileOr(t, fb, "b"); err == nil {
		t.Fatal("never-synced, never-SyncDir'd file survived the crash")
	}
	got, err := readFileOr(t, fb, "a")
	if err != nil || got != "synced" {
		t.Fatalf("a = %q, %v; want synced content", got, err)
	}
}

func TestFaultSyncedContentWithoutSyncDirLosesName(t *testing.T) {
	fb := NewFault("t")
	// Content fsynced, but the directory entry never was: a power cut
	// drops the name (strict model).
	writeFile(t, fb, "a", "content", true)
	fb.Crash()
	if _, err := readFileOr(t, fb, "a"); err == nil {
		t.Fatal("file with unsynced directory entry survived the crash")
	}
}

func TestFaultRenameRevertsWithoutSyncDir(t *testing.T) {
	fb := NewFault("t")
	writeFile(t, fb, "old", "v1", true)
	if err := fb.SyncDir(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Rename("old", "new"); err != nil {
		t.Fatal(err)
	}
	fb.Crash()
	if got, err := readFileOr(t, fb, "old"); err != nil || got != "v1" {
		t.Fatalf("old = %q, %v; rename should revert at crash", got, err)
	}
	if _, err := readFileOr(t, fb, "new"); err == nil {
		t.Fatal("unsynced rename target survived the crash")
	}
}

func TestFaultContentRevertsToLastSync(t *testing.T) {
	fb := NewFault("t")
	f, err := fb.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("v2"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fb.SyncDir(); err != nil {
		t.Fatal(err)
	}
	if got, _ := readFileOr(t, fb, "a"); got != "v2" {
		t.Fatalf("live read = %q, want v2", got)
	}
	fb.Crash()
	if got, err := readFileOr(t, fb, "a"); err != nil || got != "v1" {
		t.Fatalf("after crash = %q, %v; want last-synced v1", got, err)
	}
}

func TestFaultCrashAfter(t *testing.T) {
	fb := NewFault("t")
	writeFile(t, fb, "a", "x", true)
	fb.CrashAfter(fb.OpCount())
	if _, err := fb.Create("b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op after trip point = %v, want ErrCrashed", err)
	}
	if _, err := fb.List(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("every op after the trip fails; got %v", err)
	}
	fb.Crash()
	if _, err := fb.List(); err != nil {
		t.Fatalf("backend should serve durable state after Crash: %v", err)
	}
}

func TestFaultFailOpHook(t *testing.T) {
	fb := NewFault("t")
	boom := errors.New("boom")
	fb.SetFailOp(func(op Op) error {
		if op.Kind == OpSync {
			return boom
		}
		return nil
	})
	f, err := fb.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync = %v, want injected error", err)
	}
	fb.SetFailOp(nil)
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync after clearing hook = %v", err)
	}
}

func TestFaultSnapshotsStrictVsLoose(t *testing.T) {
	fb := NewFault("t")
	fb.EnableSnapshots()

	// Publish "a" properly, then leave a synced-but-unrenamed temporary
	// and take one more snapshot via SyncDir.
	writeFile(t, fb, "a.tmp", "payload", true)
	if err := fb.Rename("a.tmp", "a"); err != nil {
		t.Fatal(err)
	}
	if err := fb.SyncDir(); err != nil {
		t.Fatal(err)
	}
	writeFile(t, fb, "b.tmp", "temp", false)
	writeFile(t, fb, "c", "synced content", true)

	snaps := fb.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3 (Sync, SyncDir, Sync)", len(snaps))
	}
	last := snaps[len(snaps)-1]

	// Strict: only "a" has a durable directory entry.
	if len(last.Strict) != 1 || string(last.Strict["a"]) != "payload" {
		t.Fatalf("strict = %v, want exactly {a: payload}", last.Strict)
	}
	// Loose: namespace edits survive; b.tmp is a zero-length husk, c has
	// its synced contents.
	if got := last.Loose["c"]; string(got) != "synced content" {
		t.Fatalf("loose c = %q", got)
	}
	if got, ok := last.Loose["b.tmp"]; !ok || len(got) != 0 {
		t.Fatalf("loose b.tmp = %q, %v; want zero-length husk", got, ok)
	}
	if got := last.Loose["a"]; string(got) != "payload" {
		t.Fatalf("loose a = %q", got)
	}

	// AfterOps must be non-decreasing.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].AfterOps < snaps[i-1].AfterOps {
			t.Fatalf("snapshot op counts regress: %d then %d", snaps[i-1].AfterOps, snaps[i].AfterOps)
		}
	}

	// Rehydrating the strict snapshot yields exactly its files.
	re := NewFaultFromState("t2", last.Strict)
	names, err := re.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("rehydrated names = %v", names)
	}
}

func TestFaultListSortedAndReadAtEOF(t *testing.T) {
	fb := NewFault("t")
	for _, n := range []string{"c", "a", "b"} {
		writeFile(t, fb, n, n, true)
	}
	names, err := fb.List()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(names) != "[a b c]" {
		t.Fatalf("List = %v, want sorted", names)
	}
	f, size, err := fb.ReadAt("a")
	if err != nil || size != 1 {
		t.Fatalf("ReadAt: %v, size %d", err, size)
	}
	defer f.Close()
	buf := make([]byte, 4)
	n, err := f.ReadAt(buf, 0)
	if n != 1 || err != io.EOF {
		t.Fatalf("short read = %d, %v; want 1, EOF", n, err)
	}
	if _, err := f.ReadAt(buf, 10); err != io.EOF {
		t.Fatalf("past-end read = %v, want EOF", err)
	}
}
