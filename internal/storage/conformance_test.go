package storage

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"net/http/httptest"
	"testing"
)

// conformanceData is the file every backend serves in the contract
// suite: long enough for interior reads, with content that makes any
// offset mix-up visible.
func conformanceData() []byte {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i*7 + i>>4)
	}
	return data
}

// writeViaBackend creates name with the given contents through the
// backend's own write path.
func writeViaBackend(t *testing.T, b Backend, name string, data []byte) {
	t.Helper()
	f, err := b.Create(name)
	if err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := b.SyncDir(); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
}

// TestReadAtConformance runs the documented File.ReadAt contract over
// every backend: local FS, the in-memory fault backend, the HTTP range
// backend (against the reference handler), and the resilient wrapper
// over each — all five must be byte-for-byte and error-for-error
// interchangeable.
func TestReadAtConformance(t *testing.T) {
	const name = "part-000001-000.bln"
	data := conformanceData()

	backends := []struct {
		label string
		mk    func(t *testing.T) Backend
	}{
		{"local", func(t *testing.T) Backend {
			b, err := NewLocal(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			writeViaBackend(t, b, name, data)
			return b
		}},
		{"fault", func(t *testing.T) Backend {
			return NewFaultFromState("mem://conf", map[string][]byte{name: data})
		}},
		{"http", func(t *testing.T) Backend {
			local, err := NewLocal(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			writeViaBackend(t, local, name, data)
			srv := httptest.NewServer(NewHTTPHandler(local))
			t.Cleanup(srv.Close)
			h, err := NewHTTP(srv.URL, nil)
			if err != nil {
				t.Fatal(err)
			}
			return h
		}},
	}

	for _, bk := range backends {
		bk := bk
		t.Run(bk.label, func(t *testing.T) {
			checkReadAtContract(t, bk.mk(t), name, data)
		})
		t.Run("resilient-"+bk.label, func(t *testing.T) {
			checkReadAtContract(t, NewResilient(bk.mk(t), nil), name, data)
		})
	}
}

func checkReadAtContract(t *testing.T, b Backend, name string, data []byte) {
	t.Helper()
	size := int64(len(data))

	f, gotSize, err := b.ReadAt(name)
	if err != nil {
		t.Fatalf("ReadAt(%s): %v", name, err)
	}
	defer f.Close()
	if gotSize != size {
		t.Fatalf("size = %d, want %d", gotSize, size)
	}

	// Interior read: fills p exactly, no error.
	p := make([]byte, 100)
	n, err := f.ReadAt(p, 50)
	if n != 100 || err != nil {
		t.Fatalf("interior read = (%d, %v), want (100, nil)", n, err)
	}
	if !bytes.Equal(p, data[50:150]) {
		t.Fatal("interior read returned wrong bytes")
	}

	// Exact tail fill: still (len(p), nil).
	n, err = f.ReadAt(p, size-100)
	if n != 100 || err != nil {
		t.Fatalf("exact-tail read = (%d, %v), want (100, nil)", n, err)
	}
	if !bytes.Equal(p, data[size-100:]) {
		t.Fatal("exact-tail read returned wrong bytes")
	}

	// Tail overlap: the bytes that exist plus io.EOF.
	n, err = f.ReadAt(p, size-37)
	if n != 37 || err != io.EOF {
		t.Fatalf("tail read = (%d, %v), want (37, io.EOF)", n, err)
	}
	if !bytes.Equal(p[:37], data[size-37:]) {
		t.Fatal("tail read returned wrong bytes")
	}

	// At and past EOF: (0, io.EOF).
	if n, err = f.ReadAt(p, size); n != 0 || err != io.EOF {
		t.Fatalf("at-EOF read = (%d, %v), want (0, io.EOF)", n, err)
	}
	if n, err = f.ReadAt(p, size+10); n != 0 || err != io.EOF {
		t.Fatalf("past-EOF read = (%d, %v), want (0, io.EOF)", n, err)
	}

	// Zero-length destination: (0, nil), even at or past EOF.
	if n, err = f.ReadAt(nil, 10); n != 0 || err != nil {
		t.Fatalf("empty read = (%d, %v), want (0, nil)", n, err)
	}
	if n, err = f.ReadAt(nil, size); n != 0 || err != nil {
		t.Fatalf("empty read at EOF = (%d, %v), want (0, nil)", n, err)
	}

	// Negative offset: an error, and not io.EOF.
	if n, err = f.ReadAt(p, -1); err == nil || err == io.EOF {
		t.Fatalf("negative-offset read = (%d, %v), want non-EOF error", n, err)
	}

	// Missing files surface fs.ErrNotExist from open.
	if _, _, err := b.ReadAt("no-such-file"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("open of missing file = %v, want fs.ErrNotExist", err)
	}
}
