package storage

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ResilienceOptions tunes the Resilient wrapper's policy. The zero
// value selects the documented defaults; DisableHedging turns hedging
// off entirely.
type ResilienceOptions struct {
	// OpTimeout is the per-attempt deadline for reads on handles that
	// support cancellation (ContextFile). Attempts on plain handles run
	// to completion. 0 = DefaultOpTimeout; negative = no deadline.
	OpTimeout time.Duration
	// MaxRetries is how many fresh attempts follow a retryable failure
	// (so an op issues at most MaxRetries+1 attempts). 0 = DefaultMaxRetries;
	// negative = no retries.
	MaxRetries int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between attempts: attempt k (0-based) sleeps
	// min(BackoffBase << k, BackoffMax), scaled by ±50% jitter.
	// 0 selects DefaultBackoffBase / DefaultBackoffMax.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeDelay controls hedged reads on cancellable handles: after
	// this long without a first-leg response, a second identical request
	// launches and the first success wins (the loser is cancelled).
	// 0 = adaptive: track read latencies and hedge at their p95, once
	// HedgeMinSamples reads have been observed. DisableHedging (or any
	// negative value) turns hedging off.
	HedgeDelay time.Duration
	// HedgeMinSamples gates adaptive hedging until the latency tracker
	// has seen this many reads (0 = DefaultHedgeMinSamples).
	HedgeMinSamples int
	// BreakerThreshold opens the circuit breaker after this many
	// consecutive failed operations: further ops fail fast with
	// ErrCircuitOpen until BreakerCooldown elapses, then one probe op is
	// let through (success closes the breaker, failure re-opens it).
	// 0 = DefaultBreakerThreshold; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before probing
	// (0 = DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// Jitter returns a value in [0, 1) used to scale backoff (test hook;
	// nil = seeded math/rand). The policy multiplies each backoff by
	// (0.5 + Jitter()), i.e. ±50%.
	Jitter func() float64
	// Clock substitutes a fake time source for deterministic tests
	// (nil = real time).
	Clock Clock
}

// DisableHedging as ResilienceOptions.HedgeDelay turns hedged reads off.
const DisableHedging = time.Duration(-1)

// Resilience policy defaults.
const (
	DefaultOpTimeout        = 10 * time.Second
	DefaultMaxRetries       = 4
	DefaultBackoffBase      = 20 * time.Millisecond
	DefaultBackoffMax       = 2 * time.Second
	DefaultHedgeMinSamples  = 16
	DefaultBreakerThreshold = 8
	DefaultBreakerCooldown  = 5 * time.Second
	// minHedgeDelay floors the adaptive hedge delay so a burst of
	// cache-fast reads cannot drive it to ~0 and double every request.
	minHedgeDelay = 200 * time.Microsecond
)

// ResilienceStats counts the wrapper's interventions. All counters are
// cumulative over the wrapper's lifetime; callers diff snapshots to
// attribute them to one scan.
type ResilienceStats struct {
	// Ops is the number of read operations issued through the wrapper
	// (file reads and opens), Retries how many extra attempts retryable
	// failures cost, and Failures how many ops exhausted their budget
	// (or hit a permanent error) and surfaced an error.
	Ops      int64
	Retries  int64
	Failures int64
	// Hedges counts second requests launched; HedgeWins how many of them
	// beat the first leg.
	Hedges    int64
	HedgeWins int64
	// BreakerOpens counts closed->open transitions; BreakerFastFails the
	// ops rejected without touching the backend while open.
	BreakerOpens     int64
	BreakerFastFails int64
}

// Resilient wraps any Backend with the remote-read survival policy:
// per-attempt deadlines, capped-exponential backoff with jitter on
// retryable errors (IsRetryable — never on 4xx, missing files, or
// integrity failures), hedged reads against tail latency, and a
// consecutive-failure circuit breaker. Wrapping is read-focused:
// ReadAt/List (and file reads through handles it returns) get the full
// policy, while mutating operations pass through untouched — blind
// retries of non-idempotent writes would fight the commit protocol's
// own error handling.
//
// When no faults occur the wrapper stays off the hot path: reads on
// plain (non-cancellable) handles add no allocation and no goroutine,
// and reads on cancellable handles add one goroutine plus O(1) small
// allocations (pinned by the CI allocs/op ceiling).
type Resilient struct {
	b    Backend
	opts ResilienceOptions
	clk  Clock

	jitterMu sync.Mutex
	jitter   func() float64

	lat     latencyTracker
	breaker breaker

	ops, retries, failures, hedges, hedgeWins int64
	breakerOpens, breakerFastFails            int64
}

// NewResilient wraps b with the resilience policy. opts may be nil for
// defaults.
func NewResilient(b Backend, opts *ResilienceOptions) *Resilient {
	r := &Resilient{b: b}
	if opts != nil {
		r.opts = *opts
	}
	o := &r.opts
	if o.OpTimeout == 0 {
		o.OpTimeout = DefaultOpTimeout
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = DefaultMaxRetries
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = DefaultHedgeMinSamples
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = DefaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	r.clk = o.Clock
	if r.clk == nil {
		r.clk = realClock{}
	}
	r.jitter = o.Jitter
	if r.jitter == nil {
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		r.jitter = rng.Float64
	}
	r.breaker.threshold = o.BreakerThreshold
	r.breaker.cooldown = o.BreakerCooldown
	return r
}

// Unwrap returns the wrapped backend.
func (r *Resilient) Unwrap() Backend { return r.b }

// Root returns the wrapped backend's identity.
func (r *Resilient) Root() string { return r.b.Root() }

// ResilienceStats snapshots the cumulative intervention counters.
func (r *Resilient) ResilienceStats() ResilienceStats {
	return ResilienceStats{
		Ops:              atomic.LoadInt64(&r.ops),
		Retries:          atomic.LoadInt64(&r.retries),
		Failures:         atomic.LoadInt64(&r.failures),
		Hedges:           atomic.LoadInt64(&r.hedges),
		HedgeWins:        atomic.LoadInt64(&r.hedgeWins),
		BreakerOpens:     atomic.LoadInt64(&r.breakerOpens),
		BreakerFastFails: atomic.LoadInt64(&r.breakerFastFails),
	}
}

// retryOp runs op under the breaker + retry/backoff policy. ctx bounds
// the whole operation (all attempts and their backoffs).
func (r *Resilient) retryOp(ctx context.Context, op func() error) error {
	atomic.AddInt64(&r.ops, 1)
	if err := r.breakerAllow(); err != nil {
		return err
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil {
			r.breakerResult(true)
			return nil
		}
		if attempt >= r.opts.MaxRetries || !IsRetryable(err) {
			break
		}
		atomic.AddInt64(&r.retries, 1)
		if serr := r.clk.Sleep(ctx, r.backoff(attempt)); serr != nil {
			err = fmt.Errorf("storage: retry abandoned: %w (last error: %v)", serr, err)
			break
		}
	}
	r.breakerResult(false)
	atomic.AddInt64(&r.failures, 1)
	return err
}

// backoff returns the capped-exponential, jittered delay before retry
// attempt+1.
func (r *Resilient) backoff(attempt int) time.Duration {
	d := r.opts.BackoffBase << uint(attempt)
	if d > r.opts.BackoffMax || d <= 0 { // <=0 guards shift overflow
		d = r.opts.BackoffMax
	}
	r.jitterMu.Lock()
	j := r.jitter()
	r.jitterMu.Unlock()
	return time.Duration(float64(d) * (0.5 + j))
}

// ReadAt opens the named file with retries; the returned handle applies
// the full read policy (deadline, retry, hedge).
func (r *Resilient) ReadAt(name string) (File, int64, error) {
	var (
		f    File
		size int64
	)
	err := r.retryOp(context.Background(), func() error {
		var err error
		f, size, err = r.b.ReadAt(name)
		return err
	})
	if err != nil {
		return nil, 0, err
	}
	cf, _ := f.(ContextFile)
	return &resilientFile{r: r, under: f, cf: cf, name: name}, size, nil
}

// List enumerates with retries (remote listings are reads too).
func (r *Resilient) List() ([]string, error) {
	var names []string
	err := r.retryOp(context.Background(), func() error {
		var err error
		names, err = r.b.List()
		return err
	})
	return names, err
}

// Create passes through: writes carry their own transactional error
// handling (the dataset commit protocol) and must not be blind-retried.
func (r *Resilient) Create(name string) (File, error) { return r.b.Create(name) }

// Rename passes through (see Create).
func (r *Resilient) Rename(oldName, newName string) error { return r.b.Rename(oldName, newName) }

// Remove passes through (see Create).
func (r *Resilient) Remove(name string) error { return r.b.Remove(name) }

// SyncDir passes through (see Create).
func (r *Resilient) SyncDir() error { return r.b.SyncDir() }

// resilientFile applies the read policy to one open handle.
type resilientFile struct {
	r     *Resilient
	under File
	cf    ContextFile // nil when the handle is not cancellable
	name  string
}

func (f *resilientFile) ReadAt(p []byte, off int64) (int, error) {
	r := f.r
	atomic.AddInt64(&r.ops, 1)
	if err := r.breakerAllow(); err != nil {
		return 0, err
	}
	var (
		n   int
		err error
	)
	for attempt := 0; ; attempt++ {
		n, err = f.readAttempt(p, off)
		if err == nil || err == io.EOF {
			// io.EOF outcomes (clean short read / past-end read) are part
			// of the ReadAt contract — successful operations, not failures.
			r.breakerResult(true)
			return n, err
		}
		if attempt >= r.opts.MaxRetries || !IsRetryable(err) {
			break
		}
		atomic.AddInt64(&r.retries, 1)
		if serr := r.clk.Sleep(context.Background(), r.backoff(attempt)); serr != nil {
			err = serr
			break
		}
	}
	r.breakerResult(false)
	atomic.AddInt64(&r.failures, 1)
	return n, err
}

// readAttempt issues one logical attempt: a plain synchronous read for
// non-cancellable handles, or a deadline-bounded, possibly hedged read
// for cancellable ones.
func (f *resilientFile) readAttempt(p []byte, off int64) (int, error) {
	if f.cf == nil {
		return f.under.ReadAt(p, off)
	}
	return f.hedgedRead(p, off)
}

// legResult is one hedge leg's outcome; buf is non-nil for the hedge
// leg, which reads into private storage so the two legs never race on p.
type legResult struct {
	n     int
	err   error
	hedge bool
}

// hedgedRead runs the cancellable read with a per-attempt deadline and,
// if the first leg is slow, a hedge leg. First success wins; the loser
// is cancelled and always joined before the winning bytes are exposed,
// so no goroutine outlives the call and no buffer is written after
// return.
func (f *resilientFile) hedgedRead(p []byte, off int64) (int, error) {
	r := f.r
	ctx, cancelAll := context.WithCancel(context.Background())
	defer cancelAll()
	var timedOut atomic.Bool
	if d := r.opts.OpTimeout; d > 0 {
		stop := r.clk.AfterFunc(d, func() {
			timedOut.Store(true)
			cancelAll()
		})
		defer stop()
	}

	start := r.clk.Now()
	ch := make(chan legResult, 2)
	go func() {
		n, err := f.cf.ReadAtContext(ctx, p, off)
		ch <- legResult{n: n, err: err}
	}()

	legs := 1
	var hedgeBuf []byte
	hedgeCtx, hedgeCancel := context.Context(nil), context.CancelFunc(nil)
	var hedgeTimerC chan struct{}
	var stopHedgeTimer func() bool
	if hd := r.hedgeDelay(); hd >= 0 {
		hedgeTimerC = make(chan struct{}, 1)
		stopHedgeTimer = r.clk.AfterFunc(hd, func() { hedgeTimerC <- struct{}{} })
		defer stopHedgeTimer()
	}

	var winner legResult
	haveWinner := false
	for legs > 0 {
		select {
		case res := <-ch:
			legs--
			if res.err == nil || res.err == io.EOF {
				if !haveWinner {
					winner, haveWinner = res, true
					if res.hedge {
						atomic.AddInt64(&r.hedgeWins, 1)
					}
					cancelAll() // the loser must stop touching its buffer
				}
				continue
			}
			// This leg failed. If the other leg is still running, let it
			// decide the op; if this was the last leg and nothing won, the
			// failure stands.
			if !haveWinner && legs == 0 {
				winner = res
			}
		case <-hedgeTimerC:
			if haveWinner || legs != 1 || hedgeCtx != nil {
				continue
			}
			atomic.AddInt64(&r.hedges, 1)
			hedgeCtx, hedgeCancel = context.WithCancel(ctx)
			defer hedgeCancel()
			hedgeBuf = make([]byte, len(p))
			legs++
			go func() {
				n, err := f.cf.ReadAtContext(hedgeCtx, hedgeBuf, off)
				ch <- legResult{n: n, err: err, hedge: true}
			}()
		}
	}
	if !haveWinner {
		// Every leg failed; winner holds the last failure. A deadline
		// expiry cancelled the legs with context.Canceled — surface it as
		// the retryable timeout it is.
		if timedOut.Load() {
			return winner.n, fmt.Errorf("storage: %s: read deadline %v exceeded: %w",
				f.name, r.opts.OpTimeout, context.DeadlineExceeded)
		}
		return winner.n, winner.err
	}
	if winner.hedge {
		copy(p[:winner.n], hedgeBuf[:winner.n])
	} else if winner.err == nil {
		// Track only clean primary latencies: hedge wins and EOF tails
		// would skew the p95 the hedge delay adapts to.
		r.lat.record(r.clk.Now().Sub(start))
	}
	return winner.n, winner.err
}

// hedgeDelay resolves the current hedge trigger: fixed, adaptive p95,
// or -1 when hedging is off (disabled, or adaptive without samples).
func (r *Resilient) hedgeDelay() time.Duration {
	hd := r.opts.HedgeDelay
	if hd < 0 {
		return -1
	}
	if hd > 0 {
		return hd
	}
	p95, n := r.lat.p95()
	if n < r.opts.HedgeMinSamples {
		return -1
	}
	if p95 < minHedgeDelay {
		p95 = minHedgeDelay
	}
	return p95
}

// ETag forwards the wrapped handle's pinned object version (see
// storage.ETagged); "" when the underlying backend has none.
func (f *resilientFile) ETag() string {
	if e, ok := f.under.(ETagged); ok {
		return e.ETag()
	}
	return ""
}

func (f *resilientFile) WriteAt(p []byte, off int64) (int, error) { return f.under.WriteAt(p, off) }
func (f *resilientFile) Write(p []byte) (int, error)              { return f.under.Write(p) }
func (f *resilientFile) Sync() error                              { return f.under.Sync() }
func (f *resilientFile) Close() error                             { return f.under.Close() }

// latencyTracker keeps a ring of recent read latencies and serves their
// p95 for the adaptive hedge delay. The p95 is recomputed at most every
// latRecomputeEvery inserts — reads between recomputes reuse the cached
// value, keeping the tracker O(1) on the hot path.
const (
	latRingSize       = 128
	latRecomputeEvery = 16
)

type latencyTracker struct {
	mu      sync.Mutex
	ring    [latRingSize]time.Duration
	n       int // total recorded (ring holds min(n, latRingSize))
	cached  time.Duration
	pending int
	scratch []time.Duration
}

func (t *latencyTracker) record(d time.Duration) {
	t.mu.Lock()
	t.ring[t.n%latRingSize] = d
	t.n++
	t.pending++
	if t.pending >= latRecomputeEvery || t.cached == 0 {
		t.recomputeLocked()
		t.pending = 0
	}
	t.mu.Unlock()
}

func (t *latencyTracker) recomputeLocked() {
	size := t.n
	if size > latRingSize {
		size = latRingSize
	}
	if size == 0 {
		return
	}
	t.scratch = append(t.scratch[:0], t.ring[:size]...)
	sort.Slice(t.scratch, func(i, j int) bool { return t.scratch[i] < t.scratch[j] })
	t.cached = t.scratch[size*95/100]
}

func (t *latencyTracker) p95() (time.Duration, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cached, t.n
}

// breaker is the consecutive-failure circuit breaker. threshold <= 0
// disables it.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	fails    int
	open     bool
	openedAt time.Time
	probing  bool
}

// breakerAllow gates one op: fail fast while open, let exactly one
// probe through after the cooldown.
func (r *Resilient) breakerAllow() error {
	b := &r.breaker
	if b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return nil
	}
	if r.clk.Now().Sub(b.openedAt) >= b.cooldown && !b.probing {
		b.probing = true // half-open: this op is the probe
		return nil
	}
	atomic.AddInt64(&r.breakerFastFails, 1)
	return fmt.Errorf("%w (backend %s: %d consecutive failures)", ErrCircuitOpen, r.b.Root(), b.fails)
}

// breakerResult records an op outcome.
func (r *Resilient) breakerResult(ok bool) {
	b := &r.breaker
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.fails = 0
		b.open = false
		b.probing = false
		return
	}
	b.fails++
	b.probing = false
	if !b.open && b.fails >= b.threshold {
		b.open = true
		atomic.AddInt64(&r.breakerOpens, 1)
	}
	if b.open {
		b.openedAt = r.clk.Now() // failed probe restarts the cooldown
	}
}
