package storage

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"net/http"
	"strings"
	"sync"
	"time"
)

// NewHTTPHandler serves a Backend's files over GET/HEAD with the two
// features the HTTP range-read backend depends on: byte-range requests
// and strong ETags honored through If-Match. It is the reference server
// side — httptest integration tests, the examples, and small deployments
// publish a local dataset directory through it; production object stores
// already speak the same protocol.
//
// Each request reads the file through the backend and serves it via
// http.ServeContent (which implements Range and precondition handling);
// the ETag is a strong hash of the content, cached per (name, size) so
// immutable members hash once.
func NewHTTPHandler(b Backend) http.Handler {
	return &httpHandler{b: b, etags: map[string]string{}}
}

type httpHandler struct {
	b Backend

	mu    sync.Mutex
	etags map[string]string // "name\x00size" -> etag
}

func (h *httpHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "read-only", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/")
	if err := ValidateName(name); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data, err := ReadFile(h.b, name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			http.NotFound(w, r)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	key := fmt.Sprintf("%s\x00%d", name, len(data))
	h.mu.Lock()
	etag, ok := h.etags[key]
	h.mu.Unlock()
	if !ok {
		sum := fnv.New64a()
		sum.Write(data)
		etag = fmt.Sprintf("\"%016x-%x\"", sum.Sum64(), len(data))
		h.mu.Lock()
		h.etags[key] = etag
		h.mu.Unlock()
	}
	w.Header().Set("ETag", etag)
	// ServeContent handles Range, If-Match/If-None-Match preconditions
	// (412 on ETag mismatch), and HEAD; a zero modtime suppresses
	// Last-Modified so the ETag is the only validator.
	http.ServeContent(w, r, name, time.Time{}, bytes.NewReader(data))
}
