// Package storage abstracts the flat-directory file system the dataset
// layer commits into. A Backend owns one directory of files addressed by
// bare names (no separators): member part files, manifest generations,
// and the CURRENT pointer all live side by side, and every byte the
// dataset layer reads or writes flows through this interface.
//
// The abstraction exists for two reasons. First, durability: the commit
// protocol's correctness depends on exactly where file contents and
// directory entries are forced to stable storage, so the interface makes
// both explicit — File.Sync for contents, Backend.SyncDir for the
// namespace (creates, renames, removes). A rename is only crash-durable
// after a SyncDir; file bytes are only crash-durable after a Sync. Local
// is the production implementation over a real directory; Fault is a
// deterministic in-memory implementation that injects per-op errors and
// latency and simulates power cuts by dropping everything not yet
// fsynced, which is what the dataset crash-matrix harness runs against.
// Second, the ROADMAP's distributed-dataset direction: remote members
// (HTTP range reads, object stores) slot in behind the same surface.
package storage

import (
	"fmt"
	"io"
	"strings"
)

// File is an open handle on one backend file. Reads and positional
// writes address the file's current contents; Write appends at the
// handle's own sequential offset (handles used for writing start at 0).
// Sync forces the file's contents — not its directory entry — to stable
// storage: bytes written but not synced may vanish at a power cut even
// after Close returns.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Writer
	// Sync forces the file's contents durable.
	Sync() error
	Close() error
}

// Backend is one flat directory of files. Implementations must be safe
// for concurrent use by multiple goroutines.
//
// Durability contract: Create, Rename, and Remove are namespace edits
// that a power cut may undo until a subsequent SyncDir returns; file
// contents are durable only up to the last File.Sync. A crash-safe
// publish of new bytes under a final name is therefore always the
// sequence: Create(tmp), write, Sync, Close, Rename(tmp, final),
// SyncDir.
type Backend interface {
	// ReadAt opens the named file for random-access reads (and in-place
	// positional writes — deletion vectors rewrite footer bytes in
	// place), returning the handle and the file's current size.
	ReadAt(name string) (File, int64, error)
	// Create creates or truncates the named file for writing.
	Create(name string) (File, error)
	// Rename atomically replaces newName with oldName's file.
	Rename(oldName, newName string) error
	// Remove deletes the named file.
	Remove(name string) error
	// SyncDir forces the directory's namespace — every Create, Rename,
	// and Remove issued so far — to stable storage.
	SyncDir() error
	// List returns the backend's file names in lexical order.
	List() ([]string, error)
	// Root identifies the directory this backend serves (an absolute
	// path for Local, a caller-chosen identity for fakes). Two backends
	// with equal Roots address the same underlying state; the dataset
	// layer keys its commit critical sections by Root.
	Root() string
}

// ValidateName rejects names that would escape the backend's flat
// namespace.
func ValidateName(name string) error {
	if name == "" || name == "." || name == ".." || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("storage: invalid file name %q", name)
	}
	return nil
}

// ReadFile reads the named file's full contents through b.
func ReadFile(b Backend, name string) ([]byte, error) {
	f, size, err := b.ReadAt(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return data, nil
}

// WriteFileAtomic publishes data under name via the crash-safe sequence:
// a deterministic temporary (name + ".tmp"), content sync, rename, and
// directory sync. A crash at any point leaves either the old file or the
// new one, never a torn mix; leftover temporaries are debris for the
// dataset layer's recovery sweep.
func WriteFileAtomic(b Backend, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := b.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		b.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		b.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		b.Remove(tmp)
		return err
	}
	if err := b.Rename(tmp, name); err != nil {
		b.Remove(tmp)
		return err
	}
	return b.SyncDir()
}
