// Package storage abstracts the flat-directory file system the dataset
// layer commits into. A Backend owns one directory of files addressed by
// bare names (no separators): member part files, manifest generations,
// and the CURRENT pointer all live side by side, and every byte the
// dataset layer reads or writes flows through this interface.
//
// The abstraction exists for two reasons. First, durability: the commit
// protocol's correctness depends on exactly where file contents and
// directory entries are forced to stable storage, so the interface makes
// both explicit — File.Sync for contents, Backend.SyncDir for the
// namespace (creates, renames, removes). A rename is only crash-durable
// after a SyncDir; file bytes are only crash-durable after a Sync. Local
// is the production implementation over a real directory; Fault is a
// deterministic in-memory implementation that injects per-op errors and
// latency and simulates power cuts by dropping everything not yet
// fsynced, which is what the dataset crash-matrix harness runs against.
// Second, the ROADMAP's distributed-dataset direction: remote members
// (HTTP range reads, object stores) slot in behind the same surface.
package storage

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"syscall"
)

// File is an open handle on one backend file. Reads and positional
// writes address the file's current contents; Write appends at the
// handle's own sequential offset (handles used for writing start at 0).
// Sync forces the file's contents — not its directory entry — to stable
// storage: bytes written but not synced may vanish at a power cut even
// after Close returns.
//
// ReadAt contract (identical across every backend, pinned by the
// conformance suite in conformance_test.go):
//
//   - a read fully inside the file returns (len(p), nil) — never a
//     short read with a nil error;
//   - a read overlapping the end of the file returns the available
//     prefix as (n, io.EOF) with 0 < n < len(p);
//   - a read starting at or past the end of the file returns (0, io.EOF);
//   - len(p) == 0 returns (0, nil) regardless of offset (offset
//     validity is not probed);
//   - a negative offset is an error that is not io.EOF.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Writer
	// Sync forces the file's contents durable.
	Sync() error
	Close() error
}

// ContextFile is implemented by File handles whose reads can be
// cancelled mid-flight — remote backends whose reads are network
// requests, and fault backends that simulate them. The Resilient
// wrapper uses it to enforce per-op deadlines and to cancel the losing
// leg of a hedged read; handles without it (local files) are read
// synchronously and never hedged.
type ContextFile interface {
	ReadAtContext(ctx context.Context, p []byte, off int64) (int, error)
}

// ETagged is the optional File upgrade for backends that pin an object
// version at open (the HTTP range backend's HEAD + If-Match pin). A
// non-empty ETag is a content discriminator: two handles with the same
// ETag address the same bytes, which lets caches key immutable
// artifacts by version. Wrappers forward it from the handle they wrap.
type ETagged interface {
	ETag() string
}

// ErrReadOnly is returned by mutation operations on read-only backends
// (the HTTP range-read backend serves immutable published datasets).
var ErrReadOnly = errors.New("storage: backend is read-only")

// ErrListUnsupported is returned by List on backends with no namespace
// enumeration (HTTP exposes only named objects). Callers that can
// degrade — recovery sweeps, orphan classification — treat it as an
// empty, unknowable listing rather than a failure.
var ErrListUnsupported = errors.New("storage: backend cannot list its namespace")

// ErrChangedUnderRead reports that a remote file's ETag no longer
// matches the one pinned when the handle was opened: the object was
// replaced mid-scan. Never retryable — the bytes already read may be
// from the old object, so the caller must reopen and restart.
var ErrChangedUnderRead = errors.New("storage: remote file changed under read (etag mismatch)")

// ErrCircuitOpen is returned by a Resilient backend whose circuit
// breaker has tripped: the underlying backend failed too many
// consecutive operations and calls now fail fast until the cooldown
// elapses. Not retryable within the op — the point is to stop retrying.
var ErrCircuitOpen = errors.New("storage: circuit breaker open")

// StatusError is a non-2xx HTTP response surfaced as an error. 5xx and
// 429 are transient server trouble and retryable; other 4xx are
// caller/content errors and are not.
type StatusError struct {
	Name   string
	Status int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("storage: %s: unexpected HTTP status %d", e.Name, e.Status)
}

// transientError marks an error as retryable (see Transient).
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so IsRetryable reports true — the marker fault
// injectors and backends use for failures that a retry may outrun.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsRetryable classifies an error for the retry/hedge policy: true for
// failures where a fresh attempt can plausibly succeed (timeouts,
// connection resets, 5xx server responses, explicitly Transient-marked
// injections), false for everything else — 4xx responses, missing
// files, checksum mismatches, ETag changes, and unknown errors are
// permanent and must surface immediately.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var te *transientError
	if errors.As(err, &te) {
		return true
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status >= 500 || se.Status == 429
	}
	if errors.Is(err, ErrChangedUnderRead) || errors.Is(err, ErrCircuitOpen) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne interface{ Timeout() bool } // net.Error without importing net
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	return false
}

// Backend is one flat directory of files. Implementations must be safe
// for concurrent use by multiple goroutines.
//
// Durability contract: Create, Rename, and Remove are namespace edits
// that a power cut may undo until a subsequent SyncDir returns; file
// contents are durable only up to the last File.Sync. A crash-safe
// publish of new bytes under a final name is therefore always the
// sequence: Create(tmp), write, Sync, Close, Rename(tmp, final),
// SyncDir.
type Backend interface {
	// ReadAt opens the named file for random-access reads (and in-place
	// positional writes — deletion vectors rewrite footer bytes in
	// place), returning the handle and the file's current size.
	ReadAt(name string) (File, int64, error)
	// Create creates or truncates the named file for writing.
	Create(name string) (File, error)
	// Rename atomically replaces newName with oldName's file.
	Rename(oldName, newName string) error
	// Remove deletes the named file.
	Remove(name string) error
	// SyncDir forces the directory's namespace — every Create, Rename,
	// and Remove issued so far — to stable storage.
	SyncDir() error
	// List returns the backend's file names in lexical order.
	List() ([]string, error)
	// Root identifies the directory this backend serves (an absolute
	// path for Local, a caller-chosen identity for fakes). Two backends
	// with equal Roots address the same underlying state; the dataset
	// layer keys its commit critical sections by Root.
	Root() string
}

// ValidateName rejects names that would escape the backend's flat
// namespace.
func ValidateName(name string) error {
	if name == "" || name == "." || name == ".." || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("storage: invalid file name %q", name)
	}
	return nil
}

// ReadFile reads the named file's full contents through b.
func ReadFile(b Backend, name string) ([]byte, error) {
	f, size, err := b.ReadAt(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return data, nil
}

// WriteFileAtomic publishes data under name via the crash-safe sequence:
// a deterministic temporary (name + ".tmp"), content sync, rename, and
// directory sync. A crash at any point leaves either the old file or the
// new one, never a torn mix; leftover temporaries are debris for the
// dataset layer's recovery sweep.
func WriteFileAtomic(b Backend, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := b.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		b.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		b.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		b.Remove(tmp)
		return err
	}
	if err := b.Rename(tmp, name); err != nil {
		b.Remove(tmp)
		return err
	}
	return b.SyncDir()
}
