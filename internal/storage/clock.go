package storage

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Clock abstracts the three time operations the resilience policy uses,
// so backoff, hedge-delay, and circuit-breaker behavior is unit-testable
// against a hand-advanced fake with no real sleeps. The zero ResilienceOptions
// selects the real clock.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
	// AfterFunc schedules fn after d on its own goroutine and returns a
	// stop function (false if fn already ran or was stopped).
	AfterFunc(d time.Duration, fn func()) (stop func() bool)
}

// realClock is the production Clock over package time.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (realClock) AfterFunc(d time.Duration, fn func()) func() bool {
	t := time.AfterFunc(d, fn)
	return t.Stop
}

// FakeClock is a hand-advanced Clock for deterministic policy tests: no
// timer fires and no sleeper wakes until Advance moves the fake time
// past its deadline.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at      time.Time
	fn      func()       // AfterFunc timers
	wake    chan<- error // Sleep waiters
	stopped bool
}

// NewFakeClock returns a fake clock starting at an arbitrary fixed
// epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_700_000_000, 0)}
}

// Now returns the current fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep blocks until Advance passes d or ctx is cancelled.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	wake := make(chan error, 1)
	c.mu.Lock()
	t := &fakeTimer{at: c.now.Add(d), wake: wake}
	c.timers = append(c.timers, t)
	c.mu.Unlock()
	select {
	case err := <-wake:
		return err
	case <-ctx.Done():
		c.mu.Lock()
		t.stopped = true
		c.mu.Unlock()
		return ctx.Err()
	}
}

// AfterFunc schedules fn at now+d; Advance fires it on its own
// goroutine, mirroring time.AfterFunc.
func (c *FakeClock) AfterFunc(d time.Duration, fn func()) func() bool {
	c.mu.Lock()
	t := &fakeTimer{at: c.now.Add(d), fn: fn}
	c.timers = append(c.timers, t)
	c.mu.Unlock()
	return func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		was := t.stopped
		t.stopped = true
		return !was
	}
}

// Advance moves the fake time forward, firing every due timer in
// deadline order (so a 10ms hedge timer fires before a 50ms deadline
// timer within one Advance).
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due []*fakeTimer
	rest := c.timers[:0]
	for _, t := range c.timers {
		if !t.stopped && !t.at.After(now) {
			due = append(due, t)
		} else if !t.stopped {
			rest = append(rest, t)
		}
	}
	c.timers = rest
	c.mu.Unlock()
	sort.SliceStable(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, t := range due {
		if t.fn != nil {
			go t.fn()
		}
		if t.wake != nil {
			t.wake <- nil
		}
	}
}

// Waiters reports how many timers and sleepers are pending — tests use
// it to synchronize "the policy is now blocked in backoff" states.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.timers {
		if !t.stopped {
			n++
		}
	}
	return n
}
