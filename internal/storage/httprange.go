package storage

import (
	"context"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/url"
	"strings"
	"sync"
)

// IsHTTPURL reports whether path names a remote HTTP(S) dataset — the
// dispatch test OpenDataset and the CLI use to pick this backend.
func IsHTTPURL(path string) bool {
	if len(path) > 8 { // scheme matching is case-insensitive (RFC 3986)
		path = strings.ToLower(path[:8])
	}
	return strings.HasPrefix(path, "http://") || strings.HasPrefix(path, "https://")
}

// HTTPOptions configures an HTTP range-read backend.
type HTTPOptions struct {
	// Client overrides the HTTP client. The default bounds connection
	// reuse: MaxIdleConnsPerHost = DefaultHTTPMaxIdleConns keep-alive
	// connections per host, so a wide concurrent scan recycles a small
	// warm pool instead of opening one socket per member read.
	Client *http.Client
	// DisableETagPinning skips If-Match on range reads. Only safe when
	// the server is known not to emit ETags anyway; without pinning a
	// member replaced mid-scan can serve torn bytes undetected.
	DisableETagPinning bool
}

// DefaultHTTPMaxIdleConns is the default keep-alive pool size per host.
const DefaultHTTPMaxIdleConns = 16

// HTTPBackend is a read-only Backend over HTTP(S) Range requests: one
// base URL standing for the dataset directory, each file a sibling
// object fetched with GET + Range. It is how a dataset published behind
// any plain HTTP server (object-store gateway, nginx, httptest) is
// scanned without copying it locally.
//
// Immutability is enforced, not assumed: the first open of a file HEADs
// it to learn its size and ETag, and every subsequent range GET carries
// If-Match with that ETag. A server that replaced the object answers
// 412 Precondition Failed, which surfaces as ErrChangedUnderRead — a
// member can never change silently mid-scan. Servers that emit no ETag
// degrade to unpinned reads.
//
// All mutating operations return ErrReadOnly and List returns
// ErrListUnsupported (HTTP has no directory enumeration); SyncDir is a
// no-op — there is nothing volatile on the client side to make durable.
type HTTPBackend struct {
	base   *url.URL
	client *http.Client
	pin    bool

	// pins caches each file's HEAD-discovered size and ETag so reopening
	// a member (fsck after scan, a second scanner) costs no extra probe
	// and keeps reading the same pinned object version.
	mu   sync.Mutex
	pins map[string]httpPin
}

type httpPin struct {
	size int64
	etag string
}

// NewHTTP returns a read-only backend over the dataset published at
// baseURL (the "directory": file names are appended as one path
// segment).
func NewHTTP(baseURL string, opts *HTTPOptions) (*HTTPBackend, error) {
	if !IsHTTPURL(baseURL) {
		return nil, fmt.Errorf("storage: %q is not an http(s) URL", baseURL)
	}
	u, err := url.Parse(strings.TrimSuffix(baseURL, "/"))
	if err != nil {
		return nil, fmt.Errorf("storage: parsing %q: %w", baseURL, err)
	}
	h := &HTTPBackend{base: u, pin: true, pins: map[string]httpPin{}}
	if opts != nil {
		h.client = opts.Client
		h.pin = !opts.DisableETagPinning
	}
	if h.client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 4 * DefaultHTTPMaxIdleConns
		tr.MaxIdleConnsPerHost = DefaultHTTPMaxIdleConns
		h.client = &http.Client{Transport: tr}
	}
	return h, nil
}

// Root returns the base URL; two backends over the same URL address the
// same remote state.
func (h *HTTPBackend) Root() string { return h.base.String() }

func (h *HTTPBackend) urlFor(name string) (string, error) {
	if err := ValidateName(name); err != nil {
		return "", err
	}
	u := *h.base
	u.Path = u.Path + "/" + name
	return u.String(), nil
}

// ReadAt opens the named remote file: a HEAD request discovers its size
// and pins its ETag. The returned handle is safe for concurrent reads —
// every ReadAt is an independent range request on the shared client.
func (h *HTTPBackend) ReadAt(name string) (File, int64, error) {
	target, err := h.urlFor(name)
	if err != nil {
		return nil, 0, err
	}
	h.mu.Lock()
	pin, ok := h.pins[name]
	h.mu.Unlock()
	if !ok {
		pin, err = h.head(name, target)
		if err != nil {
			return nil, 0, err
		}
		h.mu.Lock()
		h.pins[name] = pin
		h.mu.Unlock()
	}
	return &httpFile{b: h, name: name, url: target, pin: pin}, pin.size, nil
}

// invalidate drops the cached pin after a read proved it stale, so the
// next open re-probes the replaced object instead of inheriting a pin
// that can only keep failing.
func (h *HTTPBackend) invalidate(name string) {
	h.mu.Lock()
	delete(h.pins, name)
	h.mu.Unlock()
}

// head probes the named object's size and ETag.
func (h *HTTPBackend) head(name, target string) (httpPin, error) {
	req, err := http.NewRequest(http.MethodHead, target, nil)
	if err != nil {
		return httpPin{}, err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return httpPin{}, fmt.Errorf("storage: HEAD %s: %w", name, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusNotFound:
		return httpPin{}, fmt.Errorf("storage: open %s: %w", name, fs.ErrNotExist)
	default:
		return httpPin{}, &StatusError{Name: name, Status: resp.StatusCode}
	}
	if resp.ContentLength < 0 {
		return httpPin{}, fmt.Errorf("storage: HEAD %s: server sent no Content-Length", name)
	}
	pin := httpPin{size: resp.ContentLength}
	if h.pin {
		pin.etag = resp.Header.Get("ETag")
	}
	return pin, nil
}

// Create is unsupported: the backend is read-only.
func (h *HTTPBackend) Create(string) (File, error) { return nil, ErrReadOnly }

// Rename is unsupported: the backend is read-only.
func (h *HTTPBackend) Rename(string, string) error { return ErrReadOnly }

// Remove is unsupported: the backend is read-only.
func (h *HTTPBackend) Remove(string) error { return ErrReadOnly }

// SyncDir is a no-op: a read-only client holds nothing volatile.
func (h *HTTPBackend) SyncDir() error { return nil }

// List returns ErrListUnsupported: HTTP exposes named objects, not a
// namespace. Recovery sweeps and orphan scans degrade gracefully.
func (h *HTTPBackend) List() ([]string, error) { return nil, ErrListUnsupported }

// httpFile is one pinned remote object. Reads are stateless range
// requests, so one handle serves any number of concurrent readers.
type httpFile struct {
	b    *HTTPBackend
	name string
	url  string
	pin  httpPin
}

func (f *httpFile) ReadAt(p []byte, off int64) (int, error) {
	return f.ReadAtContext(context.Background(), p, off)
}

// ReadAtContext fetches bytes [off, off+len(p)) with a single range
// GET, If-Match pinned to the open-time ETag. Cancelling ctx aborts the
// request — the hook hedged reads use to cancel the losing leg.
func (f *httpFile) ReadAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: %s: negative offset", f.name)
	}
	if len(p) == 0 {
		return 0, nil
	}
	if off >= f.pin.size {
		return 0, io.EOF
	}
	end := off + int64(len(p)) - 1
	if max := f.pin.size - 1; end > max {
		end = max
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.url, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, end))
	if f.pin.etag != "" {
		req.Header.Set("If-Match", f.pin.etag)
	}
	resp, err := f.b.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("storage: GET %s: %w", f.name, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	want := int(end - off + 1)
	switch resp.StatusCode {
	case http.StatusPartialContent:
		if got := resp.ContentLength; got >= 0 && got != int64(want) {
			// A shorter-than-requested range means the object shrank under
			// its pin (possible only unpinned or with a weak server).
			f.b.invalidate(f.name)
			return 0, fmt.Errorf("storage: GET %s: range [%d,%d] answered with %d bytes: %w",
				f.name, off, end, got, ErrChangedUnderRead)
		}
	case http.StatusOK:
		// Server ignored Range (tiny files, naive servers): the body is the
		// whole object — skip to off and read our window.
		if _, err := io.CopyN(io.Discard, resp.Body, off); err != nil {
			return 0, fmt.Errorf("storage: GET %s: discarding to offset %d: %w", f.name, off, err)
		}
	case http.StatusRequestedRangeNotSatisfiable:
		return 0, io.EOF
	case http.StatusPreconditionFailed:
		f.b.invalidate(f.name)
		return 0, fmt.Errorf("storage: %s: %w", f.name, ErrChangedUnderRead)
	case http.StatusNotFound:
		return 0, fmt.Errorf("storage: GET %s: %w", f.name, fs.ErrNotExist)
	default:
		return 0, &StatusError{Name: f.name, Status: resp.StatusCode}
	}
	n, err := io.ReadFull(resp.Body, p[:want])
	if err != nil {
		// A body truncated mid-transfer is the classic transient network
		// failure (connection reset, server restart): mark it retryable.
		return n, Transient(fmt.Errorf("storage: GET %s: body ended after %d of %d bytes: %w",
			f.name, n, want, err))
	}
	if want < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// ETag returns the object version pinned at open ("" when the server
// emits no ETag or pinning is disabled) — see storage.ETagged.
func (f *httpFile) ETag() string { return f.pin.etag }

func (f *httpFile) Write([]byte) (int, error)          { return 0, ErrReadOnly }
func (f *httpFile) WriteAt([]byte, int64) (int, error) { return 0, ErrReadOnly }
func (f *httpFile) Sync() error                        { return ErrReadOnly }
func (f *httpFile) Close() error                       { return nil }
