package storage

import (
	"errors"
	"testing"
)

func TestLocalRoundtrip(t *testing.T) {
	b, err := NewLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(b, "CURRENT", []byte("manifest-000001.json\n")); err != nil {
		t.Fatal(err)
	}
	data, err := ReadFile(b, "CURRENT")
	if err != nil || string(data) != "manifest-000001.json\n" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	names, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "CURRENT" {
		t.Fatalf("List = %v; the temporary must be renamed away", names)
	}

	// In-place positional writes through ReadAt handles (the delete path).
	f, size, err := b.ReadAt("CURRENT")
	if err != nil || size != 21 {
		t.Fatalf("ReadAt: %v, size %d", err, size)
	}
	if _, err := f.WriteAt([]byte("M"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ = ReadFile(b, "CURRENT")
	if string(data[:1]) != "M" {
		t.Fatalf("WriteAt not visible: %q", data)
	}

	if err := b.Rename("CURRENT", "OLD"); err != nil {
		t.Fatal(err)
	}
	if err := b.SyncDir(); err != nil {
		t.Fatal(err)
	}
	if err := b.Remove("OLD"); err != nil {
		t.Fatal(err)
	}
	names, _ = b.List()
	if len(names) != 0 {
		t.Fatalf("List after remove = %v", names)
	}
}

func TestValidateName(t *testing.T) {
	b, err := NewLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`, "../escape"} {
		if _, err := b.Create(bad); err == nil {
			t.Fatalf("Create(%q) accepted an invalid name", bad)
		}
	}
}

func TestLocalReadAtMissing(t *testing.T) {
	b, err := NewLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.ReadAt("nope"); err == nil {
		t.Fatal("ReadAt on a missing file succeeded")
	}
}

func TestWriteFileAtomicCleansUpOnFailure(t *testing.T) {
	fb := NewFault("t")
	boom := errors.New("boom")
	fb.SetFailOp(func(op Op) error {
		if op.Kind == OpSync {
			return boom
		}
		return nil
	})
	if err := WriteFileAtomic(fb, "CURRENT", []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("WriteFileAtomic = %v, want injected error", err)
	}
	fb.SetFailOp(nil)
	names, err := fb.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("failed atomic write left %v behind", names)
	}
}
