package storage

import (
	"testing"
)

// TestResilientReadAllocs pins the per-read allocation cost of the
// policy layer — the CI ceiling that keeps retries/hedging from
// quietly taxing the hot read path.
func TestResilientReadAllocs(t *testing.T) {
	data := conformanceData()

	// Plain handles (no ReadAtContext) take the synchronous fast path:
	// zero allocations per read.
	t.Run("plain-sync-path", func(t *testing.T) {
		pf := &plainFile{read: func(p []byte, off int64) (int, error) {
			return copy(p, data[off:]), nil
		}}
		r := NewResilient(&stubBackend{file: pf, size: int64(len(data))}, nil)
		f, _, err := r.ReadAt("x")
		if err != nil {
			t.Fatal(err)
		}
		p := make([]byte, 256)
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := f.ReadAt(p, 0); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("plain read costs %.1f allocs/op, want 0", allocs)
		}
	})

	// Cancellable handles pay for the context, timers, and leg
	// goroutine that make hedging and deadlines possible. The ceiling
	// is generous but present: a regression that allocates per byte or
	// per retry-loop iteration trips it.
	t.Run("hedged-path-ceiling", func(t *testing.T) {
		b := NewFaultFromState("mem://alloc", map[string][]byte{"f": data})
		r := NewResilient(b, nil)
		f, _, err := r.ReadAt("f")
		if err != nil {
			t.Fatal(err)
		}
		p := make([]byte, 256)
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := f.ReadAt(p, 0); err != nil {
				t.Fatal(err)
			}
		})
		const ceiling = 24
		if allocs > ceiling {
			t.Fatalf("cancellable read costs %.1f allocs/op, ceiling %d", allocs, ceiling)
		}
	})
}
