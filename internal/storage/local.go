package storage

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// Local is the production Backend: one real directory on the local file
// system. NewLocal creates the directory if needed.
type Local struct {
	dir string
}

// NewLocal opens (creating if necessary) a local-FS backend over dir.
func NewLocal(dir string) (*Local, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return &Local{dir: abs}, nil
}

// Root returns the backend directory's absolute path.
func (l *Local) Root() string { return l.dir }

func (l *Local) path(name string) (string, error) {
	if err := ValidateName(name); err != nil {
		return "", err
	}
	return filepath.Join(l.dir, name), nil
}

// readOnlyFile adapts a read-only *os.File to the File interface; writes
// fail.
type readOnlyFile struct{ *os.File }

func (readOnlyFile) Write([]byte) (int, error) {
	return 0, errors.New("storage: file opened read-only")
}

func (readOnlyFile) WriteAt([]byte, int64) (int, error) {
	return 0, errors.New("storage: file opened read-only")
}

// ReadAt opens the named file for random access. It prefers a
// read-write handle (deletion flips footer bits in place) and falls back
// to read-only on permission errors, so datasets on read-only media stay
// scannable.
func (l *Local) ReadAt(name string) (File, int64, error) {
	path, err := l.path(name)
	if err != nil {
		return nil, 0, err
	}
	var f File
	osf, err := os.OpenFile(path, os.O_RDWR, 0)
	switch {
	case err == nil:
		f = osf
	case errors.Is(err, os.ErrPermission):
		osf, err = os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		f = readOnlyFile{osf}
	default:
		return nil, 0, err
	}
	st, err := osf.Stat()
	if err != nil {
		osf.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}

// Create creates or truncates the named file for writing.
func (l *Local) Create(name string) (File, error) {
	path, err := l.path(name)
	if err != nil {
		return nil, err
	}
	return os.Create(path)
}

// Rename atomically replaces newName with oldName's file.
func (l *Local) Rename(oldName, newName string) error {
	oldPath, err := l.path(oldName)
	if err != nil {
		return err
	}
	newPath, err := l.path(newName)
	if err != nil {
		return err
	}
	return os.Rename(oldPath, newPath)
}

// Remove deletes the named file.
func (l *Local) Remove(name string) error {
	path, err := l.path(name)
	if err != nil {
		return err
	}
	return os.Remove(path)
}

// SyncDir fsyncs the directory itself, making prior renames, creates,
// and removes power-cut durable. File systems that reject directory
// fsync (some network and FUSE mounts) are tolerated: there is nothing
// more a caller could do there.
func (l *Local) SyncDir() error {
	d, err := os.Open(l.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) ||
			errors.Is(err, syscall.ENOTTY) {
			return nil
		}
		return err
	}
	return nil
}

// List returns the directory's file names in lexical order,
// subdirectories excluded.
func (l *Local) List() ([]string, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		names = append(names, de.Name())
	}
	return names, nil
}

var _ io.ReaderAt = (*os.File)(nil)
