package storage

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"runtime"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// stubBackend hands out one scripted file handle; everything else is
// inert. It is the minimal substrate for exercising the policy alone.
type stubBackend struct {
	file File
	size int64
	open func() error // optional per-open error hook
}

func (s *stubBackend) ReadAt(string) (File, int64, error) {
	if s.open != nil {
		if err := s.open(); err != nil {
			return nil, 0, err
		}
	}
	return s.file, s.size, nil
}
func (s *stubBackend) Create(string) (File, error) { return nil, ErrReadOnly }
func (s *stubBackend) Rename(string, string) error { return ErrReadOnly }
func (s *stubBackend) Remove(string) error         { return ErrReadOnly }
func (s *stubBackend) SyncDir() error              { return nil }
func (s *stubBackend) List() ([]string, error)     { return nil, ErrListUnsupported }
func (s *stubBackend) Root() string                { return "stub://policy" }

// plainFile is a scripted non-cancellable handle (the local-file shape).
type plainFile struct {
	read func(p []byte, off int64) (int, error)
}

func (f *plainFile) ReadAt(p []byte, off int64) (int, error) { return f.read(p, off) }
func (f *plainFile) WriteAt([]byte, int64) (int, error)      { return 0, ErrReadOnly }
func (f *plainFile) Write([]byte) (int, error)               { return 0, ErrReadOnly }
func (f *plainFile) Sync() error                             { return ErrReadOnly }
func (f *plainFile) Close() error                            { return nil }

// ctxFile is a scripted cancellable handle (the remote-file shape).
type ctxFile struct {
	plainFile
	readCtx func(ctx context.Context, p []byte, off int64) (int, error)
}

func (f *ctxFile) ReadAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	return f.readCtx(ctx, p, off)
}
func (f *ctxFile) ReadAt(p []byte, off int64) (int, error) {
	return f.readCtx(context.Background(), p, off)
}

// waitWaiters blocks until the fake clock has n pending timers/sleepers —
// how tests synchronize with policy goroutines that are about to sleep.
func waitWaiters(t *testing.T, clk *FakeClock, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d clock waiters (have %d)", n, clk.Waiters())
		}
		runtime.Gosched()
	}
}

func fixedJitter() float64 { return 0.5 } // (0.5 + 0.5) = exactly 1x backoff

func TestIsRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{Transient(errors.New("flaky")), true},
		{fmt.Errorf("wrapped: %w", Transient(errors.New("flaky"))), true},
		{&StatusError{Name: "x", Status: 500}, true},
		{&StatusError{Name: "x", Status: 503}, true},
		{&StatusError{Name: "x", Status: 429}, true},
		{&StatusError{Name: "x", Status: 403}, false},
		{&StatusError{Name: "x", Status: 404}, false},
		{context.DeadlineExceeded, true},
		{context.Canceled, false},
		{fs.ErrNotExist, false},
		{fmt.Errorf("open: %w", fs.ErrNotExist), false},
		{ErrChangedUnderRead, false},
		{ErrCircuitOpen, false},
		{syscall.ECONNRESET, true},
		{syscall.ECONNREFUSED, true},
		{io.ErrUnexpectedEOF, true},
		{errors.New("something unknown"), false},
	}
	for _, c := range cases {
		if got := IsRetryable(c.err); got != c.want {
			t.Errorf("IsRetryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestBackoffCappedExponentialJittered(t *testing.T) {
	r := NewResilient(&stubBackend{}, &ResilienceOptions{
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
		Jitter:      fixedJitter,
	})
	want := []time.Duration{10, 20, 40, 40, 40} // ms; capped at max
	for attempt, w := range want {
		if got := r.backoff(attempt); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", attempt, got, w*time.Millisecond)
		}
	}
	// Shift overflow on huge attempt counts must still hit the cap.
	if got := r.backoff(400); got != 40*time.Millisecond {
		t.Errorf("backoff(400) = %v, want 40ms", got)
	}
	// Jitter scales ±50%.
	r2 := NewResilient(&stubBackend{}, &ResilienceOptions{
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  time.Second,
		Jitter:      func() float64 { return 0 },
	})
	if got := r2.backoff(0); got != 5*time.Millisecond {
		t.Errorf("zero-jitter backoff = %v, want 5ms", got)
	}
}

// TestRetryTransientThenSuccess: two injected transient failures, then a
// clean read. Deterministic: backoff sleeps run on the fake clock.
func TestRetryTransientThenSuccess(t *testing.T) {
	data := []byte("persistent payload")
	var calls atomic.Int64
	f := &plainFile{read: func(p []byte, off int64) (int, error) {
		if calls.Add(1) <= 2 {
			return 0, Transient(errors.New("injected"))
		}
		return copy(p, data[off:]), nil
	}}
	clk := NewFakeClock()
	r := NewResilient(&stubBackend{file: f, size: int64(len(data))}, &ResilienceOptions{
		BackoffBase: 10 * time.Millisecond,
		Jitter:      fixedJitter,
		Clock:       clk,
		HedgeDelay:  DisableHedging,
	})
	h, _, err := r.ReadAt("x")
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, len(data))
	done := make(chan struct{})
	var n int
	var rerr error
	go func() {
		n, rerr = h.ReadAt(p, 0)
		close(done)
	}()
	waitWaiters(t, clk, 1) // blocked in first backoff
	clk.Advance(10 * time.Millisecond)
	waitWaiters(t, clk, 1) // second backoff: 20ms
	clk.Advance(20 * time.Millisecond)
	<-done
	if rerr != nil || n != len(data) || !bytes.Equal(p, data) {
		t.Fatalf("read = (%d, %v), want clean full read", n, rerr)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("backend saw %d read calls, want 3", got)
	}
	st := r.ResilienceStats()
	if st.Retries != 2 || st.Failures != 0 || st.Ops != 2 { // open + read
		t.Fatalf("stats = %+v, want Retries 2, Failures 0, Ops 2", st)
	}
}

func TestNonRetryableFailsImmediately(t *testing.T) {
	var calls atomic.Int64
	permErr := errors.New("data corrupt")
	f := &plainFile{read: func([]byte, int64) (int, error) {
		calls.Add(1)
		return 0, permErr
	}}
	r := NewResilient(&stubBackend{file: f, size: 8}, &ResilienceOptions{
		Clock:      NewFakeClock(), // any sleep would hang the test — there must be none
		HedgeDelay: DisableHedging,
	})
	h, _, err := r.ReadAt("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.ReadAt(make([]byte, 8), 0); !errors.Is(err, permErr) {
		t.Fatalf("err = %v, want %v", err, permErr)
	}
	if calls.Load() != 1 {
		t.Fatalf("backend saw %d calls, want 1 (no retries of permanent errors)", calls.Load())
	}
	st := r.ResilienceStats()
	if st.Retries != 0 || st.Failures != 1 {
		t.Fatalf("stats = %+v, want Retries 0, Failures 1", st)
	}
}

// TestRetryBudgetExhausted: a persistently transient error surfaces after
// MaxRetries+1 attempts.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	f := &plainFile{read: func([]byte, int64) (int, error) {
		calls.Add(1)
		return 0, Transient(errors.New("always down"))
	}}
	clk := NewFakeClock()
	r := NewResilient(&stubBackend{file: f, size: 8}, &ResilienceOptions{
		MaxRetries:  2,
		BackoffBase: time.Millisecond,
		Jitter:      fixedJitter,
		Clock:       clk,
		HedgeDelay:  DisableHedging,
	})
	h, _, err := r.ReadAt("x")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := h.ReadAt(make([]byte, 8), 0)
		done <- err
	}()
	for i := 0; i < 2; i++ {
		waitWaiters(t, clk, 1)
		clk.Advance(time.Second)
	}
	if err := <-done; !IsRetryable(err) {
		t.Fatalf("surfaced error %v lost its retryable classification", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("backend saw %d calls, want 3 (1 + MaxRetries)", calls.Load())
	}
	if st := r.ResilienceStats(); st.Retries != 2 || st.Failures != 1 {
		t.Fatalf("stats = %+v, want Retries 2, Failures 1", st)
	}
}

// TestCircuitBreaker: consecutive failures open the breaker, ops then
// fail fast without touching the backend, and a post-cooldown probe
// closes it again. Entirely on the fake clock.
func TestCircuitBreaker(t *testing.T) {
	var calls atomic.Int64
	var healthy atomic.Bool
	data := []byte("back online")
	f := &plainFile{read: func(p []byte, off int64) (int, error) {
		calls.Add(1)
		if !healthy.Load() {
			return 0, errors.New("permanently confused") // non-retryable: no backoff sleeps
		}
		return copy(p, data[off:]), nil
	}}
	clk := NewFakeClock()
	r := NewResilient(&stubBackend{file: f, size: int64(len(data))}, &ResilienceOptions{
		MaxRetries:       -1,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Second,
		Clock:            clk,
		HedgeDelay:       DisableHedging,
	})
	h, _, err := r.ReadAt("x") // success: breaker sees one good op
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, len(data))
	for i := 0; i < 3; i++ {
		if _, err := h.ReadAt(p, 0); err == nil {
			t.Fatal("expected failure")
		}
	}
	st := r.ResilienceStats()
	if st.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", st.BreakerOpens)
	}
	before := calls.Load()
	if _, err := h.ReadAt(p, 0); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("fast-fail op touched the backend")
	}
	if st := r.ResilienceStats(); st.BreakerFastFails != 1 {
		t.Fatalf("BreakerFastFails = %d, want 1", st.BreakerFastFails)
	}

	// Probe before cooldown: still fast-failing. After cooldown: one
	// probe reaches the (still broken) backend, re-arming the cooldown.
	clk.Advance(9 * time.Second)
	if _, err := h.ReadAt(p, 0); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("pre-cooldown err = %v, want ErrCircuitOpen", err)
	}
	clk.Advance(time.Second)
	before = calls.Load()
	if _, err := h.ReadAt(p, 0); errors.Is(err, ErrCircuitOpen) || calls.Load() != before+1 {
		t.Fatalf("cooldown probe did not reach the backend (err %v)", err)
	}
	// Failed probe restarted the cooldown; after it elapses the next
	// probe finds a healthy backend and closes the breaker for good.
	healthy.Store(true)
	clk.Advance(10 * time.Second)
	if n, err := h.ReadAt(p, 0); err != nil || n != len(data) {
		t.Fatalf("healthy probe = (%d, %v), want clean read", n, err)
	}
	if n, err := h.ReadAt(p, 0); err != nil || n != len(data) {
		t.Fatalf("post-close read = (%d, %v), want clean read", n, err)
	}
}

// TestHedgedReadWinsAndJoins: the primary leg hangs, the hedge leg
// returns the bytes; the primary must be cancelled and joined before
// ReadAt returns. Deterministic via the fake clock's hedge timer.
func TestHedgedReadWinsAndJoins(t *testing.T) {
	data := []byte("hedge payload wins the race")
	var calls atomic.Int64
	primaryJoined := make(chan struct{})
	f := &ctxFile{readCtx: func(ctx context.Context, p []byte, off int64) (int, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // stuck primary: only cancellation frees it
			close(primaryJoined)
			return 0, ctx.Err()
		}
		return copy(p, data[off:]), nil
	}}
	clk := NewFakeClock()
	r := NewResilient(&stubBackend{file: f, size: int64(len(data))}, &ResilienceOptions{
		HedgeDelay: 10 * time.Millisecond,
		Clock:      clk,
		Jitter:     fixedJitter,
	})
	h, _, err := r.ReadAt("x")
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, len(data))
	done := make(chan struct{})
	var n int
	var rerr error
	go func() {
		n, rerr = h.ReadAt(p, 0)
		close(done)
	}()
	waitWaiters(t, clk, 2) // hedge timer + op deadline registered
	clk.Advance(10 * time.Millisecond)
	<-done
	if rerr != nil || n != len(data) || !bytes.Equal(p, data) {
		t.Fatalf("hedged read = (%d, %v, %q), want the hedge's bytes", n, rerr, p[:n])
	}
	select {
	case <-primaryJoined:
	default:
		t.Fatal("ReadAt returned before the losing primary leg was joined")
	}
	st := r.ResilienceStats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v, want Hedges 1, HedgeWins 1", st)
	}
}

// TestHedgePrimaryStillWins: the hedge launches but the primary finishes
// first — the hedge must be cancelled, joined, and not corrupt p.
func TestHedgePrimaryStillWins(t *testing.T) {
	data := []byte("primary payload")
	var calls atomic.Int64
	release := make(chan struct{})
	f := &ctxFile{readCtx: func(ctx context.Context, p []byte, off int64) (int, error) {
		if calls.Add(1) == 1 {
			<-release // primary: slow but not dead
			return copy(p, data[off:]), nil
		}
		<-ctx.Done() // hedge: hangs until the winner cancels it
		return 0, ctx.Err()
	}}
	clk := NewFakeClock()
	r := NewResilient(&stubBackend{file: f, size: int64(len(data))}, &ResilienceOptions{
		HedgeDelay: 5 * time.Millisecond,
		Clock:      clk,
	})
	h, _, err := r.ReadAt("x")
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, len(data))
	done := make(chan struct{})
	var n int
	var rerr error
	go func() {
		n, rerr = h.ReadAt(p, 0)
		close(done)
	}()
	waitWaiters(t, clk, 2)
	clk.Advance(5 * time.Millisecond) // hedge fires
	for calls.Load() < 2 {            // hedge leg actually launched
		runtime.Gosched()
	}
	close(release) // now let the primary win
	<-done
	if rerr != nil || n != len(data) || !bytes.Equal(p, data) {
		t.Fatalf("read = (%d, %v, %q), want primary bytes", n, rerr, p[:n])
	}
	st := r.ResilienceStats()
	if st.Hedges != 1 || st.HedgeWins != 0 {
		t.Fatalf("stats = %+v, want Hedges 1, HedgeWins 0", st)
	}
}

// TestDeadlineExpiryIsRetryable: every leg hangs, the op deadline fires,
// and the surfaced error both wraps context.DeadlineExceeded and gets
// retried as the transient failure it is.
func TestDeadlineExpiryIsRetryable(t *testing.T) {
	var calls atomic.Int64
	data := []byte("eventually")
	f := &ctxFile{readCtx: func(ctx context.Context, p []byte, off int64) (int, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done()
			return 0, ctx.Err()
		}
		return copy(p, data[off:]), nil
	}}
	clk := NewFakeClock()
	r := NewResilient(&stubBackend{file: f, size: int64(len(data))}, &ResilienceOptions{
		OpTimeout:   50 * time.Millisecond,
		MaxRetries:  1,
		BackoffBase: 10 * time.Millisecond,
		Jitter:      fixedJitter,
		Clock:       clk,
		HedgeDelay:  DisableHedging,
	})
	h, _, err := r.ReadAt("x")
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, len(data))
	done := make(chan struct{})
	var n int
	var rerr error
	go func() {
		n, rerr = h.ReadAt(p, 0)
		close(done)
	}()
	waitWaiters(t, clk, 1) // op deadline timer
	clk.Advance(50 * time.Millisecond)
	waitWaiters(t, clk, 1) // backoff before the retry
	clk.Advance(10 * time.Millisecond)
	<-done
	if rerr != nil || n != len(data) || !bytes.Equal(p, data) {
		t.Fatalf("read = (%d, %v), want retried success", n, rerr)
	}
	if st := r.ResilienceStats(); st.Retries != 1 {
		t.Fatalf("stats = %+v, want Retries 1", st)
	}
}

// TestAdaptiveHedgeGating: adaptive hedging stays off until enough
// samples accumulate, then trips at the tracked p95, floored.
func TestAdaptiveHedgeGating(t *testing.T) {
	r := NewResilient(&stubBackend{}, &ResilienceOptions{
		HedgeMinSamples: 4,
	})
	if hd := r.hedgeDelay(); hd != -1 {
		t.Fatalf("hedgeDelay with no samples = %v, want -1 (off)", hd)
	}
	for i := 0; i < 4; i++ {
		r.lat.record(2 * time.Millisecond)
	}
	if hd := r.hedgeDelay(); hd != 2*time.Millisecond {
		t.Fatalf("hedgeDelay = %v, want the 2ms p95", hd)
	}
	// A burst of near-zero latencies must not drive the delay below the
	// floor (which would hedge every read).
	for i := 0; i < latRingSize; i++ {
		r.lat.record(time.Nanosecond)
	}
	if hd := r.hedgeDelay(); hd != minHedgeDelay {
		t.Fatalf("hedgeDelay = %v, want floor %v", hd, minHedgeDelay)
	}
	// Fixed and disabled settings bypass the tracker entirely.
	rf := NewResilient(&stubBackend{}, &ResilienceOptions{HedgeDelay: 7 * time.Millisecond})
	if hd := rf.hedgeDelay(); hd != 7*time.Millisecond {
		t.Fatalf("fixed hedgeDelay = %v, want 7ms", hd)
	}
	rd := NewResilient(&stubBackend{}, &ResilienceOptions{HedgeDelay: DisableHedging})
	if hd := rd.hedgeDelay(); hd != -1 {
		t.Fatalf("disabled hedgeDelay = %v, want -1", hd)
	}
}

// TestHedgedReadsLeakNoGoroutines: cancelled hedge legs and stuck
// primaries must all be joined — after a burst of hedged reads the
// goroutine count returns to baseline. Real clock: leaks here are
// scheduling-dependent, so the test exercises the true timer paths.
func TestHedgedReadsLeakNoGoroutines(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 512)
	var calls atomic.Int64
	f := &ctxFile{readCtx: func(ctx context.Context, p []byte, off int64) (int, error) {
		if calls.Add(1)%3 == 1 { // every third read: stuck until cancelled
			<-ctx.Done()
			return 0, ctx.Err()
		}
		return copy(p, data[off:]), nil
	}}
	r := NewResilient(&stubBackend{file: f, size: int64(len(data))}, &ResilienceOptions{
		HedgeDelay: 200 * time.Microsecond,
		OpTimeout:  2 * time.Second,
	})
	h, _, err := r.ReadAt("x")
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	p := make([]byte, len(data))
	for i := 0; i < 50; i++ {
		if _, err := h.ReadAt(p, 0); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
	if st := r.ResilienceStats(); st.Hedges == 0 {
		t.Fatal("test never hedged — stuck reads should have tripped the hedge timer")
	}
}

// TestEOFIsSuccess: io.EOF outcomes are contract results, not failures —
// they must not consume retries or feed the breaker.
func TestEOFIsSuccess(t *testing.T) {
	f := &plainFile{read: func(p []byte, off int64) (int, error) {
		return 0, io.EOF
	}}
	r := NewResilient(&stubBackend{file: f, size: 0}, &ResilienceOptions{
		MaxRetries:       -1,
		BreakerThreshold: 1,
		HedgeDelay:       DisableHedging,
		Clock:            NewFakeClock(),
	})
	h, _, err := r.ReadAt("x")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if n, err := h.ReadAt(make([]byte, 4), 100); n != 0 || err != io.EOF {
			t.Fatalf("read = (%d, %v), want (0, io.EOF)", n, err)
		}
	}
	st := r.ResilienceStats()
	if st.Failures != 0 || st.BreakerOpens != 0 {
		t.Fatalf("stats = %+v: EOF reads were miscounted as failures", st)
	}
}
