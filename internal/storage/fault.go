package storage

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ErrCrashed is returned by every operation issued after a Fault
// backend's simulated power failure has tripped.
var ErrCrashed = errors.New("storage: simulated power failure")

// OpKind names one backend or file operation, for fault hooks.
type OpKind int

// Operation kinds observed by Fault hooks.
const (
	OpOpen OpKind = iota // Backend.ReadAt
	OpCreate
	OpRead // File.ReadAt
	OpWrite
	OpWriteAt
	OpSync
	OpClose
	OpRename
	OpRemove
	OpSyncDir
	OpList
)

var opNames = [...]string{"open", "create", "read", "write", "writeat",
	"sync", "close", "rename", "remove", "syncdir", "list"}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op describes one operation about to execute: its global sequence
// number (counted from 0 across the backend's lifetime) and target file.
type Op struct {
	Index int
	Kind  OpKind
	Name  string
}

// Snapshot is the power-cut-durable state captured immediately after one
// sync operation completed — the only moments the durable state changes,
// so these snapshots cover every crash point exhaustively.
type Snapshot struct {
	// AfterOps is the backend's operation count when the snapshot was
	// taken (every operation with Index < AfterOps had completed).
	AfterOps int
	// Strict is the no-journal model: a file exists only if a SyncDir
	// covered its directory entry, with the contents of its last Sync.
	Strict map[string][]byte
	// Loose is the metadata-journaled model: every namespace edit
	// (create/rename/remove) survives, but file contents still revert to
	// the last Sync — never-synced files come back as zero-length husks.
	// This is the model that produces *.tmp debris and empty part files,
	// which recovery sweeps must tolerate.
	Loose map[string][]byte
}

// inode is one file's content state. durable is replaced wholesale on
// every sync and never mutated in place, so snapshots may alias it.
type inode struct {
	data    []byte
	durable []byte
	synced  bool
}

// Fault is a deterministic in-memory Backend with fault injection: a
// per-op error hook, a per-op latency hook, an op-indexed power-cut
// trigger, and exhaustive durable-state snapshots for crash-matrix
// testing. The zero value is not usable; construct with NewFault or
// NewFaultFromState.
type Fault struct {
	root string

	mu      sync.Mutex
	vdir    map[string]*inode // volatile namespace (what live readers see)
	ddir    map[string]*inode // durable namespace (what survives a crash)
	ops     int
	crashAt int // ops at or past this index fail; <0 = never
	crashed bool

	failOp func(Op) error
	delay  func(Op) time.Duration

	net    *NetFaults
	netRng *rand.Rand

	snapOn bool
	snaps  []Snapshot
}

// NetFaults shapes network-like read faults, drawn per read from one
// seeded distribution — the deterministic stand-in for a flaky remote
// backend that the retry/hedge policy tests and the remote benchmark
// run against. All rates are probabilities in [0, 1]; zero fields
// inject nothing.
type NetFaults struct {
	// Seed seeds the fault distribution; equal seeds replay the same
	// fault sequence for a serial sequence of reads.
	Seed int64
	// ErrRate fails the read before any byte is served ("flaky first
	// byte") with a Transient error.
	ErrRate float64
	// PartialRate serves only a random prefix of the requested bytes,
	// then fails with a Transient error — a connection reset mid-body.
	PartialRate float64
	// TruncateAfter, when positive, caps every read: requests for more
	// than TruncateAfter bytes serve exactly that many and then fail
	// with a Transient error ("error after N bytes").
	TruncateAfter int
	// SpikeRate adds SpikeDur of latency to the read — the tail-latency
	// spike hedged reads exist to absorb. Spiked reads sleep
	// cancellably: a hedge or deadline cancellation wakes them.
	SpikeRate float64
	SpikeDur  time.Duration
	// StuckRate makes the read hang until its context is cancelled (a
	// stuck connection). Reads without a context (plain ReadAt) sleep
	// SpikeDur instead, since nothing could ever unblock them.
	StuckRate float64
}

// SetNetFaults installs (or, with nil, clears) the network fault
// policy. Only file reads (OpRead) are shaped; metadata ops stay
// governed by SetFailOp/SetDelay.
func (f *Fault) SetNetFaults(nf *NetFaults) {
	f.mu.Lock()
	f.net = nf
	if nf != nil {
		f.netRng = rand.New(rand.NewSource(nf.Seed))
	} else {
		f.netRng = nil
	}
	f.mu.Unlock()
}

// NewFault returns an empty fault backend. root is its identity (see
// Backend.Root); it must be unique per logical directory.
func NewFault(root string) *Fault {
	return &Fault{
		root:    root,
		vdir:    map[string]*inode{},
		ddir:    map[string]*inode{},
		crashAt: -1,
	}
}

// NewFaultFromState returns a fault backend whose files hold the given
// contents, all fully durable — the "machine rebooted into this state"
// constructor the crash matrix uses to reopen a Snapshot.
func NewFaultFromState(root string, files map[string][]byte) *Fault {
	f := NewFault(root)
	for name, data := range files {
		ino := &inode{
			data:    append([]byte(nil), data...),
			durable: append([]byte(nil), data...),
			synced:  true,
		}
		f.vdir[name] = ino
		f.ddir[name] = ino
	}
	return f
}

// Root returns the backend's identity.
func (f *Fault) Root() string { return f.root }

// SetFailOp installs a hook consulted before every operation; a non-nil
// return fails that operation without effect. Pass nil to clear.
func (f *Fault) SetFailOp(hook func(Op) error) {
	f.mu.Lock()
	f.failOp = hook
	f.mu.Unlock()
}

// SetDelay installs a latency hook: each operation sleeps the returned
// duration before executing. Pass nil to clear.
func (f *Fault) SetDelay(hook func(Op) time.Duration) {
	f.mu.Lock()
	f.delay = hook
	f.mu.Unlock()
}

// CrashAfter arms the power-cut simulator: the n-th operation (0-based)
// and everything after it fail with ErrCrashed, leaving only durable
// state behind. Call Crash to complete the power cycle.
func (f *Fault) CrashAfter(n int) {
	f.mu.Lock()
	f.crashAt = n
	f.mu.Unlock()
}

// OpCount returns how many operations have completed or failed.
func (f *Fault) OpCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// EnableSnapshots starts recording a Snapshot after every sync
// operation (Sync and SyncDir) — the only points the durable state
// advances, so the recorded sequence covers every distinct crash state.
func (f *Fault) EnableSnapshots() {
	f.mu.Lock()
	f.snapOn = true
	f.mu.Unlock()
}

// Snapshots returns the recorded durable states, oldest first.
func (f *Fault) Snapshots() []Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Snapshot(nil), f.snaps...)
}

// Crash simulates the power cycle: every write not fsynced and every
// namespace edit not SyncDir'ed is dropped, open handles go stale, and
// the backend resumes serving the durable state. (With CrashAfter armed,
// the trip point decides what was durable; Crash itself may also be
// called directly at any moment.)
func (f *Fault) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	vdir := make(map[string]*inode, len(f.ddir))
	ddir := make(map[string]*inode, len(f.ddir))
	for name, ino := range f.ddir {
		re := &inode{
			data:    append([]byte(nil), ino.durable...),
			durable: append([]byte(nil), ino.durable...),
			synced:  ino.synced,
		}
		vdir[name] = re
		ddir[name] = re
	}
	f.vdir, f.ddir = vdir, ddir
	f.crashed = false
	f.crashAt = -1
}

// DurableState returns what a power cut right now would leave behind
// (the Strict model).
func (f *Fault) DurableState() map[string][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.strictLocked()
}

func (f *Fault) strictLocked() map[string][]byte {
	out := make(map[string][]byte, len(f.ddir))
	for name, ino := range f.ddir {
		out[name] = ino.durable // nil durable = zero-length husk
	}
	return out
}

func (f *Fault) looseLocked() map[string][]byte {
	out := make(map[string][]byte, len(f.vdir))
	for name, ino := range f.vdir {
		out[name] = ino.durable
	}
	return out
}

// begin gates one operation: latency, crash trigger, error hook, op
// accounting. It is called with f.mu held and may unlock/relock to
// sleep.
func (f *Fault) begin(kind OpKind, name string) error {
	op := Op{Index: f.ops, Kind: kind, Name: name}
	f.ops++
	if f.delay != nil {
		d := f.delay(op)
		if d > 0 {
			f.mu.Unlock()
			time.Sleep(d)
			f.mu.Lock()
		}
	}
	if f.crashed || (f.crashAt >= 0 && op.Index >= f.crashAt) {
		f.crashed = true
		return ErrCrashed
	}
	if f.failOp != nil {
		if err := f.failOp(op); err != nil {
			return err
		}
	}
	return nil
}

// snap records the durable state if snapshotting is on (mu held).
func (f *Fault) snap() {
	if !f.snapOn {
		return
	}
	f.snaps = append(f.snaps, Snapshot{
		AfterOps: f.ops,
		Strict:   f.strictLocked(),
		Loose:    f.looseLocked(),
	})
}

// faultFile is an open handle on a Fault inode.
type faultFile struct {
	f    *Fault
	ino  *inode
	name string
	off  int64 // sequential Write offset
}

// ReadAt opens the named file.
func (f *Fault) ReadAt(name string) (File, int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.begin(OpOpen, name); err != nil {
		return nil, 0, err
	}
	ino, ok := f.vdir[name]
	if !ok {
		return nil, 0, fmt.Errorf("storage: open %s: %w", name, fs.ErrNotExist)
	}
	return &faultFile{f: f, ino: ino, name: name}, int64(len(ino.data)), nil
}

// Create creates or truncates the named file.
func (f *Fault) Create(name string) (File, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.begin(OpCreate, name); err != nil {
		return nil, err
	}
	// A fresh inode, never truncation in place: if the old inode was
	// durable under this name, a crash before the next SyncDir revives
	// the old contents — the adversarial (and legal) outcome.
	ino := &inode{}
	f.vdir[name] = ino
	return &faultFile{f: f, ino: ino, name: name}, nil
}

// Rename atomically replaces newName with oldName's file.
func (f *Fault) Rename(oldName, newName string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.begin(OpRename, oldName); err != nil {
		return err
	}
	ino, ok := f.vdir[oldName]
	if !ok {
		return fmt.Errorf("storage: rename %s: %w", oldName, fs.ErrNotExist)
	}
	delete(f.vdir, oldName)
	f.vdir[newName] = ino
	return nil
}

// Remove deletes the named file.
func (f *Fault) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.begin(OpRemove, name); err != nil {
		return err
	}
	if _, ok := f.vdir[name]; !ok {
		return fmt.Errorf("storage: remove %s: %w", name, fs.ErrNotExist)
	}
	delete(f.vdir, name)
	return nil
}

// SyncDir makes the namespace durable: the durable directory becomes the
// volatile one. File contents remain governed by File.Sync.
func (f *Fault) SyncDir() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.begin(OpSyncDir, ""); err != nil {
		return err
	}
	ddir := make(map[string]*inode, len(f.vdir))
	for name, ino := range f.vdir {
		ddir[name] = ino
	}
	f.ddir = ddir
	f.snap()
	return nil
}

// List returns the volatile namespace in lexical order.
func (f *Fault) List() ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.begin(OpList, ""); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(f.vdir))
	for name := range f.vdir {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (h *faultFile) ReadAt(p []byte, off int64) (int, error) {
	return h.readAt(nil, p, off)
}

// ReadAtContext is the cancellable read path (storage.ContextFile):
// injected latency spikes and stuck reads respect ctx, so hedged reads
// against a Fault backend can cancel a slow losing leg exactly as they
// would cancel an in-flight HTTP request.
func (h *faultFile) ReadAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return h.readAt(ctx, p, off)
}

func (h *faultFile) readAt(ctx context.Context, p []byte, off int64) (int, error) {
	h.f.mu.Lock()
	if err := h.f.begin(OpRead, h.name); err != nil {
		h.f.mu.Unlock()
		return 0, err
	}
	// Draw this read's faults under the lock, from one shared rng, so a
	// given seed replays the same fault sequence across a serial run of
	// reads regardless of where they land.
	var (
		spike  time.Duration
		stuck  bool
		errNow bool
		cutAt  = -1
	)
	if nf := h.f.net; nf != nil {
		r := h.f.netRng
		if nf.SpikeRate > 0 && r.Float64() < nf.SpikeRate {
			spike = nf.SpikeDur
		}
		if nf.StuckRate > 0 && r.Float64() < nf.StuckRate {
			stuck = true
		}
		if nf.ErrRate > 0 && r.Float64() < nf.ErrRate {
			errNow = true
		}
		if nf.PartialRate > 0 && len(p) > 1 && r.Float64() < nf.PartialRate {
			cutAt = 1 + r.Intn(len(p)-1)
		}
		if nf.TruncateAfter > 0 && len(p) > nf.TruncateAfter && (cutAt < 0 || cutAt > nf.TruncateAfter) {
			cutAt = nf.TruncateAfter
		}
		if stuck && ctx == nil {
			// Nothing can ever cancel a context-free read, so a hang would
			// deadlock the caller; degrade to one latency spike.
			stuck = false
			if nf.SpikeDur > spike {
				spike = nf.SpikeDur
			}
		}
	}
	h.f.mu.Unlock()

	if stuck {
		<-ctx.Done()
		return 0, fmt.Errorf("storage: %s: stuck read: %w", h.name, ctx.Err())
	}
	if spike > 0 {
		if err := sleepCtx(ctx, spike); err != nil {
			return 0, fmt.Errorf("storage: %s: %w", h.name, err)
		}
	}
	if errNow {
		return 0, Transient(fmt.Errorf("storage: %s: injected connection error", h.name))
	}

	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("storage: %s: negative offset", h.name)
	}
	if len(p) == 0 {
		return 0, nil
	}
	if off >= int64(len(h.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.ino.data[off:])
	if cutAt >= 0 && n > cutAt {
		return cutAt, Transient(fmt.Errorf("storage: %s: connection reset after %d of %d bytes",
			h.name, cutAt, len(p)))
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// sleepCtx sleeps d, or less if ctx (which may be nil) is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (h *faultFile) Write(p []byte) (int, error) {
	n, err := h.write(p, h.off, OpWrite)
	h.off += int64(n)
	return n, err
}

func (h *faultFile) WriteAt(p []byte, off int64) (int, error) {
	return h.write(p, off, OpWriteAt)
}

func (h *faultFile) write(p []byte, off int64, kind OpKind) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if err := h.f.begin(kind, h.name); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("storage: %s: negative offset", h.name)
	}
	if grow := off + int64(len(p)) - int64(len(h.ino.data)); grow > 0 {
		h.ino.data = append(h.ino.data, make([]byte, grow)...)
	}
	copy(h.ino.data[off:], p)
	return len(p), nil
}

// Sync makes the file's current contents durable.
func (h *faultFile) Sync() error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if err := h.f.begin(OpSync, h.name); err != nil {
		return err
	}
	h.ino.durable = append([]byte(nil), h.ino.data...)
	h.ino.synced = true
	h.f.snap()
	return nil
}

func (h *faultFile) Close() error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if err := h.f.begin(OpClose, h.name); err != nil {
		return err
	}
	return nil
}
