// Package legacy implements a Parquet-like columnar file: block-encoded
// data pages plus a footer serialized with a Thrift-compact-protocol-style
// encoding that must be deserialized in full — every column's metadata
// struct is allocated and parsed before the first byte of data can be
// located. It is the behavioural stand-in for Apache Parquet in the
// Figure 5 (wide-table metadata) and deletion experiments; see DESIGN.md's
// substitution notes.
package legacy

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Thrift-compact-style wire types (subset).
const (
	tStop   = 0
	tTrue   = 1
	tFalse  = 2
	tI32    = 5
	tI64    = 6
	tBinary = 8
	tList   = 9
	tStruct = 12
)

var errThrift = errors.New("legacy: malformed thrift metadata")

// tWriter serializes compact-protocol structs.
type tWriter struct {
	buf    []byte
	lastID []int // field-id stack, one per open struct
}

func newTWriter() *tWriter { return &tWriter{lastID: []int{0}} }

func (w *tWriter) fieldHeader(id, typ int) {
	top := len(w.lastID) - 1
	delta := id - w.lastID[top]
	if delta > 0 && delta <= 15 {
		w.buf = append(w.buf, byte(delta<<4|typ))
	} else {
		w.buf = append(w.buf, byte(typ))
		w.buf = binary.AppendVarint(w.buf, int64(id))
	}
	w.lastID[top] = id
}

func (w *tWriter) writeI32(id int, v int32) {
	w.fieldHeader(id, tI32)
	w.buf = binary.AppendVarint(w.buf, int64(v))
}

func (w *tWriter) writeI64(id int, v int64) {
	w.fieldHeader(id, tI64)
	w.buf = binary.AppendVarint(w.buf, v)
}

func (w *tWriter) writeBinary(id int, v []byte) {
	w.fieldHeader(id, tBinary)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(v)))
	w.buf = append(w.buf, v...)
}

func (w *tWriter) writeBool(id int, v bool) {
	if v {
		w.fieldHeader(id, tTrue)
	} else {
		w.fieldHeader(id, tFalse)
	}
}

// beginList writes a list field header; elements follow via the elem
// callbacks.
func (w *tWriter) beginList(id, elemType, n int) {
	w.fieldHeader(id, tList)
	if n < 15 {
		w.buf = append(w.buf, byte(n<<4|elemType))
	} else {
		w.buf = append(w.buf, byte(0xF0|elemType))
		w.buf = binary.AppendUvarint(w.buf, uint64(n))
	}
}

func (w *tWriter) beginStructField(id int) {
	w.fieldHeader(id, tStruct)
	w.beginStructElem()
}

// beginStructElem opens a struct in list-element position (no field header).
func (w *tWriter) beginStructElem() {
	w.lastID = append(w.lastID, 0)
}

func (w *tWriter) endStruct() {
	w.buf = append(w.buf, tStop)
	w.lastID = w.lastID[:len(w.lastID)-1]
}

// tReader deserializes compact-protocol structs.
type tReader struct {
	buf    []byte
	pos    int
	lastID []int
}

func newTReader(buf []byte) *tReader { return &tReader{buf: buf, lastID: []int{0}} }

func (r *tReader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, errThrift
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *tReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errThrift
	}
	r.pos += n
	return v, nil
}

func (r *tReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errThrift
	}
	r.pos += n
	return v, nil
}

// fieldHeader reads the next field header; returns (0,tStop,nil) at the end
// of the struct.
func (r *tReader) fieldHeader() (id, typ int, err error) {
	b, err := r.byte()
	if err != nil {
		return 0, 0, err
	}
	if b == tStop {
		return 0, tStop, nil
	}
	typ = int(b & 0x0F)
	delta := int(b >> 4)
	top := len(r.lastID) - 1
	if delta == 0 {
		id64, err := r.varint()
		if err != nil {
			return 0, 0, err
		}
		id = int(id64)
	} else {
		id = r.lastID[top] + delta
	}
	r.lastID[top] = id
	return id, typ, nil
}

func (r *tReader) readBinary() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)-r.pos) {
		return nil, errThrift
	}
	out := make([]byte, n) // allocate, as a real thrift decoder does
	copy(out, r.buf[r.pos:r.pos+int(n)])
	r.pos += int(n)
	return out, nil
}

func (r *tReader) listHeader() (elemType, n int, err error) {
	b, err := r.byte()
	if err != nil {
		return 0, 0, err
	}
	elemType = int(b & 0x0F)
	n = int(b >> 4)
	if n == 15 {
		n64, err := r.uvarint()
		if err != nil {
			return 0, 0, err
		}
		n = int(n64)
	}
	return elemType, n, nil
}

func (r *tReader) beginStruct() { r.lastID = append(r.lastID, 0) }
func (r *tReader) endStruct()   { r.lastID = r.lastID[:len(r.lastID)-1] }

// skip consumes a value of the given type (unknown fields).
func (r *tReader) skip(typ int) error {
	switch typ {
	case tTrue, tFalse:
		return nil
	case tI32, tI64:
		_, err := r.varint()
		return err
	case tBinary:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(r.buf)-r.pos) {
			return errThrift
		}
		r.pos += int(n)
		return nil
	case tList:
		elemType, n, err := r.listHeader()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := r.skip(elemType); err != nil {
				return err
			}
		}
		return nil
	case tStruct:
		r.beginStruct()
		defer r.endStruct()
		for {
			_, ft, err := r.fieldHeader()
			if err != nil {
				return err
			}
			if ft == tStop {
				return nil
			}
			if err := r.skip(ft); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("%w: unknown type %d", errThrift, typ)
	}
}
