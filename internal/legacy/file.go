package legacy

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Magic frames a legacy file, Parquet-style (leading and trailing).
const Magic = "LGC1"

// Column types (subset sufficient for the experiments).
const (
	TypeInt64 = iota
	TypeFloat64
	TypeListInt64
)

// SchemaElement describes one column.
type SchemaElement struct {
	Name string
	Type int32
}

// Statistics mimic Parquet's per-chunk min/max/null bookkeeping — part of
// what makes wide footers expensive to parse.
type Statistics struct {
	Min       []byte
	Max       []byte
	NullCount int64
}

// ColumnMeta is the per-chunk metadata struct.
type ColumnMeta struct {
	Type             int32
	Encodings        []int32
	NumValues        int64
	UncompressedSize int64
	CompressedSize   int64
	DataPageOffset   int64
	Stats            Statistics
}

// ColumnChunk binds a column path to its metadata.
type ColumnChunk struct {
	Path       string
	FileOffset int64
	Meta       ColumnMeta
}

// RowGroup holds the chunk list for one group.
type RowGroup struct {
	Columns       []ColumnChunk
	TotalByteSize int64
	NumRows       int64
}

// FileMetaData is the root footer struct, deserialized in full on open.
type FileMetaData struct {
	Version int32
	NumRows int64
	Schema  []SchemaElement
	Groups  []RowGroup
}

// marshalMeta serializes FileMetaData with the compact protocol.
func marshalMeta(m *FileMetaData) []byte {
	w := newTWriter()
	w.beginStructElem() // root struct
	w.writeI32(1, m.Version)
	w.writeI64(2, m.NumRows)
	w.beginList(3, tStruct, len(m.Schema))
	for _, s := range m.Schema {
		w.beginStructElem()
		w.writeBinary(1, []byte(s.Name))
		w.writeI32(2, s.Type)
		w.endStruct()
	}
	w.beginList(4, tStruct, len(m.Groups))
	for _, g := range m.Groups {
		w.beginStructElem()
		w.beginList(1, tStruct, len(g.Columns))
		for _, c := range g.Columns {
			w.beginStructElem()
			w.writeBinary(1, []byte(c.Path))
			w.writeI64(2, c.FileOffset)
			w.beginStructField(3)
			w.writeI32(1, c.Meta.Type)
			w.beginList(2, tI32, len(c.Meta.Encodings))
			for _, e := range c.Meta.Encodings {
				w.buf = binary.AppendVarint(w.buf, int64(e))
			}
			w.writeI64(3, c.Meta.NumValues)
			w.writeI64(4, c.Meta.UncompressedSize)
			w.writeI64(5, c.Meta.CompressedSize)
			w.writeI64(6, c.Meta.DataPageOffset)
			w.beginStructField(7)
			w.writeBinary(1, c.Meta.Stats.Min)
			w.writeBinary(2, c.Meta.Stats.Max)
			w.writeI64(3, c.Meta.Stats.NullCount)
			w.endStruct()
			w.endStruct()
			w.endStruct()
		}
		w.writeI64(2, g.TotalByteSize)
		w.writeI64(3, g.NumRows)
		w.endStruct()
	}
	w.endStruct()
	return w.buf
}

// unmarshalMeta deserializes the footer in full — the O(columns) parse the
// paper's Figure 5 measures.
func unmarshalMeta(buf []byte) (*FileMetaData, error) {
	r := newTReader(buf)
	m := &FileMetaData{}
	r.beginStruct()
	for {
		id, typ, err := r.fieldHeader()
		if err != nil {
			return nil, err
		}
		if typ == tStop {
			break
		}
		switch id {
		case 1:
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			m.Version = int32(v)
		case 2:
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			m.NumRows = v
		case 3:
			_, n, err := r.listHeader()
			if err != nil {
				return nil, err
			}
			m.Schema = make([]SchemaElement, n)
			for i := 0; i < n; i++ {
				if err := readSchemaElement(r, &m.Schema[i]); err != nil {
					return nil, err
				}
			}
		case 4:
			_, n, err := r.listHeader()
			if err != nil {
				return nil, err
			}
			m.Groups = make([]RowGroup, n)
			for i := 0; i < n; i++ {
				if err := readRowGroup(r, &m.Groups[i]); err != nil {
					return nil, err
				}
			}
		default:
			if err := r.skip(typ); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

func readSchemaElement(r *tReader, s *SchemaElement) error {
	r.beginStruct()
	defer r.endStruct()
	for {
		id, typ, err := r.fieldHeader()
		if err != nil {
			return err
		}
		if typ == tStop {
			return nil
		}
		switch id {
		case 1:
			b, err := r.readBinary()
			if err != nil {
				return err
			}
			s.Name = string(b)
		case 2:
			v, err := r.varint()
			if err != nil {
				return err
			}
			s.Type = int32(v)
		default:
			if err := r.skip(typ); err != nil {
				return err
			}
		}
	}
}

func readRowGroup(r *tReader, g *RowGroup) error {
	r.beginStruct()
	defer r.endStruct()
	for {
		id, typ, err := r.fieldHeader()
		if err != nil {
			return err
		}
		if typ == tStop {
			return nil
		}
		switch id {
		case 1:
			_, n, err := r.listHeader()
			if err != nil {
				return err
			}
			g.Columns = make([]ColumnChunk, n)
			for i := 0; i < n; i++ {
				if err := readColumnChunk(r, &g.Columns[i]); err != nil {
					return err
				}
			}
		case 2:
			v, err := r.varint()
			if err != nil {
				return err
			}
			g.TotalByteSize = v
		case 3:
			v, err := r.varint()
			if err != nil {
				return err
			}
			g.NumRows = v
		default:
			if err := r.skip(typ); err != nil {
				return err
			}
		}
	}
}

func readColumnChunk(r *tReader, c *ColumnChunk) error {
	r.beginStruct()
	defer r.endStruct()
	for {
		id, typ, err := r.fieldHeader()
		if err != nil {
			return err
		}
		if typ == tStop {
			return nil
		}
		switch id {
		case 1:
			b, err := r.readBinary()
			if err != nil {
				return err
			}
			c.Path = string(b)
		case 2:
			v, err := r.varint()
			if err != nil {
				return err
			}
			c.FileOffset = v
		case 3:
			if err := readColumnMeta(r, &c.Meta); err != nil {
				return err
			}
		default:
			if err := r.skip(typ); err != nil {
				return err
			}
		}
	}
}

func readColumnMeta(r *tReader, m *ColumnMeta) error {
	r.beginStruct()
	defer r.endStruct()
	for {
		id, typ, err := r.fieldHeader()
		if err != nil {
			return err
		}
		if typ == tStop {
			return nil
		}
		switch id {
		case 1:
			v, err := r.varint()
			if err != nil {
				return err
			}
			m.Type = int32(v)
		case 2:
			_, n, err := r.listHeader()
			if err != nil {
				return err
			}
			m.Encodings = make([]int32, n)
			for i := 0; i < n; i++ {
				v, err := r.varint()
				if err != nil {
					return err
				}
				m.Encodings[i] = int32(v)
			}
		case 3:
			v, err := r.varint()
			if err != nil {
				return err
			}
			m.NumValues = v
		case 4:
			v, err := r.varint()
			if err != nil {
				return err
			}
			m.UncompressedSize = v
		case 5:
			v, err := r.varint()
			if err != nil {
				return err
			}
			m.CompressedSize = v
		case 6:
			v, err := r.varint()
			if err != nil {
				return err
			}
			m.DataPageOffset = v
		case 7:
			if err := readStatistics(r, &m.Stats); err != nil {
				return err
			}
		default:
			if err := r.skip(typ); err != nil {
				return err
			}
		}
	}
}

func readStatistics(r *tReader, s *Statistics) error {
	r.beginStruct()
	defer r.endStruct()
	for {
		id, typ, err := r.fieldHeader()
		if err != nil {
			return err
		}
		if typ == tStop {
			return nil
		}
		switch id {
		case 1:
			b, err := r.readBinary()
			if err != nil {
				return err
			}
			s.Min = b
		case 2:
			b, err := r.readBinary()
			if err != nil {
				return err
			}
			s.Max = b
		case 3:
			v, err := r.varint()
			if err != nil {
				return err
			}
			s.NullCount = v
		default:
			if err := r.skip(typ); err != nil {
				return err
			}
		}
	}
}

// File is an opened legacy file: the footer has been fully deserialized.
type File struct {
	r    io.ReaderAt
	Meta *FileMetaData
}

// Open reads and fully deserializes the footer (the Parquet-style cost).
func Open(r io.ReaderAt, size int64) (*File, error) {
	if size < 12 {
		return nil, fmt.Errorf("legacy: file too small")
	}
	var tail [8]byte
	if _, err := r.ReadAt(tail[:], size-8); err != nil {
		return nil, err
	}
	if string(tail[4:]) != Magic {
		return nil, fmt.Errorf("legacy: bad magic %q", tail[4:])
	}
	fLen := int64(binary.LittleEndian.Uint32(tail[:4]))
	if fLen <= 0 || fLen > size-12 {
		return nil, fmt.Errorf("legacy: bad footer length %d", fLen)
	}
	buf := make([]byte, fLen)
	if _, err := r.ReadAt(buf, size-8-fLen); err != nil {
		return nil, err
	}
	meta, err := unmarshalMeta(buf)
	if err != nil {
		return nil, err
	}
	return &File{r: r, Meta: meta}, nil
}

// LookupColumn scans the deserialized schema for a column (linear, as
// Parquet readers do over their schema vectors).
func (f *File) LookupColumn(name string) (int, bool) {
	for i, s := range f.Meta.Schema {
		if s.Name == name {
			return i, true
		}
	}
	return 0, false
}

// ReadColumnInt64 reads an int64 column by index across all groups.
func (f *File) ReadColumnInt64(col int) ([]int64, error) {
	if col < 0 || col >= len(f.Meta.Schema) {
		return nil, fmt.Errorf("legacy: column %d out of range", col)
	}
	if f.Meta.Schema[col].Type != TypeInt64 {
		return nil, fmt.Errorf("legacy: column %d is not int64", col)
	}
	var out []int64
	for _, g := range f.Meta.Groups {
		c := g.Columns[col]
		buf := make([]byte, c.Meta.CompressedSize)
		if _, err := f.r.ReadAt(buf, c.FileOffset); err != nil {
			return nil, err
		}
		for i := int64(0); i < c.Meta.NumValues; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[8*i:])))
		}
	}
	return out, nil
}

// ReadColumnListInt64 reads a list<int64> column by index.
func (f *File) ReadColumnListInt64(col int) ([][]int64, error) {
	if col < 0 || col >= len(f.Meta.Schema) {
		return nil, fmt.Errorf("legacy: column %d out of range", col)
	}
	if f.Meta.Schema[col].Type != TypeListInt64 {
		return nil, fmt.Errorf("legacy: column %d is not list<int64>", col)
	}
	var out [][]int64
	for _, g := range f.Meta.Groups {
		c := g.Columns[col]
		buf := make([]byte, c.Meta.CompressedSize)
		if _, err := f.r.ReadAt(buf, c.FileOffset); err != nil {
			return nil, err
		}
		pos := 0
		for i := int64(0); i < c.Meta.NumValues; i++ {
			l, n := binary.Uvarint(buf[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("legacy: corrupt list column")
			}
			pos += n
			v := make([]int64, l)
			for j := range v {
				v[j] = int64(binary.LittleEndian.Uint64(buf[pos:]))
				pos += 8
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// Writer produces legacy files: plain-encoded column chunks, one row
// group, full Parquet-style footer.
type Writer struct {
	schema []SchemaElement
}

// NewWriter constructs a writer for the given schema.
func NewWriter(schema []SchemaElement) *Writer { return &Writer{schema: schema} }

// WriteFile writes columns (parallel to the schema) to w. Int64 columns
// take []int64, Float64 []float64, ListInt64 [][]int64.
func (w *Writer) WriteFile(out io.Writer, columns []any, numRows int64) error {
	if len(columns) != len(w.schema) {
		return fmt.Errorf("legacy: %d columns for %d schema elements", len(columns), len(w.schema))
	}
	offset := int64(0)
	if _, err := out.Write([]byte(Magic)); err != nil {
		return err
	}
	offset += 4

	group := RowGroup{NumRows: numRows}
	for i, col := range columns {
		var data []byte
		var nVals int64
		switch d := col.(type) {
		case []int64:
			nVals = int64(len(d))
			for _, v := range d {
				data = binary.LittleEndian.AppendUint64(data, uint64(v))
			}
		case []float64:
			nVals = int64(len(d))
			for _, v := range d {
				data = binary.LittleEndian.AppendUint64(data, math.Float64bits(v))
			}
		case [][]int64:
			nVals = int64(len(d))
			for _, lst := range d {
				data = binary.AppendUvarint(data, uint64(len(lst)))
				for _, v := range lst {
					data = binary.LittleEndian.AppendUint64(data, uint64(v))
				}
			}
		default:
			return fmt.Errorf("legacy: unsupported column type %T", col)
		}
		if _, err := out.Write(data); err != nil {
			return err
		}
		group.Columns = append(group.Columns, ColumnChunk{
			Path:       w.schema[i].Name,
			FileOffset: offset,
			Meta: ColumnMeta{
				Type:             w.schema[i].Type,
				Encodings:        []int32{0},
				NumValues:        nVals,
				UncompressedSize: int64(len(data)),
				CompressedSize:   int64(len(data)),
				DataPageOffset:   offset,
				Stats: Statistics{
					Min: []byte{0, 0, 0, 0, 0, 0, 0, 0},
					Max: []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
				},
			},
		})
		group.TotalByteSize += int64(len(data))
		offset += int64(len(data))
	}

	meta := &FileMetaData{Version: 1, NumRows: numRows, Schema: w.schema, Groups: []RowGroup{group}}
	footerBytes := marshalMeta(meta)
	if _, err := out.Write(footerBytes); err != nil {
		return err
	}
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[:4], uint32(len(footerBytes)))
	copy(tail[4:], Magic)
	_, err := out.Write(tail[:])
	return err
}
