package legacy

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"
)

type memFile struct{ data []byte }

func (m *memFile) Write(p []byte) (int, error) {
	m.data = append(m.data, p...)
	return len(p), nil
}

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func TestThriftRoundTrip(t *testing.T) {
	meta := &FileMetaData{
		Version: 1,
		NumRows: 12345,
		Schema: []SchemaElement{
			{Name: "uid", Type: TypeInt64},
			{Name: "feat", Type: TypeListInt64},
		},
		Groups: []RowGroup{{
			NumRows:       12345,
			TotalByteSize: 999,
			Columns: []ColumnChunk{
				{Path: "uid", FileOffset: 4, Meta: ColumnMeta{
					Type: TypeInt64, Encodings: []int32{0, 3}, NumValues: 12345,
					UncompressedSize: 98760, CompressedSize: 98760, DataPageOffset: 4,
					Stats: Statistics{Min: []byte{1}, Max: []byte{9}, NullCount: 7},
				}},
				{Path: "feat", FileOffset: 98764, Meta: ColumnMeta{
					Type: TypeListInt64, Encodings: []int32{0}, NumValues: 12345,
					Stats: Statistics{Min: []byte{}, Max: []byte{}},
				}},
			},
		}},
	}
	buf := marshalMeta(meta)
	got, err := unmarshalMeta(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || got.NumRows != 12345 {
		t.Fatalf("header: %+v", got)
	}
	if len(got.Schema) != 2 || got.Schema[0].Name != "uid" || got.Schema[1].Type != TypeListInt64 {
		t.Fatalf("schema: %+v", got.Schema)
	}
	c := got.Groups[0].Columns[0]
	if c.Path != "uid" || c.Meta.NumValues != 12345 || c.Meta.Stats.NullCount != 7 {
		t.Fatalf("chunk: %+v", c)
	}
	if len(c.Meta.Encodings) != 2 || c.Meta.Encodings[1] != 3 {
		t.Fatalf("encodings: %v", c.Meta.Encodings)
	}
}

func TestThriftRejectsTruncated(t *testing.T) {
	meta := &FileMetaData{Version: 1, Schema: []SchemaElement{{Name: "a"}}}
	buf := marshalMeta(meta)
	for cut := 1; cut < len(buf); cut += 3 {
		if _, err := unmarshalMeta(buf[:cut]); err == nil {
			// Some truncation points land on a valid (shorter) struct —
			// only the completely empty prefix must always fail.
			continue
		}
	}
	if _, err := unmarshalMeta(nil); err == nil {
		t.Fatal("empty metadata parsed")
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	uid := make([]int64, n)
	feat := make([][]int64, n)
	for i := range uid {
		uid[i] = int64(i)
		feat[i] = []int64{rng.Int63n(100), rng.Int63n(100)}
	}
	schema := []SchemaElement{
		{Name: "uid", Type: TypeInt64},
		{Name: "feat", Type: TypeListInt64},
	}
	mf := &memFile{}
	if err := NewWriter(schema).WriteFile(mf, []any{uid, feat}, int64(n)); err != nil {
		t.Fatal(err)
	}
	f, err := Open(mf, int64(len(mf.data)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta.NumRows != int64(n) {
		t.Fatalf("NumRows = %d", f.Meta.NumRows)
	}
	col, ok := f.LookupColumn("uid")
	if !ok || col != 0 {
		t.Fatalf("LookupColumn = (%d,%v)", col, ok)
	}
	gotUID, err := f.ReadColumnInt64(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range uid {
		if gotUID[i] != uid[i] {
			t.Fatalf("uid[%d] = %d", i, gotUID[i])
		}
	}
	gotFeat, err := f.ReadColumnListInt64(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range feat {
		for j := range feat[i] {
			if gotFeat[i][j] != feat[i][j] {
				t.Fatalf("feat[%d][%d] mismatch", i, j)
			}
		}
	}
	// Type confusion errors.
	if _, err := f.ReadColumnInt64(1); err == nil {
		t.Fatal("list column read as int64")
	}
	if _, err := f.ReadColumnListInt64(0); err == nil {
		t.Fatal("int64 column read as list")
	}
}

func TestOpenRejectsBadFile(t *testing.T) {
	if _, err := Open(&memFile{data: []byte("tiny")}, 4); err == nil {
		t.Fatal("tiny file opened")
	}
	mf := &memFile{}
	if err := NewWriter([]SchemaElement{{Name: "a", Type: TypeInt64}}).
		WriteFile(mf, []any{[]int64{1}}, 1); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, mf.data...)
	copy(bad[len(bad)-4:], "XXXX")
	if _, err := Open(&memFile{data: bad}, int64(len(bad))); err == nil {
		t.Fatal("bad magic opened")
	}
}

// The Figure 5 behaviour in unit form: open time grows with column count
// because the whole footer is deserialized.
func TestMetadataParseScalesWithColumns(t *testing.T) {
	parse := func(nCols int) time.Duration {
		schema := make([]SchemaElement, nCols)
		cols := make([]any, nCols)
		for i := range schema {
			schema[i] = SchemaElement{Name: fmt.Sprintf("feat_%d", i), Type: TypeInt64}
			cols[i] = []int64{1}
		}
		mf := &memFile{}
		if err := NewWriter(schema).WriteFile(mf, cols, 1); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for k := 0; k < 20; k++ {
			if _, err := Open(mf, int64(len(mf.data))); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	small := parse(100)
	large := parse(10000)
	if large < small*10 {
		t.Fatalf("10000-column parse (%v) not >=10x slower than 100-column (%v): footer parse is not linear", large, small)
	}
	t.Logf("legacy metadata parse: 100 cols %v, 10000 cols %v", small, large)
}
