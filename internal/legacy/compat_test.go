package legacy

import "testing"

// Thrift-style forward compatibility: decoders must skip unknown fields,
// as real Parquet readers do when newer writers add metadata.
func TestUnknownFieldsSkipped(t *testing.T) {
	w := newTWriter()
	w.beginStructElem()
	w.writeI32(1, 7)                         // version
	w.writeI64(2, 99)                        // num_rows
	w.writeBinary(9, []byte("future-field")) // unknown id
	w.writeBool(10, true)                    // unknown bool
	w.beginStructField(11)                   // unknown nested struct
	w.writeI64(1, 123)
	w.beginList(2, tI32, 3)
	for i := 0; i < 3; i++ {
		w.buf = append(w.buf, byte(i<<1)) // zigzag varints 0,1,2... (i<<1 ok for small)
	}
	w.endStruct()
	w.beginList(3, tStruct, 1) // schema with one element
	w.beginStructElem()
	w.writeBinary(1, []byte("col"))
	w.writeI32(2, TypeInt64)
	w.writeBinary(5, []byte("unknown-inside-schema"))
	w.endStruct()
	w.endStruct()

	m, err := unmarshalMeta(w.buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 7 || m.NumRows != 99 {
		t.Fatalf("header: %+v", m)
	}
	if len(m.Schema) != 1 || m.Schema[0].Name != "col" {
		t.Fatalf("schema: %+v", m.Schema)
	}
}

func TestThriftSkipTypes(t *testing.T) {
	// skip must handle every wire type, including nested lists of structs.
	w := newTWriter()
	w.beginStructElem()
	w.beginList(1, tList, 1) // list<list<...>>: unusual but legal
	w.buf = append(w.buf, byte(2<<4|tI32))
	w.buf = append(w.buf, 2, 4) // two varints
	w.writeI64(2, 5)
	w.endStruct()

	r := newTReader(w.buf)
	r.beginStruct()
	id, typ, err := r.fieldHeader()
	if err != nil || id != 1 || typ != tList {
		t.Fatalf("header: %d %d %v", id, typ, err)
	}
	if err := r.skip(tList); err != nil {
		t.Fatal(err)
	}
	id, typ, err = r.fieldHeader()
	if err != nil || id != 2 || typ != tI64 {
		t.Fatalf("after skip: %d %d %v", id, typ, err)
	}
	v, err := r.varint()
	if err != nil || v != 5 {
		t.Fatalf("value: %d %v", v, err)
	}
}
