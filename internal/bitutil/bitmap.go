// Package bitutil provides bit-level primitives shared by every encoding in
// the repository: validity/deletion bitmaps, bit-packed readers and writers,
// and bit-width arithmetic.
//
// The package is deliberately dependency-free; it sits at the bottom of the
// substrate stack (S1 in DESIGN.md).
package bitutil

import (
	"fmt"
	"math/bits"
)

// Bitmap is a fixed-length sequence of bits backed by 64-bit words.
// Bit i of the bitmap is bit (i%64) of Words[i/64]. The zero value is an
// empty bitmap ready to use; grow it with Resize or construct with NewBitmap.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns a bitmap of n bits, all clear.
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		panic("bitutil: negative bitmap length")
	}
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// BitmapFromWords wraps an existing word slice as an n-bit bitmap.
// The slice is used directly, not copied.
func BitmapFromWords(words []uint64, n int) *Bitmap {
	if need := (n + 63) / 64; need > len(words) {
		panic(fmt.Sprintf("bitutil: %d words cannot hold %d bits", len(words), n))
	}
	return &Bitmap{words: words, n: n}
}

// Len returns the number of bits in the bitmap.
func (b *Bitmap) Len() int { return b.n }

// Words exposes the backing words. Trailing bits past Len are zero as long
// as all mutation went through Bitmap methods.
func (b *Bitmap) Words() []uint64 { return b.words }

// Set sets bit i.
func (b *Bitmap) Set(i int) {
	b.check(i)
	b.words[i>>6] |= 1 << uint(i&63)
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int) {
	b.check(i)
	b.words[i>>6] &^= 1 << uint(i&63)
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	b.check(i)
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

func (b *Bitmap) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitutil: bit index %d out of range [0,%d)", i, b.n))
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Resize grows or shrinks the bitmap to n bits, preserving the prefix.
// New bits are clear.
func (b *Bitmap) Resize(n int) {
	if n < 0 {
		panic("bitutil: negative bitmap length")
	}
	need := (n + 63) / 64
	switch {
	case need > len(b.words):
		nw := make([]uint64, need)
		copy(nw, b.words)
		b.words = nw
	case need < len(b.words):
		b.words = b.words[:need]
	}
	b.n = n
	b.clearTail()
}

// clearTail zeroes bits at positions >= n in the final word so that Count
// and Words stay consistent after shrinking.
func (b *Bitmap) clearTail() {
	if rem := b.n & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitmap{words: w, n: b.n}
}

// Or sets b to b|other. The bitmaps must have equal length.
func (b *Bitmap) Or(other *Bitmap) {
	if b.n != other.n {
		panic("bitutil: Or on bitmaps of different length")
	}
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// And sets b to b&other. The bitmaps must have equal length.
func (b *Bitmap) And(other *Bitmap) {
	if b.n != other.n {
		panic("bitutil: And on bitmaps of different length")
	}
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// AndNot sets b to b&^other. The bitmaps must have equal length.
func (b *Bitmap) AndNot(other *Bitmap) {
	if b.n != other.n {
		panic("bitutil: AndNot on bitmaps of different length")
	}
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
}

// SetRange sets bits in [from, to).
func (b *Bitmap) SetRange(from, to int) {
	if from < 0 || to > b.n || from > to {
		panic(fmt.Sprintf("bitutil: SetRange [%d,%d) out of range [0,%d)", from, to, b.n))
	}
	for i := from; i < to; i++ {
		b.Set(i)
	}
}

// Ones returns the indexes of all set bits in increasing order.
func (b *Bitmap) Ones() []int {
	out := make([]int, 0, b.Count())
	for wi, w := range b.words {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			out = append(out, wi*64+t)
			w &= w - 1
		}
	}
	return out
}

// NextSet returns the index of the first set bit at or after i, or -1.
func (b *Bitmap) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i >> 6
	w := b.words[wi] >> uint(i&63)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi*64 + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// CountRange returns the number of set bits in [from, to).
func (b *Bitmap) CountRange(from, to int) int {
	if from < 0 || to > b.n || from > to {
		panic(fmt.Sprintf("bitutil: CountRange [%d,%d) out of range [0,%d)", from, to, b.n))
	}
	c := 0
	for i := from; i < to; i++ {
		if b.Get(i) {
			c++
		}
	}
	return c
}
