package bitutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapBasic(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	if b.Any() {
		t.Fatal("fresh bitmap reports Any")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) {
		t.Fatal("set bits not readable")
	}
	if b.Get(1) || b.Get(63) || b.Get(128) {
		t.Fatal("unset bits report set")
	}
	if got := b.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("cleared bit still set")
	}
	if got := b.Count(); got != 2 {
		t.Fatalf("Count after clear = %d, want 2", got)
	}
}

func TestBitmapOutOfRangePanics(t *testing.T) {
	b := NewBitmap(10)
	for _, f := range []func(){
		func() { b.Set(10) },
		func() { b.Get(-1) },
		func() { b.Clear(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on out-of-range access")
				}
			}()
			f()
		}()
	}
}

func TestBitmapResize(t *testing.T) {
	b := NewBitmap(10)
	b.Set(3)
	b.Set(9)
	b.Resize(200)
	if !b.Get(3) || !b.Get(9) {
		t.Fatal("resize lost bits")
	}
	if b.Get(100) {
		t.Fatal("new bits should be clear")
	}
	b.Set(150)
	b.Resize(5)
	if b.Len() != 5 || !b.Get(3) {
		t.Fatal("shrink lost prefix")
	}
	if b.Count() != 1 {
		t.Fatalf("Count after shrink = %d, want 1", b.Count())
	}
	// Re-grow: previously-set bit 9 must not resurrect.
	b.Resize(20)
	if b.Get(9) {
		t.Fatal("shrink-then-grow resurrected a bit")
	}
}

func TestBitmapOnesAndNextSet(t *testing.T) {
	b := NewBitmap(300)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 255, 299}
	for _, i := range idx {
		b.Set(i)
	}
	ones := b.Ones()
	if len(ones) != len(idx) {
		t.Fatalf("Ones len = %d, want %d", len(ones), len(idx))
	}
	for i := range idx {
		if ones[i] != idx[i] {
			t.Fatalf("Ones[%d] = %d, want %d", i, ones[i], idx[i])
		}
	}
	if got := b.NextSet(0); got != 0 {
		t.Fatalf("NextSet(0) = %d, want 0", got)
	}
	if got := b.NextSet(2); got != 63 {
		t.Fatalf("NextSet(2) = %d, want 63", got)
	}
	if got := b.NextSet(256); got != 299 {
		t.Fatalf("NextSet(256) = %d, want 299", got)
	}
	if got := b.NextSet(300); got != -1 {
		t.Fatalf("NextSet(300) = %d, want -1", got)
	}
}

func TestBitmapAlgebra(t *testing.T) {
	a := NewBitmap(100)
	b := NewBitmap(100)
	a.SetRange(0, 50)
	b.SetRange(25, 75)

	or := a.Clone()
	or.Or(b)
	if or.Count() != 75 {
		t.Fatalf("Or count = %d, want 75", or.Count())
	}
	and := a.Clone()
	and.And(b)
	if and.Count() != 25 {
		t.Fatalf("And count = %d, want 25", and.Count())
	}
	diff := a.Clone()
	diff.AndNot(b)
	if diff.Count() != 25 {
		t.Fatalf("AndNot count = %d, want 25", diff.Count())
	}
	if diff.Get(30) {
		t.Fatal("AndNot kept a removed bit")
	}
}

func TestBitmapCountRange(t *testing.T) {
	b := NewBitmap(128)
	b.SetRange(10, 20)
	if got := b.CountRange(0, 128); got != 10 {
		t.Fatalf("CountRange full = %d, want 10", got)
	}
	if got := b.CountRange(15, 18); got != 3 {
		t.Fatalf("CountRange partial = %d, want 3", got)
	}
	if got := b.CountRange(20, 128); got != 0 {
		t.Fatalf("CountRange empty = %d, want 0", got)
	}
}

// Property: Ones() returns exactly the set bits, for random bitmaps.
func TestBitmapOnesProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		rng := rand.New(rand.NewSource(seed))
		b := NewBitmap(n)
		want := map[int]bool{}
		for i := 0; i < n/3; i++ {
			k := rng.Intn(n)
			b.Set(k)
			want[k] = true
		}
		ones := b.Ones()
		if len(ones) != len(want) {
			return false
		}
		for _, k := range ones {
			if !want[k] {
				return false
			}
		}
		return b.Count() == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapFromWords(t *testing.T) {
	words := []uint64{0b1011, 1}
	b := BitmapFromWords(words, 65)
	if !b.Get(0) || b.Get(2) || !b.Get(64) {
		t.Fatal("BitmapFromWords misread")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for too-short words")
		}
	}()
	BitmapFromWords(words, 200)
}
