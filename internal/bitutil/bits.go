package bitutil

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// ScalarKernels routes Unpack/UnpackInt64/UnpackZigZagInt64 and the
// run-fill and float-decode loops in internal/enc through their
// byte-at-a-time reference
// implementations instead of the word-at-a-time kernels. It exists solely
// so equivalence tests can decode every stream through both paths and
// require byte-identical output. Not safe to flip concurrently with
// decoding; only tests touch it.
var ScalarKernels bool

// WidthOf returns the minimum number of bits needed to represent v.
// WidthOf(0) == 0 by convention; callers packing all-zero data should treat
// width 0 as "constant zero".
func WidthOf(v uint64) int { return bits.Len64(v) }

// MaxWidth returns the minimum bit width that can represent every value in
// vs, or 0 when vs is empty or all-zero.
func MaxWidth(vs []uint64) int {
	var m uint64
	for _, v := range vs {
		m |= v
	}
	return bits.Len64(m)
}

// PackedLen returns the number of bytes needed to store n values at the
// given bit width.
func PackedLen(n, width int) int {
	return (n*width + 7) / 8
}

// Pack appends n values from vs bit-packed at the given width to dst and
// returns the extended slice. Values must fit in width bits; Pack panics
// otherwise, since silently truncating stored data would corrupt the file.
func Pack(dst []byte, vs []uint64, width int) []byte {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitutil: invalid pack width %d", width))
	}
	if width == 0 {
		return dst
	}
	limit := ^uint64(0)
	if width < 64 {
		limit = (1 << uint(width)) - 1
	}
	start := len(dst)
	dst = append(dst, make([]byte, PackedLen(len(vs), width))...)
	buf := dst[start:]
	bitPos := 0
	for _, v := range vs {
		if v > limit {
			panic(fmt.Sprintf("bitutil: value %d exceeds width %d", v, width))
		}
		rem := width
		for rem > 0 {
			bitOff := bitPos & 7
			take := 8 - bitOff
			if take > rem {
				take = rem
			}
			buf[bitPos>>3] |= byte(v&((1<<uint(take))-1)) << uint(bitOff)
			v >>= uint(take)
			rem -= take
			bitPos += take
		}
	}
	return dst
}

// Unpack decodes n width-bit values from src into dst (which must have
// length >= n) and returns dst[:n]. It is the inverse of Pack.
//
// The hot path is a word-at-a-time kernel: every value is extracted from a
// single unaligned 64-bit load (plus one spill byte for widths > 57), with
// the inner loop processing byte-aligned 8-value groups so the group base
// advances exactly `width` bytes per iteration. Only the final values —
// where an 8-byte load would run past the buffer — fall back to the
// byte-at-a-time reference loop.
func Unpack(dst []uint64, src []byte, n, width int) ([]uint64, error) {
	if err := checkUnpack(len(src), n, width); err != nil {
		return nil, err
	}
	if ScalarKernels {
		unpackScalarRange(dst, src, 0, n, width)
		return dst[:n], nil
	}
	switch {
	case width == 0:
		clear(dst[:n])
	case width == 64:
		for i := 0; i < n; i++ {
			dst[i] = binary.LittleEndian.Uint64(src[8*i:])
		}
	case width <= 57:
		mask := uint64(1)<<uint(width) - 1
		i := 0
		// Full 8-value groups: group g starts at byte g*width; the last
		// value in the group starts at bit 7*width within it, so one
		// whole 8-byte load per value is safe while
		// base + (7*width)/8 + 8 <= len(src).
		base, lastOff := 0, (7*width)>>3
		for i+8 <= n && base+lastOff+8 <= len(src) {
			b := src[base:]
			bit := 0
			for j := 0; j < 8; j++ {
				w := binary.LittleEndian.Uint64(b[bit>>3:])
				dst[i+j] = (w >> uint(bit&7)) & mask
				bit += width
			}
			i += 8
			base += width
		}
		// Per-value fast path for the remainder while a full load fits.
		bitPos := i * width
		for i < n && bitPos>>3+8 <= len(src) {
			w := binary.LittleEndian.Uint64(src[bitPos>>3:])
			dst[i] = (w >> uint(bitPos&7)) & mask
			bitPos += width
			i++
		}
		unpackScalarRange(dst, src, i, n, width)
	default: // widths 58..63: value spans up to 70 bits — 8-byte load + spill byte
		mask := uint64(1)<<uint(width) - 1
		i, bitPos := 0, 0
		for i < n && bitPos>>3+9 <= len(src) {
			p := bitPos >> 3
			o := uint(bitPos & 7)
			v := binary.LittleEndian.Uint64(src[p:]) >> o
			v |= uint64(src[p+8]) << (64 - o) // shift of 64 when o==0 yields 0
			dst[i] = v & mask
			bitPos += width
			i++
		}
		unpackScalarRange(dst, src, i, n, width)
	}
	return dst[:n], nil
}

// UnpackInt64 decodes len(dst) width-bit values from src, writing base+v
// into dst — the FixedBitWidth/FOR/PFOR inner loop fused with the
// int64 conversion so decoders need no []uint64 staging buffer.
func UnpackInt64(dst []int64, src []byte, width int, base int64) error {
	n := len(dst)
	if err := checkUnpack(len(src), n, width); err != nil {
		return err
	}
	if ScalarKernels {
		unpackScalarInt64(dst, src, width, base)
		return nil
	}
	switch {
	case width == 0:
		for i := range dst {
			dst[i] = base
		}
	case width == 64:
		for i := 0; i < n; i++ {
			dst[i] = base + int64(binary.LittleEndian.Uint64(src[8*i:]))
		}
	case width <= 57:
		mask := uint64(1)<<uint(width) - 1
		i := 0
		gBase, lastOff := 0, (7*width)>>3
		for i+8 <= n && gBase+lastOff+8 <= len(src) {
			b := src[gBase:]
			bit := 0
			for j := 0; j < 8; j++ {
				w := binary.LittleEndian.Uint64(b[bit>>3:])
				dst[i+j] = base + int64((w>>uint(bit&7))&mask)
				bit += width
			}
			i += 8
			gBase += width
		}
		bitPos := i * width
		for i < n && bitPos>>3+8 <= len(src) {
			w := binary.LittleEndian.Uint64(src[bitPos>>3:])
			dst[i] = base + int64((w>>uint(bitPos&7))&mask)
			bitPos += width
			i++
		}
		for ; i < n; i++ {
			dst[i] = base + int64(unpackOne(src, i*width, width))
		}
	default:
		mask := uint64(1)<<uint(width) - 1
		i, bitPos := 0, 0
		for i < n && bitPos>>3+9 <= len(src) {
			p := bitPos >> 3
			o := uint(bitPos & 7)
			v := binary.LittleEndian.Uint64(src[p:]) >> o
			v |= uint64(src[p+8]) << (64 - o)
			dst[i] = base + int64(v&mask)
			bitPos += width
			i++
		}
		for ; i < n; i++ {
			dst[i] = base + int64(unpackOne(src, i*width, width))
		}
	}
	return nil
}

// UnpackZigZagInt64 decodes len(dst) width-bit zigzag values from src —
// the SIMDFastBP128 inner loop fused with UnZigZag.
func UnpackZigZagInt64(dst []int64, src []byte, width int) error {
	n := len(dst)
	if err := checkUnpack(len(src), n, width); err != nil {
		return err
	}
	if ScalarKernels {
		for i := range dst {
			dst[i] = UnZigZag(unpackOne(src, i*width, width))
		}
		return nil
	}
	switch {
	case width == 0:
		clear(dst)
	case width == 64:
		for i := 0; i < n; i++ {
			dst[i] = UnZigZag(binary.LittleEndian.Uint64(src[8*i:]))
		}
	case width <= 57:
		mask := uint64(1)<<uint(width) - 1
		i := 0
		gBase, lastOff := 0, (7*width)>>3
		for i+8 <= n && gBase+lastOff+8 <= len(src) {
			b := src[gBase:]
			bit := 0
			for j := 0; j < 8; j++ {
				w := binary.LittleEndian.Uint64(b[bit>>3:])
				dst[i+j] = UnZigZag((w >> uint(bit&7)) & mask)
				bit += width
			}
			i += 8
			gBase += width
		}
		bitPos := i * width
		for i < n && bitPos>>3+8 <= len(src) {
			w := binary.LittleEndian.Uint64(src[bitPos>>3:])
			dst[i] = UnZigZag((w >> uint(bitPos&7)) & mask)
			bitPos += width
			i++
		}
		for ; i < n; i++ {
			dst[i] = UnZigZag(unpackOne(src, i*width, width))
		}
	default:
		mask := uint64(1)<<uint(width) - 1
		i, bitPos := 0, 0
		for i < n && bitPos>>3+9 <= len(src) {
			p := bitPos >> 3
			o := uint(bitPos & 7)
			v := binary.LittleEndian.Uint64(src[p:]) >> o
			v |= uint64(src[p+8]) << (64 - o)
			dst[i] = UnZigZag(v & mask)
			bitPos += width
			i++
		}
		for ; i < n; i++ {
			dst[i] = UnZigZag(unpackOne(src, i*width, width))
		}
	}
	return nil
}

// UnpackScalar is the byte-at-a-time reference implementation of Unpack,
// kept for the kernel-vs-scalar equivalence tests (and used by the kernels
// for buffer-tail values).
func UnpackScalar(dst []uint64, src []byte, n, width int) ([]uint64, error) {
	if err := checkUnpack(len(src), n, width); err != nil {
		return nil, err
	}
	unpackScalarRange(dst, src, 0, n, width)
	return dst[:n], nil
}

func checkUnpack(srcLen, n, width int) error {
	if width < 0 || width > 64 {
		return fmt.Errorf("bitutil: invalid unpack width %d", width)
	}
	if need := PackedLen(n, width); srcLen < need {
		return fmt.Errorf("bitutil: packed data too short: have %d bytes, need %d", srcLen, need)
	}
	return nil
}

// unpackScalarRange decodes values [from, n) byte-at-a-time.
func unpackScalarRange(dst []uint64, src []byte, from, n, width int) {
	for i := from; i < n; i++ {
		dst[i] = unpackOne(src, i*width, width)
	}
}

func unpackScalarInt64(dst []int64, src []byte, width int, base int64) {
	for i := range dst {
		dst[i] = base + int64(unpackOne(src, i*width, width))
	}
}

// unpackOne extracts one width-bit value starting at bitPos, one byte at a
// time — correct at any alignment and any buffer tail.
func unpackOne(src []byte, bitPos, width int) uint64 {
	var v uint64
	shift := 0
	rem := width
	for rem > 0 {
		bitOff := bitPos & 7
		take := 8 - bitOff
		if take > rem {
			take = rem
		}
		chunk := uint64(src[bitPos>>3]>>uint(bitOff)) & ((1 << uint(take)) - 1)
		v |= chunk << uint(shift)
		shift += take
		rem -= take
		bitPos += take
	}
	return v
}

// Writer writes an MSB-agnostic little-endian bit stream. Bits are appended
// least-significant-first within each byte, matching Pack's layout.
type Writer struct {
	buf    []byte
	bitPos int
}

// NewWriter returns a bit writer appending to buf.
func NewWriter(buf []byte) *Writer {
	return &Writer{buf: buf, bitPos: len(buf) * 8}
}

// WriteBits appends the low `width` bits of v.
func (w *Writer) WriteBits(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitutil: invalid write width %d", width))
	}
	for width > 0 {
		if w.bitPos>>3 >= len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		bitOff := w.bitPos & 7
		take := 8 - bitOff
		if take > width {
			take = width
		}
		w.buf[w.bitPos>>3] |= byte(v&((1<<uint(take))-1)) << uint(bitOff)
		v >>= uint(take)
		width -= take
		w.bitPos += take
	}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// Bytes returns the accumulated bytes.
func (w *Writer) Bytes() []byte { return w.buf }

// BitLen returns the number of bits written.
func (w *Writer) BitLen() int { return w.bitPos }

// Reader reads the bit stream produced by Writer.
type Reader struct {
	buf    []byte
	bitPos int
}

// NewReader returns a bit reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBits reads `width` bits, little-endian-first.
func (r *Reader) ReadBits(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("bitutil: invalid read width %d", width)
	}
	if r.bitPos+width > len(r.buf)*8 {
		return 0, fmt.Errorf("bitutil: bit stream exhausted at bit %d (want %d more, have %d)", r.bitPos, width, len(r.buf)*8-r.bitPos)
	}
	var v uint64
	shift := 0
	rem := width
	for rem > 0 {
		bitOff := r.bitPos & 7
		take := 8 - bitOff
		if take > rem {
			take = rem
		}
		chunk := uint64(r.buf[r.bitPos>>3]>>uint(bitOff)) & ((1 << uint(take)) - 1)
		v |= chunk << uint(shift)
		shift += take
		rem -= take
		r.bitPos += take
	}
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// BitPos returns the current read position in bits.
func (r *Reader) BitPos() int { return r.bitPos }

// Peek64 returns the 64 bits starting at bitPos as one word, built from a
// single unaligned 64-bit load plus one spill byte. It reports false when
// fewer than 9 whole bytes remain past bitPos's byte — callers then finish
// with ReadBitsAt. This is the primitive behind the branch-reduced
// Gorilla/Chimp decode loops: one peek covers a value's control bits,
// window header, and (typically) its mantissa.
func Peek64(src []byte, bitPos int) (uint64, bool) {
	p := bitPos >> 3
	if p+9 > len(src) {
		return 0, false
	}
	o := uint(bitPos & 7)
	v := binary.LittleEndian.Uint64(src[p:]) >> o
	v |= uint64(src[p+8]) << (64 - o) // shift of 64 when o==0 yields 0
	return v, true
}

// ReadBitsAt extracts `width` bits (0..64) starting at bitPos, correct at
// any alignment and any buffer tail; false when the stream is exhausted.
func ReadBitsAt(src []byte, bitPos, width int) (uint64, bool) {
	if width < 0 || width > 64 || bitPos < 0 || bitPos+width > 8*len(src) {
		return 0, false
	}
	if v, ok := Peek64(src, bitPos); ok && !ScalarKernels {
		if width < 64 {
			v &= uint64(1)<<uint(width) - 1
		}
		return v, true
	}
	return unpackOne(src, bitPos, width), true
}

// ZigZag maps a signed integer to an unsigned integer so that small-magnitude
// values (positive or negative) become small unsigned values.
func ZigZag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// UnZigZag is the inverse of ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
