package bitutil

import (
	"fmt"
	"math/bits"
)

// WidthOf returns the minimum number of bits needed to represent v.
// WidthOf(0) == 0 by convention; callers packing all-zero data should treat
// width 0 as "constant zero".
func WidthOf(v uint64) int { return bits.Len64(v) }

// MaxWidth returns the minimum bit width that can represent every value in
// vs, or 0 when vs is empty or all-zero.
func MaxWidth(vs []uint64) int {
	var m uint64
	for _, v := range vs {
		m |= v
	}
	return bits.Len64(m)
}

// PackedLen returns the number of bytes needed to store n values at the
// given bit width.
func PackedLen(n, width int) int {
	return (n*width + 7) / 8
}

// Pack appends n values from vs bit-packed at the given width to dst and
// returns the extended slice. Values must fit in width bits; Pack panics
// otherwise, since silently truncating stored data would corrupt the file.
func Pack(dst []byte, vs []uint64, width int) []byte {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitutil: invalid pack width %d", width))
	}
	if width == 0 {
		return dst
	}
	limit := ^uint64(0)
	if width < 64 {
		limit = (1 << uint(width)) - 1
	}
	start := len(dst)
	dst = append(dst, make([]byte, PackedLen(len(vs), width))...)
	buf := dst[start:]
	bitPos := 0
	for _, v := range vs {
		if v > limit {
			panic(fmt.Sprintf("bitutil: value %d exceeds width %d", v, width))
		}
		rem := width
		for rem > 0 {
			bitOff := bitPos & 7
			take := 8 - bitOff
			if take > rem {
				take = rem
			}
			buf[bitPos>>3] |= byte(v&((1<<uint(take))-1)) << uint(bitOff)
			v >>= uint(take)
			rem -= take
			bitPos += take
		}
	}
	return dst
}

// Unpack decodes n width-bit values from src into dst (which must have
// length >= n) and returns dst[:n]. It is the inverse of Pack.
func Unpack(dst []uint64, src []byte, n, width int) ([]uint64, error) {
	if width < 0 || width > 64 {
		return nil, fmt.Errorf("bitutil: invalid unpack width %d", width)
	}
	if width == 0 {
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return dst[:n], nil
	}
	if need := PackedLen(n, width); len(src) < need {
		return nil, fmt.Errorf("bitutil: packed data too short: have %d bytes, need %d", len(src), need)
	}
	bitPos := 0
	for i := 0; i < n; i++ {
		var v uint64
		shift := 0
		rem := width
		for rem > 0 {
			bitOff := bitPos & 7
			take := 8 - bitOff
			if take > rem {
				take = rem
			}
			chunk := uint64(src[bitPos>>3]>>uint(bitOff)) & ((1 << uint(take)) - 1)
			v |= chunk << uint(shift)
			shift += take
			rem -= take
			bitPos += take
		}
		dst[i] = v
	}
	return dst[:n], nil
}

// Writer writes an MSB-agnostic little-endian bit stream. Bits are appended
// least-significant-first within each byte, matching Pack's layout.
type Writer struct {
	buf    []byte
	bitPos int
}

// NewWriter returns a bit writer appending to buf.
func NewWriter(buf []byte) *Writer {
	return &Writer{buf: buf, bitPos: len(buf) * 8}
}

// WriteBits appends the low `width` bits of v.
func (w *Writer) WriteBits(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitutil: invalid write width %d", width))
	}
	for width > 0 {
		if w.bitPos>>3 >= len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		bitOff := w.bitPos & 7
		take := 8 - bitOff
		if take > width {
			take = width
		}
		w.buf[w.bitPos>>3] |= byte(v&((1<<uint(take))-1)) << uint(bitOff)
		v >>= uint(take)
		width -= take
		w.bitPos += take
	}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// Bytes returns the accumulated bytes.
func (w *Writer) Bytes() []byte { return w.buf }

// BitLen returns the number of bits written.
func (w *Writer) BitLen() int { return w.bitPos }

// Reader reads the bit stream produced by Writer.
type Reader struct {
	buf    []byte
	bitPos int
}

// NewReader returns a bit reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBits reads `width` bits, little-endian-first.
func (r *Reader) ReadBits(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("bitutil: invalid read width %d", width)
	}
	if r.bitPos+width > len(r.buf)*8 {
		return 0, fmt.Errorf("bitutil: bit stream exhausted at bit %d (want %d more, have %d)", r.bitPos, width, len(r.buf)*8-r.bitPos)
	}
	var v uint64
	shift := 0
	rem := width
	for rem > 0 {
		bitOff := r.bitPos & 7
		take := 8 - bitOff
		if take > rem {
			take = rem
		}
		chunk := uint64(r.buf[r.bitPos>>3]>>uint(bitOff)) & ((1 << uint(take)) - 1)
		v |= chunk << uint(shift)
		shift += take
		rem -= take
		r.bitPos += take
	}
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// BitPos returns the current read position in bits.
func (r *Reader) BitPos() int { return r.bitPos }

// ZigZag maps a signed integer to an unsigned integer so that small-magnitude
// values (positive or negative) become small unsigned values.
func ZigZag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// UnZigZag is the inverse of ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
