package bitutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWidthOf(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
		{1 << 63, 64}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := WidthOf(c.v); got != c.want {
			t.Errorf("WidthOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestMaxWidth(t *testing.T) {
	if got := MaxWidth(nil); got != 0 {
		t.Fatalf("MaxWidth(nil) = %d, want 0", got)
	}
	if got := MaxWidth([]uint64{0, 0}); got != 0 {
		t.Fatalf("MaxWidth(zeros) = %d, want 0", got)
	}
	if got := MaxWidth([]uint64{1, 7, 3}); got != 3 {
		t.Fatalf("MaxWidth = %d, want 3", got)
	}
}

func TestPackUnpackWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for width := 0; width <= 64; width++ {
		n := 100
		vs := make([]uint64, n)
		if width > 0 {
			for i := range vs {
				vs[i] = rng.Uint64()
				if width < 64 {
					vs[i] &= (1 << uint(width)) - 1
				}
			}
		}
		packed := Pack(nil, vs, width)
		if len(packed) != PackedLen(n, width) {
			t.Fatalf("width %d: packed len = %d, want %d", width, len(packed), PackedLen(n, width))
		}
		got, err := Unpack(make([]uint64, n), packed, n, width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("width %d: value %d = %d, want %d", width, i, got[i], vs[i])
			}
		}
	}
}

func TestPackAppends(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	out := Pack(prefix, []uint64{5, 6, 7}, 3)
	if out[0] != 0xAA || out[1] != 0xBB {
		t.Fatal("Pack clobbered prefix")
	}
	got, err := Unpack(make([]uint64, 3), out[2:], 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 || got[1] != 6 || got[2] != 7 {
		t.Fatalf("roundtrip after prefix = %v", got)
	}
}

func TestPackRejectsOversized(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic packing 8 into width 3")
		}
	}()
	Pack(nil, []uint64{8}, 3)
}

func TestUnpackShortInput(t *testing.T) {
	if _, err := Unpack(make([]uint64, 10), []byte{1}, 10, 8); err == nil {
		t.Fatal("expected error for short input")
	}
}

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(nil)
	w.WriteBit(true)
	w.WriteBits(0x3FF, 10)
	w.WriteBit(false)
	w.WriteBits(0xDEADBEEFCAFE, 48)
	w.WriteBits(^uint64(0), 64)

	r := NewReader(w.Bytes())
	if b, _ := r.ReadBit(); !b {
		t.Fatal("bit 0")
	}
	if v, _ := r.ReadBits(10); v != 0x3FF {
		t.Fatalf("10-bit = %x", v)
	}
	if b, _ := r.ReadBit(); b {
		t.Fatal("bit 12")
	}
	if v, _ := r.ReadBits(48); v != 0xDEADBEEFCAFE {
		t.Fatalf("48-bit = %x", v)
	}
	if v, _ := r.ReadBits(64); v != ^uint64(0) {
		t.Fatalf("64-bit = %x", v)
	}
	// 124 bits written, padded to 16 bytes: 4 padding bits remain readable,
	// a 5th must fail.
	if _, err := r.ReadBits(5); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

// Property: arbitrary (value, width) sequences survive a writer/reader trip.
func TestBitStreamProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		widths := make([]int, n)
		vals := make([]uint64, n)
		w := NewWriter(nil)
		for i := 0; i < n; i++ {
			widths[i] = rng.Intn(64) + 1
			vals[i] = rng.Uint64()
			if widths[i] < 64 {
				vals[i] &= (1 << uint(widths[i])) - 1
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < n; i++ {
			v, err := r.ReadBits(widths[i])
			if err != nil || v != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZigZag(t *testing.T) {
	cases := []struct {
		v int64
		u uint64
	}{
		{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4},
		{1 << 62, 1 << 63}, {-(1 << 62), 1<<63 - 1},
	}
	for _, c := range cases {
		if got := ZigZag(c.v); got != c.u {
			t.Errorf("ZigZag(%d) = %d, want %d", c.v, got, c.u)
		}
		if got := UnZigZag(c.u); got != c.v {
			t.Errorf("UnZigZag(%d) = %d, want %d", c.u, got, c.v)
		}
	}
}

func TestZigZagProperty(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestUnpackKernelEquivalence sweeps every width and the lengths around
// the kernels' region boundaries (8-value groups, the per-value fast
// path, the scalar tail) and requires the word-at-a-time kernels to match
// the byte-at-a-time reference exactly — for the uint64, fused-base, and
// fused-zigzag variants alike. Shifted source copies catch any hidden
// alignment assumption in the unaligned 64-bit loads.
func TestUnpackKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	lengths := []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 23, 63, 64, 65, 100, 127, 128, 129}
	for width := 0; width <= 64; width++ {
		for _, n := range lengths {
			vs := make([]uint64, n)
			if width > 0 {
				for i := range vs {
					vs[i] = rng.Uint64()
					if width < 64 {
						vs[i] &= (1 << uint(width)) - 1
					}
				}
			}
			packed := Pack(nil, vs, width)
			for _, off := range []int{0, 1, 3, 7} {
				src := packed
				if off > 0 {
					shifted := make([]byte, off+len(packed))
					copy(shifted[off:], packed)
					src = shifted[off:]
				}
				want, err := UnpackScalar(make([]uint64, n), src, n, width)
				if err != nil {
					t.Fatalf("w=%d n=%d off=%d: scalar: %v", width, n, off, err)
				}
				got, err := Unpack(make([]uint64, n), src, n, width)
				if err != nil {
					t.Fatalf("w=%d n=%d off=%d: kernel: %v", width, n, off, err)
				}
				base := int64(rng.Intn(2001) - 1000)
				signed := make([]int64, n)
				if err := UnpackInt64(signed, src, width, base); err != nil {
					t.Fatalf("w=%d n=%d off=%d: UnpackInt64: %v", width, n, off, err)
				}
				zz := make([]int64, n)
				if err := UnpackZigZagInt64(zz, src, width); err != nil {
					t.Fatalf("w=%d n=%d off=%d: UnpackZigZagInt64: %v", width, n, off, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("w=%d n=%d off=%d value %d: kernel %d != scalar %d",
							width, n, off, i, got[i], want[i])
					}
					if signed[i] != base+int64(want[i]) {
						t.Fatalf("w=%d n=%d off=%d value %d: UnpackInt64 %d != %d",
							width, n, off, i, signed[i], base+int64(want[i]))
					}
					if zz[i] != UnZigZag(want[i]) {
						t.Fatalf("w=%d n=%d off=%d value %d: UnpackZigZagInt64 %d != %d",
							width, n, off, i, zz[i], UnZigZag(want[i]))
					}
				}
			}
		}
	}
}

// TestUnpackScalarHook pins that the ScalarKernels escape hatch really
// does bypass the kernels (both paths must agree, and the hook must not
// change results — this is what the enc-level equivalence suite relies on).
func TestUnpackScalarHook(t *testing.T) {
	vs := []uint64{5, 0, 7, 3, 1, 6, 2, 4, 7, 7, 0}
	packed := Pack(nil, vs, 3)
	ScalarKernels = true
	hooked, err := Unpack(make([]uint64, len(vs)), packed, len(vs), 3)
	ScalarKernels = false
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Unpack(make([]uint64, len(vs)), packed, len(vs), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if hooked[i] != vs[i] || plain[i] != vs[i] {
			t.Fatalf("value %d: hooked %d plain %d want %d", i, hooked[i], plain[i], vs[i])
		}
	}
}

// TestPeekReadBitsAt pins the stateless bit-cursor primitives the float
// decoders are built on against the Reader: identical values at every bit
// position, correct ok=false near the end of the buffer, and Peek64's
// 9-byte guarantee (a true return always carries 64 valid bits).
func TestPeekReadBitsAt(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	w := NewWriter(nil)
	type field struct {
		v     uint64
		width int
	}
	var fields []field
	for i := 0; i < 300; i++ {
		width := rng.Intn(64) + 1
		v := rng.Uint64()
		if width < 64 {
			v &= (1 << uint(width)) - 1
		}
		fields = append(fields, field{v, width})
		w.WriteBits(v, width)
	}
	buf := w.Bytes()
	bitPos := 0
	for i, f := range fields {
		v, ok := ReadBitsAt(buf, bitPos, f.width)
		if !ok || v != f.v {
			t.Fatalf("field %d at bit %d: ReadBitsAt = (%x,%v), want %x", i, bitPos, v, ok, f.v)
		}
		if peek, ok := Peek64(buf, bitPos); ok {
			mask := ^uint64(0)
			if f.width < 64 {
				mask = (1 << uint(f.width)) - 1
			}
			if peek&mask != f.v {
				t.Fatalf("field %d at bit %d: Peek64 low bits %x, want %x", i, bitPos, peek&mask, f.v)
			}
		}
		bitPos += f.width
	}
	// Out-of-range reads must fail cleanly, never panic.
	if _, ok := ReadBitsAt(buf, len(buf)*8-3, 4); ok {
		t.Fatal("ReadBitsAt read past the end")
	}
	if _, ok := Peek64(buf, len(buf)*8-63); ok {
		t.Fatal("Peek64 claimed 64 bits near the end without its 9-byte margin")
	}
	if _, ok := ReadBitsAt(buf, len(buf)*8-8, 8); !ok {
		t.Fatal("ReadBitsAt rejected a valid final byte read")
	}
}

func BenchmarkPack(b *testing.B) {
	b.ReportAllocs()
	vs := make([]uint64, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range vs {
		vs[i] = uint64(rng.Intn(1 << 17))
	}
	buf := make([]byte, 0, PackedLen(len(vs), 17))
	b.SetBytes(int64(len(vs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Pack(buf[:0], vs, 17)
	}
}

func BenchmarkUnpack(b *testing.B) {
	b.ReportAllocs()
	vs := make([]uint64, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range vs {
		vs[i] = uint64(rng.Intn(1 << 17))
	}
	packed := Pack(nil, vs, 17)
	dst := make([]uint64, len(vs))
	b.SetBytes(int64(len(vs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(dst, packed, len(vs), 17); err != nil {
			b.Fatal(err)
		}
	}
}
