package bitutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWidthOf(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
		{1 << 63, 64}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := WidthOf(c.v); got != c.want {
			t.Errorf("WidthOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestMaxWidth(t *testing.T) {
	if got := MaxWidth(nil); got != 0 {
		t.Fatalf("MaxWidth(nil) = %d, want 0", got)
	}
	if got := MaxWidth([]uint64{0, 0}); got != 0 {
		t.Fatalf("MaxWidth(zeros) = %d, want 0", got)
	}
	if got := MaxWidth([]uint64{1, 7, 3}); got != 3 {
		t.Fatalf("MaxWidth = %d, want 3", got)
	}
}

func TestPackUnpackWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for width := 0; width <= 64; width++ {
		n := 100
		vs := make([]uint64, n)
		if width > 0 {
			for i := range vs {
				vs[i] = rng.Uint64()
				if width < 64 {
					vs[i] &= (1 << uint(width)) - 1
				}
			}
		}
		packed := Pack(nil, vs, width)
		if len(packed) != PackedLen(n, width) {
			t.Fatalf("width %d: packed len = %d, want %d", width, len(packed), PackedLen(n, width))
		}
		got, err := Unpack(make([]uint64, n), packed, n, width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("width %d: value %d = %d, want %d", width, i, got[i], vs[i])
			}
		}
	}
}

func TestPackAppends(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	out := Pack(prefix, []uint64{5, 6, 7}, 3)
	if out[0] != 0xAA || out[1] != 0xBB {
		t.Fatal("Pack clobbered prefix")
	}
	got, err := Unpack(make([]uint64, 3), out[2:], 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 || got[1] != 6 || got[2] != 7 {
		t.Fatalf("roundtrip after prefix = %v", got)
	}
}

func TestPackRejectsOversized(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic packing 8 into width 3")
		}
	}()
	Pack(nil, []uint64{8}, 3)
}

func TestUnpackShortInput(t *testing.T) {
	if _, err := Unpack(make([]uint64, 10), []byte{1}, 10, 8); err == nil {
		t.Fatal("expected error for short input")
	}
}

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(nil)
	w.WriteBit(true)
	w.WriteBits(0x3FF, 10)
	w.WriteBit(false)
	w.WriteBits(0xDEADBEEFCAFE, 48)
	w.WriteBits(^uint64(0), 64)

	r := NewReader(w.Bytes())
	if b, _ := r.ReadBit(); !b {
		t.Fatal("bit 0")
	}
	if v, _ := r.ReadBits(10); v != 0x3FF {
		t.Fatalf("10-bit = %x", v)
	}
	if b, _ := r.ReadBit(); b {
		t.Fatal("bit 12")
	}
	if v, _ := r.ReadBits(48); v != 0xDEADBEEFCAFE {
		t.Fatalf("48-bit = %x", v)
	}
	if v, _ := r.ReadBits(64); v != ^uint64(0) {
		t.Fatalf("64-bit = %x", v)
	}
	// 124 bits written, padded to 16 bytes: 4 padding bits remain readable,
	// a 5th must fail.
	if _, err := r.ReadBits(5); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

// Property: arbitrary (value, width) sequences survive a writer/reader trip.
func TestBitStreamProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		widths := make([]int, n)
		vals := make([]uint64, n)
		w := NewWriter(nil)
		for i := 0; i < n; i++ {
			widths[i] = rng.Intn(64) + 1
			vals[i] = rng.Uint64()
			if widths[i] < 64 {
				vals[i] &= (1 << uint(widths[i])) - 1
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < n; i++ {
			v, err := r.ReadBits(widths[i])
			if err != nil || v != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZigZag(t *testing.T) {
	cases := []struct {
		v int64
		u uint64
	}{
		{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4},
		{1 << 62, 1 << 63}, {-(1 << 62), 1<<63 - 1},
	}
	for _, c := range cases {
		if got := ZigZag(c.v); got != c.u {
			t.Errorf("ZigZag(%d) = %d, want %d", c.v, got, c.u)
		}
		if got := UnZigZag(c.u); got != c.v {
			t.Errorf("UnZigZag(%d) = %d, want %d", c.u, got, c.v)
		}
	}
}

func TestZigZagProperty(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPack(b *testing.B) {
	b.ReportAllocs()
	vs := make([]uint64, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range vs {
		vs[i] = uint64(rng.Intn(1 << 17))
	}
	buf := make([]byte, 0, PackedLen(len(vs), 17))
	b.SetBytes(int64(len(vs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Pack(buf[:0], vs, 17)
	}
}

func BenchmarkUnpack(b *testing.B) {
	b.ReportAllocs()
	vs := make([]uint64, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range vs {
		vs[i] = uint64(rng.Intn(1 << 17))
	}
	packed := Pack(nil, vs, 17)
	dst := make([]uint64, len(vs))
	b.SetBytes(int64(len(vs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(dst, packed, len(vs), 17); err != nil {
			b.Fatal(err)
		}
	}
}
