// Package loader implements the training-loader workload over datasets:
// deterministic global-shuffle epoch streaming with exact, resumable
// checkpoints — the paper's headline ML-training traffic served straight
// from the column store.
//
// An epoch's shuffle is planned from the manifest alone: the dataset's
// global row space is cut into fixed-size (member, row-range) shards
// using nothing but the per-member row counts the manifest already
// carries, then a seeded permutation orders the shards. Planning reads
// zero data bytes — no member file is opened, let alone read — so the
// plan for a billion-row dataset costs microseconds. Batches stream
// through the ordinary dataset scan engine (and therefore through the
// shared artifact cache, file pruning, and the resilient remote
// backends), with a window of upcoming shards decoding ahead of the
// emission cursor.
//
// Determinism is the contract that makes checkpoints exact: for a fixed
// (generation, seed, shard size, batch size), every epoch's batch
// sequence is byte-identical across runs, Go versions, and worker
// counts. A Checkpoint is therefore just a cursor — (epoch, shard
// position, batches emitted within the shard) — and Resume replays the
// remainder exactly. Pinning to a generation is what defends the
// contract against a moving dataset: open the dataset with
// dataset.OpenAt on a tag, and later Appends, Compacts, and Vacuums
// cannot disturb the loader (the tag retains the generation's files).
// One deliberate exception inherited from deletion compliance: Delete
// flips deletion bits inside member files in place, so a delete
// committed mid-training shrinks subsequent batches — compliance
// (removing a user's rows everywhere, snapshots included) outranks
// replay stability by design.
package loader

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"bullion/internal/core"
	"bullion/internal/dataset"
)

// DefaultShardRows is the shuffle granule when Options.ShardRows is 0:
// large enough that a shard amortizes its scan-engine startup, small
// enough that a dataset of a few million rows still shuffles well.
const DefaultShardRows = 8192

// Options configures a Loader.
type Options struct {
	// Columns is the projected column set (empty = all columns).
	Columns []string
	// ShardRows is the shuffle granule in rows: the dataset's global row
	// space is cut into shards of this size (the last shard of each
	// member is shorter), and the epoch permutation orders shards, not
	// rows. Smaller shards shuffle harder and checkpoint finer; larger
	// shards scan faster. 0 = DefaultShardRows.
	ShardRows int
	// Seed fixes the shuffle: same (generation, seed, shard/batch sizes)
	// = same batch sequence, forever. Each epoch derives its own
	// sub-seed, so epochs are distinct permutations.
	Seed int64
	// Epochs is how many passes over the dataset to stream (0 = 1).
	Epochs int
	// BatchRows is the rows per emitted batch (the core scanner's
	// default when 0). Batch boundaries within a shard are deterministic,
	// which is what lets a checkpoint count batches.
	BatchRows int
	// Workers is the decode parallelism per shard engine (0 =
	// GOMAXPROCS).
	Workers int
	// ShardAhead is how many shards past the emission cursor may decode
	// concurrently (0 = min(GOMAXPROCS, 4)). Higher values hide storage
	// latency at the cost of buffered batches.
	ShardAhead int
	// TargetRowsPerSec paces emission to a feed rate (0 = unpaced):
	// Next sleeps just enough that rows-emitted/elapsed approaches the
	// target — how a training job avoids racing ahead of its GPU budget,
	// and how a shared serving tier throttles one loader among many.
	TargetRowsPerSec float64
}

// Shard is one shuffle granule: rows [Lo, Hi) of the dataset's global
// row space (which member those rows live in is the scan engine's
// problem; the planner only needs the manifest's row counts).
type Shard struct {
	Lo, Hi uint64
}

// Checkpoint is an exact resume point. The identity fields (Generation,
// Seed, ShardRows, Epochs, BatchRows) pin the plan it indexes into;
// Resume rejects a checkpoint whose identity does not match the dataset
// handle it is resumed against.
type Checkpoint struct {
	Generation uint64 `json:"generation"`
	Seed       int64  `json:"seed"`
	ShardRows  int    `json:"shard_rows"`
	Epochs     int    `json:"epochs"`
	BatchRows  int    `json:"batch_rows"`
	// Epoch is the current epoch (0-based; == Epochs when the loader is
	// exhausted). Shard indexes into the epoch's permutation; Batch
	// counts batches already emitted from that shard.
	Epoch int `json:"epoch"`
	Shard int `json:"shard"`
	Batch int `json:"batch"`
}

// Stats snapshots a loader's progress.
type Stats struct {
	Generation  uint64
	Epoch       int
	EpochShards int
	// ShardsDone counts fully drained shards in the current epoch.
	ShardsDone int
	// RowsEmitted and BatchesEmitted are lifetime totals across epochs.
	RowsEmitted    uint64
	BatchesEmitted uint64
	// PlanTime is the cumulative shuffle-planning cost: the manifest
	// walk at New plus the per-epoch permutations. No data is read
	// during planning.
	PlanTime time.Duration
}

// Loader streams one dataset generation as shuffled epochs. A Loader
// must be used from a single goroutine (Next, Feed, Checkpoint, Stats,
// Close); Feed internally fans batches out to parallel consumers.
type Loader struct {
	ds     *dataset.Dataset
	opts   Options
	gen    uint64
	shards []Shard

	epoch        int
	perm         []int
	pos          int
	batchInShard int
	// startSkip holds a resumed checkpoint's already-emitted batch count
	// for the shard at pos; the shard's stream drops that many batches
	// before emitting. Consumed once.
	startSkip int

	streams map[int]*shardStream
	stop    chan struct{}
	failed  error
	closed  bool

	rows, batches uint64
	shardsDone    int
	planTime      time.Duration
	paceStart     time.Time
	pacedRows     uint64
}

// shardStream is one shard's in-flight scan: a goroutine draining a
// dataset scanner into a small buffer.
type shardStream struct {
	ch   chan *core.Batch
	done chan struct{}
	err  error // read only after ch closes
}

// New plans a loader over ds's current generation. Planning touches only
// the manifest — zero data reads. The handle should be pinned
// (dataset.OpenAt on a tag or generation) if commits may land while the
// loader runs; over a live handle, a commit that moves the generation
// fails the loader at the next shard boundary rather than silently
// changing the stream.
func New(ds *dataset.Dataset, opts Options) (*Loader, error) {
	start := time.Now()
	if opts.ShardRows <= 0 {
		opts.ShardRows = DefaultShardRows
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 1
	}
	if opts.ShardAhead <= 0 {
		opts.ShardAhead = runtime.GOMAXPROCS(0)
		if opts.ShardAhead > 4 {
			opts.ShardAhead = 4
		}
	}
	// Surface projection typos at plan time, not first batch.
	schema := ds.Schema()
	for _, c := range opts.Columns {
		if _, ok := schema.Lookup(c); !ok {
			return nil, fmt.Errorf("loader: no column %q", c)
		}
	}
	m := ds.Manifest()
	l := &Loader{
		ds:      ds,
		opts:    opts,
		gen:     m.Generation,
		shards:  planShards(m, opts.ShardRows),
		streams: map[int]*shardStream{},
		stop:    make(chan struct{}),
	}
	l.planTime = time.Since(start)
	return l, nil
}

// Resume reconstructs a loader from a checkpoint. The dataset handle
// must serve exactly the checkpoint's generation — reopen via
// dataset.OpenAt with the tag (or generation number) the training run
// pinned. The stream continues byte-identically to an uninterrupted run:
// the checkpointed shard is re-scanned and its already-emitted batches
// dropped (batch boundaries are deterministic), then emission proceeds.
func Resume(ds *dataset.Dataset, ck Checkpoint, opts Options) (*Loader, error) {
	if got := ds.Generation(); got != ck.Generation {
		return nil, fmt.Errorf("loader: checkpoint is for generation %d, dataset handle serves %d (reopen with dataset.OpenAt)",
			ck.Generation, got)
	}
	// The checkpoint's identity fields override the caller's: a resumed
	// loader must index the same plan.
	opts.Seed = ck.Seed
	opts.ShardRows = ck.ShardRows
	opts.Epochs = ck.Epochs
	opts.BatchRows = ck.BatchRows
	l, err := New(ds, opts)
	if err != nil {
		return nil, err
	}
	if ck.Epoch < 0 || ck.Epoch > ck.Epochs || ck.Shard < 0 || ck.Shard > len(l.shards) || ck.Batch < 0 {
		return nil, fmt.Errorf("loader: checkpoint cursor (epoch %d, shard %d, batch %d) out of range",
			ck.Epoch, ck.Shard, ck.Batch)
	}
	l.epoch = ck.Epoch
	l.pos = ck.Shard
	l.batchInShard = ck.Batch
	l.startSkip = ck.Batch
	return l, nil
}

// planShards cuts the manifest's global row space into ShardRows-sized
// shards. Shards never straddle a member boundary: each maps to one
// contiguous run of one member file, so a shard's scan opens exactly one
// member. Members the manifest proves fully deleted plan no shards.
func planShards(m *dataset.Manifest, shardRows int) []Shard {
	var shards []Shard
	var start uint64
	for _, e := range m.Files {
		if e.LiveRows > 0 {
			for lo := uint64(0); lo < e.Rows; lo += uint64(shardRows) {
				hi := lo + uint64(shardRows)
				if hi > e.Rows {
					hi = e.Rows
				}
				shards = append(shards, Shard{Lo: start + lo, Hi: start + hi})
			}
		}
		start += e.Rows
	}
	return shards
}

// NumShards returns the shards per epoch.
func (l *Loader) NumShards() int { return len(l.shards) }

// Generation returns the manifest generation the loader is pinned to.
func (l *Loader) Generation() uint64 { return l.gen }

// Next returns the next batch of the shuffled stream, or io.EOF when
// every epoch is drained. Errors are sticky.
func (l *Loader) Next() (*core.Batch, error) {
	if l.failed != nil {
		return nil, l.failed
	}
	if l.closed {
		return nil, errors.New("loader: closed")
	}
	for {
		if l.epoch >= l.opts.Epochs {
			return nil, io.EOF
		}
		if l.perm == nil {
			start := time.Now()
			l.perm = permutation(len(l.shards), l.opts.Seed, l.epoch)
			l.planTime += time.Since(start)
		}
		if l.pos >= len(l.perm) {
			l.epoch++
			l.perm = nil
			l.pos, l.batchInShard, l.shardsDone = 0, 0, 0
			continue
		}
		if err := l.ensureWindow(); err != nil {
			return nil, l.fail(err)
		}
		ss := l.streams[l.pos]
		b, ok := <-ss.ch
		if !ok {
			if ss.err != nil {
				return nil, l.fail(ss.err)
			}
			delete(l.streams, l.pos)
			l.pos++
			l.batchInShard = 0
			l.shardsDone++
			continue
		}
		l.batchInShard++
		l.batches++
		l.rows += uint64(b.NumRows())
		l.pace(b.NumRows())
		return b, nil
	}
}

// fail records a sticky error and stops the in-flight shard streams.
func (l *Loader) fail(err error) error {
	l.failed = err
	l.shutdown()
	return err
}

// ensureWindow keeps the next ShardAhead shards of the permutation
// streaming, verifying first that the dataset handle still serves the
// planned generation.
func (l *Loader) ensureWindow() error {
	if got := l.ds.Generation(); got != l.gen {
		return fmt.Errorf("loader: dataset moved to generation %d under a loader planned at %d (pin with dataset.OpenAt)",
			got, l.gen)
	}
	end := l.pos + l.opts.ShardAhead
	if end > len(l.perm) {
		end = len(l.perm)
	}
	for i := l.pos; i < end; i++ {
		if _, ok := l.streams[i]; ok {
			continue
		}
		skip := 0
		if i == l.pos && l.startSkip > 0 {
			skip = l.startSkip
			l.startSkip = 0
		}
		l.streams[i] = l.startShard(l.shards[l.perm[i]], skip)
	}
	return nil
}

// startShard scans one shard — a dataset-global row range, one member —
// into a buffered channel, dropping the first skip batches (resume).
func (l *Loader) startShard(sh Shard, skip int) *shardStream {
	ss := &shardStream{
		ch:   make(chan *core.Batch, 2),
		done: make(chan struct{}),
	}
	go func() {
		defer close(ss.done)
		defer close(ss.ch)
		sc, err := l.ds.Scan(dataset.ScanOptions{
			ScanOptions: core.ScanOptions{
				Columns:   l.opts.Columns,
				BatchRows: l.opts.BatchRows,
				Workers:   l.opts.Workers,
				Range:     &core.RowRange{Lo: sh.Lo, Hi: sh.Hi},
			},
			// One member per shard by construction; the loader's own
			// shard window is the cross-file parallelism.
			FileConcurrency: 1,
		})
		if err != nil {
			ss.err = err
			return
		}
		defer sc.Close()
		dropped := 0
		for {
			b, err := sc.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				ss.err = err
				return
			}
			if dropped < skip {
				dropped++
				continue
			}
			select {
			case ss.ch <- b:
			case <-l.stop:
				return
			}
		}
	}()
	return ss
}

// pace sleeps Next toward Options.TargetRowsPerSec. The clock starts at
// the first paced batch, so plan cost and resume gaps don't count
// against the budget.
func (l *Loader) pace(rows int) {
	if l.opts.TargetRowsPerSec <= 0 {
		return
	}
	if l.paceStart.IsZero() {
		l.paceStart = time.Now()
		l.pacedRows = 0
	}
	l.pacedRows += uint64(rows)
	want := time.Duration(float64(l.pacedRows) / l.opts.TargetRowsPerSec * float64(time.Second))
	if elapsed := time.Since(l.paceStart); elapsed < want {
		time.Sleep(want - elapsed)
	}
}

// Checkpoint returns the cursor to resume from: everything emitted
// before the call replays nowhere, everything after replays exactly.
// Call between Next calls (same goroutine).
func (l *Loader) Checkpoint() Checkpoint {
	return Checkpoint{
		Generation: l.gen,
		Seed:       l.opts.Seed,
		ShardRows:  l.opts.ShardRows,
		Epochs:     l.opts.Epochs,
		BatchRows:  l.opts.BatchRows,
		Epoch:      l.epoch,
		Shard:      l.pos,
		Batch:      l.batchInShard,
	}
}

// Stats snapshots progress (same goroutine as Next).
func (l *Loader) Stats() Stats {
	return Stats{
		Generation:     l.gen,
		Epoch:          l.epoch,
		EpochShards:    len(l.shards),
		ShardsDone:     l.shardsDone,
		RowsEmitted:    l.rows,
		BatchesEmitted: l.batches,
		PlanTime:       l.planTime,
	}
}

// Feed drains the loader into fn across consumers parallel workers —
// the M-consumer training fan-out. Batches are handed to exactly one
// consumer each, in stream order; fn runs concurrently, so it must be
// safe for its own consumer index. Feed returns when the stream is
// exhausted (nil), fn fails (that error, first one wins), or the loader
// fails. The loader is left positioned wherever the failure stopped it.
func (l *Loader) Feed(consumers int, fn func(consumer int, b *core.Batch) error) error {
	if consumers < 1 {
		consumers = 1
	}
	work := make(chan *core.Batch, consumers)
	abort := make(chan struct{})
	var abortOnce sync.Once
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		abortOnce.Do(func() { close(abort) })
	}
	wg.Add(consumers)
	for c := 0; c < consumers; c++ {
		go func(c int) {
			defer wg.Done()
			for b := range work {
				if err := fn(c, b); err != nil {
					setErr(err)
					return
				}
			}
		}(c)
	}
	for {
		b, err := l.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			setErr(err)
			break
		}
		select {
		case work <- b:
		case <-abort:
		}
		mu.Lock()
		stopped := firstErr != nil
		mu.Unlock()
		if stopped {
			break
		}
	}
	close(work)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// Close stops in-flight shard streams and releases their scanners. The
// dataset handle itself stays open (the caller owns it).
func (l *Loader) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	l.shutdown()
	return nil
}

func (l *Loader) shutdown() {
	select {
	case <-l.stop:
		return // already stopped (fail then Close, or double Close)
	default:
	}
	close(l.stop)
	for _, ss := range l.streams {
		// Unblock a stream parked on its full buffer, then wait for its
		// deferred scanner Close — no goroutine outlives the loader.
		go func(ch chan *core.Batch) {
			for range ch {
			}
		}(ss.ch)
		<-ss.done
	}
	l.streams = map[int]*shardStream{}
}

// permutation is a seeded Fisher-Yates shuffle of [0,n) driven by
// splitmix64 — implemented here rather than math/rand so the sequence is
// pinned by this package, not by a Go release's generator choice:
// checkpoints written by one binary must replay in the next.
func permutation(n int, seed int64, epoch int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	s := uint64(seed) ^ (0x9e3779b97f4a7c15 * (uint64(epoch) + 1))
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}
