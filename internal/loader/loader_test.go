package loader

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"bullion/internal/core"
	"bullion/internal/dataset"
)

func testSchema(t *testing.T) *core.Schema {
	t.Helper()
	schema, err := core.NewSchema(
		core.Field{Name: "key", Type: core.Type{Kind: core.Int64}},
		core.Field{Name: "val", Type: core.Type{Kind: core.Float64}},
		core.Field{Name: "tag", Type: core.Type{Kind: core.String}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

func keyBatch(t *testing.T, schema *core.Schema, base, n int) *core.Batch {
	t.Helper()
	keys := make(core.Int64Data, n)
	vals := make(core.Float64Data, n)
	tags := make(core.BytesData, n)
	for i := 0; i < n; i++ {
		keys[i] = int64(base + i)
		vals[i] = float64(base+i) / 2
		tags[i] = []byte(fmt.Sprintf("t%04d", (base+i)%7))
	}
	b, err := core.NewBatch(schema, []core.ColumnData{keys, vals, tags})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// buildDataset creates a dataset at dir with nFiles members of
// rowsPerFile rows each (keys partitioned by file, dataset-global order
// 0..nFiles*rowsPerFile).
func buildDataset(t *testing.T, dir string, nFiles, rowsPerFile int) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Create(dir, testSchema(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nFiles; i++ {
		if err := d.Append(keyBatch(t, d.Schema(), i*rowsPerFile, rowsPerFile)); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// batchSig fingerprints every byte of a batch — all columns, in order —
// so two sequences with equal sigs are byte-identical streams.
func batchSig(t *testing.T, b *core.Batch) uint64 {
	t.Helper()
	h := fnv.New64a()
	var buf [8]byte
	for _, col := range b.Columns {
		switch data := col.(type) {
		case core.Int64Data:
			for _, v := range data {
				binary.LittleEndian.PutUint64(buf[:], uint64(v))
				h.Write(buf[:])
			}
		case core.Float64Data:
			for _, v := range data {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
				h.Write(buf[:])
			}
		case core.BytesData:
			for _, v := range data {
				binary.LittleEndian.PutUint64(buf[:], uint64(len(v)))
				h.Write(buf[:])
				h.Write(v)
			}
		default:
			t.Fatalf("unhandled column type %T", col)
		}
	}
	return h.Sum64()
}

// drainSigs drains a loader, returning each batch's signature and the
// emitted keys.
func drainSigs(t *testing.T, l *Loader) ([]uint64, []int64) {
	t.Helper()
	var sigs []uint64
	var keys []int64
	for {
		b, err := l.Next()
		if err == io.EOF {
			return sigs, keys
		}
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, batchSig(t, b))
		keys = append(keys, b.Columns[0].(core.Int64Data)...)
	}
}

func checkCovers(t *testing.T, keys []int64, total int) {
	t.Helper()
	if len(keys) != total {
		t.Fatalf("emitted %d keys, want %d", len(keys), total)
	}
	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, k := range sorted {
		if k != int64(i) {
			t.Fatalf("sorted key[%d] = %d, want %d (duplicate or gap)", i, k, i)
		}
	}
}

func TestPermutationDeterministic(t *testing.T) {
	a := permutation(100, 7, 0)
	b := permutation(100, 7, 0)
	seen := make([]bool, 100)
	identity := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (n,seed,epoch) diverged at %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= 100 || seen[a[i]] {
			t.Fatalf("not a permutation: element %d at %d", a[i], i)
		}
		seen[a[i]] = true
		if a[i] != i {
			identity = false
		}
	}
	if identity {
		t.Fatal("permutation is the identity; shuffle is not shuffling")
	}
	diff := func(x, y []int) bool {
		for i := range x {
			if x[i] != y[i] {
				return true
			}
		}
		return false
	}
	if !diff(a, permutation(100, 8, 0)) {
		t.Fatal("different seeds produced the same permutation")
	}
	if !diff(a, permutation(100, 7, 1)) {
		t.Fatal("different epochs produced the same permutation")
	}
}

func TestLoaderCoversAllRowsShuffled(t *testing.T) {
	d := buildDataset(t, t.TempDir(), 3, 1000)
	defer d.Close()
	l, err := New(d, Options{ShardRows: 256, BatchRows: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// 3 members x ceil(1000/256)=4 shards.
	if got := l.NumShards(); got != 12 {
		t.Fatalf("NumShards = %d, want 12", got)
	}
	_, keys := drainSigs(t, l)
	checkCovers(t, keys, 3000)
	ordered := true
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			ordered = false
			break
		}
	}
	if ordered {
		t.Fatal("epoch emitted keys in dataset order; shuffle had no effect")
	}
	st := l.Stats()
	if st.RowsEmitted != 3000 || st.EpochShards != 12 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PlanTime <= 0 {
		t.Fatal("PlanTime not recorded")
	}
}

func TestLoaderDeterministicAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	d := buildDataset(t, dir, 3, 800)
	defer d.Close()
	opts := Options{ShardRows: 128, BatchRows: 100, Seed: 42, Epochs: 2}
	run := func() []uint64 {
		l, err := New(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		sigs, keys := drainSigs(t, l)
		if len(keys) != 2*2400 {
			t.Fatalf("2 epochs emitted %d keys, want %d", len(keys), 2*2400)
		}
		checkCovers(t, keys[:2400], 2400)
		checkCovers(t, keys[2400:], 2400)
		return sigs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("batch counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at batch %d", i)
		}
	}
	other, err := New(d, Options{ShardRows: 128, BatchRows: 100, Seed: 43, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	c, _ := drainSigs(t, other)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical batch stream")
	}
}

// TestLoaderResumeGolden is the acceptance scenario: a mid-epoch
// checkpoint taken against a tagged generation, resumed via
// dataset.OpenAt after an intervening Append and Vacuum, must replay the
// remaining batches byte-identically to an uninterrupted run.
func TestLoaderResumeGolden(t *testing.T) {
	dir := t.TempDir()
	d := buildDataset(t, dir, 3, 1000)
	if err := d.Tag("train-v1", 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	opts := Options{ShardRows: 200, BatchRows: 128, Seed: 99, Epochs: 2}

	// Reference: one uninterrupted run over the tagged snapshot.
	snap, err := dataset.OpenAt(dir, "train-v1", nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := drainSigs(t, ref)
	ref.Close()
	snap.Close()

	// Interrupted: drain a prefix that stops mid-shard, checkpoint, shut
	// everything down.
	snap, err = dataset.OpenAt(dir, "train-v1", nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	const prefix = 7 // 200-row shards at 128-row batches = 2 batches/shard: 7 stops mid-shard
	var got []uint64
	for i := 0; i < prefix; i++ {
		b, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, batchSig(t, b))
	}
	ck := l.Checkpoint()
	if ck.Batch == 0 {
		t.Fatalf("checkpoint %+v does not stop mid-shard; the test must exercise batch skipping", ck)
	}
	l.Close()
	snap.Close()

	// Intervening mutations on the live dataset: an append moves the
	// generation, a vacuum reclaims everything untagged.
	live, err := dataset.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Append(keyBatch(t, live.Schema(), 3000, 500)); err != nil {
		t.Fatal(err)
	}
	rep, err := live.VacuumWithReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RetainedGenerations) == 0 {
		t.Fatalf("vacuum retained nothing; the tagged generation should be retained: %+v", rep)
	}
	live.Close()

	// Resume from the checkpoint against a fresh OpenAt handle and drain
	// the remainder.
	snap, err = dataset.OpenAt(dir, "train-v1", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if snap.Generation() != ck.Generation {
		t.Fatalf("OpenAt generation %d, checkpoint %d", snap.Generation(), ck.Generation)
	}
	l2, err := Resume(snap, ck, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rest, _ := drainSigs(t, l2)
	got = append(got, rest...)

	if len(got) != len(want) {
		t.Fatalf("resumed run emitted %d batches, reference %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed stream diverged from reference at batch %d (prefix was %d)", i, prefix)
		}
	}
}

func TestResumeRejectsWrongGeneration(t *testing.T) {
	d := buildDataset(t, t.TempDir(), 2, 500)
	defer d.Close()
	l, err := New(d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ck := l.Checkpoint()
	l.Close()
	if err := d.Append(keyBatch(t, d.Schema(), 1000, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(d, ck, Options{}); err == nil || !strings.Contains(err.Error(), "generation") {
		t.Fatalf("Resume against a moved dataset = %v, want generation mismatch", err)
	}
}

func TestLoaderFailsWhenGenerationMoves(t *testing.T) {
	d := buildDataset(t, t.TempDir(), 2, 1000)
	defer d.Close()
	l, err := New(d, Options{ShardRows: 250, BatchRows: 100, Seed: 5, ShardAhead: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Next(); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(keyBatch(t, d.Schema(), 2000, 100)); err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 100; i++ {
		if _, lastErr = l.Next(); lastErr != nil {
			break
		}
	}
	if lastErr == nil || !strings.Contains(lastErr.Error(), "moved to generation") {
		t.Fatalf("loader over a moved live dataset = %v, want generation-moved error", lastErr)
	}
	if _, err := l.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("error not sticky: %v", err)
	}
}

func TestLoaderFeed(t *testing.T) {
	d := buildDataset(t, t.TempDir(), 3, 600)
	defer d.Close()
	l, err := New(d, Options{ShardRows: 100, BatchRows: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var mu sync.Mutex
	var keys []int64
	perConsumer := make([]int, 4)
	err = l.Feed(4, func(c int, b *core.Batch) error {
		mu.Lock()
		defer mu.Unlock()
		keys = append(keys, b.Columns[0].(core.Int64Data)...)
		perConsumer[c]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	checkCovers(t, keys, 1800)
	busy := 0
	for _, n := range perConsumer {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d of 4 consumers saw batches: %v", busy, perConsumer)
	}

	l2, err := New(d, Options{ShardRows: 100, BatchRows: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	boom := errors.New("consumer failed")
	if err := l2.Feed(2, func(c int, b *core.Batch) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Feed with failing consumer = %v, want %v", err, boom)
	}
}

func TestLoaderCheckpointAtEOF(t *testing.T) {
	d := buildDataset(t, t.TempDir(), 1, 300)
	defer d.Close()
	l, err := New(d, Options{ShardRows: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	_, keys := drainSigs(t, l)
	checkCovers(t, keys, 300)
	ck := l.Checkpoint()
	if ck.Epoch != 1 {
		t.Fatalf("EOF checkpoint epoch = %d, want 1 (== Epochs)", ck.Epoch)
	}
	l2, err := Resume(d, ck, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := l2.Next(); err != io.EOF {
		t.Fatalf("resumed exhausted loader Next = %v, want io.EOF", err)
	}
}

func TestLoaderPlanReadsNoData(t *testing.T) {
	dir := t.TempDir()
	buildDataset(t, dir, 4, 1000).Close()
	var opens int
	d, err := dataset.Open(dir, &dataset.Options{
		WrapReader: func(name string, r io.ReaderAt, size int64) io.ReaderAt {
			opens++
			return r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	l, err := New(d, Options{ShardRows: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if opens != 0 {
		t.Fatalf("planning opened %d member files; the shuffle plan must come from the manifest alone", opens)
	}
	if _, err := l.Next(); err != nil {
		t.Fatal(err)
	}
	if opens == 0 {
		t.Fatal("streaming opened no members; the counter is not wired")
	}
}

func TestLoaderPaced(t *testing.T) {
	d := buildDataset(t, t.TempDir(), 1, 500)
	defer d.Close()
	l, err := New(d, Options{ShardRows: 100, BatchRows: 100, Seed: 1, TargetRowsPerSec: 10000})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	start := time.Now()
	_, keys := drainSigs(t, l)
	elapsed := time.Since(start)
	checkCovers(t, keys, 500)
	// 500 rows at 10k rows/s is 50ms; allow generous scheduling slack
	// downward but catch "pacing never slept".
	if elapsed < 25*time.Millisecond {
		t.Fatalf("paced epoch took %v, want >= 25ms", elapsed)
	}
}
