package merkle

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func genGroupPages(rng *rand.Rand, groups, pages, pageSize int) [][][]byte {
	out := make([][][]byte, groups)
	for g := range out {
		out[g] = make([][]byte, pages)
		for p := range out[g] {
			b := make([]byte, pageSize)
			rng.Read(b)
			out[g][p] = b
		}
	}
	return out
}

func TestBuildAndVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gp := genGroupPages(rng, 4, 3, 256)
	tree := Build(gp)
	for g := range gp {
		for p := range gp[g] {
			if err := tree.VerifyPage(g, p, gp[g][p]); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Corruption detection.
	gp[2][1][0] ^= 0xFF
	if err := tree.VerifyPage(2, 1, gp[2][1]); err == nil {
		t.Fatal("corrupted page verified")
	}
}

func TestUpdatePropagatesToRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gp := genGroupPages(rng, 3, 4, 128)
	tree := Build(gp)
	oldRoot := tree.Root()
	oldGroup, _ := tree.Group(1)
	otherGroup, _ := tree.Group(2)

	newPage := make([]byte, 128)
	rng.Read(newPage)
	if err := tree.Update(1, 2, newPage); err != nil {
		t.Fatal(err)
	}
	if tree.Root() == oldRoot {
		t.Fatal("root unchanged after page update")
	}
	if g, _ := tree.Group(1); g == oldGroup {
		t.Fatal("group hash unchanged after page update")
	}
	if g, _ := tree.Group(2); g != otherGroup {
		t.Fatal("unrelated group hash changed")
	}
	if err := tree.VerifyPage(1, 2, newPage); err != nil {
		t.Fatal(err)
	}
}

// Property: incrementally updating page-by-page converges to the same root
// as rebuilding from scratch — the core Figure 2 equivalence.
func TestIncrementalEqualsRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		groups := rng.Intn(4) + 1
		pages := rng.Intn(5) + 1
		gp := genGroupPages(rng, groups, pages, 64)
		tree := Build(gp)
		// Mutate a few random pages both in the data and via Update.
		for k := 0; k < 3; k++ {
			g := rng.Intn(groups)
			p := rng.Intn(pages)
			b := make([]byte, 64)
			rng.Read(b)
			gp[g][p] = b
			if err := tree.Update(g, p, b); err != nil {
				return false
			}
		}
		return tree.Root() == Build(gp).Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFromHashesMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gp := genGroupPages(rng, 5, 2, 512)
	tree := Build(gp)
	restored := FromHashes(tree.Leaves())
	if restored.Root() != tree.Root() {
		t.Fatal("restored tree root differs")
	}
}

// The fig2 claim in cost terms: updating one page hashes far fewer bytes
// than monolithic re-checksumming.
func TestIncrementalCostAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const pageSize = 4096
	gp := genGroupPages(rng, 16, 16, pageSize)
	tree := Build(gp)

	tree.ResetCounter()
	newPage := make([]byte, pageSize)
	rng.Read(newPage)
	if err := tree.Update(3, 7, newPage); err != nil {
		t.Fatal(err)
	}
	incremental := tree.HashedBytes()

	_, monolithic := MonolithicChecksum(gp)
	if incremental*10 >= monolithic {
		t.Fatalf("incremental update hashed %d bytes, monolithic %d — want >10x gap",
			incremental, monolithic)
	}
	t.Logf("fig2: incremental %d bytes hashed vs monolithic %d (%.0fx)",
		incremental, monolithic, float64(monolithic)/float64(incremental))
}

func TestBoundsErrors(t *testing.T) {
	tree := Build([][][]byte{{{1, 2}, {3}}})
	if _, err := tree.Group(1); err == nil {
		t.Fatal("out-of-range group accepted")
	}
	if _, err := tree.Page(0, 2); err == nil {
		t.Fatal("out-of-range page accepted")
	}
	if err := tree.Update(0, 5, nil); err == nil {
		t.Fatal("out-of-range update accepted")
	}
	if err := tree.Update(-1, 0, nil); err == nil {
		t.Fatal("negative group accepted")
	}
}
