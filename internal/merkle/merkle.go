// Package merkle implements Bullion's hierarchical checksum tree (paper
// §2.1, Figure 2): every page carries a hash, page hashes roll up into
// row-group hashes, and row-group hashes into the file root. An in-place
// page update recomputes only the path from that leaf to the root instead
// of re-checksumming the whole file, which is what makes compliant
// deletion cheap to verify.
package merkle

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Hash is a 64-bit node checksum. FNV-1a keeps the implementation stdlib-
// only; the tree structure, not the hash function, is the contribution.
type Hash uint64

// HashPage hashes raw page bytes (a leaf of the tree).
func HashPage(data []byte) Hash {
	h := fnv.New64a()
	h.Write(data)
	return Hash(h.Sum64())
}

// combine hashes an ordered child list into the parent hash.
func combine(children []Hash) Hash {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range children {
		binary.LittleEndian.PutUint64(buf[:], uint64(c))
		h.Write(buf[:])
	}
	return Hash(h.Sum64())
}

// Tree is a two-level Merkle tree mirroring the file layout:
// pages → row groups → root.
type Tree struct {
	pages     [][]Hash // [group][page]
	groups    []Hash
	root      Hash
	hashedOps int64 // bytes of hash input processed, for the fig2 experiment
}

// Build constructs the tree from per-group page payloads.
func Build(groupPages [][][]byte) *Tree {
	t := &Tree{pages: make([][]Hash, len(groupPages)), groups: make([]Hash, len(groupPages))}
	for g, pages := range groupPages {
		t.pages[g] = make([]Hash, len(pages))
		for p, data := range pages {
			t.pages[g][p] = HashPage(data)
			t.hashedOps += int64(len(data))
		}
		t.groups[g] = combine(t.pages[g])
		t.hashedOps += int64(8 * len(pages))
	}
	t.root = combine(t.groups)
	t.hashedOps += int64(8 * len(t.groups))
	return t
}

// FromHashes reconstructs a tree from persisted leaf hashes (the footer
// stores them; no page data needs to be read).
func FromHashes(pageHashes [][]Hash) *Tree {
	t := &Tree{pages: make([][]Hash, len(pageHashes)), groups: make([]Hash, len(pageHashes))}
	for g, hs := range pageHashes {
		t.pages[g] = append([]Hash(nil), hs...)
		t.groups[g] = combine(t.pages[g])
		t.hashedOps += int64(8 * len(hs))
	}
	t.root = combine(t.groups)
	t.hashedOps += int64(8 * len(t.groups))
	return t
}

// Root returns the file-level checksum.
func (t *Tree) Root() Hash { return t.root }

// Group returns a row-group checksum.
func (t *Tree) Group(g int) (Hash, error) {
	if g < 0 || g >= len(t.groups) {
		return 0, fmt.Errorf("merkle: group %d out of range [0,%d)", g, len(t.groups))
	}
	return t.groups[g], nil
}

// Page returns a page checksum.
func (t *Tree) Page(g, p int) (Hash, error) {
	if g < 0 || g >= len(t.pages) {
		return 0, fmt.Errorf("merkle: group %d out of range [0,%d)", g, len(t.pages))
	}
	if p < 0 || p >= len(t.pages[g]) {
		return 0, fmt.Errorf("merkle: page %d out of range [0,%d) in group %d", p, len(t.pages[g]), g)
	}
	return t.pages[g][p], nil
}

// Leaves returns the page-hash matrix for persisting in the footer.
func (t *Tree) Leaves() [][]Hash { return t.pages }

// Update replaces one page's contents and propagates new hashes up the
// path to the root — the red arrows of Figure 2. Only the updated page is
// re-hashed; siblings contribute their stored hashes.
func (t *Tree) Update(g, p int, data []byte) error {
	if _, err := t.Page(g, p); err != nil {
		return err
	}
	t.pages[g][p] = HashPage(data)
	t.hashedOps += int64(len(data))
	t.groups[g] = combine(t.pages[g])
	t.hashedOps += int64(8 * len(t.pages[g]))
	t.root = combine(t.groups)
	t.hashedOps += int64(8 * len(t.groups))
	return nil
}

// VerifyPage re-hashes data and compares it with the stored leaf.
func (t *Tree) VerifyPage(g, p int, data []byte) error {
	want, err := t.Page(g, p)
	if err != nil {
		return err
	}
	if got := HashPage(data); got != want {
		return fmt.Errorf("merkle: page (%d,%d) checksum mismatch: %016x != %016x", g, p, got, want)
	}
	return nil
}

// HashedBytes reports the cumulative hash-input bytes processed by this
// tree — the cost metric the fig2 experiment compares against monolithic
// whole-file re-checksumming.
func (t *Tree) HashedBytes() int64 { return t.hashedOps }

// ResetCounter zeroes the cost counter.
func (t *Tree) ResetCounter() { t.hashedOps = 0 }

// MonolithicChecksum is the baseline: one flat hash over every page of the
// file, re-run in full after any change (what Parquet-era formats do).
func MonolithicChecksum(groupPages [][][]byte) (Hash, int64) {
	h := fnv.New64a()
	var n int64
	for _, pages := range groupPages {
		for _, data := range pages {
			h.Write(data)
			n += int64(len(data))
		}
	}
	return Hash(h.Sum64()), n
}
