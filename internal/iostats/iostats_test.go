package iostats

import (
	"bytes"
	"io"
	"testing"
)

type memFile struct{ data []byte }

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memFile) WriteAt(p []byte, off int64) (int, error) {
	need := int(off) + len(p)
	if need > len(m.data) {
		grown := make([]byte, need)
		copy(grown, m.data)
		m.data = grown
	}
	return copy(m.data[off:], p), nil
}

func TestReaderCounting(t *testing.T) {
	var c Counters
	c.Reset()
	f := &memFile{data: make([]byte, 1000)}
	r := &ReaderAt{R: f, C: &c}

	buf := make([]byte, 100)
	r.ReadAt(buf, 0)   // sequential start
	r.ReadAt(buf, 100) // contiguous: no seek
	r.ReadAt(buf, 500) // seek

	s := c.Snapshot()
	if s.ReadOps != 3 {
		t.Fatalf("ReadOps = %d, want 3", s.ReadOps)
	}
	if s.ReadBytes != 300 {
		t.Fatalf("ReadBytes = %d, want 300", s.ReadBytes)
	}
	if s.Seeks != 1 {
		t.Fatalf("Seeks = %d, want 1", s.Seeks)
	}
}

func TestWriterCounting(t *testing.T) {
	var c Counters
	c.Reset()
	f := &memFile{}
	w := &WriterAt{W: f, C: &c}
	w.WriteAt([]byte("hello"), 0)
	w.WriteAt([]byte("world"), 5)  // contiguous
	w.WriteAt([]byte("jump"), 100) // seek
	s := c.Snapshot()
	if s.WriteOps != 3 || s.WriteBytes != 14 || s.Seeks != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if string(f.data[:10]) != "helloworld" {
		t.Fatalf("data = %q", f.data[:10])
	}
}

func TestSequentialWriter(t *testing.T) {
	var c Counters
	c.Reset()
	var buf bytes.Buffer
	w := &Writer{W: &buf, C: &c}
	w.Write([]byte("abc"))
	w.Write([]byte("de"))
	s := c.Snapshot()
	if s.WriteOps != 2 || s.WriteBytes != 5 {
		t.Fatalf("snapshot = %+v", s)
	}
	if buf.String() != "abcde" {
		t.Fatalf("buffer = %q", buf.String())
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Counters
	c.Reset()
	f := &memFile{data: make([]byte, 100)}
	r := &ReaderAt{R: f, C: &c}
	buf := make([]byte, 10)
	r.ReadAt(buf, 0)
	before := c.Snapshot()
	r.ReadAt(buf, 50)
	delta := c.Snapshot().Sub(before)
	if delta.ReadOps != 1 || delta.ReadBytes != 10 {
		t.Fatalf("delta = %+v", delta)
	}
}
