// Package iostats wraps readers and writers with byte/op accounting so
// experiments report physical I/O (bytes touched, operations issued), not
// just wall-clock time. The deletion experiment (§2.1's "up to 50× less
// I/O") and the multimodal experiment (§2.5's sequential-read claim) are
// measured through these counters.
package iostats

import (
	"io"
	"sync/atomic"
)

// Counters accumulates I/O statistics. Safe for concurrent use.
type Counters struct {
	ReadOps      atomic.Int64
	ReadBytes    atomic.Int64
	WriteOps     atomic.Int64
	WriteBytes   atomic.Int64
	Seeks        atomic.Int64 // non-contiguous ReadAt/WriteAt transitions
	lastReadEnd  atomic.Int64
	lastWriteEnd atomic.Int64
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.ReadOps.Store(0)
	c.ReadBytes.Store(0)
	c.WriteOps.Store(0)
	c.WriteBytes.Store(0)
	c.Seeks.Store(0)
	c.lastReadEnd.Store(-1)
	c.lastWriteEnd.Store(-1)
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	ReadOps, ReadBytes   int64
	WriteOps, WriteBytes int64
	Seeks                int64
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		ReadOps:    c.ReadOps.Load(),
		ReadBytes:  c.ReadBytes.Load(),
		WriteOps:   c.WriteOps.Load(),
		WriteBytes: c.WriteBytes.Load(),
		Seeks:      c.Seeks.Load(),
	}
}

// Sub returns s - o, the I/O performed between two snapshots.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		ReadOps:    s.ReadOps - o.ReadOps,
		ReadBytes:  s.ReadBytes - o.ReadBytes,
		WriteOps:   s.WriteOps - o.WriteOps,
		WriteBytes: s.WriteBytes - o.WriteBytes,
		Seeks:      s.Seeks - o.Seeks,
	}
}

// ReaderAt counts ReadAt traffic against Counters.
type ReaderAt struct {
	R io.ReaderAt
	C *Counters
}

// ReadAt implements io.ReaderAt.
func (r *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := r.R.ReadAt(p, off)
	r.C.ReadOps.Add(1)
	r.C.ReadBytes.Add(int64(n))
	if prev := r.C.lastReadEnd.Swap(off + int64(n)); prev >= 0 && prev != off {
		r.C.Seeks.Add(1)
	}
	return n, err
}

// WriterAt counts WriteAt traffic against Counters.
type WriterAt struct {
	W io.WriterAt
	C *Counters
}

// WriteAt implements io.WriterAt.
func (w *WriterAt) WriteAt(p []byte, off int64) (int, error) {
	n, err := w.W.WriteAt(p, off)
	w.C.WriteOps.Add(1)
	w.C.WriteBytes.Add(int64(n))
	if prev := w.C.lastWriteEnd.Swap(off + int64(n)); prev >= 0 && prev != off {
		w.C.Seeks.Add(1)
	}
	return n, err
}

// Writer counts sequential Write traffic against Counters.
type Writer struct {
	W io.Writer
	C *Counters
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	n, err := w.W.Write(p)
	w.C.WriteOps.Add(1)
	w.C.WriteBytes.Add(int64(n))
	return n, err
}
