// Package experiments reproduces every table and figure in the paper's
// evaluation (see DESIGN.md's per-experiment index). Each runner prints
// the same rows/series the paper reports; cmd/experiments exposes them on
// the command line and the repository's benchmarks exercise the same code
// paths under testing.B.
//
// Absolute numbers will differ from the paper (laptop vs ByteDance's
// testbed; flate vs zstd; Go vs C++), but the shapes — who wins, by
// roughly what factor, where the crossovers fall — are the reproduction
// target. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"bullion/internal/core"
	"bullion/internal/enc"
	"bullion/internal/iostats"
	"bullion/internal/legacy"
	"bullion/internal/mediastore"
	"bullion/internal/merkle"
	"bullion/internal/multimodal"
	"bullion/internal/quant"
	"bullion/internal/sparse"
	"bullion/internal/workload"
)

// memFile is an in-memory file for experiment I/O.
type memFile struct{ data []byte }

// NewMemFile returns an empty in-memory file.
func newMemFile() *memFile { return &memFile{} }

func (m *memFile) Write(p []byte) (int, error) {
	m.data = append(m.data, p...)
	return len(p), nil
}

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memFile) WriteAt(p []byte, off int64) (int, error) {
	if int(off)+len(p) > len(m.data) {
		return 0, fmt.Errorf("memFile: WriteAt beyond end")
	}
	return copy(m.data[off:], p), nil
}

func (m *memFile) Size() int64 { return int64(len(m.data)) }

// Fig1 prints the top-10 ad-table size census (observational: reproduces
// the published distribution's shape; ByteDance's absolute bytes are not
// reproducible outside their fleet).
func Fig1(w io.Writer) error {
	fmt.Fprintln(w, "Figure 1: Top 10 Ad tables in CN region (synthetic census, paper-shaped)")
	fmt.Fprintln(w, "table  size_pb  bar")
	for _, t := range workload.Figure1Census() {
		bar := ""
		for i := 0; i < int(t.SizePB/2); i++ {
			bar += "#"
		}
		fmt.Fprintf(w, "%-6s %7.0f  %s\n", t.Name, t.SizePB, bar)
	}
	return nil
}

// Fig2 compares checksum-maintenance cost after a single page update:
// Merkle path recompute vs monolithic whole-file re-hash (Figure 2).
func Fig2(w io.Writer) error {
	fmt.Fprintln(w, "Figure 2: checksum maintenance after one page update")
	fmt.Fprintln(w, "groups pages/grp page_kb   merkle_bytes monolithic_bytes  reduction")
	rng := rand.New(rand.NewSource(7))
	for _, geo := range []struct{ groups, pages, pageKB int }{
		{4, 8, 64}, {16, 16, 64}, {16, 16, 256}, {64, 32, 256},
	} {
		gp := make([][][]byte, geo.groups)
		for g := range gp {
			gp[g] = make([][]byte, geo.pages)
			for p := range gp[g] {
				b := make([]byte, geo.pageKB<<10)
				rng.Read(b)
				gp[g][p] = b
			}
		}
		tree := merkle.Build(gp)
		tree.ResetCounter()
		newPage := make([]byte, geo.pageKB<<10)
		rng.Read(newPage)
		if err := tree.Update(geo.groups/2, geo.pages/2, newPage); err != nil {
			return err
		}
		incremental := tree.HashedBytes()
		_, monolithic := merkle.MonolithicChecksum(gp)
		fmt.Fprintf(w, "%6d %9d %7d %14d %16d %9.0fx\n",
			geo.groups, geo.pages, geo.pageKB, incremental, monolithic,
			float64(monolithic)/float64(incremental))
	}
	return nil
}

// Tab1 prints the generated ads schema's type histogram next to the
// paper's Table 1.
func Tab1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: column-type breakdown of the ads table")
	fmt.Fprintf(w, "%-38s %8s\n", "column type", "# columns")
	for _, r := range workload.Table1 {
		fmt.Fprintf(w, "%-38s %8d\n", r.TypeName, r.Count)
	}
	fmt.Fprintf(w, "%-38s %8d\n", "total (logical)", workload.Table1Total())
	schema, err := workload.AdsSchema(1, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ngenerated Bullion schema: %d leaf columns after Alpha-style struct\n", len(schema.Fields))
	fmt.Fprintln(w, "flattening; leaf histogram:")
	for _, r := range workload.SchemaBreakdown(schema) {
		fmt.Fprintf(w, "%-38s %8d\n", r.TypeName, r.Count)
	}
	return nil
}

// Fig4 measures the §2.2 sliding-window delta encoding against the
// general-purpose alternatives on clk_seq_cids-style data (Figures 3-4).
func Fig4(w io.Writer) error {
	fmt.Fprintln(w, "Figure 4 (and §2.2 claim): long-sequence sparse feature encoding")
	rng := rand.New(rand.NewSource(11))
	vectors := workload.SlidingWindows(rng, 4096, 256, 0.4)
	plainSize := 0
	for _, v := range vectors {
		plainSize += 8 * len(v)
	}

	encOpts := enc.DefaultOptions()
	flat := make([]int64, 0, plainSize/8)
	for _, v := range vectors {
		flat = append(flat, v...)
	}

	type row struct {
		name    string
		size    int
		encTime time.Duration
		decTime time.Duration
	}
	var rows []row

	// Bullion sparse delta.
	start := time.Now()
	sparseBytes, err := sparse.EncodeColumn(vectors, sparse.DefaultOptions())
	if err != nil {
		return err
	}
	encT := time.Since(start)
	start = time.Now()
	if _, err := sparse.DecodeColumn(sparseBytes); err != nil {
		return err
	}
	rows = append(rows, row{"bullion sparse delta", len(sparseBytes), encT, time.Since(start)})

	for _, alt := range []struct {
		name string
		id   enc.SchemeID
	}{
		{"plain", enc.Plain},
		{"chunked (flate)", enc.Chunked},
		{"dict", enc.Dict},
		{"fastbp128", enc.FastBP128},
	} {
		start = time.Now()
		encoded, err := enc.EncodeIntsWith(nil, alt.id, flat, encOpts)
		if err != nil {
			return err
		}
		encT := time.Since(start)
		start = time.Now()
		if _, err := enc.DecodeInts(encoded, len(flat)); err != nil {
			return err
		}
		// Alternatives also need the per-vector length stream; sliding
		// windows are fixed-width here so charge a token 1 byte/vector.
		rows = append(rows, row{alt.name + " (values only)", len(encoded) + len(vectors), encT, time.Since(start)})
	}

	fmt.Fprintf(w, "%d vectors x 256 int64 = %d raw bytes\n\n", len(vectors), plainSize)
	fmt.Fprintf(w, "%-26s %12s %9s %10s %10s\n", "encoding", "bytes", "vs plain", "encode", "decode")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %12d %8.1f%% %10s %10s\n",
			r.name, r.size, 100*float64(r.size)/float64(plainSize), r.encTime.Round(time.Millisecond), r.decTime.Round(time.Millisecond))
	}
	st := sparse.Analyze(vectors, sparse.DefaultOptions())
	fmt.Fprintf(w, "\nsparse codec: %d base + %d delta vectors; %d of %d values stored (%.1f%%)\n",
		st.BaseVectors, st.DeltaVectors, st.ValuesStored, st.ValuesTotal,
		100*float64(st.ValuesStored)/float64(st.ValuesTotal))
	return nil
}

// Fig5 measures metadata parsing for wide-table projection: time to open a
// file and locate one column, Bullion vs the Parquet-like baseline, as
// the column count grows (Figure 5; paper: Parquet ~52 ms at 10k columns
// and linear, Bullion ~1.2 ms and flat).
func Fig5(w io.Writer, featureCounts []int) error {
	if len(featureCounts) == 0 {
		featureCounts = []int{1000, 5000, 10000, 20000}
	}
	fmt.Fprintln(w, "Figure 5: metadata parsing overhead in feature projection")
	fmt.Fprintf(w, "%-10s %16s %16s %8s\n", "#features", "legacy(ms)", "bullion(ms)", "ratio")
	const iters = 20
	for _, n := range featureCounts {
		legacyFile, bullionFile, err := buildWideFiles(n)
		if err != nil {
			return err
		}
		target := fmt.Sprintf("feat_%06d", n/2)

		start := time.Now()
		for i := 0; i < iters; i++ {
			lf, err := legacy.Open(legacyFile, legacyFile.Size())
			if err != nil {
				return err
			}
			if _, ok := lf.LookupColumn(target); !ok {
				return fmt.Errorf("legacy lookup failed")
			}
		}
		legacyMS := float64(time.Since(start).Microseconds()) / 1000 / iters

		start = time.Now()
		for i := 0; i < iters; i++ {
			bf, err := core.Open(bullionFile, bullionFile.Size())
			if err != nil {
				return err
			}
			if _, ok := bf.LookupColumn(target); !ok {
				return fmt.Errorf("bullion lookup failed")
			}
		}
		bullionMS := float64(time.Since(start).Microseconds()) / 1000 / iters

		fmt.Fprintf(w, "%-10d %16.3f %16.3f %7.0fx\n", n, legacyMS, bullionMS, legacyMS/bullionMS)
	}
	return nil
}

// buildWideFiles writes matching n-feature files in both formats with a
// single tiny row group (the metadata, not the data, is the subject).
func buildWideFiles(n int) (*memFile, *memFile, error) {
	const rows = 8
	// Legacy.
	lSchema := make([]legacy.SchemaElement, n)
	lCols := make([]any, n)
	vals := make([]int64, rows)
	for r := range vals {
		vals[r] = int64(r)
	}
	for i := 0; i < n; i++ {
		lSchema[i] = legacy.SchemaElement{Name: fmt.Sprintf("feat_%06d", i), Type: legacy.TypeInt64}
		lCols[i] = vals
	}
	lf := newMemFile()
	if err := legacy.NewWriter(lSchema).WriteFile(lf, lCols, rows); err != nil {
		return nil, nil, err
	}

	// Bullion.
	bFields := make([]core.Field, n)
	bCols := make([]core.ColumnData, n)
	for i := 0; i < n; i++ {
		bFields[i] = core.Field{Name: fmt.Sprintf("feat_%06d", i), Type: core.Type{Kind: core.Int64}}
		bCols[i] = core.Int64Data(vals)
	}
	schema, err := core.NewSchema(bFields...)
	if err != nil {
		return nil, nil, err
	}
	bf := newMemFile()
	opts := core.DefaultOptions()
	opts.Compliance = core.Level0 // match the legacy file: no slack pages
	bw, err := core.NewWriter(bf, schema, opts)
	if err != nil {
		return nil, nil, err
	}
	batch, err := core.NewBatch(schema, bCols)
	if err != nil {
		return nil, nil, err
	}
	if err := bw.Write(batch); err != nil {
		return nil, nil, err
	}
	if err := bw.Close(); err != nil {
		return nil, nil, err
	}
	return lf, bf, nil
}

// Fig6 measures storage quantization: footprint and precision per Figure 6
// format on normalized embeddings.
func Fig6(w io.Writer) error {
	fmt.Fprintln(w, "Figure 6 / §2.4: storage quantization of embedding features")
	rng := rand.New(rand.NewSource(13))
	embs := workload.Embeddings(rng, 4096, 64)
	flat := make([]float32, 0, 4096*64)
	for _, e := range embs {
		flat = append(flat, e...)
	}
	rawFP32 := 4 * len(flat)
	encOpts := enc.DefaultOptions()

	fmt.Fprintf(w, "%d embeddings x 64 dims; FP32 raw = %d bytes\n\n", len(embs), rawFP32)
	fmt.Fprintf(w, "%-10s %6s %12s %9s %14s %13s\n",
		"format", "bits", "stored", "vs fp32", "max_rel_err", "mean_rel_err")
	for _, f := range workload.QuantTargets() {
		bits, err := quant.Quantize(flat, f)
		if err != nil {
			return err
		}
		encoded, err := enc.EncodeInts(nil, bits, encOpts)
		if err != nil {
			return err
		}
		back, err := quant.Dequantize(bits, f)
		if err != nil {
			return err
		}
		var maxRel, sumRel float64
		n := 0
		for i := range flat {
			if flat[i] == 0 {
				continue
			}
			rel := math.Abs(float64(back[i]-flat[i])) / math.Abs(float64(flat[i]))
			sumRel += rel
			n++
			if rel > maxRel {
				maxRel = rel
			}
		}
		fmt.Fprintf(w, "%-10s %6d %12d %8.1f%% %14.2e %13.2e\n",
			f, f.Bits(), len(encoded), 100*float64(len(encoded))/float64(rawFP32),
			maxRel, sumRel/float64(n))
	}

	// §2.4 opportunity 2: the BF16-specific 12-bit packing for normalized
	// embeddings.
	nbf16 := quant.EncodeNormalizedEmbedding(flat)
	fmt.Fprintf(w, "%-10s %6s %12d %8.1f%%  (12-bit normalized BF16 packing)\n",
		"nBF16", "12", len(nbf16), 100*float64(len(nbf16))/float64(rawFP32))

	// The dual-column decomposition (§2.4 opportunity 3).
	hi, lo := quant.SplitBF16Columns(flat)
	joined := quant.JoinBF16Columns(hi, lo)
	exact := true
	for i := range flat {
		if math.Float32bits(joined[i]) != math.Float32bits(flat[i]) {
			exact = false
			break
		}
	}
	hiEnc, err := enc.EncodeInts(nil, hi, encOpts)
	if err != nil {
		return err
	}
	loEnc, err := enc.EncodeInts(nil, lo, encOpts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ndual-column FP32 = BF16-hi + 16-bit residual: hi %d + lo %d bytes, 1:1 join exact = %v\n",
		len(hiEnc), len(loEnc), exact)
	return nil
}

// Fig7 measures the quality-aware multimodal layout: a thresholded
// training read against presorted vs unsorted meta tables (Figure 7 and
// §2.5's presorting claim).
func Fig7(w io.Writer) error {
	fmt.Fprintln(w, "Figure 7 / §2.5: quality-aware multimodal training reads")
	const n = 20000
	rng := rand.New(rand.NewSource(17))
	samples := multimodal.GenerateSamples(rng, n)

	build := func(presort bool) (*core.File, *iostats.Counters, *mediastore.Reader, *iostats.Counters, error) {
		metaOut := newMemFile()
		mediaOut := newMemFile()
		if err := multimodal.WriteDataset(metaOut, mediaOut, samples, presort); err != nil {
			return nil, nil, nil, nil, err
		}
		var mc, vc iostats.Counters
		mc.Reset()
		vc.Reset()
		mf, err := core.Open(&iostats.ReaderAt{R: metaOut, C: &mc}, metaOut.Size())
		if err != nil {
			return nil, nil, nil, nil, err
		}
		mr, err := mediastore.Open(&iostats.ReaderAt{R: mediaOut, C: &vc}, mediaOut.Size())
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return mf, &mc, mr, &vc, nil
	}

	sortedFile, sc, media, vc, err := build(true)
	if err != nil {
		return err
	}
	unsortedFile, uc, _, _, err := build(false)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-10s %9s %9s %12s %12s %7s\n",
		"threshold", "selected", "layout", "read_bytes", "read_ops", "seeks")
	for _, threshold := range []float64{0.9, 0.7, 0.5, 0.25} {
		s, err := multimodal.TrainingRead(sortedFile, sc, media, vc, threshold, 0.01, true)
		if err != nil {
			return err
		}
		u, err := multimodal.TrainingRead(unsortedFile, uc, media, vc, threshold, 0.01, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10.2f %9d %9s %12d %12d %7d\n", threshold, s.SamplesRead, "presort", s.ReadBytes, s.ReadOps, s.Seeks)
		fmt.Fprintf(w, "%-10s %9d %9s %12d %12d %7d\n", "", u.SamplesRead, "unsorted", u.ReadBytes, u.ReadOps, u.Seeks)
	}
	return nil
}

// Reorder measures §2.5's column-axis organization: a hot feature set
// projected from a wide table, with hot columns reordered to the front and
// adjacent chunks coalesced into single reads, vs the scattered layout.
func Reorder(w io.Writer) error {
	fmt.Fprintln(w, "§2.5 column reordering + coalesced reads (hot 10% feature set)")
	const nCols = 200
	const nRows = 20000
	rng := rand.New(rand.NewSource(41))

	hot := make([]string, 20)
	for i := range hot {
		hot[i] = fmt.Sprintf("feat_%03d", i*10) // scattered across the schema
	}

	build := func(reorder bool) (*core.File, *iostats.Counters, error) {
		fields := make([]core.Field, nCols)
		cols := make([]core.ColumnData, nCols)
		for i := 0; i < nCols; i++ {
			fields[i] = core.Field{Name: fmt.Sprintf("feat_%03d", i), Type: core.Type{Kind: core.Int64}}
			vs := make(core.Int64Data, nRows)
			for r := range vs {
				vs[r] = rng.Int63n(1 << 20)
			}
			cols[i] = vs
		}
		schema, err := core.NewSchema(fields...)
		if err != nil {
			return nil, nil, err
		}
		if reorder {
			reordered, perm, err := core.ReorderFields(schema, hot)
			if err != nil {
				return nil, nil, err
			}
			schema = reordered
			cols = core.ReorderBatchColumns(cols, perm)
		}
		batch, err := core.NewBatch(schema, cols)
		if err != nil {
			return nil, nil, err
		}
		mf := newMemFile()
		wr, err := core.NewWriter(mf, schema, core.DefaultOptions())
		if err != nil {
			return nil, nil, err
		}
		if err := wr.Write(batch); err != nil {
			return nil, nil, err
		}
		if err := wr.Close(); err != nil {
			return nil, nil, err
		}
		var c iostats.Counters
		c.Reset()
		f, err := core.Open(&iostats.ReaderAt{R: mf, C: &c}, mf.Size())
		if err != nil {
			return nil, nil, err
		}
		return f, &c, nil
	}

	fmt.Fprintf(w, "%-28s %9s %9s %7s\n", "layout/read path", "read_ops", "bytes", "seeks")
	for _, tc := range []struct {
		name     string
		reorder  bool
		coalesce bool
	}{
		{"scattered + per-column", false, false},
		{"scattered + coalesced", false, true},
		{"hot-first + coalesced", true, true},
	} {
		f, c, err := build(tc.reorder)
		if err != nil {
			return err
		}
		before := c.Snapshot()
		if tc.coalesce {
			if _, err := f.ProjectCoalesced(hot...); err != nil {
				return err
			}
		} else {
			if _, err := f.Project(hot...); err != nil {
				return err
			}
		}
		d := c.Snapshot().Sub(before)
		fmt.Fprintf(w, "%-28s %9d %9d %7d\n", tc.name, d.ReadOps, d.ReadBytes, d.Seeks)
	}
	return nil
}

// Tab2 exercises the full encoding catalog on its target distributions.
func Tab2(w io.Writer) error {
	fmt.Fprintln(w, "Table 2: encoding catalog on target distributions")
	rng := rand.New(rand.NewSource(19))
	opts := enc.DefaultOptions()
	n := 65536

	type gen struct {
		name string
		id   enc.SchemeID
		data []int64
	}
	sorted := make([]int64, n)
	cur := int64(0)
	for i := range sorted {
		cur += int64(rng.Intn(50))
		sorted[i] = cur
	}
	runs := make([]int64, n)
	for i := 0; i < n; {
		v := int64(rng.Intn(8))
		l := rng.Intn(30) + 1
		for j := 0; j < l && i < n; j++ {
			runs[i] = v
			i++
		}
	}
	lowcard := make([]int64, n)
	domain := []int64{3, 1 << 20, -9, 42, 7777}
	for i := range lowcard {
		lowcard[i] = domain[rng.Intn(len(domain))]
	}
	clustered := make([]int64, n)
	for i := range clustered {
		clustered[i] = (1 << 41) + int64(rng.Intn(1<<14))
	}
	mostly := make([]int64, n)
	for i := range mostly {
		if rng.Intn(50) > 0 {
			mostly[i] = 5
		} else {
			mostly[i] = rng.Int63n(1000)
		}
	}
	uniform := make([]int64, n)
	for i := range uniform {
		uniform[i] = int64(rng.Uint64())
	}
	small := make([]int64, n)
	for i := range small {
		small[i] = int64(rng.Intn(100000))
	}

	cases := []gen{
		{"Trivial/uniform", enc.Plain, uniform},
		{"FixedBitWidth/small", enc.BitPack, small},
		{"Varint/small", enc.Varint, small},
		{"ZigZag/small-signed", enc.ZigZagVar, small},
		{"RLE/runs", enc.RLE, runs},
		{"Dictionary/low-card", enc.Dict, lowcard},
		{"Delta/sorted", enc.Delta, sorted},
		{"FOR/clustered", enc.FOR, clustered},
		{"SIMDFastPFOR/clustered", enc.PFOR, clustered},
		{"SIMDFastBP128/small", enc.FastBP128, small},
		{"MainlyConstant/mostly", enc.MainlyConst, mostly},
		{"Huffman/low-card", enc.Huffman, lowcard},
		{"BitShuffle/small", enc.BitShuffle, small},
		{"Chunked/runs", enc.Chunked, runs},
	}
	fmt.Fprintf(w, "%-26s %12s %9s %12s %12s\n", "encoding/distribution", "bytes", "vs plain", "enc MB/s", "dec MB/s")
	for _, c := range cases {
		raw := 8 * len(c.data)
		start := time.Now()
		encoded, err := enc.EncodeIntsWith(nil, c.id, c.data, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		encT := time.Since(start)
		start = time.Now()
		if _, err := enc.DecodeInts(encoded, len(c.data)); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		decT := time.Since(start)
		fmt.Fprintf(w, "%-26s %12d %8.1f%% %12.0f %12.0f\n",
			c.name, len(encoded), 100*float64(len(encoded))/float64(raw),
			mbps(raw, encT), mbps(raw, decT))
	}

	// Float, bytes, and bool schemes. The time series is sensor-style:
	// a random walk quantized to 1/4 steps, so consecutive values share
	// mantissa structure (Gorilla/Chimp's target shape).
	ts := make([]float64, n)
	f := 100.0
	for i := range ts {
		f += rng.NormFloat64()
		ts[i] = math.Round(f*4) / 4
	}
	decimals := make([]float64, n)
	for i := range decimals {
		decimals[i] = float64(rng.Intn(1000000)) / 100
	}
	for _, c := range []struct {
		name string
		id   enc.SchemeID
		data []float64
	}{
		{"Gorilla/timeseries", enc.GorillaF, ts},
		{"Chimp/timeseries", enc.ChimpF, ts},
		{"Pseudodecimal/decimal", enc.PseudoDec, decimals},
		{"ALP/decimal", enc.ALPF, decimals},
	} {
		raw := 8 * len(c.data)
		start := time.Now()
		encoded, err := enc.EncodeFloatsWith(nil, c.id, c.data, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		encT := time.Since(start)
		start = time.Now()
		if _, err := enc.DecodeFloats(encoded, len(c.data)); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		decT := time.Since(start)
		fmt.Fprintf(w, "%-26s %12d %8.1f%% %12.0f %12.0f\n",
			c.name, len(encoded), 100*float64(len(encoded))/float64(raw),
			mbps(raw, encT), mbps(raw, decT))
	}

	urls := make([][]byte, 8192)
	for i := range urls {
		urls[i] = []byte(fmt.Sprintf("https://cdn.example.com/v/%08x?t=%d", rng.Uint32(), rng.Intn(600)))
	}
	rawB := 0
	for _, u := range urls {
		rawB += len(u)
	}
	for _, c := range []struct {
		name string
		id   enc.SchemeID
	}{
		{"FSST/urls", enc.FSST},
		{"DictionaryBytes/urls", enc.DictB},
		{"ChunkedBytes/urls", enc.ChunkedB},
	} {
		start := time.Now()
		encoded, err := enc.EncodeBytesWith(nil, c.id, urls, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		encT := time.Since(start)
		start = time.Now()
		if _, err := enc.DecodeBytes(encoded, len(urls)); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		decT := time.Since(start)
		fmt.Fprintf(w, "%-26s %12d %8.1f%% %12.0f %12.0f\n",
			c.name, len(encoded), 100*float64(len(encoded))/float64(rawB),
			mbps(rawB, encT), mbps(rawB, decT))
	}

	bools := make([]bool, n)
	for i := range bools {
		bools[i] = rng.Intn(100) == 0
	}
	for _, c := range []struct {
		name string
		id   enc.SchemeID
	}{
		{"SparseBool/1%", enc.SparseBool},
		{"Roaring/1%", enc.Roaring},
		{"PlainBool/1%", enc.PlainBool},
	} {
		encoded, err := enc.EncodeBoolsWith(nil, c.id, bools)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		if _, err := enc.DecodeBools(encoded, len(bools)); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		fmt.Fprintf(w, "%-26s %12d %8.1f%% %12s %12s\n",
			c.name, len(encoded), 100*float64(len(encoded))/float64(n/8), "-", "-")
	}
	return nil
}

func mbps(bytes int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / (1 << 20)
}

// Deletion measures the §2.1 in-text claim: I/O written by in-place
// Level-2 deletion vs a full rewrite, sweeping the deleted fraction
// (clustered, as user-sorted tables produce).
func Deletion(w io.Writer) error {
	fmt.Fprintln(w, "§2.1: deletion-compliance I/O (clustered rows, user-sorted table)")
	const rows = 200000
	schema, err := core.NewSchema(
		core.Field{Name: "uid", Type: core.Type{Kind: core.Int64}},
		core.Field{Name: "ad_id", Type: core.Type{Kind: core.Int64}},
		core.Field{Name: "label", Type: core.Type{Kind: core.Float64}},
		core.Field{Name: "tag", Type: core.Type{Kind: core.String}},
	)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(23))
	uid := make(core.Int64Data, rows)
	adID := make(core.Int64Data, rows)
	label := make(core.Float64Data, rows)
	tag := make(core.BytesData, rows)
	for i := 0; i < rows; i++ {
		uid[i] = int64(i / 100)
		adID[i] = 1<<40 + int64(i)
		label[i] = rng.Float64()
		tag[i] = []byte(fmt.Sprintf("u%d-r%d", uid[i], i))
	}
	batch, err := core.NewBatch(schema, []core.ColumnData{uid, adID, label, tag})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-9s %12s %14s %14s %9s\n", "deleted", "file_bytes", "inplace_bytes", "rewrite_bytes", "savings")
	for _, frac := range []float64{0.005, 0.01, 0.02, 0.05} {
		mf := newMemFile()
		opts := core.DefaultOptions()
		opts.RowsPerPage = 1024
		opts.GroupRows = 1 << 15
		opts.Compliance = core.Level2
		cw, err := core.NewWriter(mf, schema, opts)
		if err != nil {
			return err
		}
		if err := cw.Write(batch); err != nil {
			return err
		}
		if err := cw.Close(); err != nil {
			return err
		}
		f, err := core.Open(mf, mf.Size())
		if err != nil {
			return err
		}
		nDel := int(float64(rows) * frac)
		del := make([]uint64, nDel)
		base := uint64(rows / 3)
		for i := range del {
			del[i] = base + uint64(i)
		}
		var c iostats.Counters
		c.Reset()
		if err := f.DeleteRows(&iostats.WriterAt{W: mf, C: &c}, del); err != nil {
			return err
		}
		inPlace := c.Snapshot().WriteBytes

		var rw iostats.Counters
		rw.Reset()
		if _, err := f.RewriteWithoutRows(&iostats.Writer{W: newMemFile(), C: &rw}, nil, opts); err != nil {
			return err
		}
		rewrite := rw.Snapshot().WriteBytes
		fmt.Fprintf(w, "%7.1f%% %12d %14d %14d %8.1fx\n",
			frac*100, mf.Size(), inPlace, rewrite, float64(rewrite)/float64(inPlace))
	}
	fmt.Fprintln(w, "\n(the paper reports up to 50x at 2% for production-size files; the footer")
	fmt.Fprintln(w, "rewrite is a fixed cost that amortizes as files grow)")
	return nil
}

// All runs every experiment in paper order.
func All(w io.Writer) error {
	for _, run := range []struct {
		name string
		fn   func(io.Writer) error
	}{
		{"fig1", Fig1}, {"fig2", Fig2}, {"tab1", Tab1}, {"fig4", Fig4},
		{"fig5", func(w io.Writer) error { return Fig5(w, nil) }},
		{"fig6", Fig6}, {"fig7", Fig7}, {"reorder", Reorder},
		{"tab2", Tab2}, {"deletion", Deletion},
	} {
		fmt.Fprintf(w, "\n==== %s ====\n", run.name)
		if err := run.fn(w); err != nil {
			return fmt.Errorf("%s: %w", run.name, err)
		}
	}
	return nil
}
