package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// Every experiment runner must complete without error and produce output —
// the smoke layer under cmd/experiments.

func TestFig1(t *testing.T) { runExp(t, Fig1, "Figure 1") }
func TestFig2(t *testing.T) { runExp(t, Fig2, "Figure 2") }
func TestTab1(t *testing.T) { runExp(t, Tab1, "Table 1") }
func TestFig4(t *testing.T) { runExp(t, Fig4, "sparse") }
func TestFig6(t *testing.T) { runExp(t, Fig6, "quantization") }
func TestTab2(t *testing.T) { runExp(t, Tab2, "catalog") }

func TestReorder(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two 200-column tables")
	}
	runExp(t, Reorder, "reordering")
}

func TestFig5Small(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(&buf, []int{500, 2000}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "500") || !strings.Contains(out, "2000") {
		t.Fatalf("fig5 output missing rows:\n%s", out)
	}
}

func TestFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 20k-sample dataset")
	}
	runExp(t, Fig7, "quality")
}

func TestDeletion(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 200k-row table four times")
	}
	runExp(t, Deletion, "deletion")
}

func runExp(t *testing.T, fn func(io.Writer) error, marker string) {
	t.Helper()
	var buf bytes.Buffer
	if err := fn(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(buf.String()), strings.ToLower(marker)) {
		t.Fatalf("output missing %q:\n%s", marker, buf.String())
	}
	if len(buf.String()) < 100 {
		t.Fatalf("suspiciously short output:\n%s", buf.String())
	}
}
