package core

import (
	"fmt"
	"sort"
	"sync"
)

// Column reordering and coalesced reads (§2.5, last paragraph): in
// recommendation workloads only ~10% of thousands of features are
// frequently accessed, so Bullion places hot columns contiguously within
// each row group and bundles adjacent column chunks into single I/O
// operations — the counterpart of Alpha's feature reordering + coalesced
// reads, on the column axis rather than Figure 7's row axis.

// CoalesceLimit is the largest single coalesced read, matching the 1.25 MiB
// the paper quotes from Alpha's coalesced-read design.
const CoalesceLimit = 1280 << 10

// DefaultCoalesceGap is the default ScanOptions.CoalesceGap: up to this
// many cold bytes between two wanted page runs are read through rather
// than split into two I/O operations. A few KiB of wasted transfer is
// cheaper than a second seek (or a second object-storage request) at
// every realistic latency.
const DefaultCoalesceGap = 4 << 10

// ReorderFields returns a copy of schema with the named hot columns moved
// to the front (in the order given), so their chunks are written adjacent
// within every row group. The returned permutation maps new index → old
// index for reordering batch columns.
func ReorderFields(schema *Schema, hot []string) (*Schema, []int, error) {
	idx := make(map[string]int, len(schema.Fields))
	for i, f := range schema.Fields {
		idx[f.Name] = i
	}
	taken := make([]bool, len(schema.Fields))
	perm := make([]int, 0, len(schema.Fields))
	for _, name := range hot {
		i, ok := idx[name]
		if !ok {
			return nil, nil, fmt.Errorf("core: hot column %q not in schema", name)
		}
		if taken[i] {
			return nil, nil, fmt.Errorf("core: hot column %q listed twice", name)
		}
		taken[i] = true
		perm = append(perm, i)
	}
	for i := range schema.Fields {
		if !taken[i] {
			perm = append(perm, i)
		}
	}
	fields := make([]Field, len(perm))
	for newIdx, oldIdx := range perm {
		fields[newIdx] = schema.Fields[oldIdx]
	}
	reordered, err := NewSchema(fields...)
	if err != nil {
		return nil, nil, err
	}
	return reordered, perm, nil
}

// ReorderBatchColumns applies a ReorderFields permutation to batch columns.
func ReorderBatchColumns(cols []ColumnData, perm []int) []ColumnData {
	out := make([]ColumnData, len(perm))
	for newIdx, oldIdx := range perm {
		out[newIdx] = cols[oldIdx]
	}
	return out
}

// runSeg is one projected column's contiguous page range inside a
// coalesced span run. Pages first..last are byte-adjacent, so the whole
// segment is one contiguous slice of the run buffer.
type runSeg struct {
	col           int    // position in the scanner's projected column list
	first, last   int    // global page indices, inclusive
	firstRowStart uint64 // global row id of the first page's first row
}

// spanRun is one physical read planned for a batch span: a byte range
// covering the page segments of one or more projected columns, fetched at
// most once (fetchRun) into a buffer the decode workers slice zero-copy.
type spanRun struct {
	off, end int64
	wasted   int64 // cold gap bytes inside [off,end) belonging to no segment
	segs     []runSeg

	fetchOnce sync.Once
	buf       []byte
	bufP      *[]byte // pool token; nil when the buffer must outlive the batch
	err       error
}

// planSpanRuns computes the minimal physical reads for one batch span
// across all projected columns (cols holds column indices; segments record
// positions into that slice). Per column, maximal index-adjacent page runs
// overlapping the span are collected exactly like the per-column scan
// path; the runs of all columns are then sorted by file offset and merged
// when they are byte-adjacent, or separated by at most gap cold bytes,
// while the merged read stays at or under CoalesceLimit. A single
// segment larger than CoalesceLimit still becomes one read — pages must
// be fetched whole.
//
// With hot columns reordered to the front at write time (ReorderFields), a
// hot-set projection collapses to one read per row group per batch.
func planSpanRuns(src scanSource, cols []int, span rowSpan, gap int64) []*spanRun {
	type colSeg struct {
		seg      runSeg
		off, end int64
	}
	var segs []colSeg
	for pos, ci := range cols {
		forEachPageInSpan(src, ci, span, func(p int, rowLo, _ uint64) bool {
			if n := len(segs); n > 0 && segs[n-1].seg.col == pos && segs[n-1].seg.last == p-1 {
				_, segs[n-1].end = src.pageByteRange(p)
				segs[n-1].seg.last = p
				return true
			}
			off, end := src.pageByteRange(p)
			segs = append(segs, colSeg{
				seg: runSeg{col: pos, first: p, last: p, firstRowStart: rowLo},
				off: off, end: end,
			})
			return true
		})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].off < segs[j].off })

	var runs []*spanRun
	for _, cs := range segs {
		if n := len(runs); n > 0 {
			cur := runs[n-1]
			if cs.off >= cur.end && cs.off-cur.end <= gap && cs.end-cur.off <= CoalesceLimit {
				cur.wasted += cs.off - cur.end
				cur.end = cs.end
				cur.segs = append(cur.segs, cs.seg)
				continue
			}
		}
		runs = append(runs, &spanRun{off: cs.off, end: cs.end, segs: []runSeg{cs.seg}})
	}
	return runs
}

// readPlan is one physical read covering one or more column chunks.
type readPlan struct {
	off    int64
	size   int64
	chunks []planChunk
}

type planChunk struct {
	col      int
	group    int
	chunkOff int64 // offset within the coalesced buffer
	chunkLen int64
}

// planCoalesced builds a minimal set of reads for the given columns of one
// group: chunks are sorted by file offset and adjacent (or identical-gap)
// ranges merge until CoalesceLimit.
func (f *File) planCoalesced(group int, cols []int) []readPlan {
	type span struct {
		col  int
		off  int64
		size int64
	}
	spans := make([]span, 0, len(cols))
	for _, c := range cols {
		off, size := f.view.ChunkByteRange(group, c)
		spans = append(spans, span{col: c, off: int64(off), size: int64(size)})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })

	var plans []readPlan
	for _, s := range spans {
		n := len(plans)
		if n > 0 {
			cur := &plans[n-1]
			end := cur.off + cur.size
			// Merge when exactly adjacent and under the coalesce limit.
			if s.off == end && cur.size+s.size <= CoalesceLimit {
				cur.chunks = append(cur.chunks, planChunk{
					col: s.col, group: group, chunkOff: s.off - cur.off, chunkLen: s.size,
				})
				cur.size += s.size
				continue
			}
		}
		plans = append(plans, readPlan{
			off:  s.off,
			size: s.size,
			chunks: []planChunk{{
				col: s.col, group: group, chunkOff: 0, chunkLen: s.size,
			}},
		})
	}
	return plans
}

// ProjectCoalesced reads the named columns like Project but bundles
// adjacent column chunks into single reads of up to CoalesceLimit bytes.
// When the schema was written with the hot columns reordered to the front
// (ReorderFields), a hot-set projection collapses to one read per row
// group.
func (f *File) ProjectCoalesced(names ...string) (*Batch, error) {
	cols := make([]int, len(names))
	fields := make([]Field, len(names))
	for i, name := range names {
		ci, ok := f.LookupColumn(name)
		if !ok {
			return nil, fmt.Errorf("core: no column %q", name)
		}
		cols[i] = ci
		fields[i] = f.FieldByIndex(ci)
	}
	out := make([]ColumnData, len(names))
	colPos := make(map[int]int, len(cols)) // column index -> output slot
	for i, c := range cols {
		colPos[c] = i
	}

	for g := 0; g < f.view.NumGroups(); g++ {
		rowStart := f.groupRowStart(g)
		for _, plan := range f.planCoalesced(g, cols) {
			buf := make([]byte, plan.size)
			if _, err := f.r.ReadAt(buf, plan.off); err != nil {
				return nil, fmt.Errorf("core: coalesced read at %d: %w", plan.off, err)
			}
			for _, ch := range plan.chunks {
				data, err := f.decodeChunkFromBuffer(
					buf[ch.chunkOff:ch.chunkOff+ch.chunkLen], g, ch.col, rowStart)
				if err != nil {
					return nil, err
				}
				slot := colPos[ch.col]
				out[slot] = appendColumn(out[slot], data)
			}
		}
	}
	for i := range out {
		if out[i] == nil {
			out[i] = emptyColumn(fields[i])
		}
	}
	schema := &Schema{Fields: fields}
	return &Batch{Schema: schema, Columns: out}, nil
}

// decodeChunkFromBuffer decodes one column chunk whose bytes are already
// in memory (shared with ReadChunk's per-page loop).
func (f *File) decodeChunkFromBuffer(buf []byte, group, col int, rowStart uint64) (ColumnData, error) {
	field := f.FieldByIndex(col)
	chunkOff, _ := f.view.ChunkByteRange(group, col)
	first, count := f.view.ChunkPages(group, col)

	var out ColumnData
	pageRowStart := rowStart
	for p := first; p < first+count; p++ {
		off, end := f.pageByteRange(p)
		payload := buf[off-int64(chunkOff) : end-int64(chunkOff)]
		logical := f.view.PageRows(p)
		data, err := decodePage(field, payload, logical)
		if err != nil {
			return nil, fmt.Errorf("core: decoding page %d of column %q: %w", p, field.Name, err)
		}
		if f.deletedInRange(pageRowStart, pageRowStart+uint64(logical)) > 0 {
			data = filterDeleted(data, f.view, pageRowStart, logical)
		}
		out = appendColumn(out, data)
		pageRowStart += uint64(logical)
	}
	if out == nil {
		out = emptyColumn(field)
	}
	return out, nil
}
