package core

import (
	"bytes"
	"flag"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bullion/internal/enc"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.bullion")

const goldenPath = "testdata/golden.bullion"

// goldenTable builds a deterministic multi-type table: the writer must
// reproduce testdata/golden.bullion byte-for-byte from this data. Any
// intentional format change requires regenerating the file with
//
//	go test ./internal/core -run TestGoldenFile -update
func goldenTable(t *testing.T) (*Schema, *Batch, *Options) {
	t.Helper()
	schema, err := NewSchema(
		Field{Name: "uid", Type: Type{Kind: Int64}},
		Field{Name: "clicks", Type: Type{Kind: Int64}, Nullable: true},
		Field{Name: "score", Type: Type{Kind: Float64}},
		Field{Name: "embed", Type: Type{Kind: Float32}},
		Field{Name: "flag", Type: Type{Kind: Bool}},
		Field{Name: "tag", Type: Type{Kind: String}},
		Field{Name: "seq", Type: Type{Kind: List, Elem: Int64}},
		Field{Name: "clk_seq_cids", Type: Type{Kind: List, Elem: Int64}, Sparse: true},
		Field{Name: "nested", Type: Type{Kind: ListList, Elem: Int64}},
	)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	rng := rand.New(rand.NewSource(20250728))
	uid := make(Int64Data, n)
	clicks := NullableInt64Data{Values: make([]int64, n), Valid: make([]bool, n)}
	score := make(Float64Data, n)
	embed := make(Float32Data, n)
	flagc := make(BoolData, n)
	tag := make(BytesData, n)
	seq := make(ListInt64Data, n)
	clk := make(ListInt64Data, n)
	nested := make(ListListInt64Data, n)
	window := make([]int64, 24)
	for i := range window {
		window[i] = rng.Int63n(1 << 28)
	}
	for i := 0; i < n; i++ {
		uid[i] = int64(i / 8)
		clicks.Valid[i] = i%5 != 0
		if clicks.Valid[i] {
			clicks.Values[i] = rng.Int63n(1000)
		}
		score[i] = float64(i) / 7
		embed[i] = float32(i%97) * 0.25
		flagc[i] = i%4 == 0
		tag[i] = []byte([]string{"news", "video", "ads", "social"}[i%4])
		seq[i] = []int64{int64(i), int64(i * 2), int64(i % 13)}
		if rng.Intn(3) == 0 {
			window = append([]int64{rng.Int63n(1 << 28)}, window[:len(window)-1]...)
		}
		clk[i] = append([]int64{}, window...)
		nested[i] = [][]int64{{int64(i % 7)}, {int64(i), int64(i + 1)}}
	}
	batch, err := NewBatch(schema, []ColumnData{
		uid, clicks, score, embed, flagc, tag, seq, clk, nested,
	})
	if err != nil {
		t.Fatal(err)
	}
	return schema, batch, &Options{RowsPerPage: 256, GroupRows: 1000, Compliance: Level2}
}

// marshalGolden writes the golden table with the given encode-worker
// count (0 = writer default, GOMAXPROCS).
func marshalGolden(t *testing.T, workers int) []byte {
	t.Helper()
	schema, batch, opts := goldenTable(t)
	opts = opts.clone()
	opts.EncodeWorkers = workers
	var buf bytes.Buffer
	w, err := NewWriter(&buf, schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenFile pins the on-disk format: the writer must regenerate the
// committed golden file byte-for-byte — sequentially AND through the
// parallel ingest pipeline at 8 encode workers — and reading it back, via
// Project and via the streaming Scanner, must reproduce the source table.
// The committed file predates the pipelined writer and the selector
// cache, so this test is also the proof that neither changed the format.
func TestGoldenFile(t *testing.T) {
	got := marshalGolden(t, 0)
	if again := marshalGolden(t, 0); !bytes.Equal(got, again) {
		t.Fatal("writer is nondeterministic: two runs produced different bytes")
	}
	if w1 := marshalGolden(t, 1); !bytes.Equal(got, w1) {
		t.Fatal("EncodeWorkers=1 output differs from the default writer")
	}
	if w8 := marshalGolden(t, 8); !bytes.Equal(got, w8) {
		t.Fatal("EncodeWorkers=8 output differs from the default writer")
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", len(got), goldenPath)
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden file drift: generated %d bytes != committed %d bytes; "+
			"the on-disk format changed (run with -update if intentional)", len(got), len(want))
	}

	// Re-open the committed bytes and verify the projected batches.
	f, err := Open(bytes.NewReader(want), int64(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
	schema, batch, _ := goldenTable(t)
	names := make([]string, len(schema.Fields))
	for i, fd := range schema.Fields {
		names[i] = fd.Name
	}
	proj, err := f.Project(names...)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range batch.Columns {
		compareGoldenColumn(t, names[i], proj.Columns[i], want)
	}

	// The streaming scanner must produce the identical batches.
	sc, err := f.Scan(ScanOptions{Columns: names, Workers: 4, BatchRows: 700})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	var scanned []ColumnData
	for {
		b, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if scanned == nil {
			scanned = make([]ColumnData, len(b.Columns))
		}
		for i, c := range b.Columns {
			scanned[i] = appendColumn(scanned[i], c)
		}
	}
	for i := range proj.Columns {
		if !reflect.DeepEqual(scanned[i], proj.Columns[i]) {
			t.Errorf("scanner column %q differs from Project", names[i])
		}
	}
}

const goldenDDPath = "testdata/golden_dd.bullion"

// goldenDDTable builds the delta-of-delta golden: a jittered millisecond
// timestamp column and a constant-stride event id — the distributions the
// DeltaDelta scheme exists for — plus a drifting float gauge so the file
// also covers the rewritten Gorilla/Chimp decode path. Pinned separately
// from golden.bullion because that file predates the scheme and must stay
// byte-identical forever.
func goldenDDTable(t *testing.T) (*Schema, *Batch, *Options) {
	t.Helper()
	schema, err := NewSchema(
		Field{Name: "ts", Type: Type{Kind: Int64}},
		Field{Name: "event_id", Type: Type{Kind: Int64}},
		Field{Name: "gauge", Type: Type{Kind: Float64}},
	)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	rng := rand.New(rand.NewSource(20250808))
	ts := make(Int64Data, n)
	eventID := make(Int64Data, n)
	gauge := make(Float64Data, n)
	// The arrival cadence drifts as a bounded random walk: first-order
	// deltas spread over thousands of microseconds (wide for Delta's
	// child) while second-order diffs stay within ±127 (8 bits for
	// DeltaDelta's child) — the distribution the scheme exists for.
	cur := int64(1_722_000_000_000_000)
	delta := int64(5000)
	walk := 250.0
	for i := 0; i < n; i++ {
		delta += rng.Int63n(255) - 127
		if delta < 100 {
			delta = 100
		}
		cur += delta
		ts[i] = cur
		eventID[i] = 7_000_000 + int64(i)*3
		walk += rng.NormFloat64() * 0.25
		gauge[i] = walk
	}
	batch, err := NewBatch(schema, []ColumnData{ts, eventID, gauge})
	if err != nil {
		t.Fatal(err)
	}
	// Level1: Level2's in-place masking restricts the cascade to
	// point-addressable schemes, which rules delta chains out by design.
	return schema, batch, &Options{RowsPerPage: 512, GroupRows: 2000, Compliance: Level1}
}

// TestGoldenDeltaDeltaFile pins the DeltaDelta wire format: the writer
// must reproduce testdata/golden_dd.bullion byte-for-byte, the selector
// must actually pick DeltaDelta for the timestamp column (otherwise the
// golden would silently pin the wrong scheme), and scanning the committed
// bytes must reproduce the source table exactly.
func TestGoldenDeltaDeltaFile(t *testing.T) {
	schema, batch, opts := goldenDDTable(t)
	marshal := func() []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, schema, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(batch); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	got := marshal()
	if again := marshal(); !bytes.Equal(got, again) {
		t.Fatal("writer is nondeterministic: two runs produced different bytes")
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenDDPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenDDPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", len(got), goldenDDPath)
	}
	want, err := os.ReadFile(goldenDDPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden drift: generated %d bytes != committed %d bytes; "+
			"the DeltaDelta wire format changed (run with -update if intentional)", len(got), len(want))
	}

	f, err := Open(bytes.NewReader(want), int64(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
	for _, cs := range f.Stats().Columns {
		if cs.Name != "ts" {
			continue
		}
		if cs.Encodings[enc.DeltaDelta] == 0 {
			t.Fatalf("timestamp column encoded as %v, not DeltaDelta", cs.Encodings)
		}
	}
	proj, err := f.Project("ts", "event_id", "gauge")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range batch.Columns {
		compareGoldenColumn(t, schema.Fields[i].Name, proj.Columns[i], want)
	}
	sc, err := f.Scan(ScanOptions{Workers: 2, BatchRows: 700})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	var scanned []ColumnData
	for {
		b, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if scanned == nil {
			scanned = make([]ColumnData, len(b.Columns))
		}
		for i, c := range b.Columns {
			scanned[i] = appendColumn(scanned[i], c)
		}
	}
	for i := range proj.Columns {
		if !reflect.DeepEqual(scanned[i], proj.Columns[i]) {
			t.Errorf("scanner column %q differs from Project", schema.Fields[i].Name)
		}
	}
}

// TestGoldenV2BackwardCompat pins reading of pre-statistics files:
// testdata/golden_v2.bullion is the identical table written when the
// footer was at version 2 (int zone maps only, no column stats, no
// blooms). It must still open, verify, and scan to the exact source data;
// its float and string columns must report no zone maps (HasMinMax and
// HasFloatMinMax false, Bloom nil); float/string filters must run without
// pruning anything; and in-place deletion must still round-trip the v2
// footer at its original length.
func TestGoldenV2BackwardCompat(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden_v2.bullion")
	if err != nil {
		t.Fatal(err)
	}
	f, err := Open(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.View().Version(); got != 2 {
		t.Fatalf("pinned v2 file reports footer version %d", got)
	}
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}

	schema, batch, _ := goldenTable(t)
	names := make([]string, len(schema.Fields))
	for i, fd := range schema.Fields {
		names[i] = fd.Name
	}
	proj, err := f.Project(names...)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range batch.Columns {
		compareGoldenColumn(t, names[i], proj.Columns[i], want)
	}

	// Statistics the v2 format predates read as absent.
	for _, cs := range f.Stats().Columns {
		switch cs.Name {
		case "score", "embed":
			if cs.HasMinMax || cs.HasFloatMinMax {
				t.Errorf("v2 float column %q reports zone maps: %+v", cs.Name, cs)
			}
		case "tag":
			if cs.HasMinMax || cs.HasFloatMinMax || cs.Bloom != nil {
				t.Errorf("v2 string column %q reports statistics: %+v", cs.Name, cs)
			}
		case "uid":
			if !cs.HasMinMax {
				t.Errorf("v2 int column %q lost its zone map", cs.Name)
			}
		}
	}

	// Float and string filters on a v2 file must be accepted and must not
	// prune a single batch — there are no statistics to prune with.
	flo, fhi := 1e9, 2e9
	sc, err := f.Scan(ScanOptions{
		Columns: []string{"uid"},
		Filters: []ColumnFilter{
			{Column: "score", FloatMin: &flo, FloatMax: &fhi},
			{Column: "tag", ValueIn: [][]byte{[]byte("no-such-tag")}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	rows := 0
	for {
		b, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows += b.NumRows()
	}
	if rows != batch.NumRows() {
		t.Fatalf("v2 scan with unprunable filters returned %d rows, want %d", rows, batch.NumRows())
	}
	if st := sc.Stats(); st.BatchesSkipped != 0 {
		t.Fatalf("v2 file pruned %d batches without statistics", st.BatchesSkipped)
	}

	// In-place deletion rewrites the footer at its original version and
	// length (rewriteFooter enforces the length; this is the regression
	// guard for Materialize preserving Version).
	mem := &memFile{data: append([]byte(nil), raw...)}
	f2, err := Open(mem, int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.DeleteRows(mem, []uint64{1, 2, 3}); err != nil {
		t.Fatalf("deleting from v2 file: %v", err)
	}
	if got := f2.NumLiveRows(); got != uint64(batch.NumRows()-3) {
		t.Fatalf("v2 live rows = %d after delete", got)
	}
	if got := f2.View().Version(); got != 2 {
		t.Fatalf("delete upgraded the footer to version %d", got)
	}
}

// TestGoldenScanCoalescedIdentical pins read-path equivalence on the
// committed golden file: the coalesced scan (cross-column read planner,
// pooled run buffers, decode-into) must emit batch-for-batch identical
// data to the uncoalesced per-column scan, including at a batch size that
// misaligns with the golden file's 256-row pages.
func TestGoldenScanCoalescedIdentical(t *testing.T) {
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	f, err := Open(bytes.NewReader(want), int64(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	for _, batchRows := range []int{700, 1024} {
		plain, err := f.Scan(ScanOptions{Workers: 2, BatchRows: batchRows, DisableCoalesce: true})
		if err != nil {
			t.Fatal(err)
		}
		coal, err := f.Scan(ScanOptions{Workers: 2, BatchRows: batchRows})
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; ; b++ {
			pb, perr := plain.Next()
			cb, cerr := coal.Next()
			if perr == io.EOF || cerr == io.EOF {
				if perr != cerr {
					t.Fatalf("batchRows=%d: scans ended at different batches", batchRows)
				}
				break
			}
			if perr != nil || cerr != nil {
				t.Fatal(perr, cerr)
			}
			for i := range pb.Columns {
				if !reflect.DeepEqual(cb.Columns[i], pb.Columns[i]) {
					t.Errorf("batchRows=%d batch %d: column %q differs between coalesced and uncoalesced scan",
						batchRows, b, f.FieldByIndex(i).Name)
				}
			}
		}
		plain.Close()
		coal.Close()
	}
}

// compareGoldenColumn compares a decoded column to the source data.
// Nullable columns compare mask-aware: values under null slots are
// unspecified on disk.
func compareGoldenColumn(t *testing.T, name string, got, want ColumnData) {
	t.Helper()
	if g, ok := got.(NullableInt64Data); ok {
		w := want.(NullableInt64Data)
		if !reflect.DeepEqual(g.Valid, w.Valid) {
			t.Errorf("column %q: validity mask differs", name)
			return
		}
		for i, v := range w.Valid {
			if v && g.Values[i] != w.Values[i] {
				t.Errorf("column %q: row %d = %d, want %d", name, i, g.Values[i], w.Values[i])
				return
			}
		}
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("column %q: decoded data differs from source", name)
	}
}
