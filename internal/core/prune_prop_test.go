package core_test

// Property-based harness for the statistics system: "pruning never drops
// rows". Each case generates a random schema, random data (including
// quantized float32 columns, NaN/Inf floats, nullable ints, deletions,
// and misaligned page/group/batch geometries) and a random predicate set,
// then runs the scan twice:
//
//	reference — no filters, DisableCoalesce (the plain per-column path);
//	pruned    — the filters installed, coalescing on.
//
// Applying the predicates exactly to both outputs must yield identical
// row sequences: statistics pruning (page zone maps, page blooms, the
// file-level short-circuit, and — for the dataset cases — manifest zone
// maps and member blooms) may only drop rows that provably cannot match.
// The harness runs at page, file, and manifest level: most cases scan a
// single file; every fourth case routes the same table through a sharded
// dataset and scans it through the manifest.
//
// The CI race step runs this test, so the 1000 cases also hammer the
// concurrent scanner under -race.

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"bullion/internal/core"
	"bullion/internal/dataset"
	"bullion/internal/quant"
)

// propMemFile is an in-memory ReaderAt/WriterAt for the deletion path.
type propMemFile struct{ data []byte }

func (m *propMemFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *propMemFile) WriteAt(p []byte, off int64) (int, error) {
	if off+int64(len(p)) > int64(len(m.data)) {
		return 0, fmt.Errorf("propMemFile: WriteAt beyond end")
	}
	return copy(m.data[off:], p), nil
}

// propCase is one generated table + predicate set.
type propCase struct {
	schema  *core.Schema
	batch   *core.Batch
	opts    *core.Options
	filters []core.ColumnFilter
	batchRows,
	workers int
	deletions []uint64
	vocab     []string // the string column's value universe
}

func genPropCase(t *testing.T, rng *rand.Rand) *propCase {
	quants := []quant.Format{quant.FP32, quant.FP16, quant.BF16}
	schema, err := core.NewSchema(
		core.Field{Name: "k_int", Type: core.Type{Kind: core.Int64}},
		core.Field{Name: "k_nul", Type: core.Type{Kind: core.Int64}, Nullable: true},
		core.Field{Name: "k_f64", Type: core.Type{Kind: core.Float64}},
		core.Field{Name: "k_f32", Type: core.Type{Kind: core.Float32, Quant: quants[rng.Intn(len(quants))]}},
		core.Field{Name: "k_str", Type: core.Type{Kind: core.String}},
		core.Field{Name: "k_bool", Type: core.Type{Kind: core.Bool}},
	)
	if err != nil {
		t.Fatal(err)
	}
	n := 50 + rng.Intn(550)
	vocab := make([]string, 2+rng.Intn(24))
	for i := range vocab {
		vocab[i] = fmt.Sprintf("tag-%d-%d", i, rng.Intn(1000))
	}
	kInt := make(core.Int64Data, n)
	kNul := core.NullableInt64Data{Values: make([]int64, n), Valid: make([]bool, n)}
	kF64 := make(core.Float64Data, n)
	kF32 := make(core.Float32Data, n)
	kStr := make(core.BytesData, n)
	kBool := make(core.BoolData, n)
	intRange := int64(1 << uint(2+rng.Intn(20)))
	for i := 0; i < n; i++ {
		kInt[i] = rng.Int63n(2*intRange) - intRange
		kNul.Valid[i] = rng.Intn(4) != 0
		kNul.Values[i] = rng.Int63n(intRange)
		switch rng.Intn(20) {
		case 0:
			kF64[i] = math.NaN()
		case 1:
			kF64[i] = math.Inf(1 - 2*rng.Intn(2))
		default:
			kF64[i] = (rng.Float64() - 0.5) * float64(intRange)
		}
		kF32[i] = float32((rng.Float64() - 0.5) * 100)
		kStr[i] = []byte(vocab[rng.Intn(len(vocab))])
		kBool[i] = rng.Intn(2) == 0
	}
	batch, err := core.NewBatch(schema, []core.ColumnData{kInt, kNul, kF64, kF32, kStr, kBool})
	if err != nil {
		t.Fatal(err)
	}

	pc := &propCase{
		schema: schema,
		batch:  batch,
		vocab:  vocab,
		opts: &core.Options{
			RowsPerPage:   []int{16, 64, 256}[rng.Intn(3)],
			GroupRows:     []int{64, 256, 1000}[rng.Intn(3)],
			Compliance:    []core.Level{core.Level1, core.Level2}[rng.Intn(2)],
			EncodeWorkers: rng.Intn(5),
		},
		batchRows: []int{17, 64, 128, 500}[rng.Intn(4)],
		workers:   1 + rng.Intn(4),
	}
	if rng.Intn(3) == 0 {
		for i := 0; i < n/10; i++ {
			pc.deletions = append(pc.deletions, uint64(rng.Intn(n)))
		}
	}

	// 1-3 predicates, bounds drawn to straddle the data so some cases
	// prune pages, some prune whole files, and some prune nothing.
	nFilters := 1 + rng.Intn(3)
	for i := 0; i < nFilters; i++ {
		switch rng.Intn(4) {
		case 0:
			lo := rng.Int63n(2*intRange) - intRange
			hi := lo + rng.Int63n(intRange)
			cf := core.ColumnFilter{Column: "k_int"}
			if rng.Intn(4) != 0 {
				cf.Min = &lo
			}
			if rng.Intn(4) != 0 {
				cf.Max = &hi
			}
			pc.filters = append(pc.filters, cf)
		case 1:
			lo := rng.Int63n(intRange)
			hi := lo + rng.Int63n(intRange)
			pc.filters = append(pc.filters, core.ColumnFilter{Column: "k_nul", Min: &lo, Max: &hi})
		case 2:
			col := []string{"k_f64", "k_f32"}[rng.Intn(2)]
			span := float64(intRange)
			if col == "k_f32" {
				span = 100
			}
			lo := (rng.Float64() - 0.5) * span * 1.2
			hi := lo + rng.Float64()*span
			cf := core.ColumnFilter{Column: col}
			if rng.Intn(4) != 0 {
				cf.FloatMin = &lo
			}
			if rng.Intn(4) != 0 {
				cf.FloatMax = &hi
			}
			pc.filters = append(pc.filters, cf)
		default:
			var in [][]byte
			for k := 0; k < 1+rng.Intn(3); k++ {
				if rng.Intn(3) == 0 {
					in = append(in, []byte(fmt.Sprintf("absent-%d", rng.Intn(1000))))
				} else {
					in = append(in, []byte(pc.vocab[rng.Intn(len(pc.vocab))]))
				}
			}
			pc.filters = append(pc.filters, core.ColumnFilter{Column: "k_str", ValueIn: in})
		}
	}
	return pc
}

// rowMatches applies the predicate set exactly to row r of a decoded
// batch (the projection order is the full schema). Nulls and NaNs never
// match a range; ValueIn is exact byte equality.
func rowMatches(b *core.Batch, r int, filters []core.ColumnFilter) bool {
	for _, cf := range filters {
		ci, ok := b.Schema.Lookup(cf.Column)
		if !ok {
			panic("filter column missing from projection")
		}
		switch d := b.Columns[ci].(type) {
		case core.Int64Data:
			v := d[r]
			if (cf.Min != nil && v < *cf.Min) || (cf.Max != nil && v > *cf.Max) {
				return false
			}
		case core.NullableInt64Data:
			if !d.Valid[r] {
				return false
			}
			v := d.Values[r]
			if (cf.Min != nil && v < *cf.Min) || (cf.Max != nil && v > *cf.Max) {
				return false
			}
		case core.Float64Data:
			v := d[r]
			if math.IsNaN(v) && (cf.FloatMin != nil || cf.FloatMax != nil) {
				return false
			}
			if (cf.FloatMin != nil && v < *cf.FloatMin) || (cf.FloatMax != nil && v > *cf.FloatMax) {
				return false
			}
		case core.Float32Data:
			v := float64(d[r])
			if math.IsNaN(v) && (cf.FloatMin != nil || cf.FloatMax != nil) {
				return false
			}
			if (cf.FloatMin != nil && v < *cf.FloatMin) || (cf.FloatMax != nil && v > *cf.FloatMax) {
				return false
			}
		case core.BytesData:
			if len(cf.ValueIn) == 0 {
				continue
			}
			hit := false
			for _, want := range cf.ValueIn {
				if bytes.Equal(d[r], want) {
					hit = true
					break
				}
			}
			if !hit {
				return false
			}
		}
	}
	return true
}

// renderRow serializes one row of a batch for exact comparison.
func renderRow(sb *strings.Builder, b *core.Batch, r int) {
	for _, col := range b.Columns {
		switch d := col.(type) {
		case core.Int64Data:
			fmt.Fprintf(sb, "%d|", d[r])
		case core.NullableInt64Data:
			if d.Valid[r] {
				fmt.Fprintf(sb, "%d|", d.Values[r])
			} else {
				sb.WriteString("null|")
			}
		case core.Float64Data:
			fmt.Fprintf(sb, "%x|", math.Float64bits(d[r]))
		case core.Float32Data:
			fmt.Fprintf(sb, "%x|", math.Float32bits(d[r]))
		case core.BytesData:
			fmt.Fprintf(sb, "%q|", d[r])
		case core.BoolData:
			fmt.Fprintf(sb, "%v|", d[r])
		default:
			panic(fmt.Sprintf("unhandled column type %T", col))
		}
	}
	sb.WriteByte('\n')
}

// matchingRows drains a scanner-like Next/Close pair, applies the
// predicates exactly, and returns the matching rows rendered in order.
func matchingRows(t *testing.T, next func() (*core.Batch, error), filters []core.ColumnFilter) string {
	var sb strings.Builder
	for {
		b, err := next()
		if err == io.EOF {
			return sb.String()
		}
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < b.NumRows(); r++ {
			if rowMatches(b, r, filters) {
				renderRow(&sb, b, r)
			}
		}
	}
}

var propPruneStats struct {
	batchesSkipped atomic.Int64
	filesPruned    atomic.Int64
}

// runFileCase writes one file and compares the pruned scan against the
// reference scan (page- and file-level pruning).
func runFileCase(t *testing.T, pc *propCase) {
	var buf bytes.Buffer
	w, err := core.NewWriter(&buf, pc.schema, pc.opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(pc.batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	mf := &propMemFile{data: buf.Bytes()}
	f, err := core.Open(mf, int64(len(mf.data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.deletions) > 0 {
		if err := f.DeleteRows(mf, pc.deletions); err != nil {
			t.Fatal(err)
		}
	}

	ref, err := f.Scan(core.ScanOptions{BatchRows: pc.batchRows, Workers: pc.workers, DisableCoalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := matchingRows(t, ref.Next, pc.filters)

	pruned, err := f.Scan(core.ScanOptions{BatchRows: pc.batchRows, Workers: pc.workers, Filters: pc.filters})
	if err != nil {
		t.Fatal(err)
	}
	defer pruned.Close()
	got := matchingRows(t, pruned.Next, pc.filters)
	propPruneStats.batchesSkipped.Add(pruned.Stats().BatchesSkipped)

	if got != want {
		t.Fatalf("pruned scan dropped or altered matching rows\nfilters: %s\nwant %d bytes, got %d bytes",
			describeFilters(pc.filters), len(want), len(got))
	}
}

// runDatasetCase routes the same table through a sharded dataset and
// compares the manifest-pruned scan against the unfiltered reference.
func runDatasetCase(t *testing.T, pc *propCase, rng *rand.Rand) {
	d, err := dataset.Create(t.TempDir(), pc.schema, &dataset.Options{Writer: pc.opts})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sw, err := d.ShardedWriter(1 + rng.Intn(3))
	if err != nil {
		t.Fatal(err)
	}
	// Feed the table in slices so round-robin routing spreads rows with
	// distinct value ranges across members.
	n := pc.batch.NumRows()
	step := n/4 + 1
	for lo := 0; lo < n; lo += step {
		hi := lo + step
		if hi > n {
			hi = n
		}
		cols := make([]core.ColumnData, len(pc.batch.Columns))
		for i := range cols {
			cols[i] = slicePropColumn(pc.batch.Columns[i], lo, hi)
		}
		if err := sw.Write(&core.Batch{Schema: pc.schema, Columns: cols}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if len(pc.deletions) > 0 {
		del := make([]uint64, 0, len(pc.deletions))
		for _, r := range pc.deletions {
			if r < d.NumRows() {
				del = append(del, r)
			}
		}
		if err := d.Delete(del); err != nil {
			t.Fatal(err)
		}
	}

	ref, err := d.Scan(dataset.ScanOptions{ScanOptions: core.ScanOptions{
		BatchRows: pc.batchRows, Workers: pc.workers, DisableCoalesce: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := matchingRows(t, ref.Next, pc.filters)

	pruned, err := d.Scan(dataset.ScanOptions{ScanOptions: core.ScanOptions{
		BatchRows: pc.batchRows, Workers: pc.workers, Filters: pc.filters,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer pruned.Close()
	got := matchingRows(t, pruned.Next, pc.filters)
	propPruneStats.filesPruned.Add(int64(pruned.Stats().FilesPruned))

	if got != want {
		t.Fatalf("manifest-pruned dataset scan dropped or altered matching rows\nfilters: %s\nwant %d bytes, got %d bytes",
			describeFilters(pc.filters), len(want), len(got))
	}
}

func slicePropColumn(c core.ColumnData, lo, hi int) core.ColumnData {
	switch d := c.(type) {
	case core.Int64Data:
		return d[lo:hi]
	case core.NullableInt64Data:
		return core.NullableInt64Data{Values: d.Values[lo:hi], Valid: d.Valid[lo:hi]}
	case core.Float64Data:
		return d[lo:hi]
	case core.Float32Data:
		return d[lo:hi]
	case core.BytesData:
		return d[lo:hi]
	case core.BoolData:
		return d[lo:hi]
	}
	panic(fmt.Sprintf("unhandled column type %T", c))
}

func describeFilters(fs []core.ColumnFilter) string {
	var sb strings.Builder
	for _, cf := range fs {
		fmt.Fprintf(&sb, "{%s", cf.Column)
		if cf.Min != nil {
			fmt.Fprintf(&sb, " min=%d", *cf.Min)
		}
		if cf.Max != nil {
			fmt.Fprintf(&sb, " max=%d", *cf.Max)
		}
		if cf.FloatMin != nil {
			fmt.Fprintf(&sb, " fmin=%v", *cf.FloatMin)
		}
		if cf.FloatMax != nil {
			fmt.Fprintf(&sb, " fmax=%v", *cf.FloatMax)
		}
		for _, v := range cf.ValueIn {
			fmt.Fprintf(&sb, " in=%q", v)
		}
		sb.WriteString("} ")
	}
	return sb.String()
}

// TestPruningNeverDropsRows is the property harness entry point: 1000
// random cases (150 under -short), split across parallel shards so the
// race detector sees concurrent scanners from independent cases too.
func TestPruningNeverDropsRows(t *testing.T) {
	cases := 1000
	if testing.Short() {
		cases = 150
	}
	const shards = 8
	perShard := (cases + shards - 1) / shards
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("shard%d", s), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0xB10057EE + int64(s)))
			for i := 0; i < perShard; i++ {
				pc := genPropCase(t, rng)
				if i%4 == 3 {
					runDatasetCase(t, pc, rng)
				} else {
					runFileCase(t, pc)
				}
				if t.Failed() {
					t.Fatalf("failing case: shard %d case %d", s, i)
				}
			}
		})
	}
	// Sanity that the harness exercises the machinery at all: across 1000
	// cases, statistics pruning must have fired somewhere.
	t.Cleanup(func() {
		if propPruneStats.batchesSkipped.Load() == 0 {
			t.Error("no batch was ever pruned across all cases — harness lost its teeth")
		}
		if propPruneStats.filesPruned.Load() == 0 {
			t.Error("no dataset member was ever pruned across all cases — harness lost its teeth")
		}
	})
}
