package core

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"testing"

	"bullion/internal/quant"
)

// memFile is an in-memory ReaderAt/WriterAt/Writer for tests.
type memFile struct{ data []byte }

func (m *memFile) Write(p []byte) (int, error) {
	m.data = append(m.data, p...)
	return len(p), nil
}

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memFile) WriteAt(p []byte, off int64) (int, error) {
	if int(off)+len(p) > len(m.data) {
		return 0, fmt.Errorf("memFile: WriteAt beyond end")
	}
	return copy(m.data[off:], p), nil
}

func (m *memFile) Size() int64 { return int64(len(m.data)) }

// testSchema builds a schema exercising every supported type.
func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Field{Name: "uid", Type: Type{Kind: Int64}},
		Field{Name: "clicks", Type: Type{Kind: Int64}, Nullable: true},
		Field{Name: "score", Type: Type{Kind: Float64}},
		Field{Name: "embed_f32", Type: Type{Kind: Float32, Quant: quant.FP32}},
		Field{Name: "flag", Type: Type{Kind: Bool}},
		Field{Name: "tag", Type: Type{Kind: String}},
		Field{Name: "seq", Type: Type{Kind: List, Elem: Int64}},
		Field{Name: "clk_seq_cids", Type: Type{Kind: List, Elem: Int64}, Sparse: true},
		Field{Name: "emb", Type: Type{Kind: List, Elem: Float32}},
		Field{Name: "weights", Type: Type{Kind: List, Elem: Float64}},
		Field{Name: "frames", Type: Type{Kind: List, Elem: Binary}},
		Field{Name: "nested", Type: Type{Kind: ListList, Elem: Int64}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testBatch generates n rows for testSchema.
func testBatch(t *testing.T, schema *Schema, rng *rand.Rand, n int) *Batch {
	t.Helper()
	uid := make(Int64Data, n)
	clicks := NullableInt64Data{Values: make([]int64, n), Valid: make([]bool, n)}
	score := make(Float64Data, n)
	embF32 := make(Float32Data, n)
	flag := make(BoolData, n)
	tag := make(BytesData, n)
	seq := make(ListInt64Data, n)
	clk := make(ListInt64Data, n)
	emb := make(ListFloat32Data, n)
	weights := make(ListFloat64Data, n)
	frames := make(ListBytesData, n)
	nested := make(ListListInt64Data, n)

	window := make([]int64, 16)
	for i := range window {
		window[i] = rng.Int63n(1 << 30)
	}
	for i := 0; i < n; i++ {
		uid[i] = int64(i / 4)
		clicks.Valid[i] = i%7 != 0
		if clicks.Valid[i] {
			clicks.Values[i] = rng.Int63n(100)
		}
		score[i] = rng.Float64()
		embF32[i] = float32(rng.NormFloat64())
		flag[i] = i%3 == 0
		tag[i] = []byte(fmt.Sprintf("tag-%d", i%5))
		seq[i] = []int64{int64(i), int64(i + 1), int64(i + 2)}
		// Sliding window for the sparse column.
		if rng.Intn(3) == 0 {
			next := append([]int64{rng.Int63n(1 << 30)}, window[:len(window)-1]...)
			window = next
		}
		clk[i] = append([]int64{}, window...)
		emb[i] = []float32{float32(i), float32(i) / 2}
		weights[i] = []float64{float64(i) * 1.5}
		frames[i] = [][]byte{[]byte("frame0"), []byte("frame1")}
		nested[i] = [][]int64{{int64(i)}, {int64(i), int64(i + 1)}}
	}
	b, err := NewBatch(schema, []ColumnData{
		uid, clicks, score, embF32, flag, tag, seq, clk, emb, weights, frames, nested,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// writeTestFile writes rows and returns the backing memFile and File.
func writeTestFile(t *testing.T, schema *Schema, batch *Batch, opts *Options) (*memFile, *File) {
	t.Helper()
	mf := &memFile{}
	w, err := NewWriter(mf, schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(mf, mf.Size())
	if err != nil {
		t.Fatal(err)
	}
	return mf, f
}

func TestRoundTripAllTypes(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(1))
	const n = 3000
	batch := testBatch(t, schema, rng, n)

	opts := DefaultOptions()
	opts.RowsPerPage = 256
	opts.GroupRows = 1000
	_, f := writeTestFile(t, schema, batch, opts)

	if f.NumRows() != n {
		t.Fatalf("NumRows = %d, want %d", f.NumRows(), n)
	}
	if f.View().NumGroups() != 3 {
		t.Fatalf("groups = %d, want 3", f.View().NumGroups())
	}
	got := f.Schema()
	for i, field := range schema.Fields {
		if got.Fields[i].Name != field.Name || got.Fields[i].Type != field.Type ||
			got.Fields[i].Sparse != field.Sparse || got.Fields[i].Nullable != field.Nullable {
			t.Fatalf("field %d: %+v != %+v", i, got.Fields[i], field)
		}
	}

	for ci, field := range schema.Fields {
		data, err := f.ReadColumnByIndex(ci)
		if err != nil {
			t.Fatalf("column %q: %v", field.Name, err)
		}
		if data.Len() != n {
			t.Fatalf("column %q: %d rows, want %d", field.Name, data.Len(), n)
		}
		assertColumnEqual(t, field.Name, batch.Columns[ci], data)
	}
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

func assertColumnEqual(t *testing.T, name string, want, got ColumnData) {
	t.Helper()
	switch w := want.(type) {
	case Int64Data:
		g := got.(Int64Data)
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s[%d] = %d, want %d", name, i, g[i], w[i])
			}
		}
	case NullableInt64Data:
		g := got.(NullableInt64Data)
		for i := range w.Values {
			if w.Valid[i] != g.Valid[i] {
				t.Fatalf("%s[%d] validity mismatch", name, i)
			}
			if w.Valid[i] && w.Values[i] != g.Values[i] {
				t.Fatalf("%s[%d] = %d, want %d", name, i, g.Values[i], w.Values[i])
			}
		}
	case Float64Data:
		g := got.(Float64Data)
		for i := range w {
			if math.Float64bits(w[i]) != math.Float64bits(g[i]) {
				t.Fatalf("%s[%d] = %v, want %v", name, i, g[i], w[i])
			}
		}
	case Float32Data:
		g := got.(Float32Data)
		for i := range w {
			if math.Float32bits(w[i]) != math.Float32bits(g[i]) {
				t.Fatalf("%s[%d] = %v, want %v", name, i, g[i], w[i])
			}
		}
	case BoolData:
		g := got.(BoolData)
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s[%d] = %v, want %v", name, i, g[i], w[i])
			}
		}
	case BytesData:
		g := got.(BytesData)
		for i := range w {
			if !bytes.Equal(w[i], g[i]) {
				t.Fatalf("%s[%d] = %q, want %q", name, i, g[i], w[i])
			}
		}
	case ListInt64Data:
		g := got.(ListInt64Data)
		for i := range w {
			if len(w[i]) != len(g[i]) {
				t.Fatalf("%s[%d] len %d, want %d", name, i, len(g[i]), len(w[i]))
			}
			for j := range w[i] {
				if w[i][j] != g[i][j] {
					t.Fatalf("%s[%d][%d] = %d, want %d", name, i, j, g[i][j], w[i][j])
				}
			}
		}
	case ListFloat32Data:
		g := got.(ListFloat32Data)
		for i := range w {
			for j := range w[i] {
				if w[i][j] != g[i][j] {
					t.Fatalf("%s[%d][%d] = %v, want %v", name, i, j, g[i][j], w[i][j])
				}
			}
		}
	case ListFloat64Data:
		g := got.(ListFloat64Data)
		for i := range w {
			for j := range w[i] {
				if w[i][j] != g[i][j] {
					t.Fatalf("%s[%d][%d] = %v, want %v", name, i, j, g[i][j], w[i][j])
				}
			}
		}
	case ListBytesData:
		g := got.(ListBytesData)
		for i := range w {
			for j := range w[i] {
				if !bytes.Equal(w[i][j], g[i][j]) {
					t.Fatalf("%s[%d][%d] mismatch", name, i, j)
				}
			}
		}
	case ListListInt64Data:
		g := got.(ListListInt64Data)
		for i := range w {
			if len(w[i]) != len(g[i]) {
				t.Fatalf("%s[%d] outer len %d, want %d", name, i, len(g[i]), len(w[i]))
			}
			for j := range w[i] {
				for k := range w[i][j] {
					if w[i][j][k] != g[i][j][k] {
						t.Fatalf("%s[%d][%d][%d] mismatch", name, i, j, k)
					}
				}
			}
		}
	default:
		t.Fatalf("unhandled type %T", want)
	}
}

func TestProjection(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(2))
	batch := testBatch(t, schema, rng, 500)
	_, f := writeTestFile(t, schema, batch, nil)

	proj, err := f.Project("score", "uid")
	if err != nil {
		t.Fatal(err)
	}
	if len(proj.Columns) != 2 {
		t.Fatalf("projected %d columns", len(proj.Columns))
	}
	if proj.Schema.Fields[0].Name != "score" || proj.Schema.Fields[1].Name != "uid" {
		t.Fatal("projection order not preserved")
	}
	assertColumnEqual(t, "score", batch.Columns[2], proj.Columns[0])
	assertColumnEqual(t, "uid", batch.Columns[0], proj.Columns[1])

	if _, err := f.Project("nope"); err == nil {
		t.Fatal("projecting a missing column succeeded")
	}
}

func TestQuantizedColumnLossy(t *testing.T) {
	schema, err := NewSchema(
		Field{Name: "e16", Type: Type{Kind: Float32, Quant: quant.FP16}},
		Field{Name: "e8", Type: Type{Kind: Float32, Quant: quant.FP8E4M3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	n := 1000
	rng := rand.New(rand.NewSource(3))
	vs := make(Float32Data, n)
	for i := range vs {
		// Normalized-embedding magnitudes, kept inside FP8-E4M3's normal
		// range (its relative-error bound does not cover subnormals).
		mag := 0.0625 + rng.Float64()*0.9
		if rng.Intn(2) == 0 {
			mag = -mag
		}
		vs[i] = float32(mag)
	}
	batch, err := NewBatch(schema, []ColumnData{vs, vs})
	if err != nil {
		t.Fatal(err)
	}
	_, f := writeTestFile(t, schema, batch, nil)

	check := func(name string, maxRel float64) {
		data, err := f.ReadColumn(name)
		if err != nil {
			t.Fatal(err)
		}
		got := data.(Float32Data)
		for i := range vs {
			if vs[i] == 0 {
				continue
			}
			rel := math.Abs(float64(got[i]-vs[i])) / math.Abs(float64(vs[i]))
			if rel > maxRel {
				t.Fatalf("%s[%d]: rel error %v > %v", name, i, rel, maxRel)
			}
		}
	}
	check("e16", float64(quant.FP16.MaxRelError())*1.001)
	check("e8", float64(quant.FP8E4M3.MaxRelError())*1.001)
}

func TestQualitySorting(t *testing.T) {
	schema, err := NewSchema(
		Field{Name: "id", Type: Type{Kind: Int64}},
		Field{Name: "quality", Type: Type{Kind: Float64}},
	)
	if err != nil {
		t.Fatal(err)
	}
	n := 2000
	rng := rand.New(rand.NewSource(4))
	ids := make(Int64Data, n)
	quality := make(Float64Data, n)
	for i := range ids {
		ids[i] = int64(i)
		quality[i] = rng.Float64()
	}
	batch, _ := NewBatch(schema, []ColumnData{ids, quality})

	opts := DefaultOptions()
	opts.QualityColumn = "quality"
	opts.GroupRows = 1000
	_, f := writeTestFile(t, schema, batch, opts)

	q, err := f.ReadColumn("quality")
	if err != nil {
		t.Fatal(err)
	}
	qd := q.(Float64Data)
	// Descending within each group.
	for _, lo := range []int{0, 1000} {
		for i := lo + 1; i < lo+1000; i++ {
			if qd[i] > qd[i-1] {
				t.Fatalf("quality not descending at row %d: %v > %v", i, qd[i], qd[i-1])
			}
		}
	}
	// id column permuted consistently: the id at each row must have the
	// matching original quality.
	idData, _ := f.ReadColumn("id")
	idd := idData.(Int64Data)
	for i := range qd {
		if quality[idd[i]] != qd[i] {
			t.Fatalf("row %d: id %d has quality %v, stored %v", i, idd[i], quality[idd[i]], qd[i])
		}
	}
}

func TestQualityColumnValidation(t *testing.T) {
	schema, _ := NewSchema(Field{Name: "id", Type: Type{Kind: Int64}})
	opts := DefaultOptions()
	opts.QualityColumn = "missing"
	if _, err := NewWriter(&memFile{}, schema, opts); err == nil {
		t.Fatal("missing quality column accepted")
	}
	opts.QualityColumn = "id"
	if _, err := NewWriter(&memFile{}, schema, opts); err == nil {
		t.Fatal("non-float64 quality column accepted")
	}
}

func TestOpenRejectsCorrupt(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(5))
	batch := testBatch(t, schema, rng, 100)
	mf, _ := writeTestFile(t, schema, batch, nil)

	if _, err := Open(&memFile{data: mf.data[:4]}, 4); err == nil {
		t.Fatal("tiny file opened")
	}
	bad := append([]byte{}, mf.data...)
	copy(bad[len(bad)-4:], "XXXX")
	if _, err := Open(&memFile{data: bad}, int64(len(bad))); err == nil {
		t.Fatal("bad magic opened")
	}
	truncated := mf.data[:len(mf.data)/2]
	if _, err := Open(&memFile{data: truncated}, int64(len(truncated))); err == nil {
		t.Fatal("truncated file opened")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(6))
	batch := testBatch(t, schema, rng, 500)
	mf, f := writeTestFile(t, schema, batch, nil)

	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
	// Flip a data byte (first page starts at offset 0).
	mf.data[3] ^= 0x40
	if err := f.VerifyChecksums(); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestMultipleBatchesAndGroups(t *testing.T) {
	schema, _ := NewSchema(Field{Name: "v", Type: Type{Kind: Int64}})
	mf := &memFile{}
	opts := DefaultOptions()
	opts.GroupRows = 100
	opts.RowsPerPage = 32
	w, err := NewWriter(mf, schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	var want []int64
	for b := 0; b < 7; b++ {
		n := 37
		vs := make(Int64Data, n)
		for i := range vs {
			vs[i] = int64(b*1000 + i)
			want = append(want, vs[i])
		}
		batch, _ := NewBatch(schema, []ColumnData{vs})
		if err := w.Write(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(mf, mf.Size())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != uint64(len(want)) {
		t.Fatalf("NumRows = %d, want %d", f.NumRows(), len(want))
	}
	got, err := f.ReadColumn("v")
	if err != nil {
		t.Fatal(err)
	}
	g := got.(Int64Data)
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("row %d = %d, want %d", i, g[i], want[i])
		}
	}
}

func TestEmptyFile(t *testing.T) {
	schema, _ := NewSchema(Field{Name: "v", Type: Type{Kind: Int64}})
	mf := &memFile{}
	w, _ := NewWriter(mf, schema, nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(mf, mf.Size())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 0 {
		t.Fatalf("NumRows = %d", f.NumRows())
	}
	data, err := f.ReadColumn("v")
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != 0 {
		t.Fatalf("rows = %d", data.Len())
	}
}

func TestSchemaValidation(t *testing.T) {
	cases := []Field{
		{Name: "", Type: Type{Kind: Int64}},
		{Name: "x", Type: Type{Kind: footer0()}},
		{Name: "x", Type: Type{Kind: Int64, Elem: Int64}},
		{Name: "x", Type: Type{Kind: List, Elem: Bool}},
		{Name: "x", Type: Type{Kind: Float64}, Sparse: true},
		{Name: "x", Type: Type{Kind: Float64}, Nullable: true},
		{Name: "x", Type: Type{Kind: ListList, Elem: Float32}},
	}
	for i, f := range cases {
		if _, err := NewSchema(f); err == nil {
			t.Errorf("case %d (%+v): accepted", i, f)
		}
	}
	if _, err := NewSchema(
		Field{Name: "a", Type: Type{Kind: Int64}},
		Field{Name: "a", Type: Type{Kind: Int64}},
	); err == nil {
		t.Error("duplicate names accepted")
	}
}

func footer0() Kind { return Kind(0) }

func TestBatchValidation(t *testing.T) {
	schema, _ := NewSchema(
		Field{Name: "a", Type: Type{Kind: Int64}},
		Field{Name: "b", Type: Type{Kind: Float64}},
	)
	if _, err := NewBatch(schema, []ColumnData{Int64Data{1}}); err == nil {
		t.Error("column count mismatch accepted")
	}
	if _, err := NewBatch(schema, []ColumnData{Int64Data{1}, Float64Data{1, 2}}); err == nil {
		t.Error("row count mismatch accepted")
	}
	if _, err := NewBatch(schema, []ColumnData{Float64Data{1}, Float64Data{1}}); err == nil {
		t.Error("type mismatch accepted")
	}
}
