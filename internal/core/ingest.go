package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"bullion/internal/enc"
	"bullion/internal/merkle"
)

// This file implements the writer's ingest pipeline — the write-side twin
// of the streaming scan subsystem. The Writer's caller-facing half only
// assembles row groups (batch buffering, quality presorting); each cut
// group is handed to the pipeline, which encodes its columns as
// independent tasks on a fixed pool of EncodeWorkers goroutines, while a
// single serializer goroutine writes completed groups to the underlying
// io.Writer strictly in file order. MaxInflightGroups bounds how many
// groups may sit between assembly and serialization, capping memory.
//
// Two invariants make the parallel writer byte-identical to the
// sequential one (pinned by the golden and determinism tests):
//
//   - each column's chunks are encoded in group order: a column's tasks
//     queue in per-column FIFOs and at most one worker drains a given
//     column at a time, so its enc.SelectorCache sees the exact page
//     sequence a sequential writer would feed it;
//   - the serializer assigns offsets and footer entries in group order,
//     so worker scheduling never reaches the file layout.

// maxEncodeWorkers bounds explicit Options.EncodeWorkers requests.
const maxEncodeWorkers = 256

// encodedPage is one finished page: its bytes live in the owning chunk's
// buffer; the metadata feeds the footer without re-touching the payload.
type encodedPage struct {
	size   int // encoded bytes, including Level-2 slack
	rows   uint32
	scheme uint8
	stats  PageStats
	bloom  []byte // serialized page bloom (byte-string pages only)
	hash   merkle.Hash
}

// encodedChunk is one column's encoded pages for one row group,
// concatenated so the serializer issues a single Write per chunk.
type encodedChunk struct {
	buf   []byte
	pages []encodedPage
	// hashes is the chunk's distinct byte-string value hash set; the
	// serializer unions chunks into the column's file-level bloom input.
	hashes map[uint64]struct{}
}

// groupJob carries one row group through the pipeline.
type groupJob struct {
	rows      int
	chunks    []encodedChunk
	remaining atomic.Int32
	done      chan struct{} // closed when every column chunk is encoded
}

type colTask struct {
	g    *groupJob
	data ColumnData
}

// colQueue is one column's pending encode tasks. The running flag grants
// exclusive drain rights to a single worker, which serializes the
// column's tasks in FIFO (= group) order without a per-column goroutine.
type colQueue struct {
	mu      sync.Mutex
	tasks   []colTask
	running bool
}

// ingestPipeline is the worker-pool half of the Writer.
type ingestPipeline struct {
	w       *Writer
	colOpts []*Options  // per-column options with private selector caches
	cols    []*colQueue // per-column FIFO task queues

	inflight chan struct{} // group backpressure (MaxInflightGroups slots)
	runnable chan int      // columns with queued tasks and no active drainer
	ordered  chan *groupJob
	taskWG   sync.WaitGroup // open tasks, for shutdown draining
	workWG   sync.WaitGroup
	serWG    sync.WaitGroup

	mu  sync.Mutex
	err error
}

// resolveWorkers normalizes Options.EncodeWorkers.
func (o *Options) resolveWorkers() int {
	w := o.EncodeWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > maxEncodeWorkers {
		w = maxEncodeWorkers
	}
	return w
}

// newIngestPipeline starts the encode pool and the serializer. It is
// created lazily on the first cut group, so group-less writers (empty
// files) never spawn goroutines.
func newIngestPipeline(w *Writer) *ingestPipeline {
	workers := w.opts.resolveWorkers()
	inflight := w.opts.MaxInflightGroups
	if inflight <= 0 {
		inflight = workers + 2
	}
	nCols := len(w.schema.Fields)
	p := &ingestPipeline{
		w:       w,
		colOpts: make([]*Options, nCols),
		cols:    make([]*colQueue, nCols),
		// A column enters runnable only when it flips to running, so at
		// most one entry per column is ever outstanding: sends at nCols
		// capacity cannot block.
		runnable: make(chan int, nCols),
		inflight: make(chan struct{}, inflight),
		ordered:  make(chan *groupJob, inflight),
	}
	for ci := range p.colOpts {
		co := w.opts.clone()
		if co.Enc.ResampleDrift >= 0 {
			// Every column gets a private cache: SelectorCache is stateful
			// and single-threaded, and per-column state is what keeps its
			// decisions independent of worker scheduling.
			e := *co.Enc
			e.Cache = enc.NewSelectorCache(e.ResampleDrift)
			co.Enc = &e
		}
		p.colOpts[ci] = co
		p.cols[ci] = &colQueue{}
	}
	p.workWG.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	p.serWG.Add(1)
	go p.serialize()
	return p
}

func (p *ingestPipeline) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *ingestPipeline) firstErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// dispatch hands one assembled group to the pipeline. It blocks only on
// the in-flight bound; once admitted, nothing downstream can block it.
func (p *ingestPipeline) dispatch(group []ColumnData, n int) error {
	if err := p.firstErr(); err != nil {
		return err
	}
	p.inflight <- struct{}{}
	g := &groupJob{rows: n, chunks: make([]encodedChunk, len(group)), done: make(chan struct{})}
	g.remaining.Store(int32(len(group)))
	p.ordered <- g
	for ci, col := range group {
		p.taskWG.Add(1)
		q := p.cols[ci]
		q.mu.Lock()
		q.tasks = append(q.tasks, colTask{g: g, data: col})
		wake := !q.running
		if wake {
			q.running = true
		}
		q.mu.Unlock()
		if wake {
			p.runnable <- ci
		}
	}
	return nil
}

// worker drains runnable columns: it claims a column, encodes its queued
// chunks in FIFO order, and releases the claim when the queue empties.
// After a failure workers keep draining (skipping the encode) so
// completed groups unblock the serializer and the in-flight bound.
func (p *ingestPipeline) worker() {
	defer p.workWG.Done()
	for ci := range p.runnable {
		q := p.cols[ci]
		for {
			q.mu.Lock()
			if len(q.tasks) == 0 {
				q.running = false
				q.mu.Unlock()
				break
			}
			task := q.tasks[0]
			q.tasks = q.tasks[1:]
			q.mu.Unlock()
			p.process(ci, task)
			p.taskWG.Done()
		}
	}
}

// process encodes one column chunk of one group.
func (p *ingestPipeline) process(ci int, task colTask) {
	if p.firstErr() == nil {
		field := p.w.schema.Fields[ci]
		chunk, err := encodeColumnChunk(field, task.data, task.g.rows, p.colOpts[ci])
		if err != nil {
			p.setErr(fmt.Errorf("core: column %q: %w", field.Name, err))
		} else {
			task.g.chunks[ci] = chunk
		}
	}
	if task.g.remaining.Add(-1) == 0 {
		close(task.g.done)
	}
}

// encodeColumnChunk encodes all pages of one column of one row group:
// cascade selection (through the column's selector cache), page encoding,
// zone-map statistics (including page blooms for byte-string columns),
// Level-2 slack, and the Merkle leaf hash. It is pure with respect to the
// Writer — all file-layout state stays with the serializer.
func encodeColumnChunk(field Field, col ColumnData, n int, opts *Options) (encodedChunk, error) {
	var c encodedChunk
	bloomBits := opts.resolveBloomBits()
	buildBlooms := bloomBits > 0 && (field.Type.Kind == Binary || field.Type.Kind == String)
	for lo := 0; lo < n; lo += opts.RowsPerPage {
		hi := lo + opts.RowsPerPage
		if hi > n {
			hi = n
		}
		page := sliceColumn(col, lo, hi)
		payload, scheme, err := encodePage(field, page, opts)
		if err != nil {
			return encodedChunk{}, err
		}
		if opts.Compliance == Level2 {
			// Reserve slack so masked re-encodes always fit in place.
			payload = append(payload, make([]byte, level2Slack(len(payload)))...)
		}
		ep := encodedPage{
			size:   len(payload),
			rows:   uint32(hi - lo),
			scheme: uint8(scheme),
			stats:  computePageStats(field, page),
			hash:   merkle.HashPage(payload),
		}
		if buildBlooms {
			if c.hashes == nil {
				c.hashes = map[uint64]struct{}{}
			}
			ep.bloom = bloomForPage(page.(BytesData), bloomBits, c.hashes)
		}
		c.pages = append(c.pages, ep)
		c.buf = append(c.buf, payload...)
	}
	return c, nil
}

// bloomForPage builds one page's membership filter from its distinct
// value hashes, adding them to the chunk-level set as a side effect.
func bloomForPage(vals BytesData, bloomBits int, chunkSet map[uint64]struct{}) []byte {
	pageSet := make(map[uint64]struct{}, len(vals))
	for _, v := range vals {
		h := enc.BloomHash(v)
		pageSet[h] = struct{}{}
		chunkSet[h] = struct{}{}
	}
	b := enc.NewBloomBuilder(len(pageSet), bloomBits)
	for h := range pageSet {
		b.AddHash(h)
	}
	return b.Marshal()
}

// serialize writes completed groups in dispatch order. On failure it keeps
// draining without writing, so assembly and the encode pool never wedge
// on a full pipeline.
func (p *ingestPipeline) serialize() {
	defer p.serWG.Done()
	for g := range p.ordered {
		<-g.done
		if p.firstErr() == nil {
			if err := p.w.serializeGroup(g); err != nil {
				p.setErr(err)
			}
		}
		g.chunks = nil
		<-p.inflight
	}
}

// shutdown drains every queued task and joins every pipeline goroutine.
// The Writer owns offset/footer state again once it returns.
func (p *ingestPipeline) shutdown() {
	p.taskWG.Wait()
	close(p.runnable)
	p.workWG.Wait()
	close(p.ordered)
	p.serWG.Wait()
}

// selectorStats sums cache reuse across the pipeline's columns. Only
// meaningful once the pipeline is idle (after Close).
func (p *ingestPipeline) selectorStats() (hits, resamples int64) {
	for _, co := range p.colOpts {
		if co.Enc.Cache != nil {
			h, r := co.Enc.Cache.Stats()
			hits += h
			resamples += r
		}
	}
	return hits, resamples
}
