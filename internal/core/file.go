package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"sync"

	"bullion/internal/enc"
	"bullion/internal/footer"
	"bullion/internal/merkle"
)

// Footer is the parsed, immutable metadata artifact of one Bullion file:
// the zero-copy footer view plus everything lazily derived from it —
// group geometry and parsed file-level bloom filters. A Footer never
// reads from the file after ParseFooter returns and is safe for
// concurrent use, so one Footer can back any number of File handles over
// the same bytes (the shared-cache path: N scans of a member pay one
// footer parse total via OpenWithFooter).
type Footer struct {
	view      *footer.View
	size      int64
	footerOff int64
	footerLen int

	groupOnce   sync.Once
	groupRows   []int    // lazy: logical rows per group
	groupStarts []uint64 // lazy: global row id of each group's first row

	bloomOnce []sync.Once // per column, guards blooms[c]
	blooms    []*enc.Bloom
}

// ParseFooter reads and parses the footer of a size-byte file: the 8-byte
// trailer, then the footer block — exactly two reads.
func ParseFooter(r io.ReaderAt, size int64) (*Footer, error) {
	if size < 8 {
		return nil, fmt.Errorf("core: file of %d bytes is too small", size)
	}
	var tail [8]byte
	if _, err := r.ReadAt(tail[:], size-8); err != nil {
		return nil, fmt.Errorf("core: reading trailer: %w", err)
	}
	if string(tail[4:]) != FileMagic {
		return nil, fmt.Errorf("core: bad magic %q", tail[4:])
	}
	fLen := int64(binary.LittleEndian.Uint32(tail[:4]))
	if fLen <= 0 || fLen > size-8 {
		return nil, fmt.Errorf("core: footer length %d invalid for %d-byte file", fLen, size)
	}
	buf := make([]byte, fLen)
	if _, err := r.ReadAt(buf, size-8-fLen); err != nil {
		return nil, fmt.Errorf("core: reading footer: %w", err)
	}
	view, err := footer.OpenView(buf)
	if err != nil {
		return nil, err
	}
	return &Footer{
		view:      view,
		size:      size,
		footerOff: size - 8 - fLen,
		footerLen: int(fLen),
		bloomOnce: make([]sync.Once, view.NumColumns()),
		blooms:    make([]*enc.Bloom, view.NumColumns()),
	}, nil
}

// View exposes the raw footer view.
func (ftr *Footer) View() *footer.View { return ftr.view }

// Size returns the file size the footer was parsed from.
func (ftr *Footer) Size() int64 { return ftr.size }

// DataEnd returns the byte offset where page data ends and the footer
// block begins: coalesced page runs never cross it.
func (ftr *Footer) DataEnd() int64 { return ftr.footerOff }

// groupGeometry computes rows-per-group and group row starts once
// (deletion-invariant, so safe to share across handles and deletions).
func (ftr *Footer) groupGeometry() ([]int, []uint64) {
	ftr.groupOnce.Do(func() {
		out := make([]int, ftr.view.NumGroups())
		starts := make([]uint64, ftr.view.NumGroups())
		var row uint64
		for g := range out {
			starts[g] = row
			first, count := ftr.view.ChunkPages(g, 0)
			rows := 0
			for p := first; p < first+count; p++ {
				rows += ftr.view.PageRows(p)
			}
			out[g] = rows
			row += uint64(rows)
		}
		ftr.groupRows = out
		ftr.groupStarts = starts
	})
	return ftr.groupRows, ftr.groupStarts
}

// ColumnBloomFilter returns column c's parsed file-level bloom filter,
// or nil when the column has none (or it fails to parse). The parse runs
// once per column per Footer — the "parse once, probe forever" property
// shared scans rely on.
func (ftr *Footer) ColumnBloomFilter(c int) *enc.Bloom {
	if c < 0 || c >= len(ftr.blooms) {
		return nil
	}
	ftr.bloomOnce[c].Do(func() {
		blob := ftr.view.ColumnBloom(c)
		if len(blob) == 0 {
			return
		}
		if fl, err := enc.OpenBloom(blob); err == nil {
			ftr.blooms[c] = fl
		}
	})
	return ftr.blooms[c]
}

// File is a read handle over a Bullion file. Opening parses only the fixed
// footer header (O(1)); projecting a column touches O(log n) index bytes
// plus that column's pages — the §2.3 wide-table property.
type File struct {
	r           io.ReaderAt
	ftr         *Footer
	view        *footer.View // this handle's view; DeleteRows replaces it
	rewriteOpts *Options     // encoding options for Level-2 page rewrites
}

// Open reads the footer from r and returns a file handle.
func Open(r io.ReaderAt, size int64) (*File, error) {
	ftr, err := ParseFooter(r, size)
	if err != nil {
		return nil, err
	}
	return OpenWithFooter(r, ftr), nil
}

// OpenWithFooter returns a handle over r reusing an already-parsed
// Footer — zero reads. ftr must have been parsed from the same bytes r
// addresses; the caller (the shared footer cache) guarantees this by
// keying footers on the member's immutable version.
func OpenWithFooter(r io.ReaderAt, ftr *Footer) *File {
	return &File{r: r, ftr: ftr, view: ftr.view}
}

// Footer returns the file's shared parsed-footer artifact.
func (f *File) Footer() *Footer { return f.ftr }

// NumRows returns the logical row count (including deleted rows).
func (f *File) NumRows() uint64 { return f.view.NumRows() }

// NumLiveRows returns rows not marked deleted.
func (f *File) NumLiveRows() uint64 {
	deleted := 0
	for w := 0; w < f.view.DeletionWords(); w++ {
		deleted += popcount(f.view.DeletionWord(w))
	}
	return f.view.NumRows() - uint64(deleted)
}

func popcount(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// Compliance returns the deletion-compliance level the file was written at.
func (f *File) Compliance() Level { return Level(f.view.Flags() & 3) }

// View exposes the raw footer view.
func (f *File) View() *footer.View { return f.view }

// NumColumns returns the column count.
func (f *File) NumColumns() int { return f.view.NumColumns() }

// FieldByIndex reconstructs the schema field for column c.
func (f *File) FieldByIndex(c int) Field {
	return fieldFromDesc(f.view.ColumnName(c), f.view.ColumnType(c))
}

// Schema materializes the full schema. O(columns) — readers that project
// should use LookupColumn/FieldByIndex instead.
func (f *File) Schema() *Schema {
	fields := make([]Field, f.view.NumColumns())
	for i := range fields {
		fields[i] = f.FieldByIndex(i)
	}
	return &Schema{Fields: fields}
}

// LookupColumn resolves a column name to its index.
func (f *File) LookupColumn(name string) (int, bool) { return f.view.LookupColumn(name) }

// GroupRowCounts returns logical rows per group (computed from column 0's
// page index once per Footer, then cached; safe for concurrent readers).
func (f *File) GroupRowCounts() []int {
	rows, _ := f.ftr.groupGeometry()
	return rows
}

// groupRowStart returns the global row id of the first row in group g.
func (f *File) groupRowStart(g int) uint64 {
	_, starts := f.ftr.groupGeometry()
	return starts[g]
}

// parsedColumnBloom returns column c's parsed file-level bloom (nil when
// absent), memoized on the shared Footer.
func (f *File) parsedColumnBloom(c int) *enc.Bloom { return f.ftr.ColumnBloomFilter(c) }

// pageByteRange returns the file byte span of global page p.
func (f *File) pageByteRange(p int) (off, end int64) {
	off = int64(f.view.PageOffset(p))
	if p+1 < f.view.NumPages() {
		return off, int64(f.view.PageOffset(p + 1))
	}
	return off, f.ftr.footerOff
}

// deletedInRange counts deleted rows among global rows [lo, hi), one
// popcount per 64-row word of the deletion vector.
func (f *File) deletedInRange(lo, hi uint64) int {
	words := f.view.DeletionWords()
	if words == 0 || lo >= hi {
		return 0
	}
	n := 0
	for w := int(lo >> 6); w <= int((hi-1)>>6) && w < words; w++ {
		word := f.view.DeletionWord(w)
		if word == 0 {
			continue
		}
		base := uint64(w) << 6
		if base < lo {
			word &= ^uint64(0) << (lo - base)
		}
		if base+64 > hi {
			word &= (uint64(1) << (hi - base)) - 1
		}
		n += bits.OnesCount64(word)
	}
	return n
}

// ReadChunk reads and decodes one column chunk, returning only live rows.
func (f *File) ReadChunk(group, col int) (ColumnData, error) {
	field := f.FieldByIndex(col)
	chunkOff, chunkSize := f.view.ChunkByteRange(group, col)
	buf := make([]byte, chunkSize)
	if _, err := f.r.ReadAt(buf, int64(chunkOff)); err != nil {
		return nil, fmt.Errorf("core: reading chunk (%d,%d): %w", group, col, err)
	}
	first, count := f.view.ChunkPages(group, col)
	rowStart := f.groupRowStart(group)

	var out ColumnData
	pageRowStart := rowStart
	for p := first; p < first+count; p++ {
		off, end := f.pageByteRange(p)
		payload := buf[off-int64(chunkOff) : end-int64(chunkOff)]
		logical := f.view.PageRows(p)
		data, err := decodePage(field, payload, logical)
		if err != nil {
			return nil, fmt.Errorf("core: decoding page %d of column %q: %w", p, field.Name, err)
		}
		// Pages always hold their logical row count: Level-2 erasure masks
		// in place rather than compacting, so alignment is intact and the
		// deletion vector drives filtering at every compliance level.
		if f.deletedInRange(pageRowStart, pageRowStart+uint64(logical)) > 0 {
			data = filterDeleted(data, f.view, pageRowStart, logical)
		}
		out = appendColumn(out, data)
		pageRowStart += uint64(logical)
	}
	if out == nil {
		out = emptyColumn(field)
	}
	return out, nil
}

// filterDeleted drops rows marked in the deletion vector (Level-1 reads).
func filterDeleted(data ColumnData, v *footer.View, rowStart uint64, logical int) ColumnData {
	keep := make([]int, 0, logical)
	for i := 0; i < logical; i++ {
		if !v.RowDeleted(rowStart + uint64(i)) {
			keep = append(keep, i)
		}
	}
	return permuteColumn(data, keep)
}

// emptyColumn returns a zero-length column of the field's type.
func emptyColumn(f Field) ColumnData {
	switch {
	case f.Nullable:
		return NullableInt64Data{}
	case f.Type.Kind == Int64 || f.Type.Kind == Int32:
		return Int64Data{}
	case f.Type.Kind == Float64:
		return Float64Data{}
	case f.Type.Kind == Float32:
		return Float32Data{}
	case f.Type.Kind == Bool:
		return BoolData{}
	case f.Type.Kind == Binary || f.Type.Kind == String:
		return BytesData{}
	case f.Type.Kind == List && f.Type.Elem == Int64:
		return ListInt64Data{}
	case f.Type.Kind == List && f.Type.Elem == Float32:
		return ListFloat32Data{}
	case f.Type.Kind == List && f.Type.Elem == Float64:
		return ListFloat64Data{}
	case f.Type.Kind == List && f.Type.Elem == Binary:
		return ListBytesData{}
	default:
		return ListListInt64Data{}
	}
}

// ReadRows reads global rows [lo, hi) of a column, touching only the pages
// that overlap the range — the selective-read path quality-aware layouts
// exploit (§2.5): with rows presorted by quality, a threshold read becomes
// one contiguous page run instead of scattered page fetches.
func (f *File) ReadRows(col int, lo, hi uint64) (ColumnData, error) {
	if hi > f.view.NumRows() || lo > hi {
		return nil, fmt.Errorf("core: row range [%d,%d) out of [0,%d]", lo, hi, f.view.NumRows())
	}
	field := f.FieldByIndex(col)
	var out ColumnData
	counts := f.GroupRowCounts()
	var groupStart uint64
	for g := 0; g < f.view.NumGroups(); g++ {
		groupEnd := groupStart + uint64(counts[g])
		if groupEnd <= lo || groupStart >= hi {
			groupStart = groupEnd
			continue
		}
		first, count := f.view.ChunkPages(g, col)
		pageStart := groupStart
		for p := first; p < first+count; p++ {
			logical := uint64(f.view.PageRows(p))
			pageEnd := pageStart + logical
			if pageEnd <= lo || pageStart >= hi {
				pageStart = pageEnd
				continue
			}
			off, end := f.pageByteRange(p)
			payload := make([]byte, end-off)
			if _, err := f.r.ReadAt(payload, off); err != nil {
				return nil, fmt.Errorf("core: reading page %d: %w", p, err)
			}
			data, err := decodePage(field, payload, int(logical))
			if err != nil {
				return nil, fmt.Errorf("core: decoding page %d: %w", p, err)
			}
			// Clip to the requested range, then filter deletions.
			clipLo, clipHi := 0, int(logical)
			if pageStart < lo {
				clipLo = int(lo - pageStart)
			}
			if pageEnd > hi {
				clipHi = int(logical - (pageEnd - hi))
			}
			keep := make([]int, 0, clipHi-clipLo)
			for i := clipLo; i < clipHi; i++ {
				if !f.view.RowDeleted(pageStart + uint64(i)) {
					keep = append(keep, i)
				}
			}
			out = appendColumn(out, permuteColumn(data, keep))
			pageStart = pageEnd
		}
		groupStart = groupEnd
	}
	if out == nil {
		out = emptyColumn(field)
	}
	return out, nil
}

// ReadColumnByIndex reads a full column (live rows only).
func (f *File) ReadColumnByIndex(col int) (ColumnData, error) {
	var out ColumnData
	for g := 0; g < f.view.NumGroups(); g++ {
		chunk, err := f.ReadChunk(g, col)
		if err != nil {
			return nil, err
		}
		out = appendColumn(out, chunk)
	}
	if out == nil {
		out = emptyColumn(f.FieldByIndex(col))
	}
	return out, nil
}

// ReadColumn reads a full column by name.
func (f *File) ReadColumn(name string) (ColumnData, error) {
	col, ok := f.LookupColumn(name)
	if !ok {
		return nil, fmt.Errorf("core: no column %q", name)
	}
	return f.ReadColumnByIndex(col)
}

// Project reads the named columns (live rows only), in the order given —
// the paper's feature projection path.
func (f *File) Project(names ...string) (*Batch, error) {
	fields := make([]Field, len(names))
	cols := make([]ColumnData, len(names))
	for i, name := range names {
		ci, ok := f.LookupColumn(name)
		if !ok {
			return nil, fmt.Errorf("core: no column %q", name)
		}
		fields[i] = f.FieldByIndex(ci)
		data, err := f.ReadColumnByIndex(ci)
		if err != nil {
			return nil, err
		}
		cols[i] = data
	}
	schema := &Schema{Fields: fields}
	return &Batch{Schema: schema, Columns: cols}, nil
}

// VerifyChecksums re-hashes every page and validates the Merkle tree
// recorded in the footer (leaves, group hashes, and root).
func (f *File) VerifyChecksums() error {
	v := f.view
	nPages := v.NumPages()
	nGroups := v.NumGroups()
	leaves := make([][]merkle.Hash, nGroups)
	p := 0
	for g := 0; g < nGroups; g++ {
		leaves[g] = make([]merkle.Hash, v.GroupPages(g))
		for i := range leaves[g] {
			off, end := f.pageByteRange(p)
			buf := make([]byte, end-off)
			if _, err := f.r.ReadAt(buf, off); err != nil {
				return fmt.Errorf("core: reading page %d: %w", p, err)
			}
			got := merkle.HashPage(buf)
			if want := merkle.Hash(v.Checksum(p)); got != want {
				return fmt.Errorf("core: page %d checksum mismatch: %016x != %016x", p, got, want)
			}
			leaves[g][i] = got
			p++
		}
	}
	tree := merkle.FromHashes(leaves)
	for g := 0; g < nGroups; g++ {
		want := merkle.Hash(v.Checksum(nPages + g))
		if got, _ := tree.Group(g); got != want {
			return fmt.Errorf("core: group %d checksum mismatch", g)
		}
	}
	if got, want := tree.Root(), merkle.Hash(v.RootChecksum()); got != want {
		return fmt.Errorf("core: root checksum mismatch: %016x != %016x", got, want)
	}
	return nil
}
