package core

import (
	"fmt"

	"bullion/internal/bitutil"
	"bullion/internal/enc"
	"bullion/internal/quant"
	"bullion/internal/sparse"
)

// maskableAllowed is the cascade subset usable in Level-2 files: the
// schemes §2.1 enumerates as mask-friendly (bit-packing, varint, RLE,
// dictionary, FOR) plus the trivially safe ones. Delta, Gorilla/Chimp,
// Huffman, BitShuffle, and block compression are excluded — masking one
// value shifts their downstream state, so a re-encoded page could exceed
// its original size, violating the paper's size-consistency criterion.
// Compliance costs compression; the tradeoff is measured in the deletion
// experiment's ablation.
var maskableAllowed = map[enc.SchemeID]bool{
	enc.Plain: true, enc.BitPack: true, enc.Varint: true, enc.ZigZagVar: true,
	enc.RLE: true, enc.Dict: true, enc.FOR: true,
	enc.Constant: true, enc.MainlyConst: true,
	enc.PlainF: true, enc.ConstantF: true,
	enc.PlainB: true, enc.DictB: true, enc.ConstantB: true,
	enc.PlainBool: true, enc.SparseBool: true, enc.Roaring: true,
	enc.Nullable: true, enc.Sentinel: true,
}

// maskableEncOptions restricts base to the maskable scheme subset.
func maskableEncOptions(base *enc.Options) *enc.Options {
	c := *base
	if c.Allowed == nil {
		c.Allowed = maskableAllowed
		return &c
	}
	inter := map[enc.SchemeID]bool{}
	for id := range c.Allowed {
		if maskableAllowed[id] {
			inter[id] = true
		}
	}
	c.Allowed = inter
	return &c
}

// level2Slack returns the per-page padding reserved at Level 2 so that
// masked re-encodes with slightly different sub-stream choices still fit.
func level2Slack(payloadLen int) int { return 16 + payloadLen/32 }

// boolsToBitmap converts a validity slice to a bitmap.
func boolsToBitmap(valid []bool) *bitutil.Bitmap {
	b := bitutil.NewBitmap(len(valid))
	for i, v := range valid {
		if v {
			b.Set(i)
		}
	}
	return b
}

// Options configures the writer's encoding behaviour.
type Options struct {
	// RowsPerPage is the page granularity (the unit of in-place deletion
	// and checksum maintenance).
	RowsPerPage int
	// GroupRows is the row-group granularity.
	GroupRows int
	// Compliance selects the §2.1 deletion-compliance level the file is
	// written at (recorded per file; Level 2 files reserve dictionary mask
	// entries, which ours always do).
	Compliance Level
	// Enc configures the cascade selector.
	Enc *enc.Options
	// Sparse configures the sliding-window codec for Sparse fields.
	Sparse *sparse.Options
	// QualityColumn, when set, names a float64 column; buffered rows are
	// presorted by it in descending order before each row group is cut
	// (§2.5's quality-aware data organization).
	QualityColumn string
	// EncodeWorkers bounds how many column-encode tasks (cascade selection
	// + page encoding + statistics + checksum leaves) run concurrently in
	// the writer's ingest pipeline. <= 0 means GOMAXPROCS. The file bytes
	// are identical at every setting: columns are encoded in file order
	// against per-column selector caches and serialized by a single
	// goroutine.
	EncodeWorkers int
	// MaxInflightGroups caps how many cut row groups (raw plus encoded
	// bytes) the ingest pipeline may hold at once, bounding writer memory.
	// <= 0 means EncodeWorkers + 2.
	MaxInflightGroups int
	// BloomBitsPerValue sizes the split-block bloom filters the writer
	// builds over byte-string (Binary/String) columns, per page and per
	// file, in bits per distinct value. 0 selects
	// enc.BloomDefaultBitsPerValue (12, ~0.5% false positives); negative
	// disables bloom filters entirely. Building a file-level filter keeps
	// the column's distinct value hashes in memory until Close (8 bytes
	// per distinct value).
	BloomBitsPerValue int
}

// resolveBloomBits normalizes Options.BloomBitsPerValue: the default
// sizing at 0, disabled (0) when negative.
func (o *Options) resolveBloomBits() int {
	switch {
	case o.BloomBitsPerValue < 0:
		return 0
	case o.BloomBitsPerValue == 0:
		return enc.BloomDefaultBitsPerValue
	default:
		return o.BloomBitsPerValue
	}
}

// Level is a deletion-compliance level (§2.1).
type Level uint8

// Compliance levels.
const (
	// Level0 behaves like a legacy columnar file: no deletion support.
	Level0 Level = 0
	// Level1 maintains a deletion vector; deleted rows are filtered at
	// read time but their bytes remain on disk.
	Level1 Level = 1
	// Level2 combines the deletion vector with in-place physical erasure
	// of the affected pages.
	Level2 Level = 2
)

// DefaultOptions returns the writer defaults.
func DefaultOptions() *Options {
	return &Options{
		RowsPerPage: 1024,
		GroupRows:   1 << 16,
		Compliance:  Level2,
		Enc:         enc.DefaultOptions(),
		Sparse:      sparse.DefaultOptions(),
	}
}

func (o *Options) clone() *Options {
	c := *o
	return &c
}

// SparsePageScheme is the PageCompression marker for sparse sliding-window
// pages (the codec is composite; no single cascade id describes it).
const SparsePageScheme = 0

// encodePage encodes one page (<= RowsPerPage rows) of a column, returning
// the representative cascade scheme recorded in the footer: the stream's
// own scheme for scalar pages, the value stream's scheme for list pages,
// and SparsePageScheme for sliding-window pages.
func encodePage(f Field, data ColumnData, opts *Options) ([]byte, enc.SchemeID, error) {
	if opts.Enc.Cache != nil {
		opts.Enc.Cache.BeginPage()
	}
	switch d := data.(type) {
	case Int64Data:
		out, err := enc.EncodeInts(nil, d, opts.Enc)
		return out, enc.TopScheme(out), err
	case NullableInt64Data:
		valid := boolsToBitmap(d.Valid)
		out, err := enc.EncodeNullableInts(nil, d.Values, valid, opts.Enc)
		return out, enc.TopScheme(out), err
	case Float64Data:
		out, err := enc.EncodeFloats(nil, d, opts.Enc)
		return out, enc.TopScheme(out), err
	case Float32Data:
		bits, err := quant.Quantize(d, f.Type.Quant)
		if err != nil {
			return nil, 0, err
		}
		out, err := enc.EncodeInts(nil, bits, opts.Enc)
		return out, enc.TopScheme(out), err
	case BoolData:
		out, err := enc.EncodeBools(nil, d, opts.Enc)
		return out, enc.TopScheme(out), err
	case BytesData:
		out, err := enc.EncodeBytes(nil, d, opts.Enc)
		return out, enc.TopScheme(out), err
	case ListInt64Data:
		if f.Sparse {
			out, err := sparse.EncodeColumn(d, opts.Sparse)
			return out, SparsePageScheme, err
		}
		lengths := make([]int64, len(d))
		var flat []int64
		for i, v := range d {
			lengths[i] = int64(len(v))
			flat = append(flat, v...)
		}
		return encodeTwoStreams(lengths, func() ([]byte, error) {
			return enc.EncodeInts(nil, flat, opts.Enc)
		}, opts)
	case ListFloat32Data:
		lengths := make([]int64, len(d))
		var flat []float32
		for i, v := range d {
			lengths[i] = int64(len(v))
			flat = append(flat, v...)
		}
		return encodeTwoStreams(lengths, func() ([]byte, error) {
			bits, err := quant.Quantize(flat, f.Type.Quant)
			if err != nil {
				return nil, err
			}
			return enc.EncodeInts(nil, bits, opts.Enc)
		}, opts)
	case ListFloat64Data:
		lengths := make([]int64, len(d))
		var flat []float64
		for i, v := range d {
			lengths[i] = int64(len(v))
			flat = append(flat, v...)
		}
		return encodeTwoStreams(lengths, func() ([]byte, error) {
			return enc.EncodeFloats(nil, flat, opts.Enc)
		}, opts)
	case ListBytesData:
		lengths := make([]int64, len(d))
		var flat [][]byte
		for i, v := range d {
			lengths[i] = int64(len(v))
			flat = append(flat, v...)
		}
		return encodeTwoStreams(lengths, func() ([]byte, error) {
			return enc.EncodeBytes(nil, flat, opts.Enc)
		}, opts)
	case ListListInt64Data:
		outer := make([]int64, len(d))
		var inner []int64
		var flat []int64
		for i, lst := range d {
			outer[i] = int64(len(lst))
			for _, v := range lst {
				inner = append(inner, int64(len(v)))
				flat = append(flat, v...)
			}
		}
		outerStream, err := enc.EncodeInts(nil, outer, opts.Enc)
		if err != nil {
			return nil, 0, err
		}
		innerStream, err := enc.EncodeInts(nil, inner, opts.Enc)
		if err != nil {
			return nil, 0, err
		}
		flatStream, err := enc.EncodeInts(nil, flat, opts.Enc)
		if err != nil {
			return nil, 0, err
		}
		out := enc.AppendLengthPrefixed(nil, outerStream)
		out = enc.AppendLengthPrefixed(out, innerStream)
		return enc.AppendLengthPrefixed(out, flatStream), enc.TopScheme(flatStream), nil
	}
	return nil, 0, fmt.Errorf("core: cannot encode column type %T", data)
}

// encodeTwoStreams frames a lengths stream plus a values stream, reporting
// the values stream's scheme.
func encodeTwoStreams(lengths []int64, values func() ([]byte, error), opts *Options) ([]byte, enc.SchemeID, error) {
	lenStream, err := enc.EncodeInts(nil, lengths, opts.Enc)
	if err != nil {
		return nil, 0, err
	}
	valStream, err := values()
	if err != nil {
		return nil, 0, err
	}
	out := enc.AppendLengthPrefixed(nil, lenStream)
	return enc.AppendLengthPrefixed(out, valStream), enc.TopScheme(valStream), nil
}

// decodePage decodes a page of nRows rows.
func decodePage(f Field, payload []byte, nRows int) (ColumnData, error) {
	switch {
	case f.Nullable && f.Type.Kind == Int64:
		vs := make([]int64, nRows)
		vb := make([]bool, nRows)
		if err := enc.DecodeNullableIntsInto(vs, vb, payload); err != nil {
			return nil, err
		}
		return NullableInt64Data{Values: vs, Valid: vb}, nil
	case f.Type.Kind == Int64 || f.Type.Kind == Int32:
		vs, err := enc.DecodeInts(payload, nRows)
		if err != nil {
			return nil, err
		}
		return Int64Data(vs), nil
	case f.Type.Kind == Float64:
		vs, err := enc.DecodeFloats(payload, nRows)
		if err != nil {
			return nil, err
		}
		return Float64Data(vs), nil
	case f.Type.Kind == Float32:
		bp := getPageInts(nRows)
		bits, err := enc.DecodeIntsInto(*bp, payload)
		if err != nil {
			putPageInts(bp)
			return nil, err
		}
		vs, err := quant.DequantizeInto(make([]float32, nRows), bits, f.Type.Quant)
		putPageInts(bp)
		if err != nil {
			return nil, err
		}
		return Float32Data(vs), nil
	case f.Type.Kind == Bool:
		vs, err := enc.DecodeBools(payload, nRows)
		if err != nil {
			return nil, err
		}
		return BoolData(vs), nil
	case f.Type.Kind == Binary || f.Type.Kind == String:
		vs, err := enc.DecodeBytes(payload, nRows)
		if err != nil {
			return nil, err
		}
		return BytesData(vs), nil
	case f.Type.Kind == List && f.Type.Elem == Int64:
		if f.Sparse {
			vecs, err := sparse.DecodeColumn(payload)
			if err != nil {
				return nil, err
			}
			if len(vecs) != nRows {
				return nil, fmt.Errorf("core: sparse page has %d vectors, want %d", len(vecs), nRows)
			}
			return ListInt64Data(vecs), nil
		}
		lengths, rest, err := decodeLengths(payload, nRows)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, l := range lengths {
			total += int(l)
		}
		valStream, _, err := enc.ReadLengthPrefixed(rest)
		if err != nil {
			return nil, err
		}
		flat, err := enc.DecodeInts(valStream, total)
		if err != nil {
			return nil, err
		}
		return ListInt64Data(splitInt64(flat, lengths)), nil
	case f.Type.Kind == List && f.Type.Elem == Float32:
		lengths, rest, err := decodeLengths(payload, nRows)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, l := range lengths {
			total += int(l)
		}
		valStream, _, err := enc.ReadLengthPrefixed(rest)
		if err != nil {
			return nil, err
		}
		bits, err := enc.DecodeInts(valStream, total)
		if err != nil {
			return nil, err
		}
		flat, err := quant.Dequantize(bits, f.Type.Quant)
		if err != nil {
			return nil, err
		}
		out := make(ListFloat32Data, nRows)
		pos := 0
		for i, l := range lengths {
			out[i] = flat[pos : pos+int(l)]
			pos += int(l)
		}
		return out, nil
	case f.Type.Kind == List && f.Type.Elem == Float64:
		lengths, rest, err := decodeLengths(payload, nRows)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, l := range lengths {
			total += int(l)
		}
		valStream, _, err := enc.ReadLengthPrefixed(rest)
		if err != nil {
			return nil, err
		}
		flat, err := enc.DecodeFloats(valStream, total)
		if err != nil {
			return nil, err
		}
		out := make(ListFloat64Data, nRows)
		pos := 0
		for i, l := range lengths {
			out[i] = flat[pos : pos+int(l)]
			pos += int(l)
		}
		return out, nil
	case f.Type.Kind == List && f.Type.Elem == Binary:
		lengths, rest, err := decodeLengths(payload, nRows)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, l := range lengths {
			total += int(l)
		}
		valStream, _, err := enc.ReadLengthPrefixed(rest)
		if err != nil {
			return nil, err
		}
		flat, err := enc.DecodeBytes(valStream, total)
		if err != nil {
			return nil, err
		}
		out := make(ListBytesData, nRows)
		pos := 0
		for i, l := range lengths {
			out[i] = flat[pos : pos+int(l)]
			pos += int(l)
		}
		return out, nil
	case f.Type.Kind == ListList:
		outerStream, rest, err := enc.ReadLengthPrefixed(payload)
		if err != nil {
			return nil, err
		}
		outer, err := enc.DecodeInts(outerStream, nRows)
		if err != nil {
			return nil, err
		}
		nInner := 0
		for _, l := range outer {
			if l < 0 || l > maxListLen {
				return nil, fmt.Errorf("core: outer list length %d out of range", l)
			}
			nInner += int(l)
			if nInner > maxListLen {
				return nil, fmt.Errorf("core: nested list cardinality overflow")
			}
		}
		innerStream, rest, err := enc.ReadLengthPrefixed(rest)
		if err != nil {
			return nil, err
		}
		inner, err := enc.DecodeInts(innerStream, nInner)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, l := range inner {
			if l < 0 || l > maxListLen {
				return nil, fmt.Errorf("core: inner list length %d out of range", l)
			}
			total += int(l)
			if total > maxListLen {
				return nil, fmt.Errorf("core: nested value cardinality overflow")
			}
		}
		flatStream, _, err := enc.ReadLengthPrefixed(rest)
		if err != nil {
			return nil, err
		}
		flat, err := enc.DecodeInts(flatStream, total)
		if err != nil {
			return nil, err
		}
		out := make(ListListInt64Data, nRows)
		ii, pos := 0, 0
		for i, ol := range outer {
			lst := make([][]int64, ol)
			for j := range lst {
				l := int(inner[ii])
				ii++
				lst[j] = flat[pos : pos+l]
				pos += l
			}
			out[i] = lst
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: cannot decode field %q of type %v", f.Name, f.Type)
}

// maxListLen bounds per-page list cardinalities so hostile length streams
// cannot drive unbounded allocations (2^28 values ≈ 2 GB of int64s).
const maxListLen = 1 << 28

func decodeLengths(payload []byte, nRows int) ([]int64, []byte, error) {
	lenStream, rest, err := enc.ReadLengthPrefixed(payload)
	if err != nil {
		return nil, nil, err
	}
	lengths, err := enc.DecodeInts(lenStream, nRows)
	if err != nil {
		return nil, nil, err
	}
	total := 0
	for _, l := range lengths {
		if l < 0 || l > maxListLen {
			return nil, nil, fmt.Errorf("core: list length %d out of range", l)
		}
		total += int(l)
		if total > maxListLen {
			return nil, nil, fmt.Errorf("core: list cardinality overflow")
		}
	}
	return lengths, rest, nil
}

func splitInt64(flat []int64, lengths []int64) [][]int64 {
	out := make([][]int64, len(lengths))
	pos := 0
	for i, l := range lengths {
		out[i] = flat[pos : pos+int(l)]
		pos += int(l)
	}
	return out
}
