package core

import (
	"math/rand"
	"testing"
)

// TestSchemaFingerprint pins the properties the dataset manifest relies
// on: stability across calls, sensitivity to names, order, types, and
// flags.
func TestSchemaFingerprint(t *testing.T) {
	base := testSchema(t)
	if base.Fingerprint() != base.Fingerprint() {
		t.Fatal("fingerprint is not deterministic")
	}
	same := &Schema{Fields: append([]Field(nil), base.Fields...)}
	if base.Fingerprint() != same.Fingerprint() {
		t.Fatal("equal schemas fingerprint differently")
	}

	mutations := map[string]func([]Field){
		"rename":      func(fs []Field) { fs[0].Name = "uid2" },
		"retype":      func(fs []Field) { fs[0].Type.Kind = Int32 },
		"flag":        func(fs []Field) { fs[0].Nullable = true },
		"swap":        func(fs []Field) { fs[0], fs[1] = fs[1], fs[0] },
		"quant":       func(fs []Field) { fs[3].Type.Quant = 2 },
		"sparse-flag": func(fs []Field) { fs[7].Sparse = false },
	}
	for name, mutate := range mutations {
		fs := append([]Field(nil), base.Fields...)
		mutate(fs)
		if (&Schema{Fields: fs}).Fingerprint() == base.Fingerprint() {
			t.Errorf("%s mutation did not change the fingerprint", name)
		}
	}
}

// TestStatsColumnZones pins the file-level zone maps Stats folds from the
// per-page statistics: exact bounds for int columns, null accounting for
// nullable ones, and no bounds for types without page stats.
func TestStatsColumnZones(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(5))
	const n = 4000
	batch := testBatch(t, schema, rng, n)
	_, f := writeTestFile(t, schema, batch, &Options{RowsPerPage: 256, GroupRows: 1000, Compliance: Level1})

	stats := f.Stats()
	byName := map[string]ColumnStats{}
	for _, c := range stats.Columns {
		byName[c.Name] = c
	}

	uid := byName["uid"]
	if !uid.HasMinMax {
		t.Fatal("uid has no zone map")
	}
	var wantMin, wantMax int64
	vals := batch.Columns[0].(Int64Data)
	wantMin, wantMax = vals[0], vals[0]
	for _, v := range vals {
		if v < wantMin {
			wantMin = v
		}
		if v > wantMax {
			wantMax = v
		}
	}
	if uid.Min != wantMin || uid.Max != wantMax {
		t.Fatalf("uid zone [%d,%d], want [%d,%d]", uid.Min, uid.Max, wantMin, wantMax)
	}

	clicks := byName["clicks"]
	nc := batch.Columns[1].(NullableInt64Data)
	wantNulls := uint64(0)
	for _, ok := range nc.Valid {
		if !ok {
			wantNulls++
		}
	}
	if clicks.NullCount != wantNulls {
		t.Fatalf("clicks nulls = %d, want %d", clicks.NullCount, wantNulls)
	}

	for _, name := range []string{"score", "tag", "seq"} {
		if byName[name].HasMinMax {
			t.Errorf("%s claims a min/max zone map", name)
		}
	}
}
