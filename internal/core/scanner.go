package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"bullion/internal/enc"
	"bullion/internal/footer"
	"bullion/internal/quant"
)

// This file implements the streaming scan subsystem: instead of
// materializing whole columns (ReadColumnByIndex / Project), a Scanner
// iterates the projected column set in fixed-size row batches — the shape
// ML data loaders consume — decoding the columns of in-flight batches on a
// GOMAXPROCS-bounded worker pool while preserving file order. Batches that
// provably contain no useful rows are skipped before any I/O happens:
//   - batches outside ScanOptions.Range are never planned,
//   - batches whose rows are all deleted are dropped (deleted-heavy files
//     touch proportionally less I/O),
//   - batches where the footer's per-page min/max zone maps prove that no
//     page can satisfy a ColumnFilter are dropped.

// DefaultScanBatchRows is the default Scanner batch size: 4 default-sized
// pages, small enough to keep workers*batch resident, large enough to
// amortize per-batch overhead.
const DefaultScanBatchRows = 4096

// maxScanWorkers bounds explicit ScanOptions.Workers requests.
const maxScanWorkers = 256

// RowRange restricts a scan to global rows [Lo, Hi).
type RowRange struct {
	Lo, Hi uint64
}

// ColumnFilter is a statistics predicate on one column: a batch survives
// only if some overlapping page of the column may satisfy it. Three
// predicate classes exist, each pruning through its own statistics
// domain:
//
//   - Min/Max (nil = open) is an int64 range; prunes int64/int32 columns
//     via int zone maps.
//   - FloatMin/FloatMax (nil = open) is a float64 range; prunes
//     float64/float32 columns via float zone maps (footer v3).
//   - ValueIn is a byte-string membership set ("column equals one of
//     these"); prunes Binary/String columns via page, file, and (through
//     the dataset manifest) per-member bloom filters. An empty ValueIn
//     constrains nothing.
//
// Pruning is conservative in every class — surviving batches are returned
// in full and may still contain non-matching rows (bloom probes also
// admit false positives at the sizing target); exact filtering is the
// caller's job. A filter whose domain does not match the column's
// recorded statistics (an int range on a float column, any filter on a
// statless v2 file) never prunes anything.
type ColumnFilter struct {
	Column   string
	Min      *int64
	Max      *int64
	FloatMin *float64
	FloatMax *float64
	ValueIn  [][]byte
}

// ScanOptions configures File.Scan.
type ScanOptions struct {
	// Columns is the projected column set, in output order. Empty means
	// every column in schema order.
	Columns []string
	// BatchRows is the rows per emitted batch (DefaultScanBatchRows when
	// <= 0). The final batch of a scan may be shorter, and deletions can
	// shrink any batch. Batches that do not align with page boundaries
	// re-read and re-decode the shared boundary page per batch, so a
	// multiple of the writer's RowsPerPage (default 1024) decodes each
	// page exactly once.
	BatchRows int
	// Workers sets the decode parallelism. <= 0 means GOMAXPROCS (the
	// CPU-bound sweet spot). Explicit values are honored beyond GOMAXPROCS
	// (capped at maxScanWorkers) — extra workers help when the reader has
	// latency to hide (object storage, cold NVMe), since blocked reads
	// don't occupy a CPU.
	Workers int
	// Range, when non-nil, restricts the scan to the given global rows.
	Range *RowRange
	// Filters prune batches via the footer's page zone maps.
	Filters []ColumnFilter
	// CoalesceGap is the largest run of cold bytes a coalesced read may
	// read through to merge two wanted page runs into one I/O (see
	// DefaultCoalesceGap, used when 0). Negative disables read-through:
	// only exactly byte-adjacent page runs merge.
	CoalesceGap int
	// DisableCoalesce reverts to one read per column chunk run (the
	// pre-planner scan path). Coalesced and uncoalesced scans return
	// identical batches; this exists for measurement and as an escape
	// hatch for readers whose storage penalizes large requests.
	DisableCoalesce bool
	// ReuseBatches opts into batch recycling: when the caller returns a
	// finished batch via Scanner.Recycle, later batches decode into its
	// column storage instead of allocating, making steady-state Next
	// calls allocation-free for fixed-width columns. Batches must not be
	// read after being recycled. Recycling is implemented by the
	// coalesced decode path only; with DisableCoalesce, Recycle is a
	// no-op.
	ReuseBatches bool
}

// ScanStats reports the physical work a scan performed so far.
//
// PagesDecoded and PagesSkipped count page visits: when batches are not
// page-aligned, a page overlapping several batches contributes once per
// batch (and a boundary page of a pruned batch can be both skipped there
// and decoded by its surviving neighbor).
type ScanStats struct {
	BytesRead      int64 // encoded bytes fetched from the reader
	PagesDecoded   int64
	PagesSkipped   int64 // projected page visits covered by pruned batches
	BatchesEmitted int64
	// BatchesSkipped counts batches pruned by deletion or zone-map
	// filters; rows outside ScanOptions.Range are never planned as
	// batches and are not counted here.
	BatchesSkipped int64
	RowsEmitted    int64
	// ReadOps counts physical ReadAt calls issued so far. On the
	// coalesced path, adjacent column chunks share reads, so ReadOps can
	// be far below columns x batches.
	ReadOps int64
	// CoalescedBytes counts bytes fetched by reads that merged page runs
	// of two or more columns into one I/O.
	CoalescedBytes int64
	// WastedBytes counts cold gap bytes read through under CoalesceGap:
	// transferred but belonging to no projected page.
	WastedBytes int64
}

// rowSpan is one planned batch: global rows [lo, hi).
type rowSpan struct {
	lo, hi uint64
}

// segRef points a projected column at one of its page segments inside a
// planned span run.
type segRef struct {
	run *spanRun
	seg runSeg
}

// scanSlot carries one in-flight batch through the worker pool.
type scanSlot struct {
	idx  int
	span rowSpan
	cols []ColumnData
	// runs/colSegs are set on the coalesced path: the planned physical
	// reads for this span and, per projected column, its page segments in
	// row order.
	runs    []*spanRun
	colSegs [][]segRef
	// reuse holds a recycled batch's column storage (ReuseBatches).
	reuse     []ColumnData
	remaining atomic.Int32
	errMu     sync.Mutex
	err       error
}

func (s *scanSlot) setErr(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

type scanTask struct {
	slot *scanSlot
	col  int // index into Scanner.cols
}

// Scanner streams a projected column set in row batches. One Scanner must
// be used from a single goroutine; any number of Scanners may run
// concurrently over the same *File. The scanner reaches its file only
// through the scanSource interface — one engine instance per source.
type Scanner struct {
	src    scanSource
	cols   []int
	schema *Schema

	batches []rowSpan
	workers int

	coalesce    bool
	gap         int64
	reuseOn     bool
	poolRunBufs bool // run buffers recyclable: no projected column aliases them

	tasks chan scanTask
	ready chan *scanSlot
	sem   chan struct{}
	stop  chan struct{}
	wg    sync.WaitGroup

	next     int
	pending  map[int]*scanSlot
	failed   error
	closed   bool
	stopOnce sync.Once

	freeMu sync.Mutex
	free   [][]ColumnData

	bytesRead    atomic.Int64
	pagesDecoded atomic.Int64
	readOps      atomic.Int64
	coalescedB   atomic.Int64
	wastedB      atomic.Int64
	pagesSkipped int64
	batchesSkip  int64
	batchesOut   int64
	rowsOut      int64
}

// Scan plans a streaming scan and starts its decode pool.
func (f *File) Scan(opts ScanOptions) (*Scanner, error) { return newScanner(f, opts) }

// newScanner plans a streaming scan over any scanSource and starts its
// decode pool.
func newScanner(src scanSource, opts ScanOptions) (*Scanner, error) {
	cols, schema, err := resolveProjection(src, opts.Columns)
	if err != nil {
		return nil, err
	}
	v := src.View()
	batchRows := opts.BatchRows
	if batchRows <= 0 {
		batchRows = DefaultScanBatchRows
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxScanWorkers {
		workers = maxScanWorkers
	}
	lo, hi := uint64(0), v.NumRows()
	if r := opts.Range; r != nil {
		if r.Lo > r.Hi || r.Hi > v.NumRows() {
			return nil, fmt.Errorf("core: scan range [%d,%d) out of [0,%d]", r.Lo, r.Hi, v.NumRows())
		}
		lo, hi = r.Lo, r.Hi
	}
	filters, err := resolveFilters(src, opts.Filters)
	if err != nil {
		return nil, err
	}

	gap := int64(opts.CoalesceGap)
	if opts.CoalesceGap == 0 {
		gap = DefaultCoalesceGap
	} else if gap < 0 {
		gap = 0
	}
	s := &Scanner{
		src:      src,
		cols:     cols,
		schema:   schema,
		workers:  workers,
		coalesce: !opts.DisableCoalesce,
		gap:      gap,
		// Only the coalesced decode path implements decode-into, so
		// recycling is pointless (and would silently drop recycled
		// storage) without it.
		reuseOn:     opts.ReuseBatches && !opts.DisableCoalesce,
		poolRunBufs: !projectionAliases(schema.Fields),
		pending:     map[int]*scanSlot{},
		stop:        make(chan struct{}),
	}
	// Whole-file pruning first: when the footer's file-level stats or
	// blooms prove the filters cannot match anywhere, no batch is planned
	// and no page statistic is ever consulted.
	fileExcluded := fileExcludedByFilters(src, filters)
	for b := lo; b < hi; b += uint64(batchRows) {
		span := rowSpan{b, min(b+uint64(batchRows), hi)}
		if fileExcluded || s.pruneBatch(span, filters) {
			s.batchesSkip++
			for _, ci := range cols {
				s.pagesSkipped += int64(countPagesInSpan(src, ci, span))
			}
			continue
		}
		s.batches = append(s.batches, span)
	}
	s.start()
	return s, nil
}

// resolveProjection maps names to column indices (empty = all columns).
func resolveProjection(src scanSource, names []string) ([]int, *Schema, error) {
	var cols []int
	if len(names) == 0 {
		cols = make([]int, src.View().NumColumns())
		for i := range cols {
			cols[i] = i
		}
	} else {
		cols = make([]int, len(names))
		for i, name := range names {
			ci, ok := src.LookupColumn(name)
			if !ok {
				return nil, nil, fmt.Errorf("core: no column %q", name)
			}
			cols[i] = ci
		}
	}
	fields := make([]Field, len(cols))
	for i, ci := range cols {
		fields[i] = src.FieldByIndex(ci)
	}
	return cols, &Schema{Fields: fields}, nil
}

type boundFilter struct {
	col        int
	min, max   *int64
	fmin, fmax *float64
	// hashes are the pre-computed BloomHash values of ValueIn (nil when
	// the filter carries no membership set).
	hashes []uint64
}

// Validate checks the filter's internal consistency (column existence is
// the scan planner's job — core and the dataset layer resolve names
// against different schemas). Both layers call this before planning.
func (cf *ColumnFilter) Validate() error {
	if cf.Min != nil && cf.Max != nil && *cf.Min > *cf.Max {
		return fmt.Errorf("filter on %q has min %d > max %d", cf.Column, *cf.Min, *cf.Max)
	}
	if cf.FloatMin != nil && cf.FloatMax != nil && *cf.FloatMin > *cf.FloatMax {
		return fmt.Errorf("filter on %q has float min %v > max %v", cf.Column, *cf.FloatMin, *cf.FloatMax)
	}
	return nil
}

// filterHashes pre-hashes a membership set once per scan.
func filterHashes(values [][]byte) []uint64 {
	if len(values) == 0 {
		return nil
	}
	hs := make([]uint64, len(values))
	for i, v := range values {
		hs[i] = enc.BloomHash(v)
	}
	return hs
}

func resolveFilters(src scanSource, fs []ColumnFilter) ([]boundFilter, error) {
	out := make([]boundFilter, 0, len(fs))
	for _, cf := range fs {
		ci, ok := src.LookupColumn(cf.Column)
		if !ok {
			return nil, fmt.Errorf("core: no column %q", cf.Column)
		}
		if err := cf.Validate(); err != nil {
			return nil, fmt.Errorf("core: %v", err)
		}
		out = append(out, boundFilter{
			col: ci, min: cf.Min, max: cf.Max, fmin: cf.FloatMin, fmax: cf.FloatMax,
			hashes: filterHashes(cf.ValueIn),
		})
	}
	return out, nil
}

// pruneBatch reports whether span can be skipped entirely: every row
// deleted, or some statistics filter excludes every overlapping page.
func (s *Scanner) pruneBatch(span rowSpan, filters []boundFilter) bool {
	if s.src.deletedInRange(span.lo, span.hi) == int(span.hi-span.lo) {
		return true
	}
	for i := range filters {
		if s.filterExcludesSpan(&filters[i], span) {
			return true
		}
	}
	return false
}

// statExcludes reports whether one zone-map entry (page- or file-level:
// both share the flag layout) proves bf's range predicates cannot match.
// Mismatched domains never exclude.
func statExcludes(bf *boundFilter, min, max int64, flags uint32) bool {
	if flags&footer.StatHasMinMax == 0 {
		return false
	}
	if flags&footer.StatFloatBits != 0 {
		if bf.fmin == nil && bf.fmax == nil {
			return false
		}
		lo, hi := statFloatBounds(min, max)
		return (bf.fmin != nil && hi < *bf.fmin) || (bf.fmax != nil && lo > *bf.fmax)
	}
	if bf.min == nil && bf.max == nil {
		return false
	}
	return (bf.min != nil && max < *bf.min) || (bf.max != nil && min > *bf.max)
}

// bloomExcludes reports whether a serialized bloom filter proves none of
// bf's membership hashes can be present. Absent or unreadable filters
// never exclude.
func bloomExcludes(bf *boundFilter, blob []byte) bool {
	if len(bf.hashes) == 0 || len(blob) == 0 {
		return false
	}
	fl, err := enc.OpenBloom(blob)
	if err != nil {
		return false
	}
	return bloomFilterExcludes(bf, fl)
}

// bloomFilterExcludes is bloomExcludes over an already-parsed filter
// (the memoized path: parse once per Footer, probe every scan).
func bloomFilterExcludes(bf *boundFilter, fl *enc.Bloom) bool {
	if len(bf.hashes) == 0 || fl == nil {
		return false
	}
	for _, h := range bf.hashes {
		if fl.ContainsHash(h) {
			return false
		}
	}
	return true
}

// filterExcludesSpan reports whether the statistics of every page of
// bf.col overlapping span prove the filter cannot match: zone maps for
// the range predicates, page blooms for the membership predicate.
func (s *Scanner) filterExcludesSpan(bf *boundFilter, span rowSpan) bool {
	excluded := true
	v := s.src.View()
	forEachPageInSpan(s.src, bf.col, span, func(p int, _, _ uint64) bool {
		st, ok := v.PageStat(p)
		if ok && statExcludes(bf, st.Min, st.Max, st.Flags) {
			return true
		}
		if bloomExcludes(bf, v.PageBloom(p)) {
			return true
		}
		excluded = false
		return false
	})
	return excluded
}

// fileExcludedByFilters is the planner's whole-file check, run before any
// batch is planned: the footer's file-level column stats and blooms
// (footer v3) can prove an entire scan empty in O(filters) without
// touching page statistics.
func fileExcludedByFilters(src scanSource, filters []boundFilter) bool {
	v := src.View()
	// *File memoizes parsed column blooms on its shared Footer; fall back
	// to a one-shot parse for sources without the memo.
	memo, _ := src.(interface{ parsedColumnBloom(c int) *enc.Bloom })
	for i := range filters {
		bf := &filters[i]
		if st, ok := v.ColumnStat(bf.col); ok && statExcludes(bf, st.Min, st.Max, st.Flags) {
			return true
		}
		if memo != nil {
			if bloomFilterExcludes(bf, memo.parsedColumnBloom(bf.col)) {
				return true
			}
		} else if bloomExcludes(bf, v.ColumnBloom(bf.col)) {
			return true
		}
	}
	return false
}

// start launches the producer and the decode pool.
func (s *Scanner) start() {
	s.tasks = make(chan scanTask)
	s.ready = make(chan *scanSlot, s.workers+1)
	s.sem = make(chan struct{}, s.workers+1)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(s.tasks)
		for i, span := range s.batches {
			select {
			case s.sem <- struct{}{}:
			case <-s.stop:
				return
			}
			slot := &scanSlot{idx: i, span: span, cols: make([]ColumnData, len(s.cols))}
			if s.coalesce {
				slot.runs = planSpanRuns(s.src, s.cols, span, s.gap)
				// Bucket each column's segments (in row = file-offset
				// order) into one shared backing array: a per-column
				// append loop would cost O(columns) allocations per batch.
				ends := make([]int, len(s.cols)+1)
				total := 0
				for _, run := range slot.runs {
					for _, seg := range run.segs {
						ends[seg.col+1]++
						total++
					}
				}
				for c := 0; c < len(s.cols); c++ {
					ends[c+1] += ends[c]
				}
				backing := make([]segRef, total)
				cursor := append([]int(nil), ends[:len(s.cols)]...)
				for _, run := range slot.runs {
					for _, seg := range run.segs {
						backing[cursor[seg.col]] = segRef{run: run, seg: seg}
						cursor[seg.col]++
					}
				}
				slot.colSegs = make([][]segRef, len(s.cols))
				for c := range slot.colSegs {
					slot.colSegs[c] = backing[ends[c]:ends[c+1]]
				}
			}
			slot.reuse = s.takeFree()
			slot.remaining.Store(int32(len(s.cols)))
			for c := range s.cols {
				select {
				case s.tasks <- scanTask{slot: slot, col: c}:
				case <-s.stop:
					return
				}
			}
		}
	}()

	for w := 0; w < s.workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for task := range s.tasks {
				var data ColumnData
				var err error
				if task.slot.colSegs != nil {
					data, err = s.decodeColumnRuns(task.slot, task.col)
				} else {
					data, err = s.decodeColumnSpan(s.cols[task.col], task.slot.span)
				}
				if err != nil {
					task.slot.setErr(err)
				} else {
					task.slot.cols[task.col] = data
				}
				if task.slot.remaining.Add(-1) == 0 {
					// All column tasks of this slot are done; no goroutine
					// can still touch its run buffers.
					releaseRuns(task.slot)
					select {
					case s.ready <- task.slot:
					case <-s.stop:
						return
					}
				}
			}
		}()
	}
}

// Next returns the next batch in file order, or io.EOF when the scan is
// exhausted. The returned batch is owned by the caller.
func (s *Scanner) Next() (*Batch, error) {
	if s.failed != nil {
		return nil, s.failed
	}
	if s.closed {
		return nil, fmt.Errorf("core: scanner closed")
	}
	for {
		if s.next >= len(s.batches) {
			return nil, io.EOF
		}
		if slot, ok := s.pending[s.next]; ok {
			delete(s.pending, s.next)
			s.next++
			<-s.sem
			if slot.err != nil {
				s.failed = slot.err
				s.shutdown()
				return nil, slot.err
			}
			s.batchesOut++
			s.rowsOut += int64(slot.cols[0].Len())
			return &Batch{Schema: s.schema, Columns: slot.cols}, nil
		}
		slot := <-s.ready
		s.pending[slot.idx] = slot
	}
}

// decodeColumnSpan reads and decodes rows [span.lo, span.hi) of column ci,
// filtering deleted rows. Pages of one column chunk are physically
// contiguous, so each overlapping per-group run costs one ReadAt.
func (s *Scanner) decodeColumnSpan(ci int, span rowSpan) (ColumnData, error) {
	src := s.src
	v := src.View()
	field := src.FieldByIndex(ci)
	var out ColumnData

	// Collect maximal runs of index-adjacent pages; global pages are laid
	// out densely, so index adjacency is byte adjacency and each run costs
	// one ReadAt. Within a group a column's pages are adjacent; across
	// groups the column's next chunk starts a fresh run.
	type pageRun struct {
		first, last   int // global page indices, inclusive
		firstRowStart uint64
	}
	var runs []pageRun
	forEachPageInSpan(src, ci, span, func(p int, rowLo, _ uint64) bool {
		if n := len(runs); n > 0 && runs[n-1].last == p-1 {
			runs[n-1].last = p
			return true
		}
		runs = append(runs, pageRun{first: p, last: p, firstRowStart: rowLo})
		return true
	})

	for _, run := range runs {
		off := int64(v.PageOffset(run.first))
		_, end := src.pageByteRange(run.last)
		buf := make([]byte, end-off)
		if _, err := src.readAt(buf, off); err != nil {
			return nil, fmt.Errorf("core: reading pages %d-%d of column %q: %w",
				run.first, run.last, field.Name, err)
		}
		s.readOps.Add(1)
		s.bytesRead.Add(int64(len(buf)))
		rowStart := run.firstRowStart
		for p := run.first; p <= run.last; p++ {
			pOff, pEnd := src.pageByteRange(p)
			logical := v.PageRows(p)
			data, err := decodePage(field, buf[pOff-off:pEnd-off], logical)
			if err != nil {
				return nil, fmt.Errorf("core: decoding page %d of column %q: %w", p, field.Name, err)
			}
			s.pagesDecoded.Add(1)
			rowEnd := rowStart + uint64(logical)

			// Clip to the span, then drop deleted rows (only when any
			// exist — the common clean page is appended as-is).
			clipLo, clipHi := 0, logical
			if rowStart < span.lo {
				clipLo = int(span.lo - rowStart)
			}
			if rowEnd > span.hi {
				clipHi = logical - int(rowEnd-span.hi)
			}
			if clipLo != 0 || clipHi != logical {
				data = sliceColumn(data, clipLo, clipHi)
			}
			clipStart := rowStart + uint64(clipLo)
			if src.deletedInRange(clipStart, rowStart+uint64(clipHi)) > 0 {
				data = filterDeleted(data, v, clipStart, clipHi-clipLo)
			}
			out = appendColumn(out, data)
			rowStart = rowEnd
		}
	}
	if out == nil {
		out = emptyColumn(field)
	}
	return out, nil
}

// projectionAliases reports whether any projected column's decoded values
// can alias the encoded page bytes (byte-string decoding is zero-copy out
// of the read buffer). When true, run buffers must live as long as the
// batches referencing them and cannot be pooled.
func projectionAliases(fields []Field) bool {
	for _, f := range fields {
		switch f.Type.Kind {
		case Binary, String:
			return true
		case List:
			if f.Type.Elem == Binary {
				return true
			}
		}
	}
	return false
}

// fetchRun reads a planned run's bytes exactly once; concurrent column
// tasks needing the same run block on the first fetch (they would be
// blocked on their own I/O otherwise). The buffer comes from the run pool
// unless a projected column would alias it.
func (s *Scanner) fetchRun(r *spanRun) error {
	r.fetchOnce.Do(func() {
		n := int(r.end - r.off)
		if s.poolRunBufs {
			r.bufP = getRunBuf(n)
			r.buf = *r.bufP
		} else {
			r.buf = make([]byte, n)
		}
		if _, err := s.src.readAt(r.buf, r.off); err != nil {
			r.err = fmt.Errorf("core: coalesced read [%d,%d): %w", r.off, r.end, err)
			if r.bufP != nil {
				putRunBuf(r.bufP)
				r.bufP, r.buf = nil, nil
			}
			return
		}
		s.readOps.Add(1)
		s.bytesRead.Add(int64(n))
		if len(r.segs) > 1 {
			s.coalescedB.Add(int64(n))
		}
		s.wastedB.Add(r.wasted)
	})
	return r.err
}

// releaseRuns returns a completed slot's pooled run buffers. Called by the
// worker that finishes the slot's last column task, so no other goroutine
// can still slice the buffers.
func releaseRuns(slot *scanSlot) {
	for _, r := range slot.runs {
		if r.bufP != nil {
			putRunBuf(r.bufP)
			r.bufP, r.buf = nil, nil
		}
	}
}

// decodeColumnRuns decodes projected column pos of a coalesced slot from
// its planned run buffers. Fixed-width columns decode straight into the
// output slice (recycled from ScanOptions.ReuseBatches when available):
// pages fully inside the span with no deletions — every page, when batches
// are page-aligned — cost zero allocations. Variable-width columns fall
// back to per-page decoding but still share the coalesced reads.
func (s *Scanner) decodeColumnRuns(slot *scanSlot, pos int) (ColumnData, error) {
	ci := s.cols[pos]
	field := s.src.FieldByIndex(ci)
	segs := slot.colSegs[pos]
	var reuse ColumnData
	if slot.reuse != nil {
		reuse = slot.reuse[pos]
	}
	switch {
	case field.Nullable && field.Type.Kind == Int64:
		return s.decodeNullableRuns(slot, field, segs, reuse)
	case field.Type.Kind == Int64 || field.Type.Kind == Int32:
		var prev Int64Data
		if r, ok := reuse.(Int64Data); ok {
			prev = r
		}
		out, err := decodeFixedRuns(s, slot, field, segs, prev,
			func(dst []int64, payload []byte) error {
				_, err := enc.DecodeIntsInto(dst, payload)
				return err
			})
		if err != nil {
			return nil, err
		}
		return Int64Data(out), nil
	case field.Type.Kind == Float64:
		var prev Float64Data
		if r, ok := reuse.(Float64Data); ok {
			prev = r
		}
		out, err := decodeFixedRuns(s, slot, field, segs, prev,
			func(dst []float64, payload []byte) error {
				_, err := enc.DecodeFloatsInto(dst, payload)
				return err
			})
		if err != nil {
			return nil, err
		}
		return Float64Data(out), nil
	case field.Type.Kind == Float32:
		var prev Float32Data
		if r, ok := reuse.(Float32Data); ok {
			prev = r
		}
		qf := field.Type.Quant
		out, err := decodeFixedRuns(s, slot, field, segs, prev,
			func(dst []float32, payload []byte) error {
				bp := getPageInts(len(dst))
				defer putPageInts(bp)
				bits, err := enc.DecodeIntsInto(*bp, payload)
				if err != nil {
					return err
				}
				_, err = quant.DequantizeInto(dst, bits, qf)
				return err
			})
		if err != nil {
			return nil, err
		}
		return Float32Data(out), nil
	case field.Type.Kind == Bool:
		var prev BoolData
		if r, ok := reuse.(BoolData); ok {
			prev = r
		}
		out, err := decodeFixedRuns(s, slot, field, segs, prev,
			func(dst []bool, payload []byte) error {
				_, err := enc.DecodeBoolsInto(dst, payload)
				return err
			})
		if err != nil {
			return nil, err
		}
		return BoolData(out), nil
	default:
		return s.decodeGenericRuns(slot, field, segs)
	}
}

// decodeFixedRuns assembles one fixed-width column of a span from its run
// segments, decoding each page into place with dec. prev, when large
// enough, is reused as the output storage.
func decodeFixedRuns[T any](s *Scanner, slot *scanSlot, field Field, segs []segRef, prev []T, dec func([]T, []byte) error) ([]T, error) {
	span := slot.span
	want := int(span.hi - span.lo)
	var out []T
	if cap(prev) >= want {
		out = prev[:want]
	} else {
		out = make([]T, want)
	}
	f := s.src
	v := f.View()
	pos := 0
	for _, sr := range segs {
		if err := s.fetchRun(sr.run); err != nil {
			return nil, err
		}
		rowStart := sr.seg.firstRowStart
		for p := sr.seg.first; p <= sr.seg.last; p++ {
			pOff, pEnd := f.pageByteRange(p)
			payload := sr.run.buf[pOff-sr.run.off : pEnd-sr.run.off]
			logical := v.PageRows(p)
			rowEnd := rowStart + uint64(logical)
			clipLo, clipHi := 0, logical
			if rowStart < span.lo {
				clipLo = int(span.lo - rowStart)
			}
			if rowEnd > span.hi {
				clipHi = logical - int(rowEnd-span.hi)
			}
			nDel := f.deletedInRange(rowStart+uint64(clipLo), rowStart+uint64(clipHi))
			if clipLo == 0 && clipHi == logical && nDel == 0 {
				// The common aligned clean page: decode into place.
				if err := dec(out[pos:pos+logical], payload); err != nil {
					return nil, fmt.Errorf("core: decoding page %d of column %q: %w", p, field.Name, err)
				}
				pos += logical
			} else {
				stage := make([]T, logical)
				if err := dec(stage, payload); err != nil {
					return nil, fmt.Errorf("core: decoding page %d of column %q: %w", p, field.Name, err)
				}
				if nDel == 0 {
					pos += copy(out[pos:], stage[clipLo:clipHi])
				} else {
					for i := clipLo; i < clipHi; i++ {
						if !v.RowDeleted(rowStart + uint64(i)) {
							out[pos] = stage[i]
							pos++
						}
					}
				}
			}
			s.pagesDecoded.Add(1)
			rowStart = rowEnd
		}
	}
	return out[:pos], nil
}

// decodeNullableRuns is decodeFixedRuns for nullable int64 columns, which
// carry a values slice and a validity slice.
func (s *Scanner) decodeNullableRuns(slot *scanSlot, field Field, segs []segRef, reuse ColumnData) (ColumnData, error) {
	span := slot.span
	want := int(span.hi - span.lo)
	var vals []int64
	var valid []bool
	if prev, ok := reuse.(NullableInt64Data); ok && cap(prev.Values) >= want && cap(prev.Valid) >= want {
		vals, valid = prev.Values[:want], prev.Valid[:want]
	} else {
		vals, valid = make([]int64, want), make([]bool, want)
	}
	f := s.src
	v := f.View()
	pos := 0
	for _, sr := range segs {
		if err := s.fetchRun(sr.run); err != nil {
			return nil, err
		}
		rowStart := sr.seg.firstRowStart
		for p := sr.seg.first; p <= sr.seg.last; p++ {
			pOff, pEnd := f.pageByteRange(p)
			payload := sr.run.buf[pOff-sr.run.off : pEnd-sr.run.off]
			logical := v.PageRows(p)
			rowEnd := rowStart + uint64(logical)
			clipLo, clipHi := 0, logical
			if rowStart < span.lo {
				clipLo = int(span.lo - rowStart)
			}
			if rowEnd > span.hi {
				clipHi = logical - int(rowEnd-span.hi)
			}
			nDel := f.deletedInRange(rowStart+uint64(clipLo), rowStart+uint64(clipHi))
			if clipLo == 0 && clipHi == logical && nDel == 0 {
				if err := enc.DecodeNullableIntsInto(vals[pos:pos+logical], valid[pos:pos+logical], payload); err != nil {
					return nil, fmt.Errorf("core: decoding page %d of column %q: %w", p, field.Name, err)
				}
				pos += logical
			} else {
				sv := make([]int64, logical)
				sb := make([]bool, logical)
				if err := enc.DecodeNullableIntsInto(sv, sb, payload); err != nil {
					return nil, fmt.Errorf("core: decoding page %d of column %q: %w", p, field.Name, err)
				}
				for i := clipLo; i < clipHi; i++ {
					if nDel == 0 || !v.RowDeleted(rowStart+uint64(i)) {
						vals[pos], valid[pos] = sv[i], sb[i]
						pos++
					}
				}
			}
			s.pagesDecoded.Add(1)
			rowStart = rowEnd
		}
	}
	return NullableInt64Data{Values: vals[:pos], Valid: valid[:pos]}, nil
}

// decodeGenericRuns handles variable-width columns (byte strings, lists,
// sparse sequences): per-page decoding as on the uncoalesced path, but
// slicing payloads out of the shared run buffers.
func (s *Scanner) decodeGenericRuns(slot *scanSlot, field Field, segs []segRef) (ColumnData, error) {
	span := slot.span
	f := s.src
	v := f.View()
	var out ColumnData
	for _, sr := range segs {
		if err := s.fetchRun(sr.run); err != nil {
			return nil, err
		}
		rowStart := sr.seg.firstRowStart
		for p := sr.seg.first; p <= sr.seg.last; p++ {
			pOff, pEnd := f.pageByteRange(p)
			payload := sr.run.buf[pOff-sr.run.off : pEnd-sr.run.off]
			logical := v.PageRows(p)
			data, err := decodePage(field, payload, logical)
			if err != nil {
				return nil, fmt.Errorf("core: decoding page %d of column %q: %w", p, field.Name, err)
			}
			s.pagesDecoded.Add(1)
			rowEnd := rowStart + uint64(logical)
			clipLo, clipHi := 0, logical
			if rowStart < span.lo {
				clipLo = int(span.lo - rowStart)
			}
			if rowEnd > span.hi {
				clipHi = logical - int(rowEnd-span.hi)
			}
			if clipLo != 0 || clipHi != logical {
				data = sliceColumn(data, clipLo, clipHi)
			}
			clipStart := rowStart + uint64(clipLo)
			if f.deletedInRange(clipStart, rowStart+uint64(clipHi)) > 0 {
				data = filterDeleted(data, v, clipStart, clipHi-clipLo)
			}
			out = appendColumn(out, data)
			rowStart = rowEnd
		}
	}
	if out == nil {
		out = emptyColumn(field)
	}
	return out, nil
}

// Recycle returns a finished batch's column storage to the scanner so
// later batches can decode into it (ScanOptions.ReuseBatches). The batch
// must have been returned by this scanner's Next and must not be read
// afterwards. Recycle is safe to call concurrently with Next. Without
// ReuseBatches it is a no-op.
func (s *Scanner) Recycle(b *Batch) {
	if !s.reuseOn || b == nil || len(b.Columns) != len(s.cols) {
		return
	}
	s.freeMu.Lock()
	s.free = append(s.free, b.Columns)
	s.freeMu.Unlock()
}

// takeFree pops a recycled column set, or nil.
func (s *Scanner) takeFree() []ColumnData {
	if !s.reuseOn {
		return nil
	}
	s.freeMu.Lock()
	defer s.freeMu.Unlock()
	if n := len(s.free); n > 0 {
		set := s.free[n-1]
		s.free = s.free[:n-1]
		return set
	}
	return nil
}

// Stats returns a snapshot of the scan's physical work so far.
func (s *Scanner) Stats() ScanStats {
	return ScanStats{
		BytesRead:      s.bytesRead.Load(),
		PagesDecoded:   s.pagesDecoded.Load(),
		PagesSkipped:   s.pagesSkipped,
		BatchesEmitted: s.batchesOut,
		BatchesSkipped: s.batchesSkip,
		RowsEmitted:    s.rowsOut,
		ReadOps:        s.readOps.Load(),
		CoalescedBytes: s.coalescedB.Load(),
		WastedBytes:    s.wastedB.Load(),
	}
}

// NumBatches returns the number of batches the scan will emit (after
// range, deletion, and zone-map pruning).
func (s *Scanner) NumBatches() int { return len(s.batches) }

// Schema returns the projected schema, in output column order.
func (s *Scanner) Schema() *Schema { return s.schema }

// Close stops the decode pool. It is safe to call Close more than once,
// and after a scan has returned io.EOF or an error.
func (s *Scanner) Close() error {
	if !s.closed {
		s.closed = true
		s.shutdown()
	}
	return nil
}

func (s *Scanner) shutdown() {
	s.stopOnce.Do(func() {
		close(s.stop)
		// Drain ready so no worker stays blocked on a full channel.
		go func() {
			for range s.ready {
			}
		}()
		s.wg.Wait()
		close(s.ready)
	})
}
