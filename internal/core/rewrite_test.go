package core

import (
	"math/rand"
	"os"
	"reflect"
	"testing"
)

// These tests pin the compaction primitive the dataset layer builds on:
// RewriteWithoutRows must produce a file whose scan output is exactly the
// original's live rows minus the dropped set, and the rewritten file must
// behave identically under the coalesced and per-column scan paths.

// liveMinus returns the original columns restricted to rows not in
// deleted and not in dropped (all indices in the original row space).
func liveMinus(cols []ColumnData, n int, deleted, dropped []uint64) []ColumnData {
	skip := map[uint64]bool{}
	for _, r := range deleted {
		skip[r] = true
	}
	for _, r := range dropped {
		skip[r] = true
	}
	keep := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !skip[uint64(i)] {
			keep = append(keep, i)
		}
	}
	out := make([]ColumnData, len(cols))
	for i, c := range cols {
		out[i] = permuteColumn(c, keep)
	}
	return out
}

// rewriteAndReopen runs RewriteWithoutRows and opens the result.
func rewriteAndReopen(t *testing.T, f *File, drop []uint64, opts *Options) *File {
	t.Helper()
	out := &memFile{}
	if _, err := f.RewriteWithoutRows(out, drop, opts); err != nil {
		t.Fatal(err)
	}
	rf, err := Open(out, out.Size())
	if err != nil {
		t.Fatal(err)
	}
	return rf
}

// scanColumns drains a full scan with the given options into one
// concatenated column set.
func scanColumns(t *testing.T, f *File, opts ScanOptions) []ColumnData {
	t.Helper()
	sc, err := f.Scan(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	return drainScanner(t, sc)
}

// TestRewriteWithoutRowsScanRoundTrip: deletion-vector deletes plus an
// explicit drop set, rewritten, reopened, and scanned through the
// coalesced planner — the output must equal the original scan minus every
// removed row, for every column type.
func TestRewriteWithoutRowsScanRoundTrip(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(77))
	const n = 5000
	batch := testBatch(t, schema, rng, n)
	opts := &Options{RowsPerPage: 256, GroupRows: 1500, Compliance: Level1}
	mf, f := writeTestFile(t, schema, batch, opts)

	// Mark a scattered set deleted (vector-only at Level 1), then drop a
	// second set at rewrite time — including overlaps, which must not
	// double-remove.
	deleted := []uint64{0, 1, 255, 256, 1499, 1500, 2999, 4999}
	if err := f.DeleteRows(mf, deleted); err != nil {
		t.Fatal(err)
	}
	var dropped []uint64
	for r := uint64(700); r < 900; r++ {
		dropped = append(dropped, r)
	}
	dropped = append(dropped, 255, 3000, 4998) // 255 overlaps the deleted set

	// Expected rows come from scanning the original file before any
	// deletion, restricted to the surviving row ids.
	_, clean := writeTestFile(t, schema, batch, opts)
	original := scanColumns(t, clean, ScanOptions{BatchRows: 1024})
	want := liveMinus(original, n, deleted, dropped)

	rf := rewriteAndReopen(t, f, dropped, opts)
	if got, wantRows := rf.NumRows(), uint64(n-len(deleted)-len(dropped)+1); got != wantRows {
		t.Fatalf("rewritten file has %d rows, want %d", got, wantRows)
	}

	for _, batchRows := range []int{256, 1024, 100000} {
		coalesced := scanColumns(t, rf, ScanOptions{BatchRows: batchRows})
		for i := range want {
			if !reflect.DeepEqual(coalesced[i], want[i]) {
				t.Errorf("b%d: column %q differs from original-minus-removed",
					batchRows, schema.Fields[i].Name)
			}
		}
	}

	// The rewritten file must be batch-for-batch identical across the
	// coalesced and per-column scan paths (including page-misaligned
	// batches).
	scanBatchEquivalence(t, rf, 300)
}

// scanBatchEquivalence compares a coalesced and an uncoalesced scan of f
// batch by batch.
func scanBatchEquivalence(t *testing.T, f *File, batchRows int) {
	t.Helper()
	a, err := f.Scan(ScanOptions{BatchRows: batchRows})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := f.Scan(ScanOptions{BatchRows: batchRows, DisableCoalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; ; i++ {
		ba, errA := a.Next()
		bb, errB := b.Next()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("batch %d: coalesced err %v, uncoalesced err %v", i, errA, errB)
		}
		if errA != nil {
			return
		}
		if !reflect.DeepEqual(ba.Columns, bb.Columns) {
			t.Fatalf("batch %d differs between coalesced and per-column paths", i)
		}
	}
}

// TestGoldenRewriteWithoutRowsRoundTrip runs the same round-trip over the
// committed golden file: rewriting the pinned format, reopening, and
// coalesced-scanning must reproduce the golden table minus the dropped
// rows.
func TestGoldenRewriteWithoutRowsRoundTrip(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s (run with -update to regenerate): %v", goldenPath, err)
	}
	mf := &memFile{data: data}
	f, err := Open(mf, mf.Size())
	if err != nil {
		t.Fatal(err)
	}
	n := int(f.NumRows())

	original := scanColumns(t, f, ScanOptions{BatchRows: 1024})
	dropped := []uint64{0, 7, 255, 256, 999, 1000, 1001, 2000, uint64(n - 1)}

	schema, _, opts := goldenTable(t)
	rf := rewriteAndReopen(t, f, dropped, opts)
	if got := rf.NumRows(); got != uint64(n-len(dropped)) {
		t.Fatalf("rewritten golden has %d rows, want %d", got, n-len(dropped))
	}
	want := liveMinus(original, n, nil, dropped)
	got := scanColumns(t, rf, ScanOptions{BatchRows: 700}) // misaligned with 256-row pages
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("golden column %q differs after rewrite round-trip", schema.Fields[i].Name)
		}
	}
	scanBatchEquivalence(t, rf, 256)

	// The rewrite must also leave a verifiable checksum tree.
	if err := rf.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}
