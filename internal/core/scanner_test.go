package core

import (
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"bullion/internal/footer"
)

// drainScanner collects every batch of a scan into one concatenated
// column set.
func drainScanner(t *testing.T, sc *Scanner) []ColumnData {
	t.Helper()
	var out []ColumnData
	for {
		batch, err := sc.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			out = make([]ColumnData, len(batch.Columns))
		}
		for i, c := range batch.Columns {
			out[i] = appendColumn(out[i], c)
		}
	}
}

// scanEquivalence verifies Scan output matches Project for the given
// options, across every column of the full-type test schema.
func scanEquivalence(t *testing.T, workers, batchRows int) {
	t.Helper()
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(41))
	batch := testBatch(t, schema, rng, 5000)
	_, f := writeTestFile(t, schema, batch, &Options{RowsPerPage: 256, GroupRows: 1500, Compliance: Level1})

	names := make([]string, len(schema.Fields))
	for i, fd := range schema.Fields {
		names[i] = fd.Name
	}
	want, err := f.Project(names...)
	if err != nil {
		t.Fatal(err)
	}

	sc, err := f.Scan(ScanOptions{Columns: names, Workers: workers, BatchRows: batchRows})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	got := drainScanner(t, sc)
	for i := range want.Columns {
		if !reflect.DeepEqual(got[i], want.Columns[i]) {
			t.Errorf("workers=%d batch=%d: column %q differs from Project",
				workers, batchRows, names[i])
		}
	}
}

func TestScanMatchesProject(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		for _, batchRows := range []int{97, 256, 1024, 100000} {
			t.Run(fmt.Sprintf("w%d_b%d", workers, batchRows), func(t *testing.T) {
				scanEquivalence(t, workers, batchRows)
			})
		}
	}
}

func TestScanDefaultsAllColumns(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(5))
	batch := testBatch(t, schema, rng, 1200)
	_, f := writeTestFile(t, schema, batch, nil)

	sc, err := f.Scan(ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if got := len(sc.Schema().Fields); got != len(schema.Fields) {
		t.Fatalf("default projection has %d fields, want %d", got, len(schema.Fields))
	}
	got := drainScanner(t, sc)
	if got[0].Len() != 1200 {
		t.Fatalf("scanned %d rows, want 1200", got[0].Len())
	}
	st := sc.Stats()
	if st.RowsEmitted != 1200 || st.BatchesEmitted == 0 || st.BytesRead == 0 || st.PagesDecoded == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

func TestScanRange(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(17))
	batch := testBatch(t, schema, rng, 4000)
	_, f := writeTestFile(t, schema, batch, &Options{RowsPerPage: 128, GroupRows: 1024, Compliance: Level1})

	lo, hi := uint64(300), uint64(2600)
	want, err := f.ReadRows(0, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.Scan(ScanOptions{Columns: []string{"uid"}, Range: &RowRange{Lo: lo, Hi: hi}, Workers: 3, BatchRows: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	got := drainScanner(t, sc)
	if !reflect.DeepEqual(got[0], want) {
		t.Fatal("ranged scan differs from ReadRows")
	}

	if _, err := f.Scan(ScanOptions{Range: &RowRange{Lo: 10, Hi: 5}}); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := f.Scan(ScanOptions{Range: &RowRange{Lo: 0, Hi: 4001}}); err == nil {
		t.Fatal("out-of-bounds range accepted")
	}
	if _, err := f.Scan(ScanOptions{Columns: []string{"nope"}}); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := f.Scan(ScanOptions{Filters: []ColumnFilter{{Column: "nope"}}}); err == nil {
		t.Fatal("unknown filter column accepted")
	}
}

// TestScanZoneMapPruning writes a uid column that increases monotonically,
// so page min/max zone maps make out-of-band filters prune every batch.
func TestScanZoneMapPruning(t *testing.T) {
	schema, err := NewSchema(
		Field{Name: "uid", Type: Type{Kind: Int64}},
		Field{Name: "payload", Type: Type{Kind: Int64}},
	)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8192
	uid := make(Int64Data, n)
	payload := make(Int64Data, n)
	for i := range uid {
		uid[i] = int64(i)
		payload[i] = int64(i) * 3
	}
	b, err := NewBatch(schema, []ColumnData{uid, payload})
	if err != nil {
		t.Fatal(err)
	}
	_, f := writeTestFile(t, schema, b, &Options{RowsPerPage: 512, GroupRows: 4096, Compliance: Level1})

	lo, hi := int64(6000), int64(6500)
	sc, err := f.Scan(ScanOptions{
		BatchRows: 512,
		Filters:   []ColumnFilter{{Column: "uid", Min: &lo, Max: &hi}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	got := drainScanner(t, sc)
	st := sc.Stats()
	if st.BatchesSkipped == 0 || st.PagesSkipped == 0 {
		t.Fatalf("expected zone-map pruning, stats: %+v", st)
	}
	// Every row in [6000, 6500] must survive (pruning is conservative).
	seen := map[int64]bool{}
	for _, v := range got[0].(Int64Data) {
		seen[v] = true
	}
	for v := lo; v <= hi; v++ {
		if !seen[v] {
			t.Fatalf("row with uid=%d pruned away", v)
		}
	}
	// With 512-row batches aligned to 512-row pages, exactly one page per
	// column survives per overlapping batch: rows 6000..6500 span batches
	// [5632,6144) and [6144,6656), i.e. 2 of 16 batches.
	if st.BatchesEmitted != 2 {
		t.Fatalf("emitted %d batches, want 2: %+v", st.BatchesEmitted, st)
	}

	// A filter below every uid prunes the whole scan before any I/O.
	none := int64(-5)
	sc2, err := f.Scan(ScanOptions{Filters: []ColumnFilter{{Column: "uid", Max: &none}}})
	if err != nil {
		t.Fatal(err)
	}
	defer sc2.Close()
	if _, err := sc2.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if st := sc2.Stats(); st.BytesRead != 0 {
		t.Fatalf("fully pruned scan read %d bytes", st.BytesRead)
	}

	// Filters on columns without zone maps (float64) must not prune.
	schema2, _ := NewSchema(Field{Name: "score", Type: Type{Kind: Float64}})
	score := make(Float64Data, 100)
	b2, _ := NewBatch(schema2, []ColumnData{score})
	_, f2 := writeTestFile(t, schema2, b2, nil)
	big := int64(1 << 40)
	sc3, err := f2.Scan(ScanOptions{Filters: []ColumnFilter{{Column: "score", Min: &big}}})
	if err != nil {
		t.Fatal(err)
	}
	defer sc3.Close()
	if got := drainScanner(t, sc3); got[0].Len() != 100 {
		t.Fatalf("statless column pruned: %d rows", got[0].Len())
	}
}

// TestScanSkipsDeletedBatches deletes a dense row region and checks the
// scan never reads its pages, while the remaining rows match Project.
func TestScanSkipsDeletedBatches(t *testing.T) {
	schema := deleteSchema(t)
	batch := deleteBatch(t, schema, 6000)
	mf, f := writeTestFile(t, schema, batch, &Options{RowsPerPage: 250, GroupRows: 2000, Compliance: Level1})

	rows := make([]uint64, 0, 2000)
	for r := uint64(2000); r < 4000; r++ {
		rows = append(rows, r)
	}
	if err := f.DeleteRows(mf, rows); err != nil {
		t.Fatal(err)
	}
	want, err := f.Project("uid")
	if err != nil {
		t.Fatal(err)
	}

	sc, err := f.Scan(ScanOptions{Columns: []string{"uid"}, BatchRows: 1000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	got := drainScanner(t, sc)
	if !reflect.DeepEqual(got[0], want.Columns[0]) {
		t.Fatal("scan over deleted file differs from Project")
	}
	if st := sc.Stats(); st.BatchesSkipped != 2 {
		t.Fatalf("want 2 all-deleted batches skipped, got %+v", st)
	}
}

// TestScanConcurrent runs many scanners over one *File from parallel
// goroutines (exercised under -race in CI) without priming any caches.
func TestScanConcurrent(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(23))
	batch := testBatch(t, schema, rng, 3000)
	_, f := writeTestFile(t, schema, batch, &Options{RowsPerPage: 200, GroupRows: 1000, Compliance: Level1})

	want, err := f.Project("uid", "tag", "emb")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sc, err := f.Scan(ScanOptions{
				Columns:   []string{"uid", "tag", "emb"},
				Workers:   1 + seed%4,
				BatchRows: 300 + 77*seed,
			})
			if err != nil {
				errs <- err
				return
			}
			defer sc.Close()
			var cols []ColumnData
			for {
				b, err := sc.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					errs <- err
					return
				}
				if cols == nil {
					cols = make([]ColumnData, len(b.Columns))
				}
				for i, c := range b.Columns {
					cols[i] = appendColumn(cols[i], c)
				}
			}
			for i := range want.Columns {
				if !reflect.DeepEqual(cols[i], want.Columns[i]) {
					errs <- fmt.Errorf("goroutine %d: column %d differs", seed, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestScanCloseEarly(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(3))
	batch := testBatch(t, schema, rng, 4000)
	_, f := writeTestFile(t, schema, batch, &Options{RowsPerPage: 128, GroupRows: 1024, Compliance: Level1})

	sc, err := f.Scan(ScanOptions{Workers: 4, BatchRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Next(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
	if _, err := sc.Next(); err == nil {
		t.Fatal("Next after Close succeeded")
	}
}

func TestScanEmptyRange(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(9))
	batch := testBatch(t, schema, rng, 100)
	_, f := writeTestFile(t, schema, batch, nil)

	sc, err := f.Scan(ScanOptions{Range: &RowRange{Lo: 50, Hi: 50}})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("want io.EOF on empty range, got %v", err)
	}
}

// TestPageStatsRecorded checks the writer's zone maps directly.
func TestPageStatsRecorded(t *testing.T) {
	schema, err := NewSchema(
		Field{Name: "v", Type: Type{Kind: Int64}},
		Field{Name: "n", Type: Type{Kind: Int64}, Nullable: true},
		Field{Name: "f", Type: Type{Kind: Float64}},
	)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	v := make(Int64Data, n)
	nn := NullableInt64Data{Values: make([]int64, n), Valid: make([]bool, n)}
	fl := make(Float64Data, n)
	for i := 0; i < n; i++ {
		v[i] = int64(i) - 100
		nn.Valid[i] = i%2 == 0
		nn.Values[i] = int64(i)
		fl[i] = float64(i)
	}
	b, err := NewBatch(schema, []ColumnData{v, nn, fl})
	if err != nil {
		t.Fatal(err)
	}
	_, f := writeTestFile(t, schema, b, &Options{RowsPerPage: 500, GroupRows: 1 << 16, Compliance: Level1})

	// Page 0: column "v" rows 0..499 → [-100, 399].
	st, ok := f.PageStats(0)
	if !ok || st.Flags == 0 {
		t.Fatalf("no stats for page 0: %+v ok=%v", st, ok)
	}
	if st.Min != -100 || st.Max != 399 || st.NullCount != 0 {
		t.Fatalf("page 0 stats wrong: %+v", st)
	}
	// Pages 2,3: nullable column, 250 nulls per 500-row page.
	st2, _ := f.PageStats(2)
	if st2.NullCount != 250 || st2.Min != 0 || st2.Max != 498 {
		t.Fatalf("nullable page stats wrong: %+v", st2)
	}
	// Pages 4,5: float64 → float-bit zone maps (footer v3).
	st4, _ := f.PageStats(4)
	if st4.Flags&footer.StatFloatBits == 0 || st4.Flags&footer.StatHasMinMax == 0 {
		t.Fatalf("float page has flags %x, want float min/max", st4.Flags)
	}
	if lo, hi := statFloatBounds(st4.Min, st4.Max); lo != 0 || hi != 499 {
		t.Fatalf("float page bounds [%v,%v], want [0,499]", lo, hi)
	}
}
