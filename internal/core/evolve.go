package core

import "fmt"

// Schema evolution (paper §1: production datasets see "several hundred
// modifications monthly" — features in beta, experimental, active, and
// deprecated stages). Training jobs pin a feature projection; files
// written before a feature existed must still serve it (as default
// values), and deprecated features silently vanish from old projections
// when dropped from the requested schema.

// ProjectEvolved reads the requested fields from the file. Fields present
// in the file are read normally (their stored type must match); fields the
// file predates are materialized as default-valued columns of the
// requested type. This is the read-side half of additive schema evolution;
// dropping a feature is simply not requesting it.
func (f *File) ProjectEvolved(fields []Field) (*Batch, error) {
	nRows := int(f.NumLiveRows())
	cols := make([]ColumnData, len(fields))
	for i, want := range fields {
		ci, ok := f.LookupColumn(want.Name)
		if !ok {
			cols[i] = defaultColumn(want, nRows)
			continue
		}
		have := f.FieldByIndex(ci)
		if have.Type != want.Type || have.Nullable != want.Nullable {
			return nil, fmt.Errorf("core: column %q evolved incompatibly: stored %v (nullable=%v), requested %v (nullable=%v)",
				want.Name, have.Type, have.Nullable, want.Type, want.Nullable)
		}
		data, err := f.ReadColumnByIndex(ci)
		if err != nil {
			return nil, err
		}
		cols[i] = data
	}
	schema := &Schema{Fields: fields}
	return &Batch{Schema: schema, Columns: cols}, nil
}

// defaultColumn materializes n default-valued rows for a field the file
// predates: zero for scalars, null for nullable columns, empty for lists
// and strings.
func defaultColumn(f Field, n int) ColumnData {
	switch {
	case f.Nullable:
		return NullableInt64Data{Values: make([]int64, n), Valid: make([]bool, n)}
	case f.Type.Kind == Int64 || f.Type.Kind == Int32:
		return make(Int64Data, n)
	case f.Type.Kind == Float64:
		return make(Float64Data, n)
	case f.Type.Kind == Float32:
		return make(Float32Data, n)
	case f.Type.Kind == Bool:
		return make(BoolData, n)
	case f.Type.Kind == Binary || f.Type.Kind == String:
		return make(BytesData, n)
	case f.Type.Kind == List && f.Type.Elem == Int64:
		return make(ListInt64Data, n)
	case f.Type.Kind == List && f.Type.Elem == Float32:
		return make(ListFloat32Data, n)
	case f.Type.Kind == List && f.Type.Elem == Float64:
		return make(ListFloat64Data, n)
	case f.Type.Kind == List && f.Type.Elem == Binary:
		return make(ListBytesData, n)
	default:
		return make(ListListInt64Data, n)
	}
}
