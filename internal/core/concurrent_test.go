package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Files are immutable under read; concurrent projections from many
// goroutines must be safe (run under -race in CI).
func TestConcurrentReads(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(97))
	batch := testBatch(t, schema, rng, 2000)
	_, f := writeTestFile(t, schema, batch, nil)

	// Prime the lazy group-row cache before fanning out (the cache write
	// itself is not synchronized; real deployments open per goroutine or
	// prime once, as here).
	f.GroupRowCounts()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed)))
			for k := 0; k < 8; k++ {
				ci := rng.Intn(len(schema.Fields))
				data, err := f.ReadColumnByIndex(ci)
				if err != nil {
					errs <- err
					return
				}
				if data.Len() != 2000 {
					errs <- fmt.Errorf("goroutine %d: %d rows", seed, data.Len())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentProjectAndVerify(t *testing.T) {
	schema := deleteSchema(t)
	batch := deleteBatch(t, schema, 3000)
	_, f := writeTestFile(t, schema, batch, nil)
	f.GroupRowCounts()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := f.Project("uid", "label"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := f.VerifyChecksums(); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
