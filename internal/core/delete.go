package core

import (
	"fmt"
	"io"
	"sort"

	"bullion/internal/enc"
	"bullion/internal/footer"
	"bullion/internal/merkle"
)

// ErrPageGrew reports a Level-2 page rewrite that would exceed the page's
// original byte span, violating the paper's size-consistency criterion
// ("the post-update page dimensions do not exceed their initial size").
// Removing values shrinks every catalog encoding in practice; this error
// is the guard rail, not an expected path.
var ErrPageGrew = fmt.Errorf("core: re-encoded page exceeds original size")

// DeleteRows deletes the given global row ids according to the file's
// compliance level (§2.1):
//
//	Level 0 — unsupported; returns an error (legacy behaviour: rewrite the
//	          whole file yourself).
//	Level 1 — sets deletion-vector bits; data bytes remain on disk and are
//	          filtered at read time.
//	Level 2 — sets deletion-vector bits AND physically erases the rows by
//	          rewriting only the pages they live in, in place, padding to
//	          the original page size; the Merkle checksum path is updated
//	          incrementally (Figure 2).
//
// w must address the same bytes as the file's reader. Already-deleted rows
// are ignored. The file's in-memory view is refreshed on success.
func (f *File) DeleteRows(w io.WriterAt, rows []uint64) error {
	level := f.Compliance()
	if level == Level0 {
		return fmt.Errorf("core: file written at compliance level 0 does not support deletion")
	}
	numRows := f.view.NumRows()
	fresh := make([]uint64, 0, len(rows))
	seen := map[uint64]bool{}
	for _, r := range rows {
		if r >= numRows {
			return fmt.Errorf("core: row %d out of range [0,%d)", r, numRows)
		}
		if !f.view.RowDeleted(r) && !seen[r] {
			fresh = append(fresh, r)
			seen[r] = true
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })

	ftr, err := f.view.Materialize()
	if err != nil {
		return err
	}

	if level == Level2 {
		if err := f.eraseRows(w, ftr, fresh); err != nil {
			return err
		}
	}
	for _, r := range fresh {
		ftr.DeletionVec[r>>6] |= 1 << (r & 63)
	}
	return f.rewriteFooter(w, ftr)
}

// rowOffsetOfPage returns the row offset of page-local index p within the
// group, in rows since the group start.
func rowOffsetOfPage(f *File, g, local int) int {
	first, _ := f.view.ChunkPages(g, 0)
	off := 0
	for i := 0; i < local; i++ {
		off += f.view.PageRows(first + i)
	}
	return off
}

// eraseRows performs the Level-2 physical erasure of the given rows,
// page-locally, updating ftr's checksums in place.
func (f *File) eraseRows(w io.WriterAt, ftr *footer.Footer, fresh []uint64) error {
	// Group target rows by (group, pageInChunk).
	type pageKey struct{ group, local int }
	targets := map[pageKey][]uint64{}
	counts := f.GroupRowCounts()
	for _, r := range fresh {
		// Locate group.
		var start uint64
		g := 0
		for ; g < len(counts); g++ {
			if r < start+uint64(counts[g]) {
				break
			}
			start += uint64(counts[g])
		}
		rowInGroup := int(r - start)
		first, count := f.view.ChunkPages(g, 0)
		local, acc := 0, 0
		for p := first; p < first+count; p++ {
			pr := f.view.PageRows(p)
			if rowInGroup < acc+pr {
				break
			}
			acc += pr
			local++
		}
		targets[pageKey{g, local}] = append(targets[pageKey{g, local}], r)
	}

	// Two-phase erasure: encode and validate every replacement page first,
	// then write. A size violation therefore aborts before any byte hits
	// the file — a failed DeleteRows leaves the data region untouched.
	type pendingWrite struct {
		page    int
		off     int64
		payload []byte // padded to the page's span
		top     byte
	}
	var writes []pendingWrite

	nCols := f.view.NumColumns()
	for key, delRows := range targets {
		g, local := key.group, key.local
		groupStart := f.groupRowStart(g)
		pageRowOff := rowOffsetOfPage(f, g, local)
		for c := 0; c < nCols; c++ {
			field := f.FieldByIndex(c)
			first, count := f.view.ChunkPages(g, c)
			if local >= count {
				return fmt.Errorf("core: page %d beyond chunk (%d,%d) of %d pages", local, g, c, count)
			}
			p := first + local
			off, end := f.pageByteRange(p)
			span := int(end - off)
			payload := make([]byte, span)
			if _, err := f.r.ReadAt(payload, off); err != nil {
				return fmt.Errorf("core: reading page %d: %w", p, err)
			}
			logical := f.view.PageRows(p)
			pageStart := groupStart + uint64(pageRowOff)

			data, err := decodePage(field, payload, logical)
			if err != nil {
				return fmt.Errorf("core: decoding page %d for erasure: %w", p, err)
			}
			// Mask, don't remove: masking keeps the page's row alignment
			// (the deletion vector handles filtering) and — critically —
			// preserves the page's compressibility. Removing values from a
			// sequential column breaks its delta structure and can GROW
			// the re-encoded page; masking with a neighboring value never
			// does. This mirrors §2.1's per-encoding masking rules.
			mask := make([]int, 0, len(delRows))
			for _, r := range delRows {
				mask = append(mask, int(r-pageStart))
			}
			newData := maskColumn(data, mask)
			newPayload, scheme, err := encodePage(field, newData, f.rewriteOptions())
			if err != nil {
				return fmt.Errorf("core: re-encoding page %d: %w", p, err)
			}
			if len(newPayload) > span {
				// The cascade's sample can misjudge a masked page; retry
				// restricted to the page's original top scheme plus the
				// always-safe basics before declaring a violation.
				retryOpts := f.rewriteOptions()
				retryOpts.Enc = restrictToScheme(retryOpts.Enc, enc.SchemeID(f.view.PageCompression(p)))
				if retry, retryScheme, rerr := encodePage(field, newData, retryOpts); rerr == nil && len(retry) <= span {
					newPayload, scheme = retry, retryScheme
				} else {
					return fmt.Errorf("%w: page %d (%s): %d > %d bytes",
						ErrPageGrew, p, field.Name, len(newPayload), span)
				}
			}
			padded := make([]byte, span)
			copy(padded, newPayload)
			writes = append(writes, pendingWrite{page: p, off: off, payload: padded, top: byte(scheme)})
		}
	}

	for _, pw := range writes {
		if _, err := w.WriteAt(pw.payload, pw.off); err != nil {
			return fmt.Errorf("core: rewriting page %d: %w", pw.page, err)
		}
		ftr.Checksums[pw.page] = uint64(merkle.HashPage(pw.payload))
		ftr.PageCompression[pw.page] = pw.top
	}

	// Recompute the Merkle internal nodes from the updated leaves —
	// group hashes and root only (Figure 2's incremental path).
	nPages := f.view.NumPages()
	leaves := make([][]merkle.Hash, f.view.NumGroups())
	p := 0
	for g := range leaves {
		leaves[g] = make([]merkle.Hash, f.view.GroupPages(g))
		for i := range leaves[g] {
			leaves[g][i] = merkle.Hash(ftr.Checksums[p])
			p++
		}
	}
	tree := merkle.FromHashes(leaves)
	for g := range leaves {
		h, _ := tree.Group(g)
		ftr.Checksums[nPages+g] = uint64(h)
	}
	ftr.Checksums[nPages+f.view.NumGroups()] = uint64(tree.Root())
	return nil
}

// maskColumn physically erases the values at the given row indexes by
// overwriting each with the nearest preceding live row's value (falling
// back to the nearest following live row at a page prefix, and to row 0's
// slot if the whole page is deleted — the copy erases it anyway when any
// masked row precedes it).
//
// Copying a neighbor rather than zero-filling is deliberate: the deleted
// row's own value becomes unrecoverable (the compliance requirement) while
// the page's runs, deltas, dictionaries, and sliding windows are
// preserved, so the re-encoded page can never exceed its original size —
// the §2.1 criterion. This generalizes the paper's per-encoding masking
// rules (bitmap mask for bit-packing, reserved dictionary entry, RLE
// shrink) into one rule that is safe for every catalog encoding.
func maskColumn(c ColumnData, rows []int) ColumnData {
	n := c.Len()
	inMask := make(map[int]bool, len(rows))
	for _, r := range rows {
		inMask[r] = true
	}
	if len(inMask) >= n {
		// Whole page deleted: no live neighbor to copy; zero-fill.
		return zeroColumn(c, n)
	}
	perm := make([]int, n)
	lastLive := -1
	for i := 0; i < n; i++ {
		if !inMask[i] {
			lastLive = i
		}
		perm[i] = lastLive // -1 for a deleted prefix; fixed below
	}
	nextLive := -1
	for i := n - 1; i >= 0; i-- {
		if !inMask[i] {
			nextLive = i
		}
		if perm[i] < 0 {
			perm[i] = nextLive
		}
	}
	return permuteColumn(c, perm)
}

// zeroColumn returns an n-row column of zero values matching c's type.
func zeroColumn(c ColumnData, n int) ColumnData {
	switch c.(type) {
	case Int64Data:
		return make(Int64Data, n)
	case NullableInt64Data:
		return NullableInt64Data{Values: make([]int64, n), Valid: make([]bool, n)}
	case Float64Data:
		return make(Float64Data, n)
	case Float32Data:
		return make(Float32Data, n)
	case BoolData:
		return make(BoolData, n)
	case BytesData:
		return make(BytesData, n)
	case ListInt64Data:
		return make(ListInt64Data, n)
	case ListFloat32Data:
		return make(ListFloat32Data, n)
	case ListFloat64Data:
		return make(ListFloat64Data, n)
	case ListBytesData:
		return make(ListBytesData, n)
	case ListListInt64Data:
		return make(ListListInt64Data, n)
	}
	panic(fmt.Sprintf("core: unknown column type %T", c))
}

// restrictToScheme narrows the cascade to the given top scheme plus the
// always-available basics (needed for composite schemes' sub-streams).
func restrictToScheme(base *enc.Options, id enc.SchemeID) *enc.Options {
	c := *base
	c.Allowed = map[enc.SchemeID]bool{
		id:        true,
		enc.Plain: true, enc.BitPack: true, enc.Varint: true,
		enc.Constant: true, enc.FOR: true,
		enc.PlainF: true, enc.ConstantF: true,
		enc.PlainB: true, enc.ConstantB: true,
		enc.PlainBool: true, enc.SparseBool: true, enc.Roaring: true,
	}
	return &c
}

// rewriteOptions returns the options used when re-encoding pages during
// Level-2 erasure, always restricted to the maskable scheme subset.
func (f *File) rewriteOptions() *Options {
	opts := f.rewriteOpts
	if opts == nil {
		opts = DefaultOptions()
	}
	opts = opts.clone()
	opts.Enc = maskableEncOptions(opts.Enc)
	if opts.Sparse != nil {
		sc := *opts.Sparse
		if sc.Enc == nil {
			sc.Enc = DefaultOptions().Enc
		}
		sc.Enc = maskableEncOptions(sc.Enc)
		opts.Sparse = &sc
	}
	return opts
}

// SetRewriteOptions overrides the encoding options used for Level-2 page
// rewrites (defaults to DefaultOptions).
func (f *File) SetRewriteOptions(opts *Options) { f.rewriteOpts = opts }

// rewriteFooter marshals ftr and writes it at the original footer offset.
// All footer arrays are fixed-size for the file's geometry, so the byte
// length is guaranteed unchanged.
func (f *File) rewriteFooter(w io.WriterAt, ftr *footer.Footer) error {
	buf, err := ftr.Marshal()
	if err != nil {
		return err
	}
	if len(buf) != f.ftr.footerLen {
		return fmt.Errorf("core: footer changed size on rewrite: %d != %d", len(buf), f.ftr.footerLen)
	}
	if _, err := w.WriteAt(buf, f.ftr.footerOff); err != nil {
		return fmt.Errorf("core: rewriting footer: %w", err)
	}
	view, err := footer.OpenView(buf)
	if err != nil {
		return err
	}
	f.view = view
	return nil
}

// RewriteWithoutRows is the legacy baseline the paper contrasts against:
// copy the entire file, dropping the given rows. It reads every page and
// writes a complete new file to out, returning the new file's
// WrittenStats so commit paths (dataset compaction) can lift manifest
// entries without reopening what they just wrote. Used by the deletion
// experiment to measure the I/O cost Level 2 avoids.
func (f *File) RewriteWithoutRows(out io.Writer, rows []uint64, opts *Options) (*WrittenStats, error) {
	del := map[uint64]bool{}
	for _, r := range rows {
		del[r] = true
	}
	schema := f.Schema()
	w, err := NewWriter(out, schema, opts)
	if err != nil {
		return nil, err
	}
	// Read group by group, filter, and write.
	var rowStart uint64
	for g := 0; g < f.view.NumGroups(); g++ {
		cols := make([]ColumnData, len(schema.Fields))
		var n int
		for c := range schema.Fields {
			data, err := f.ReadChunk(g, c)
			if err != nil {
				return nil, err
			}
			cols[c] = data
			n = data.Len()
		}
		keep := make([]int, 0, n)
		// ReadChunk already filters previously-deleted rows; filter the new
		// set against the live row ids.
		live := make([]uint64, 0, n)
		groupRows := f.GroupRowCounts()[g]
		for i := 0; i < groupRows; i++ {
			if !f.view.RowDeleted(rowStart + uint64(i)) {
				live = append(live, rowStart+uint64(i))
			}
		}
		for i, lr := range live {
			if !del[lr] {
				keep = append(keep, i)
			}
		}
		for c := range cols {
			cols[c] = permuteColumn(cols[c], keep)
		}
		batch := &Batch{Schema: schema, Columns: cols}
		if err := w.Write(batch); err != nil {
			return nil, err
		}
		rowStart += uint64(groupRows)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return w.WrittenStats(), nil
}
