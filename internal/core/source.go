package core

import (
	"sort"

	"bullion/internal/footer"
)

// scanSource is the single-file engine surface a streaming scan runs
// against: one footer view over one ReaderAt with one deletion vector.
// *File is the storage-backed implementation. The Scanner and the
// coalesced read planner reach the file exclusively through this
// interface, so a scan engine is instantiated per source — the dataset
// layer (internal/dataset) runs one engine per member file of a
// multi-file table and merges the per-file streams.
type scanSource interface {
	// readAt fetches encoded bytes at a file offset.
	readAt(p []byte, off int64) (int, error)
	// View returns the footer view: page geometry, zone maps, and the
	// deletion bitmap.
	View() *footer.View
	// FieldByIndex and LookupColumn resolve the projected schema.
	FieldByIndex(c int) Field
	LookupColumn(name string) (int, bool)
	// GroupRowCounts returns logical rows per group; groupRowStart the
	// global row id of a group's first row.
	GroupRowCounts() []int
	groupRowStart(g int) uint64
	// pageByteRange returns the byte span [off, end) of global page p.
	pageByteRange(p int) (off, end int64)
	// deletedInRange counts deleted rows among global rows [lo, hi).
	deletedInRange(lo, hi uint64) int
}

// readAt implements scanSource over the file's ReaderAt.
func (f *File) readAt(p []byte, off int64) (int, error) { return f.r.ReadAt(p, off) }

// forEachPageInSpan visits the pages of column ci whose rows overlap span,
// passing the global page index and the page's global row range. The
// callback returns false to stop early.
func forEachPageInSpan(src scanSource, ci int, span rowSpan, fn func(p int, rowLo, rowHi uint64) bool) {
	counts := src.GroupRowCounts()
	v := src.View()
	// Binary-search the first group overlapping the span; it is called per
	// batch per column, so a linear walk from group 0 would make full
	// scans quadratic in the group count.
	g0 := sort.Search(len(counts), func(g int) bool {
		return src.groupRowStart(g)+uint64(counts[g]) > span.lo
	})
	for g := g0; g < v.NumGroups(); g++ {
		groupStart := src.groupRowStart(g)
		if groupStart >= span.hi {
			return
		}
		first, count := v.ChunkPages(g, ci)
		pageStart := groupStart
		for p := first; p < first+count; p++ {
			pageEnd := pageStart + uint64(v.PageRows(p))
			if pageEnd > span.lo && pageStart < span.hi {
				if !fn(p, pageStart, pageEnd) {
					return
				}
			}
			if pageEnd >= span.hi {
				return
			}
			pageStart = pageEnd
		}
	}
}

func countPagesInSpan(src scanSource, ci int, span rowSpan) int {
	n := 0
	forEachPageInSpan(src, ci, span, func(int, uint64, uint64) bool { n++; return true })
	return n
}
