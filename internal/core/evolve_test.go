package core

import (
	"math/rand"
	"testing"
)

func TestProjectEvolvedNewFeature(t *testing.T) {
	// A file written last month, before "new_feat" existed.
	schema, _ := NewSchema(
		Field{Name: "uid", Type: Type{Kind: Int64}},
		Field{Name: "score", Type: Type{Kind: Float64}},
	)
	n := 500
	uid := make(Int64Data, n)
	score := make(Float64Data, n)
	rng := rand.New(rand.NewSource(1))
	for i := range uid {
		uid[i] = int64(i)
		score[i] = rng.Float64()
	}
	batch, _ := NewBatch(schema, []ColumnData{uid, score})
	_, f := writeTestFile(t, schema, batch, nil)

	// Today's training job requests the evolved projection.
	requested := []Field{
		{Name: "uid", Type: Type{Kind: Int64}},
		{Name: "new_feat", Type: Type{Kind: List, Elem: Int64}},
		{Name: "new_flag", Type: Type{Kind: Bool}},
		{Name: "new_opt", Type: Type{Kind: Int64}, Nullable: true},
	}
	got, err := f.ProjectEvolved(requested)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != n {
		t.Fatalf("rows = %d", got.NumRows())
	}
	// Existing column reads through.
	if got.Columns[0].(Int64Data)[7] != 7 {
		t.Fatal("stored column misread")
	}
	// Missing features default: empty lists, false flags, null ints.
	lists := got.Columns[1].(ListInt64Data)
	if len(lists[0]) != 0 {
		t.Fatal("missing list feature not empty")
	}
	flags := got.Columns[2].(BoolData)
	if flags[0] {
		t.Fatal("missing bool feature not false")
	}
	opt := got.Columns[3].(NullableInt64Data)
	if opt.Valid[0] {
		t.Fatal("missing nullable feature not null")
	}
}

func TestProjectEvolvedTypeConflict(t *testing.T) {
	schema, _ := NewSchema(Field{Name: "x", Type: Type{Kind: Int64}})
	batch, _ := NewBatch(schema, []ColumnData{Int64Data{1, 2}})
	_, f := writeTestFile(t, schema, batch, nil)

	if _, err := f.ProjectEvolved([]Field{
		{Name: "x", Type: Type{Kind: Float64}},
	}); err == nil {
		t.Fatal("incompatible type evolution accepted")
	}
	if _, err := f.ProjectEvolved([]Field{
		{Name: "x", Type: Type{Kind: Int64}, Nullable: true},
	}); err == nil {
		t.Fatal("nullability change accepted")
	}
}

func TestProjectEvolvedAfterDeletion(t *testing.T) {
	mf, f, _ := writeLevel(t, Level2, 1000)
	if err := f.DeleteRows(mf, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := f.ProjectEvolved([]Field{
		{Name: "uid", Type: Type{Kind: Int64}},
		{Name: "brand_new", Type: Type{Kind: Float64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Default columns align with the filtered row count.
	if got.Columns[0].Len() != 997 || got.Columns[1].Len() != 997 {
		t.Fatalf("lens = %d, %d", got.Columns[0].Len(), got.Columns[1].Len())
	}
}
