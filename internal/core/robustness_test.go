package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bullion/internal/quant"
)

// ---- Failure injection ----

// TestCorruptedPagePayload verifies decode errors (never panics, never
// silent garbage acceptance that VerifyChecksums would miss).
func TestCorruptedPagePayload(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(51))
	batch := testBatch(t, schema, rng, 400)
	mf, f := writeTestFile(t, schema, batch, nil)

	// Corrupt bytes throughout the data region; each position must either
	// decode to an error or be caught by checksum verification. (Some
	// corruptions decode "successfully" to different values — that's what
	// the Merkle tree exists to catch.)
	dataEnd := int(f.ftr.footerOff)
	for _, pos := range []int{0, dataEnd / 4, dataEnd / 2, dataEnd - 1} {
		cp := &memFile{data: append([]byte{}, mf.data...)}
		cp.data[pos] ^= 0xA5
		f2, err := Open(cp, cp.Size())
		if err != nil {
			continue // footer-region corruption rejected at open: fine
		}
		decodeErr := false
		for c := 0; c < f2.NumColumns(); c++ {
			if _, err := f2.ReadColumnByIndex(c); err != nil {
				decodeErr = true
				break
			}
		}
		if !decodeErr {
			if err := f2.VerifyChecksums(); err == nil {
				t.Fatalf("corruption at %d neither failed decode nor checksum", pos)
			}
		}
	}
}

// TestFooterRegionCorruption flips bytes inside the footer.
func TestFooterRegionCorruption(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(52))
	batch := testBatch(t, schema, rng, 200)
	mf, f := writeTestFile(t, schema, batch, nil)

	footerStart := int(f.ftr.footerOff)
	for delta := 0; delta < 64; delta += 7 {
		cp := &memFile{data: append([]byte{}, mf.data...)}
		cp.data[footerStart+delta] ^= 0xFF
		// Must not panic; may error at open or at read.
		f2, err := Open(cp, cp.Size())
		if err != nil {
			continue
		}
		for c := 0; c < f2.NumColumns() && c < 3; c++ {
			_, _ = f2.ReadColumnByIndex(c)
		}
	}
}

// TestTruncatedMidPage verifies graceful failure for truncated data.
func TestTruncatedMidPage(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(53))
	batch := testBatch(t, schema, rng, 300)
	mf, _ := writeTestFile(t, schema, batch, nil)
	// Keep the footer (copied to the right place) but truncate page data:
	// the file claims page offsets beyond what exists.
	for _, keep := range []int{8, 64, len(mf.data) / 2} {
		trunc := append([]byte{}, mf.data[:keep]...)
		if _, err := Open(&memFile{data: trunc}, int64(len(trunc))); err == nil {
			t.Fatalf("truncation to %d bytes opened successfully", keep)
		}
	}
}

// ---- Deletion edge cases ----

func TestDeleteEveryRowInPage(t *testing.T) {
	mf, f, _ := writeLevel(t, Level2, 1000) // RowsPerPage=128
	rows := make([]uint64, 128)
	for i := range rows {
		rows[i] = uint64(128 + i) // exactly page 1 of each chunk
	}
	if err := f.DeleteRows(mf, rows); err != nil {
		t.Fatal(err)
	}
	if got := f.NumLiveRows(); got != 1000-128 {
		t.Fatalf("live rows = %d", got)
	}
	data, err := f.ReadColumn("ad_id")
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != 1000-128 {
		t.Fatalf("read %d rows", data.Len())
	}
	// The fully-deleted page is zero-filled on disk.
	raw := rawRows(t, mf, "ad_id").(Int64Data)
	for r := 128; r < 256; r++ {
		if raw[r] == 0xABCD0000+int64(r) {
			t.Fatalf("row %d survived full-page erasure", r)
		}
	}
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllRows(t *testing.T) {
	mf, f, _ := writeLevel(t, Level2, 500)
	rows := make([]uint64, 500)
	for i := range rows {
		rows[i] = uint64(i)
	}
	if err := f.DeleteRows(mf, rows); err != nil {
		t.Fatal(err)
	}
	if got := f.NumLiveRows(); got != 0 {
		t.Fatalf("live rows = %d", got)
	}
	data, err := f.ReadColumn("uid")
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != 0 {
		t.Fatalf("read %d rows from fully-deleted file", data.Len())
	}
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

// Property: for random clustered deletions, reads equal the original data
// minus the deleted rows, and checksums stay valid.
func TestDeletionSemanticsProperty(t *testing.T) {
	schema := deleteSchema(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(1500)
		batch := deleteBatch(t, schema, n)
		opts := DefaultOptions()
		opts.RowsPerPage = 64
		opts.GroupRows = 512
		opts.Compliance = Level2
		mf, file := writeTestFile(t, schema, batch, opts)

		// 1-3 clustered spans.
		del := map[uint64]bool{}
		var rows []uint64
		for s := 0; s < 1+rng.Intn(3); s++ {
			start := rng.Intn(n)
			l := 1 + rng.Intn(60)
			for i := start; i < start+l && i < n; i++ {
				if !del[uint64(i)] {
					del[uint64(i)] = true
					rows = append(rows, uint64(i))
				}
			}
		}
		if err := file.DeleteRows(mf, rows); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		got, err := file.ReadColumn("ad_id")
		if err != nil {
			return false
		}
		want := make([]int64, 0, n)
		orig := batch.Columns[1].(Int64Data)
		for i, v := range orig {
			if !del[uint64(i)] {
				want = append(want, v)
			}
		}
		g := got.(Int64Data)
		if len(g) != len(want) {
			return false
		}
		for i := range want {
			if g[i] != want[i] {
				return false
			}
		}
		return file.VerifyChecksums() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// ---- ReadRows ----

func TestReadRowsRanges(t *testing.T) {
	schema, _ := NewSchema(Field{Name: "v", Type: Type{Kind: Int64}})
	n := 3000
	vs := make(Int64Data, n)
	for i := range vs {
		vs[i] = int64(i)
	}
	batch, _ := NewBatch(schema, []ColumnData{vs})
	opts := DefaultOptions()
	opts.RowsPerPage = 100
	opts.GroupRows = 1000
	_, f := writeTestFile(t, schema, batch, opts)

	cases := []struct{ lo, hi uint64 }{
		{0, 0}, {0, 1}, {0, 100}, {50, 150}, {95, 105}, {0, 3000},
		{999, 1001}, {2999, 3000}, {1000, 2000}, {1500, 1501},
	}
	for _, c := range cases {
		data, err := f.ReadRows(0, c.lo, c.hi)
		if err != nil {
			t.Fatalf("[%d,%d): %v", c.lo, c.hi, err)
		}
		got := data.(Int64Data)
		if uint64(len(got)) != c.hi-c.lo {
			t.Fatalf("[%d,%d): %d rows", c.lo, c.hi, len(got))
		}
		for i := range got {
			if got[i] != int64(c.lo)+int64(i) {
				t.Fatalf("[%d,%d): row %d = %d", c.lo, c.hi, i, got[i])
			}
		}
	}
	if _, err := f.ReadRows(0, 5, 3); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := f.ReadRows(0, 0, 3001); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestReadRowsSkipsDeleted(t *testing.T) {
	schema, _ := NewSchema(Field{Name: "v", Type: Type{Kind: Int64}})
	n := 1000
	vs := make(Int64Data, n)
	for i := range vs {
		vs[i] = int64(i)
	}
	batch, _ := NewBatch(schema, []ColumnData{vs})
	opts := DefaultOptions()
	opts.RowsPerPage = 100
	mf, f := writeTestFile(t, schema, batch, opts)
	if err := f.DeleteRows(mf, []uint64{150, 151, 152}); err != nil {
		t.Fatal(err)
	}
	data, err := f.ReadRows(0, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	got := data.(Int64Data)
	if len(got) != 97 {
		t.Fatalf("rows = %d, want 97", len(got))
	}
	for _, v := range got {
		if v >= 150 && v <= 152 {
			t.Fatalf("deleted row %d returned", v)
		}
	}
}

// ---- Quality sorting across groups ----

func TestQualitySortPerGroup(t *testing.T) {
	schema, _ := NewSchema(
		Field{Name: "id", Type: Type{Kind: Int64}},
		Field{Name: "q", Type: Type{Kind: Float64}},
	)
	n := 5000
	rng := rand.New(rand.NewSource(3))
	ids := make(Int64Data, n)
	q := make(Float64Data, n)
	for i := range ids {
		ids[i] = int64(i)
		q[i] = rng.Float64()
	}
	batch, _ := NewBatch(schema, []ColumnData{ids, q})
	opts := DefaultOptions()
	opts.QualityColumn = "q"
	opts.GroupRows = 2000
	_, f := writeTestFile(t, schema, batch, opts)

	data, _ := f.ReadColumn("q")
	qd := data.(Float64Data)
	counts := f.GroupRowCounts()
	start := 0
	for g, cnt := range counts {
		for i := start + 1; i < start+cnt; i++ {
			if qd[i] > qd[i-1] {
				t.Fatalf("group %d not descending at row %d", g, i)
			}
		}
		start += cnt
	}
	if len(counts) != 3 {
		t.Fatalf("groups = %d, want 3", len(counts))
	}
}

// ---- Misc ----

func TestWriterAfterClose(t *testing.T) {
	schema, _ := NewSchema(Field{Name: "v", Type: Type{Kind: Int64}})
	mf := &memFile{}
	w, _ := NewWriter(mf, schema, nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	batch, _ := NewBatch(schema, []ColumnData{Int64Data{1}})
	if err := w.Write(batch); err == nil {
		t.Fatal("write after close accepted")
	}
	// Double close is a no-op.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizedFP16ListColumn(t *testing.T) {
	schema, err := NewSchema(
		Field{Name: "emb", Type: Type{Kind: List, Elem: Float32, Quant: quant.FP16}},
	)
	if err != nil {
		t.Fatal(err)
	}
	n := 200
	embs := make(ListFloat32Data, n)
	for i := range embs {
		embs[i] = []float32{0.5, -0.25, 0.125} // FP16-exact values
	}
	batch, _ := NewBatch(schema, []ColumnData{embs})
	_, f := writeTestFile(t, schema, batch, nil)
	data, err := f.ReadColumn("emb")
	if err != nil {
		t.Fatal(err)
	}
	got := data.(ListFloat32Data)
	for i := range embs {
		for j := range embs[i] {
			if got[i][j] != embs[i][j] {
				t.Fatalf("emb[%d][%d] = %v", i, j, got[i][j])
			}
		}
	}
}
