package core

import (
	"fmt"
	"math/rand"
	"testing"

	"bullion/internal/iostats"
)

// deleteSchema is a compact schema for deletion tests: a user-sorted table
// the way ads training data is laid out (§2.1-2.2).
func deleteSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Field{Name: "uid", Type: Type{Kind: Int64}},
		Field{Name: "ad_id", Type: Type{Kind: Int64}},
		Field{Name: "label", Type: Type{Kind: Float64}},
		Field{Name: "tag", Type: Type{Kind: String}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func deleteBatch(t *testing.T, schema *Schema, n int) *Batch {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	uid := make(Int64Data, n)
	adID := make(Int64Data, n)
	label := make(Float64Data, n)
	tag := make(BytesData, n)
	for i := 0; i < n; i++ {
		uid[i] = int64(i / 50) // 50 rows per user, user-sorted
		adID[i] = 0xABCD0000 + int64(i)
		label[i] = rng.Float64()
		tag[i] = []byte(fmt.Sprintf("user-%d-row-%d", uid[i], i))
	}
	b, err := NewBatch(schema, []ColumnData{uid, adID, label, tag})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func writeLevel(t *testing.T, level Level, n int) (*memFile, *File, *Batch) {
	t.Helper()
	schema := deleteSchema(t)
	batch := deleteBatch(t, schema, n)
	opts := DefaultOptions()
	opts.RowsPerPage = 128
	opts.GroupRows = 1024
	opts.Compliance = level
	mf, f := writeTestFile(t, schema, batch, opts)
	return mf, f, batch
}

// rawRows reads a column with the deletion vector cleared, exposing what
// is physically on disk at deleted slots (Level 1: original values remain;
// Level 2: masked copies).
func rawRows(t *testing.T, mf *memFile, name string) ColumnData {
	t.Helper()
	cp := &memFile{data: append([]byte{}, mf.data...)}
	f, err := Open(cp, cp.Size())
	if err != nil {
		t.Fatal(err)
	}
	ftr, err := f.View().Materialize()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ftr.DeletionVec {
		ftr.DeletionVec[i] = 0
	}
	buf, err := ftr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.WriteAt(buf, cp.Size()-8-int64(len(buf))); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(cp, cp.Size())
	if err != nil {
		t.Fatal(err)
	}
	data, err := f2.ReadColumn(name)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestLevel0RejectsDeletion(t *testing.T) {
	mf, f, _ := writeLevel(t, Level0, 500)
	if err := f.DeleteRows(mf, []uint64{1}); err == nil {
		t.Fatal("Level 0 accepted a delete")
	}
}

func TestLevel1DeletionVector(t *testing.T) {
	mf, f, batch := writeLevel(t, Level1, 2000)
	del := []uint64{0, 5, 100, 1999}
	if err := f.DeleteRows(mf, del); err != nil {
		t.Fatal(err)
	}
	if got := f.NumLiveRows(); got != 2000-4 {
		t.Fatalf("live rows = %d, want %d", got, 2000-4)
	}
	// Reads filter the deleted rows.
	data, err := f.ReadColumn("ad_id")
	if err != nil {
		t.Fatal(err)
	}
	got := data.(Int64Data)
	want := make([]int64, 0, 1996)
	delSet := map[uint64]bool{0: true, 5: true, 100: true, 1999: true}
	orig := batch.Columns[1].(Int64Data)
	for i, v := range orig {
		if !delSet[uint64(i)] {
			want = append(want, v)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d", i, got[i], want[i])
		}
	}
	// Level 1 leaves the data physically on disk: reading with the
	// deletion vector cleared still reveals the original values.
	raw := rawRows(t, mf, "tag").(BytesData)
	if string(raw[0]) != "user-0-row-0" {
		t.Fatalf("Level 1 physically altered data: row 0 tag = %q", raw[0])
	}
	// Checksums still valid (pages untouched).
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

func TestLevel2PhysicalErasure(t *testing.T) {
	mf, f, batch := writeLevel(t, Level2, 2000)

	// Delete user 3's rows: 150..199 (contiguous, page-aligned-ish).
	var del []uint64
	for r := uint64(150); r < 200; r++ {
		del = append(del, r)
	}
	if err := f.DeleteRows(mf, del); err != nil {
		t.Fatal(err)
	}

	// The deleted rows' values are physically gone: even with the deletion
	// vector cleared, the slots now hold a masked copy of a live neighbor,
	// not the original data.
	raw := rawRows(t, mf, "tag").(BytesData)
	for r := 150; r < 200; r++ {
		if string(raw[r]) == fmt.Sprintf("user-3-row-%d", r) {
			t.Fatalf("row %d tag survived Level 2 erasure", r)
		}
	}
	// Neighboring rows survive untouched.
	if string(raw[149]) != "user-2-row-149" {
		t.Fatalf("neighbor row damaged: %q", raw[149])
	}
	rawIDs := rawRows(t, mf, "ad_id").(Int64Data)
	for r := 150; r < 200; r++ {
		if rawIDs[r] == 0xABCD0000+int64(r) {
			t.Fatalf("row %d ad_id survived Level 2 erasure", r)
		}
	}

	// Reads return exactly the live rows.
	data, err := f.ReadColumn("ad_id")
	if err != nil {
		t.Fatal(err)
	}
	got := data.(Int64Data)
	orig := batch.Columns[1].(Int64Data)
	want := append(append([]int64{}, orig[:150]...), orig[200:]...)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d", i, got[i], want[i])
		}
	}

	// Merkle checksums were maintained through the in-place update.
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

func TestLevel2RepeatedDeletes(t *testing.T) {
	mf, f, batch := writeLevel(t, Level2, 1000)
	if err := f.DeleteRows(mf, []uint64{10, 11}); err != nil {
		t.Fatal(err)
	}
	if err := f.DeleteRows(mf, []uint64{12, 500}); err != nil {
		t.Fatal(err)
	}
	// Deleting already-deleted rows is a no-op.
	if err := f.DeleteRows(mf, []uint64{10, 500}); err != nil {
		t.Fatal(err)
	}
	if got := f.NumLiveRows(); got != 996 {
		t.Fatalf("live rows = %d, want 996", got)
	}
	data, err := f.ReadColumn("uid")
	if err != nil {
		t.Fatal(err)
	}
	got := data.(Int64Data)
	orig := batch.Columns[0].(Int64Data)
	var want []int64
	delSet := map[int]bool{10: true, 11: true, 12: true, 500: true}
	for i, v := range orig {
		if !delSet[i] {
			want = append(want, v)
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d", i, got[i], want[i])
		}
	}
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteOutOfRange(t *testing.T) {
	mf, f, _ := writeLevel(t, Level2, 100)
	if err := f.DeleteRows(mf, []uint64{100}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}

func TestDeleteAcrossGroups(t *testing.T) {
	mf, f, _ := writeLevel(t, Level2, 3000) // 3 groups of 1024, 1024, 952
	del := []uint64{1000, 1023, 1024, 1025, 2048, 2999}
	if err := f.DeleteRows(mf, del); err != nil {
		t.Fatal(err)
	}
	if got := f.NumLiveRows(); got != 3000-6 {
		t.Fatalf("live rows = %d", got)
	}
	data, err := f.ReadColumn("ad_id")
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != 3000-6 {
		t.Fatalf("read %d rows", data.Len())
	}
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

// The §2.1 headline: deleting a small, clustered fraction of rows in place
// writes a tiny fraction of the bytes a full rewrite would.
func TestInPlaceDeletionIOAdvantage(t *testing.T) {
	const n = 50000
	schema := deleteSchema(t)
	batch := deleteBatch(t, schema, n)
	opts := DefaultOptions()
	opts.RowsPerPage = 512
	opts.GroupRows = 1 << 14
	opts.Compliance = Level2
	mf, f := writeTestFile(t, schema, batch, opts)
	fileSize := mf.Size()

	// 2% of rows, contiguous (one user's data, as user-sorted tables give).
	var del []uint64
	for r := uint64(10000); r < uint64(10000+n/50); r++ {
		del = append(del, r)
	}

	var c iostats.Counters
	c.Reset()
	counted := &iostats.WriterAt{W: mf, C: &c}
	if err := f.DeleteRows(counted, del); err != nil {
		t.Fatal(err)
	}
	inPlaceBytes := c.Snapshot().WriteBytes

	// Baseline: full rewrite into a fresh buffer.
	var rw iostats.Counters
	rw.Reset()
	out := &iostats.Writer{W: &memFile{}, C: &rw}
	if _, err := f.RewriteWithoutRows(out, nil, opts); err != nil {
		t.Fatal(err)
	}
	rewriteBytes := rw.Snapshot().WriteBytes

	factor := float64(rewriteBytes) / float64(inPlaceBytes)
	t.Logf("deletion I/O: in-place %d bytes vs rewrite %d bytes (%.1fx reduction, file %d bytes)",
		inPlaceBytes, rewriteBytes, factor, fileSize)
	if factor < 5 {
		t.Fatalf("in-place deletion only %.1fx better than rewrite", factor)
	}
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

func TestLevel2SparseColumnErasure(t *testing.T) {
	// Sparse sliding-window columns re-encode correctly through erasure.
	schema, err := NewSchema(
		Field{Name: "uid", Type: Type{Kind: Int64}},
		Field{Name: "clk_seq", Type: Type{Kind: List, Elem: Int64}, Sparse: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	n := 600
	uid := make(Int64Data, n)
	clk := make(ListInt64Data, n)
	window := []int64{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 11, 12, 13, 14, 15, 16}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		uid[i] = int64(i)
		if rng.Intn(4) == 0 {
			window = append([]int64{rng.Int63n(1 << 20)}, window[:len(window)-1]...)
		}
		clk[i] = append([]int64{}, window...)
	}
	batch, _ := NewBatch(schema, []ColumnData{uid, clk})
	opts := DefaultOptions()
	opts.RowsPerPage = 128
	opts.Compliance = Level2
	mf, f := writeTestFile(t, schema, batch, opts)

	if err := f.DeleteRows(mf, []uint64{130, 131, 132}); err != nil {
		t.Fatal(err)
	}
	data, err := f.ReadColumn("clk_seq")
	if err != nil {
		t.Fatal(err)
	}
	got := data.(ListInt64Data)
	if len(got) != n-3 {
		t.Fatalf("rows = %d, want %d", len(got), n-3)
	}
	// Spot-check alignment across the erased span.
	wantAt := func(orig int) []int64 { return clk[orig] }
	checkVec := func(gotIdx, origIdx int) {
		w := wantAt(origIdx)
		if len(got[gotIdx]) != len(w) {
			t.Fatalf("row %d len %d, want %d", gotIdx, len(got[gotIdx]), len(w))
		}
		for j := range w {
			if got[gotIdx][j] != w[j] {
				t.Fatalf("row %d elem %d mismatch", gotIdx, j)
			}
		}
	}
	checkVec(129, 129)
	checkVec(130, 133) // first row after the erased span
	checkVec(n-4, n-1)
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}
