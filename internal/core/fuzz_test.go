package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"bullion/internal/enc"
	"bullion/internal/footer"
)

// FuzzWriterRoundTrip drives the pipelined writer across odd
// GroupRows/RowsPerPage boundaries (1 row, group-1, group, group+1, …)
// and asserts that a streaming Scan reproduces the input exactly. The
// corpus pins the boundary cases; the fuzzer then explores the rest of
// the (rows, groupRows, rowsPerPage, workers, seed) space.
func FuzzWriterRoundTrip(f *testing.F) {
	const g = 64 // baseline group size for the seeded boundaries
	f.Add(uint16(1), uint16(g), uint16(16), uint8(1), int64(1))
	f.Add(uint16(g-1), uint16(g), uint16(16), uint8(4), int64(2))
	f.Add(uint16(g), uint16(g), uint16(16), uint8(8), int64(3))
	f.Add(uint16(g+1), uint16(g), uint16(16), uint8(2), int64(4))
	f.Add(uint16(3*g+7), uint16(g), uint16(17), uint8(3), int64(5))
	f.Add(uint16(200), uint16(1), uint16(1), uint8(4), int64(6)) // 1-row groups
	f.Add(uint16(97), uint16(13), uint16(5), uint8(0), int64(7)) // nothing aligns

	f.Fuzz(func(t *testing.T, rows, groupRows, rowsPerPage uint16, workers uint8, seed int64) {
		nRows := int(rows)%2048 + 1
		gr := int(groupRows)%512 + 1
		rpp := int(rowsPerPage)%512 + 1

		schema, err := NewSchema(
			Field{Name: "id", Type: Type{Kind: Int64}},
			Field{Name: "val", Type: Type{Kind: Int64}, Nullable: true},
			Field{Name: "score", Type: Type{Kind: Float64}},
			Field{Name: "tag", Type: Type{Kind: String}},
			Field{Name: "seq", Type: Type{Kind: List, Elem: Int64}},
		)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		id := make(Int64Data, nRows)
		val := NullableInt64Data{Values: make([]int64, nRows), Valid: make([]bool, nRows)}
		score := make(Float64Data, nRows)
		tag := make(BytesData, nRows)
		seq := make(ListInt64Data, nRows)
		for i := 0; i < nRows; i++ {
			id[i] = rng.Int63n(1 << 20)
			val.Valid[i] = rng.Intn(4) != 0
			if val.Valid[i] {
				val.Values[i] = rng.Int63n(1000)
			}
			score[i] = float64(rng.Intn(5000)) / 16
			tag[i] = []byte([]string{"a", "bb", "ccc", ""}[rng.Intn(4)])
			lst := make([]int64, rng.Intn(4))
			for j := range lst {
				lst[j] = rng.Int63n(256)
			}
			seq[i] = lst
		}
		batch, err := NewBatch(schema, []ColumnData{id, val, score, tag, seq})
		if err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		w, err := NewWriter(&buf, schema, &Options{
			RowsPerPage:   rpp,
			GroupRows:     gr,
			Compliance:    Level2,
			EncodeWorkers: int(workers) % 9, // 0 = GOMAXPROCS
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(batch); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		file, err := Open(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatal(err)
		}
		if file.NumRows() != uint64(nRows) {
			t.Fatalf("file has %d rows, want %d", file.NumRows(), nRows)
		}
		sc, err := file.Scan(ScanOptions{
			Columns:   []string{"id", "val", "score", "tag", "seq"},
			BatchRows: rpp + 1, // deliberately misaligned with pages
			Workers:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		var got []ColumnData
		for {
			b, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if got == nil {
				got = make([]ColumnData, len(b.Columns))
			}
			for i, c := range b.Columns {
				got[i] = appendColumn(got[i], c)
			}
		}
		want := []ColumnData{id, val, score, tag, seq}
		names := []string{"id", "val", "score", "tag", "seq"}
		for i := range want {
			compareFuzzColumn(t, names[i], got[i], want[i])
		}
	})
}

// FuzzFooterDecode feeds arbitrary bytes — seeded with real v2 and v3
// footers, including one carrying blooms and float stats — to the footer
// decoder and exercises every accessor on whatever opens. Truncated and
// bit-flipped statistics sections must produce errors or conservative
// "no statistics" answers, never a panic: the scanner trusts these
// accessors on files read from disk.
func FuzzFooterDecode(f *testing.F) {
	// Seed: a real v3 footer with float stats and blooms.
	schema, err := NewSchema(
		Field{Name: "a", Type: Type{Kind: Int64}},
		Field{Name: "f", Type: Type{Kind: Float64}},
		Field{Name: "s", Type: Type{Kind: String}},
	)
	if err != nil {
		f.Fatal(err)
	}
	n := 300
	a := make(Int64Data, n)
	fl := make(Float64Data, n)
	s := make(BytesData, n)
	for i := 0; i < n; i++ {
		a[i] = int64(i)
		fl[i] = float64(i) / 3
		s[i] = []byte([]string{"x", "yy", "zzz"}[i%3])
	}
	batch, _ := NewBatch(schema, []ColumnData{a, fl, s})
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, schema, &Options{RowsPerPage: 64, GroupRows: 128, Compliance: Level1})
	if err := w.Write(batch); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	fLen := int(binary.LittleEndian.Uint32(raw[len(raw)-8:]))
	ftrV3 := raw[len(raw)-8-fLen : len(raw)-8]
	f.Add(append([]byte(nil), ftrV3...))
	f.Add(append([]byte(nil), ftrV3[:len(ftrV3)/2]...)) // truncated mid-sections

	// Seed: a pinned v2 footer (no stats sections beyond page_stats).
	if v2raw, err := os.ReadFile("testdata/golden_v2.bullion"); err == nil {
		v2len := int(binary.LittleEndian.Uint32(v2raw[len(v2raw)-8:]))
		f.Add(append([]byte(nil), v2raw[len(v2raw)-8-v2len:len(v2raw)-8]...))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := footer.OpenView(data)
		if err != nil {
			return
		}
		_ = v.Version()
		_ = v.NumRows()
		_ = v.HasPageStats()
		_ = v.HasColumnStats()
		_, _ = v.LookupColumn("a")
		_, _ = v.LookupColumn("missing")
		nCols := v.NumColumns()
		if nCols > 1<<12 {
			nCols = 1 << 12
		}
		for c := 0; c < nCols; c++ {
			_ = v.ColumnName(c)
			_ = v.ColumnType(c)
			_, _ = v.ColumnStat(c)
			if b := v.ColumnBloom(c); b != nil {
				if fl, err := enc.OpenBloom(b); err == nil {
					_ = fl.Contains([]byte("x"))
				}
			}
		}
		nPages := v.NumPages()
		if nPages > 1<<12 {
			nPages = 1 << 12
		}
		for p := 0; p < nPages; p++ {
			_, _ = v.PageStat(p)
			if b := v.PageBloom(p); b != nil {
				if fl, err := enc.OpenBloom(b); err == nil {
					_ = fl.ContainsHash(42)
				}
			}
		}
		// Materialize/Marshal over an accepted view must not panic either
		// (the in-place deletion path runs it on files read from disk).
		if m, err := v.Materialize(); err == nil {
			_, _ = m.Marshal()
		}
	})
}

// compareFuzzColumn mirrors compareGoldenColumn: nullable columns compare
// mask-aware (values under null slots are unspecified on disk), and a
// nil scanned column is only legal for zero expected rows.
func compareFuzzColumn(t *testing.T, name string, got, want ColumnData) {
	t.Helper()
	if got == nil {
		if want.Len() != 0 {
			t.Fatalf("column %q: scan returned nothing for %d rows", name, want.Len())
		}
		return
	}
	if g, ok := got.(NullableInt64Data); ok {
		w := want.(NullableInt64Data)
		if !reflect.DeepEqual(g.Valid, w.Valid) {
			t.Fatalf("column %q: validity mask differs", name)
		}
		for i, v := range w.Valid {
			if v && g.Values[i] != w.Values[i] {
				t.Fatalf("column %q: row %d = %d, want %d", name, i, g.Values[i], w.Values[i])
			}
		}
		return
	}
	// Scan normalizes empty list slots; compare element-wise via string
	// form only when DeepEqual disagrees on empties.
	if !reflect.DeepEqual(got, want) && !columnsEquivalent(got, want) {
		t.Fatalf("column %q: scanned data differs from source", name)
	}
}

// columnsEquivalent treats nil and empty list slots as equal.
func columnsEquivalent(a, b ColumnData) bool {
	ga, ok := a.(ListInt64Data)
	if !ok {
		return false
	}
	gb, ok := b.(ListInt64Data)
	if !ok || len(ga) != len(gb) {
		return false
	}
	for i := range ga {
		if len(ga[i]) == 0 && len(gb[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(ga[i], gb[i]) {
			return false
		}
	}
	return true
}
