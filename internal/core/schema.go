// Package core implements the Bullion columnar file format: row groups of
// column-chunk pages, the compact footer of internal/footer, cascade
// encoding from internal/enc, sliding-window sparse codecs from
// internal/sparse, storage quantization from internal/quant, and the
// paper's three-level deletion-compliance model (§2.1).
//
// File layout:
//
//	BullionFile := RowGroup* Footer footerLen(u32) magic "BLN1"
//	RowGroup    := ColumnChunk*      // one chunk per column, in schema order
//	ColumnChunk := Page*
//	Page        := payload (self-describing encoded streams)
//
// Struct columns are flattened into leaf columns before reaching core
// (Alpha-style feature flattening); a struct<list<int64>,list<float>>
// feature becomes two columns "f.0" and "f.1".
package core

import (
	"fmt"
	"hash/fnv"
	"io"

	"bullion/internal/footer"
	"bullion/internal/quant"
)

// Kind aliases the footer's physical type family.
type Kind = footer.Kind

// Re-exported kinds for schema construction.
const (
	Int64    = footer.KindInt64
	Int32    = footer.KindInt32
	Float64  = footer.KindFloat64
	Float32  = footer.KindFloat32
	Bool     = footer.KindBool
	Binary   = footer.KindBinary
	String   = footer.KindString
	List     = footer.KindList
	ListList = footer.KindListList
)

// Type is a column's logical type.
type Type struct {
	Kind  Kind
	Elem  Kind         // element kind for List / ListList
	Quant quant.Format // storage quantization for Float32 columns (FP32 = none)
}

// desc converts to the footer's fixed descriptor.
func (t Type) desc() footer.TypeDesc {
	return footer.TypeDesc{Kind: t.Kind, Elem: t.Elem, Quant: uint8(t.Quant)}
}

func typeFromDesc(d footer.TypeDesc) Type {
	return Type{Kind: d.Kind, Elem: d.Elem, Quant: quant.Format(d.Quant)}
}

// String renders the type.
func (t Type) String() string { return t.desc().String() }

// Field is one column of a schema.
type Field struct {
	Name string
	Type Type
	// Sparse selects the §2.2 sliding-window delta codec; valid only for
	// list<int64> columns (sequence features like clk_seq_cids).
	Sparse bool
	// Nullable permits nulls; valid for int64 scalar columns.
	Nullable bool
}

// Schema is an ordered set of fields.
type Schema struct {
	Fields []Field
}

// NewSchema validates and constructs a schema.
func NewSchema(fields ...Field) (*Schema, error) {
	names := make(map[string]bool, len(fields))
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("core: field %d has empty name", i)
		}
		if names[f.Name] {
			return nil, fmt.Errorf("core: duplicate field %q", f.Name)
		}
		names[f.Name] = true
		if err := validateType(f); err != nil {
			return nil, fmt.Errorf("core: field %q: %w", f.Name, err)
		}
	}
	return &Schema{Fields: fields}, nil
}

func validateType(f Field) error {
	t := f.Type
	switch t.Kind {
	case Int64, Int32, Float64, Bool, Binary, String:
		if t.Elem != footer.KindInvalid {
			return fmt.Errorf("scalar type %v must not set Elem", t.Kind)
		}
	case Float32:
		switch t.Quant {
		case quant.FP32, quant.TF32, quant.FP16, quant.BF16, quant.FP8E4M3, quant.FP8E5M2:
		default:
			return fmt.Errorf("float32 quant format %v unsupported", t.Quant)
		}
	case List:
		switch t.Elem {
		case Int64, Float32, Float64, Binary:
		default:
			return fmt.Errorf("list element %v unsupported", t.Elem)
		}
	case ListList:
		if t.Elem != Int64 {
			return fmt.Errorf("list<list<%v>> unsupported (only int64)", t.Elem)
		}
	default:
		return fmt.Errorf("kind %v unsupported", t.Kind)
	}
	if f.Sparse && !(t.Kind == List && t.Elem == Int64) {
		return fmt.Errorf("sparse codec requires list<int64>, got %v", t)
	}
	if f.Nullable && t.Kind != Int64 {
		return fmt.Errorf("nullable is only supported for int64 columns, got %v", t)
	}
	return nil
}

// Fingerprint returns a stable hex digest of the schema: field order,
// names, and full type descriptors (kind, element, quantization, sparse
// and nullable flags). Two schemas share a fingerprint iff a file written
// with one can be read as the other, so the dataset manifest layer uses it
// to verify member files without materializing their schemas.
func (s *Schema) Fingerprint() string {
	h := fnv.New64a()
	var buf [4]byte
	for _, f := range s.Fields {
		io.WriteString(h, f.Name)
		d := fieldDesc(f)
		buf[0], buf[1], buf[2], buf[3] = byte(d.Kind), byte(d.Elem), d.Quant, d.Flags
		h.Write(buf[:])
		h.Write([]byte{0}) // name/desc record separator
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Lookup returns the index of the named field.
func (s *Schema) Lookup(name string) (int, bool) {
	for i, f := range s.Fields {
		if f.Name == name {
			return i, true
		}
	}
	return 0, false
}

// ColumnData is a typed column of in-memory values.
type ColumnData interface {
	Len() int
	kind() Kind
}

// Int64Data is a non-null int64 column.
type Int64Data []int64

// NullableInt64Data is an int64 column with a validity mask. Valid[i]
// false means vs[i] is null (its value is ignored).
type NullableInt64Data struct {
	Values []int64
	Valid  []bool
}

// Float64Data is a float64 column.
type Float64Data []float64

// Float32Data is a float32 column (possibly stored quantized).
type Float32Data []float32

// BoolData is a boolean column.
type BoolData []bool

// BytesData is a binary/string column.
type BytesData [][]byte

// ListInt64Data is a list<int64> column.
type ListInt64Data [][]int64

// ListFloat32Data is a list<float> column.
type ListFloat32Data [][]float32

// ListFloat64Data is a list<double> column.
type ListFloat64Data [][]float64

// ListBytesData is a list<binary> column.
type ListBytesData [][][]byte

// ListListInt64Data is a list<list<int64>> column.
type ListListInt64Data [][][]int64

func (d Int64Data) Len() int         { return len(d) }
func (d NullableInt64Data) Len() int { return len(d.Values) }
func (d Float64Data) Len() int       { return len(d) }
func (d Float32Data) Len() int       { return len(d) }
func (d BoolData) Len() int          { return len(d) }
func (d BytesData) Len() int         { return len(d) }
func (d ListInt64Data) Len() int     { return len(d) }
func (d ListFloat32Data) Len() int   { return len(d) }
func (d ListFloat64Data) Len() int   { return len(d) }
func (d ListBytesData) Len() int     { return len(d) }
func (d ListListInt64Data) Len() int { return len(d) }

func (Int64Data) kind() Kind         { return Int64 }
func (NullableInt64Data) kind() Kind { return Int64 }
func (Float64Data) kind() Kind       { return Float64 }
func (Float32Data) kind() Kind       { return Float32 }
func (BoolData) kind() Kind          { return Bool }
func (BytesData) kind() Kind         { return Binary }
func (ListInt64Data) kind() Kind     { return List }
func (ListFloat32Data) kind() Kind   { return List }
func (ListFloat64Data) kind() Kind   { return List }
func (ListBytesData) kind() Kind     { return List }
func (ListListInt64Data) kind() Kind { return ListList }

// Batch is a set of column slices aligned with a schema.
type Batch struct {
	Schema  *Schema
	Columns []ColumnData
}

// NewBatch validates column/shape agreement.
func NewBatch(schema *Schema, columns []ColumnData) (*Batch, error) {
	if len(columns) != len(schema.Fields) {
		return nil, fmt.Errorf("core: batch has %d columns, schema %d", len(columns), len(schema.Fields))
	}
	n := -1
	for i, c := range columns {
		if c == nil {
			return nil, fmt.Errorf("core: column %q is nil", schema.Fields[i].Name)
		}
		if err := checkColumnType(schema.Fields[i], c); err != nil {
			return nil, err
		}
		if n < 0 {
			n = c.Len()
		} else if c.Len() != n {
			return nil, fmt.Errorf("core: column %q has %d rows, others %d",
				schema.Fields[i].Name, c.Len(), n)
		}
	}
	return &Batch{Schema: schema, Columns: columns}, nil
}

// NumRows returns the row count of the batch.
func (b *Batch) NumRows() int {
	if len(b.Columns) == 0 {
		return 0
	}
	return b.Columns[0].Len()
}

func checkColumnType(f Field, c ColumnData) error {
	ok := false
	switch d := c.(type) {
	case Int64Data:
		ok = (f.Type.Kind == Int64 || f.Type.Kind == Int32) && !f.Nullable
	case NullableInt64Data:
		ok = f.Type.Kind == Int64 && f.Nullable
		if ok && len(d.Valid) != len(d.Values) {
			return fmt.Errorf("core: column %q validity length %d != values %d",
				f.Name, len(d.Valid), len(d.Values))
		}
	case Float64Data:
		ok = f.Type.Kind == Float64
	case Float32Data:
		ok = f.Type.Kind == Float32
	case BoolData:
		ok = f.Type.Kind == Bool
	case BytesData:
		ok = f.Type.Kind == Binary || f.Type.Kind == String
	case ListInt64Data:
		ok = f.Type.Kind == List && f.Type.Elem == Int64
	case ListFloat32Data:
		ok = f.Type.Kind == List && f.Type.Elem == Float32
	case ListFloat64Data:
		ok = f.Type.Kind == List && f.Type.Elem == Float64
	case ListBytesData:
		ok = f.Type.Kind == List && f.Type.Elem == Binary
	case ListListInt64Data:
		ok = f.Type.Kind == ListList
	}
	if !ok {
		return fmt.Errorf("core: column %q: data type %T does not match field type %v (nullable=%v)",
			f.Name, c, f.Type, f.Nullable)
	}
	return nil
}

// sliceColumn returns rows [lo,hi) of a column.
func sliceColumn(c ColumnData, lo, hi int) ColumnData {
	switch d := c.(type) {
	case Int64Data:
		return d[lo:hi]
	case NullableInt64Data:
		return NullableInt64Data{Values: d.Values[lo:hi], Valid: d.Valid[lo:hi]}
	case Float64Data:
		return d[lo:hi]
	case Float32Data:
		return d[lo:hi]
	case BoolData:
		return d[lo:hi]
	case BytesData:
		return d[lo:hi]
	case ListInt64Data:
		return d[lo:hi]
	case ListFloat32Data:
		return d[lo:hi]
	case ListFloat64Data:
		return d[lo:hi]
	case ListBytesData:
		return d[lo:hi]
	case ListListInt64Data:
		return d[lo:hi]
	}
	panic(fmt.Sprintf("core: unknown column type %T", c))
}

// appendColumn concatenates src onto dst (same dynamic type).
func appendColumn(dst, src ColumnData) ColumnData {
	if dst == nil {
		return src
	}
	switch d := dst.(type) {
	case Int64Data:
		return append(d, src.(Int64Data)...)
	case NullableInt64Data:
		s := src.(NullableInt64Data)
		return NullableInt64Data{
			Values: append(d.Values, s.Values...),
			Valid:  append(d.Valid, s.Valid...),
		}
	case Float64Data:
		return append(d, src.(Float64Data)...)
	case Float32Data:
		return append(d, src.(Float32Data)...)
	case BoolData:
		return append(d, src.(BoolData)...)
	case BytesData:
		return append(d, src.(BytesData)...)
	case ListInt64Data:
		return append(d, src.(ListInt64Data)...)
	case ListFloat32Data:
		return append(d, src.(ListFloat32Data)...)
	case ListFloat64Data:
		return append(d, src.(ListFloat64Data)...)
	case ListBytesData:
		return append(d, src.(ListBytesData)...)
	case ListListInt64Data:
		return append(d, src.(ListListInt64Data)...)
	}
	panic(fmt.Sprintf("core: unknown column type %T", dst))
}
