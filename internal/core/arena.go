package core

import "sync"

// Pooled buffers for the read path. Two kinds of scratch dominate a
// steady-state scan: the coalesced-run read buffers (one large []byte per
// physical read) and short-lived per-page decode staging. Both are
// recycled through sync.Pool so that a scan over millions of rows settles
// into zero allocations per batch.
//
// Run buffers are only recycled when no projected column's decoded values
// can alias the encoded bytes (see scanProjectionAliases): byte-string
// decoding is zero-copy out of the read buffer, so those buffers must live
// as long as the batch that references them.

// runBufPool holds coalesced-read buffers. Entries are *[]byte so Put
// never allocates.
var runBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

// getRunBuf returns a pooled buffer of length n (contents undefined).
func getRunBuf(n int) *[]byte {
	p := runBufPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putRunBuf(p *[]byte) { runBufPool.Put(p) }

// pageIntsPool holds per-page []int64 decode staging (float32 bit
// patterns, boundary-page clipping).
var pageIntsPool = sync.Pool{
	New: func() any {
		s := make([]int64, 0, 1024)
		return &s
	},
}

func getPageInts(n int) *[]int64 {
	p := pageIntsPool.Get().(*[]int64)
	if cap(*p) < n {
		*p = make([]int64, n)
	}
	*p = (*p)[:n]
	return p
}

func putPageInts(p *[]int64) { pageIntsPool.Put(p) }
