package core

import (
	"fmt"
	"math/rand"
	"testing"

	"bullion/internal/iostats"
)

// wideFixture writes a 40-column file and returns it with I/O counters.
func wideFixture(t *testing.T, hot []string) (*File, *iostats.Counters, map[string]Int64Data) {
	t.Helper()
	const nCols = 40
	const nRows = 4000
	fields := make([]Field, nCols)
	for i := range fields {
		fields[i] = Field{Name: fmt.Sprintf("feat_%02d", i), Type: Type{Kind: Int64}}
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cols := make([]ColumnData, nCols)
	want := map[string]Int64Data{}
	for i := range cols {
		vs := make(Int64Data, nRows)
		for r := range vs {
			vs[r] = rng.Int63n(1 << 30)
		}
		cols[i] = vs
		want[fields[i].Name] = vs
	}
	if len(hot) > 0 {
		reordered, perm, err := ReorderFields(schema, hot)
		if err != nil {
			t.Fatal(err)
		}
		schema = reordered
		cols = ReorderBatchColumns(cols, perm)
	}
	batch, err := NewBatch(schema, cols)
	if err != nil {
		t.Fatal(err)
	}
	mf := &memFile{}
	opts := DefaultOptions()
	opts.GroupRows = 2000
	w, err := NewWriter(mf, schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var c iostats.Counters
	c.Reset()
	f, err := Open(&iostats.ReaderAt{R: mf, C: &c}, mf.Size())
	if err != nil {
		t.Fatal(err)
	}
	return f, &c, want
}

func TestReorderFields(t *testing.T) {
	schema, _ := NewSchema(
		Field{Name: "a", Type: Type{Kind: Int64}},
		Field{Name: "b", Type: Type{Kind: Int64}},
		Field{Name: "c", Type: Type{Kind: Int64}},
	)
	re, perm, err := ReorderFields(schema, []string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if re.Fields[0].Name != "c" || re.Fields[1].Name != "a" || re.Fields[2].Name != "b" {
		t.Fatalf("order: %v %v %v", re.Fields[0].Name, re.Fields[1].Name, re.Fields[2].Name)
	}
	if perm[0] != 2 || perm[1] != 0 || perm[2] != 1 {
		t.Fatalf("perm: %v", perm)
	}
	cols := ReorderBatchColumns([]ColumnData{Int64Data{1}, Int64Data{2}, Int64Data{3}}, perm)
	if cols[0].(Int64Data)[0] != 3 || cols[1].(Int64Data)[0] != 1 {
		t.Fatal("batch reorder wrong")
	}
	if _, _, err := ReorderFields(schema, []string{"nope"}); err == nil {
		t.Fatal("unknown hot column accepted")
	}
	if _, _, err := ReorderFields(schema, []string{"a", "a"}); err == nil {
		t.Fatal("duplicate hot column accepted")
	}
}

func TestProjectCoalescedCorrectness(t *testing.T) {
	f, _, want := wideFixture(t, nil)
	names := []string{"feat_05", "feat_06", "feat_07", "feat_30"}
	batch, err := f.ProjectCoalesced(names...)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		got := batch.Columns[i].(Int64Data)
		for r := range want[name] {
			if got[r] != want[name][r] {
				t.Fatalf("%s row %d = %d, want %d", name, r, got[r], want[name][r])
			}
		}
	}
}

// Adjacent chunks must coalesce into fewer physical reads than the naive
// per-column projection.
func TestCoalescedFewerReads(t *testing.T) {
	hot := []string{"feat_10", "feat_20", "feat_30", "feat_35"}
	f, c, _ := wideFixture(t, hot)

	before := c.Snapshot()
	if _, err := f.Project(hot...); err != nil {
		t.Fatal(err)
	}
	naive := c.Snapshot().Sub(before)

	before = c.Snapshot()
	if _, err := f.ProjectCoalesced(hot...); err != nil {
		t.Fatal(err)
	}
	coalesced := c.Snapshot().Sub(before)

	// Hot columns are physically adjacent (reordered to the front), so the
	// 4 chunks per group collapse to 1 read per group: 2 groups -> 2 reads.
	if coalesced.ReadOps >= naive.ReadOps {
		t.Fatalf("coalesced %d ops >= naive %d", coalesced.ReadOps, naive.ReadOps)
	}
	if coalesced.ReadOps != 2 {
		t.Fatalf("coalesced ops = %d, want 2 (1 per group)", coalesced.ReadOps)
	}
	if coalesced.ReadBytes != naive.ReadBytes {
		t.Fatalf("coalesced bytes %d != naive %d (must read the same chunks)",
			coalesced.ReadBytes, naive.ReadBytes)
	}
}

// Without reordering, a scattered hot set cannot fully coalesce.
func TestScatteredHotSetReadsMore(t *testing.T) {
	hot := []string{"feat_10", "feat_20", "feat_30", "feat_35"}
	fScattered, cs, _ := wideFixture(t, nil)
	fOrdered, co, _ := wideFixture(t, hot)

	before := cs.Snapshot()
	if _, err := fScattered.ProjectCoalesced(hot...); err != nil {
		t.Fatal(err)
	}
	scattered := cs.Snapshot().Sub(before)

	before = co.Snapshot()
	if _, err := fOrdered.ProjectCoalesced(hot...); err != nil {
		t.Fatal(err)
	}
	ordered := co.Snapshot().Sub(before)

	if ordered.ReadOps >= scattered.ReadOps {
		t.Fatalf("reordered layout %d ops >= scattered %d", ordered.ReadOps, scattered.ReadOps)
	}
	t.Logf("column reordering: %d reads (hot-first layout) vs %d (scattered)",
		ordered.ReadOps, scattered.ReadOps)
}

func TestCoalescedWithDeletions(t *testing.T) {
	f, _, want := wideFixture(t, nil)
	mf := f.r.(*iostats.ReaderAt).R.(*memFile)
	if err := f.DeleteRows(mf, []uint64{5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	batch, err := f.ProjectCoalesced("feat_00")
	if err != nil {
		t.Fatal(err)
	}
	got := batch.Columns[0].(Int64Data)
	if len(got) != 3997 {
		t.Fatalf("rows = %d, want 3997", len(got))
	}
	orig := want["feat_00"]
	if got[5] != orig[8] {
		t.Fatalf("row alignment after deletion: got[5]=%d, want orig[8]=%d", got[5], orig[8])
	}
}

func TestCoalescedUnknownColumn(t *testing.T) {
	f, _, _ := wideFixture(t, nil)
	if _, err := f.ProjectCoalesced("nope"); err == nil {
		t.Fatal("unknown column accepted")
	}
}
