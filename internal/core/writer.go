package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"bullion/internal/enc"
	"bullion/internal/footer"
	"bullion/internal/merkle"
)

// FileMagic terminates every Bullion file.
const FileMagic = "BLN1"

// fieldDesc folds schema-level flags into the footer type descriptor.
func fieldDesc(f Field) footer.TypeDesc {
	d := f.Type.desc()
	if f.Sparse {
		d.Flags |= 1
	}
	if f.Nullable {
		d.Flags |= 2
	}
	return d
}

func fieldFromDesc(name string, d footer.TypeDesc) Field {
	return Field{
		Name:     name,
		Type:     typeFromDesc(d),
		Sparse:   d.Flags&1 != 0,
		Nullable: d.Flags&2 != 0,
	}
}

// Writer streams batches into a Bullion file. Batches are buffered until a
// full row group accumulates; full groups flow through the ingest pipeline
// (ingest.go), which encodes columns in parallel and serializes finished
// groups to the underlying io.Writer strictly in file order, so any
// io.Writer works. Close flushes the remainder and writes the footer.
//
// A Writer must be used from a single goroutine, and Close must always be
// called — including when abandoning the file after an unrelated error —
// since the pipeline's goroutines run until Close (or a failed Write)
// joins them. Errors are sticky: once any encode or write fails, every
// subsequent Write/Close call returns the original error and no footer is
// ever written (a failed file can never look complete).
type Writer struct {
	w      io.Writer
	schema *Schema
	opts   *Options

	pending     []ColumnData
	pendingRows int
	dispatched  uint64 // rows handed to the pipeline (caller-side)

	pipe     *ingestPipeline
	pipeDown bool

	// Serializer-owned while the pipeline runs; the Writer touches them
	// again only after teardown joins the pipeline goroutines.
	offset     uint64
	numRows    uint64
	ftr        footer.Footer
	pageHashes [][]merkle.Hash // per group, in page order
	// Per-column statistics folded as groups serialize (group order, so
	// the result is deterministic at every worker count): zone maps, the
	// distinct byte-string hash sets feeding the file-level blooms, and
	// the storage accounting surfaced by WrittenStats.
	colZones  []*zoneFold
	colHashes []map[uint64]struct{}
	colBytes  []uint64
	colPages  []int
	colEnc    []map[enc.SchemeID]int

	fileBytes int64 // total bytes written, valid after Close

	closed bool
	err    error
}

// NewWriter constructs a writer for schema over w.
func NewWriter(w io.Writer, schema *Schema, opts *Options) (*Writer, error) {
	if len(schema.Fields) == 0 {
		return nil, fmt.Errorf("core: schema has no fields")
	}
	if opts == nil {
		opts = DefaultOptions()
	} else {
		opts = opts.clone()
		if opts.RowsPerPage <= 0 {
			opts.RowsPerPage = 1024
		}
		if opts.GroupRows <= 0 {
			opts.GroupRows = 1 << 16
		}
		if opts.Enc == nil {
			opts.Enc = enc.DefaultOptions()
		}
	}
	if opts.QualityColumn != "" {
		i, ok := schema.Lookup(opts.QualityColumn)
		if !ok {
			return nil, fmt.Errorf("core: quality column %q not in schema", opts.QualityColumn)
		}
		if schema.Fields[i].Type.Kind != Float64 {
			return nil, fmt.Errorf("core: quality column %q must be float64", opts.QualityColumn)
		}
	}
	if opts.Compliance == Level2 {
		// Level-2 files must stay maskable in place (§2.1): restrict the
		// cascade to the mask-friendly subset, for the bulk streams of the
		// sparse codec too.
		opts.Enc = maskableEncOptions(opts.Enc)
		if opts.Sparse != nil {
			sc := *opts.Sparse
			if sc.Enc == nil {
				sc.Enc = enc.DefaultOptions()
			}
			sc.Enc = maskableEncOptions(sc.Enc)
			opts.Sparse = &sc
		}
	}
	bw := &Writer{w: w, schema: schema, opts: opts}
	bw.ftr.NumColumns = len(schema.Fields)
	bw.ftr.Flags = uint32(opts.Compliance)
	nCols := len(schema.Fields)
	bw.colZones = make([]*zoneFold, nCols)
	bw.colHashes = make([]map[uint64]struct{}, nCols)
	bw.colBytes = make([]uint64, nCols)
	bw.colPages = make([]int, nCols)
	bw.colEnc = make([]map[enc.SchemeID]int, nCols)
	for i := range bw.colZones {
		bw.colZones[i] = newZoneFold()
		bw.colEnc[i] = map[enc.SchemeID]int{}
	}
	for _, f := range schema.Fields {
		bw.ftr.Columns = append(bw.ftr.Columns, footer.Column{Name: f.Name, Type: fieldDesc(f)})
	}
	return bw, nil
}

// Write appends a batch. The batch schema must match the writer's.
//
// The batch's top-level column slices are copied into the writer's buffer,
// so the caller may recycle them immediately; interior arrays (the byte
// strings of a BytesData column, the element slices of list columns) are
// shared and must not be mutated until Close returns.
func (w *Writer) Write(batch *Batch) error {
	if w.err == nil && w.pipe != nil {
		// Surface asynchronous pipeline failures as early as possible.
		w.err = w.pipe.firstErr()
		if w.err != nil {
			w.teardown()
		}
	}
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("core: writer closed")
	}
	if batch.Schema != w.schema {
		if len(batch.Columns) != len(w.schema.Fields) {
			return fmt.Errorf("core: batch schema mismatch")
		}
		for i, c := range batch.Columns {
			if err := checkColumnType(w.schema.Fields[i], c); err != nil {
				return fmt.Errorf("core: batch schema mismatch: %w", err)
			}
		}
	}
	if w.pending == nil {
		w.pending = make([]ColumnData, len(w.schema.Fields))
	}
	for i, c := range batch.Columns {
		if w.pending[i] == nil {
			// Seed with an owned empty column so the append below copies:
			// buffered (and, since the pipelined writer, dispatched) rows
			// must never alias memory the caller may reuse.
			w.pending[i] = emptyColumn(w.schema.Fields[i])
		}
		w.pending[i] = appendColumn(w.pending[i], c)
	}
	w.pendingRows += batch.NumRows()
	for w.pendingRows >= w.opts.GroupRows {
		if err := w.cutGroup(w.opts.GroupRows); err != nil {
			w.err = err
			w.teardown()
			return err
		}
	}
	return nil
}

// cutGroup assembles the first n pending rows as a row group and hands it
// to the ingest pipeline.
func (w *Writer) cutGroup(n int) error {
	group := make([]ColumnData, len(w.pending))
	for i := range w.pending {
		group[i] = sliceColumn(w.pending[i], 0, n)
	}
	if w.opts.QualityColumn != "" {
		group = w.sortByQuality(group, n)
	}
	if w.pipe == nil {
		w.pipe = newIngestPipeline(w)
	}
	if err := w.pipe.dispatch(group, n); err != nil {
		return err
	}
	w.dispatched += uint64(n)
	for i := range w.pending {
		w.pending[i] = sliceColumn(w.pending[i], n, w.pendingRows)
	}
	w.pendingRows -= n
	return nil
}

// sortByQuality reorders the group's rows by the quality column,
// descending — §2.5's presorting so filtered training reads become
// sequential.
func (w *Writer) sortByQuality(group []ColumnData, n int) []ColumnData {
	qi, _ := w.schema.Lookup(w.opts.QualityColumn)
	quality := group[qi].(Float64Data)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return quality[perm[a]] > quality[perm[b]] })
	out := make([]ColumnData, len(group))
	for ci, col := range group {
		out[ci] = permuteColumn(col, perm)
	}
	return out
}

func permuteColumn(c ColumnData, perm []int) ColumnData {
	switch d := c.(type) {
	case Int64Data:
		out := make(Int64Data, len(perm))
		for i, p := range perm {
			out[i] = d[p]
		}
		return out
	case NullableInt64Data:
		out := NullableInt64Data{Values: make([]int64, len(perm)), Valid: make([]bool, len(perm))}
		for i, p := range perm {
			out.Values[i], out.Valid[i] = d.Values[p], d.Valid[p]
		}
		return out
	case Float64Data:
		out := make(Float64Data, len(perm))
		for i, p := range perm {
			out[i] = d[p]
		}
		return out
	case Float32Data:
		out := make(Float32Data, len(perm))
		for i, p := range perm {
			out[i] = d[p]
		}
		return out
	case BoolData:
		out := make(BoolData, len(perm))
		for i, p := range perm {
			out[i] = d[p]
		}
		return out
	case BytesData:
		out := make(BytesData, len(perm))
		for i, p := range perm {
			out[i] = d[p]
		}
		return out
	case ListInt64Data:
		out := make(ListInt64Data, len(perm))
		for i, p := range perm {
			out[i] = d[p]
		}
		return out
	case ListFloat32Data:
		out := make(ListFloat32Data, len(perm))
		for i, p := range perm {
			out[i] = d[p]
		}
		return out
	case ListFloat64Data:
		out := make(ListFloat64Data, len(perm))
		for i, p := range perm {
			out[i] = d[p]
		}
		return out
	case ListBytesData:
		out := make(ListBytesData, len(perm))
		for i, p := range perm {
			out[i] = d[p]
		}
		return out
	case ListListInt64Data:
		out := make(ListListInt64Data, len(perm))
		for i, p := range perm {
			out[i] = d[p]
		}
		return out
	}
	panic(fmt.Sprintf("core: unknown column type %T", c))
}

// serializeGroup appends one encoded row group to the file and records its
// footer metadata. It runs on the pipeline's serializer goroutine, which
// owns offset/ftr/pageHashes until teardown.
func (w *Writer) serializeGroup(g *groupJob) error {
	w.ftr.GroupOffsets = append(w.ftr.GroupOffsets, w.offset)
	groupPageStart := len(w.ftr.PageOffsets)
	var groupHashes []merkle.Hash

	for ci := range w.schema.Fields {
		chunk := &g.chunks[ci]
		w.ftr.ChunkFirstPage = append(w.ftr.ChunkFirstPage, uint32(len(w.ftr.PageOffsets)))
		chunkStart := w.offset
		if _, err := w.w.Write(chunk.buf); err != nil {
			return err
		}
		for _, pg := range chunk.pages {
			w.ftr.PageStats = append(w.ftr.PageStats, pg.stats)
			w.ftr.PageBlooms = append(w.ftr.PageBlooms, pg.bloom)
			w.ftr.PageOffsets = append(w.ftr.PageOffsets, w.offset)
			w.ftr.RowsPerPage = append(w.ftr.RowsPerPage, pg.rows)
			w.ftr.PageCompression = append(w.ftr.PageCompression, pg.scheme)
			groupHashes = append(groupHashes, pg.hash)
			w.offset += uint64(pg.size)
			w.colZones[ci].addPage(pg.stats, true, int(pg.rows))
			w.colEnc[ci][enc.SchemeID(pg.scheme)]++
		}
		if len(chunk.hashes) > 0 {
			if w.colHashes[ci] == nil {
				w.colHashes[ci] = chunk.hashes
			} else {
				for h := range chunk.hashes {
					w.colHashes[ci][h] = struct{}{}
				}
			}
		}
		w.ftr.ColumnOffsets = append(w.ftr.ColumnOffsets, chunkStart)
		w.ftr.ColumnSizes = append(w.ftr.ColumnSizes, w.offset-chunkStart)
		w.colBytes[ci] += w.offset - chunkStart
		w.colPages[ci] += len(chunk.pages)
	}

	w.ftr.PagesPerGroup = append(w.ftr.PagesPerGroup, uint32(len(w.ftr.PageOffsets)-groupPageStart))
	w.pageHashes = append(w.pageHashes, groupHashes)
	w.ftr.NumGroups++
	w.numRows += uint64(g.rows)
	return nil
}

// teardown joins the pipeline goroutines (idempotent). After it returns
// the Writer owns all file state again.
func (w *Writer) teardown() {
	if w.pipe != nil && !w.pipeDown {
		w.pipeDown = true
		w.pipe.shutdown()
	}
}

// Close flushes remaining rows, drains the pipeline, writes the footer,
// and finalizes the file.
func (w *Writer) Close() error {
	if w.err != nil {
		w.teardown()
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if w.pendingRows > 0 {
		if err := w.cutGroup(w.pendingRows); err != nil {
			w.err = err
			w.teardown()
			return err
		}
	}
	w.teardown()
	if w.pipe != nil {
		if err := w.pipe.firstErr(); err != nil {
			w.err = err
			return err
		}
	}
	w.ftr.NumRows = w.numRows
	w.ftr.ChunkFirstPage = append(w.ftr.ChunkFirstPage, uint32(len(w.ftr.PageOffsets)))
	w.ftr.DeletionVec = make([]uint64, (w.numRows+63)/64)

	// File-level statistics: the per-column zone fold and the blooms built
	// from the accumulated distinct-value hashes. Both are deterministic
	// regardless of encode-worker scheduling — the fold ran in group order
	// and bloom bits are insertion-order independent.
	w.ftr.ColumnStats = make([]footer.ColumnStat, len(w.schema.Fields))
	for ci, zone := range w.colZones {
		w.ftr.ColumnStats[ci] = zone.columnStat()
	}
	bloomBits := w.opts.resolveBloomBits()
	blooms := make([][]byte, len(w.schema.Fields))
	haveBloom := false
	for ci, set := range w.colHashes {
		if len(set) == 0 {
			continue
		}
		b := enc.NewBloomBuilder(len(set), bloomBits)
		for h := range set {
			b.AddHash(h)
		}
		blooms[ci] = b.Marshal()
		haveBloom = true
	}
	if haveBloom {
		w.ftr.ColumnBlooms = blooms
	}

	tree := merkle.FromHashes(w.pageHashes)
	w.ftr.Checksums = checksumArray(tree)

	buf, err := w.ftr.Marshal()
	if err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(buf); err != nil {
		w.err = err
		return err
	}
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[:4], uint32(len(buf)))
	copy(tail[4:], FileMagic)
	if _, err := w.w.Write(tail[:]); err != nil {
		w.err = err
		return err
	}
	w.fileBytes = int64(w.offset) + int64(len(buf)) + 8
	return nil
}

// WrittenStats is the writer's own account of the file it just produced:
// total size, rows, and per-column statistics identical to what Stats()
// reports after reopening the file. It exists so commit paths (the
// dataset's ShardedWriter, compaction rewrites) can lift manifest entries
// without reopening the file they just wrote.
type WrittenStats struct {
	NumRows uint64
	Bytes   int64
	Columns []ColumnStats
}

// WrittenStats reports the closed file's statistics. It returns nil until
// Close has succeeded.
func (w *Writer) WrittenStats() *WrittenStats {
	if !w.closed || w.err != nil {
		return nil
	}
	ws := &WrittenStats{
		NumRows: w.numRows,
		Bytes:   w.fileBytes,
		Columns: make([]ColumnStats, len(w.schema.Fields)),
	}
	for ci, f := range w.schema.Fields {
		cs := ColumnStats{
			Name:            f.Name,
			Type:            f.Type,
			Sparse:          f.Sparse,
			Nullable:        f.Nullable,
			CompressedBytes: w.colBytes[ci],
			Pages:           w.colPages[ci],
			Encodings:       w.colEnc[ci],
		}
		if len(w.ftr.ColumnBlooms) > 0 {
			cs.Bloom = w.ftr.ColumnBlooms[ci]
		}
		w.colZones[ci].fill(&cs)
		ws.Columns[ci] = cs
	}
	return ws
}

// checksumArray flattens a Merkle tree into the footer layout:
// page leaves (global page order), group hashes, root.
func checksumArray(tree *merkle.Tree) []uint64 {
	var out []uint64
	leaves := tree.Leaves()
	for _, hs := range leaves {
		for _, h := range hs {
			out = append(out, uint64(h))
		}
	}
	for g := range leaves {
		h, _ := tree.Group(g)
		out = append(out, uint64(h))
	}
	return append(out, uint64(tree.Root()))
}

// NumRowsWritten reports rows handed to the writer: dispatched groups plus
// the still-buffered remainder.
func (w *Writer) NumRowsWritten() uint64 { return w.dispatched + uint64(w.pendingRows) }

// SelectorStats reports how often the §2.6 cascade selector reused a
// cached decision versus running a full sampling pass, summed over all
// columns. Call it after Close; it returns zeros when selector caching is
// disabled (negative EncodingOptions.ResampleDrift) or no group was cut.
func (w *Writer) SelectorStats() (hits, resamples int64) {
	if w.pipe == nil {
		return 0, 0
	}
	return w.pipe.selectorStats()
}
