package core

import (
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"bullion/internal/enc"
)

// plainFixture writes nCols int64 columns with the cascade pinned to Plain
// so every page has a predictable byte size — the planner tests pin run
// boundaries against CoalesceLimit/CoalesceGap, which needs deterministic
// chunk sizes.
func plainFixture(t *testing.T, nCols, nRows, groupRows, rowsPerPage int) *File {
	t.Helper()
	fields := make([]Field, nCols)
	for i := range fields {
		fields[i] = Field{Name: fmt.Sprintf("c%02d", i), Type: Type{Kind: Int64}}
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	cols := make([]ColumnData, nCols)
	for i := range cols {
		vs := make(Int64Data, nRows)
		for r := range vs {
			vs[r] = rng.Int63() // wide values: Plain is the cheapest scheme
		}
		cols[i] = vs
	}
	batch, err := NewBatch(schema, cols)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.GroupRows = groupRows
	opts.RowsPerPage = rowsPerPage
	opts.Compliance = Level1
	opts.Enc = enc.DefaultOptions()
	opts.Enc.Allowed = map[enc.SchemeID]bool{enc.Plain: true}
	_, f := writeTestFile(t, schema, batch, opts)
	return f
}

// TestPlanSpanRunsAdjacent pins the core planner property: byte-adjacent
// chunks of different columns merge into one run, and a skipped column
// splits the run when its chunk exceeds the gap.
func TestPlanSpanRunsAdjacent(t *testing.T) {
	f := plainFixture(t, 4, 512, 512, 128)
	span := rowSpan{0, 512}

	// All four columns, one group: chunks are exactly adjacent -> 1 run.
	runs := planSpanRuns(f, []int{0, 1, 2, 3}, span, DefaultCoalesceGap)
	if len(runs) != 1 || len(runs[0].segs) != 4 {
		t.Fatalf("adjacent columns: %d runs (want 1 with 4 segs)", len(runs))
	}
	if runs[0].wasted != 0 {
		t.Fatalf("adjacent merge wasted %d bytes, want 0", runs[0].wasted)
	}

	// Columns 0 and 2: column 1's chunk (4 plain pages ~ 4.1 KB) exceeds
	// the default 4 KiB gap -> two runs.
	runs = planSpanRuns(f, []int{0, 2}, span, DefaultCoalesceGap)
	if len(runs) != 2 {
		t.Fatalf("gap > CoalesceGap: %d runs, want 2", len(runs))
	}

	// Raising the gap above the skipped chunk size reads through it.
	_, chunkSize1 := f.view.ChunkByteRange(0, 1)
	runs = planSpanRuns(f, []int{0, 2}, span, int64(chunkSize1))
	if len(runs) != 1 || len(runs[0].segs) != 2 {
		t.Fatalf("gap read-through: %d runs, want 1 with 2 segs", len(runs))
	}
	if runs[0].wasted != int64(chunkSize1) {
		t.Fatalf("wasted = %d, want skipped chunk size %d", runs[0].wasted, chunkSize1)
	}
}

// TestPlanSpanRunsLimit pins the CoalesceLimit cap: merging stops when the
// combined read would exceed the limit, and a single oversized segment
// still becomes one (uncapped) read because pages are fetched whole.
func TestPlanSpanRunsLimit(t *testing.T) {
	// 3 columns x 64Ki rows x 8 B/plain value ~ 512 KiB per chunk: two
	// chunks (~1.0 MiB) fit under the 1.25 MiB limit, three do not.
	const rows = 1 << 16
	f := plainFixture(t, 3, rows, rows, 1024)
	span := rowSpan{0, rows}

	runs := planSpanRuns(f, []int{0, 1, 2}, span, DefaultCoalesceGap)
	if len(runs) != 2 {
		t.Fatalf("limit split: %d runs, want 2", len(runs))
	}
	if got := len(runs[0].segs); got != 2 {
		t.Fatalf("first run has %d segs, want 2 (greedy merge under limit)", got)
	}
	if sz := runs[0].end - runs[0].off; sz > CoalesceLimit {
		t.Fatalf("merged run %d bytes exceeds CoalesceLimit %d", sz, CoalesceLimit)
	}

	// A single column chunk larger than the limit is one read.
	_, chunkSize := f.view.ChunkByteRange(0, 0)
	if chunkSize <= CoalesceLimit/3 {
		t.Fatalf("fixture chunk too small: %d", chunkSize)
	}
	runs = planSpanRuns(f, []int{0}, span, DefaultCoalesceGap)
	if len(runs) != 1 {
		t.Fatalf("single column: %d runs, want 1", len(runs))
	}
}

// scanAll drains a scan configured by opts into one concatenated column
// set.
func scanAll(t *testing.T, f *File, opts ScanOptions) ([]ColumnData, ScanStats) {
	t.Helper()
	sc, err := f.Scan(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	out := drainScanner(t, sc)
	return out, sc.Stats()
}

// TestScanCoalescedMatchesUncoalesced asserts the coalesced planner path
// returns batches identical to the per-column path over every column type,
// page-misaligned batches, and deletions — while issuing fewer reads.
func TestScanCoalescedMatchesUncoalesced(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(23))
	batch := testBatch(t, schema, rng, 5000)
	mf, f := writeTestFile(t, schema, batch, &Options{RowsPerPage: 256, GroupRows: 1500, Compliance: Level1})
	if err := f.DeleteRows(mf, []uint64{3, 700, 701, 702, 4999}); err != nil {
		t.Fatal(err)
	}

	for _, batchRows := range []int{97, 256, 1024, 100000} {
		t.Run(fmt.Sprintf("b%d", batchRows), func(t *testing.T) {
			base := ScanOptions{BatchRows: batchRows, Workers: 4}
			plain := base
			plain.DisableCoalesce = true
			want, wantStats := scanAll(t, f, plain)
			got, gotStats := scanAll(t, f, base)
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("column %q differs between coalesced and uncoalesced scan",
						schema.Fields[i].Name)
				}
			}
			if gotStats.ReadOps >= wantStats.ReadOps {
				t.Errorf("coalesced scan used %d reads, uncoalesced %d",
					gotStats.ReadOps, wantStats.ReadOps)
			}
			if gotStats.RowsEmitted != wantStats.RowsEmitted {
				t.Errorf("rows: %d vs %d", gotStats.RowsEmitted, wantStats.RowsEmitted)
			}
		})
	}
}

// TestScanReuseBatchesCorrect asserts recycled batches decode to the same
// data as a fresh scan: the recycled storage must be fully overwritten.
func TestScanReuseBatchesCorrect(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(29))
	batch := testBatch(t, schema, rng, 4000)
	_, f := writeTestFile(t, schema, batch, &Options{RowsPerPage: 256, GroupRows: 1024, Compliance: Level1})

	want, _ := scanAll(t, f, ScanOptions{BatchRows: 512, Workers: 2})

	sc, err := f.Scan(ScanOptions{BatchRows: 512, Workers: 2, ReuseBatches: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	var got []ColumnData
	for {
		b, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			// Seed with typed empty columns so every append copies:
			// appendColumn(nil, c) would alias c's soon-recycled storage.
			got = make([]ColumnData, len(b.Columns))
			for i := range got {
				got[i] = emptyColumn(schema.Fields[i])
			}
		}
		// Deep-copy before recycling: the storage is about to be reused.
		for i, c := range b.Columns {
			got[i] = appendColumn(got[i], c)
		}
		sc.Recycle(b)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("column %q differs under ReuseBatches", schema.Fields[i].Name)
		}
	}
}

// TestScanRecycleRace exercises Recycle racing the decode pool: the
// consumer recycles each batch immediately while workers are decoding
// later slots into previously recycled storage. Run under -race in CI.
func TestScanRecycleRace(t *testing.T) {
	f := plainFixture(t, 8, 1<<14, 4096, 512)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sc, err := f.Scan(ScanOptions{BatchRows: 1024, Workers: 4, ReuseBatches: true})
			if err != nil {
				t.Error(err)
				return
			}
			defer sc.Close()
			rows := 0
			for {
				b, err := sc.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Error(err)
					return
				}
				rows += b.NumRows()
				sc.Recycle(b)
			}
			if rows != 1<<14 {
				t.Errorf("scanned %d rows, want %d", rows, 1<<14)
			}
		}(g)
	}
	wg.Wait()
}

// TestScanCoalescedStats sanity-checks the new ScanStats fields: the
// coalesced scan of adjacent columns reports multi-column reads and no
// waste; a gap read-through reports waste.
func TestScanCoalescedStats(t *testing.T) {
	f := plainFixture(t, 4, 2048, 1024, 256)

	_, st := scanAll(t, f, ScanOptions{BatchRows: 1024})
	if st.ReadOps != 2 { // one coalesced read per group
		t.Fatalf("ReadOps = %d, want 2", st.ReadOps)
	}
	if st.CoalescedBytes != st.BytesRead {
		t.Fatalf("CoalescedBytes %d != BytesRead %d (all reads are multi-column)",
			st.CoalescedBytes, st.BytesRead)
	}
	if st.WastedBytes != 0 {
		t.Fatalf("WastedBytes = %d, want 0", st.WastedBytes)
	}

	// Project c00 and c02 with a gap wide enough to read through c01.
	_, chunkSize := f.view.ChunkByteRange(0, 1)
	_, st = scanAll(t, f, ScanOptions{
		Columns:     []string{"c00", "c02"},
		BatchRows:   1024,
		CoalesceGap: int(chunkSize),
	})
	if st.ReadOps != 2 {
		t.Fatalf("gap read-through ReadOps = %d, want 2", st.ReadOps)
	}
	if st.WastedBytes == 0 {
		t.Fatal("gap read-through reported no WastedBytes")
	}

	// Negative gap: only exact adjacency merges; the c01 hole splits runs.
	_, st = scanAll(t, f, ScanOptions{
		Columns:     []string{"c00", "c02"},
		BatchRows:   1024,
		CoalesceGap: -1,
	})
	if st.ReadOps != 4 || st.WastedBytes != 0 {
		t.Fatalf("negative gap: ReadOps=%d WastedBytes=%d, want 4 and 0", st.ReadOps, st.WastedBytes)
	}
}
