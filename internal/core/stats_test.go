package core

import (
	"math/rand"
	"testing"

	"bullion/internal/enc"
)

func TestFileStats(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(81))
	batch := testBatch(t, schema, rng, 1000)
	opts := DefaultOptions()
	opts.RowsPerPage = 256
	opts.GroupRows = 500
	mf, f := writeTestFile(t, schema, batch, opts)

	s := f.Stats()
	if s.FileBytes != mf.Size() {
		t.Fatalf("FileBytes = %d, want %d", s.FileBytes, mf.Size())
	}
	if s.NumRows != 1000 || s.LiveRows != 1000 {
		t.Fatalf("rows = %d/%d", s.NumRows, s.LiveRows)
	}
	if s.NumGroups != 2 {
		t.Fatalf("groups = %d", s.NumGroups)
	}
	if len(s.Columns) != len(schema.Fields) {
		t.Fatalf("columns = %d", len(s.Columns))
	}
	var sum uint64
	for _, c := range s.Columns {
		if c.CompressedBytes == 0 {
			t.Fatalf("column %s reports zero bytes", c.Name)
		}
		if c.Pages != 4 { // 2 groups x ceil(500/256) = 2x2 pages
			t.Fatalf("column %s pages = %d, want 4", c.Name, c.Pages)
		}
		total := 0
		for _, n := range c.Encodings {
			total += n
		}
		if total != c.Pages {
			t.Fatalf("column %s encoding histogram covers %d of %d pages", c.Name, total, c.Pages)
		}
		sum += c.CompressedBytes
	}
	if sum != s.DataBytes {
		t.Fatalf("DataBytes %d != column sum %d", s.DataBytes, sum)
	}
	// Data + footer + trailer = file.
	if int64(s.DataBytes)+int64(s.FooterBytes)+8 != s.FileBytes {
		t.Fatalf("accounting: data %d + footer %d + 8 != file %d",
			s.DataBytes, s.FooterBytes, s.FileBytes)
	}

	// The sparse column's stats reflect the sparse flag.
	found := false
	for _, c := range s.Columns {
		if c.Name == "clk_seq_cids" {
			found = true
			if !c.Sparse {
				t.Fatal("sparse flag lost in stats")
			}
		}
	}
	if !found {
		t.Fatal("clk_seq_cids missing from stats")
	}

	top := s.TopColumnsBySize(3)
	if len(top) != 3 {
		t.Fatalf("top = %d", len(top))
	}
	if top[0].CompressedBytes < top[1].CompressedBytes || top[1].CompressedBytes < top[2].CompressedBytes {
		t.Fatal("top columns not sorted by size")
	}

	hist := s.EncodingHistogram()
	pages := 0
	for _, n := range hist {
		pages += n
	}
	if pages != s.NumPages {
		t.Fatalf("histogram covers %d of %d pages", pages, s.NumPages)
	}
}

func TestStatsAfterDeletion(t *testing.T) {
	mf, f, _ := writeLevel(t, Level2, 1000)
	if err := f.DeleteRows(mf, []uint64{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.LiveRows != 996 {
		t.Fatalf("live = %d", s.LiveRows)
	}
	if s.Compliance != Level2 {
		t.Fatalf("compliance = %d", s.Compliance)
	}
}

func TestStatsEncodingIDsAreNamed(t *testing.T) {
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(82))
	batch := testBatch(t, schema, rng, 300)
	_, f := writeTestFile(t, schema, batch, nil)
	for id := range f.Stats().EncodingHistogram() {
		if id == 0 {
			continue // empty-page marker
		}
		if name := enc.SchemeID(id).String(); len(name) > 7 && name[:7] == "scheme(" {
			t.Fatalf("page recorded unnamed scheme id %d", id)
		}
	}
}
