package core

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"bullion/internal/enc"
)

// failAfterWriter fails with errInjected once limit bytes have been
// accepted — an io.Writer dying mid-group.
type failAfterWriter struct {
	buf     bytes.Buffer
	limit   int
	written int
}

var errInjected = errors.New("injected write failure")

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.limit {
		room := f.limit - f.written
		if room > 0 {
			f.buf.Write(p[:room])
			f.written += room
		}
		return room, errInjected
	}
	f.buf.Write(p)
	f.written += len(p)
	return len(p), nil
}

// TestWriterStickyWriteError: a write failure mid-group must poison every
// subsequent Write and Close with the original error, and no footer may
// reach the output.
func TestWriterStickyWriteError(t *testing.T) {
	schema, batch, opts := goldenTable(t)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			o := opts.clone()
			o.EncodeWorkers = workers
			// Fail inside the second row group's pages (groups are 1000
			// rows; the first group of the golden table is ~30KB).
			fw := &failAfterWriter{limit: 40000}
			w, err := NewWriter(fw, schema, o)
			if err != nil {
				t.Fatal(err)
			}
			first := w.Write(batch)
			if first == nil {
				first = w.Close()
			}
			if !errors.Is(first, errInjected) {
				t.Fatalf("got %v, want injected failure", first)
			}
			// Sticky: both entry points keep returning the original error.
			if err := w.Write(batch); !errors.Is(err, errInjected) {
				t.Fatalf("Write after failure = %v", err)
			}
			if err := w.Close(); !errors.Is(err, errInjected) {
				t.Fatalf("Close after failure = %v", err)
			}
			// No partial footer: the truncated bytes must not open.
			data := fw.buf.Bytes()
			if _, err := Open(bytes.NewReader(data), int64(len(data))); err == nil {
				t.Fatal("truncated file opened as a complete Bullion file")
			}
		})
	}
}

// TestWriterErrorAtFooter: a failure injected in the footer region still
// yields a sticky error and an unopenable file.
func TestWriterErrorAtFooter(t *testing.T) {
	schema, batch, opts := goldenTable(t)
	// Measure the data region of a successful file, then fail ~100 bytes
	// into the footer.
	dataLen := 0
	{
		var buf bytes.Buffer
		cw, err := NewWriter(&buf, schema, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := cw.Write(batch); err != nil {
			t.Fatal(err)
		}
		if err := cw.Close(); err != nil {
			t.Fatal(err)
		}
		dataLen = int(cw.offset)
	}
	fw := &failAfterWriter{limit: dataLen + 100}
	cw, err := NewWriter(fw, schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Write(batch); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); !errors.Is(err, errInjected) {
		t.Fatalf("Close = %v, want injected failure", err)
	}
	if err := cw.Close(); !errors.Is(err, errInjected) {
		t.Fatalf("second Close = %v, want sticky injected failure", err)
	}
	data := fw.buf.Bytes()
	if _, err := Open(bytes.NewReader(data), int64(len(data))); err == nil {
		t.Fatal("file with truncated footer opened successfully")
	}
}

// TestParallelWriterDeterminism: the pipelined writer must emit
// byte-identical files at every worker count and in-flight bound.
func TestParallelWriterDeterminism(t *testing.T) {
	schema, batch, opts := goldenTable(t)
	write := func(workers, inflight int) []byte {
		o := opts.clone()
		o.EncodeWorkers = workers
		o.MaxInflightGroups = inflight
		var buf bytes.Buffer
		w, err := NewWriter(&buf, schema, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(batch); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := write(1, 1)
	for _, cfg := range [][2]int{{2, 2}, {4, 3}, {8, 0}, {0, 0}} {
		if got := write(cfg[0], cfg[1]); !bytes.Equal(got, base) {
			t.Fatalf("EncodeWorkers=%d MaxInflightGroups=%d produced different bytes (%d vs %d)",
				cfg[0], cfg[1], len(got), len(base))
		}
	}
}

// TestSelectorCacheAmortizesAcrossGroups: on a multi-group file the
// cascade must mostly reuse cached decisions, and disabling the cache
// (negative ResampleDrift) must still produce a readable file.
func TestSelectorCacheAmortizesAcrossGroups(t *testing.T) {
	schema, batch, opts := goldenTable(t)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	hits, resamples := w.SelectorStats()
	if resamples == 0 || hits == 0 {
		t.Fatalf("selector stats: %d hits, %d resamples", hits, resamples)
	}
	if hits < resamples {
		t.Fatalf("cache barely amortizes: %d hits vs %d resamples", hits, resamples)
	}

	// Cache disabled: per-page selection, still a valid file.
	off := opts.clone()
	off.Enc = enc.DefaultOptions()
	off.Enc.ResampleDrift = -1
	var buf2 bytes.Buffer
	w2, err := NewWriter(&buf2, schema, off)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Write(batch); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if h, r := w2.SelectorStats(); h != 0 || r != 0 {
		t.Fatalf("disabled cache reported stats %d/%d", h, r)
	}
	f, err := Open(bytes.NewReader(buf2.Bytes()), int64(buf2.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadColumn("uid")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch.Columns[0]) {
		t.Fatal("uncached file decodes differently")
	}
}

// TestWriterRecycledBatchBuffer: Write copies the batch's top-level
// column slices, so a caller may refill the same buffers for the next
// batch even while earlier groups are still encoding asynchronously.
func TestWriterRecycledBatchBuffer(t *testing.T) {
	schema, err := NewSchema(Field{Name: "v", Type: Type{Kind: Int64}})
	if err != nil {
		t.Fatal(err)
	}
	const batchRows, nBatches = 512, 16
	buf := make(Int64Data, batchRows) // recycled across every Write
	batch, err := NewBatch(schema, []ColumnData{buf})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	w, err := NewWriter(&out, schema, &Options{
		RowsPerPage:   128,
		GroupRows:     512, // every batch cuts (and dispatches) a group
		Compliance:    Level1,
		EncodeWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for bi := 0; bi < nBatches; bi++ {
		for r := range buf {
			buf[r] = int64(bi*batchRows + r)
		}
		if err := w.Write(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(bytes.NewReader(out.Bytes()), int64(out.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadColumn("v")
	if err != nil {
		t.Fatal(err)
	}
	vals := got.(Int64Data)
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("row %d = %d, want %d: writer aliased the recycled batch buffer", i, v, i)
		}
	}
}

// TestWriterRejectsForeignSchemaTypes: a batch from a different schema
// with the same column count but mismatched types must be rejected, not
// panic in appendColumn.
func TestWriterRejectsForeignSchemaTypes(t *testing.T) {
	intSchema, err := NewSchema(Field{Name: "a", Type: Type{Kind: Int64}})
	if err != nil {
		t.Fatal(err)
	}
	floatSchema, err := NewSchema(Field{Name: "a", Type: Type{Kind: Float64}})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NewBatch(floatSchema, []ColumnData{Float64Data{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	w, err := NewWriter(&out, intSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(batch); err == nil {
		t.Fatal("writer accepted a type-mismatched batch")
	}
}

// TestWriterBoundedInflight: MaxInflightGroups=1 forces full pipeline
// drain between groups and must still complete and verify.
func TestWriterBoundedInflight(t *testing.T) {
	schema, batch, opts := goldenTable(t)
	o := opts.clone()
	o.EncodeWorkers = 4
	o.MaxInflightGroups = 1
	var buf bytes.Buffer
	w, err := NewWriter(&buf, schema, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != uint64(batch.NumRows()) {
		t.Fatalf("rows = %d, want %d", f.NumRows(), batch.NumRows())
	}
}
