package core

import (
	"math"
	"sort"

	"bullion/internal/enc"
	"bullion/internal/footer"
	"bullion/internal/quant"
)

// PageStats is the per-page zone map recorded by the writer: min/max over
// the page's non-null int64/int32 values (native order) or float64/float32
// values (math.Float64bits patterns flagged StatFloatBits), plus the null
// count. Pages of other types carry a flagless entry and are never skipped
// by range filters; byte-string pages carry a bloom filter instead
// (View.PageBloom).
type PageStats = footer.PageStat

// PageStats returns the zone map of global page p, or ok=false when the
// writer recorded no statistics section.
func (f *File) PageStats(p int) (PageStats, bool) { return f.view.PageStat(p) }

// computePageStats derives the zone map of one page's data before
// encoding. Bounds cover the values as the reader will decode them —
// quantized float32 pages are bounded after a quantize/dequantize round
// trip, since storage rounding can move a value past the raw input's
// extremes. Deletions only remove rows (Level-2 erasure masks with
// values already present in the page), so the bounds remain conservative
// for the page's live rows. NaN values constrain nothing: a page of only
// NaNs gets no bounds and is never pruned.
func computePageStats(f Field, data ColumnData) footer.PageStat {
	switch d := data.(type) {
	case Int64Data:
		st := footer.PageStat{Flags: footer.StatHasNullCount}
		if len(d) > 0 {
			st.Flags |= footer.StatHasMinMax
			st.Min, st.Max = d[0], d[0]
			for _, v := range d[1:] {
				if v < st.Min {
					st.Min = v
				}
				if v > st.Max {
					st.Max = v
				}
			}
		}
		return st
	case NullableInt64Data:
		st := footer.PageStat{Flags: footer.StatHasNullCount}
		seen := false
		for i, v := range d.Values {
			if !d.Valid[i] {
				st.NullCount++
				continue
			}
			if !seen {
				st.Min, st.Max = v, v
				seen = true
				continue
			}
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
		}
		if seen {
			st.Flags |= footer.StatHasMinMax
		}
		return st
	case Float64Data:
		return floatPageStats(d)
	case Float32Data:
		st := floatPageStats32(d)
		if f.Type.Quant != quant.FP32 && st.Flags&footer.StatHasMinMax != 0 {
			// Quantization rounds to nearest, which is monotone, so the
			// decoded page's extremes are exactly the decoded raw extremes:
			// round-trip just those two values instead of the whole page
			// (the encoder quantizes the page once already).
			lo, hi := statFloatBounds(st.Min, st.Max)
			bits, err := quant.Quantize([]float32{float32(lo), float32(hi)}, f.Type.Quant)
			if err != nil {
				return footer.PageStat{Flags: footer.StatHasNullCount}
			}
			stored, err := quant.Dequantize(bits, f.Type.Quant)
			if err != nil {
				return footer.PageStat{Flags: footer.StatHasNullCount}
			}
			st.Min = int64(math.Float64bits(float64(stored[0])))
			st.Max = int64(math.Float64bits(float64(stored[1])))
		}
		return st
	}
	return footer.PageStat{}
}

// floatPageStats folds float64 values into a StatFloatBits zone map,
// skipping NaNs.
func floatPageStats(vs []float64) footer.PageStat {
	st := footer.PageStat{Flags: footer.StatHasNullCount}
	seen := false
	var lo, hi float64
	for _, v := range vs {
		if math.IsNaN(v) {
			continue
		}
		if !seen {
			lo, hi = v, v
			seen = true
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if seen {
		st.Flags |= footer.StatHasMinMax | footer.StatFloatBits
		st.Min = int64(math.Float64bits(lo))
		st.Max = int64(math.Float64bits(hi))
	}
	return st
}

func floatPageStats32(vs []float32) footer.PageStat {
	st := footer.PageStat{Flags: footer.StatHasNullCount}
	seen := false
	var lo, hi float64
	for _, v := range vs {
		f := float64(v)
		if math.IsNaN(f) {
			continue
		}
		if !seen {
			lo, hi = f, f
			seen = true
			continue
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if seen {
		st.Flags |= footer.StatHasMinMax | footer.StatFloatBits
		st.Min = int64(math.Float64bits(lo))
		st.Max = int64(math.Float64bits(hi))
	}
	return st
}

// statFloatBounds decodes a stat's bounds as floats (valid when the entry
// is flagged StatHasMinMax|StatFloatBits).
func statFloatBounds(min, max int64) (float64, float64) {
	return math.Float64frombits(uint64(min)), math.Float64frombits(uint64(max))
}

// ColumnStats summarizes one column's physical storage.
type ColumnStats struct {
	Name            string
	Type            Type
	Sparse          bool
	Nullable        bool
	CompressedBytes uint64
	Pages           int
	// Encodings histograms the top-level cascade scheme across the
	// column's pages (multiple schemes appear when data shifts between
	// groups or after Level-2 rewrites).
	Encodings map[enc.SchemeID]int
	// Min/Max is the column-level zone map of an int64/int32 column: the
	// fold of every page's min/max statistics. HasMinMax is false when any
	// non-empty page of the column lacks recorded int bounds (non-int
	// columns, or statless files), in which case the bounds must not be
	// used for pruning. NullCount sums the per-page null counts.
	Min, Max  int64
	HasMinMax bool
	NullCount uint64
	// FloatMin/FloatMax is the column-level zone map of a float64/float32
	// column, valid only when HasFloatMinMax (v3 files).
	FloatMin, FloatMax float64
	HasFloatMinMax     bool
	// Bloom is the column's serialized split-block bloom filter over its
	// byte-string values (nil when absent: non-byte-string columns,
	// blooms disabled, v2 files). Probe with enc.OpenBloom.
	Bloom []byte
}

// FileStats summarizes a file's physical storage.
type FileStats struct {
	FileBytes   int64
	DataBytes   uint64
	FooterBytes int
	NumRows     uint64
	LiveRows    uint64
	NumGroups   int
	NumPages    int
	Compliance  Level
	Columns     []ColumnStats
}

// Stats walks the footer (no data reads) and reports per-column storage.
func (f *File) Stats() *FileStats {
	v := f.view
	s := &FileStats{
		FileBytes:   f.ftr.size,
		FooterBytes: f.ftr.footerLen,
		NumRows:     v.NumRows(),
		LiveRows:    f.NumLiveRows(),
		NumGroups:   v.NumGroups(),
		NumPages:    v.NumPages(),
		Compliance:  f.Compliance(),
		Columns:     make([]ColumnStats, v.NumColumns()),
	}
	for c := 0; c < v.NumColumns(); c++ {
		field := f.FieldByIndex(c)
		cs := ColumnStats{
			Name:      field.Name,
			Type:      field.Type,
			Sparse:    field.Sparse,
			Nullable:  field.Nullable,
			Encodings: map[enc.SchemeID]int{},
			Bloom:     v.ColumnBloom(c),
		}
		zone := newZoneFold()
		for g := 0; g < v.NumGroups(); g++ {
			_, size := v.ChunkByteRange(g, c)
			cs.CompressedBytes += size
			first, count := v.ChunkPages(g, c)
			cs.Pages += count
			for p := first; p < first+count; p++ {
				cs.Encodings[enc.SchemeID(v.PageCompression(p))]++
				st, ok := v.PageStat(p)
				zone.addPage(st, ok, v.PageRows(p))
			}
		}
		if cstat, ok := v.ColumnStat(c); ok {
			// v3 files persist the writer's fold; prefer it (it is what the
			// dataset manifest lifted).
			zone.set(cstat)
		}
		zone.fill(&cs)
		s.DataBytes += cs.CompressedBytes
		s.Columns[c] = cs
	}
	return s
}

// zoneFold folds page statistics into one column-level zone map, keeping
// the int and float domains apart. A column's bounds are only trustworthy
// when every non-empty page contributed bounds of one domain.
type zoneFold struct {
	seen       bool
	floatBits  bool
	min, max   int64
	fmin, fmax float64
	nullCount  uint64
	allBounded bool
}

func newZoneFold() *zoneFold { return &zoneFold{allBounded: true} }

// addPage folds one page's stat (ok=false when the file has no page-stats
// section).
func (z *zoneFold) addPage(st footer.PageStat, ok bool, pageRows int) {
	if !ok {
		z.allBounded = false
		return
	}
	z.nullCount += uint64(st.NullCount)
	if st.Flags&footer.StatHasMinMax == 0 {
		// An empty page (0 rows) constrains nothing; any other boundless
		// page poisons the column fold.
		if pageRows > 0 {
			z.allBounded = false
		}
		return
	}
	if st.Flags&footer.StatFloatBits != 0 {
		lo, hi := statFloatBounds(st.Min, st.Max)
		if !z.seen {
			z.seen, z.floatBits = true, true
			z.fmin, z.fmax = lo, hi
			return
		}
		if !z.floatBits {
			z.allBounded = false // mixed domains: never prune
			return
		}
		if lo < z.fmin {
			z.fmin = lo
		}
		if hi > z.fmax {
			z.fmax = hi
		}
		return
	}
	if !z.seen {
		z.seen = true
		z.min, z.max = st.Min, st.Max
		return
	}
	if z.floatBits {
		z.allBounded = false
		return
	}
	if st.Min < z.min {
		z.min = st.Min
	}
	if st.Max > z.max {
		z.max = st.Max
	}
}

// columnStat renders the fold as the footer's file-level entry.
func (z *zoneFold) columnStat() footer.ColumnStat {
	st := footer.ColumnStat{NullCount: z.nullCount, Flags: footer.StatHasNullCount}
	if z.seen && z.allBounded {
		st.Flags |= footer.StatHasMinMax
		if z.floatBits {
			st.Flags |= footer.StatFloatBits
			st.Min = int64(math.Float64bits(z.fmin))
			st.Max = int64(math.Float64bits(z.fmax))
		} else {
			st.Min, st.Max = z.min, z.max
		}
	}
	return st
}

// set overrides the fold with a persisted file-level entry.
func (z *zoneFold) set(st footer.ColumnStat) {
	z.nullCount = st.NullCount
	z.seen = st.Flags&footer.StatHasMinMax != 0
	z.allBounded = z.seen
	z.floatBits = st.Flags&footer.StatFloatBits != 0
	if z.floatBits {
		z.fmin, z.fmax = statFloatBounds(st.Min, st.Max)
	} else {
		z.min, z.max = st.Min, st.Max
	}
}

// fill copies the fold into a ColumnStats record.
func (z *zoneFold) fill(cs *ColumnStats) {
	cs.NullCount = z.nullCount
	if !z.seen || !z.allBounded {
		return
	}
	if z.floatBits {
		cs.FloatMin, cs.FloatMax = z.fmin, z.fmax
		cs.HasFloatMinMax = true
	} else {
		cs.Min, cs.Max = z.min, z.max
		cs.HasMinMax = true
	}
}

// TopColumnsBySize returns the n largest columns.
func (s *FileStats) TopColumnsBySize(n int) []ColumnStats {
	cols := append([]ColumnStats{}, s.Columns...)
	sort.Slice(cols, func(i, j int) bool {
		if cols[i].CompressedBytes != cols[j].CompressedBytes {
			return cols[i].CompressedBytes > cols[j].CompressedBytes
		}
		return cols[i].Name < cols[j].Name
	})
	if n > len(cols) {
		n = len(cols)
	}
	return cols[:n]
}

// EncodingHistogram aggregates page encodings across all columns.
func (s *FileStats) EncodingHistogram() map[enc.SchemeID]int {
	out := map[enc.SchemeID]int{}
	for _, c := range s.Columns {
		for id, n := range c.Encodings {
			out[id] += n
		}
	}
	return out
}
