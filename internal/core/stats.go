package core

import (
	"sort"

	"bullion/internal/enc"
	"bullion/internal/footer"
)

// PageStats is the per-page zone map recorded by the writer: min/max over
// the page's non-null int64/int32 values plus the null count. Pages of
// other types carry an empty (flagless) entry and are never skipped.
type PageStats = footer.PageStat

// PageStats returns the zone map of global page p, or ok=false when the
// writer recorded no statistics section.
func (f *File) PageStats(p int) (PageStats, bool) { return f.view.PageStat(p) }

// computePageStats derives the zone map of one page's data before
// encoding. Bounds cover the values as written; deletions only remove
// rows, so they remain conservative bounds for the page's live rows.
func computePageStats(data ColumnData) footer.PageStat {
	switch d := data.(type) {
	case Int64Data:
		st := footer.PageStat{Flags: footer.StatHasNullCount}
		if len(d) > 0 {
			st.Flags |= footer.StatHasMinMax
			st.Min, st.Max = d[0], d[0]
			for _, v := range d[1:] {
				if v < st.Min {
					st.Min = v
				}
				if v > st.Max {
					st.Max = v
				}
			}
		}
		return st
	case NullableInt64Data:
		st := footer.PageStat{Flags: footer.StatHasNullCount}
		seen := false
		for i, v := range d.Values {
			if !d.Valid[i] {
				st.NullCount++
				continue
			}
			if !seen {
				st.Min, st.Max = v, v
				seen = true
				continue
			}
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
		}
		if seen {
			st.Flags |= footer.StatHasMinMax
		}
		return st
	}
	return footer.PageStat{}
}

// ColumnStats summarizes one column's physical storage.
type ColumnStats struct {
	Name            string
	Type            Type
	Sparse          bool
	Nullable        bool
	CompressedBytes uint64
	Pages           int
	// Encodings histograms the top-level cascade scheme across the
	// column's pages (multiple schemes appear when data shifts between
	// groups or after Level-2 rewrites).
	Encodings map[enc.SchemeID]int
	// Min/Max is the column-level zone map: the fold of every page's
	// min/max statistics. HasMinMax is false when any page of the column
	// lacks recorded bounds (non-int columns, or statless files), in which
	// case the bounds must not be used for pruning. NullCount sums the
	// per-page null counts.
	Min, Max  int64
	HasMinMax bool
	NullCount uint64
}

// FileStats summarizes a file's physical storage.
type FileStats struct {
	FileBytes   int64
	DataBytes   uint64
	FooterBytes int
	NumRows     uint64
	LiveRows    uint64
	NumGroups   int
	NumPages    int
	Compliance  Level
	Columns     []ColumnStats
}

// Stats walks the footer (no data reads) and reports per-column storage.
func (f *File) Stats() *FileStats {
	v := f.view
	s := &FileStats{
		FileBytes:   f.size,
		FooterBytes: f.footerLen,
		NumRows:     v.NumRows(),
		LiveRows:    f.NumLiveRows(),
		NumGroups:   v.NumGroups(),
		NumPages:    v.NumPages(),
		Compliance:  f.Compliance(),
		Columns:     make([]ColumnStats, v.NumColumns()),
	}
	for c := 0; c < v.NumColumns(); c++ {
		field := f.FieldByIndex(c)
		cs := ColumnStats{
			Name:      field.Name,
			Type:      field.Type,
			Sparse:    field.Sparse,
			Nullable:  field.Nullable,
			Encodings: map[enc.SchemeID]int{},
		}
		allBounded := v.HasPageStats()
		for g := 0; g < v.NumGroups(); g++ {
			_, size := v.ChunkByteRange(g, c)
			cs.CompressedBytes += size
			first, count := v.ChunkPages(g, c)
			cs.Pages += count
			for p := first; p < first+count; p++ {
				cs.Encodings[enc.SchemeID(v.PageCompression(p))]++
				st, ok := v.PageStat(p)
				if !ok {
					allBounded = false
					continue
				}
				cs.NullCount += uint64(st.NullCount)
				if st.Flags&footer.StatHasMinMax == 0 {
					// An empty page (0 rows) constrains nothing; any other
					// boundless page poisons the column fold.
					if v.PageRows(p) > 0 {
						allBounded = false
					}
					continue
				}
				if !cs.HasMinMax {
					cs.Min, cs.Max = st.Min, st.Max
					cs.HasMinMax = true
					continue
				}
				if st.Min < cs.Min {
					cs.Min = st.Min
				}
				if st.Max > cs.Max {
					cs.Max = st.Max
				}
			}
		}
		// A column-level zone map is only trustworthy when every non-empty
		// page contributed bounds.
		cs.HasMinMax = cs.HasMinMax && allBounded
		s.DataBytes += cs.CompressedBytes
		s.Columns[c] = cs
	}
	return s
}

// TopColumnsBySize returns the n largest columns.
func (s *FileStats) TopColumnsBySize(n int) []ColumnStats {
	cols := append([]ColumnStats{}, s.Columns...)
	sort.Slice(cols, func(i, j int) bool {
		if cols[i].CompressedBytes != cols[j].CompressedBytes {
			return cols[i].CompressedBytes > cols[j].CompressedBytes
		}
		return cols[i].Name < cols[j].Name
	})
	if n > len(cols) {
		n = len(cols)
	}
	return cols[:n]
}

// EncodingHistogram aggregates page encodings across all columns.
func (s *FileStats) EncodingHistogram() map[enc.SchemeID]int {
	out := map[enc.SchemeID]int{}
	for _, c := range s.Columns {
		for id, n := range c.Encodings {
			out[id] += n
		}
	}
	return out
}
