// Package mediastore implements a row-oriented, schema'd binary format
// with sync-marked blocks — the Apache Avro substitute for Bullion's
// media tables (paper §1 and §2.5). Large media objects (video/audio
// chunks) are stored row-major; random access requires locating a block
// and decoding records sequentially, which is exactly the fragmented-I/O
// behaviour the multimodal experiment measures against.
package mediastore

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Magic identifies a media-store file.
const Magic = "MAVR"

// FieldType enumerates record field types.
type FieldType uint8

// Field types.
const (
	Long FieldType = iota + 1
	Double
	Bytes
	String
)

// FieldDef is one field of the row schema.
type FieldDef struct {
	Name string
	Type FieldType
}

// syncMarker separates blocks, Avro-style.
var syncMarker = [16]byte{0xB0, 0x11, 0x10, 0x4E, 0x5E, 0xED, 0xFA, 0xCE,
	0xB0, 0x11, 0x10, 0x4E, 0x5E, 0xED, 0xFA, 0xCE}

// DefaultBlockRecords is the records-per-block default.
const DefaultBlockRecords = 64

// Writer appends records and flushes sync-marked blocks.
type Writer struct {
	w            io.Writer
	schema       []FieldDef
	blockRecords int
	buf          []byte
	bufRecords   int
	nRecords     int64
	closed       bool
}

// NewWriter writes the header and returns a writer.
func NewWriter(w io.Writer, schema []FieldDef, blockRecords int) (*Writer, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("mediastore: empty schema")
	}
	if blockRecords <= 0 {
		blockRecords = DefaultBlockRecords
	}
	hdr := []byte(Magic)
	hdr = binary.AppendUvarint(hdr, uint64(len(schema)))
	for _, f := range schema {
		hdr = binary.AppendUvarint(hdr, uint64(len(f.Name)))
		hdr = append(hdr, f.Name...)
		hdr = append(hdr, byte(f.Type))
	}
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	return &Writer{w: w, schema: schema, blockRecords: blockRecords}, nil
}

// Append encodes one record (values parallel to the schema).
func (w *Writer) Append(record []any) error {
	if w.closed {
		return fmt.Errorf("mediastore: writer closed")
	}
	if len(record) != len(w.schema) {
		return fmt.Errorf("mediastore: record has %d fields, schema %d", len(record), len(w.schema))
	}
	for i, f := range w.schema {
		switch f.Type {
		case Long:
			v, ok := record[i].(int64)
			if !ok {
				return fmt.Errorf("mediastore: field %q: want int64, got %T", f.Name, record[i])
			}
			w.buf = binary.AppendVarint(w.buf, v)
		case Double:
			v, ok := record[i].(float64)
			if !ok {
				return fmt.Errorf("mediastore: field %q: want float64, got %T", f.Name, record[i])
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			w.buf = append(w.buf, b[:]...)
		case Bytes:
			v, ok := record[i].([]byte)
			if !ok {
				return fmt.Errorf("mediastore: field %q: want []byte, got %T", f.Name, record[i])
			}
			w.buf = binary.AppendUvarint(w.buf, uint64(len(v)))
			w.buf = append(w.buf, v...)
		case String:
			v, ok := record[i].(string)
			if !ok {
				return fmt.Errorf("mediastore: field %q: want string, got %T", f.Name, record[i])
			}
			w.buf = binary.AppendUvarint(w.buf, uint64(len(v)))
			w.buf = append(w.buf, v...)
		default:
			return fmt.Errorf("mediastore: unknown field type %d", f.Type)
		}
	}
	w.bufRecords++
	w.nRecords++
	if w.bufRecords >= w.blockRecords {
		return w.flushBlock()
	}
	return nil
}

func (w *Writer) flushBlock() error {
	if w.bufRecords == 0 {
		return nil
	}
	hdr := binary.AppendUvarint(nil, uint64(w.bufRecords))
	hdr = binary.AppendUvarint(hdr, uint64(len(w.buf)))
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	if _, err := w.w.Write(syncMarker[:]); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	w.bufRecords = 0
	return nil
}

// Close flushes the final partial block.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.flushBlock()
}

// NumRecords reports records appended.
func (w *Writer) NumRecords() int64 { return w.nRecords }

// Reader opens a media-store file. Construction scans block headers to
// build a block index (record start + file offset per block); record
// lookups then read the containing block and decode sequentially —
// row-store access, as Avro readers do.
type Reader struct {
	r      io.ReaderAt
	schema []FieldDef
	blocks []blockInfo
	n      int64
}

type blockInfo struct {
	firstRecord int64
	nRecords    int
	dataOff     int64
	dataLen     int
}

// Open scans the header and block structure.
func Open(r io.ReaderAt, size int64) (*Reader, error) {
	hdr := make([]byte, 4096)
	n, err := r.ReadAt(hdr, 0)
	if err != nil && err != io.EOF {
		return nil, err
	}
	hdr = hdr[:n]
	if len(hdr) < 4 || string(hdr[:4]) != Magic {
		return nil, fmt.Errorf("mediastore: bad magic")
	}
	pos := int64(4)
	nFields, sz := binary.Uvarint(hdr[pos:])
	if sz <= 0 {
		return nil, fmt.Errorf("mediastore: bad schema")
	}
	pos += int64(sz)
	schema := make([]FieldDef, nFields)
	for i := range schema {
		l, sz := binary.Uvarint(hdr[pos:])
		if sz <= 0 || pos+int64(sz)+int64(l)+1 > int64(len(hdr)) {
			return nil, fmt.Errorf("mediastore: bad schema field %d", i)
		}
		pos += int64(sz)
		schema[i].Name = string(hdr[pos : pos+int64(l)])
		pos += int64(l)
		schema[i].Type = FieldType(hdr[pos])
		pos++
	}

	rd := &Reader{r: r, schema: schema}
	var rec int64
	for pos < size {
		var head [20]byte
		hn, err := r.ReadAt(head[:], pos)
		if hn == 0 && err != nil {
			break
		}
		nRec, s1 := binary.Uvarint(head[:hn])
		if s1 <= 0 {
			return nil, fmt.Errorf("mediastore: bad block header at %d", pos)
		}
		dataLen, s2 := binary.Uvarint(head[s1:hn])
		if s2 <= 0 {
			return nil, fmt.Errorf("mediastore: bad block length at %d", pos)
		}
		dataOff := pos + int64(s1+s2)
		rd.blocks = append(rd.blocks, blockInfo{
			firstRecord: rec, nRecords: int(nRec), dataOff: dataOff, dataLen: int(dataLen),
		})
		rec += int64(nRec)
		pos = dataOff + int64(dataLen) + int64(len(syncMarker))
	}
	rd.n = rec
	return rd, nil
}

// Schema returns the row schema.
func (r *Reader) Schema() []FieldDef { return r.schema }

// NumRecords returns the record count.
func (r *Reader) NumRecords() int64 { return r.n }

// Get reads record i: one block read plus sequential decode to the record.
func (r *Reader) Get(i int64) ([]any, error) {
	if i < 0 || i >= r.n {
		return nil, fmt.Errorf("mediastore: record %d out of range [0,%d)", i, r.n)
	}
	// Binary search the block index.
	lo, hi := 0, len(r.blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		b := r.blocks[mid]
		if i < b.firstRecord {
			hi = mid
		} else if i >= b.firstRecord+int64(b.nRecords) {
			lo = mid + 1
		} else {
			lo = mid
			break
		}
	}
	b := r.blocks[lo]
	buf := make([]byte, b.dataLen)
	if _, err := r.r.ReadAt(buf, b.dataOff); err != nil {
		return nil, err
	}
	pos := 0
	for rec := b.firstRecord; ; rec++ {
		vals, next, err := r.decodeRecord(buf, pos)
		if err != nil {
			return nil, err
		}
		if rec == i {
			return vals, nil
		}
		pos = next
	}
}

func (r *Reader) decodeRecord(buf []byte, pos int) ([]any, int, error) {
	vals := make([]any, len(r.schema))
	for i, f := range r.schema {
		switch f.Type {
		case Long:
			v, sz := binary.Varint(buf[pos:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("mediastore: corrupt long")
			}
			vals[i] = v
			pos += sz
		case Double:
			if pos+8 > len(buf) {
				return nil, 0, fmt.Errorf("mediastore: corrupt double")
			}
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
			pos += 8
		case Bytes, String:
			l, sz := binary.Uvarint(buf[pos:])
			if sz <= 0 || pos+sz+int(l) > len(buf) {
				return nil, 0, fmt.Errorf("mediastore: corrupt bytes")
			}
			pos += sz
			if f.Type == Bytes {
				out := make([]byte, l)
				copy(out, buf[pos:pos+int(l)])
				vals[i] = out
			} else {
				vals[i] = string(buf[pos : pos+int(l)])
			}
			pos += int(l)
		default:
			return nil, 0, fmt.Errorf("mediastore: unknown field type %d", f.Type)
		}
	}
	return vals, pos, nil
}

// Scan iterates all records in order, calling fn for each; row-major
// sequential access (the cheap direction for a row store).
func (r *Reader) Scan(fn func(i int64, record []any) error) error {
	var rec int64
	for _, b := range r.blocks {
		buf := make([]byte, b.dataLen)
		if _, err := r.r.ReadAt(buf, b.dataOff); err != nil {
			return err
		}
		pos := 0
		for k := 0; k < b.nRecords; k++ {
			vals, next, err := r.decodeRecord(buf, pos)
			if err != nil {
				return err
			}
			if err := fn(rec, vals); err != nil {
				return err
			}
			pos = next
			rec++
		}
	}
	return nil
}
