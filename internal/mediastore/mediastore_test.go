package mediastore

import (
	"io"
	"math/rand"
	"testing"
)

type memFile struct{ data []byte }

func (m *memFile) Write(p []byte) (int, error) {
	m.data = append(m.data, p...)
	return len(p), nil
}

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func testSchema() []FieldDef {
	return []FieldDef{
		{Name: "id", Type: Long},
		{Name: "score", Type: Double},
		{Name: "name", Type: String},
		{Name: "payload", Type: Bytes},
	}
}

func writeRecords(t *testing.T, n, blockRecords int) (*memFile, [][]any) {
	t.Helper()
	mf := &memFile{}
	w, err := NewWriter(mf, testSchema(), blockRecords)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	records := make([][]any, n)
	for i := range records {
		payload := make([]byte, rng.Intn(200))
		rng.Read(payload)
		records[i] = []any{int64(i), rng.Float64(), "rec", payload}
		if err := w.Append(records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.NumRecords() != int64(n) {
		t.Fatalf("NumRecords = %d, want %d", w.NumRecords(), n)
	}
	return mf, records
}

func TestRoundTripGet(t *testing.T) {
	mf, records := writeRecords(t, 100, 7)
	r, err := Open(mf, int64(len(mf.data)))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRecords() != 100 {
		t.Fatalf("NumRecords = %d", r.NumRecords())
	}
	for _, i := range []int64{0, 1, 6, 7, 50, 99} {
		got, err := r.Get(i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if got[0].(int64) != records[i][0].(int64) {
			t.Fatalf("record %d id = %v", i, got[0])
		}
		if got[1].(float64) != records[i][1].(float64) {
			t.Fatalf("record %d score mismatch", i)
		}
		wantP := records[i][3].([]byte)
		gotP := got[3].([]byte)
		if len(gotP) != len(wantP) {
			t.Fatalf("record %d payload length", i)
		}
		for j := range wantP {
			if gotP[j] != wantP[j] {
				t.Fatalf("record %d payload byte %d", i, j)
			}
		}
	}
	if _, err := r.Get(100); err == nil {
		t.Fatal("out-of-range Get succeeded")
	}
	if _, err := r.Get(-1); err == nil {
		t.Fatal("negative Get succeeded")
	}
}

func TestScan(t *testing.T) {
	mf, records := writeRecords(t, 333, 64)
	r, err := Open(mf, int64(len(mf.data)))
	if err != nil {
		t.Fatal(err)
	}
	var seen int64
	err = r.Scan(func(i int64, rec []any) error {
		if rec[0].(int64) != records[i][0].(int64) {
			t.Fatalf("record %d mismatch", i)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 333 {
		t.Fatalf("scanned %d records", seen)
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	mf, _ := writeRecords(t, 5, 2)
	r, err := Open(mf, int64(len(mf.data)))
	if err != nil {
		t.Fatal(err)
	}
	want := testSchema()
	got := r.Schema()
	if len(got) != len(want) {
		t.Fatalf("schema len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("field %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestAppendTypeErrors(t *testing.T) {
	mf := &memFile{}
	w, err := NewWriter(mf, testSchema(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]any{int64(1)}); err == nil {
		t.Fatal("short record accepted")
	}
	if err := w.Append([]any{"no", 1.0, "x", []byte{}}); err == nil {
		t.Fatal("wrong type accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]any{int64(1), 1.0, "x", []byte{}}); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestOpenBadFile(t *testing.T) {
	if _, err := Open(&memFile{data: []byte("nope")}, 4); err == nil {
		t.Fatal("bad magic opened")
	}
	if _, err := NewWriter(&memFile{}, nil, 1); err == nil {
		t.Fatal("empty schema accepted")
	}
}
