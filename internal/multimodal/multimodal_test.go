package multimodal

import (
	"io"
	"math/rand"
	"testing"

	"bullion/internal/core"
	"bullion/internal/iostats"
	"bullion/internal/mediastore"
)

type memFile struct{ data []byte }

func (m *memFile) Write(p []byte) (int, error) {
	m.data = append(m.data, p...)
	return len(p), nil
}

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func buildDataset(t *testing.T, n int, presort bool) (*core.File, *iostats.Counters, *mediastore.Reader, *iostats.Counters) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	samples := GenerateSamples(rng, n)
	metaOut := &memFile{}
	mediaOut := &memFile{}
	if err := WriteDataset(metaOut, mediaOut, samples, presort); err != nil {
		t.Fatal(err)
	}
	var mc, vc iostats.Counters
	mc.Reset()
	vc.Reset()
	metaFile, err := core.Open(&iostats.ReaderAt{R: metaOut, C: &mc}, int64(len(metaOut.data)))
	if err != nil {
		t.Fatal(err)
	}
	media, err := mediastore.Open(&iostats.ReaderAt{R: mediaOut, C: &vc}, int64(len(mediaOut.data)))
	if err != nil {
		t.Fatal(err)
	}
	return metaFile, &mc, media, &vc
}

func TestDatasetRoundTrip(t *testing.T) {
	metaFile, _, media, _ := buildDataset(t, 500, false)
	if metaFile.NumRows() != 500 {
		t.Fatalf("meta rows = %d", metaFile.NumRows())
	}
	if media.NumRecords() != 500 {
		t.Fatalf("media records = %d", media.NumRecords())
	}
	ids, err := metaFile.ReadColumn("id")
	if err != nil {
		t.Fatal(err)
	}
	idd := ids.(core.Int64Data)
	seen := map[int64]bool{}
	for _, id := range idd {
		seen[id] = true
	}
	if len(seen) != 500 {
		t.Fatalf("distinct ids = %d", len(seen))
	}
	frames, err := metaFile.ReadColumn("frames")
	if err != nil {
		t.Fatal(err)
	}
	fd := frames.(core.ListBytesData)
	if len(fd[0]) != 3 || len(fd[0][0]) != 256 {
		t.Fatalf("frame highlights wrong shape: %d x %d", len(fd[0]), len(fd[0][0]))
	}
}

func TestPresortOrdersQualityDescending(t *testing.T) {
	metaFile, _, _, _ := buildDataset(t, 2000, true)
	q, err := metaFile.ReadColumn("quality")
	if err != nil {
		t.Fatal(err)
	}
	qd := q.(core.Float64Data)
	// Presorting is per row group (4096 rows > 2000, so globally here).
	for i := 1; i < len(qd); i++ {
		if qd[i] > qd[i-1] {
			t.Fatalf("quality not descending at %d", i)
		}
	}
}

func TestTrainingReadEquivalence(t *testing.T) {
	// Presorted and unsorted reads must select the same number of samples —
	// across MULTIPLE row groups (presorting is per group, so the
	// qualifying rows are one prefix per group, not one global prefix).
	const n = 9000 // > 2 groups at GroupRows=4096
	const threshold = 0.5
	sortedFile, sc, media, vc := buildDataset(t, n, true)
	unsortedFile, uc, _, _ := buildDataset(t, n, false)

	sortedStats, err := TrainingRead(sortedFile, sc, media, vc, threshold, 0.02, true)
	if err != nil {
		t.Fatal(err)
	}
	unsortedStats, err := TrainingRead(unsortedFile, uc, media, vc, threshold, 0.02, false)
	if err != nil {
		t.Fatal(err)
	}
	if sortedStats.SamplesRead != unsortedStats.SamplesRead {
		t.Fatalf("selected %d (sorted) vs %d (unsorted)", sortedStats.SamplesRead, unsortedStats.SamplesRead)
	}
	if sortedStats.SamplesRead == 0 {
		t.Fatal("threshold selected nothing; test is vacuous")
	}
}

// The §2.5 claim: quality-aware presorting turns filtered reads into
// contiguous I/O — fewer bytes and fewer read ops than the unsorted layout.
func TestQualityAwareReadAdvantage(t *testing.T) {
	const n = 5000
	const threshold = 0.7 // selects ~16% of samples (quality = U^2)
	sortedFile, sc, _, _ := buildDataset(t, n, true)
	unsortedFile, uc, _, _ := buildDataset(t, n, false)

	sortedStats, err := TrainingRead(sortedFile, sc, nil, nil, threshold, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	unsortedStats, err := TrainingRead(unsortedFile, uc, nil, nil, threshold, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if sortedStats.ReadBytes >= unsortedStats.ReadBytes {
		t.Fatalf("presorted read %d bytes >= unsorted %d", sortedStats.ReadBytes, unsortedStats.ReadBytes)
	}
	ratio := float64(unsortedStats.ReadBytes) / float64(sortedStats.ReadBytes)
	t.Logf("fig7: presorted %d bytes / %d ops vs unsorted %d bytes / %d ops (%.1fx fewer bytes)",
		sortedStats.ReadBytes, sortedStats.ReadOps,
		unsortedStats.ReadBytes, unsortedStats.ReadOps, ratio)
	if ratio < 1.5 {
		t.Fatalf("presorting advantage only %.2fx", ratio)
	}
}

func TestMediaLookupPath(t *testing.T) {
	metaFile, mc, media, vc := buildDataset(t, 1000, true)
	stats, err := TrainingRead(metaFile, mc, media, vc, 0.3, 0.1, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MediaLookups == 0 {
		t.Fatal("no media lookups despite fullVideoRate > 0")
	}
	if stats.MediaBytes == 0 {
		t.Fatal("media lookups read no bytes")
	}
	// The rare path must stay rare: lookups well below selected samples.
	if stats.MediaLookups*5 > stats.SamplesRead {
		t.Fatalf("media lookups %d too frequent for %d samples", stats.MediaLookups, stats.SamplesRead)
	}
}

func TestGenerateSamplesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := GenerateSamples(rng, 100)
	if len(samples) != 100 {
		t.Fatalf("generated %d", len(samples))
	}
	lowQ := 0
	for i, s := range samples {
		if s.ID != int64(i) {
			t.Fatalf("sample %d has id %d", i, s.ID)
		}
		if s.Quality < 0 || s.Quality > 1 {
			t.Fatalf("quality %v out of range", s.Quality)
		}
		if s.Quality < 0.25 {
			lowQ++
		}
		if len(s.Frames) != 3 {
			t.Fatalf("sample %d has %d frames", i, len(s.Frames))
		}
	}
	// The U^2 skew: at least half the samples below 0.25.
	if lowQ < 40 {
		t.Fatalf("quality distribution not skewed low: %d/100 below 0.25", lowQ)
	}
}
