// Package multimodal implements Bullion's hybrid storage layout for LLM
// training data (paper §2.5, Figure 7): a columnar *meta table* holding
// text, tags, captions, audio snippets, quality scores, and inlined
// reduced-resolution frame highlights, next to a row-oriented *media
// table* (internal/mediastore) holding full-size video, referenced by
// index and touched "only in rare cases".
//
// The meta table is written with quality-score presorting (descending), so
// a quality-thresholded training read — the common filter in curation
// pipelines — touches one contiguous prefix of pages instead of scattering
// random reads across the file.
package multimodal

import (
	"fmt"
	"io"
	"math/rand"

	"bullion/internal/core"
	"bullion/internal/iostats"
	"bullion/internal/mediastore"
)

// Sample is one multimodal training example before storage.
type Sample struct {
	ID           int64
	TextHash     int64
	Tags         []byte
	Caption      []byte
	AudioSnippet []byte   // short audio excerpt, stored inline
	Quality      float64  // curation quality score in [0,1]
	FrameIdx     []int64  // highlight frame indexes, e.g. [0, 3, 6]
	Frames       [][]byte // reduced-resolution highlight frames, inline
	VideoRow     int64    // row in the media table for full-size lookup
}

// MetaSchema returns the Bullion schema of the meta table.
func MetaSchema() (*core.Schema, error) {
	return core.NewSchema(
		core.Field{Name: "id", Type: core.Type{Kind: core.Int64}},
		core.Field{Name: "text_hash", Type: core.Type{Kind: core.Int64}},
		core.Field{Name: "tags", Type: core.Type{Kind: core.Binary}},
		core.Field{Name: "caption", Type: core.Type{Kind: core.Binary}},
		core.Field{Name: "audio", Type: core.Type{Kind: core.Binary}},
		core.Field{Name: "quality", Type: core.Type{Kind: core.Float64}},
		core.Field{Name: "frame_idx", Type: core.Type{Kind: core.List, Elem: core.Int64}},
		core.Field{Name: "frames", Type: core.Type{Kind: core.List, Elem: core.Binary}},
		core.Field{Name: "video_row", Type: core.Type{Kind: core.Int64}},
	)
}

// MediaSchema returns the media-table row schema.
func MediaSchema() []mediastore.FieldDef {
	return []mediastore.FieldDef{
		{Name: "id", Type: mediastore.Long},
		{Name: "video", Type: mediastore.Bytes},
	}
}

// WriteDataset writes samples into a meta table (metaOut) and media table
// (mediaOut). presort enables quality-aware row organization.
func WriteDataset(metaOut, mediaOut io.Writer, samples []Sample, presort bool) error {
	mw, err := mediastore.NewWriter(mediaOut, MediaSchema(), 8)
	if err != nil {
		return err
	}
	for i := range samples {
		video := samples[i].videoPayload()
		if err := mw.Append([]any{samples[i].ID, video}); err != nil {
			return err
		}
		samples[i].VideoRow = int64(i)
	}
	if err := mw.Close(); err != nil {
		return err
	}

	schema, err := MetaSchema()
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.RowsPerPage = 128
	opts.GroupRows = 4096
	if presort {
		opts.QualityColumn = "quality"
	}
	w, err := core.NewWriter(metaOut, schema, opts)
	if err != nil {
		return err
	}
	n := len(samples)
	id := make(core.Int64Data, n)
	textHash := make(core.Int64Data, n)
	tags := make(core.BytesData, n)
	caption := make(core.BytesData, n)
	audio := make(core.BytesData, n)
	quality := make(core.Float64Data, n)
	frameIdx := make(core.ListInt64Data, n)
	frames := make(core.ListBytesData, n)
	videoRow := make(core.Int64Data, n)
	for i, s := range samples {
		id[i] = s.ID
		textHash[i] = s.TextHash
		tags[i] = s.Tags
		caption[i] = s.Caption
		audio[i] = s.AudioSnippet
		quality[i] = s.Quality
		frameIdx[i] = s.FrameIdx
		frames[i] = s.Frames
		videoRow[i] = s.VideoRow
	}
	batch, err := core.NewBatch(schema, []core.ColumnData{
		id, textHash, tags, caption, audio, quality, frameIdx, frames, videoRow,
	})
	if err != nil {
		return err
	}
	if err := w.Write(batch); err != nil {
		return err
	}
	return w.Close()
}

// videoPayload synthesizes the full-size video blob for a sample (a
// deterministic pseudo-random payload sized like a short clip).
func (s *Sample) videoPayload() []byte {
	rng := rand.New(rand.NewSource(s.ID))
	b := make([]byte, 4096+rng.Intn(4096))
	rng.Read(b)
	return b
}

// GenerateSamples synthesizes n multimodal samples with Beta-ish skewed
// quality scores (most content is low quality, as curation pipelines see).
func GenerateSamples(rng *rand.Rand, n int) []Sample {
	samples := make([]Sample, n)
	for i := range samples {
		q := rng.Float64()
		q = q * q // skew toward low quality
		frames := make([][]byte, 3)
		for f := range frames {
			fr := make([]byte, 256)
			rng.Read(fr)
			frames[f] = fr
		}
		audio := make([]byte, 128)
		rng.Read(audio)
		samples[i] = Sample{
			ID:           int64(i),
			TextHash:     rng.Int63(),
			Tags:         []byte(fmt.Sprintf("tag%d,tag%d", rng.Intn(20), rng.Intn(20))),
			Caption:      []byte(fmt.Sprintf("auto caption for sample %d", i)),
			AudioSnippet: audio,
			Quality:      q,
			FrameIdx:     []int64{0, 3, 6},
			Frames:       frames,
		}
	}
	return samples
}

// TrainingStats reports the I/O profile of one filtered training read.
type TrainingStats struct {
	SamplesRead  int
	RowsScanned  int // rows touched to find qualifying samples
	ReadOps      int64
	ReadBytes    int64
	Seeks        int64
	MediaLookups int // full-size video fetches (the rare path)
	MediaReadOps int64
	MediaBytes   int64
}

// TrainingRead performs a quality-thresholded epoch read against the meta
// table: select every sample with quality >= threshold, fetching the
// caption, frames, and audio columns; a fraction fullVideoRate of selected
// samples additionally fetches full-size video from the media table.
//
// When the file was written presorted, the reader exploits §2.5's layout:
// it locates the qualifying prefix via the quality column and issues one
// contiguous range read per column. Otherwise it must fetch every page and
// filter row-by-row.
func TrainingRead(metaFile *core.File, metaCounters *iostats.Counters,
	media *mediastore.Reader, mediaCounters *iostats.Counters,
	threshold float64, fullVideoRate float64, presorted bool) (TrainingStats, error) {

	var stats TrainingStats
	before := metaCounters.Snapshot()

	qcol, ok := metaFile.LookupColumn("quality")
	if !ok {
		return stats, fmt.Errorf("multimodal: meta table has no quality column")
	}
	qData, err := metaFile.ReadColumnByIndex(qcol)
	if err != nil {
		return stats, err
	}
	quality := qData.(core.Float64Data)
	n := len(quality)
	stats.RowsScanned = n

	var selected []int
	if presorted {
		// Quality is presorted descending *within each row group* (the
		// writer sorts as groups are cut), so the qualifying rows form one
		// contiguous prefix per group: binary search each group segment,
		// then issue one range read per group per column.
		type span struct{ lo, hi int }
		var spans []span
		start := 0
		for _, cnt := range metaFile.GroupRowCounts() {
			seg := quality[start : start+cnt]
			lo, hi := 0, len(seg)
			for lo < hi {
				mid := (lo + hi) / 2
				if seg[mid] >= threshold {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo > 0 {
				spans = append(spans, span{start, start + lo})
				for i := start; i < start+lo; i++ {
					selected = append(selected, i)
				}
			}
			start += cnt
		}
		for _, name := range []string{"caption", "frames", "audio", "video_row"} {
			ci, ok := metaFile.LookupColumn(name)
			if !ok {
				return stats, fmt.Errorf("multimodal: missing column %q", name)
			}
			for _, sp := range spans {
				if _, err := metaFile.ReadRows(ci, uint64(sp.lo), uint64(sp.hi)); err != nil {
					return stats, err
				}
			}
		}
	} else {
		for i, q := range quality {
			if q >= threshold {
				selected = append(selected, i)
			}
		}
		// Unsorted: qualifying rows are scattered; every page of every
		// needed column must be fetched and filtered.
		for _, name := range []string{"caption", "frames", "audio", "video_row"} {
			if _, err := metaFile.ReadColumn(name); err != nil {
				return stats, err
			}
		}
	}
	stats.SamplesRead = len(selected)
	d := metaCounters.Snapshot().Sub(before)
	stats.ReadOps, stats.ReadBytes, stats.Seeks = d.ReadOps, d.ReadBytes, d.Seeks

	// Rare full-video lookups through the media table.
	if media != nil && fullVideoRate > 0 {
		mBefore := mediaCounters.Snapshot()
		rng := rand.New(rand.NewSource(99))
		for _, row := range selected {
			if rng.Float64() < fullVideoRate {
				if _, err := media.Get(int64(row) % media.NumRecords()); err != nil {
					return stats, err
				}
				stats.MediaLookups++
			}
		}
		md := mediaCounters.Snapshot().Sub(mBefore)
		stats.MediaReadOps, stats.MediaBytes = md.ReadOps, md.ReadBytes
	}
	return stats, nil
}
