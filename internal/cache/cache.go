// Package cache is the process-wide cache of immutable dataset
// artifacts. Bullion member files are immutable once written (deletes
// flip footer bits and bump the manifest's live-row accounting, so a
// changed member always changes its version key), which makes caching
// across Dataset handles and generations safe and invalidation trivial:
// a key either still names exactly the bytes it was filled from, or it
// is never asked for again.
//
// Three tiers share one capacity-bounded Cache:
//
//   - Artifacts: parsed footers (and anything else derived once from
//     immutable bytes), entry-count LRU with singleflight — a stampede
//     of N cold scans of one member pays one parse, and one backend
//     read of the footer, total.
//   - Handles: open backend files, a refcounted LRU. Hot members skip
//     re-open entirely — critical for HTTP backends where open is a
//     HEAD round-trip — while the LRU bounds live file handles.
//   - Pages: a segmented-LRU (2Q) byte cache over coalesced page runs,
//     with per-root byte budgets and a materialize mode that pins whole
//     small members in RAM.
//
// A zero Cache value is not usable; construct with New or use the
// process-wide Shared instance.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"bullion/internal/storage"
)

// Key identifies one immutable version of one member file. Root is the
// backend identity (storage.Backend.Root), Name the member file name,
// and Version a discriminator derived from the manifest entry (rows,
// live rows, bytes, schema fingerprint) plus the backend ETag when one
// is available — any change to the member's bytes changes Version, so
// stale entries are simply never hit.
type Key struct {
	Root    string
	Name    string
	Version string
}

// Options sizes a Cache. Zero fields select the defaults.
type Options struct {
	// FooterEntries bounds the parsed-artifact tier (entries, not bytes:
	// parsed footers are small and roughly uniform).
	FooterEntries int
	// HandleEntries bounds open backend file handles. Entries still
	// referenced by a lease are not evictable, so the bound is soft
	// under heavy concurrency.
	HandleEntries int
	// PageBytes bounds the page/run byte tier, pinned members included.
	PageBytes int64
}

// Default capacities: enough for a few hundred members' metadata and a
// serving-tier page working set, small enough to never matter on a dev
// machine.
const (
	DefaultFooterEntries = 256
	DefaultHandleEntries = 64
	DefaultPageBytes     = 256 << 20
)

// Stats is a point-in-time snapshot of the cache's counters. Hit/miss/
// eviction counters are cumulative; scanners diff snapshots to
// attribute work to one scan.
type Stats struct {
	// FooterHits/Misses count artifact-tier lookups. A lookup that joins
	// an in-flight parse counts as a hit only if the parse succeeds.
	FooterHits   int64
	FooterMisses int64
	// HandleHits/Misses count open-handle leases served from / filled
	// into the handle LRU.
	HandleHits   int64
	HandleMisses int64
	// PageHits/Misses count page-tier reads; PageEvictions entries
	// evicted to stay inside the byte budgets.
	PageHits      int64
	PageMisses    int64
	PageEvictions int64
	// Invalidations counts Invalidate calls that dropped at least one
	// entry.
	Invalidations int64
	// Sizes right now: artifact entries, open handles, page-tier bytes
	// (PinnedBytes of which are materialized members).
	FooterEntries int
	HandlesOpen   int
	PageBytes     int64
	PinnedBytes   int64
}

// Cache is the three-tier artifact cache. All methods are safe for
// concurrent use; the zero value is not usable (construct with New).
type Cache struct {
	opts Options

	footerHits, footerMisses int64
	handleHits, handleMisses int64
	pageHits, pageMisses     int64
	pageEvictions            int64
	invalidations            int64

	artMu  sync.Mutex
	arts   map[Key]*artifactEntry
	artLRU *list.List // of *artifactEntry; front = MRU

	hMu     sync.Mutex
	handles map[Key]*handleEntry
	hLRU    *list.List // of *handleEntry; front = MRU; excludes in-flight opens

	pMu        sync.Mutex
	runs       map[runKey]*runEntry
	probation  *list.List // of *runEntry
	protected  *list.List // of *runEntry
	pageBytes  int64      // all page-tier bytes, pins included
	protBytes  int64
	pins       map[Key][]byte
	pinBytes   int64
	rootBytes  map[string]int64
	rootBudget map[string]int64
}

// New returns a Cache with the given capacities (zero fields take the
// defaults).
func New(opts Options) *Cache {
	if opts.FooterEntries <= 0 {
		opts.FooterEntries = DefaultFooterEntries
	}
	if opts.HandleEntries <= 0 {
		opts.HandleEntries = DefaultHandleEntries
	}
	if opts.PageBytes <= 0 {
		opts.PageBytes = DefaultPageBytes
	}
	return &Cache{
		opts:       opts,
		arts:       map[Key]*artifactEntry{},
		artLRU:     list.New(),
		handles:    map[Key]*handleEntry{},
		hLRU:       list.New(),
		runs:       map[runKey]*runEntry{},
		probation:  list.New(),
		protected:  list.New(),
		pins:       map[Key][]byte{},
		rootBytes:  map[string]int64{},
		rootBudget: map[string]int64{},
	}
}

var (
	sharedOnce sync.Once
	shared     *Cache
)

// Shared returns the process-wide cache every Dataset uses by default.
func Shared() *Cache {
	sharedOnce.Do(func() { shared = New(Options{}) })
	return shared
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	s := Stats{
		FooterHits:    atomic.LoadInt64(&c.footerHits),
		FooterMisses:  atomic.LoadInt64(&c.footerMisses),
		HandleHits:    atomic.LoadInt64(&c.handleHits),
		HandleMisses:  atomic.LoadInt64(&c.handleMisses),
		PageHits:      atomic.LoadInt64(&c.pageHits),
		PageMisses:    atomic.LoadInt64(&c.pageMisses),
		PageEvictions: atomic.LoadInt64(&c.pageEvictions),
		Invalidations: atomic.LoadInt64(&c.invalidations),
	}
	c.artMu.Lock()
	s.FooterEntries = len(c.arts)
	c.artMu.Unlock()
	c.hMu.Lock()
	s.HandlesOpen = len(c.handles)
	c.hMu.Unlock()
	c.pMu.Lock()
	s.PageBytes = c.pageBytes
	s.PinnedBytes = c.pinBytes
	c.pMu.Unlock()
	return s
}

// ---- artifact tier ----

type artifactEntry struct {
	key  Key
	elem *list.Element
	done chan struct{} // closed when val/err are set
	val  any
	err  error
}

// Artifact returns the cached artifact for k, running parse (at most
// once per key across all concurrent callers — singleflight) to fill a
// miss. A failed parse is not cached: the next call re-attempts, so a
// transient backend error never poisons the key.
func (c *Cache) Artifact(k Key, parse func() (any, error)) (any, error) {
	c.artMu.Lock()
	if e, ok := c.arts[k]; ok {
		c.artLRU.MoveToFront(e.elem)
		c.artMu.Unlock()
		<-e.done
		if e.err != nil {
			// The flight this call joined failed (and removed itself);
			// surface its error rather than stampeding the backend.
			atomic.AddInt64(&c.footerMisses, 1)
			return nil, e.err
		}
		atomic.AddInt64(&c.footerHits, 1)
		return e.val, nil
	}
	e := &artifactEntry{key: k, done: make(chan struct{})}
	e.elem = c.artLRU.PushFront(e)
	c.arts[k] = e
	c.artMu.Unlock()

	atomic.AddInt64(&c.footerMisses, 1)
	e.val, e.err = parse()
	c.artMu.Lock()
	if e.err != nil {
		if cur, ok := c.arts[k]; ok && cur == e {
			delete(c.arts, k)
			c.artLRU.Remove(e.elem)
		}
	} else {
		for len(c.arts) > c.opts.FooterEntries {
			back := c.artLRU.Back()
			if back == nil {
				break
			}
			old := back.Value.(*artifactEntry)
			delete(c.arts, old.key)
			c.artLRU.Remove(back)
		}
	}
	c.artMu.Unlock()
	close(e.done)
	return e.val, e.err
}

// ---- handle tier ----

type handleEntry struct {
	key  Key
	file storage.File
	size int64
	refs int
	// doomed: evicted or invalidated while leased; the last Release
	// closes the file.
	doomed bool
	elem   *list.Element // nil while the open is in flight (or doomed)
	done   chan struct{}
	err    error
}

// HandleLease is one reference to a cached open backend file. The file
// must not be used after Release; Close is an alias for Release (err
// always nil) so a lease can stand in for the file in Closer lists.
type HandleLease struct {
	c        *Cache
	e        *handleEntry
	released atomic.Bool
}

// File returns the leased backend file.
func (l *HandleLease) File() storage.File { return l.e.file }

// Size returns the file size discovered at open.
func (l *HandleLease) Size() int64 { return l.e.size }

// Release returns the lease. Idempotent.
func (l *HandleLease) Release() {
	if l.released.Swap(true) {
		return
	}
	c, e := l.c, l.e
	c.hMu.Lock()
	e.refs--
	var toClose storage.File
	if e.refs == 0 && e.doomed && e.file != nil {
		toClose = e.file
		e.file = nil
	}
	c.hMu.Unlock()
	if toClose != nil {
		toClose.Close()
	}
}

// Close releases the lease (never closes the shared file directly) and
// always returns nil, satisfying io.Closer.
func (l *HandleLease) Close() error {
	l.Release()
	return nil
}

// AcquireHandle leases the cached open file for k, calling open (at
// most once per key across concurrent callers) on a miss. Open errors
// are not cached. The caller must Release the lease; the cache closes
// the underlying file when it is evicted or invalidated and the last
// lease is gone.
func (c *Cache) AcquireHandle(k Key, open func() (storage.File, int64, error)) (*HandleLease, error) {
	c.hMu.Lock()
	if e, ok := c.handles[k]; ok {
		e.refs++
		if e.elem != nil {
			c.hLRU.MoveToFront(e.elem)
		}
		c.hMu.Unlock()
		<-e.done
		if e.err != nil {
			c.hMu.Lock()
			e.refs--
			c.hMu.Unlock()
			atomic.AddInt64(&c.handleMisses, 1)
			return nil, e.err
		}
		atomic.AddInt64(&c.handleHits, 1)
		return &HandleLease{c: c, e: e}, nil
	}
	e := &handleEntry{key: k, refs: 1, done: make(chan struct{})}
	c.handles[k] = e
	c.hMu.Unlock()

	atomic.AddInt64(&c.handleMisses, 1)
	f, size, err := open()
	c.hMu.Lock()
	if err != nil {
		e.err = err
		if cur, ok := c.handles[k]; ok && cur == e {
			delete(c.handles, k)
		}
		c.hMu.Unlock()
		close(e.done)
		return nil, err
	}
	e.file, e.size = f, size
	if cur, ok := c.handles[k]; ok && cur == e && !e.doomed {
		e.elem = c.hLRU.PushFront(e)
	}
	c.evictHandlesLocked()
	c.hMu.Unlock()
	close(e.done)
	return &HandleLease{c: c, e: e}, nil
}

// evictHandlesLocked closes LRU handles with no live lease until the
// tier is back under its entry cap. Caller holds hMu; files close
// outside any lease, so closing under the lock is safe (storage.File
// Close never re-enters the cache).
func (c *Cache) evictHandlesLocked() {
	for len(c.handles) > c.opts.HandleEntries {
		evicted := false
		for el := c.hLRU.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*handleEntry)
			if e.refs > 0 {
				continue
			}
			delete(c.handles, e.key)
			c.hLRU.Remove(el)
			e.doomed = true
			if e.file != nil {
				e.file.Close()
				e.file = nil
			}
			evicted = true
			break
		}
		if !evicted {
			return // every handle is leased; run over cap until releases
		}
	}
}

// Invalidate drops every tier's entries for (root, name) across all
// versions — the recovery hook after a read proved the remote object
// was replaced (storage.ErrChangedUnderRead), and the hygiene hook when
// Vacuum removes a file. Leased handles are doomed and closed on their
// last Release; in-flight parses are unaffected (their key can no
// longer be current, so they fill an entry nobody asks for again).
func (c *Cache) Invalidate(root, name string) {
	dropped := false
	c.artMu.Lock()
	for k, e := range c.arts {
		if k.Root == root && k.Name == name {
			delete(c.arts, k)
			c.artLRU.Remove(e.elem)
			dropped = true
		}
	}
	c.artMu.Unlock()

	var toClose []storage.File
	c.hMu.Lock()
	for k, e := range c.handles {
		if k.Root != root || k.Name != name {
			continue
		}
		delete(c.handles, k)
		if e.elem != nil {
			c.hLRU.Remove(e.elem)
			e.elem = nil
		}
		e.doomed = true
		if e.refs == 0 && e.file != nil {
			toClose = append(toClose, e.file)
			e.file = nil
		}
		dropped = true
	}
	c.hMu.Unlock()
	for _, f := range toClose {
		f.Close()
	}

	c.pMu.Lock()
	for rk, e := range c.runs {
		if rk.k.Root == root && rk.k.Name == name {
			c.removeRunLocked(e)
			dropped = true
		}
	}
	for k, b := range c.pins {
		if k.Root == root && k.Name == name {
			delete(c.pins, k)
			n := int64(len(b))
			c.pageBytes -= n
			c.pinBytes -= n
			c.rootBytes[k.Root] -= n
			dropped = true
		}
	}
	c.pMu.Unlock()
	if dropped {
		atomic.AddInt64(&c.invalidations, 1)
	}
}

// Close drops every entry and closes every cached file handle not
// currently leased (leased ones close on their last Release). Meant for
// private per-dataset caches and tests; the Shared cache is never
// closed.
func (c *Cache) Close() error {
	var toClose []storage.File
	c.hMu.Lock()
	for k, e := range c.handles {
		delete(c.handles, k)
		if e.elem != nil {
			c.hLRU.Remove(e.elem)
			e.elem = nil
		}
		e.doomed = true
		if e.refs == 0 && e.file != nil {
			toClose = append(toClose, e.file)
			e.file = nil
		}
	}
	c.hMu.Unlock()
	var first error
	for _, f := range toClose {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.artMu.Lock()
	c.arts = map[Key]*artifactEntry{}
	c.artLRU.Init()
	c.artMu.Unlock()
	c.pMu.Lock()
	c.runs = map[runKey]*runEntry{}
	c.probation.Init()
	c.protected.Init()
	c.pins = map[Key][]byte{}
	c.pageBytes, c.protBytes, c.pinBytes = 0, 0, 0
	c.rootBytes = map[string]int64{}
	c.pMu.Unlock()
	return first
}
