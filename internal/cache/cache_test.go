package cache

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"bullion/internal/storage"
)

// fakeFile is a storage.File over an in-memory byte slice that counts
// reads and records Close, following the backend ReadAt contract.
type fakeFile struct {
	data   []byte
	reads  atomic.Int64
	closed atomic.Bool
}

func (f *fakeFile) ReadAt(p []byte, off int64) (int, error) {
	f.reads.Add(1)
	if off < 0 {
		return 0, errors.New("negative offset")
	}
	if len(p) == 0 {
		return 0, nil
	}
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *fakeFile) WriteAt([]byte, int64) (int, error) { return 0, storage.ErrReadOnly }
func (f *fakeFile) Write([]byte) (int, error)          { return 0, storage.ErrReadOnly }
func (f *fakeFile) Sync() error                        { return nil }
func (f *fakeFile) Close() error                       { f.closed.Store(true); return nil }

func key(name, version string) Key {
	return Key{Root: "root", Name: name, Version: version}
}

func TestArtifactSingleflight(t *testing.T) {
	c := New(Options{})
	const workers = 16
	var parses atomic.Int64
	started := make(chan struct{})
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Artifact(key("m1", "v1"), func() (any, error) {
				if parses.Add(1) == 1 {
					close(started)
				}
				<-gate // hold the flight open so everyone joins it
				return "footer", nil
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Let the goroutines pile up on the single flight, then release it.
	<-started
	close(gate)
	wg.Wait()
	if got := parses.Load(); got != 1 {
		t.Fatalf("parse ran %d times, want 1 (singleflight)", got)
	}
	for i, v := range results {
		if v != "footer" {
			t.Fatalf("worker %d got %v", i, v)
		}
	}
	st := c.Stats()
	if st.FooterMisses != 1 || st.FooterHits != workers-1 {
		t.Fatalf("stats = %d hits / %d misses, want %d / 1", st.FooterHits, st.FooterMisses, workers-1)
	}
}

func TestArtifactErrorNotCached(t *testing.T) {
	c := New(Options{})
	boom := errors.New("transient backend failure")
	if _, err := c.Artifact(key("m", "v"), func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("first call: %v, want %v", err, boom)
	}
	v, err := c.Artifact(key("m", "v"), func() (any, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("retry after failed parse = (%v, %v), want (42, nil)", v, err)
	}
}

func TestArtifactLRUEviction(t *testing.T) {
	c := New(Options{FooterEntries: 2})
	parse := func(v any) func() (any, error) {
		return func() (any, error) { return v, nil }
	}
	c.Artifact(key("a", "1"), parse("a"))
	c.Artifact(key("b", "1"), parse("b"))
	c.Artifact(key("a", "1"), parse("a")) // touch a: b is now LRU
	c.Artifact(key("c", "1"), parse("c")) // evicts b
	if st := c.Stats(); st.FooterEntries != 2 {
		t.Fatalf("FooterEntries = %d, want 2", st.FooterEntries)
	}
	var reparsed atomic.Int64
	c.Artifact(key("b", "1"), func() (any, error) { reparsed.Add(1); return "b", nil })
	if reparsed.Load() != 1 {
		t.Fatal("evicted entry b served without re-parsing")
	}
	// Re-inserting b evicted the then-LRU a; the MRU c must survive.
	c.Artifact(key("c", "1"), func() (any, error) { t.Fatal("MRU entry c evicted"); return nil, nil })
}

func TestHandleSingleflightAndRefs(t *testing.T) {
	c := New(Options{})
	f := &fakeFile{data: []byte("hello")}
	var opens atomic.Int64
	open := func() (storage.File, int64, error) {
		opens.Add(1)
		return f, int64(len(f.data)), nil
	}
	l1, err := c.AcquireHandle(key("m", "v"), open)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := c.AcquireHandle(key("m", "v"), open)
	if err != nil {
		t.Fatal(err)
	}
	if opens.Load() != 1 {
		t.Fatalf("open ran %d times, want 1", opens.Load())
	}
	if l1.File() != f || l2.File() != f || l1.Size() != 5 {
		t.Fatal("leases do not expose the cached handle")
	}
	l1.Release()
	l1.Release() // idempotent
	l2.Release()
	if f.closed.Load() {
		t.Fatal("releasing all leases closed a cached (non-doomed) handle")
	}
	st := c.Stats()
	if st.HandleMisses != 1 || st.HandleHits != 1 || st.HandlesOpen != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit / 1 open", st)
	}
}

func TestHandleOpenErrorNotCached(t *testing.T) {
	c := New(Options{})
	boom := errors.New("open failed")
	if _, err := c.AcquireHandle(key("m", "v"), func() (storage.File, int64, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	f := &fakeFile{data: []byte("x")}
	l, err := c.AcquireHandle(key("m", "v"), func() (storage.File, int64, error) {
		return f, 1, nil
	})
	if err != nil {
		t.Fatalf("retry after failed open: %v", err)
	}
	l.Release()
}

func TestHandleEvictionClosesIdle(t *testing.T) {
	c := New(Options{HandleEntries: 1})
	a := &fakeFile{data: []byte("a")}
	b := &fakeFile{data: []byte("b")}
	la, _ := c.AcquireHandle(key("a", "v"), func() (storage.File, int64, error) { return a, 1, nil })
	la.Release() // idle: evictable
	lb, _ := c.AcquireHandle(key("b", "v"), func() (storage.File, int64, error) { return b, 1, nil })
	if !a.closed.Load() {
		t.Fatal("idle LRU handle not closed on eviction")
	}
	if b.closed.Load() {
		t.Fatal("newly opened handle closed")
	}
	lb.Release()
	if st := c.Stats(); st.HandlesOpen != 1 {
		t.Fatalf("HandlesOpen = %d, want 1", st.HandlesOpen)
	}
}

func TestHandleLeasedSurvivesEviction(t *testing.T) {
	c := New(Options{HandleEntries: 1})
	a := &fakeFile{data: []byte("a")}
	b := &fakeFile{data: []byte("b")}
	la, _ := c.AcquireHandle(key("a", "v"), func() (storage.File, int64, error) { return a, 1, nil })
	lb, _ := c.AcquireHandle(key("b", "v"), func() (storage.File, int64, error) { return b, 1, nil })
	// Both leased: nothing evictable, tier runs over cap.
	if a.closed.Load() || b.closed.Load() {
		t.Fatal("leased handle closed by eviction")
	}
	buf := make([]byte, 1)
	if _, err := la.File().ReadAt(buf, 0); err != nil {
		t.Fatalf("leased handle unusable: %v", err)
	}
	la.Release()
	lb.Release()
}

func TestInvalidateDoomsLeasedHandle(t *testing.T) {
	c := New(Options{})
	f := &fakeFile{data: []byte("data")}
	l, _ := c.AcquireHandle(key("m", "v"), func() (storage.File, int64, error) { return f, 4, nil })
	c.Invalidate("root", "m")
	if f.closed.Load() {
		t.Fatal("invalidate closed a handle still leased")
	}
	l.Release()
	if !f.closed.Load() {
		t.Fatal("last release of a doomed handle did not close it")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", st.Invalidations)
	}
}

func TestInvalidateDropsAllTiers(t *testing.T) {
	c := New(Options{})
	k := key("m", "v")
	c.Artifact(k, func() (any, error) { return "art", nil })
	f := &fakeFile{data: bytes.Repeat([]byte{7}, 64)}
	l, _ := c.AcquireHandle(k, func() (storage.File, int64, error) { return f, 64, nil })
	l.Release()
	r := c.Reader(k, f, nil)
	buf := make([]byte, 16)
	r.ReadAt(buf, 0)
	c.Materialize(key("m", "v2"), f, 64)

	c.Invalidate("root", "m") // all versions of "m" across all tiers
	st := c.Stats()
	if st.FooterEntries != 0 || st.HandlesOpen != 0 || st.PageBytes != 0 || st.PinnedBytes != 0 {
		t.Fatalf("entries survive invalidation: %+v", st)
	}
	if !f.closed.Load() {
		t.Fatal("idle handle not closed by invalidation")
	}
}

func TestReaderCachesFullReads(t *testing.T) {
	c := New(Options{})
	f := &fakeFile{data: bytes.Repeat([]byte{1, 2, 3, 4}, 256)} // 1 KiB
	r := c.Reader(key("m", "v"), f, nil)

	got := make([]byte, 128)
	if n, err := r.ReadAt(got, 64); n != 128 || err != nil {
		t.Fatalf("cold read = (%d, %v)", n, err)
	}
	base := f.reads.Load()
	again := make([]byte, 128)
	if n, err := r.ReadAt(again, 64); n != 128 || err != nil {
		t.Fatalf("warm read = (%d, %v)", n, err)
	}
	if f.reads.Load() != base {
		t.Fatal("warm exact-run read went to the backend")
	}
	if !bytes.Equal(got, again) || !bytes.Equal(got, f.data[64:192]) {
		t.Fatal("cached bytes differ from backend bytes")
	}
	// A different offset or length is a different run: miss.
	if _, err := r.ReadAt(make([]byte, 64), 64); err != nil {
		t.Fatal(err)
	}
	if f.reads.Load() == base {
		t.Fatal("different-length read served from exact-run cache")
	}
	st := c.Stats()
	if st.PageHits != 1 || st.PageMisses != 2 {
		t.Fatalf("page stats = %d hits / %d misses, want 1 / 2", st.PageHits, st.PageMisses)
	}
}

func TestReaderEOFNotCached(t *testing.T) {
	c := New(Options{})
	f := &fakeFile{data: []byte("abcdef")}
	r := c.Reader(key("m", "v"), f, nil)
	p := make([]byte, 10)
	n, err := r.ReadAt(p, 2)
	if n != 4 || err != io.EOF {
		t.Fatalf("overlap-EOF read = (%d, %v), want (4, EOF)", n, err)
	}
	base := f.reads.Load()
	r.ReadAt(p, 2)
	if f.reads.Load() == base {
		t.Fatal("short EOF read was cached")
	}
	if n, err := r.ReadAt(p, 100); n != 0 || err != io.EOF {
		t.Fatalf("past-EOF read = (%d, %v), want (0, EOF)", n, err)
	}
}

func TestReaderOnErr(t *testing.T) {
	c := New(Options{})
	boom := errors.New("changed under read")
	failing := readerFunc(func(p []byte, off int64) (int, error) { return 0, boom })
	var seen error
	r := c.Reader(key("m", "v"), failing, func(err error) { seen = err })
	if _, err := r.ReadAt(make([]byte, 4), 0); !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if !errors.Is(seen, boom) {
		t.Fatalf("onErr saw %v, want %v", seen, boom)
	}
}

type readerFunc func(p []byte, off int64) (int, error)

func (f readerFunc) ReadAt(p []byte, off int64) (int, error) { return f(p, off) }

func TestPage2QScanResistance(t *testing.T) {
	// Budget fits 4 x 100-byte runs. A hot run touched twice is
	// protected; a subsequent one-shot sweep must evict probation
	// entries, never the hot run.
	c := New(Options{PageBytes: 400})
	f := &fakeFile{data: bytes.Repeat([]byte{9}, 4096)}
	r := c.Reader(key("m", "v"), f, nil)
	hot := make([]byte, 100)
	r.ReadAt(hot, 0) // miss: probation
	r.ReadAt(hot, 0) // hit: promote to protected
	for i := 1; i <= 8; i++ {
		r.ReadAt(make([]byte, 100), int64(i*100)) // one-shot sweep
	}
	base := f.reads.Load()
	if n, err := r.ReadAt(hot, 0); n != 100 || err != nil {
		t.Fatalf("hot read = (%d, %v)", n, err)
	}
	if f.reads.Load() != base {
		t.Fatal("scan traffic flushed the protected hot run")
	}
	st := c.Stats()
	if st.PageBytes > 400 {
		t.Fatalf("PageBytes = %d exceeds budget 400", st.PageBytes)
	}
	if st.PageEvictions == 0 {
		t.Fatal("sweep over budget evicted nothing")
	}
}

func TestRootBudget(t *testing.T) {
	c := New(Options{PageBytes: 1 << 20})
	f := &fakeFile{data: bytes.Repeat([]byte{5}, 4096)}
	c.SetRootBudget("root", 300)
	r := c.Reader(key("m", "v"), f, nil)
	for i := 0; i < 8; i++ {
		r.ReadAt(make([]byte, 100), int64(i*100))
	}
	c.pMu.Lock()
	got := c.rootBytes["root"]
	c.pMu.Unlock()
	if got > 300 {
		t.Fatalf("root bytes %d exceed budget 300", got)
	}
	// Other roots are not constrained by this root's budget.
	r2 := c.Reader(Key{Root: "other", Name: "m", Version: "v"}, f, nil)
	r2.ReadAt(make([]byte, 512), 0)
	base := f.reads.Load()
	r2.ReadAt(make([]byte, 512), 0)
	if f.reads.Load() != base {
		t.Fatal("unbudgeted root failed to cache")
	}
}

func TestMaterializePin(t *testing.T) {
	c := New(Options{PageBytes: 1 << 20})
	f := &fakeFile{data: bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 128)} // 1 KiB
	k := key("m", "v")
	ok, err := c.Materialize(k, f, int64(len(f.data)))
	if err != nil || !ok {
		t.Fatalf("Materialize = (%v, %v)", ok, err)
	}
	base := f.reads.Load()
	r := c.Reader(k, f, nil)
	// Any offset/length hits the pin, including EOF shapes.
	p := make([]byte, 100)
	if n, err := r.ReadAt(p, 37); n != 100 || err != nil {
		t.Fatalf("pinned read = (%d, %v)", n, err)
	}
	if !bytes.Equal(p, f.data[37:137]) {
		t.Fatal("pinned bytes differ")
	}
	if n, err := r.ReadAt(make([]byte, 100), 1000); n != 24 || err != io.EOF {
		t.Fatalf("pinned overlap-EOF = (%d, %v), want (24, EOF)", n, err)
	}
	if n, err := r.ReadAt(make([]byte, 4), 5000); n != 0 || err != io.EOF {
		t.Fatalf("pinned past-EOF = (%d, %v), want (0, EOF)", n, err)
	}
	if f.reads.Load() != base {
		t.Fatal("pinned member read went to the backend")
	}
	if again, err := c.Materialize(k, f, int64(len(f.data))); err != nil || !again {
		t.Fatal("re-materialize of a pinned key should be a cheap true")
	}
	if st := c.Stats(); st.PinnedBytes != 1024 {
		t.Fatalf("PinnedBytes = %d, want 1024", st.PinnedBytes)
	}
}

func TestMaterializeRespectsBudgets(t *testing.T) {
	c := New(Options{PageBytes: 512})
	f := &fakeFile{data: make([]byte, 1024)}
	if ok, err := c.Materialize(key("m", "v"), f, 1024); ok || err != nil {
		t.Fatalf("oversized pin accepted: (%v, %v)", ok, err)
	}
	c.SetRootBudget("root", 100)
	if ok, _ := c.Materialize(key("m", "v"), f, 256); ok {
		t.Fatal("pin over root budget accepted")
	}
}

func TestCloseDropsEverything(t *testing.T) {
	c := New(Options{})
	f := &fakeFile{data: []byte("data")}
	k := key("m", "v")
	c.Artifact(k, func() (any, error) { return 1, nil })
	l, _ := c.AcquireHandle(k, func() (storage.File, int64, error) { return f, 4, nil })
	l.Release()
	c.Reader(k, f, nil).ReadAt(make([]byte, 2), 0)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !f.closed.Load() {
		t.Fatal("Close left a cached handle open")
	}
	st := c.Stats()
	if st.FooterEntries != 0 || st.HandlesOpen != 0 || st.PageBytes != 0 {
		t.Fatalf("Close left entries: %+v", st)
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	// Hammer all three tiers plus Invalidate from many goroutines; the
	// -race build is the assertion.
	c := New(Options{FooterEntries: 8, HandleEntries: 4, PageBytes: 4096})
	files := make([]*fakeFile, 8)
	for i := range files {
		files[i] = &fakeFile{data: bytes.Repeat([]byte{byte(i)}, 512)}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m := (g + i) % len(files)
				k := key(fmt.Sprintf("m%d", m), "v")
				switch i % 4 {
				case 0:
					c.Artifact(k, func() (any, error) { return m, nil })
				case 1:
					if l, err := c.AcquireHandle(k, func() (storage.File, int64, error) {
						return files[m], 512, nil
					}); err == nil {
						l.File().ReadAt(make([]byte, 8), 0)
						l.Release()
					}
				case 2:
					c.Reader(k, files[m], nil).ReadAt(make([]byte, 64), int64(i%8)*64)
				case 3:
					if i%40 == 3 {
						c.Invalidate("root", fmt.Sprintf("m%d", m))
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
