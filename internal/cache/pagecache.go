package cache

import (
	"container/list"
	"fmt"
	"io"
	"sync/atomic"
)

// The page tier is a segmented LRU (the classic 2Q shape): a miss
// enters probation, a second touch promotes to protected, and eviction
// always takes the probation tail first — one-shot scan traffic cannot
// flush the hot set. Entries are exact coalesced runs keyed by
// (member version, offset, length): the read planner is deterministic
// for a given projection and filter set, so repeated scans ask for
// byte-identical runs and exact matching hits without any range
// arithmetic. Materialized ("pinned") members sit beside the run map:
// whole small members held in RAM, exempt from eviction but counted
// against every budget.

// protectedShare is the fraction of the page budget the protected
// segment may hold before demoting back into probation.
const protectedShare = 0.8

type runKey struct {
	k   Key
	off int64
	n   int
}

type runEntry struct {
	key  runKey
	data []byte
	elem *list.Element
	prot bool
}

// SetRootBudget caps the page-tier bytes (runs + pins) attributable to
// one backend root — the per-dataset budget knob. bytes <= 0 removes
// the budget. The global PageBytes cap always applies on top.
func (c *Cache) SetRootBudget(root string, bytes int64) {
	c.pMu.Lock()
	if bytes <= 0 {
		delete(c.rootBudget, root)
	} else {
		c.rootBudget[root] = bytes
		c.enforceBudgetsLocked(root)
	}
	c.pMu.Unlock()
}

// removeRunLocked unlinks e from its segment and the accounting.
func (c *Cache) removeRunLocked(e *runEntry) {
	if e.prot {
		c.protected.Remove(e.elem)
		c.protBytes -= int64(len(e.data))
	} else {
		c.probation.Remove(e.elem)
	}
	delete(c.runs, e.key)
	n := int64(len(e.data))
	c.pageBytes -= n
	c.rootBytes[e.key.k.Root] -= n
}

// evictOneLocked evicts the least-valuable run, preferring the
// probation tail, optionally restricted to one root. Reports whether
// anything was evicted.
func (c *Cache) evictOneLocked(root string, any bool) bool {
	for _, l := range []*list.List{c.probation, c.protected} {
		for el := l.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*runEntry)
			if !any && e.key.k.Root != root {
				continue
			}
			c.removeRunLocked(e)
			atomic.AddInt64(&c.pageEvictions, 1)
			return true
		}
	}
	return false
}

// enforceBudgetsLocked evicts until root's budget (when set) and the
// global budget hold. Pinned members are exempt from eviction, so a
// root whose pins exceed its budget simply stops caching runs.
func (c *Cache) enforceBudgetsLocked(root string) {
	if budget, ok := c.rootBudget[root]; ok {
		for c.rootBytes[root] > budget {
			if !c.evictOneLocked(root, false) {
				break
			}
		}
	}
	for c.pageBytes > c.opts.PageBytes {
		if !c.evictOneLocked("", true) {
			break
		}
	}
}

// touchRunLocked records a hit: probation -> protected promotion, with
// protected overflow demoting its tail back to probation's MRU end.
func (c *Cache) touchRunLocked(e *runEntry) {
	if e.prot {
		c.protected.MoveToFront(e.elem)
		return
	}
	c.probation.Remove(e.elem)
	e.prot = true
	e.elem = c.protected.PushFront(e)
	c.protBytes += int64(len(e.data))
	protCap := int64(float64(c.opts.PageBytes) * protectedShare)
	for c.protBytes > protCap {
		back := c.protected.Back()
		if back == nil {
			break
		}
		de := back.Value.(*runEntry)
		c.protected.Remove(back)
		de.prot = false
		de.elem = c.probation.PushFront(de)
		c.protBytes -= int64(len(de.data))
	}
}

// lookupRun copies a cached exact run [off, off+len(p)) into p,
// reporting whether it hit. Serving a pinned member takes priority (any
// offset within it hits).
func (c *Cache) lookupRun(k Key, p []byte, off int64) (int, error, bool) {
	c.pMu.Lock()
	if pin, ok := c.pins[k]; ok {
		c.pMu.Unlock()
		// pin is immutable once stored; reading outside the lock is safe.
		atomic.AddInt64(&c.pageHits, 1)
		if off >= int64(len(pin)) {
			return 0, io.EOF, true
		}
		n := copy(p, pin[off:])
		if n < len(p) {
			return n, io.EOF, true
		}
		return n, nil, true
	}
	e, ok := c.runs[runKey{k: k, off: off, n: len(p)}]
	if !ok {
		c.pMu.Unlock()
		return 0, nil, false
	}
	copy(p, e.data)
	c.touchRunLocked(e)
	c.pMu.Unlock()
	atomic.AddInt64(&c.pageHits, 1)
	return len(p), nil, true
}

// insertRun stores a full successful read. Oversized runs (bigger than
// the whole budget) are never cached.
func (c *Cache) insertRun(k Key, off int64, data []byte) {
	n := int64(len(data))
	if n == 0 || n > c.opts.PageBytes {
		return
	}
	if budget, ok := c.budgetFor(k.Root); ok && n > budget {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.pMu.Lock()
	rk := runKey{k: k, off: off, n: len(data)}
	if _, ok := c.runs[rk]; ok {
		c.pMu.Unlock()
		return
	}
	e := &runEntry{key: rk, data: cp}
	e.elem = c.probation.PushFront(e)
	c.runs[rk] = e
	c.pageBytes += n
	c.rootBytes[k.Root] += n
	c.enforceBudgetsLocked(k.Root)
	c.pMu.Unlock()
}

func (c *Cache) budgetFor(root string) (int64, bool) {
	c.pMu.Lock()
	b, ok := c.rootBudget[root]
	c.pMu.Unlock()
	return b, ok
}

// Materialize reads the member's whole [0, size) bytes through r once
// and pins them in RAM (mebo-style materialized blob): every subsequent
// Reader hit on k is served at memory speed at any offset. Pins are
// exempt from eviction but count against the budgets; a member that
// does not fit its root's (or the global) budget is not pinned and
// (false, nil) is returned. Pinning the same key twice is a no-op.
func (c *Cache) Materialize(k Key, r io.ReaderAt, size int64) (bool, error) {
	if size <= 0 || size > c.opts.PageBytes {
		return false, nil
	}
	if budget, ok := c.budgetFor(k.Root); ok && size > budget {
		return false, nil
	}
	c.pMu.Lock()
	_, exists := c.pins[k]
	c.pMu.Unlock()
	if exists {
		return true, nil
	}
	buf := make([]byte, size)
	if _, err := r.ReadAt(buf, 0); err != nil {
		return false, fmt.Errorf("cache: materializing %s: %w", k.Name, err)
	}
	c.pMu.Lock()
	if _, exists := c.pins[k]; exists {
		c.pMu.Unlock()
		return true, nil
	}
	c.pins[k] = buf
	c.pageBytes += size
	c.pinBytes += size
	c.rootBytes[k.Root] += size
	c.enforceBudgetsLocked(k.Root)
	c.pMu.Unlock()
	return true, nil
}

// Reader wraps under with the page tier: ReadAt serves pinned members
// and cached runs from memory and fills the cache from full successful
// reads. onErr, when non-nil, observes every error under returns
// (besides io.EOF) — the dataset layer uses it to invalidate a member
// whose backing object was replaced under its pin.
func (c *Cache) Reader(k Key, under io.ReaderAt, onErr func(error)) io.ReaderAt {
	return &cachedReader{c: c, k: k, under: under, onErr: onErr}
}

type cachedReader struct {
	c     *Cache
	k     Key
	under io.ReaderAt
	onErr func(error)
}

func (r *cachedReader) ReadAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if n, err, ok := r.c.lookupRun(r.k, p, off); ok {
		return n, err
	}
	atomic.AddInt64(&r.c.pageMisses, 1)
	n, err := r.under.ReadAt(p, off)
	if err != nil {
		if err != io.EOF && r.onErr != nil {
			r.onErr(err)
		}
		return n, err
	}
	if n == len(p) {
		r.c.insertRun(r.k, off, p[:n])
	}
	return n, err
}
