package dataset

// Tests for the shared immutable-artifact cache wiring: parse-once
// semantics across concurrent Dataset handles, version-keyed
// invalidation (a replaced remote member can never serve stale bytes),
// race/leak behavior under concurrent open/scan/close/vacuum, and
// byte-identical scans with caching on, off, and pinned.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bullion/internal/cache"
	"bullion/internal/core"
	"bullion/internal/storage"
)

// countingBackend wraps a Backend and classifies every member-file read
// as metadata (footer trailer or footer block: read end within 8 bytes
// of the file end) or data, per file name.
type countingBackend struct {
	storage.Backend
	mu    sync.Mutex
	opens map[string]int
	meta  map[string]int
	data  map[string]int
}

func newCountingBackend(b storage.Backend) *countingBackend {
	return &countingBackend{
		Backend: b,
		opens:   map[string]int{},
		meta:    map[string]int{},
		data:    map[string]int{},
	}
}

func (b *countingBackend) ReadAt(name string) (storage.File, int64, error) {
	f, size, err := b.Backend.ReadAt(name)
	if err != nil {
		return nil, 0, err
	}
	b.mu.Lock()
	b.opens[name]++
	b.mu.Unlock()
	return &countingFile{File: f, b: b, name: name, size: size}, size, nil
}

// memberCounts sums opens/meta-reads/data-reads over part files only
// (manifest and CURRENT traffic is not the cache's to absorb).
func (b *countingBackend) memberCounts() (opens, meta, data int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for name, n := range b.opens {
		if strings.HasPrefix(name, "part-") {
			opens += n
		}
	}
	for name, n := range b.meta {
		if strings.HasPrefix(name, "part-") {
			meta += n
		}
	}
	for name, n := range b.data {
		if strings.HasPrefix(name, "part-") {
			data += n
		}
	}
	return opens, meta, data
}

type countingFile struct {
	storage.File
	b    *countingBackend
	name string
	size int64
}

func (f *countingFile) ReadAt(p []byte, off int64) (int, error) {
	f.b.mu.Lock()
	if off+int64(len(p)) >= f.size-8 {
		f.b.meta[f.name]++
	} else {
		f.b.data[f.name]++
	}
	f.b.mu.Unlock()
	return f.File.ReadAt(p, off)
}

// TestCacheParseOncePerMember: K Dataset handles over one directory,
// all sharing one cache, scanning concurrently — each member file is
// opened exactly once and its footer read exactly once (two physical
// reads: the 8-byte trailer and the footer block), no matter how many
// handles race. A warm handle opened afterwards does zero member I/O.
func TestCacheParseOncePerMember(t *testing.T) {
	const nFiles, rows, handles = 4, 500, 6
	dir := buildLocalDataset(t, nFiles, rows)
	local, err := storage.NewLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	cb := newCountingBackend(local)
	c := cache.New(cache.Options{})
	defer c.Close()

	var wg sync.WaitGroup
	errs := make([]error, handles)
	for i := 0; i < handles; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := Open(dir, &Options{Backend: cb, Cache: c})
			if err != nil {
				errs[i] = err
				return
			}
			defer d.Close()
			sc, err := d.Scan(ScanOptions{ScanOptions: core.ScanOptions{Columns: []string{"key"}}})
			if err != nil {
				errs[i] = err
				return
			}
			defer sc.Close()
			n, err := drainRows(sc)
			if err != nil {
				errs[i] = err
				return
			}
			if n != nFiles*rows {
				errs[i] = errors.New("short scan")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("handle %d: %v", i, err)
		}
	}
	opens, meta, _ := cb.memberCounts()
	if opens != nFiles {
		t.Fatalf("member opens = %d, want %d (one per member across %d handles)", opens, nFiles, handles)
	}
	if meta != 2*nFiles {
		t.Fatalf("metadata reads = %d, want %d (trailer + footer block per member, parsed once)", meta, 2*nFiles)
	}

	// Warm handle: every artifact is cached, so a full selective scan
	// does zero member opens and zero member reads of any kind.
	preOpens, preMeta, preData := cb.memberCounts()
	d, err := Open(dir, &Options{Backend: cb, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	keys, _ := scanKeys(t, d, ScanOptions{})
	checkKeys(t, keys, wantKeys(0, nFiles*rows))
	opens, meta, data := cb.memberCounts()
	if opens != preOpens || meta != preMeta || data != preData {
		t.Fatalf("warm scan touched the backend: opens %d->%d, meta %d->%d, data %d->%d",
			preOpens, opens, preMeta, meta, preData, data)
	}
	st := c.Stats()
	if st.FooterMisses != int64(nFiles) {
		t.Fatalf("FooterMisses = %d, want %d", st.FooterMisses, nFiles)
	}
}

func drainRows(sc *Scanner) (int, error) {
	n := 0
	for {
		b, err := sc.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		n += b.NumRows()
	}
}

// TestCacheReplacedETagNeverStale publishes a dataset over HTTP, warms
// the cache, then swaps the served content for a same-shape dataset
// with different values. The cache must either keep serving the
// consistent pinned old version (fully-cached reads, zero server hits)
// or fail with ErrChangedUnderRead — never a mix of old and new bytes —
// and a reopened handle must see the new version cleanly.
func TestCacheReplacedETagNeverStale(t *testing.T) {
	const nFiles, rows = 2, 400
	dirA := buildLocalDataset(t, nFiles, rows) // keys [0, 800)
	dirB := t.TempDir()                        // same shape, different keys
	db, err := Create(dirB, testSchema(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nFiles; i++ {
		if err := db.Append(keyBatch(t, db.Schema(), 100000+i*rows, rows)); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	la, err := storage.NewLocal(dirA)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := storage.NewLocal(dirB)
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	var current atomic.Value // http.Handler
	current.Store(storage.NewHTTPHandler(la))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		current.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := cache.New(cache.Options{})
	defer c.Close()
	d, err := Open(srv.URL, &Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	keys, _ := scanKeys(t, d, ScanOptions{})
	checkKeys(t, keys, wantKeys(0, nFiles*rows))

	// Replace the published dataset. The old handle's scans of the same
	// projection are fully cached: they serve the consistent pinned old
	// version without a single server round-trip.
	current.Store(storage.NewHTTPHandler(lb))
	base := hits.Load()
	keys, _ = scanKeys(t, d, ScanOptions{})
	checkKeys(t, keys, wantKeys(0, nFiles*rows))
	if hits.Load() != base {
		t.Fatalf("fully-cached rescan hit the server %d times", hits.Load()-base)
	}

	// A projection needing uncached runs must surface the replacement as
	// ErrChangedUnderRead (the pinned ETag no longer matches) — stale or
	// torn bytes are never an outcome.
	sc, err := d.Scan(ScanOptions{ScanOptions: core.ScanOptions{Columns: []string{"tag"}}})
	if err == nil {
		_, err = drainRows(sc)
		sc.Close()
	}
	if !errors.Is(err, storage.ErrChangedUnderRead) {
		t.Fatalf("scan of replaced member = %v, want ErrChangedUnderRead", err)
	}
	if st := c.Stats(); st.Invalidations == 0 {
		t.Fatal("ErrChangedUnderRead did not invalidate the member's cache entries")
	}

	// A fresh handle re-probes (the invalidation dropped the pinned
	// handle) and serves the new version, consistently.
	d2, err := Open(srv.URL, &Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	keys, _ = scanKeys(t, d2, ScanOptions{})
	checkKeys(t, keys, append(wantKeys(100000, 100000+int64(rows)), wantKeys(100000+int64(rows), 100000+2*int64(rows))...))
}

// TestCacheConcurrentLifecycle hammers cache-sharing handles with
// concurrent open/scan/close plus vacuums; the -race build is the data
// assertion, and the goroutine count settling back is the leak check.
func TestCacheConcurrentLifecycle(t *testing.T) {
	const nFiles, rows = 3, 300
	dir := buildLocalDataset(t, nFiles, rows)
	c := cache.New(cache.Options{HandleEntries: 2, PageBytes: 1 << 20})
	defer c.Close()
	before := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				d, err := Open(dir, &Options{Cache: c})
				if err != nil {
					t.Error(err)
					return
				}
				if g%3 == 2 && i%4 == 3 {
					d.Vacuum() // exercises Invalidate against live scans
				} else {
					keys, _ := scanKeys(t, d, ScanOptions{})
					checkKeys(t, keys, wantKeys(0, nFiles*rows))
				}
				d.Close()
			}
		}(g)
	}
	wg.Wait()

	// Goroutines settle: nothing in the cache owns a goroutine, so any
	// sustained growth is a leak in the lease/scan plumbing.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after settle window", before, runtime.NumGoroutine())
}

// TestCacheGoldenEquivalence: the same scan through every cache
// configuration — disabled, shared cold, shared warm, private with
// pinning — yields byte-identical rows.
func TestCacheGoldenEquivalence(t *testing.T) {
	const nFiles, rows = 3, 400
	dir := buildLocalDataset(t, nFiles, rows)

	golden := scanAll(t, dir, &Options{DisableCache: true})
	pinned := &Options{
		FooterCacheEntries: 32,
		CacheBytes:         64 << 20,
		PinHotMembers:      true,
	}
	for name, opts := range map[string]*Options{
		"shared":  nil,
		"private": {FooterCacheEntries: 32},
		"pinned":  pinned,
	} {
		got := scanAll(t, dir, opts)
		if len(got) != len(golden) {
			t.Fatalf("%s: %d rows, want %d", name, len(got), len(golden))
		}
		for i := range got {
			if got[i] != golden[i] {
				t.Fatalf("%s: row %d = %q, want %q", name, i, got[i], golden[i])
			}
		}
		// Scan twice: the warm pass must match too.
		warm := scanAll(t, dir, opts)
		for i := range warm {
			if warm[i] != golden[i] {
				t.Fatalf("%s warm: row %d = %q, want %q", name, i, warm[i], golden[i])
			}
		}
	}
}

// scanAll renders every row of every column to a comparable string.
func scanAll(t *testing.T, dir string, opts *Options) []string {
	t.Helper()
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sc, err := d.Scan(ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	var out []string
	for {
		b, err := sc.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out
			}
			t.Fatal(err)
		}
		keys := b.Columns[0].(core.Int64Data)
		vals := b.Columns[1].(core.Float64Data)
		tags := b.Columns[2].(core.BytesData)
		for i := range keys {
			out = append(out, fmt.Sprintf("%d|%g|%s", keys[i], vals[i], tags[i]))
		}
	}
}
