package dataset

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"bullion/internal/cache"
	"bullion/internal/core"
	"bullion/internal/enc"
	"bullion/internal/storage"
)

// maxFileConcurrency bounds explicit ScanOptions.FileConcurrency requests.
const maxFileConcurrency = 64

// ScanOptions configures Dataset.Scan. The embedded core options apply to
// each member file's scan engine; Range is interpreted in dataset-global
// rows (member files concatenated in manifest order) and clipped per
// file, and Filters additionally prune whole files via the manifest's
// file-level zone maps before any member is opened.
type ScanOptions struct {
	core.ScanOptions
	// FileConcurrency is how many member files stream concurrently
	// (<= 0 = GOMAXPROCS). Each in-flight file runs its own scan engine
	// with the embedded options' Workers; batches are always emitted in
	// manifest file order regardless of concurrency.
	FileConcurrency int
	// Degraded makes the scan skip — instead of fail on — members that
	// stay unreachable after the storage backend's full retry budget.
	// Every skipped member is reported in ScanStats.DegradedMembers;
	// nothing is ever dropped silently. A member that fails mid-stream
	// may already have emitted a prefix of its rows before being
	// skipped. Off by default: a normal scan fails fast on the first
	// member error.
	Degraded bool
}

// ScanStats aggregates the physical work of a dataset scan: the sums of
// every finished member engine's core stats, plus file-level pruning
// counters.
type ScanStats struct {
	core.ScanStats
	// FilesPlanned member files survived manifest pruning and will be (or
	// were) scanned; FilesPruned were skipped entirely — never opened —
	// via the manifest's row counts and zone maps.
	FilesPlanned int
	FilesPruned  int
	// FilesScanned member engines have finished. The embedded core sums
	// cover finished engines only, so mid-scan snapshots lag the engines
	// currently streaming.
	FilesScanned int
	// Retries, Hedges, and HedgeWins count the resilience work the
	// storage backend performed while this scanner was live: reads
	// re-issued after transient errors, hedge legs launched against slow
	// reads, and hedge legs that beat their primary. All zero when the
	// dataset's backend carries no resilience wrapper (local datasets).
	// The counters are a backend-wide delta since Scan, so concurrent
	// scanners over the same dataset each observe the union of their
	// overlapping work.
	Retries   int64
	Hedges    int64
	HedgeWins int64
	// DegradedMembers lists the member files a Degraded scan skipped
	// after the retry budget was exhausted, in manifest order. Empty
	// unless ScanOptions.Degraded was set.
	DegradedMembers []string
	// Cache counts the artifact cache's work while this scanner was
	// live. Like the resilience counters, it is a cache-wide delta since
	// Scan: concurrent scanners sharing the cache observe the union of
	// their overlapping work. All zero when caching is disabled.
	Cache CacheScanStats
}

// CacheScanStats is the cache-counter section of ScanStats: hits and
// misses per tier (parsed footers, open handles, page runs) plus page
// evictions, as deltas over the scanner's lifetime.
type CacheScanStats struct {
	FooterHits    int64
	FooterMisses  int64
	HandleHits    int64
	HandleMisses  int64
	PageHits      int64
	PageMisses    int64
	PageEvictions int64
}

// Any reports whether the scan did any cache work at all — the CLI
// prints the cache line only when it did.
func (c CacheScanStats) Any() bool {
	return c != CacheScanStats{}
}

// Scanner streams a projected column set across a dataset's member files
// in manifest order. One Scanner must be used from a single goroutine
// (Recycle excepted); any number may run concurrently over the same
// Dataset.
type Scanner struct {
	schema  *core.Schema
	members []*memberScan
	cur     int

	sem      chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// owners maps an emitted batch to the member engine that produced it,
	// tracked only under ReuseBatches so batches a caller never recycles
	// are not pinned. Guarded by ownersMu: Recycle may race Next.
	reuseOn  bool
	ownersMu sync.Mutex
	owners   map[*core.Batch]*memberScan

	failed error
	closed bool

	// res, when the dataset's backend exposes resilience counters, is
	// that backend; resBase is its counter snapshot at Scan time, so
	// Stats can report this scanner's delta.
	res interface {
		ResilienceStats() storage.ResilienceStats
	}
	resBase storage.ResilienceStats

	// cache/cacheBase mirror res/resBase for the artifact cache: the
	// snapshot at Scan time turns cumulative counters into this
	// scanner's delta.
	cache     *cache.Cache
	cacheBase cache.Stats

	degradedOK bool

	// unpin releases the scanner's generation pin (see pinGeneration);
	// called once by shutdown.
	unpin func()

	statsMu  sync.Mutex
	agg      core.ScanStats
	done     int
	pruned   int
	degraded []string
}

// memberScan is one planned member file: a gate the dispatcher opens when
// a concurrency slot frees, and the channel its engine streams batches
// into.
type memberScan struct {
	m    *member
	d    *Dataset
	opts core.ScanOptions
	gate chan struct{}
	ch   chan *core.Batch
	// sc is set by the member goroutine before its first send; the
	// consumer only touches it for batches received from ch, so the
	// channel provides the happens-before edge.
	sc  *core.Scanner
	err error // read by the consumer only after ch closes
}

// Scan plans a dataset scan against the current manifest generation and
// starts streaming. The generation is snapshotted: commits landing after
// Scan returns (appends, deletes, compactions) do not affect the batches
// this scanner emits.
func (d *Dataset) Scan(opts ScanOptions) (*Scanner, error) {
	// Planning holds the file lock so the snapshot is consistent: Delete
	// mutates existing member bytes on disk before it commits, and a scan
	// must not open some members before and some after that mutation.
	// Append/Compact only add new files and are not excluded — scans keep
	// planning (and streaming) concurrently with them.
	d.fileMu.RLock()
	defer d.fileMu.RUnlock()
	gen := d.generationSnapshot()
	if err := validateFilters(gen.schema, opts.Filters); err != nil {
		return nil, err
	}
	schema, err := projectSchema(gen.schema, opts.Columns)
	if err != nil {
		return nil, err
	}
	lo, hi := uint64(0), gen.total
	if r := opts.Range; r != nil {
		if r.Lo > r.Hi || r.Hi > gen.total {
			return nil, fmt.Errorf("dataset: scan range [%d,%d) out of [0,%d]", r.Lo, r.Hi, gen.total)
		}
		lo, hi = r.Lo, r.Hi
	}
	k := opts.FileConcurrency
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if k > maxFileConcurrency {
		k = maxFileConcurrency
	}

	s := &Scanner{
		schema:     schema,
		reuseOn:    opts.ReuseBatches && !opts.DisableCoalesce,
		owners:     map[*core.Batch]*memberScan{},
		sem:        make(chan struct{}, k),
		stop:       make(chan struct{}),
		degradedOK: opts.Degraded,
		// Pin the snapshotted generation for the scanner's lifetime:
		// Vacuum retains a superseded generation while a scanner is still
		// serving it. Released by shutdown (Close, or a failed Next).
		unpin: pinGeneration(d.backend.Root(), gen.manifest),
	}
	if res, ok := d.backend.(interface {
		ResilienceStats() storage.ResilienceStats
	}); ok {
		s.res = res
		s.resBase = res.ResilienceStats()
	}
	if d.cache != nil {
		s.cache = d.cache
		s.cacheBase = d.cache.Stats()
	}
	prepared := prepareFilters(opts.Filters)
	for i, m := range gen.members {
		fileLo, fileHi := gen.starts[i], gen.starts[i]+m.entry.Rows
		if m.entry.Rows == 0 || m.entry.LiveRows == 0 ||
			fileHi <= lo || fileLo >= hi || m.excluded(prepared) {
			s.pruned++
			continue
		}
		local := opts.ScanOptions
		localLo, localHi := uint64(0), m.entry.Rows
		if lo > fileLo {
			localLo = lo - fileLo
		}
		if hi < fileHi {
			localHi = m.entry.Rows - (fileHi - hi)
		}
		local.Range = &core.RowRange{Lo: localLo, Hi: localHi}
		// Open surviving members now (pruned members are never opened):
		// the scan must snapshot the files as they are at Scan time, not
		// at first drain — a Delete committed between Scan and Next must
		// not leak into this scanner's batches. Opens are cached per
		// generation, so only the first scan of a generation pays them.
		if _, err := m.open(d); err != nil {
			// A Degraded scan reports the unreachable member (the retry
			// budget was already spent inside the resilient backend) and
			// plans around it instead of failing the whole scan.
			if opts.Degraded {
				s.degraded = append(s.degraded, m.entry.Name)
				continue
			}
			s.unpin()
			return nil, err
		}
		s.members = append(s.members, &memberScan{
			m:    m,
			d:    d,
			opts: local,
			gate: make(chan struct{}),
			ch:   make(chan *core.Batch, 2),
		})
	}

	// The dispatcher opens member gates strictly in file order as
	// concurrency slots free up, so the engines running at any moment are
	// always the earliest unfinished files — the consumer can never be
	// blocked behind a member that cannot get a slot.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for _, ms := range s.members {
			select {
			case s.sem <- struct{}{}:
			case <-s.stop:
				return
			}
			close(ms.gate)
		}
	}()
	for _, ms := range s.members {
		s.wg.Add(1)
		go s.runMember(ms)
	}
	return s, nil
}

// projectSchema resolves the projected schema from the dataset schema,
// rejecting unknown names up front — a scan over a fully pruned (or
// empty) dataset must still report a projection typo, matching core.
func projectSchema(schema *core.Schema, names []string) (*core.Schema, error) {
	if len(names) == 0 {
		return schema, nil
	}
	fields := make([]core.Field, 0, len(names))
	for _, name := range names {
		i, ok := schema.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("dataset: no column %q", name)
		}
		fields = append(fields, schema.Fields[i])
	}
	return &core.Schema{Fields: fields}, nil
}

// validateFilters mirrors core's filter validation so a scan over a fully
// pruned (or empty) dataset still rejects bad filters.
func validateFilters(schema *core.Schema, filters []core.ColumnFilter) error {
	for _, cf := range filters {
		if _, ok := schema.Lookup(cf.Column); !ok {
			return fmt.Errorf("dataset: no column %q", cf.Column)
		}
		if err := cf.Validate(); err != nil {
			return fmt.Errorf("dataset: %v", err)
		}
	}
	return nil
}

// manifestFilter is one filter prepared for manifest-level pruning: the
// membership set is hashed once per scan, not per member file.
type manifestFilter struct {
	cf     core.ColumnFilter
	hashes []uint64
}

func prepareFilters(filters []core.ColumnFilter) []manifestFilter {
	out := make([]manifestFilter, len(filters))
	for i, cf := range filters {
		out[i].cf = cf
		for _, v := range cf.ValueIn {
			out[i].hashes = append(out[i].hashes, enc.BloomHash(v))
		}
	}
	return out
}

// excluded reports whether the manifest's file-level statistics prove
// no row of the member can satisfy some filter: int and float zone maps
// for range predicates, the per-member bloom for membership predicates.
// Columns without matching-domain statistics never prune (conservative,
// exactly like page pruning). Bloom probes go through the member's
// parse-once memo — repeated scans re-probe without re-parsing.
func (m *member) excluded(filters []manifestFilter) bool {
	e := &m.entry
	for i := range filters {
		cf := &filters[i].cf
		z, ok := e.zone(cf.Column)
		if !ok {
			continue
		}
		if z.hasIntBounds() && (cf.Min != nil || cf.Max != nil) {
			if (cf.Min != nil && z.Max < *cf.Min) || (cf.Max != nil && z.Min > *cf.Max) {
				return true
			}
		}
		if z.Kind == "float" && z.FMin != nil && z.FMax != nil && (cf.FloatMin != nil || cf.FloatMax != nil) {
			if (cf.FloatMin != nil && *z.FMax < *cf.FloatMin) || (cf.FloatMax != nil && *z.FMin > *cf.FloatMax) {
				return true
			}
		}
		if hs := filters[i].hashes; len(hs) > 0 {
			if fl := m.manifestBloom(cf.Column); fl != nil && !bloomAnyHash(fl, hs) {
				return true
			}
		}
	}
	return false
}

func bloomAnyHash(fl *enc.Bloom, hashes []uint64) bool {
	for _, h := range hashes {
		if fl.ContainsHash(h) {
			return true
		}
	}
	return false
}

// runMember waits for its dispatch gate, runs one scan engine over the
// member file, and streams its batches.
func (s *Scanner) runMember(ms *memberScan) {
	defer s.wg.Done()
	defer close(ms.ch)
	select {
	case <-ms.gate:
	case <-s.stop:
		return
	}
	defer func() { <-s.sem }()

	f, err := ms.m.open(ms.d)
	if err != nil {
		ms.err = err
		return
	}
	sc, err := f.Scan(ms.opts)
	if err != nil {
		ms.err = fmt.Errorf("dataset: scanning %s: %w", ms.m.entry.Name, err)
		return
	}
	ms.sc = sc
	defer sc.Close()
	for {
		b, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			ms.err = fmt.Errorf("dataset: scanning %s: %w", ms.m.entry.Name, err)
			return
		}
		select {
		case ms.ch <- b:
		case <-s.stop:
			return
		}
	}
	st := sc.Stats()
	s.statsMu.Lock()
	addStats(&s.agg, st)
	s.done++
	s.statsMu.Unlock()
}

func addStats(dst *core.ScanStats, src core.ScanStats) {
	dst.BytesRead += src.BytesRead
	dst.PagesDecoded += src.PagesDecoded
	dst.PagesSkipped += src.PagesSkipped
	dst.BatchesEmitted += src.BatchesEmitted
	dst.BatchesSkipped += src.BatchesSkipped
	dst.RowsEmitted += src.RowsEmitted
	dst.ReadOps += src.ReadOps
	dst.CoalescedBytes += src.CoalescedBytes
	dst.WastedBytes += src.WastedBytes
}

// Next returns the next batch in dataset order (member files in manifest
// order, batches in file order within each member), or io.EOF when every
// member is drained.
func (s *Scanner) Next() (*core.Batch, error) {
	if s.failed != nil {
		return nil, s.failed
	}
	if s.closed {
		return nil, fmt.Errorf("dataset: scanner closed")
	}
	for {
		if s.cur >= len(s.members) {
			return nil, io.EOF
		}
		ms := s.members[s.cur]
		b, ok := <-ms.ch
		if !ok {
			if ms.err != nil {
				if s.degradedOK {
					// The member died after its retry budget; report it and
					// move on. Any batches it emitted before failing were
					// already returned — a degraded scan may serve a prefix
					// of a failed member.
					s.statsMu.Lock()
					s.degraded = append(s.degraded, ms.m.entry.Name)
					s.statsMu.Unlock()
					s.cur++
					continue
				}
				s.failed = ms.err
				s.shutdown()
				return nil, ms.err
			}
			s.cur++
			continue
		}
		if s.reuseOn {
			s.ownersMu.Lock()
			s.owners[b] = ms
			s.ownersMu.Unlock()
		}
		return b, nil
	}
}

// Recycle returns a finished batch's storage to the member engine that
// produced it (ScanOptions.ReuseBatches; no-op otherwise). As with the
// core scanner, the batch must not be read afterwards; Recycle is safe to
// call concurrently with Next.
func (s *Scanner) Recycle(b *core.Batch) {
	s.ownersMu.Lock()
	ms, ok := s.owners[b]
	if ok {
		delete(s.owners, b)
	}
	s.ownersMu.Unlock()
	if ok {
		ms.sc.Recycle(b)
	}
}

// Schema returns the projected schema, in output column order.
func (s *Scanner) Schema() *core.Schema { return s.schema }

// Stats returns the aggregated scan statistics (see ScanStats).
func (s *Scanner) Stats() ScanStats {
	s.statsMu.Lock()
	st := ScanStats{
		ScanStats:       s.agg,
		FilesPlanned:    len(s.members),
		FilesPruned:     s.pruned,
		FilesScanned:    s.done,
		DegradedMembers: append([]string(nil), s.degraded...),
	}
	s.statsMu.Unlock()
	if s.res != nil {
		cur := s.res.ResilienceStats()
		st.Retries = cur.Retries - s.resBase.Retries
		st.Hedges = cur.Hedges - s.resBase.Hedges
		st.HedgeWins = cur.HedgeWins - s.resBase.HedgeWins
	}
	if s.cache != nil {
		cur := s.cache.Stats()
		st.Cache = CacheScanStats{
			FooterHits:    cur.FooterHits - s.cacheBase.FooterHits,
			FooterMisses:  cur.FooterMisses - s.cacheBase.FooterMisses,
			HandleHits:    cur.HandleHits - s.cacheBase.HandleHits,
			HandleMisses:  cur.HandleMisses - s.cacheBase.HandleMisses,
			PageHits:      cur.PageHits - s.cacheBase.PageHits,
			PageMisses:    cur.PageMisses - s.cacheBase.PageMisses,
			PageEvictions: cur.PageEvictions - s.cacheBase.PageEvictions,
		}
	}
	return st
}

// Close stops the member engines. Safe to call more than once and after
// io.EOF or an error.
func (s *Scanner) Close() error {
	if !s.closed {
		s.closed = true
		s.shutdown()
	}
	return nil
}

func (s *Scanner) shutdown() {
	s.stopOnce.Do(func() {
		close(s.stop)
		// Drain member channels so no engine goroutine stays blocked on a
		// full channel racing the stop select.
		for _, ms := range s.members {
			go func(ch chan *core.Batch) {
				for range ch {
				}
			}(ms.ch)
		}
		s.wg.Wait()
		if s.unpin != nil {
			s.unpin()
		}
	})
}
