package dataset

import (
	"errors"
	"fmt"
	"strings"
)

// CompactStats reports what a Compact call did.
type CompactStats struct {
	// FilesCompacted member files were rewritten into fresh files;
	// FilesDropped had no live rows left and were removed from the
	// manifest without a replacement.
	FilesCompacted int
	FilesDropped   int
	// BytesBefore/BytesAfter compare the total member bytes of the
	// dataset across the commit.
	BytesBefore int64
	BytesAfter  int64
	// RowsReclaimed counts deleted rows physically dropped by the
	// rewrites.
	RowsReclaimed uint64
}

// Compact folds member files whose live-row ratio has dropped below
// threshold into fresh files: each victim is rewritten without its
// deleted rows (core.RewriteWithoutRows driven by the file's deletion
// vector) and replaced in place in the manifest — preserving the
// dataset's live-row order — then the result is committed as a new
// manifest generation. Files with no live rows are dropped outright.
//
// Scans holding the previous generation keep serving: the victims'
// bytes are untouched on disk until Vacuum reclaims them.
func (d *Dataset) Compact(threshold float64) (CompactStats, error) {
	if d.snapshot {
		return CompactStats{}, ErrSnapshotReadOnly
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	gen := d.generationSnapshot()

	var stats CompactStats
	stats.BytesBefore = datasetBytes(gen.manifest)

	nextGen := gen.manifest.Generation + 1
	replace := map[string]*FileEntry{} // victim name -> replacement (nil = drop)
	var tmpFiles []string
	cleanup := func() {
		for _, tmp := range tmpFiles {
			d.backend.Remove(tmp)
		}
	}
	seq := 0
	for _, m := range gen.members {
		e := m.entry
		if e.Rows == 0 || e.LiveRows >= e.Rows {
			continue
		}
		if ratio := float64(e.LiveRows) / float64(e.Rows); ratio >= threshold {
			continue
		}
		if e.LiveRows == 0 {
			replace[e.Name] = nil
			stats.FilesDropped++
			stats.RowsReclaimed += e.Rows
			continue
		}
		entry, tmpName, err := d.rewriteMember(m, nextGen, seq)
		if err != nil {
			cleanup()
			return stats, err
		}
		tmpFiles = append(tmpFiles, tmpName)
		replace[e.Name] = &entry
		stats.FilesCompacted++
		stats.RowsReclaimed += e.Rows - e.LiveRows
		seq++
	}
	if len(replace) == 0 {
		stats.BytesAfter = stats.BytesBefore
		return stats, nil
	}

	// The renames to final names run inside the commit critical section
	// (after the generation CAS — a doomed commit must not clobber a
	// winner's files), made durable by a directory sync before the
	// manifest references them; then the commit replaces (or drops)
	// victims at their original manifest positions.
	publish := func() error {
		for i, tmp := range tmpFiles {
			final := strings.TrimSuffix(tmp, ".tmp")
			if err := d.backend.Rename(tmp, final); err != nil {
				return err
			}
			tmpFiles[i] = final
		}
		return d.backend.SyncDir()
	}
	err := d.commit(publish, func(m *Manifest) error {
		out := m.Files[:0]
		for _, e := range m.Files {
			r, hit := replace[e.Name]
			switch {
			case !hit:
				out = append(out, e)
			case r != nil:
				out = append(out, *r)
			}
		}
		m.Files = out
		return nil
	})
	if err != nil {
		// Past the point of no return the replacement files may be
		// referenced — leave them for Vacuum to sort out.
		if !errors.Is(err, ErrCommitIndeterminate) {
			cleanup()
		}
		return stats, err
	}
	stats.BytesAfter = datasetBytes(d.generationSnapshot().manifest)
	return stats, nil
}

// rewriteMember copies a victim's live rows into a fresh file under a
// temporary name — contents synced, ready to rename — and returns its
// manifest entry under the final name plus the temporary name.
func (d *Dataset) rewriteMember(m *member, gen uint64, seq int) (FileEntry, string, error) {
	f, err := m.open(d)
	if err != nil {
		return FileEntry{}, "", err
	}
	finalName := fmt.Sprintf("part-%06d-c%03d.bln", gen, seq)
	tmpName := finalName + ".tmp"
	out, err := d.backend.Create(tmpName)
	if err != nil {
		return FileEntry{}, "", err
	}
	// RewriteWithoutRows with no extra rows drops exactly the rows the
	// deletion vector marks; its returned WrittenStats become the manifest
	// entry directly (writer-side stats piggyback — the fresh file is
	// never reopened).
	ws, err := f.RewriteWithoutRows(out, nil, d.writerOpts())
	if err != nil {
		out.Close()
		d.backend.Remove(tmpName)
		return FileEntry{}, "", fmt.Errorf("dataset: compacting %s: %w", m.entry.Name, err)
	}
	// Durable before rename: the manifest must never reference contents a
	// power cut could truncate.
	if err := out.Sync(); err != nil {
		out.Close()
		d.backend.Remove(tmpName)
		return FileEntry{}, "", err
	}
	if err := out.Close(); err != nil {
		d.backend.Remove(tmpName)
		return FileEntry{}, "", err
	}
	if ws.NumRows != m.entry.LiveRows {
		d.backend.Remove(tmpName)
		return FileEntry{}, "", fmt.Errorf("dataset: compacted %s has %d rows, want %d live",
			m.entry.Name, ws.NumRows, m.entry.LiveRows)
	}
	return entryFromWritten(finalName, m.entry.SchemaFP, ws), tmpName, nil
}

func datasetBytes(m *Manifest) int64 {
	var n int64
	for _, e := range m.Files {
		n += e.Bytes
	}
	return n
}
