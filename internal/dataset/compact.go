package dataset

import (
	"fmt"
	"os"
	"path/filepath"
)

// CompactStats reports what a Compact call did.
type CompactStats struct {
	// FilesCompacted member files were rewritten into fresh files;
	// FilesDropped had no live rows left and were removed from the
	// manifest without a replacement.
	FilesCompacted int
	FilesDropped   int
	// BytesBefore/BytesAfter compare the total member bytes of the
	// dataset across the commit.
	BytesBefore int64
	BytesAfter  int64
	// RowsReclaimed counts deleted rows physically dropped by the
	// rewrites.
	RowsReclaimed uint64
}

// Compact folds member files whose live-row ratio has dropped below
// threshold into fresh files: each victim is rewritten without its
// deleted rows (core.RewriteWithoutRows driven by the file's deletion
// vector) and replaced in place in the manifest — preserving the
// dataset's live-row order — then the result is committed as a new
// manifest generation. Files with no live rows are dropped outright.
//
// Scans holding the previous generation keep serving: the victims'
// bytes are untouched on disk until Vacuum reclaims them.
func (d *Dataset) Compact(threshold float64) (CompactStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	gen := d.generationSnapshot()

	var stats CompactStats
	stats.BytesBefore = datasetBytes(gen.manifest)

	nextGen := gen.manifest.Generation + 1
	replace := map[string]*FileEntry{} // victim name -> replacement (nil = drop)
	var tmpFiles []string
	cleanup := func() {
		for _, tmp := range tmpFiles {
			os.Remove(tmp)
		}
	}
	seq := 0
	for _, m := range gen.members {
		e := m.entry
		if e.Rows == 0 || e.LiveRows >= e.Rows {
			continue
		}
		if ratio := float64(e.LiveRows) / float64(e.Rows); ratio >= threshold {
			continue
		}
		if e.LiveRows == 0 {
			replace[e.Name] = nil
			stats.FilesDropped++
			stats.RowsReclaimed += e.Rows
			continue
		}
		entry, tmpPath, err := d.rewriteMember(m, nextGen, seq)
		if err != nil {
			cleanup()
			return stats, err
		}
		tmpFiles = append(tmpFiles, tmpPath)
		replace[e.Name] = &entry
		stats.FilesCompacted++
		stats.RowsReclaimed += e.Rows - e.LiveRows
		seq++
	}
	if len(replace) == 0 {
		stats.BytesAfter = stats.BytesBefore
		return stats, nil
	}

	// Rename the rewritten files into place, then commit the manifest
	// with victims replaced (or dropped) at their original positions.
	for i, tmp := range tmpFiles {
		final := filepath.Join(d.dir, filepath.Base(tmp[:len(tmp)-len(".tmp")]))
		if err := os.Rename(tmp, final); err != nil {
			cleanup()
			return stats, err
		}
		tmpFiles[i] = final
	}
	err := d.commit(func(m *Manifest) error {
		out := m.Files[:0]
		for _, e := range m.Files {
			r, hit := replace[e.Name]
			switch {
			case !hit:
				out = append(out, e)
			case r != nil:
				out = append(out, *r)
			}
		}
		m.Files = out
		return nil
	})
	if err != nil {
		cleanup()
		return stats, err
	}
	stats.BytesAfter = datasetBytes(d.generationSnapshot().manifest)
	return stats, nil
}

// rewriteMember copies a victim's live rows into a fresh file under a
// temporary name and returns its manifest entry under the final name.
func (d *Dataset) rewriteMember(m *member, gen uint64, seq int) (FileEntry, string, error) {
	f, err := m.open(d)
	if err != nil {
		return FileEntry{}, "", err
	}
	finalName := fmt.Sprintf("part-%06d-c%03d.bln", gen, seq)
	tmpPath := filepath.Join(d.dir, finalName+".tmp")
	out, err := os.Create(tmpPath)
	if err != nil {
		return FileEntry{}, "", err
	}
	// RewriteWithoutRows with no extra rows drops exactly the rows the
	// deletion vector marks; its returned WrittenStats become the manifest
	// entry directly (writer-side stats piggyback — the fresh file is
	// never reopened).
	ws, err := f.RewriteWithoutRows(out, nil, d.writerOpts())
	if err != nil {
		out.Close()
		os.Remove(tmpPath)
		return FileEntry{}, "", fmt.Errorf("dataset: compacting %s: %w", m.entry.Name, err)
	}
	if err := out.Close(); err != nil {
		os.Remove(tmpPath)
		return FileEntry{}, "", err
	}
	if ws.NumRows != m.entry.LiveRows {
		os.Remove(tmpPath)
		return FileEntry{}, "", fmt.Errorf("dataset: compacted %s has %d rows, want %d live",
			m.entry.Name, ws.NumRows, m.entry.LiveRows)
	}
	return entryFromWritten(finalName, m.entry.SchemaFP, ws), tmpPath, nil
}

func datasetBytes(m *Manifest) int64 {
	var n int64
	for _, e := range m.Files {
		n += e.Bytes
	}
	return n
}
