package dataset

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"bullion/internal/core"
	"bullion/internal/storage"
)

// shadowRow / shadowModel mirror the dataset's global row space in plain
// Go: the crash matrix replays every mutation against this model and then
// checks each reopened crash state against it.
type shadowRow struct {
	key int64
	del bool
}

type shadowModel struct {
	members [][]shadowRow
}

// addSharded mirrors ShardedWriter routing: batch i goes to shard i%n,
// and the non-empty shards are appended as new members in shard order.
func (s *shadowModel) addSharded(batches [][]int64, n int) {
	shards := make([][]shadowRow, n)
	for i, keys := range batches {
		for _, k := range keys {
			shards[i%n] = append(shards[i%n], shadowRow{key: k})
		}
	}
	for _, rows := range shards {
		if len(rows) > 0 {
			s.members = append(s.members, rows)
		}
	}
}

// applyDelete marks the given dataset-global rows (indexed over all rows,
// deleted included, in member order) and returns the affected keys.
func (s *shadowModel) applyDelete(rows []uint64) map[int64]bool {
	targets := map[int64]bool{}
	for _, r := range rows {
		idx := r
		for mi := range s.members {
			if idx < uint64(len(s.members[mi])) {
				s.members[mi][idx].del = true
				targets[s.members[mi][idx].key] = true
				break
			}
			idx -= uint64(len(s.members[mi]))
		}
	}
	return targets
}

// compact mirrors Dataset.Compact: members under the live-ratio threshold
// are replaced in place by their live rows (or dropped when empty).
func (s *shadowModel) compact(threshold float64) {
	var out [][]shadowRow
	for _, m := range s.members {
		live := 0
		for _, r := range m {
			if !r.del {
				live++
			}
		}
		if live == len(m) || float64(live)/float64(len(m)) >= threshold {
			out = append(out, m)
			continue
		}
		if live == 0 {
			continue
		}
		kept := make([]shadowRow, 0, live)
		for _, r := range m {
			if !r.del {
				kept = append(kept, r)
			}
		}
		out = append(out, kept)
	}
	s.members = out
}

func (s *shadowModel) liveKeys() []int64 {
	var out []int64
	for _, m := range s.members {
		for _, r := range m {
			if !r.del {
				out = append(out, r.key)
			}
		}
	}
	return out
}

type commitRec struct {
	gen  uint64
	ops  int
	live []int64
}

type deleteRec struct {
	targets   map[int64]bool
	startOps  int
	commitGen uint64
}

// spanRows returns [lo, hi) as global row ids.
func spanRows(lo, hi uint64) []uint64 {
	out := make([]uint64, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, r)
	}
	return out
}

// tagRec records the workload's tag commit: which generation the tag
// pins and that generation's live keys at tag time.
type tagRec struct {
	name string
	gen  uint64
	live []int64
}

// crashWorkload drives every mutation kind through fb once — sharded
// ingest, append, tag, delete, compact, vacuum — recording the shadow
// state and op count at each successful commit.
func crashWorkload(t *testing.T, fb *storage.Fault) ([]commitRec, []deleteRec, tagRec) {
	t.Helper()
	opts := &Options{Backend: fb}
	sh := &shadowModel{}
	var commits []commitRec
	var deletes []deleteRec
	record := func(d *Dataset) {
		commits = append(commits, commitRec{gen: d.Generation(), ops: fb.OpCount(), live: sh.liveKeys()})
	}

	d, err := Create("crashds", testSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	record(d) // generation 1: empty

	// Sharded ingest: 2 shards, 4 batches of 40 rows, keys [0,160).
	sw, err := d.ShardedWriter(2)
	if err != nil {
		t.Fatal(err)
	}
	var batches [][]int64
	for i := 0; i < 4; i++ {
		if err := sw.Write(keyBatch(t, d.Schema(), i*40, 40)); err != nil {
			t.Fatal(err)
		}
		batches = append(batches, wantKeys(int64(i*40), int64(i*40+40)))
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sh.addSharded(batches, 2)
	record(d) // generation 2

	// Append keys [200,250).
	if err := d.Append(keyBatch(t, d.Schema(), 200, 50)); err != nil {
		t.Fatal(err)
	}
	sh.addSharded([][]int64{wantKeys(200, 250)}, 1)
	record(d) // generation 3

	// Tag the pre-delete state: the tag commit is a generation like any
	// other, and the later compact + vacuum must retain generation 3's
	// files at every crash point where the tag is durable.
	tag := tagRec{name: "ckpt", gen: d.Generation(), live: sh.liveKeys()}
	if err := d.Tag(tag.name, 0); err != nil {
		t.Fatal(err)
	}
	record(d) // generation 4: tag commit

	// Delete rows spanning two members.
	rows := append(spanRows(5, 25), spanRows(175, 185)...)
	start := fb.OpCount()
	targets := sh.applyDelete(rows)
	if err := d.Delete(rows); err != nil {
		t.Fatal(err)
	}
	record(d) // generation 5
	deletes = append(deletes, deleteRec{targets: targets, startOps: start, commitGen: d.Generation()})

	// Compact everything holding deletions.
	if _, err := d.Compact(0.999); err != nil {
		t.Fatal(err)
	}
	sh.compact(0.999)
	record(d) // generation 6

	if _, err := d.Vacuum(); err != nil {
		t.Fatal(err)
	}

	// Append keys [300,340).
	if err := d.Append(keyBatch(t, d.Schema(), 300, 40)); err != nil {
		t.Fatal(err)
	}
	sh.addSharded([][]int64{wantKeys(300, 340)}, 1)
	record(d) // generation 7

	// A second delete over the compacted layout.
	rows = spanRows(0, 10)
	start = fb.OpCount()
	targets = sh.applyDelete(rows)
	if err := d.Delete(rows); err != nil {
		t.Fatal(err)
	}
	record(d) // generation 8
	deletes = append(deletes, deleteRec{targets: targets, startOps: start, commitGen: d.Generation()})

	return commits, deletes, tag
}

// scanKeyVals drains a key+val scan, verifying the val column's integrity
// (keyBatch writes val = key/2) and returning the keys.
func scanKeyVals(d *Dataset) ([]int64, error) {
	sc, err := d.Scan(ScanOptions{ScanOptions: core.ScanOptions{Columns: []string{"key", "val"}}})
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	var keys []int64
	for {
		b, err := sc.Next()
		if err == io.EOF {
			return keys, nil
		}
		if err != nil {
			return nil, err
		}
		ks := b.Columns[0].(core.Int64Data)
		vs := b.Columns[1].(core.Float64Data)
		for i, k := range ks {
			if vs[i] != float64(k)/2 {
				return nil, fmt.Errorf("key %d carries val %v, want %v (torn member bytes)", k, vs[i], float64(k)/2)
			}
		}
		keys = append(keys, ks...)
	}
}

// verifyLiveKeys checks got against want: same keys in the same order,
// except that keys in allowed (an in-flight delete's targets) may be
// missing from got. Extra or reordered keys always fail.
func verifyLiveKeys(got, want []int64, allowed map[int64]bool) error {
	wi := 0
	for _, k := range got {
		for wi < len(want) && want[wi] != k {
			if !allowed[want[wi]] {
				return fmt.Errorf("key %d missing (not an in-flight delete target)", want[wi])
			}
			wi++
		}
		if wi == len(want) {
			return fmt.Errorf("unexpected key %d (not in the durable generation)", k)
		}
		wi++
	}
	for ; wi < len(want); wi++ {
		if !allowed[want[wi]] {
			return fmt.Errorf("key %d missing (not an in-flight delete target)", want[wi])
		}
	}
	return nil
}

// TestCrashMatrix is the fault-injection crash matrix: one workload run
// records a durable-state snapshot at every fsync boundary — the only
// points durable state changes, so the snapshots cover every crash point
// exhaustively — then every snapshot is rebooted under both crash models
// (strict: unsynced directory entries are lost; loose: metadata-journaled
// namespaces survive, unsynced contents revert) and must reopen to
// exactly the last durable generation with every row intact.
func TestCrashMatrix(t *testing.T) {
	fb := storage.NewFault("crashds")
	fb.EnableSnapshots()
	commits, deletes, tag := crashWorkload(t, fb)
	snaps := fb.Snapshots()
	if len(snaps) < 20 {
		t.Fatalf("only %d snapshots recorded; the matrix is not covering the workload", len(snaps))
	}

	for _, model := range []string{"strict", "loose"} {
		for si, snap := range snaps {
			files := snap.Strict
			if model == "loose" {
				files = snap.Loose
			}
			rb := storage.NewFaultFromState("crashds", files)
			name := fmt.Sprintf("%s/snap%02d@op%d", model, si, snap.AfterOps)

			// The last commit that returned before this crash point is the
			// durability floor; the snapshot may also land inside the NEXT
			// commit's window (durable but not yet returned), so its
			// generation is the ceiling.
			expIdx := -1
			for i := range commits {
				if commits[i].ops <= snap.AfterOps {
					expIdx = i
				}
			}

			d2, err := Open("crashds", &Options{Backend: rb})
			if err != nil {
				if expIdx >= 0 {
					t.Fatalf("%s: generation %d was durable but reopen failed: %v",
						name, commits[expIdx].gen, err)
				}
				continue
			}
			g := d2.Generation()
			matchIdx := -1
			for i := range commits {
				if commits[i].gen == g {
					matchIdx = i
				}
			}
			if matchIdx < 0 {
				t.Fatalf("%s: rebooted to generation %d, which no commit produced", name, g)
			}
			if matchIdx != expIdx && matchIdx != expIdx+1 {
				t.Fatalf("%s: rebooted to generation %d, want %d (or its in-flight successor)",
					name, g, commits[max(expIdx, 0)].gen)
			}
			expected := &commits[matchIdx]

			// An in-flight Delete may have synced deletion bits without its
			// commit; only that delete's own targets may be missing.
			allowed := map[int64]bool{}
			for _, dr := range deletes {
				if dr.commitGen > expected.gen && dr.startOps <= snap.AfterOps {
					for k := range dr.targets {
						allowed[k] = true
					}
				}
			}
			got, err := scanKeyVals(d2)
			if err != nil {
				t.Fatalf("%s: scan failed: %v", name, err)
			}
			if err := verifyLiveKeys(got, expected.live, allowed); err != nil {
				t.Fatalf("%s: %v", name, err)
			}

			// Structural verification, deep (checksums) included.
			rep, err := Fsck("crashds", &Options{Backend: rb}, true)
			if err != nil {
				t.Fatalf("%s: fsck: %v", name, err)
			}
			if !rep.OK() {
				t.Fatalf("%s: fsck not OK: errors=%v members=%+v", name, rep.Errors, rep.Members)
			}
			if len(rep.Warnings) > 0 && len(allowed) == 0 {
				t.Fatalf("%s: fsck warnings outside any delete window: %v", name, rep.Warnings)
			}

			// If the tag commit is durable in this snapshot, the tagged
			// generation must be openable and serve its frozen row set.
			// Deletes flip footer bits in member files the tagged generation
			// shares, so any delete that had started by the crash point may
			// have leaked into the snapshot — but nothing else may differ.
			tagDurable := d2.Tags()[tag.name] == tag.gen
			checkSnapshot := func(when string) {
				sd, err := OpenAt("crashds", tag.name, &Options{Backend: rb})
				if err != nil {
					t.Fatalf("%s: OpenAt(%q) %s: %v", name, tag.name, when, err)
				}
				defer sd.Close()
				if sd.Generation() != tag.gen {
					t.Fatalf("%s: tag %q resolved to generation %d, want %d",
						name, tag.name, sd.Generation(), tag.gen)
				}
				snapAllowed := map[int64]bool{}
				for _, dr := range deletes {
					if dr.startOps <= snap.AfterOps {
						for k := range dr.targets {
							snapAllowed[k] = true
						}
					}
				}
				got, err := scanKeyVals(sd)
				if err != nil {
					t.Fatalf("%s: tagged snapshot scan %s: %v", name, when, err)
				}
				if err := verifyLiveKeys(got, tag.live, snapAllowed); err != nil {
					t.Fatalf("%s: tagged snapshot %s: %v", name, when, err)
				}
			}
			if tagDurable {
				checkSnapshot("after reboot")
			}

			// The rebooted dataset must be fully operable: vacuum away the
			// debris, append, and scan the new rows back.
			if _, err := d2.Vacuum(); err != nil {
				t.Fatalf("%s: vacuum after reboot: %v", name, err)
			}

			// Vacuum must have reclaimed every untagged superseded manifest
			// while keeping the tagged generation's (when the tag is durable).
			listing, err := rb.List()
			if err != nil {
				t.Fatalf("%s: list after vacuum: %v", name, err)
			}
			present := map[string]bool{}
			for _, n := range listing {
				present[n] = true
			}
			for i := range commits {
				cg := commits[i].gen
				if cg >= g || !present[manifestName(cg)] {
					continue
				}
				if !(tagDurable && cg == tag.gen) {
					t.Fatalf("%s: vacuum left untagged manifest %s (current gen %d)",
						name, manifestName(cg), g)
				}
			}
			if tagDurable {
				if !present[manifestName(tag.gen)] {
					t.Fatalf("%s: vacuum reclaimed the tagged generation's manifest %s",
						name, manifestName(tag.gen))
				}
				checkSnapshot("after vacuum")
			}
			if err := d2.Append(keyBatch(t, d2.Schema(), 9000, 10)); err != nil {
				t.Fatalf("%s: append after reboot: %v", name, err)
			}
			after, err := scanKeyVals(d2)
			if err != nil {
				t.Fatalf("%s: scan after append: %v", name, err)
			}
			if len(after) < 10 {
				t.Fatalf("%s: %d rows after recovery append", name, len(after))
			}
			for i, k := range after[len(after)-10:] {
				if k != int64(9000+i) {
					t.Fatalf("%s: recovery append rows corrupted: tail %v", name, after[len(after)-10:])
				}
			}
			d2.Close()
		}
	}
}

// TestCommitErrorMatrix injects a one-shot error at every operation index
// in turn: each run must either fail cleanly at some public call or
// complete, and in both cases the dataset must reopen, pass fsck, vacuum,
// and accept writes afterwards.
func TestCommitErrorMatrix(t *testing.T) {
	boom := errors.New("injected fault")
	for k := 0; ; k++ {
		if k > 5000 {
			t.Fatal("error matrix did not terminate: workload never ran hook-free")
		}
		fb := storage.NewFault(fmt.Sprintf("errds-%d", k))
		fired := false
		fb.SetFailOp(func(op storage.Op) error {
			if op.Index == k {
				fired = true
				return boom
			}
			return nil
		})

		// One mutation of every kind; stop at the first surfaced error (the
		// injected fault may also be swallowed by a best-effort path).
		func() {
			opts := &Options{Backend: fb}
			d, err := Create("errds", testSchema(t), opts)
			if err != nil {
				return
			}
			defer d.Close()
			if err := d.Append(keyBatch(t, d.Schema(), 0, 100)); err != nil {
				return
			}
			if err := d.Tag("pre-delete", 0); err != nil {
				return
			}
			if err := d.Delete(spanRows(10, 20)); err != nil {
				return
			}
			if _, err := d.Compact(0.999); err != nil {
				return
			}
			if _, err := d.Vacuum(); err != nil {
				return
			}
		}()
		fb.SetFailOp(nil)

		// Recovery: the directory must come back as a working dataset (or
		// still accept Create when the injected fault preempted it).
		d, err := Open("errds", &Options{Backend: fb})
		if err != nil {
			if d, err = Create("errds", testSchema(t), &Options{Backend: fb}); err != nil {
				t.Fatalf("op %d: neither Open nor Create recovers: %v", k, err)
			}
		}
		rep, err := Fsck("errds", &Options{Backend: fb}, false)
		if err != nil || !rep.OK() {
			t.Fatalf("op %d: fsck after recovery: %v, errors=%v members=%+v", k, err, rep.Errors, rep.Members)
		}
		if _, err := d.Vacuum(); err != nil {
			t.Fatalf("op %d: vacuum after recovery: %v", k, err)
		}
		if err := d.Append(keyBatch(t, d.Schema(), 900, 20)); err != nil {
			t.Fatalf("op %d: append after recovery: %v", k, err)
		}
		got, err := scanKeyVals(d)
		if err != nil {
			t.Fatalf("op %d: scan after recovery: %v", k, err)
		}
		// The tail is always the recovery batch; everything before it comes
		// from the (possibly partially applied) workload.
		if len(got) < 20 {
			t.Fatalf("op %d: %d rows after recovery append", k, len(got))
		}
		for i, key := range got[len(got)-20:] {
			if key != int64(900+i) {
				t.Fatalf("op %d: recovery batch corrupted: %v", k, got[len(got)-20:])
			}
		}
		for _, key := range got[:len(got)-20] {
			if key < 0 || key >= 100 {
				t.Fatalf("op %d: key %d was never written by the workload", k, key)
			}
		}
		d.Close()

		if !fired {
			break // the workload ran past every op index there is
		}
	}
}

// TestOpenSweepsTmpDebris plants crash debris and asserts Open removes
// exactly the temporaries — never parts or manifests — and that
// DisableRecoverySweep leaves it for Fsck to report.
func TestOpenSweepsTmpDebris(t *testing.T) {
	fb := storage.NewFault("sweepds")
	d, err := Create("sweepds", testSchema(t), &Options{Backend: fb})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(keyBatch(t, d.Schema(), 0, 50)); err != nil {
		t.Fatal(err)
	}
	d.Close()

	for _, debris := range []string{"foo.tmp", "ingest-9-0.tmp", "manifest-000009.json.tmp", "bar.tmp-1234"} {
		f, err := fb.Create(debris)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("junk"))
		f.Close()
	}
	orphanPart := "part-000099-000.bln"
	f, _ := fb.Create(orphanPart)
	f.Close()

	// Fsck (which disables the sweep) sees all of it, classified.
	rep, err := Fsck("sweepds", &Options{Backend: fb}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OrphanTmps) != 4 {
		t.Fatalf("fsck OrphanTmps = %v, want the 4 planted temporaries", rep.OrphanTmps)
	}
	if len(rep.OrphanParts) != 1 || rep.OrphanParts[0] != orphanPart {
		t.Fatalf("fsck OrphanParts = %v", rep.OrphanParts)
	}
	if !rep.OK() {
		t.Fatalf("orphans must not fail fsck: %v", rep.Errors)
	}

	// Open sweeps the temporaries, and only them.
	d2, err := Open("sweepds", &Options{Backend: fb})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	names, err := fb.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if isTempDebris(n) {
			t.Fatalf("temporary %s survived the recovery sweep", n)
		}
	}
	found := false
	for _, n := range names {
		if n == orphanPart {
			found = true
		}
	}
	if !found {
		t.Fatal("recovery sweep removed an unreferenced part file; only Vacuum may")
	}
	keys, err := scanKeyVals(d2)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 50 {
		t.Fatalf("%d rows after sweep, want 50", len(keys))
	}
}

// TestFsckReportsMissingMember pins the failure side of Fsck: a manifest
// referencing a vanished member is an error, not a warning.
func TestFsckReportsMissingMember(t *testing.T) {
	fb := storage.NewFault("fsckds")
	d, err := Create("fsckds", testSchema(t), &Options{Backend: fb})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(keyBatch(t, d.Schema(), 0, 30)); err != nil {
		t.Fatal(err)
	}
	victim := d.Manifest().Files[0].Name
	d.Close()
	if err := fb.Remove(victim); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck("fsckds", &Options{Backend: fb}, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("fsck passed with a missing member file")
	}
	if len(rep.Members) != 1 || len(rep.Members[0].Errors) == 0 {
		t.Fatalf("missing member not surfaced: %+v", rep.Members)
	}
}
