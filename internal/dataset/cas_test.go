package dataset

import (
	"errors"
	"strings"
	"testing"
)

// TestConcurrentCommitCAS races two handles of the same directory
// through interleaved ShardedWriter commits: exactly one wins, the loser
// fails with ErrGenerationConflict, its part files are cleaned up, and
// the surviving dataset is exactly the winner's.
func TestConcurrentCommitCAS(t *testing.T) {
	dir := t.TempDir()
	d1, err := Create(dir, testSchema(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	d2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()

	// Both handles observe generation 1 and start a bulk load.
	sw1, err := d1.ShardedWriter(1)
	if err != nil {
		t.Fatal(err)
	}
	sw2, err := d2.ShardedWriter(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw1.Write(keyBatch(t, d1.Schema(), 0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := sw2.Write(keyBatch(t, d2.Schema(), 1000, 100)); err != nil {
		t.Fatal(err)
	}

	if err := sw1.Close(); err != nil {
		t.Fatalf("first committer must win: %v", err)
	}
	err = sw2.Close()
	if !errors.Is(err, ErrGenerationConflict) {
		t.Fatalf("second committer = %v, want ErrGenerationConflict", err)
	}

	// The loser's files are gone; the winner's data is intact.
	reopened, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if g := reopened.Generation(); g != 2 {
		t.Fatalf("generation = %d, want the winner's 2", g)
	}
	keys, err := scanKeyVals(reopened)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyLiveKeys(keys, wantKeys(0, 100), nil); err != nil {
		t.Fatalf("surviving rows are not the winner's: %v", err)
	}
	names, err := reopened.backend.List()
	if err != nil {
		t.Fatal(err)
	}
	referenced := map[string]bool{}
	for _, e := range reopened.Manifest().Files {
		referenced[e.Name] = true
	}
	for _, n := range names {
		if strings.HasPrefix(n, "part-") && !referenced[n] {
			t.Fatalf("loser left part file %s behind", n)
		}
		if strings.Contains(n, ".tmp") {
			t.Fatalf("loser left temporary %s behind", n)
		}
	}

	// The losing handle recovers by reopening; a retry then lands.
	d3, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if err := d3.Append(keyBatch(t, d3.Schema(), 1000, 100)); err != nil {
		t.Fatalf("retry after conflict: %v", err)
	}
	keys, err = scanKeyVals(d3)
	if err != nil {
		t.Fatal(err)
	}
	want := append(wantKeys(0, 100), wantKeys(1000, 1100)...)
	if err := verifyLiveKeys(keys, want, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCompactLosesCASToWriter interleaves a Compact with a concurrent
// append commit from a second handle: the compact must fail with a clean
// generation conflict, remove its rewritten files, and leave both
// handles' committed data untouched.
func TestCompactLosesCASToWriter(t *testing.T) {
	dir := t.TempDir()
	d1, err := Create(dir, testSchema(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	if err := d1.Append(keyBatch(t, d1.Schema(), 0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := d1.Delete(spanRows(0, 50)); err != nil {
		t.Fatal(err)
	}

	// A second handle commits between d1's delete and its compact.
	d2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if err := d2.Append(keyBatch(t, d2.Schema(), 500, 100)); err != nil {
		t.Fatal(err)
	}

	_, err = d1.Compact(0.999)
	if !errors.Is(err, ErrGenerationConflict) {
		t.Fatalf("stale compact = %v, want ErrGenerationConflict", err)
	}

	reopened, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	keys, err := scanKeyVals(reopened)
	if err != nil {
		t.Fatal(err)
	}
	want := append(wantKeys(50, 100), wantKeys(500, 600)...)
	if err := verifyLiveKeys(keys, want, nil); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir, nil, false)
	if err != nil || !rep.OK() {
		t.Fatalf("fsck after lost compact: %v, errors=%v", err, rep.Errors)
	}
	if len(rep.OrphanParts) != 0 {
		t.Fatalf("lost compact left rewritten files behind: %v", rep.OrphanParts)
	}
}
