// Package dataset implements the multi-file table layer over the Bullion
// file format: a directory of immutable member files described by a
// versioned JSON manifest. The manifest carries, per member, the row and
// live-row counts plus per-column min/max zone maps lifted from the file
// footers at commit time, so a dataset scan prunes whole files from the
// manifest alone — member files that cannot match are never opened, let
// alone read. This is the LEA-style amortization argument applied at the
// file level: per-file statistics are computed once, at the commit that
// adds the file, and reused by every subsequent open and scan.
//
// Commits are atomic: each mutation (append, delete, compact) writes a
// complete new manifest generation to a temporary file, renames it into
// place, and then swaps the CURRENT pointer file the same way. Readers
// holding an older generation keep serving from it — member files are
// immutable (deletion flips footer bits; compaction writes replacement
// files) and are only reclaimed by an explicit Vacuum.
package dataset

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"bullion/internal/core"
	"bullion/internal/footer"
	"bullion/internal/quant"
)

// ManifestVersion is the manifest format version this package writes.
const ManifestVersion = 1

// currentName is the pointer file naming the live manifest generation.
const currentName = "CURRENT"

// Manifest describes one generation of a dataset: the ordered member file
// list and the dataset schema. File order is significant — it defines the
// dataset's global row space (member i's rows follow member i-1's).
type Manifest struct {
	Version    int    `json:"version"`
	Generation uint64 `json:"generation"`
	// SchemaFP fingerprints the dataset schema; every member file must
	// match it (core.Schema.Fingerprint).
	SchemaFP string      `json:"schema_fingerprint"`
	Schema   []FieldDef  `json:"schema"`
	Files    []FileEntry `json:"files"`
}

// FieldDef is one schema field in manifest form (a stable JSON rendering
// of core.Field).
type FieldDef struct {
	Name     string `json:"name"`
	Kind     uint8  `json:"kind"`
	Elem     uint8  `json:"elem,omitempty"`
	Quant    uint8  `json:"quant,omitempty"`
	Sparse   bool   `json:"sparse,omitempty"`
	Nullable bool   `json:"nullable,omitempty"`
}

// FileEntry describes one member file: identity, row accounting, and the
// per-column zone maps used for whole-file pruning.
type FileEntry struct {
	// Name is the member's file name, relative to the dataset directory.
	Name string `json:"name"`
	// Rows is the logical row count (including deleted rows); LiveRows
	// excludes rows marked in the member's deletion vector.
	Rows     uint64 `json:"rows"`
	LiveRows uint64 `json:"live_rows"`
	// Bytes is the member's total file size.
	Bytes int64 `json:"bytes"`
	// SchemaFP is the member's schema fingerprint (must equal the
	// manifest's).
	SchemaFP string `json:"schema_fingerprint"`
	// Columns holds file-level pruning statistics, one entry per column
	// with anything usable: int or float min/max zone maps and bloom
	// filters over byte-string values.
	Columns []ColumnZone `json:"columns,omitempty"`
}

// ColumnZone is the file-level pruning statistics of one column, lifted
// from the member's footer when the file was committed. Kind selects the
// bounds domain: "" or "int" (Min/Max, int64 order — "" is what
// pre-float manifests wrote) or "float" (FMin/FMax). A zone may carry a
// bloom filter with no bounds at all (byte-string columns).
type ColumnZone struct {
	Name      string   `json:"name"`
	Kind      string   `json:"kind,omitempty"`
	Min       int64    `json:"min"`
	Max       int64    `json:"max"`
	FMin      *float64 `json:"fmin,omitempty"`
	FMax      *float64 `json:"fmax,omitempty"`
	NullCount uint64   `json:"null_count,omitempty"`
	// Bloom is the column's serialized split-block bloom filter
	// (enc.OpenBloom); base64 in the JSON rendering.
	Bloom []byte `json:"bloom,omitempty"`
}

// hasIntBounds reports whether Min/Max are valid int64 bounds.
func (z *ColumnZone) hasIntBounds() bool { return z.Kind == "" || z.Kind == "int" }

// zone returns the named column's zone map, if the entry recorded one.
func (e *FileEntry) zone(name string) (ColumnZone, bool) {
	for _, z := range e.Columns {
		if z.Name == name {
			return z, true
		}
	}
	return ColumnZone{}, false
}

// manifestName returns the file name of generation g.
func manifestName(g uint64) string { return fmt.Sprintf("manifest-%06d.json", g) }

// fieldDefs converts a core schema to manifest form.
func fieldDefs(s *core.Schema) []FieldDef {
	out := make([]FieldDef, len(s.Fields))
	for i, f := range s.Fields {
		out[i] = FieldDef{
			Name:     f.Name,
			Kind:     uint8(f.Type.Kind),
			Elem:     uint8(f.Type.Elem),
			Quant:    uint8(f.Type.Quant),
			Sparse:   f.Sparse,
			Nullable: f.Nullable,
		}
	}
	return out
}

// schemaFromDefs reconstructs (and re-validates) the core schema.
func schemaFromDefs(defs []FieldDef) (*core.Schema, error) {
	fields := make([]core.Field, len(defs))
	for i, d := range defs {
		fields[i] = core.Field{
			Name: d.Name,
			Type: core.Type{
				Kind:  footer.Kind(d.Kind),
				Elem:  footer.Kind(d.Elem),
				Quant: quant.Format(d.Quant),
			},
			Sparse:   d.Sparse,
			Nullable: d.Nullable,
		}
	}
	return core.NewSchema(fields...)
}

// entryForFile builds a member's manifest entry from its opened handle:
// row accounting from the footer, statistics from core's Stats walk (no
// data reads). The commit paths avoid even this — the writer surfaces the
// same statistics directly (entryFromWritten) — so this survives as the
// verification path: entryFromWritten must agree with it.
func entryForFile(name string, f *core.File, size int64) FileEntry {
	return FileEntry{
		Name:     name,
		Rows:     f.NumRows(),
		LiveRows: f.NumLiveRows(),
		Bytes:    size,
		SchemaFP: f.Schema().Fingerprint(),
		Columns:  zonesFromColumns(f.Stats().Columns),
	}
}

// entryFromWritten builds a member's manifest entry from the statistics
// its own writer surfaced at Close — the writer-side stats piggyback: a
// freshly written shard is never reopened just to lift its footer.
func entryFromWritten(name, schemaFP string, ws *core.WrittenStats) FileEntry {
	return FileEntry{
		Name:     name,
		Rows:     ws.NumRows,
		LiveRows: ws.NumRows, // fresh files carry no deletions
		Bytes:    ws.Bytes,
		SchemaFP: schemaFP,
		Columns:  zonesFromColumns(ws.Columns),
	}
}

// maxManifestBloomBytes caps the bloom size lifted into a manifest entry.
// Every commit rewrites the whole manifest JSON, so a very-high-cardinality
// column (64 KiB ≈ 43k distinct values at the default sizing) would make
// each Append/Delete/Compact rewrite megabytes of unchanged base64. Columns
// over the cap simply lose manifest-level membership pruning — the member's
// own footer bloom still prunes at scan time once the file is opened. A
// sidecar bloom store is the follow-on if whole-file pruning on such
// columns ever matters (see ROADMAP).
const maxManifestBloomBytes = 1 << 16

// zonesFromColumns renders column statistics as manifest zones. Non-finite
// float bounds are dropped (JSON cannot carry ±Inf; a missing zone only
// costs pruning, never correctness), as are blooms over
// maxManifestBloomBytes.
func zonesFromColumns(cols []core.ColumnStats) []ColumnZone {
	var out []ColumnZone
	for _, cs := range cols {
		z := ColumnZone{Name: cs.Name, NullCount: cs.NullCount}
		keep := false
		switch {
		case cs.HasMinMax:
			z.Kind, z.Min, z.Max = "int", cs.Min, cs.Max
			keep = true
		case cs.HasFloatMinMax && finite(cs.FloatMin) && finite(cs.FloatMax):
			lo, hi := cs.FloatMin, cs.FloatMax
			z.Kind, z.FMin, z.FMax = "float", &lo, &hi
			keep = true
		}
		if len(cs.Bloom) > 0 && len(cs.Bloom) <= maxManifestBloomBytes {
			if !keep {
				z.Kind = "bytes"
			}
			z.Bloom = cs.Bloom
			keep = true
		}
		if keep {
			out = append(out, z)
		}
	}
	return out
}

func finite(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }

// writeFileAtomic writes data to dir/name via a temporary file + rename,
// syncing the file before the swap so a crash can't leave a half-written
// manifest behind the rename.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// writeManifest commits m as dir's live generation: the manifest file
// first, then the CURRENT pointer.
func writeManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	name := manifestName(m.Generation)
	if err := writeFileAtomic(dir, name, append(data, '\n')); err != nil {
		return fmt.Errorf("dataset: writing manifest: %w", err)
	}
	if err := writeFileAtomic(dir, currentName, []byte(name+"\n")); err != nil {
		return fmt.Errorf("dataset: writing CURRENT: %w", err)
	}
	return nil
}

// loadManifest reads dir's live manifest via the CURRENT pointer.
func loadManifest(dir string) (*Manifest, error) {
	cur, err := os.ReadFile(filepath.Join(dir, currentName))
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(cur))
	if name == "" || strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("dataset: CURRENT names invalid manifest %q", name)
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("dataset: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("dataset: parsing %s: %w", name, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("dataset: manifest version %d unsupported (want %d)", m.Version, ManifestVersion)
	}
	for i, e := range m.Files {
		if e.SchemaFP != m.SchemaFP {
			return nil, fmt.Errorf("dataset: member %q fingerprint %s != dataset %s",
				e.Name, e.SchemaFP, m.SchemaFP)
		}
		if e.Name == "" || strings.ContainsAny(e.Name, "/\\") {
			return nil, fmt.Errorf("dataset: member %d has invalid name %q", i, e.Name)
		}
	}
	return &m, nil
}
