// Package dataset implements the multi-file table layer over the Bullion
// file format: a directory of immutable member files described by a
// versioned JSON manifest. The manifest carries, per member, the row and
// live-row counts plus per-column min/max zone maps lifted from the file
// footers at commit time, so a dataset scan prunes whole files from the
// manifest alone — member files that cannot match are never opened, let
// alone read. This is the LEA-style amortization argument applied at the
// file level: per-file statistics are computed once, at the commit that
// adds the file, and reused by every subsequent open and scan.
//
// Commits are atomic: each mutation (append, delete, compact) writes a
// complete new manifest generation to a temporary file, renames it into
// place, and then swaps the CURRENT pointer file the same way. Readers
// holding an older generation keep serving from it — member files are
// immutable (deletion flips footer bits; compaction writes replacement
// files) and are only reclaimed by an explicit Vacuum.
//
// # Durability and crash recovery
//
// All dataset I/O flows through a storage.Backend (local FS by default;
// Options.Backend overrides it), and the commit protocol is
// crash-consistent against power cuts:
//
//   - Member file contents are fsynced before the file is renamed to its
//     final part name, and the directory is fsynced after the renames, so
//     a manifest can never reference bytes that are not durable.
//   - Both steps of a manifest commit — the manifest generation file and
//     the CURRENT pointer swap — are temp-write + fsync + rename + fsync
//     of the directory. After any mutation (ShardedWriter.Close, Append,
//     Delete, Compact) returns nil, the new generation survives a power
//     cut; a crash mid-commit leaves the previous generation intact.
//   - Commits CAS on the generation number: the CURRENT pointer is
//     re-read under a per-directory critical section and the commit fails
//     with ErrGenerationConflict if another handle moved it. The losing
//     mutator cleans up its files and the dataset is unchanged.
//   - Delete is the one mutation that updates member bytes in place (its
//     deletion-vector footer rewrite is fsynced before the manifest
//     commit). A crash inside a Delete can therefore leave some of that
//     call's target rows already deleted even though the commit never
//     landed — rows outside an in-flight Delete's target set are never
//     affected.
//
// A crash between publishing part files and committing the manifest
// strands orphans. OpenDataset sweeps *.tmp debris automatically (see
// Options.DisableRecoverySweep); Vacuum additionally reclaims
// unreferenced part files and superseded manifests; Fsck reports all of
// it without deleting anything.
package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"bullion/internal/core"
	"bullion/internal/footer"
	"bullion/internal/quant"
	"bullion/internal/storage"
)

// ErrGenerationConflict reports a commit that lost the generation CAS:
// another handle (or process) moved CURRENT since this handle last
// observed it. The dataset is unchanged by the losing commit; reopen to
// observe the winner's generation and retry.
var ErrGenerationConflict = errors.New("dataset: generation conflict: CURRENT moved underneath the commit")

// ErrCommitIndeterminate marks a commit whose outcome is unknown: the
// CURRENT pointer was renamed into place but the directory sync after it
// failed, so the swap may or may not survive. The commit's data files are
// deliberately left in place — if the swap landed they are referenced; if
// not they are orphans for Vacuum. Reopen the dataset to observe the
// outcome.
var ErrCommitIndeterminate = errors.New("dataset: commit outcome indeterminate")

// ManifestVersion is the manifest format version this package writes.
const ManifestVersion = 1

// currentName is the pointer file naming the live manifest generation.
const currentName = "CURRENT"

// Manifest describes one generation of a dataset: the ordered member file
// list and the dataset schema. File order is significant — it defines the
// dataset's global row space (member i's rows follow member i-1's).
type Manifest struct {
	Version    int    `json:"version"`
	Generation uint64 `json:"generation"`
	// SchemaFP fingerprints the dataset schema; every member file must
	// match it (core.Schema.Fingerprint).
	SchemaFP string      `json:"schema_fingerprint"`
	Schema   []FieldDef  `json:"schema"`
	Files    []FileEntry `json:"files"`
	// Tags are named snapshots: tag name -> the manifest generation it
	// pins. The map lives in the manifest itself, so tag creation and
	// deletion ride the same CAS commit protocol as every other mutation
	// (crash-consistent, one winner per generation), and every commit
	// carries the set forward. Tagged generations are retained: Vacuum
	// keeps their manifests and member files, Fsck classifies them as
	// referenced, and OpenAt serves read-only snapshots of them.
	Tags map[string]uint64 `json:"tags,omitempty"`
}

// FieldDef is one schema field in manifest form (a stable JSON rendering
// of core.Field).
type FieldDef struct {
	Name     string `json:"name"`
	Kind     uint8  `json:"kind"`
	Elem     uint8  `json:"elem,omitempty"`
	Quant    uint8  `json:"quant,omitempty"`
	Sparse   bool   `json:"sparse,omitempty"`
	Nullable bool   `json:"nullable,omitempty"`
}

// FileEntry describes one member file: identity, row accounting, and the
// per-column zone maps used for whole-file pruning.
type FileEntry struct {
	// Name is the member's file name, relative to the dataset directory.
	Name string `json:"name"`
	// Rows is the logical row count (including deleted rows); LiveRows
	// excludes rows marked in the member's deletion vector.
	Rows     uint64 `json:"rows"`
	LiveRows uint64 `json:"live_rows"`
	// Bytes is the member's total file size.
	Bytes int64 `json:"bytes"`
	// SchemaFP is the member's schema fingerprint (must equal the
	// manifest's).
	SchemaFP string `json:"schema_fingerprint"`
	// Columns holds file-level pruning statistics, one entry per column
	// with anything usable: int or float min/max zone maps and bloom
	// filters over byte-string values.
	Columns []ColumnZone `json:"columns,omitempty"`
}

// ColumnZone is the file-level pruning statistics of one column, lifted
// from the member's footer when the file was committed. Kind selects the
// bounds domain: "" or "int" (Min/Max, int64 order — "" is what
// pre-float manifests wrote) or "float" (FMin/FMax). A zone may carry a
// bloom filter with no bounds at all (byte-string columns).
type ColumnZone struct {
	Name      string   `json:"name"`
	Kind      string   `json:"kind,omitempty"`
	Min       int64    `json:"min"`
	Max       int64    `json:"max"`
	FMin      *float64 `json:"fmin,omitempty"`
	FMax      *float64 `json:"fmax,omitempty"`
	NullCount uint64   `json:"null_count,omitempty"`
	// Bloom is the column's serialized split-block bloom filter
	// (enc.OpenBloom); base64 in the JSON rendering.
	Bloom []byte `json:"bloom,omitempty"`
}

// hasIntBounds reports whether Min/Max are valid int64 bounds.
func (z *ColumnZone) hasIntBounds() bool { return z.Kind == "" || z.Kind == "int" }

// zone returns the named column's zone map, if the entry recorded one.
func (e *FileEntry) zone(name string) (ColumnZone, bool) {
	for _, z := range e.Columns {
		if z.Name == name {
			return z, true
		}
	}
	return ColumnZone{}, false
}

// manifestName returns the file name of generation g.
func manifestName(g uint64) string { return fmt.Sprintf("manifest-%06d.json", g) }

// fieldDefs converts a core schema to manifest form.
func fieldDefs(s *core.Schema) []FieldDef {
	out := make([]FieldDef, len(s.Fields))
	for i, f := range s.Fields {
		out[i] = FieldDef{
			Name:     f.Name,
			Kind:     uint8(f.Type.Kind),
			Elem:     uint8(f.Type.Elem),
			Quant:    uint8(f.Type.Quant),
			Sparse:   f.Sparse,
			Nullable: f.Nullable,
		}
	}
	return out
}

// schemaFromDefs reconstructs (and re-validates) the core schema.
func schemaFromDefs(defs []FieldDef) (*core.Schema, error) {
	fields := make([]core.Field, len(defs))
	for i, d := range defs {
		fields[i] = core.Field{
			Name: d.Name,
			Type: core.Type{
				Kind:  footer.Kind(d.Kind),
				Elem:  footer.Kind(d.Elem),
				Quant: quant.Format(d.Quant),
			},
			Sparse:   d.Sparse,
			Nullable: d.Nullable,
		}
	}
	return core.NewSchema(fields...)
}

// entryForFile builds a member's manifest entry from its opened handle:
// row accounting from the footer, statistics from core's Stats walk (no
// data reads). The commit paths avoid even this — the writer surfaces the
// same statistics directly (entryFromWritten) — so this survives as the
// verification path: entryFromWritten must agree with it.
func entryForFile(name string, f *core.File, size int64) FileEntry {
	return FileEntry{
		Name:     name,
		Rows:     f.NumRows(),
		LiveRows: f.NumLiveRows(),
		Bytes:    size,
		SchemaFP: f.Schema().Fingerprint(),
		Columns:  zonesFromColumns(f.Stats().Columns),
	}
}

// entryFromWritten builds a member's manifest entry from the statistics
// its own writer surfaced at Close — the writer-side stats piggyback: a
// freshly written shard is never reopened just to lift its footer.
func entryFromWritten(name, schemaFP string, ws *core.WrittenStats) FileEntry {
	return FileEntry{
		Name:     name,
		Rows:     ws.NumRows,
		LiveRows: ws.NumRows, // fresh files carry no deletions
		Bytes:    ws.Bytes,
		SchemaFP: schemaFP,
		Columns:  zonesFromColumns(ws.Columns),
	}
}

// maxManifestBloomBytes caps the bloom size lifted into a manifest entry.
// Every commit rewrites the whole manifest JSON, so a very-high-cardinality
// column (64 KiB ≈ 43k distinct values at the default sizing) would make
// each Append/Delete/Compact rewrite megabytes of unchanged base64. Columns
// over the cap simply lose manifest-level membership pruning — the member's
// own footer bloom still prunes at scan time once the file is opened. A
// sidecar bloom store is the follow-on if whole-file pruning on such
// columns ever matters (see ROADMAP).
const maxManifestBloomBytes = 1 << 16

// zonesFromColumns renders column statistics as manifest zones. Non-finite
// float bounds are dropped (JSON cannot carry ±Inf; a missing zone only
// costs pruning, never correctness), as are blooms over
// maxManifestBloomBytes.
func zonesFromColumns(cols []core.ColumnStats) []ColumnZone {
	var out []ColumnZone
	for _, cs := range cols {
		z := ColumnZone{Name: cs.Name, NullCount: cs.NullCount}
		keep := false
		switch {
		case cs.HasMinMax:
			z.Kind, z.Min, z.Max = "int", cs.Min, cs.Max
			keep = true
		case cs.HasFloatMinMax && finite(cs.FloatMin) && finite(cs.FloatMax):
			lo, hi := cs.FloatMin, cs.FloatMax
			z.Kind, z.FMin, z.FMax = "float", &lo, &hi
			keep = true
		}
		if len(cs.Bloom) > 0 && len(cs.Bloom) <= maxManifestBloomBytes {
			if !keep {
				z.Kind = "bytes"
			}
			z.Bloom = cs.Bloom
			keep = true
		}
		if keep {
			out = append(out, z)
		}
	}
	return out
}

func finite(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }

// commitLocks serializes the generation CAS per backend root: the
// CURRENT re-read and the pointer swap must be one critical section so
// two in-process handles racing a commit produce exactly one winner.
// (Cross-process commits still CAS on the re-read CURRENT — best effort
// until the ROADMAP's manifest service owns commits.) Entries are tiny
// and keyed by directory identity, so the map's growth is bounded by the
// number of distinct dataset directories a process touches.
var commitLocks sync.Map // root string -> *sync.Mutex

func commitLock(root string) *sync.Mutex {
	v, _ := commitLocks.LoadOrStore(root, &sync.Mutex{})
	return v.(*sync.Mutex)
}

// checkGeneration is the commit CAS: it re-reads CURRENT and fails with
// ErrGenerationConflict unless it still names prevGen (0 = the directory
// must hold no dataset yet). Callers hold the directory's commit lock.
func checkGeneration(b storage.Backend, prevGen uint64) error {
	cur, err := storage.ReadFile(b, currentName)
	if prevGen == 0 {
		if err == nil {
			return fmt.Errorf("%w (dataset already initialized)", ErrGenerationConflict)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("dataset: re-reading CURRENT for commit: %w", err)
	}
	if got := strings.TrimSpace(string(cur)); got != manifestName(prevGen) {
		return fmt.Errorf("%w: CURRENT is %s, commit expected %s",
			ErrGenerationConflict, got, manifestName(prevGen))
	}
	return nil
}

// writeManifest commits m as the backend's live generation, CASing on
// prevGen, under the directory's commit lock. Mutators that publish data
// files under generation-derived names use Dataset.commit instead, which
// holds the lock across the renames too.
func writeManifest(b storage.Backend, m *Manifest, prevGen uint64) error {
	lock := commitLock(b.Root())
	lock.Lock()
	defer lock.Unlock()
	if err := checkGeneration(b, prevGen); err != nil {
		return err
	}
	return writeManifestLocked(b, m)
}

// writeManifestLocked publishes m — the manifest file first, then the
// CURRENT pointer, each with content fsync before the rename and a
// directory fsync after it, so the commit survives a power cut the moment
// this function returns. The caller holds the directory's commit lock and
// has already CASed the generation.
func writeManifestLocked(b storage.Backend, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	name := manifestName(m.Generation)
	if err := storage.WriteFileAtomic(b, name, append(data, '\n')); err != nil {
		return fmt.Errorf("dataset: writing manifest: %w", err)
	}
	// Publish the pointer inline rather than via WriteFileAtomic: the
	// rename is the commit's point of no return, and failures on either
	// side of it need different handling. Before the rename the old
	// generation is still current and cleanup is safe; a directory-sync
	// failure after it is indeterminate — the swap happened in the live
	// namespace but may not survive a power cut — so it surfaces as
	// ErrCommitIndeterminate and mutators must leave their data files be.
	tmp := currentName + ".tmp"
	f, err := b.Create(tmp)
	if err != nil {
		return fmt.Errorf("dataset: writing CURRENT: %w", err)
	}
	if _, err := f.Write([]byte(name + "\n")); err != nil {
		f.Close()
		b.Remove(tmp)
		return fmt.Errorf("dataset: writing CURRENT: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		b.Remove(tmp)
		return fmt.Errorf("dataset: writing CURRENT: %w", err)
	}
	if err := f.Close(); err != nil {
		b.Remove(tmp)
		return fmt.Errorf("dataset: writing CURRENT: %w", err)
	}
	if err := b.Rename(tmp, currentName); err != nil {
		b.Remove(tmp)
		return fmt.Errorf("dataset: swapping CURRENT: %w", err)
	}
	if err := b.SyncDir(); err != nil {
		return fmt.Errorf("%w: directory sync after the CURRENT swap: %v", ErrCommitIndeterminate, err)
	}
	return nil
}

// loadManifest reads the backend's live manifest via the CURRENT pointer.
func loadManifest(b storage.Backend) (*Manifest, error) {
	cur, err := storage.ReadFile(b, currentName)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(cur))
	if name == "" || strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("dataset: CURRENT names invalid manifest %q", name)
	}
	return readManifestFile(b, name)
}

// loadManifestGeneration reads one specific manifest generation directly,
// bypassing the CURRENT pointer — how time-travel reads, retention-aware
// Vacuum, and Fsck reach superseded-but-retained generations.
func loadManifestGeneration(b storage.Backend, gen uint64) (*Manifest, error) {
	m, err := readManifestFile(b, manifestName(gen))
	if err != nil {
		return nil, err
	}
	if m.Generation != gen {
		return nil, fmt.Errorf("dataset: %s records generation %d", manifestName(gen), m.Generation)
	}
	return m, nil
}

// readManifestFile reads and validates one manifest file by name.
func readManifestFile(b storage.Backend, name string) (*Manifest, error) {
	data, err := storage.ReadFile(b, name)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("dataset: parsing %s: %w", name, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("dataset: manifest version %d unsupported (want %d)", m.Version, ManifestVersion)
	}
	for i, e := range m.Files {
		if e.SchemaFP != m.SchemaFP {
			return nil, fmt.Errorf("dataset: member %q fingerprint %s != dataset %s",
				e.Name, e.SchemaFP, m.SchemaFP)
		}
		if e.Name == "" || strings.ContainsAny(e.Name, "/\\") {
			return nil, fmt.Errorf("dataset: member %d has invalid name %q", i, e.Name)
		}
	}
	return &m, nil
}

// manifestFiles returns every file name generation m retains: its own
// manifest file plus all member parts.
func manifestFiles(m *Manifest) []string {
	out := make([]string, 0, len(m.Files)+1)
	out = append(out, manifestName(m.Generation))
	for _, e := range m.Files {
		out = append(out, e.Name)
	}
	return out
}
