package dataset

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"bullion/internal/core"
)

// listNames returns the backend's directory listing as a set.
func listNames(t *testing.T, d *Dataset) map[string]bool {
	t.Helper()
	names, err := d.backend.List()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool, len(names))
	for _, n := range names {
		out[n] = true
	}
	return out
}

func TestTagLifecycle(t *testing.T) {
	d := newTestDataset(t, nil, 2, 500)
	tagged := d.Generation()
	if err := d.Tag("v1", 0); err != nil {
		t.Fatal(err)
	}
	if got := d.Generation(); got != tagged+1 {
		t.Fatalf("Tag bumped generation to %d, want %d (tags ride commits)", got, tagged+1)
	}
	if got := d.Tags()["v1"]; got != tagged {
		t.Fatalf("Tags()[v1] = %d, want %d", got, tagged)
	}
	if err := d.Append(keyBatch(t, d.Schema(), 1000, 100)); err != nil {
		t.Fatal(err)
	}

	// The tag resolves to a read-only snapshot of the tagged generation:
	// the post-tag append is invisible through it.
	snap, err := OpenAt(d.dir, "v1", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if got := snap.Generation(); got != tagged {
		t.Fatalf("OpenAt(v1) generation = %d, want %d", got, tagged)
	}
	keys, _ := scanKeys(t, snap, ScanOptions{})
	checkKeys(t, keys, wantKeys(0, 1000))

	// Numeric refs name generations directly.
	byGen, err := OpenAt(d.dir, fmt.Sprint(tagged), nil)
	if err != nil {
		t.Fatal(err)
	}
	byGen.Close()
	if _, err := OpenAt(d.dir, "nope", nil); !errors.Is(err, ErrNoSuchTag) {
		t.Fatalf("OpenAt(nope) = %v, want ErrNoSuchTag", err)
	}

	// Tags reassign and remove; removing a missing tag reports it.
	if err := d.Tag("v1", 0); err != nil {
		t.Fatal(err)
	}
	if got, cur := d.Tags()["v1"], d.Generation()-1; got != cur {
		t.Fatalf("retag pinned %d, want %d", got, cur)
	}
	if err := d.Untag("v1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Untag("v1"); !errors.Is(err, ErrNoSuchTag) {
		t.Fatalf("double Untag = %v, want ErrNoSuchTag", err)
	}
}

func TestTagValidation(t *testing.T) {
	d := newTestDataset(t, nil, 1, 100)
	for _, name := range []string{"", "123", "has space", "a/b", "x\\y", string(make([]byte, 200))} {
		if err := d.Tag(name, 0); err == nil {
			t.Fatalf("Tag(%q) accepted an invalid name", name)
		}
	}
	if err := d.Tag("future", d.Generation()+5); err == nil {
		t.Fatal("Tag of a future generation accepted")
	}
	// A generation Vacuum already reclaimed cannot be tagged back to life.
	if _, err := d.Vacuum(); err != nil {
		t.Fatal(err)
	}
	if err := d.Tag("gone", 1); err == nil {
		t.Fatal("Tag of a vacuumed generation accepted")
	}
}

func TestSnapshotHandlesAreReadOnly(t *testing.T) {
	d := newTestDataset(t, nil, 1, 200)
	if err := d.Tag("ro", 0); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenAt(d.dir, "ro", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if err := snap.Append(keyBatch(t, snap.Schema(), 500, 10)); !errors.Is(err, ErrSnapshotReadOnly) {
		t.Fatalf("Append on snapshot = %v, want ErrSnapshotReadOnly", err)
	}
	if err := snap.Delete([]uint64{0}); !errors.Is(err, ErrSnapshotReadOnly) {
		t.Fatalf("Delete on snapshot = %v, want ErrSnapshotReadOnly", err)
	}
	if _, err := snap.Compact(0.9); !errors.Is(err, ErrSnapshotReadOnly) {
		t.Fatalf("Compact on snapshot = %v, want ErrSnapshotReadOnly", err)
	}
	if _, err := snap.Vacuum(); !errors.Is(err, ErrSnapshotReadOnly) {
		t.Fatalf("Vacuum on snapshot = %v, want ErrSnapshotReadOnly", err)
	}
	if err := snap.Tag("t2", 0); !errors.Is(err, ErrSnapshotReadOnly) {
		t.Fatalf("Tag on snapshot = %v, want ErrSnapshotReadOnly", err)
	}
	if err := snap.Untag("ro"); !errors.Is(err, ErrSnapshotReadOnly) {
		t.Fatalf("Untag on snapshot = %v, want ErrSnapshotReadOnly", err)
	}
}

// TestVacuumRetainsTaggedGenerations is the Vacuum bugfix pinned: a
// tagged generation's manifest and exclusive members survive reclamation
// (and keep serving reads), until the tag is removed.
func TestVacuumRetainsTaggedGenerations(t *testing.T) {
	d := newTestDataset(t, nil, 2, 500)
	tagged := d.Generation()
	taggedFiles := manifestFiles(d.Manifest())
	if err := d.Tag("keep", 0); err != nil {
		t.Fatal(err)
	}
	// Delete half of member 1 and compact: the tagged generation's first
	// member is superseded by a rewrite — exactly what the old Vacuum
	// would have deleted out from under the tag.
	del := make([]uint64, 250)
	for i := range del {
		del[i] = uint64(i)
	}
	if err := d.Delete(del); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Compact(0.9); err != nil {
		t.Fatal(err)
	}

	rep, err := d.VacuumWithReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RetainedGenerations) != 1 || rep.RetainedGenerations[0] != tagged {
		t.Fatalf("RetainedGenerations = %v, want [%d]", rep.RetainedGenerations, tagged)
	}
	if len(rep.RetainedFiles) == 0 {
		t.Fatalf("vacuum retained no files for the tagged generation: %+v", rep)
	}
	have := listNames(t, d)
	for _, name := range taggedFiles {
		if !have[name] {
			t.Fatalf("vacuum removed %s, which tag %q retains", name, "keep")
		}
	}

	// The snapshot still serves. Deletion compliance leaks through by
	// design: the Delete flipped bits inside the tagged generation's
	// member file in place, so the snapshot reads 250 fewer rows.
	snap, err := OpenAt(d.dir, "keep", nil)
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := scanKeys(t, snap, ScanOptions{})
	checkKeys(t, keys, wantKeys(250, 1000))
	snap.Close()

	// Untagged, the generation is garbage again.
	if err := d.Untag("keep"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Vacuum(); err != nil {
		t.Fatal(err)
	}
	have = listNames(t, d)
	if have[manifestName(tagged)] {
		t.Fatalf("untagged generation %d's manifest survived vacuum", tagged)
	}
	if _, err := OpenAt(d.dir, fmt.Sprint(tagged), nil); err == nil {
		t.Fatal("OpenAt of a vacuumed generation succeeded")
	}
}

// TestVacuumRetainsLiveScannerGeneration: a scanner still serving a
// superseded generation pins it — Vacuum must not delete the files the
// scan is reading (the other half of the bugfix: the old contract was a
// doc comment).
func TestVacuumRetainsLiveScannerGeneration(t *testing.T) {
	d := newTestDataset(t, nil, 2, 500)
	scanned := d.Generation()
	sc, err := d.Scan(ScanOptions{ScanOptions: scanColumns("key")})
	if err != nil {
		t.Fatal(err)
	}
	// Supersede the scanned generation's first member while the scan is
	// live.
	del := make([]uint64, 250)
	for i := range del {
		del[i] = uint64(i)
	}
	if err := d.Delete(del); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Compact(0.9); err != nil {
		t.Fatal(err)
	}
	rep, err := d.VacuumWithReport()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range rep.RetainedGenerations {
		if g == scanned {
			found = true
		}
	}
	if !found {
		t.Fatalf("vacuum did not retain generation %d under a live scanner: %+v", scanned, rep)
	}

	// The scanner drains its snapshot untouched: members were opened at
	// Scan time, before the delete flipped any bits.
	var keys []int64
	for {
		b, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, b.Columns[0].(core.Int64Data)...)
	}
	checkKeys(t, keys, wantKeys(0, 1000))
	sc.Close()

	// Pin released with the scanner: the next vacuum reclaims.
	if _, err := d.Vacuum(); err != nil {
		t.Fatal(err)
	}
	if have := listNames(t, d); have[manifestName(scanned)] {
		t.Fatalf("generation %d's manifest survived vacuum after its scanner closed", scanned)
	}
}

// TestFsckRetainedGenerations is the Fsck bugfix pinned: tagged
// generations classify as referenced (not orphans), get shallow-verified,
// and a missing retained member is an integrity error.
func TestFsckRetainedGenerations(t *testing.T) {
	d := newTestDataset(t, nil, 2, 500)
	tagged := d.Generation()
	taggedFiles := manifestFiles(d.Manifest())
	if err := d.Tag("epoch-0", 0); err != nil {
		t.Fatal(err)
	}
	del := make([]uint64, 250)
	for i := range del {
		del[i] = uint64(i)
	}
	if err := d.Delete(del); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Compact(0.9); err != nil {
		t.Fatal(err)
	}

	report, err := Fsck(d.dir, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("fsck not OK: %+v", report)
	}
	if report.Tags["epoch-0"] != tagged {
		t.Fatalf("report.Tags = %v, want epoch-0 -> %d", report.Tags, tagged)
	}
	if len(report.Retained) != 1 || report.Retained[0].Generation != tagged {
		t.Fatalf("report.Retained = %+v, want generation %d", report.Retained, tagged)
	}
	rg := report.Retained[0]
	if rg.Files != 2 || rg.Rows != 1000 || len(rg.Missing) != 0 {
		t.Fatalf("retained entry = %+v, want 2 files, 1000 rows, none missing", rg)
	}
	// None of the tagged generation's files may be classified as orphans
	// (the old bug: -repair would have vacuumed them).
	orphans := map[string]bool{}
	for _, n := range append(report.OrphanParts, report.OrphanManifests...) {
		orphans[n] = true
	}
	for _, name := range taggedFiles {
		if orphans[name] {
			t.Fatalf("fsck classified retained file %s as an orphan", name)
		}
	}

	// Deleting a retained-only member is now an integrity error.
	removedAny := false
	cur := map[string]bool{currentName: true}
	for _, name := range manifestFiles(d.Manifest()) {
		cur[name] = true
	}
	for _, name := range taggedFiles {
		if !cur[name] && name != manifestName(tagged) {
			if err := d.backend.Remove(name); err != nil {
				t.Fatal(err)
			}
			removedAny = true
		}
	}
	if !removedAny {
		t.Fatal("test setup: tagged generation has no exclusive member")
	}
	report, err = Fsck(d.dir, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("fsck passed with a retained generation's member missing")
	}
	if len(report.Retained) != 1 || len(report.Retained[0].Missing) == 0 {
		t.Fatalf("report.Retained = %+v, want missing members listed", report.Retained)
	}
}

// scanColumns is a small helper building core scan options projecting
// the given columns.
func scanColumns(cols ...string) core.ScanOptions {
	return core.ScanOptions{Columns: cols}
}
