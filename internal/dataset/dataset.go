package dataset

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"bullion/internal/cache"
	"bullion/internal/core"
	"bullion/internal/enc"
	"bullion/internal/storage"
)

// Options configures a Dataset handle.
type Options struct {
	// Writer configures the per-file core writer used by Append,
	// ShardedWriter, and Compact. Nil selects core.DefaultOptions with
	// deletion compliance Level 1: datasets reclaim deleted rows by
	// compaction rather than in-place page erasure, and Level-1 deletes
	// only flip footer bits, which keeps older manifest generations
	// readable while writers commit (Level-2 in-place erasure rewrites
	// page bytes under concurrent readers and forfeits that isolation).
	Writer *core.Options
	// WrapReader, when non-nil, wraps each member file's reader when it is
	// opened — the hook the CLI uses for per-file I/O accounting and the
	// benchmarks use to model storage latency. name is the member's file
	// name within the dataset directory.
	WrapReader func(name string, r io.ReaderAt, size int64) io.ReaderAt
	// Backend overrides the storage backend every read, write, rename,
	// and fsync flows through. Nil selects the local file system rooted
	// at the dataset directory; tests substitute storage.Fault to inject
	// errors, latency, and power cuts.
	Backend storage.Backend
	// DisableRecoverySweep skips Open's garbage collection of orphaned
	// *.tmp files (crash debris from interrupted commits). Fsck sets it
	// so a report can surface the debris before anything removes it. The
	// sweep only ever touches temporaries — never part files or
	// manifests, which older-generation readers may still reference.
	DisableRecoverySweep bool
	// Cache overrides the shared artifact cache member opens flow
	// through (parsed footers, open handles, page bytes — see
	// internal/cache). Nil selects the process-wide shared cache, except
	// when Backend is set: a caller-supplied backend may simulate faults
	// or power cuts that violate the cache's member-immutability
	// contract, so custom backends run uncached unless a Cache is passed
	// explicitly. Set DisableCache to bypass caching entirely.
	Cache *cache.Cache
	// DisableCache bypasses the artifact cache: every member open reads
	// and parses its footer from the backend, and page reads always hit
	// storage. Scans are byte-identical either way.
	DisableCache bool
	// CacheBytes caps the page-cache bytes this dataset's members may
	// hold (a per-root budget on whichever cache is in use; 0 = no
	// per-dataset cap, only the cache's global budget applies).
	CacheBytes int64
	// FooterCacheEntries sizes the parsed-footer tier. Because entry
	// caps are a property of the cache, setting this without an explicit
	// Cache gives the dataset a private cache (sized with CacheBytes
	// when that is also set) instead of resizing the shared one.
	FooterCacheEntries int
	// PinHotMembers materializes member files no larger than
	// PinMemberBytes wholly in RAM on first open (mebo-style blobs):
	// every page read of a pinned member is served at memory speed.
	// Pins count against CacheBytes and the cache's global budget.
	PinHotMembers bool
}

// PinMemberBytes is the size ceiling for Options.PinHotMembers: larger
// members use the run cache only.
const PinMemberBytes = 8 << 20

// Dataset is a handle over a manifest-backed multi-file table. Scans may
// run concurrently with each other and with Append/Delete/Compact: every
// scan snapshots the manifest generation current at Scan time and keeps
// serving it even while later commits land.
type Dataset struct {
	dir     string
	opts    Options
	backend storage.Backend

	// cache is the artifact cache member opens flow through (nil =
	// uncached); ownsCache marks a private cache Close must tear down.
	cache     *cache.Cache
	ownsCache bool

	// mu serializes mutators (Append/ShardedWriter commit/Delete/Compact).
	mu sync.Mutex
	// fileMu excludes scan planning (read side) from operations that
	// mutate existing member bytes on disk (Delete, write side), so a
	// scan's member opens all observe the same side of a deletion.
	// Append/ShardedWriter/Compact only add files and take no write lock.
	fileMu sync.RWMutex
	// genMu guards the current-generation pointer.
	genMu sync.RWMutex
	gen   *generation

	// handleID and nameSeq disambiguate temporary file names: nameSeq
	// across this handle's writers, handleID across handles of the same
	// directory in this process (two racing bulk loads must not collide
	// on ingest temporaries; cross-process races remain best-effort,
	// like the commit CAS itself).
	handleID uint64
	nameSeq  atomic.Uint64

	// openMu guards opened, every member handle this dataset has opened —
	// including ones belonging to superseded generations, which in-flight
	// scans may still be reading. Close closes them all.
	openMu sync.Mutex
	opened []io.Closer
	closed bool

	// snapshot marks a handle OpenAt pinned to a fixed generation:
	// read-only (mutators fail with ErrSnapshotReadOnly) and exempt from
	// the recovery sweep. unpin releases the handle's generation pin at
	// Close.
	snapshot bool
	unpin    func()
}

// generation is one immutable snapshot of the dataset: a manifest plus
// the member handles serving it.
type generation struct {
	manifest *Manifest
	schema   *core.Schema
	members  []*member
	// starts[i] is the global row id of member i's first row; total is the
	// dataset's logical row count (including deleted rows).
	starts []uint64
	total  uint64
}

// member is one file of a generation, opened lazily: pruned members are
// never opened at all, and reopening is what lets a new generation observe
// a member's rewritten footer without disturbing older snapshots.
type member struct {
	entry FileEntry

	// mu memoizes a successful open forever; a failed open is NOT
	// memoized, so a transient backend error (the resilient wrapper's
	// budget exhausted during a network blip) is re-attempted by the
	// next scan instead of poisoning every future scan of the snapshot.
	mu   sync.Mutex
	file *core.File

	// zoneBlooms memoizes the manifest entry's parsed per-column bloom
	// filters: entries are immutable and members are reused across
	// generations, so each bloom is parsed once per Dataset, not once
	// per scan. A nil value records "absent or unparseable".
	zoneMu     sync.Mutex
	zoneBlooms map[string]*enc.Bloom
}

// open opens the member file on first use — through the dataset's
// storage backend, the single choke point for all member reads —
// verifying its schema fingerprint and row count against the manifest
// entry. Successful opens are memoized; failures are retried on the
// next call.
func (m *member) open(d *Dataset) (*core.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.file != nil {
		return m.file, nil
	}
	f, err := d.openMember(&m.entry)
	if err != nil {
		return nil, err
	}
	m.file = f
	return f, nil
}

// manifestBloom returns the entry's parsed bloom filter for col (nil
// when the manifest carries none, or it fails to parse), memoized for
// the member's lifetime.
func (m *member) manifestBloom(col string) *enc.Bloom {
	m.zoneMu.Lock()
	defer m.zoneMu.Unlock()
	if fl, ok := m.zoneBlooms[col]; ok {
		return fl
	}
	var fl *enc.Bloom
	if z, ok := m.entry.zone(col); ok && len(z.Bloom) > 0 {
		if parsed, err := enc.OpenBloom(z.Bloom); err == nil {
			fl = parsed
		}
	}
	if m.zoneBlooms == nil {
		m.zoneBlooms = map[string]*enc.Bloom{}
	}
	m.zoneBlooms[col] = fl
	return fl
}

// memberVersion derives the cache-key version discriminator from the
// manifest entry: any change to a member's bytes (a delete rewriting
// footer bits, a replaced file) changes at least one of these fields,
// so a version key always names exactly one byte-content.
func memberVersion(e *FileEntry) string {
	return fmt.Sprintf("%d|%d|%d|%s", e.Rows, e.LiveRows, e.Bytes, e.SchemaFP)
}

// openMember opens one member file through the cache tiers: the handle
// LRU (skip re-open, one HEAD per member on HTTP), the parsed-footer
// artifact cache (one core footer parse — and its two backend reads —
// per member version process-wide, singleflighted), and the page cache
// (scan runs served from memory on rescans). With no cache configured
// it opens directly.
func (d *Dataset) openMember(e *FileEntry) (*core.File, error) {
	if d.cache == nil {
		return d.openMemberDirect(e)
	}
	hk := cache.Key{Root: d.backend.Root(), Name: e.Name, Version: memberVersion(e)}
	lease, err := d.cache.AcquireHandle(hk, func() (storage.File, int64, error) {
		return d.backend.ReadAt(e.Name)
	})
	if err != nil {
		return nil, err
	}
	if !d.track(lease) {
		lease.Release()
		return nil, fmt.Errorf("dataset: %s: dataset closed", e.Name)
	}
	size := lease.Size()
	var r io.ReaderAt = lease.File()
	if d.opts.WrapReader != nil {
		r = d.opts.WrapReader(e.Name, r, size)
	}
	// Content key: the manifest-derived version, sharpened by the
	// backend's ETag when it pins one — a remote object replaced outside
	// any manifest commit then gets fresh footer/page entries on reopen.
	ck := hk
	if et, ok := lease.File().(storage.ETagged); ok {
		if tag := et.ETag(); tag != "" {
			ck.Version += "|" + tag
		}
	}
	ftrAny, err := d.cache.Artifact(ck, func() (any, error) {
		return core.ParseFooter(r, size)
	})
	if err != nil {
		lease.Release()
		return nil, fmt.Errorf("dataset: opening member %s: %w", e.Name, err)
	}
	ftr := ftrAny.(*core.Footer)
	if d.opts.PinHotMembers && size <= PinMemberBytes {
		// Best-effort: a member that fails to materialize (budget, read
		// error) still scans through the run cache.
		d.cache.Materialize(ck, r, size)
	}
	// Reads that prove the pinned object was replaced under us drop the
	// member's cache entries, so the next open re-probes instead of
	// serving a version that can only keep failing.
	onErr := func(rerr error) {
		if errors.Is(rerr, storage.ErrChangedUnderRead) {
			d.cache.Invalidate(ck.Root, ck.Name)
		}
	}
	f := core.OpenWithFooter(d.cache.Reader(ck, r, onErr), ftr)
	if err := checkMember(f, e); err != nil {
		lease.Release()
		return nil, err
	}
	return f, nil
}

// openMemberDirect is the uncached open path (DisableCache, or a
// custom backend without an explicit cache).
func (d *Dataset) openMemberDirect(e *FileEntry) (*core.File, error) {
	sf, size, err := d.backend.ReadAt(e.Name)
	if err != nil {
		return nil, err
	}
	if !d.track(sf) {
		sf.Close()
		return nil, fmt.Errorf("dataset: %s: dataset closed", e.Name)
	}
	var r io.ReaderAt = sf
	if d.opts.WrapReader != nil {
		r = d.opts.WrapReader(e.Name, r, size)
	}
	f, err := core.Open(r, size)
	if err != nil {
		return nil, fmt.Errorf("dataset: opening member %s: %w", e.Name, err)
	}
	if err := checkMember(f, e); err != nil {
		return nil, err
	}
	return f, nil
}

// checkMember verifies an opened file against its manifest entry.
func checkMember(f *core.File, e *FileEntry) error {
	if fp := f.Schema().Fingerprint(); fp != e.SchemaFP {
		return fmt.Errorf("dataset: member %s schema fingerprint %s != manifest %s",
			e.Name, fp, e.SchemaFP)
	}
	if f.NumRows() != e.Rows {
		return fmt.Errorf("dataset: member %s has %d rows, manifest records %d",
			e.Name, f.NumRows(), e.Rows)
	}
	return nil
}

// track registers an opened file for Close; it reports false when the
// dataset is already closed.
func (d *Dataset) track(f io.Closer) bool {
	d.openMu.Lock()
	defer d.openMu.Unlock()
	if d.closed {
		return false
	}
	d.opened = append(d.opened, f)
	return true
}

// newGeneration builds the in-memory snapshot for m, reusing open member
// handles from prev for entries that are byte-identical (same name, rows,
// live rows, size, fingerprint) — a commit only forces reopening of the
// files it actually changed.
func (d *Dataset) newGeneration(m *Manifest, prev *generation) (*generation, error) {
	schema, err := schemaFromDefs(m.Schema)
	if err != nil {
		return nil, fmt.Errorf("dataset: manifest schema: %w", err)
	}
	if fp := schema.Fingerprint(); fp != m.SchemaFP {
		return nil, fmt.Errorf("dataset: manifest schema fingerprint %s != recorded %s", fp, m.SchemaFP)
	}
	reuse := map[string]*member{}
	if prev != nil {
		for _, pm := range prev.members {
			reuse[pm.entry.Name] = pm
		}
	}
	g := &generation{
		manifest: m,
		schema:   schema,
		members:  make([]*member, len(m.Files)),
		starts:   make([]uint64, len(m.Files)),
	}
	for i, e := range m.Files {
		g.starts[i] = g.total
		g.total += e.Rows
		if pm, ok := reuse[e.Name]; ok && sameEntry(pm.entry, e) {
			g.members[i] = pm
			continue
		}
		g.members[i] = &member{entry: e}
	}
	return g, nil
}

// sameEntry reports whether an open member handle for a can still serve
// b: identity plus row/byte accounting must match (zone maps are derived
// and don't affect handle validity).
func sameEntry(a, b FileEntry) bool {
	return a.Name == b.Name && a.Rows == b.Rows && a.LiveRows == b.LiveRows &&
		a.Bytes == b.Bytes && a.SchemaFP == b.SchemaFP
}

// backendFor resolves the storage backend for dir: the caller-supplied
// one; for an http(s):// URL, a read-only HTTP range-read backend
// wrapped in the default resilience policy (retries, hedged reads,
// circuit breaker); otherwise a local-FS backend rooted at dir (created
// if needed).
func backendFor(dir string, opts *Options) (storage.Backend, error) {
	if opts != nil && opts.Backend != nil {
		return opts.Backend, nil
	}
	if storage.IsHTTPURL(dir) {
		h, err := storage.NewHTTP(dir, nil)
		if err != nil {
			return nil, err
		}
		return storage.NewResilient(h, nil), nil
	}
	return storage.NewLocal(dir)
}

// Create initializes a new dataset directory with an empty generation-1
// manifest. The directory is created if needed; it must not already hold a
// dataset.
func Create(dir string, schema *core.Schema, opts *Options) (*Dataset, error) {
	if schema == nil || len(schema.Fields) == 0 {
		return nil, fmt.Errorf("dataset: schema required")
	}
	b, err := backendFor(dir, opts)
	if err != nil {
		return nil, err
	}
	if _, err := storage.ReadFile(b, currentName); err == nil {
		return nil, fmt.Errorf("dataset: %s already holds a dataset", dir)
	}
	m := &Manifest{
		Version:    ManifestVersion,
		Generation: 1,
		SchemaFP:   schema.Fingerprint(),
		Schema:     fieldDefs(schema),
	}
	if err := writeManifest(b, m, 0); err != nil {
		return nil, err
	}
	return Open(dir, opts)
}

// Open opens the dataset at dir, reading its current manifest
// generation. dir may be an http(s):// URL naming a dataset published
// over HTTP (see storage.NewHTTP): the dataset opens read-only behind
// the default resilience policy, and mutating operations fail with
// storage.ErrReadOnly. Unless Options.DisableRecoverySweep is set, Open first
// garbage-collects orphaned temporary files — debris a crash mid-commit
// can leave behind. (Like Vacuum, the sweep assumes no ShardedWriter is
// concurrently active on another handle of the same directory: an
// in-flight bulk load's unrenamed shards are indistinguishable from
// crash debris.)
// handleSeq numbers dataset handles process-wide (see Dataset.handleID).
var handleSeq atomic.Uint64

// newHandle builds the bare handle shared by Open and OpenAt: backend
// resolution and cache policy, no manifest loaded yet.
func newHandle(dir string, opts *Options) (*Dataset, error) {
	d := &Dataset{dir: dir, handleID: handleSeq.Add(1)}
	if opts != nil {
		d.opts = *opts
	}
	b, err := backendFor(dir, opts)
	if err != nil {
		return nil, err
	}
	d.backend = b
	d.resolveCache()
	return d, nil
}

func Open(dir string, opts *Options) (*Dataset, error) {
	d, err := newHandle(dir, opts)
	if err != nil {
		return nil, err
	}
	b := d.backend
	if !d.opts.DisableRecoverySweep {
		sweepTempDebris(b)
	}
	m, err := loadManifest(b)
	if err != nil {
		return nil, err
	}
	gen, err := d.newGeneration(m, nil)
	if err != nil {
		return nil, err
	}
	d.gen = gen
	return d, nil
}

// isTempDebris reports whether name is a commit temporary: crash debris
// once no commit is in flight. Covers the current deterministic ".tmp"
// names and the ".tmp-" random suffixes earlier releases wrote.
func isTempDebris(name string) bool {
	return strings.HasSuffix(name, ".tmp") || strings.Contains(name, ".tmp-")
}

// sweepTempDebris removes orphaned temporaries, best-effort: recovery
// must never make Open fail on a dataset that is otherwise readable.
func sweepTempDebris(b storage.Backend) []string {
	names, err := b.List()
	if err != nil {
		return nil
	}
	var removed []string
	for _, name := range names {
		if !isTempDebris(name) {
			continue
		}
		if b.Remove(name) == nil {
			removed = append(removed, name)
		}
	}
	if removed != nil {
		b.SyncDir()
	}
	return removed
}

// resolveCache applies the Options cache policy (see Options.Cache):
// explicit instance > disabled > private (sizing knobs without an
// instance) > process-wide shared, with custom backends defaulting to
// uncached. CacheBytes becomes this root's page budget either way.
func (d *Dataset) resolveCache() {
	o := &d.opts
	switch {
	case o.DisableCache:
		d.cache = nil
	case o.Cache != nil:
		d.cache = o.Cache
	case o.FooterCacheEntries > 0:
		d.cache = cache.New(cache.Options{
			FooterEntries: o.FooterCacheEntries,
			PageBytes:     o.CacheBytes,
		})
		d.ownsCache = true
	case o.Backend != nil:
		// A substituted backend (fault injection, power-cut simulation)
		// may break the immutable-member contract the cache keys rely
		// on: stay uncached unless the caller opts in with Cache.
		d.cache = nil
	default:
		d.cache = cache.Shared()
	}
	if d.cache != nil && o.CacheBytes > 0 {
		d.cache.SetRootBudget(d.backend.Root(), o.CacheBytes)
	}
}

// CacheStats snapshots the artifact cache serving this dataset (the
// shared process-wide cache unless Options selected a private one or
// disabled caching; zero when disabled). Counters are cache-wide, so
// they include work other datasets sharing the cache performed.
func (d *Dataset) CacheStats() cache.Stats {
	if d.cache == nil {
		return cache.Stats{}
	}
	return d.cache.Stats()
}

// generationSnapshot returns the current generation.
func (d *Dataset) generationSnapshot() *generation {
	d.genMu.RLock()
	defer d.genMu.RUnlock()
	return d.gen
}

// swapGeneration installs g as current.
func (d *Dataset) swapGeneration(g *generation) {
	d.genMu.Lock()
	d.gen = g
	d.genMu.Unlock()
}

// commit writes a mutated copy of the current manifest as the next
// generation and swaps it in. mutate receives the copy (files slice is
// cloned; entries may be appended, replaced, or removed). publish, if
// non-nil, runs inside the commit critical section after the generation
// CAS passes — it is where mutators rename their data files to final
// generation-derived names, so a commit that is doomed to lose the CAS
// never clobbers the winner's files. Callers must hold d.mu.
func (d *Dataset) commit(publish func() error, mutate func(m *Manifest) error) error {
	prev := d.generationSnapshot()
	next := *prev.manifest
	next.Generation++
	next.Files = append([]FileEntry(nil), prev.manifest.Files...)
	if len(prev.manifest.Tags) > 0 {
		// Tags ride every commit forward; clone so mutate (and later
		// commits) never alias the published generation's map.
		next.Tags = make(map[string]uint64, len(prev.manifest.Tags))
		for k, v := range prev.manifest.Tags {
			next.Tags[k] = v
		}
	} else {
		next.Tags = nil
	}
	if err := mutate(&next); err != nil {
		return err
	}
	lock := commitLock(d.backend.Root())
	lock.Lock()
	defer lock.Unlock()
	if err := checkGeneration(d.backend, prev.manifest.Generation); err != nil {
		return err
	}
	if publish != nil {
		if err := publish(); err != nil {
			return err
		}
	}
	if err := writeManifestLocked(d.backend, &next); err != nil {
		return err
	}
	gen, err := d.newGeneration(&next, prev)
	if err != nil {
		return err
	}
	d.swapGeneration(gen)
	return nil
}

// Schema returns the dataset schema.
func (d *Dataset) Schema() *core.Schema { return d.generationSnapshot().schema }

// Generation returns the current manifest generation number.
func (d *Dataset) Generation() uint64 { return d.generationSnapshot().manifest.Generation }

// NumFiles returns the member file count of the current generation.
func (d *Dataset) NumFiles() int { return len(d.generationSnapshot().members) }

// NumRows returns the dataset's logical row count (including deleted
// rows); NumLiveRows excludes rows marked deleted.
func (d *Dataset) NumRows() uint64 { return d.generationSnapshot().total }

// NumLiveRows returns the dataset's live row count per the manifest.
func (d *Dataset) NumLiveRows() uint64 {
	var n uint64
	for _, e := range d.generationSnapshot().manifest.Files {
		n += e.LiveRows
	}
	return n
}

// Manifest returns the current generation's manifest (shared; callers
// must not mutate it).
func (d *Dataset) Manifest() *Manifest { return d.generationSnapshot().manifest }

// TotalBytes sums the member file sizes of the current generation.
func (d *Dataset) TotalBytes() int64 {
	var n int64
	for _, e := range d.generationSnapshot().manifest.Files {
		n += e.Bytes
	}
	return n
}

// writerOpts returns the per-file writer options (see Options.Writer).
func (d *Dataset) writerOpts() *core.Options {
	if d.opts.Writer != nil {
		return d.opts.Writer
	}
	opts := core.DefaultOptions()
	opts.Compliance = core.Level1
	return opts
}

// Append writes batch as one new member file and commits it — the
// convenience path for incremental ingest. Bulk loads should use
// ShardedWriter, which spreads many batches across N files in one commit.
func (d *Dataset) Append(batch *core.Batch) error {
	sw, err := d.ShardedWriter(1)
	if err != nil {
		return err
	}
	if err := sw.Write(batch); err != nil {
		sw.Close()
		return err
	}
	return sw.Close()
}

// Delete marks the given dataset-global rows deleted. Rows map to member
// files through the manifest order (member i holds rows
// [starts[i], starts[i]+rows)); each affected member's deletion vector is
// updated through a fresh handle and the new row accounting is committed
// as a new manifest generation. Scans started before the commit keep
// their snapshot and continue to see the rows.
func (d *Dataset) Delete(rows []uint64) error {
	if len(rows) == 0 {
		return nil
	}
	if d.snapshot {
		return ErrSnapshotReadOnly
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Exclude scan planning while member bytes change on disk: a scan
	// must open its members entirely before this delete or entirely
	// after the commit (in-flight scans hold their already-open views).
	d.fileMu.Lock()
	defer d.fileMu.Unlock()
	gen := d.generationSnapshot()

	sorted := append([]uint64(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if hi := sorted[len(sorted)-1]; hi >= gen.total {
		return fmt.Errorf("dataset: row %d out of range [0,%d)", hi, gen.total)
	}

	// Split the sorted rows into per-member local row id lists.
	perMember := make([][]uint64, len(gen.members))
	mi := 0
	for _, r := range sorted {
		for r >= gen.starts[mi]+gen.members[mi].entry.Rows {
			mi++
		}
		perMember[mi] = append(perMember[mi], r-gen.starts[mi])
	}

	newLive := make(map[string]uint64)
	for i, local := range perMember {
		if len(local) == 0 {
			continue
		}
		entry := gen.members[i].entry
		// A fresh read-write handle, separate from the member handle that
		// in-flight scans of this generation are using: DeleteRows mutates
		// its File's in-memory footer view.
		h, size, err := d.backend.ReadAt(entry.Name)
		if err != nil {
			return err
		}
		f, err := core.Open(h, size)
		if err != nil {
			h.Close()
			return fmt.Errorf("dataset: opening member %s for delete: %w", entry.Name, err)
		}
		if err := f.DeleteRows(h, local); err != nil {
			h.Close()
			return fmt.Errorf("dataset: deleting from %s: %w", entry.Name, err)
		}
		live := f.NumLiveRows()
		// Force the rewritten footer durable before the manifest commit
		// records the new live-row counts: a committed delete must never
		// resurrect rows at a power cut (the reverse — synced bits without
		// a commit — only over-applies an in-flight delete's own targets).
		if err := h.Sync(); err != nil {
			h.Close()
			return fmt.Errorf("dataset: syncing %s after delete: %w", entry.Name, err)
		}
		if err := h.Close(); err != nil {
			return err
		}
		newLive[entry.Name] = live
	}

	return d.commit(nil, func(m *Manifest) error {
		for i := range m.Files {
			if live, ok := newLive[m.Files[i].Name]; ok {
				m.Files[i].LiveRows = live
			}
		}
		return nil
	})
}

// VacuumReport describes one reclamation pass: what was removed, and
// which superseded generations (and their files) were retained instead of
// reclaimed because a tag or a live in-process reader still pins them.
type VacuumReport struct {
	// Removed lists the reclaimed file names.
	Removed []string `json:"removed,omitempty"`
	// RetainedGenerations are superseded generations whose files were
	// kept: pinned by a tag in the current manifest, by a live Scanner
	// still serving them, or by an open OpenAt handle. Ascending.
	RetainedGenerations []uint64 `json:"retained_generations,omitempty"`
	// RetainedFiles are the files kept solely for retained generations —
	// files the current generation does not reference that would have
	// been reclaimed without retention.
	RetainedFiles []string `json:"retained_files,omitempty"`
}

// Vacuum removes member files and manifests no longer referenced by the
// current generation, plus orphaned temporaries left by a crashed commit
// or bulk load. Reclamation is retention-aware: superseded generations
// pinned by a tag (see Tag), by a live Scanner, or by an open OpenAt
// handle keep their manifests and member files. ShardedWriter must still
// not be active on any handle of the directory — an in-flight bulk
// load's unrenamed shards are indistinguishable from crash debris. It
// returns the removed file names; VacuumWithReport additionally reports
// what was retained and why.
func (d *Dataset) Vacuum() ([]string, error) {
	rep, err := d.VacuumWithReport()
	if rep == nil {
		return nil, err
	}
	return rep.Removed, err
}

// VacuumWithReport is Vacuum returning the full reclamation report. On a
// partial failure the report covers the files removed before the error.
func (d *Dataset) VacuumWithReport() (*VacuumReport, error) {
	if d.snapshot {
		return nil, ErrSnapshotReadOnly
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// The commit lock makes the pass atomic against racing committers on
	// other handles: liveness is judged from the on-disk CURRENT manifest
	// (not this handle's possibly stale snapshot), and no commit can
	// publish files between that read and the removals.
	lock := commitLock(d.backend.Root())
	lock.Lock()
	defer lock.Unlock()

	cur, err := loadManifest(d.backend)
	if err != nil {
		return nil, err
	}
	live := map[string]bool{
		currentName:                  true,
		manifestName(cur.Generation): true,
	}
	for _, e := range cur.Files {
		live[e.Name] = true
	}
	retained, err := retainedGenerations(d.backend, cur.Tags, cur.Generation)
	if err != nil {
		return nil, err
	}
	// This handle's own snapshot may trail the on-disk CURRENT (another
	// handle committed past it); its generation is a live read view too.
	if own := d.generationSnapshot(); own.manifest.Generation != cur.Generation {
		if _, ok := retained[own.manifest.Generation]; !ok {
			retained[own.manifest.Generation] = manifestFiles(own.manifest)
		}
	}
	keep := map[string]bool{}
	for _, files := range retained {
		for _, name := range files {
			if !live[name] {
				keep[name] = true
			}
		}
	}

	names, err := d.backend.List()
	if err != nil {
		return nil, err
	}
	rep := &VacuumReport{RetainedGenerations: sortedGenerations(retained)}
	for _, name := range names {
		if live[name] {
			continue
		}
		if keep[name] {
			rep.RetainedFiles = append(rep.RetainedFiles, name)
			continue
		}
		// Only reclaim files this package writes: member parts, superseded
		// manifests, abandoned ingest shards, and commit temporaries.
		// Anything else in the directory is not ours to delete.
		if !strings.HasPrefix(name, "part-") && !strings.HasPrefix(name, "manifest-") &&
			!strings.HasPrefix(name, "ingest-") && !isTempDebris(name) {
			continue
		}
		if err := d.backend.Remove(name); err != nil {
			return rep, err
		}
		rep.Removed = append(rep.Removed, name)
		if d.cache != nil {
			// Drop the removed file's cached artifacts: nothing can hit
			// them again (its name left every manifest), so they would
			// only hold handles and bytes until eviction.
			d.cache.Invalidate(d.backend.Root(), name)
		}
	}
	if rep.Removed != nil {
		// Best-effort: reclamation need not be durable for correctness;
		// resurrected garbage is re-collected by the next sweep.
		d.backend.SyncDir()
	}
	return rep, nil
}

// Close closes every file handle the dataset opened, including handles
// serving superseded generations. In-flight scans fail after Close.
func (d *Dataset) Close() error {
	d.openMu.Lock()
	defer d.openMu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.unpin != nil {
		d.unpin()
		d.unpin = nil
	}
	var first error
	for _, f := range d.opened {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	d.opened = nil
	if d.ownsCache {
		// A private cache (Options.FooterCacheEntries without an explicit
		// Cache) dies with its dataset; shared caches outlive every
		// dataset and are never closed here.
		if err := d.cache.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
