package dataset

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"bullion/internal/storage"
)

// ErrSnapshotReadOnly reports a mutation attempted through a handle that
// OpenAt pinned to a fixed generation. Time-travel handles serve reads
// only; mutations need a live handle from Open.
var ErrSnapshotReadOnly = errors.New("dataset: snapshot handle is read-only (opened at a pinned generation)")

// ErrNoSuchTag reports a tag or generation reference that the dataset
// does not hold.
var ErrNoSuchTag = errors.New("dataset: no such tag or generation")

// maxTagNameLen bounds tag names; they are stored in every subsequent
// manifest, so unbounded names would bloat every commit.
const maxTagNameLen = 128

// validateTagName enforces the tag grammar: 1-128 chars from
// [A-Za-z0-9._-], at least one of which is not a digit — so a reference
// string always resolves unambiguously (all-digit refs are generation
// numbers, everything else is a tag).
func validateTagName(name string) error {
	if name == "" || len(name) > maxTagNameLen {
		return fmt.Errorf("dataset: invalid tag name %q (1-%d characters)", name, maxTagNameLen)
	}
	allDigits := true
	for _, c := range name {
		switch {
		case c >= '0' && c <= '9':
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '.', c == '_', c == '-':
			allDigits = false
		default:
			return fmt.Errorf("dataset: invalid tag name %q (allowed: letters, digits, '.', '_', '-')", name)
		}
	}
	if allDigits {
		return fmt.Errorf("dataset: invalid tag name %q (all-digit names are reserved for generation numbers)", name)
	}
	return nil
}

// genPins tracks, per backend root, the manifest generations currently
// pinned by in-process readers: every live Scanner pins the generation it
// snapshotted, and every OpenAt handle pins its generation for the
// handle's lifetime. Vacuum consults the registry so a superseded
// generation with a live reader is retained, not reclaimed — the pin
// carries the generation's file list, so retention costs no disk reads.
// Like commitLocks, entries are keyed by directory identity and the map's
// growth is bounded by the distinct dataset directories a process touches.
var genPins sync.Map // root string -> *pinTable

type pinTable struct {
	mu   sync.Mutex
	gens map[uint64]*genPin
}

type genPin struct {
	refs  int
	files []string
}

func pinsFor(root string) *pinTable {
	v, _ := genPins.LoadOrStore(root, &pinTable{gens: map[uint64]*genPin{}})
	return v.(*pinTable)
}

// pinGeneration registers m's generation as having a live in-process
// reader and returns the release function. Releases are idempotent; the
// registry entry disappears with its last reference.
func pinGeneration(root string, m *Manifest) func() {
	pt := pinsFor(root)
	pt.mu.Lock()
	p := pt.gens[m.Generation]
	if p == nil {
		p = &genPin{files: manifestFiles(m)}
		pt.gens[m.Generation] = p
	}
	p.refs++
	pt.mu.Unlock()
	gen := m.Generation
	var once sync.Once
	return func() {
		once.Do(func() {
			pt.mu.Lock()
			if p := pt.gens[gen]; p != nil {
				p.refs--
				if p.refs <= 0 {
					delete(pt.gens, gen)
				}
			}
			pt.mu.Unlock()
		})
	}
}

// pinnedGenerations snapshots the pin registry for root: generation ->
// retained file list.
func pinnedGenerations(root string) map[uint64][]string {
	v, ok := genPins.Load(root)
	if !ok {
		return nil
	}
	pt := v.(*pinTable)
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if len(pt.gens) == 0 {
		return nil
	}
	out := make(map[uint64][]string, len(pt.gens))
	for g, p := range pt.gens {
		out[g] = append([]string(nil), p.files...)
	}
	return out
}

// Tag names generation gen (0 = the current generation) so it survives
// Vacuum and can be reopened with OpenAt. The tag rides a normal manifest
// commit — crash-consistent, CAS on the generation — so creating a tag
// bumps the generation like any other mutation. Tagging overwrites an
// existing tag of the same name. The target generation's manifest must
// still exist; its member files are verified present when the backend can
// list them.
func (d *Dataset) Tag(name string, gen uint64) error {
	if err := validateTagName(name); err != nil {
		return err
	}
	if d.snapshot {
		return ErrSnapshotReadOnly
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.generationSnapshot().manifest.Generation
	if gen == 0 {
		gen = cur
	}
	if gen > cur {
		return fmt.Errorf("dataset: cannot tag generation %d (current is %d)", gen, cur)
	}
	if gen != cur {
		// A superseded target must still be fully on disk: its manifest
		// must load and, where the backend can enumerate, its members must
		// not have been vacuumed already.
		m, err := loadManifestGeneration(d.backend, gen)
		if err != nil {
			return fmt.Errorf("dataset: tag %q: %w", name, err)
		}
		if names, err := d.backend.List(); err == nil {
			present := make(map[string]bool, len(names))
			for _, n := range names {
				present[n] = true
			}
			for _, e := range m.Files {
				if !present[e.Name] {
					return fmt.Errorf("dataset: tag %q: generation %d member %s no longer on disk (vacuumed?)",
						name, gen, e.Name)
				}
			}
		}
	}
	return d.commit(nil, func(m *Manifest) error {
		if m.Tags == nil {
			m.Tags = map[string]uint64{}
		}
		m.Tags[name] = gen
		return nil
	})
}

// Untag removes a named tag (a normal commit); the formerly tagged
// generation becomes reclaimable by the next Vacuum unless something else
// still pins it. Removing a missing tag fails with ErrNoSuchTag.
func (d *Dataset) Untag(name string) error {
	if d.snapshot {
		return ErrSnapshotReadOnly
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.generationSnapshot().manifest.Tags[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTag, name)
	}
	return d.commit(nil, func(m *Manifest) error {
		delete(m.Tags, name)
		return nil
	})
}

// Tags returns a copy of the current generation's tag set: tag name ->
// pinned generation.
func (d *Dataset) Tags() map[string]uint64 {
	src := d.generationSnapshot().manifest.Tags
	out := make(map[string]uint64, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// resolveRef resolves a time-travel reference against a manifest's tag
// set: a tag name, or a decimal generation number (tag names can never be
// all digits, so the two namespaces cannot collide).
func resolveRef(m *Manifest, ref string) (uint64, error) {
	if g, ok := m.Tags[ref]; ok {
		return g, nil
	}
	if g, err := strconv.ParseUint(strings.TrimSpace(ref), 10, 64); err == nil && g > 0 {
		return g, nil
	}
	known := make([]string, 0, len(m.Tags))
	for name := range m.Tags {
		known = append(known, name)
	}
	sort.Strings(known)
	if len(known) > 0 {
		return 0, fmt.Errorf("%w: %q (tags: %s)", ErrNoSuchTag, ref, strings.Join(known, ", "))
	}
	return 0, fmt.Errorf("%w: %q (dataset has no tags)", ErrNoSuchTag, ref)
}

// OpenAt opens a read-only handle pinned to the generation ref names: a
// tag created with Tag, or a decimal generation number. The handle serves
// exactly that generation forever — commits to the live dataset never
// move it — and it registers an in-process pin so Vacuum retains the
// generation's files while the handle is open. Cross-process retention is
// what tags are for: pin with a tag before vacuuming from another handle.
//
// Mutations through the returned handle fail with ErrSnapshotReadOnly.
// One caveat inherited from deletion compliance: Delete flips deletion
// bits inside member files in place, so deletes committed after the
// pinned generation ARE visible through it (the rows a snapshot can serve
// only ever shrinks). Append, Compact, and Vacuum never disturb a pinned
// generation.
func OpenAt(dir, ref string, opts *Options) (*Dataset, error) {
	d, err := newHandle(dir, opts)
	if err != nil {
		return nil, err
	}
	cur, err := loadManifest(d.backend)
	if err != nil {
		return nil, err
	}
	gen, err := resolveRef(cur, ref)
	if err != nil {
		return nil, err
	}
	return d.openPinned(gen, cur)
}

// OpenAtGeneration is OpenAt with an explicit generation number.
func OpenAtGeneration(dir string, gen uint64, opts *Options) (*Dataset, error) {
	d, err := newHandle(dir, opts)
	if err != nil {
		return nil, err
	}
	return d.openPinned(gen, nil)
}

// openPinned finishes constructing a snapshot handle over generation gen.
// cur, when the caller already loaded the live manifest, avoids reloading
// it for the gen == current fast path.
func (d *Dataset) openPinned(gen uint64, cur *Manifest) (*Dataset, error) {
	var m *Manifest
	var err error
	if cur != nil && cur.Generation == gen {
		m = cur
	} else {
		m, err = loadManifestGeneration(d.backend, gen)
		if err != nil {
			return nil, err
		}
	}
	g, err := d.newGeneration(m, nil)
	if err != nil {
		return nil, err
	}
	d.gen = g
	d.snapshot = true
	d.unpin = pinGeneration(d.backend.Root(), m)
	return d, nil
}

// retainedGenerations resolves the full retention set for a vacuum or
// fsck pass over backend b: every generation a tag in tags pins (manifest
// loaded from disk; file lists come from it) plus every generation with a
// live in-process reader. current is excluded — it is live, not retained.
// The returned map is generation -> files kept for it.
func retainedGenerations(b storage.Backend, tags map[string]uint64, current uint64) (map[uint64][]string, error) {
	out := map[uint64][]string{}
	for name, g := range tags {
		if g == current || g == 0 {
			continue
		}
		if _, ok := out[g]; ok {
			continue
		}
		m, err := loadManifestGeneration(b, g)
		if err != nil {
			// Fail safe: a tag whose target manifest cannot be read must
			// stop reclamation, not silently unpin the generation.
			return nil, fmt.Errorf("dataset: tag %q pins generation %d: %w", name, g, err)
		}
		out[g] = manifestFiles(m)
	}
	for g, files := range pinnedGenerations(b.Root()) {
		if g == current {
			continue
		}
		if _, ok := out[g]; !ok {
			out[g] = files
		}
	}
	return out, nil
}

// sortedGenerations returns the keys of a retention map, ascending.
func sortedGenerations(m map[uint64][]string) []uint64 {
	out := make([]uint64, 0, len(m))
	for g := range m {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
