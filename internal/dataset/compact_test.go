package dataset

import (
	"io"
	"sync"
	"testing"

	"bullion/internal/core"
)

// deleteEveryOther marks half of each member file's rows deleted: global
// odd rows across the whole dataset.
func deleteEveryOther(t *testing.T, d *Dataset) []int64 {
	t.Helper()
	total := d.NumRows()
	var rows []uint64
	var live []int64
	for r := uint64(0); r < total; r++ {
		if r%2 == 1 {
			rows = append(rows, r)
		} else {
			live = append(live, int64(r))
		}
	}
	if err := d.Delete(rows); err != nil {
		t.Fatal(err)
	}
	return live
}

// TestCompactHalfDeleted pins the acceptance shape: a half-deleted
// dataset shrinks on Compact and subsequent scans return identical live
// rows.
func TestCompactHalfDeleted(t *testing.T) {
	d := newTestDataset(t, nil, 4, 1024)
	live := deleteEveryOther(t, d)
	before, _ := scanKeys(t, d, ScanOptions{})
	checkKeys(t, before, live)
	bytesBefore := d.TotalBytes()

	stats, err := d.Compact(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesCompacted != 4 || stats.FilesDropped != 0 {
		t.Fatalf("stats = %+v, want 4 compacted", stats)
	}
	if stats.RowsReclaimed != 4*512 {
		t.Fatalf("RowsReclaimed = %d, want %d", stats.RowsReclaimed, 4*512)
	}
	if d.TotalBytes() >= bytesBefore {
		t.Fatalf("compaction did not shrink: %d -> %d bytes", bytesBefore, d.TotalBytes())
	}
	if d.NumRows() != uint64(len(live)) || d.NumLiveRows() != uint64(len(live)) {
		t.Fatalf("rows = %d live %d, want %d", d.NumRows(), d.NumLiveRows(), len(live))
	}
	after, stats2 := scanKeys(t, d, ScanOptions{})
	checkKeys(t, after, live)
	if stats2.FilesScanned != 4 {
		t.Fatalf("post-compact scan stats = %+v", stats2)
	}

	// Zone maps survive compaction: a filter for the last file's keys
	// still prunes the other three.
	min := int64(3 * 1024)
	_, stats3 := scanKeys(t, d, ScanOptions{
		ScanOptions: core.ScanOptions{Filters: []core.ColumnFilter{{Column: "key", Min: &min}}},
	})
	if stats3.FilesPruned != 3 {
		t.Fatalf("post-compact zone pruning: %+v", stats3)
	}

	// A second compaction finds nothing to do.
	stats4, err := d.Compact(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if stats4.FilesCompacted != 0 || stats4.FilesDropped != 0 {
		t.Fatalf("idle compaction did work: %+v", stats4)
	}
}

// TestCompactDropsEmptyFiles asserts a fully deleted member is removed
// from the manifest without a replacement file.
func TestCompactDropsEmptyFiles(t *testing.T) {
	d := newTestDataset(t, nil, 3, 100)
	// Delete all of file 1 (global rows [100, 200)).
	var rows []uint64
	for r := uint64(100); r < 200; r++ {
		rows = append(rows, r)
	}
	if err := d.Delete(rows); err != nil {
		t.Fatal(err)
	}
	stats, err := d.Compact(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesDropped != 1 || stats.FilesCompacted != 0 {
		t.Fatalf("stats = %+v, want 1 dropped", stats)
	}
	if d.NumFiles() != 2 {
		t.Fatalf("NumFiles = %d, want 2", d.NumFiles())
	}
	keys, _ := scanKeys(t, d, ScanOptions{})
	checkKeys(t, keys, append(wantKeys(0, 100), wantKeys(200, 300)...))
}

// TestScanDuringCompact runs scans concurrently with a Compact commit:
// scanners holding the old manifest generation must keep serving their
// snapshot (race-clean under -race), and scans started after the commit
// see the compacted generation.
func TestScanDuringCompact(t *testing.T) {
	d := newTestDataset(t, nil, 4, 1024)
	live := deleteEveryOther(t, d)
	genBefore := d.Generation()

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 8; i++ {
				sc, err := d.Scan(ScanOptions{FileConcurrency: 2})
				if err != nil {
					t.Error(err)
					return
				}
				rows := 0
				for {
					b, err := sc.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Errorf("scan during compact: %v", err)
						sc.Close()
						return
					}
					rows += b.NumRows()
				}
				sc.Close()
				// Every snapshot — pre- or post-compaction — holds exactly
				// the live rows.
				if rows != len(live) {
					t.Errorf("scan saw %d rows, want %d", rows, len(live))
					return
				}
			}
		}()
	}
	close(start)
	if _, err := d.Compact(0.9); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if d.Generation() != genBefore+1 {
		t.Fatalf("generation = %d, want %d", d.Generation(), genBefore+1)
	}
	keys, _ := scanKeys(t, d, ScanOptions{})
	checkKeys(t, keys, live)
}

// TestScanHoldsSnapshotAcrossCommit pins generation isolation precisely:
// a scanner created before a Delete+Compact still returns the rows that
// were live at its snapshot, even when drained after the commit.
func TestScanHoldsSnapshotAcrossCommit(t *testing.T) {
	d := newTestDataset(t, nil, 2, 512)
	sc, err := d.Scan(ScanOptions{
		ScanOptions:     core.ScanOptions{Columns: []string{"key"}},
		FileConcurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	// Commit a delete and a compaction while sc is outstanding.
	live := deleteEveryOther(t, d)
	if _, err := d.Compact(0.9); err != nil {
		t.Fatal(err)
	}

	var keys []int64
	for {
		b, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, b.Columns[0].(core.Int64Data)...)
	}
	// The old snapshot predates the delete: all 1024 rows.
	checkKeys(t, keys, wantKeys(0, 1024))

	after, _ := scanKeys(t, d, ScanOptions{})
	checkKeys(t, after, live)
}
