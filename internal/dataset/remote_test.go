package dataset

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"bullion/internal/storage"
)

// buildFaultDataset creates an nFiles×rowsPerFile dataset on a fresh
// fault backend (keys partitioned by file, newTestDataset-style) and
// returns the backend for reopening under fault policies.
func buildFaultDataset(t *testing.T, nFiles, rowsPerFile int) *storage.Fault {
	t.Helper()
	fb := storage.NewFault("mem://remote")
	d, err := Create("remoteds", testSchema(t), &Options{Backend: fb})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < nFiles; i++ {
		if err := d.Append(keyBatch(t, d.Schema(), i*rowsPerFile, rowsPerFile)); err != nil {
			t.Fatal(err)
		}
	}
	return fb
}

// buildLocalDataset creates an nFiles×rowsPerFile dataset in a real
// temp directory (newTestDataset partitioning) and returns its path —
// the publishable form the HTTP tests serve.
func buildLocalDataset(t *testing.T, nFiles, rowsPerFile int) string {
	t.Helper()
	dir := t.TempDir()
	d, err := Create(dir, testSchema(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < nFiles; i++ {
		if err := d.Append(keyBatch(t, d.Schema(), i*rowsPerFile, rowsPerFile)); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// resilientOver wraps a fault backend in the retry policy tuned for
// tests: generous retries, nanosecond backoffs, hedging off.
func resilientOver(fb *storage.Fault) *storage.Resilient {
	return storage.NewResilient(fb, &storage.ResilienceOptions{
		MaxRetries:  8,
		BackoffBase: 1,
		HedgeDelay:  storage.DisableHedging,
	})
}

// TestRemoteScanFaultMatrix: a scan through the retry policy over a
// backend injecting transient errors at up to 20% must return exactly
// the bytes a clean scan returns — the resilience acceptance bar.
func TestRemoteScanFaultMatrix(t *testing.T) {
	const nFiles, rows = 6, 300
	for _, tc := range []struct {
		label string
		nf    storage.NetFaults
	}{
		{"err10", storage.NetFaults{Seed: 11, ErrRate: 0.10}},
		{"err20", storage.NetFaults{Seed: 12, ErrRate: 0.20}},
		{"partial15", storage.NetFaults{Seed: 13, PartialRate: 0.15}},
		{"mixed20", storage.NetFaults{Seed: 14, ErrRate: 0.10, PartialRate: 0.05, TruncateAfter: 1 << 16}},
	} {
		tc := tc
		t.Run(tc.label, func(t *testing.T) {
			fb := buildFaultDataset(t, nFiles, rows)
			fb.SetNetFaults(&tc.nf)
			d, err := Open("remoteds", &Options{Backend: resilientOver(fb)})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			keys, stats := scanKeys(t, d, ScanOptions{})
			checkKeys(t, keys, wantKeys(0, nFiles*rows))
			if stats.Retries == 0 {
				t.Fatal("fault rates injected nothing — the matrix is not exercising retries")
			}
			if len(stats.DegradedMembers) != 0 {
				t.Fatalf("transient faults degraded members %v; retries should have absorbed them", stats.DegradedMembers)
			}
		})
	}
}

// TestRemoteScanDegraded: a permanently failing member is skipped and
// reported in degraded mode, and fails the scan outside it. Rows from
// every healthy member still arrive.
func TestRemoteScanDegraded(t *testing.T) {
	const nFiles, rows = 5, 200
	fb := buildFaultDataset(t, nFiles, rows)
	names, err := fb.List()
	if err != nil {
		t.Fatal(err)
	}
	var members []string
	for _, n := range names {
		if strings.HasPrefix(n, "part-") {
			members = append(members, n)
		}
	}
	sort.Strings(members)
	if len(members) != nFiles {
		t.Fatalf("found %d member files, want %d", len(members), nFiles)
	}
	victim := members[2]
	sick := errors.New("disk sector unreadable") // non-retryable: retries must not mask it
	failVictim := func(op storage.Op) error {
		if op.Name == victim && (op.Kind == storage.OpOpen || op.Kind == storage.OpRead) {
			return sick
		}
		return nil
	}

	t.Run("degraded-skips-and-reports", func(t *testing.T) {
		fb.SetFailOp(failVictim)
		defer fb.SetFailOp(nil)
		d, err := Open("remoteds", &Options{Backend: resilientOver(fb)})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		keys, stats := scanKeys(t, d, ScanOptions{Degraded: true})
		if len(stats.DegradedMembers) != 1 || stats.DegradedMembers[0] != victim {
			t.Fatalf("DegradedMembers = %v, want [%s]", stats.DegradedMembers, victim)
		}
		// Every healthy member's rows arrive intact; the victim's may be
		// absent entirely (it failed at open, before any rows).
		got := map[int64]bool{}
		for _, k := range keys {
			got[k] = true
		}
		for f := 0; f < nFiles; f++ {
			if f == 2 {
				continue
			}
			for k := int64(f * rows); k < int64((f+1)*rows); k++ {
				if !got[k] {
					t.Fatalf("healthy member %d lost key %d in degraded scan", f, k)
				}
			}
		}
		if len(keys) != (nFiles-1)*rows {
			t.Fatalf("got %d keys, want %d (victim contributes none)", len(keys), (nFiles-1)*rows)
		}
	})

	t.Run("default-mode-fails", func(t *testing.T) {
		fb.SetFailOp(failVictim)
		defer fb.SetFailOp(nil)
		d, err := Open("remoteds", &Options{Backend: resilientOver(fb)})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		var sopts ScanOptions
		sopts.Columns = []string{"key"}
		sc, err := d.Scan(sopts)
		if err == nil {
			defer sc.Close()
			for {
				if _, err = sc.Next(); err != nil {
					break
				}
			}
		}
		if !errors.Is(err, sick) {
			t.Fatalf("non-degraded scan err = %v, want the member failure", err)
		}
	})
}

// TestRemoteHTTPEndToEnd: publish a real dataset directory behind an
// HTTP server and drive the full read stack over the URL — open, scan,
// fsck — plus the read-only and list-degradation contracts.
func TestRemoteHTTPEndToEnd(t *testing.T) {
	const nFiles, rows = 4, 250
	dir := buildLocalDataset(t, nFiles, rows)
	lb, err := storage.NewLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(storage.NewHTTPHandler(lb))
	defer srv.Close()

	d, err := Open(srv.URL, nil)
	if err != nil {
		t.Fatalf("Open(%s): %v", srv.URL, err)
	}
	defer d.Close()

	keys, stats := scanKeys(t, d, ScanOptions{})
	checkKeys(t, keys, wantKeys(0, nFiles*rows))
	if stats.FilesScanned != nFiles {
		t.Fatalf("FilesScanned = %d, want %d", stats.FilesScanned, nFiles)
	}
	if len(stats.DegradedMembers) != 0 {
		t.Fatalf("clean remote scan degraded %v", stats.DegradedMembers)
	}

	// Writes are rejected loudly, not swallowed.
	if err := d.Append(keyBatch(t, d.Schema(), 9999, 10)); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("Append over HTTP err = %v, want ErrReadOnly", err)
	}

	// Fsck works over HTTP: members verify byte-for-byte (deep), and the
	// un-listable namespace degrades to a warning instead of failing.
	rep, err := Fsck(srv.URL, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck over HTTP failed: errors=%v members=%+v", rep.Errors, rep.Members)
	}
	if rep.Files != nFiles {
		t.Fatalf("fsck Files = %d, want %d", rep.Files, nFiles)
	}
	foundWarning := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "cannot list") {
			foundWarning = true
		}
	}
	if !foundWarning {
		t.Fatalf("fsck warnings = %v, want the list-unsupported warning", rep.Warnings)
	}
}

// TestRemoteHTTPFaultRecovery: transient HTTP-level failures (503s on a
// fraction of requests) are absorbed by the retry policy end to end.
func TestRemoteHTTPFaultRecovery(t *testing.T) {
	const nFiles, rows = 3, 200
	dir := buildLocalDataset(t, nFiles, rows)
	lb, err := storage.NewLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	inner := storage.NewHTTPHandler(lb)
	var reqs atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if reqs.Add(1)%5 == 0 { // every 5th request: transient server failure
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	h, err := storage.NewHTTP(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb := storage.NewResilient(h, &storage.ResilienceOptions{
		MaxRetries:  8,
		BackoffBase: 1,
		HedgeDelay:  storage.DisableHedging,
	})
	d, err := Open(srv.URL, &Options{Backend: rb})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	keys, stats := scanKeys(t, d, ScanOptions{})
	checkKeys(t, keys, wantKeys(0, nFiles*rows))
	if stats.Retries == 0 {
		t.Fatal("flaky server injected nothing")
	}
}
