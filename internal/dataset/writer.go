package dataset

import (
	"errors"
	"fmt"

	"bullion/internal/core"
	"bullion/internal/storage"
)

// ShardedWriter routes ingest batches across N target member files, each
// written by its own pipelined core writer, and commits them all as one
// manifest generation on Close. Batches are routed round-robin per Write
// call, so N concurrent encode pipelines stay busy while the file layout
// remains deterministic for a given batch sequence.
//
// A ShardedWriter must be used from a single goroutine and Close must
// always be called; until Close commits, the dataset is unchanged and the
// shard files exist only under temporary names. A failed Write or Close
// removes the temporaries and leaves the manifest untouched.
type ShardedWriter struct {
	d      *Dataset
	shards []*swShard
	next   int
	rows   uint64
	err    error
	closed bool
}

type swShard struct {
	tmpName string
	f       storage.File
	w       *core.Writer
	// stats is the writer's WrittenStats, captured when the shard closes;
	// the commit lifts its manifest entry from here instead of reopening
	// the file.
	stats *core.WrittenStats
}

// ShardedWriter starts a bulk load across n new member files.
func (d *Dataset) ShardedWriter(n int) (*ShardedWriter, error) {
	if n < 1 {
		return nil, fmt.Errorf("dataset: sharded writer needs n >= 1, got %d", n)
	}
	if d.snapshot {
		return nil, ErrSnapshotReadOnly
	}
	gen := d.generationSnapshot()
	sw := &ShardedWriter{d: d, shards: make([]*swShard, n)}
	for i := range sw.shards {
		tmpName := fmt.Sprintf("ingest-%d-%d-%d.tmp", d.handleID, d.nameSeq.Add(1), i)
		f, err := d.backend.Create(tmpName)
		if err != nil {
			sw.discard()
			return nil, err
		}
		w, err := core.NewWriter(f, gen.schema, d.writerOpts())
		if err != nil {
			f.Close()
			d.backend.Remove(tmpName)
			sw.discard()
			return nil, err
		}
		sw.shards[i] = &swShard{tmpName: tmpName, f: f, w: w}
	}
	return sw, nil
}

// Write appends batch to the next shard in round-robin order. Errors are
// sticky, as with the core writer.
func (sw *ShardedWriter) Write(batch *core.Batch) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return fmt.Errorf("dataset: sharded writer closed")
	}
	sh := sw.shards[sw.next]
	sw.next = (sw.next + 1) % len(sw.shards)
	if err := sh.w.Write(batch); err != nil {
		sw.err = err
		sw.discard()
		return err
	}
	sw.rows += uint64(batch.NumRows())
	return nil
}

// discard tears down every shard and removes its on-disk file (temporary
// or renamed-but-uncommitted).
func (sw *ShardedWriter) discard() {
	for _, sh := range sw.shards {
		if sh == nil {
			continue
		}
		if sh.w != nil {
			sh.w.Close() // joins the pipeline; error irrelevant, file is doomed
		}
		if sh.f != nil {
			sh.f.Close()
		}
		sh.w, sh.f = nil, nil
		sw.d.backend.Remove(sh.tmpName)
	}
}

// Close finishes every shard file and commits the non-empty ones to the
// manifest as one new generation. Closing a writer that wrote no rows is
// a no-op commit.
func (sw *ShardedWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return nil
	}
	sw.closed = true
	for _, sh := range sw.shards {
		if err := sh.w.Close(); err != nil {
			sw.err = err
			sw.discard()
			return err
		}
		sh.stats = sh.w.WrittenStats()
		// Force the shard's bytes durable before it is renamed into place:
		// a committed manifest must never reference a member whose contents
		// a power cut could still truncate.
		if err := sh.f.Sync(); err != nil {
			sw.err = err
			sw.discard()
			return err
		}
		if err := sh.f.Close(); err != nil {
			sw.err = err
			sw.discard()
			return err
		}
		sh.w, sh.f = nil, nil
	}

	sw.d.mu.Lock()
	defer sw.d.mu.Unlock()
	gen := sw.d.generationSnapshot().manifest.Generation + 1
	schemaFP := sw.d.Schema().Fingerprint()

	// Lift each shard's manifest entry from the statistics its own writer
	// surfaced at Close (the writer-side stats piggyback): a shard file is
	// never opened between Write and the manifest commit. On any failure,
	// discard removes every shard file — including ones already renamed,
	// whose tmpName tracks the final name.
	var entries []FileEntry
	var renames []*swShard
	fail := func(err error) error {
		sw.discard()
		sw.err = err
		return err
	}
	for i, sh := range sw.shards {
		ws := sh.stats
		if ws == nil {
			return fail(fmt.Errorf("dataset: shard %d closed without stats", i))
		}
		if ws.NumRows == 0 {
			sw.d.backend.Remove(sh.tmpName)
			continue
		}
		entries = append(entries, entryFromWritten(fmt.Sprintf("part-%06d-%03d.bln", gen, i), schemaFP, ws))
		renames = append(renames, sh)
	}
	if len(entries) == 0 {
		return nil
	}
	// The renames to final generation-derived part names run inside the
	// commit critical section, after the generation CAS: a racing commit
	// that already moved CURRENT fails cleanly before touching any final
	// name another committer may own. The directory sync makes the
	// renames durable before the manifest references them; the commit
	// dir-syncs again after the CURRENT swap.
	publish := func() error {
		for j, sh := range renames {
			if err := sw.d.backend.Rename(sh.tmpName, entries[j].Name); err != nil {
				return err
			}
			sh.tmpName = entries[j].Name
		}
		return sw.d.backend.SyncDir()
	}
	if err := sw.d.commit(publish, func(m *Manifest) error {
		for _, e := range entries {
			if e.SchemaFP != m.SchemaFP {
				return fmt.Errorf("dataset: shard %s fingerprint %s != dataset %s",
					e.Name, e.SchemaFP, m.SchemaFP)
			}
		}
		m.Files = append(m.Files, entries...)
		return nil
	}); err != nil {
		if errors.Is(err, ErrCommitIndeterminate) {
			// The CURRENT swap may have landed: the part files may be
			// referenced, so they must stay. Vacuum reclaims them if the
			// swap turns out to have failed.
			sw.err = err
			return err
		}
		return fail(err)
	}
	return nil
}

// NumRows reports rows written so far across all shards.
func (sw *ShardedWriter) NumRows() uint64 { return sw.rows }

// NumShards returns the target file count.
func (sw *ShardedWriter) NumShards() int { return len(sw.shards) }
