package dataset

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"bullion/internal/core"
	"bullion/internal/storage"
)

// FsckMember is one member file's verification result.
type FsckMember struct {
	Name string `json:"name"`
	// Bytes/Rows/LiveRows echo the manifest entry.
	Bytes    int64  `json:"bytes"`
	Rows     uint64 `json:"rows"`
	LiveRows uint64 `json:"live_rows"`
	// DiskLiveRows is the live-row count the member's own footer reports.
	// It may lag LiveRows when a Delete crashed after syncing deletion
	// bits but before its manifest commit — tolerable drift, reported as
	// a warning rather than an error.
	DiskLiveRows uint64 `json:"disk_live_rows"`
	// Errors lists integrity violations: missing file, size mismatch,
	// unopenable footer, fingerprint or row-count mismatch, checksum
	// failures under deep verification.
	Errors []string `json:"errors,omitempty"`
}

// FsckRetained is one superseded-but-retained generation: a manifest an
// older tag still pins, verified shallowly (manifest loads, members exist
// with the recorded sizes) so `-repair` never mistakes a snapshot for
// garbage.
type FsckRetained struct {
	Generation uint64 `json:"generation"`
	// Tags lists the tag names pinning this generation, sorted.
	Tags     []string `json:"tags"`
	Manifest string   `json:"manifest"`
	Files    int      `json:"files"`
	Rows     uint64   `json:"rows"`
	// Missing lists member files of this generation that are gone from
	// disk — an integrity error (something reclaimed a retained
	// generation).
	Missing []string `json:"missing,omitempty"`
}

// FsckReport is the result of verifying one dataset directory.
type FsckReport struct {
	Dir        string       `json:"dir"`
	Generation uint64       `json:"generation"`
	Files      int          `json:"files"`
	Rows       uint64       `json:"rows"`
	LiveRows   uint64       `json:"live_rows"`
	Members    []FsckMember `json:"members,omitempty"`
	// Tags echoes the current manifest's tag set (tag -> generation);
	// Retained describes each superseded generation those tags pin.
	// Retained generations' files are referenced, never orphans.
	Tags     map[string]uint64 `json:"tags,omitempty"`
	Retained []FsckRetained    `json:"retained,omitempty"`
	// OrphanTmps are commit temporaries (*.tmp) — crash debris the Open
	// recovery sweep (or Vacuum) removes. OrphanParts are part files no
	// longer referenced by the current generation and OrphanManifests are
	// superseded generations; both are normal after commits and crashes
	// alike and are reclaimed only by Vacuum, since readers may still be
	// serving older generations from them.
	OrphanTmps      []string `json:"orphan_tmps,omitempty"`
	OrphanParts     []string `json:"orphan_parts,omitempty"`
	OrphanManifests []string `json:"orphan_manifests,omitempty"`
	// Errors are dataset-level failures (unreadable CURRENT or manifest);
	// Warnings are tolerable anomalies (member live-row drift from a
	// crashed Delete).
	Errors   []string `json:"errors,omitempty"`
	Warnings []string `json:"warnings,omitempty"`
}

// OK reports whether the dataset passed verification: no dataset-level
// errors and no member errors. Warnings and orphans do not fail a check —
// they are expected after crashes and before Vacuum.
func (r *FsckReport) OK() bool {
	if len(r.Errors) > 0 {
		return false
	}
	for _, m := range r.Members {
		if len(m.Errors) > 0 {
			return false
		}
	}
	return true
}

// Fsck verifies the dataset at dir without modifying it: the manifest
// chain loads, every referenced member exists with the recorded size and
// a readable footer whose fingerprint and row count match, and every
// unreferenced file is classified (temporary debris, unreferenced parts,
// superseded manifests). With deep set, every member's page checksums are
// verified too — a full read of the dataset.
//
// The error return covers only failures to reach the directory at all;
// integrity violations land in the report.
func Fsck(dir string, opts *Options, deep bool) (*FsckReport, error) {
	b, err := backendFor(dir, opts)
	if err != nil {
		return nil, err
	}
	report := &FsckReport{Dir: dir}

	m, err := loadManifest(b)
	if err != nil {
		report.Errors = append(report.Errors, err.Error())
	} else {
		report.Generation = m.Generation
		report.Files = len(m.Files)
	}

	referenced := map[string]bool{currentName: true}
	if m != nil {
		referenced[manifestName(m.Generation)] = true
		for _, e := range m.Files {
			referenced[e.Name] = true
			report.Rows += e.Rows
			report.LiveRows += e.LiveRows
			report.Members = append(report.Members, fsckMember(b, e, deep))
		}
		fsckRetained(b, m, report, referenced)
	}
	for i := range report.Members {
		fm := &report.Members[i]
		if len(fm.Errors) == 0 && fm.DiskLiveRows != fm.LiveRows {
			report.Warnings = append(report.Warnings, fmt.Sprintf(
				"member %s: footer reports %d live rows, manifest %d (crashed delete?)",
				fm.Name, fm.DiskLiveRows, fm.LiveRows))
		}
	}

	names, err := b.List()
	if err != nil {
		// A backend with no namespace enumeration (HTTP) simply cannot
		// classify orphans — that is a structural limitation, not an
		// integrity violation.
		if errors.Is(err, storage.ErrListUnsupported) {
			report.Warnings = append(report.Warnings,
				"backend cannot list its namespace; orphan classification skipped")
			return report, nil
		}
		report.Errors = append(report.Errors, fmt.Sprintf("listing directory: %v", err))
		return report, nil
	}
	for _, name := range names {
		if referenced[name] {
			continue
		}
		switch {
		case isTempDebris(name):
			report.OrphanTmps = append(report.OrphanTmps, name)
		case strings.HasPrefix(name, "part-") || strings.HasPrefix(name, "ingest-"):
			report.OrphanParts = append(report.OrphanParts, name)
		case strings.HasPrefix(name, "manifest-"):
			report.OrphanManifests = append(report.OrphanManifests, name)
		}
	}
	return report, nil
}

// fsckRetained walks the generations the current manifest's tags pin,
// marking their manifests and member files referenced so orphan
// classification (and -repair's Vacuum) never treats a retained snapshot
// as garbage, and shallowly verifying each: the tagged manifest must
// load, and members exclusive to the retained generation must exist with
// the recorded size. An unreadable tagged manifest or a missing retained
// member is an integrity error.
func fsckRetained(b storage.Backend, m *Manifest, report *FsckReport, referenced map[string]bool) {
	if len(m.Tags) == 0 {
		return
	}
	report.Tags = make(map[string]uint64, len(m.Tags))
	tagsByGen := map[uint64][]string{}
	for name, g := range m.Tags {
		report.Tags[name] = g
		if g != m.Generation {
			tagsByGen[g] = append(tagsByGen[g], name)
		}
	}
	gens := make([]uint64, 0, len(tagsByGen))
	for g := range tagsByGen {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	for _, g := range gens {
		names := tagsByGen[g]
		sort.Strings(names)
		rm, err := loadManifestGeneration(b, g)
		if err != nil {
			report.Errors = append(report.Errors, fmt.Sprintf(
				"retained generation %d (tags %s): %v", g, strings.Join(names, ", "), err))
			continue
		}
		rg := FsckRetained{
			Generation: g,
			Tags:       names,
			Manifest:   manifestName(g),
			Files:      len(rm.Files),
		}
		referenced[rg.Manifest] = true
		for _, e := range rm.Files {
			rg.Rows += e.Rows
			alreadyChecked := referenced[e.Name]
			referenced[e.Name] = true
			if alreadyChecked {
				continue // shared with the current generation (or an earlier tag)
			}
			h, size, err := b.ReadAt(e.Name)
			if err != nil {
				rg.Missing = append(rg.Missing, e.Name)
				report.Errors = append(report.Errors, fmt.Sprintf(
					"retained generation %d member %s: open: %v", g, e.Name, err))
				continue
			}
			h.Close()
			if size != e.Bytes {
				report.Errors = append(report.Errors, fmt.Sprintf(
					"retained generation %d member %s: size %d, manifest records %d",
					g, e.Name, size, e.Bytes))
			}
		}
		report.Retained = append(report.Retained, rg)
	}
}

// fsckMember verifies one manifest entry against its on-disk file.
func fsckMember(b storage.Backend, e FileEntry, deep bool) FsckMember {
	fm := FsckMember{Name: e.Name, Bytes: e.Bytes, Rows: e.Rows, LiveRows: e.LiveRows}
	fail := func(format string, args ...any) FsckMember {
		fm.Errors = append(fm.Errors, fmt.Sprintf(format, args...))
		return fm
	}
	h, size, err := b.ReadAt(e.Name)
	if err != nil {
		return fail("open: %v", err)
	}
	defer h.Close()
	if size != e.Bytes {
		return fail("size %d, manifest records %d", size, e.Bytes)
	}
	f, err := core.Open(h, size)
	if err != nil {
		return fail("footer: %v", err)
	}
	if fp := f.Schema().Fingerprint(); fp != e.SchemaFP {
		fail("schema fingerprint %s, manifest records %s", fp, e.SchemaFP)
	}
	if rows := f.NumRows(); rows != e.Rows {
		fail("%d rows, manifest records %d", rows, e.Rows)
	}
	fm.DiskLiveRows = f.NumLiveRows()
	// The footer can only ever run ahead of the manifest (a crashed
	// Delete synced bits before its commit); resurrected rows mean the
	// commit protocol broke.
	if fm.DiskLiveRows > e.LiveRows {
		fail("footer reports %d live rows, more than manifest's %d", fm.DiskLiveRows, e.LiveRows)
	}
	if deep {
		if err := f.VerifyChecksums(); err != nil {
			fail("checksums: %v", err)
		}
	}
	return fm
}
