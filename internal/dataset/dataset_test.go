package dataset

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bullion/internal/core"
)

// testSchema is a small mixed schema: an int64 key (zone-mappable), a
// float64 value, and a string tag (no zone maps — exercises conservative
// pruning).
func testSchema(t *testing.T) *core.Schema {
	t.Helper()
	schema, err := core.NewSchema(
		core.Field{Name: "key", Type: core.Type{Kind: core.Int64}},
		core.Field{Name: "val", Type: core.Type{Kind: core.Float64}},
		core.Field{Name: "tag", Type: core.Type{Kind: core.String}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// keyBatch builds n rows with keys [base, base+n).
func keyBatch(t *testing.T, schema *core.Schema, base, n int) *core.Batch {
	t.Helper()
	keys := make(core.Int64Data, n)
	vals := make(core.Float64Data, n)
	tags := make(core.BytesData, n)
	for i := 0; i < n; i++ {
		keys[i] = int64(base + i)
		vals[i] = float64(base+i) / 2
		tags[i] = []byte(fmt.Sprintf("t%04d", (base+i)%7))
	}
	b, err := core.NewBatch(schema, []core.ColumnData{keys, vals, tags})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// newTestDataset creates a dataset of nFiles member files, each holding
// rowsPerFile rows with keys partitioned by file: file i holds keys
// [i*rowsPerFile, (i+1)*rowsPerFile).
func newTestDataset(t *testing.T, opts *Options, nFiles, rowsPerFile int) *Dataset {
	t.Helper()
	d, err := Create(t.TempDir(), testSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	for i := 0; i < nFiles; i++ {
		if err := d.Append(keyBatch(t, d.Schema(), i*rowsPerFile, rowsPerFile)); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// scanKeys drains a dataset scan, returning the emitted key column.
func scanKeys(t *testing.T, d *Dataset, opts ScanOptions) ([]int64, ScanStats) {
	t.Helper()
	opts.Columns = []string{"key"}
	sc, err := d.Scan(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	var keys []int64
	for {
		b, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, b.Columns[0].(core.Int64Data)...)
	}
	return keys, sc.Stats()
}

func wantKeys(lo, hi int64) []int64 {
	out := make([]int64, 0, hi-lo)
	for k := lo; k < hi; k++ {
		out = append(out, k)
	}
	return out
}

func checkKeys(t *testing.T, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("key[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestDatasetAppendScan pins the basic lifecycle: append N files, scan in
// manifest order, reopen from disk, scan again.
func TestDatasetAppendScan(t *testing.T) {
	d := newTestDataset(t, nil, 4, 1000)
	if got := d.NumFiles(); got != 4 {
		t.Fatalf("NumFiles = %d, want 4", got)
	}
	if got := d.NumRows(); got != 4000 {
		t.Fatalf("NumRows = %d, want 4000", got)
	}
	for _, k := range []int{1, 3} {
		keys, stats := scanKeys(t, d, ScanOptions{FileConcurrency: k})
		checkKeys(t, keys, wantKeys(0, 4000))
		if stats.FilesScanned != 4 || stats.FilesPruned != 0 {
			t.Fatalf("conc %d: stats = %+v", k, stats)
		}
		if stats.RowsEmitted != 4000 {
			t.Fatalf("conc %d: RowsEmitted = %d", k, stats.RowsEmitted)
		}
	}

	// Reopen from disk: the manifest alone must reconstruct the dataset.
	d2, err := Open(d.dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	keys, _ := scanKeys(t, d2, ScanOptions{})
	checkKeys(t, keys, wantKeys(0, 4000))
	if d2.Schema().Fingerprint() != d.Schema().Fingerprint() {
		t.Fatal("fingerprint mismatch after reopen")
	}
}

// TestDatasetScanRangePruning asserts a global Range maps to the right
// member files and local rows, and that files wholly outside the range
// are pruned without ever being opened.
func TestDatasetScanRangePruning(t *testing.T) {
	var opens sync.Map // file name -> opened
	opts := &Options{WrapReader: func(name string, r io.ReaderAt, size int64) io.ReaderAt {
		opens.Store(name, true)
		return r
	}}
	d := newTestDataset(t, opts, 4, 1000)

	keys, stats := scanKeys(t, d, ScanOptions{
		ScanOptions: core.ScanOptions{Range: &core.RowRange{Lo: 1500, Hi: 2500}},
	})
	checkKeys(t, keys, wantKeys(1500, 2500))
	if stats.FilesPruned != 2 || stats.FilesPlanned != 2 {
		t.Fatalf("stats = %+v, want 2 pruned / 2 planned", stats)
	}
	opened := 0
	opens.Range(func(_, _ any) bool { opened++; return true })
	if opened != 2 {
		t.Fatalf("opened %d member files, want 2", opened)
	}
}

// TestDatasetScanZonePruning asserts the manifest's file-level zone maps
// prune whole files for ColumnFilters, and that stat-less columns never
// prune.
func TestDatasetScanZonePruning(t *testing.T) {
	d := newTestDataset(t, nil, 4, 1000)
	min, max := int64(3200), int64(3400)
	keys, stats := scanKeys(t, d, ScanOptions{
		ScanOptions: core.ScanOptions{Filters: []core.ColumnFilter{{Column: "key", Min: &min, Max: &max}}},
	})
	// Zone pruning is conservative: the matching file is scanned in full
	// minus its internally pruned batches.
	if stats.FilesPruned != 3 || stats.FilesPlanned != 1 {
		t.Fatalf("stats = %+v, want 3 pruned / 1 planned", stats)
	}
	for _, k := range keys {
		if k < 3000 || k >= 4000 {
			t.Fatalf("key %d from a file the filter excludes", k)
		}
	}

	// A filter on a column with no zone maps must not prune files.
	_, stats = scanKeys(t, d, ScanOptions{
		ScanOptions: core.ScanOptions{Filters: []core.ColumnFilter{{Column: "tag", Min: &min}}},
	})
	if stats.FilesPruned != 0 {
		t.Fatalf("stat-less column pruned %d files", stats.FilesPruned)
	}

	// Unknown filter and projection columns fail even when every file
	// would be pruned (or the dataset is empty).
	if _, err := d.Scan(ScanOptions{
		ScanOptions: core.ScanOptions{Filters: []core.ColumnFilter{{Column: "nope", Min: &min}}},
	}); err == nil {
		t.Fatal("scan with unknown filter column succeeded")
	}
	if _, err := d.Scan(ScanOptions{
		ScanOptions: core.ScanOptions{
			Columns: []string{"nope"},
			Range:   &core.RowRange{Lo: 0, Hi: 0},
		},
	}); err == nil {
		t.Fatal("scan with unknown projected column succeeded")
	}
}

// TestScannerOwnersNotPinnedWithoutReuse asserts batches are only tracked
// for recycling under ReuseBatches — otherwise a long scan would pin
// every emitted batch in the owners map for the scanner's lifetime.
func TestScannerOwnersNotPinnedWithoutReuse(t *testing.T) {
	d := newTestDataset(t, nil, 2, 1000)
	sc, err := d.Scan(ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	for {
		b, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sc.Recycle(b) // no-op without ReuseBatches
	}
	if n := len(sc.owners); n != 0 {
		t.Fatalf("owners map holds %d batches without ReuseBatches", n)
	}
}

// TestShardedWriterRouting pins round-robin batch routing: 6 batches over
// 3 shards become 3 member files of 2 batches each, committed as one
// generation.
func TestShardedWriterRouting(t *testing.T) {
	d, err := Create(t.TempDir(), testSchema(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	genBefore := d.Generation()
	sw, err := d.ShardedWriter(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := sw.Write(keyBatch(t, d.Schema(), i*100, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := d.NumFiles(); got != 3 {
		t.Fatalf("NumFiles = %d, want 3", got)
	}
	if got := d.Generation(); got != genBefore+1 {
		t.Fatalf("generation = %d, want %d (one commit)", got, genBefore+1)
	}
	for i, e := range d.Manifest().Files {
		if e.Rows != 200 {
			t.Fatalf("shard %d has %d rows, want 200", i, e.Rows)
		}
	}
	// Shard 0 got batches 0 and 3: keys [0,100) and [300,400).
	keys, _ := scanKeys(t, d, ScanOptions{
		ScanOptions: core.ScanOptions{Range: &core.RowRange{Lo: 0, Hi: 200}},
	})
	want := append(wantKeys(0, 100), wantKeys(300, 400)...)
	checkKeys(t, keys, want)

	// No temporary files survive a successful commit.
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if strings.Contains(de.Name(), ".tmp") {
			t.Fatalf("leftover temporary %s", de.Name())
		}
	}
}

// TestDatasetDelete asserts global row deletion maps to the right member
// files, updates manifest accounting, and is visible to fresh scans.
func TestDatasetDelete(t *testing.T) {
	d := newTestDataset(t, nil, 3, 1000)
	// Delete keys 500..1499 (second half of file 0, first half of file 1).
	var rows []uint64
	for r := uint64(500); r < 1500; r++ {
		rows = append(rows, r)
	}
	if err := d.Delete(rows); err != nil {
		t.Fatal(err)
	}
	if got := d.NumLiveRows(); got != 2000 {
		t.Fatalf("NumLiveRows = %d, want 2000", got)
	}
	keys, _ := scanKeys(t, d, ScanOptions{})
	want := append(wantKeys(0, 500), wantKeys(1500, 3000)...)
	checkKeys(t, keys, want)

	// Deleting out-of-range rows fails without mutating anything.
	if err := d.Delete([]uint64{3000}); err == nil {
		t.Fatal("delete of row 3000 succeeded")
	}
}

// TestDatasetFingerprintMismatch asserts a member whose bytes don't match
// the manifest fingerprint is rejected at open.
func TestDatasetFingerprintMismatch(t *testing.T) {
	d := newTestDataset(t, nil, 2, 100)
	victim := d.Manifest().Files[1].Name

	// Overwrite member 1 with a file of a different schema.
	other, err := core.NewSchema(core.Field{Name: "zzz", Type: core.Type{Kind: core.Int64}})
	if err != nil {
		t.Fatal(err)
	}
	osf, err := os.Create(filepath.Join(d.dir, victim))
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.NewWriter(osf, other, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := core.NewBatch(other, []core.ColumnData{make(core.Int64Data, 100)})
	if err := w.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	osf.Close()

	d2, err := Open(d.dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	// Members are opened (and verified) when a scan plans them.
	sc, err := d2.Scan(ScanOptions{})
	if err == nil {
		sc.Close()
		t.Fatal("scan over a swapped member succeeded")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("error %v does not mention the fingerprint", err)
	}
}

// TestDatasetScanErrorPropagates asserts a read failure inside one member
// engine surfaces from Next and shuts the scan down.
func TestDatasetScanErrorPropagates(t *testing.T) {
	opts := &Options{WrapReader: func(name string, r io.ReaderAt, size int64) io.ReaderAt {
		// Footer reads (at the tail) succeed so Scan can plan; page reads
		// at offset 0 — the first data page — fail.
		return failingReader{r: r, failBelow: 8}
	}}
	d := newTestDataset(t, opts, 2, 1000)
	sc, err := d.Scan(ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	for {
		_, err := sc.Next()
		if err == io.EOF {
			t.Fatal("scan with failing reader reached EOF")
		}
		if err != nil {
			break
		}
	}
}

type failingReader struct {
	r         io.ReaderAt
	failBelow int64
}

func (f failingReader) ReadAt(p []byte, off int64) (int, error) {
	if off < f.failBelow {
		return 0, fmt.Errorf("injected read failure")
	}
	return f.r.ReadAt(p, off)
}

// TestManifestAtomicCommit pins the commit protocol: a manifest file per
// generation, a CURRENT pointer naming the live one, and no temp debris.
func TestManifestAtomicCommit(t *testing.T) {
	d := newTestDataset(t, nil, 2, 100)
	cur, err := os.ReadFile(filepath.Join(d.dir, currentName))
	if err != nil {
		t.Fatal(err)
	}
	want := manifestName(d.Generation())
	if strings.TrimSpace(string(cur)) != want {
		t.Fatalf("CURRENT = %q, want %q", strings.TrimSpace(string(cur)), want)
	}
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		t.Fatal(err)
	}
	manifests := 0
	for _, de := range ents {
		name := de.Name()
		if strings.Contains(name, ".tmp") {
			t.Fatalf("temp debris %s", name)
		}
		if strings.HasPrefix(name, "manifest-") {
			manifests++
		}
	}
	// Create + 2 appends = 3 generations on disk until Vacuum.
	if manifests != 3 {
		t.Fatalf("%d manifest files, want 3", manifests)
	}

	removed, err := d.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("vacuum removed %v, want the 2 stale manifests", removed)
	}
}
