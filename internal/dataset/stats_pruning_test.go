package dataset

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"bullion/internal/core"
	"bullion/internal/storage"
)

// memberOpenCounter wraps a storage.Backend and counts ReadAt opens of
// member files (part-/ingest- names). Manifest and CURRENT reads — the
// commit protocol re-reads CURRENT for its generation CAS — are not
// member reopens and don't count.
type memberOpenCounter struct {
	storage.Backend
	mu    sync.Mutex
	opens int
}

func (c *memberOpenCounter) ReadAt(name string) (storage.File, int64, error) {
	if strings.HasPrefix(name, "part-") || strings.HasPrefix(name, "ingest-") {
		c.mu.Lock()
		c.opens++
		c.mu.Unlock()
	}
	return c.Backend.ReadAt(name)
}

func (c *memberOpenCounter) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opens
}

// prunableDataset builds an 8-member dataset where member i holds float
// values in [i*100, i*100+100) and string tags "file-i-*" — every member
// is provably disjoint from the others in both the float and the string
// domain, so a selective filter should prune 7 of 8 files from the
// manifest alone.
func prunableDataset(t *testing.T, opts *Options) *Dataset {
	t.Helper()
	schema, err := core.NewSchema(
		core.Field{Name: "fval", Type: core.Type{Kind: core.Float64}},
		core.Field{Name: "tag", Type: core.Type{Kind: core.String}},
	)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Create(t.TempDir(), schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	const rows = 500
	for i := 0; i < 8; i++ {
		fv := make(core.Float64Data, rows)
		tg := make(core.BytesData, rows)
		for r := 0; r < rows; r++ {
			fv[r] = float64(i*100) + float64(r)/5
			tg[r] = []byte(fmt.Sprintf("file-%d-%d", i, r%50))
		}
		b, err := core.NewBatch(schema, []core.ColumnData{fv, tg})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestDatasetFloatAndBloomPruning is the acceptance pin for manifest-only
// pruning: a float-range filter and a string-membership filter each prune
// 7 of the 8 member files, and the pruned members are never opened.
func TestDatasetFloatAndBloomPruning(t *testing.T) {
	var mu sync.Mutex
	opened := map[string]bool{}
	d := prunableDataset(t, &Options{WrapReader: func(name string, r io.ReaderAt, size int64) io.ReaderAt {
		mu.Lock()
		opened[name] = true
		mu.Unlock()
		return r
	}})

	drain := func(opts ScanOptions) (int, ScanStats) {
		t.Helper()
		sc, err := d.Scan(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		rows := 0
		for {
			b, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			rows += b.NumRows()
		}
		return rows, sc.Stats()
	}

	// Float range entirely inside member 5's [500, 600) value band.
	lo, hi := 510.0, 550.0
	rows, stats := drain(ScanOptions{ScanOptions: core.ScanOptions{
		Filters: []core.ColumnFilter{{Column: "fval", FloatMin: &lo, FloatMax: &hi}},
	}})
	if stats.FilesPruned != 7 || stats.FilesPlanned != 1 {
		t.Fatalf("float filter: %d pruned / %d planned, want 7/1", stats.FilesPruned, stats.FilesPlanned)
	}
	if rows == 0 || rows > 500 {
		t.Fatalf("float filter emitted %d rows", rows)
	}
	mu.Lock()
	if len(opened) != 1 {
		t.Fatalf("float filter opened %d member files (%v), want 1", len(opened), opened)
	}
	opened = map[string]bool{}
	mu.Unlock()

	// String membership hitting only member 3's tag universe.
	rows, stats = drain(ScanOptions{ScanOptions: core.ScanOptions{
		Filters: []core.ColumnFilter{{Column: "tag", ValueIn: [][]byte{[]byte("file-3-7")}}},
	}})
	if stats.FilesPruned != 7 || stats.FilesPlanned != 1 {
		t.Fatalf("bloom filter: %d pruned / %d planned, want 7/1", stats.FilesPruned, stats.FilesPlanned)
	}
	if rows == 0 || rows > 500 {
		t.Fatalf("bloom filter emitted %d rows", rows)
	}
	mu.Lock()
	if len(opened) != 1 {
		t.Fatalf("bloom filter opened %d member files (%v), want 1", len(opened), opened)
	}
	mu.Unlock()

	// A membership value present nowhere prunes everything.
	_, stats = drain(ScanOptions{ScanOptions: core.ScanOptions{
		Filters: []core.ColumnFilter{{Column: "tag", ValueIn: [][]byte{[]byte("absent-everywhere")}}},
	}})
	if stats.FilesPruned != 8 || stats.FilesPlanned != 0 {
		t.Fatalf("absent value: %d pruned / %d planned, want 8/0", stats.FilesPruned, stats.FilesPlanned)
	}
}

// TestShardedWriterNeverReopensShards pins the writer-side stats
// piggyback: between the first Write and the manifest commit, a shard
// file is opened exactly zero times — the manifest entries come from the
// writers' own WrittenStats.
func TestShardedWriterNeverReopensShards(t *testing.T) {
	dir := t.TempDir()
	local, err := storage.NewLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	counter := &memberOpenCounter{Backend: local}
	d, err := Create(dir, testSchema(t), &Options{Backend: counter})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	sw, err := d.ShardedWriter(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := sw.Write(keyBatch(t, d.Schema(), i*500, 500)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if opens := counter.count(); opens != 0 {
		t.Fatalf("commit opened member files %d times; the stats piggyback must lift entries from the writer", opens)
	}
	if d.NumRows() != 3000 {
		t.Fatalf("rows = %d", d.NumRows())
	}
	// The committed manifest must carry zones without any file having been
	// opened: int bounds for the key, float bounds for the value, a bloom
	// for the tag.
	for _, e := range d.Manifest().Files {
		z, ok := e.zone("key")
		if !ok || z.Kind != "int" {
			t.Fatalf("member %s: no int zone for key: %+v", e.Name, e.Columns)
		}
		if z, ok := e.zone("val"); !ok || z.Kind != "float" || z.FMin == nil || z.FMax == nil {
			t.Fatalf("member %s: no float zone for val", e.Name)
		}
		if z, ok := e.zone("tag"); !ok || len(z.Bloom) == 0 {
			t.Fatalf("member %s: no bloom for tag", e.Name)
		}
	}
	// Scanning afterwards (which does open members) still sees every row,
	// in round-robin shard order: shard i holds batches i and i+3.
	keys, _ := scanKeys(t, d, ScanOptions{})
	var want []int64
	for shard := 0; shard < 3; shard++ {
		want = append(want, wantKeys(int64(shard*500), int64(shard*500+500))...)
		want = append(want, wantKeys(int64(1500+shard*500), int64(1500+shard*500+500))...)
	}
	checkKeys(t, keys, want)
}

// TestWrittenStatsMatchReopen cross-checks the two manifest-entry paths:
// the entry lifted from the writer's WrittenStats must equal the entry
// derived by reopening the file and walking its footer (entryForFile) —
// zones, blooms, bytes, and rows.
func TestWrittenStatsMatchReopen(t *testing.T) {
	d, err := Create(t.TempDir(), testSchema(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sw, err := d.ShardedWriter(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := sw.Write(keyBatch(t, d.Schema(), i*700, 700)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	for _, e := range d.Manifest().Files {
		path := filepath.Join(d.dir, e.Name)
		osf, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		st, _ := osf.Stat()
		f, err := core.Open(osf, st.Size())
		if err != nil {
			t.Fatal(err)
		}
		reopened := entryForFile(e.Name, f, st.Size())
		osf.Close()
		if !reflect.DeepEqual(e, reopened) {
			t.Fatalf("member %s: writer-lifted entry differs from reopened entry\nwriter:   %+v\nreopened: %+v",
				e.Name, e, reopened)
		}
		if !strings.HasPrefix(e.Name, "part-") {
			t.Fatalf("unexpected member name %s", e.Name)
		}
	}
}
