package enc

import (
	"math/rand"
	"testing"

	"bullion/internal/bitutil"
)

// Decoders face hostile bytes (disk corruption, truncation, crossed
// streams). They must return errors — never panic, never hang — for any
// mutation of a valid stream. These tests hammer every decoder with
// random corruptions.

func mutate(rng *rand.Rand, data []byte) []byte {
	out := append([]byte{}, data...)
	switch rng.Intn(4) {
	case 0: // flip random bytes
		for k := 0; k < 1+rng.Intn(4); k++ {
			out[rng.Intn(len(out))] ^= byte(1 << uint(rng.Intn(8)))
		}
	case 1: // truncate
		out = out[:rng.Intn(len(out))]
	case 2: // splice garbage
		pos := rng.Intn(len(out))
		g := make([]byte, 1+rng.Intn(16))
		rng.Read(g)
		out = append(out[:pos:pos], g...)
	case 3: // duplicate a window
		if len(out) > 4 {
			pos := rng.Intn(len(out) - 2)
			out = append(out[:pos:pos], out[pos:]...)
		}
	}
	return out
}

func noPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: decoder panicked: %v", name, r)
		}
	}()
	fn()
}

func TestIntDecodersSurviveCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	opts := DefaultOptions()
	for _, tc := range intSchemes {
		vs := tc.gen(rng, 300)
		encoded, err := EncodeIntsWith(nil, tc.id, vs, opts)
		if err != nil {
			continue
		}
		for trial := 0; trial < 200; trial++ {
			bad := mutate(rng, encoded)
			if len(bad) == 0 {
				continue
			}
			noPanic(t, tc.id.String(), func() {
				_, _ = DecodeInts(bad, 300)
				_, _ = DecodeInts(bad, 1) // wrong count too
			})
		}
	}
}

func TestFloatDecodersSurviveCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	opts := DefaultOptions()
	for _, tc := range floatSchemes {
		vs := tc.gen(rng, 300)
		encoded, err := EncodeFloatsWith(nil, tc.id, vs, opts)
		if err != nil {
			continue
		}
		for trial := 0; trial < 200; trial++ {
			bad := mutate(rng, encoded)
			if len(bad) == 0 {
				continue
			}
			noPanic(t, tc.id.String(), func() {
				_, _ = DecodeFloats(bad, 300)
			})
		}
	}
}

func TestBytesDecodersSurviveCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	opts := DefaultOptions()
	for _, tc := range bytesSchemes {
		vs := tc.gen(rng, 200)
		encoded, err := EncodeBytesWith(nil, tc.id, vs, opts)
		if err != nil {
			continue
		}
		for trial := 0; trial < 200; trial++ {
			bad := mutate(rng, encoded)
			if len(bad) == 0 {
				continue
			}
			noPanic(t, tc.id.String(), func() {
				_, _ = DecodeBytes(bad, 200)
			})
		}
	}
}

func TestBoolDecodersSurviveCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for _, id := range []SchemeID{PlainBool, SparseBool, Roaring} {
		vs := genBools(rng, 5000, 0.3)
		encoded, err := EncodeBoolsWith(nil, id, vs)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			bad := mutate(rng, encoded)
			if len(bad) == 0 {
				continue
			}
			noPanic(t, id.String(), func() {
				_, _ = DecodeBools(bad, 5000)
			})
		}
	}
}

func TestNullableDecodersSurviveCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	opts := DefaultOptions()
	n := 200
	vs := make([]int64, n)
	valid := boolsBitmap(n, func(i int) bool { return i%3 != 0 })
	for i := range vs {
		vs[i] = rng.Int63n(1000)
	}
	encoded, err := EncodeNullableInts(nil, vs, valid, opts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		bad := mutate(rng, encoded)
		if len(bad) == 0 {
			continue
		}
		noPanic(t, "nullable", func() {
			_, _, _ = DecodeNullableInts(bad, n)
		})
	}
}

// boolsBitmap builds a bitmap from a predicate.
func boolsBitmap(n int, pred func(int) bool) *bitutil.Bitmap {
	b := bitutil.NewBitmap(n)
	for i := 0; i < n; i++ {
		if pred(i) {
			b.Set(i)
		}
	}
	return b
}
