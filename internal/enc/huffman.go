package enc

import (
	"container/heap"
	"encoding/binary"
	"sort"

	"bullion/internal/bitutil"
)

// Huffman (Table 2): entropy coding for integers drawn from a small
// alphabet, assigning shorter codes to more frequent values. Canonical
// codes keep the header compact: only (symbol, code length) pairs are
// stored and both sides rebuild identical codebooks.
//
// payload := nSym(uvarint) { symbol(varint) codeLen(1B) }* bitstream
//
// Not applicable above maxHuffmanSymbols distinct values.

const maxHuffmanSymbols = 512

type huffNode struct {
	freq        int
	sym         int64
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int           { return len(h) }
func (h huffHeap) Less(i, j int) bool { return h[i].freq < h[j].freq }
func (h huffHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x any)        { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// huffCode is a canonical code assignment for one symbol.
type huffCode struct {
	sym    int64
	length int
	code   uint64 // MSB-first canonical code
}

func buildHuffmanCodes(vs []int64) ([]huffCode, bool) {
	freq := make(map[int64]int, maxHuffmanSymbols+1)
	for _, v := range vs {
		freq[v]++
		if len(freq) > maxHuffmanSymbols {
			return nil, false
		}
	}
	if len(freq) == 0 {
		return nil, true
	}
	h := make(huffHeap, 0, len(freq))
	for sym, f := range freq {
		h = append(h, &huffNode{freq: f, sym: sym})
	}
	heap.Init(&h)
	if h.Len() == 1 {
		// Single symbol: assign a 1-bit code.
		return []huffCode{{sym: h[0].sym, length: 1}}, true
	}
	for h.Len() > 1 {
		a := heap.Pop(&h).(*huffNode)
		b := heap.Pop(&h).(*huffNode)
		heap.Push(&h, &huffNode{freq: a.freq + b.freq, left: a, right: b})
	}
	root := h[0]
	var codes []huffCode
	var walk func(n *huffNode, depth int)
	walk = func(n *huffNode, depth int) {
		if n.left == nil {
			codes = append(codes, huffCode{sym: n.sym, length: depth})
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	assignCanonical(codes)
	return codes, true
}

// assignCanonical sorts codes by (length, symbol) and assigns canonical
// code values.
func assignCanonical(codes []huffCode) {
	sort.Slice(codes, func(i, j int) bool {
		if codes[i].length != codes[j].length {
			return codes[i].length < codes[j].length
		}
		return codes[i].sym < codes[j].sym
	})
	var code uint64
	prevLen := 0
	for i := range codes {
		code <<= uint(codes[i].length - prevLen)
		codes[i].code = code
		code++
		prevLen = codes[i].length
	}
}

func encodeHuffmanInts(dst []byte, vs []int64) ([]byte, error) {
	codes, ok := buildHuffmanCodes(vs)
	if !ok {
		return nil, ErrNotApplicable
	}
	dst = binary.AppendUvarint(dst, uint64(len(codes)))
	bySym := make(map[int64]huffCode, len(codes))
	for _, c := range codes {
		dst = binary.AppendVarint(dst, c.sym)
		dst = append(dst, byte(c.length))
		bySym[c.sym] = c
	}
	w := bitutil.NewWriter(nil)
	for _, v := range vs {
		c := bySym[v]
		// Write MSB-first so canonical prefix decoding works.
		for b := c.length - 1; b >= 0; b-- {
			w.WriteBit(c.code&(1<<uint(b)) != 0)
		}
	}
	return append(dst, w.Bytes()...), nil
}

func decodeHuffmanInts(dst []int64, src []byte) ([]int64, error) {
	nSym, sz := binary.Uvarint(src)
	if sz <= 0 || nSym > maxHuffmanSymbols {
		return nil, corruptf("huffman: bad symbol count")
	}
	src = src[sz:]
	codes := make([]huffCode, nSym)
	for i := range codes {
		sym, sz := binary.Varint(src)
		if sz <= 0 || len(src) < sz+1 {
			return nil, corruptf("huffman: truncated codebook")
		}
		codes[i] = huffCode{sym: sym, length: int(src[sz])}
		if codes[i].length <= 0 || codes[i].length > 64 {
			return nil, corruptf("huffman: bad code length %d", codes[i].length)
		}
		src = src[sz+1:]
	}
	assignCanonical(codes)
	type key struct {
		length int
		code   uint64
	}
	table := make(map[key]int64, len(codes))
	for _, c := range codes {
		table[key{c.length, c.code}] = c.sym
	}
	r := bitutil.NewReader(src)
	for i := range dst {
		var code uint64
		length := 0
		for {
			bit, err := r.ReadBit()
			if err != nil {
				return nil, corruptf("huffman: bitstream exhausted at value %d", i)
			}
			code = code<<1 | b2u(bit)
			length++
			if sym, ok := table[key{length, code}]; ok {
				dst[i] = sym
				break
			}
			if length > 64 {
				return nil, corruptf("huffman: no code matches at value %d", i)
			}
		}
	}
	return dst, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
