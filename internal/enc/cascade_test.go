package enc

import (
	"math/rand"
	"strings"
	"testing"
)

// TestCatalogCoverage asserts that every encoding in the paper's Table 2
// catalog is implemented and exercisable — the tab2 experiment's
// correctness backbone.
func TestCatalogCoverage(t *testing.T) {
	all := []SchemeID{
		Plain, BitPack, Varint, ZigZagVar, RLE, Dict, Delta, DeltaDelta,
		FOR, PFOR, FastBP128, Constant, MainlyConst, Huffman, BitShuffle,
		Chunked,
		PlainF, GorillaF, ChimpF, ALPF, PseudoDec, ConstantF, ChunkedF,
		PlainB, DictB, FSST, ChunkedB, ConstantB,
		PlainBool, SparseBool, Roaring,
		Nullable, Sentinel,
	}
	seen := map[SchemeID]bool{}
	for _, id := range all {
		if seen[id] {
			t.Fatalf("duplicate scheme id %d (%v)", uint8(id), id)
		}
		seen[id] = true
		if strings.HasPrefix(id.String(), "scheme(") {
			t.Errorf("scheme %d has no catalog name", uint8(id))
		}
	}
	if len(all) != 33 {
		t.Fatalf("catalog has %d entries, want 33", len(all))
	}
}

// TestSelectorMatchesDistribution checks the selector nominates the
// expected family for hand-built distributions.
func TestSelectorMatchesDistribution(t *testing.T) {
	opts := DefaultOptions()
	rng := rand.New(rand.NewSource(17))
	cases := []struct {
		name string
		gen  func(*rand.Rand, int) []int64
		want map[SchemeID]bool // acceptable winners
	}{
		{"runs", genRuns, map[SchemeID]bool{RLE: true, Dict: true, Huffman: true}},
		{"sorted", genSorted, map[SchemeID]bool{Delta: true, FOR: true, PFOR: true, FastBP128: true}},
		{"lowcard", genLowCardinality, map[SchemeID]bool{Dict: true, RLE: true, Huffman: true}},
		{"mainly-const", genMainlyConstant, map[SchemeID]bool{MainlyConst: true, RLE: true, Dict: true, Huffman: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			vs := c.gen(rng, 8192)
			id := chooseIntScheme(vs, opts, 0)
			if !c.want[id] {
				t.Errorf("selector picked %v for %s data", id, c.name)
			}
		})
	}
}

// TestCascadeNeverMuchWorseThanPlain guards the selector's fallback: the
// chosen encoding must not exceed Plain by more than the framing overhead.
func TestCascadeNeverMuchWorseThanPlain(t *testing.T) {
	opts := DefaultOptions()
	rng := rand.New(rand.NewSource(23))
	for _, tc := range intSchemes {
		vs := tc.gen(rng, 4096)
		plain, _ := EncodeIntsWith(nil, Plain, vs, opts)
		chosen, err := EncodeInts(nil, vs, opts)
		if err != nil {
			t.Fatalf("%v data: %v", tc.id, err)
		}
		if float64(len(chosen)) > 1.1*float64(len(plain))+64 {
			t.Errorf("%v data: cascade produced %d bytes vs plain %d",
				tc.id, len(chosen), len(plain))
		}
	}
}

// TestCascadeDepthAblation verifies deeper cascades compress at least as
// well as depth 0 on composite-friendly data — the §2.6 recursion-depth
// question the paper raises.
func TestCascadeDepthAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	vs := genRuns(rng, 16384)
	var sizes []int
	for depth := 0; depth <= 3; depth++ {
		opts := DefaultOptions()
		opts.MaxDepth = depth
		encoded, err := EncodeInts(nil, vs, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeInts(encoded, len(vs))
		if err != nil {
			t.Fatal(err)
		}
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("depth %d: corrupted roundtrip", depth)
			}
		}
		sizes = append(sizes, len(encoded))
	}
	if sizes[1] > sizes[0] {
		t.Errorf("depth 1 (%d bytes) worse than depth 0 (%d bytes)", sizes[1], sizes[0])
	}
	t.Logf("cascade depth ablation on run data: %v bytes", sizes)
}

// TestAllowedRestriction checks catalog ablation support.
func TestAllowedRestriction(t *testing.T) {
	opts := DefaultOptions()
	opts.Allowed = map[SchemeID]bool{Plain: true, Varint: true}
	rng := rand.New(rand.NewSource(5))
	vs := genRuns(rng, 2048)
	encoded, err := EncodeInts(nil, vs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if id := SchemeID(encoded[0]); id != Plain && id != Varint {
		t.Fatalf("restricted selector picked %v", id)
	}
}

func TestObjectiveWeights(t *testing.T) {
	// A read-heavy objective should penalize Chunked (expensive decode)
	// relative to a size-only objective.
	sizeOnly := &Options{MaxDepth: 2, SampleSize: 1024}
	readHeavy := &Options{MaxDepth: 2, SampleSize: 1024, ReadWeight: 10}
	c := intCosts[Chunked]
	if objective(100, c, readHeavy) <= objective(100, c, sizeOnly) {
		t.Fatal("read weight did not increase Chunked's cost")
	}
}

func TestSampleIntsPreservesRuns(t *testing.T) {
	vs := make([]int64, 100000)
	for i := range vs {
		vs[i] = int64(i / 100) // long runs
	}
	sample := sampleInts(vs, 1024)
	if len(sample) > 1024 {
		t.Fatalf("sample too large: %d", len(sample))
	}
	s := statsOf(sample)
	if s.runs*3 > s.n {
		t.Fatalf("sampling destroyed run structure: %d runs in %d values", s.runs, s.n)
	}
	short := []int64{1, 2, 3}
	if got := sampleInts(short, 1024); len(got) != 3 {
		t.Fatalf("short input should be returned whole")
	}
}
