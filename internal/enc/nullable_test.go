package enc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bullion/internal/bitutil"
)

func TestNullableRoundTrip(t *testing.T) {
	opts := DefaultOptions()
	rng := rand.New(rand.NewSource(3))
	for _, nullRate := range []float64{0, 0.01, 0.5, 1} {
		n := 1000
		vs := make([]int64, n)
		valid := bitutil.NewBitmap(n)
		for i := range vs {
			if rng.Float64() >= nullRate {
				valid.Set(i)
				vs[i] = int64(rng.Intn(1000))
			}
		}
		encoded, err := EncodeNullableInts(nil, vs, valid, opts)
		if err != nil {
			t.Fatalf("nullRate=%v: %v", nullRate, err)
		}
		got, gotValid, err := DecodeNullableInts(encoded, n)
		if err != nil {
			t.Fatalf("nullRate=%v: %v", nullRate, err)
		}
		for i := 0; i < n; i++ {
			if gotValid.Get(i) != valid.Get(i) {
				t.Fatalf("nullRate=%v: validity %d mismatch", nullRate, i)
			}
			if valid.Get(i) && got[i] != vs[i] {
				t.Fatalf("nullRate=%v: value %d = %d, want %d", nullRate, i, got[i], vs[i])
			}
		}
	}
}

func TestSentinelChosenWhenDomainHasGap(t *testing.T) {
	opts := DefaultOptions()
	n := 100
	vs := make([]int64, n)
	valid := bitutil.NewBitmap(n)
	for i := range vs {
		if i%10 != 0 {
			valid.Set(i)
			vs[i] = int64(i + 1) // positive values: -1 free as sentinel
		}
	}
	encoded, err := EncodeNullableInts(nil, vs, valid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if SchemeID(encoded[0]) != Sentinel {
		t.Fatalf("scheme = %v, want Sentinel", SchemeID(encoded[0]))
	}
	got, gotValid, err := DecodeNullableInts(encoded, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if gotValid.Get(i) != valid.Get(i) {
			t.Fatalf("validity %d mismatch", i)
		}
		if valid.Get(i) && got[i] != vs[i] {
			t.Fatalf("value %d = %d, want %d", i, got[i], vs[i])
		}
	}
}

func TestNullableWrapperWhenNoSentinelFree(t *testing.T) {
	opts := DefaultOptions()
	// Occupy all four candidate sentinels so the wrapper must be used.
	vs := []int64{-1, 0, -9223372036854775808, 9223372036854775807, 5}
	valid := bitutil.NewBitmap(len(vs))
	valid.SetRange(0, 4) // index 4 is null
	encoded, err := EncodeNullableInts(nil, vs, valid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if SchemeID(encoded[0]) != Nullable {
		t.Fatalf("scheme = %v, want Nullable", SchemeID(encoded[0]))
	}
	got, gotValid, err := DecodeNullableInts(encoded, len(vs))
	if err != nil {
		t.Fatal(err)
	}
	if gotValid.Get(4) {
		t.Fatal("null position reported valid")
	}
	for i := 0; i < 4; i++ {
		if !gotValid.Get(i) || got[i] != vs[i] {
			t.Fatalf("value %d = %d (valid=%v), want %d", i, got[i], gotValid.Get(i), vs[i])
		}
	}
}

func TestDecodeNullablePlainStream(t *testing.T) {
	// A non-wrapped stream decodes as all-valid.
	opts := DefaultOptions()
	vs := []int64{1, 2, 3}
	encoded, err := EncodeInts(nil, vs, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, valid, err := DecodeNullableInts(encoded, 3)
	if err != nil {
		t.Fatal(err)
	}
	if valid.Count() != 3 {
		t.Fatalf("valid count = %d, want 3", valid.Count())
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestNullableProperty(t *testing.T) {
	opts := DefaultOptions()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		vs := make([]int64, n)
		valid := bitutil.NewBitmap(n)
		for i := range vs {
			if rng.Intn(4) > 0 {
				valid.Set(i)
				vs[i] = rng.Int63n(1 << 40)
			}
		}
		encoded, err := EncodeNullableInts(nil, vs, valid, opts)
		if err != nil {
			return false
		}
		got, gotValid, err := DecodeNullableInts(encoded, n)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if gotValid.Get(i) != valid.Get(i) {
				return false
			}
			if valid.Get(i) && got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
