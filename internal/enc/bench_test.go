package enc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Per-scheme decode microbenchmarks: the decode-bound scan regime in
// BENCH_scan.json bottoms out in these inner loops, so each scheme gets a
// GB/s number (SetBytes counts decoded output bytes, 8 per value) and an
// allocs/op count. Fixed-width kernel decodes (FixedBitWidth, FOR,
// SIMDFastPFOR, SIMDFastBP128, DeltaDelta) must stay at 0 allocs/op —
// CI enforces the ceiling on BenchmarkDecode/FixedBitWidth and
// BenchmarkDecode/FOR. Results are recorded in BENCH_scan.json under
// "decode"; regenerate with:
//
//	go test -run xxx -bench BenchmarkDecode -benchmem ./internal/enc
const decodeBenchN = 8192

// decodeBenchCases pairs every integer scheme with data it compresses
// well, mirroring intSchemes but sized for steady-state decode.
var decodeBenchCases = []struct {
	id  SchemeID
	gen func(rng *rand.Rand, n int) []int64
}{
	{Plain, genUniform},
	{BitPack, genSmallNonNeg},
	{Varint, genSmallNonNeg},
	{ZigZagVar, genSmallSigned},
	{RLE, genRuns},
	{Dict, genLowCardinality},
	{Delta, genSorted},
	{DeltaDelta, genTimestamps},
	{FOR, genClustered},
	{PFOR, genClusteredWithOutliers},
	{FastBP128, genSmallSigned},
	{Constant, genConstant},
	{MainlyConst, genMainlyConstant},
	{Huffman, genLowCardinality},
	{BitShuffle, genSmallNonNeg},
	{Chunked, genUniform},
}

func BenchmarkDecode(b *testing.B) {
	opts := DefaultOptions()
	for _, tc := range decodeBenchCases {
		b.Run(tc.id.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(41))
			vs := tc.gen(rng, decodeBenchN)
			encoded, err := EncodeIntsWith(nil, tc.id, vs, opts)
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]int64, decodeBenchN)
			b.SetBytes(8 * decodeBenchN)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeIntsInto(dst, encoded); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, fc := range []struct {
		id  SchemeID
		gen func(rng *rand.Rand, n int) []float64
	}{
		{PlainF, genFloatsUniform},
		{GorillaF, genFloatsWalk},
		{ChimpF, genFloatsWalk},
	} {
		b.Run(fc.id.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(43))
			vs := fc.gen(rng, decodeBenchN)
			encoded, err := EncodeFloatsWith(nil, fc.id, vs, opts)
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]float64, decodeBenchN)
			b.SetBytes(8 * decodeBenchN)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeFloatsInto(dst, encoded); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// genTimestamps produces millisecond-spaced timestamps with small jitter —
// the metrics-shaped workload delta-of-delta is built for.
func genTimestamps(rng *rand.Rand, n int) []int64 {
	vs := make([]int64, n)
	cur := int64(1_700_000_000_000)
	for i := range vs {
		cur += 1000 + int64(rng.Intn(9)) - 4
		vs[i] = cur
	}
	return vs
}

func genFloatsUniform(rng *rand.Rand, n int) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.Float64frombits(rng.Uint64())
	}
	return vs
}

// genFloatsWalk is a slowly drifting gauge: successive values share most
// mantissa bits, the regime Gorilla/Chimp compress.
func genFloatsWalk(rng *rand.Rand, n int) []float64 {
	vs := make([]float64, n)
	cur := 100.0
	for i := range vs {
		cur += float64(rng.Intn(17)-8) * 0.25
		vs[i] = cur
	}
	return vs
}

// BenchmarkUnpackWidths isolates the raw bit-unpack kernel per width
// band (the inner loop of FixedBitWidth/FOR/PFOR/FastBP128).
func BenchmarkUnpackWidths(b *testing.B) {
	for _, w := range []int{1, 7, 20, 33, 57, 63} {
		b.Run(fmt.Sprintf("width_%d", w), func(b *testing.B) {
			rng := rand.New(rand.NewSource(47))
			vs := make([]int64, decodeBenchN)
			limit := int64(1)<<uint(w) - 1
			if w == 63 {
				limit = math.MaxInt64
			}
			for i := range vs {
				vs[i] = rng.Int63n(limit + 1)
			}
			encoded, err := EncodeIntsWith(nil, BitPack, vs, DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]int64, decodeBenchN)
			b.SetBytes(8 * decodeBenchN)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeIntsInto(dst, encoded); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
