package enc

import (
	"math"
	"math/rand"
	"testing"

	"bullion/internal/bitutil"
)

// Kernel/scalar equivalence: every batch decode kernel must produce
// byte-identical output to the byte-at-a-time reference path it replaced.
// bitutil.ScalarKernels routes Unpack/UnpackInt64/UnpackZigZagInt64 and
// the Gorilla/Chimp peek loops through the old scalar implementations;
// decoding the same stream twice with the hook flipped must agree on
// every element, at every length — the odd lengths exercise the kernels'
// group, fast-path, and tail regions, and the shifted source copies
// exercise every byte alignment of the packed payload.

// equivLengths hits each kernel region: below one 8-value group, exactly
// at group boundaries, straddling them, across the 128-value PFOR/BP128
// block size, and large enough that the word-at-a-time fast path runs for
// hundreds of iterations before the scalar tail takes over.
var equivLengths = []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65,
	127, 128, 129, 255, 256, 257, 1000, 1023, 1024, 1025}

// decodeBoth decodes one stream with the kernels and with the scalar
// reference and requires identical results. The stream is also re-decoded
// from copies shifted to every offset within a word, so unaligned
// binary.LittleEndian.Uint64 loads are exercised at each base alignment
// (pages land at arbitrary byte offsets inside a column chunk).
func decodeBothInts(t *testing.T, label string, encoded []byte, n int) {
	t.Helper()
	kernel, err := DecodeIntsInto(make([]int64, n), encoded)
	if err != nil {
		t.Fatalf("%s: kernel decode: %v", label, err)
	}
	bitutil.ScalarKernels = true
	scalar, err := DecodeIntsInto(make([]int64, n), encoded)
	bitutil.ScalarKernels = false
	if err != nil {
		t.Fatalf("%s: scalar decode: %v", label, err)
	}
	for i := range kernel {
		if kernel[i] != scalar[i] {
			t.Fatalf("%s: value %d: kernel %d != scalar %d (scheme %v)",
				label, i, kernel[i], scalar[i], TopScheme(encoded))
		}
	}
	for _, off := range []int{1, 3, 7} {
		shifted := make([]byte, off+len(encoded))
		copy(shifted[off:], encoded)
		got, err := DecodeIntsInto(make([]int64, n), shifted[off:])
		if err != nil {
			t.Fatalf("%s: offset %d decode: %v", label, off, err)
		}
		for i := range got {
			if got[i] != scalar[i] {
				t.Fatalf("%s: offset %d value %d: %d != %d", label, off, i, got[i], scalar[i])
			}
		}
	}
}

func TestKernelScalarEquivalenceInts(t *testing.T) {
	opts := DefaultOptions()
	for _, tc := range intSchemes {
		t.Run(tc.id.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			for _, n := range equivLengths {
				vs := tc.gen(rng, n)
				encoded, err := EncodeIntsWith(nil, tc.id, vs, opts)
				if err != nil {
					t.Fatalf("n=%d: encode: %v", n, err)
				}
				decodeBothInts(t, tc.id.String(), encoded, n)
			}
		})
	}
}

func TestKernelScalarEquivalenceFloats(t *testing.T) {
	opts := DefaultOptions()
	for _, tc := range floatSchemes {
		t.Run(tc.id.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(37))
			for _, n := range equivLengths {
				vs := tc.gen(rng, n)
				encoded, err := EncodeFloatsWith(nil, tc.id, vs, opts)
				if err != nil {
					t.Fatalf("n=%d: encode: %v", n, err)
				}
				kernel, err := DecodeFloatsInto(make([]float64, n), encoded)
				if err != nil {
					t.Fatalf("n=%d: kernel decode: %v", n, err)
				}
				bitutil.ScalarKernels = true
				scalar, err := DecodeFloatsInto(make([]float64, n), encoded)
				bitutil.ScalarKernels = false
				if err != nil {
					t.Fatalf("n=%d: scalar decode: %v", n, err)
				}
				for i := range kernel {
					if math.Float64bits(kernel[i]) != math.Float64bits(scalar[i]) {
						t.Fatalf("n=%d value %d: kernel %v != scalar %v", n, i, kernel[i], scalar[i])
					}
				}
			}
		})
	}
}

// The cascade may pick any scheme, so the equivalence property must also
// hold on arbitrary selector output, not just per-scheme corpora.
func TestKernelScalarEquivalenceCascade(t *testing.T) {
	opts := DefaultOptions()
	opts.SampleSize = 128
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		gen := intSchemes[trial%len(intSchemes)].gen
		n := equivLengths[rng.Intn(len(equivLengths))]
		vs := gen(rng, n)
		encoded, err := EncodeInts(nil, vs, opts)
		if err != nil {
			t.Fatal(err)
		}
		decodeBothInts(t, TopScheme(encoded).String(), encoded, n)
	}
}
