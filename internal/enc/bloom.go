package enc

import (
	"encoding/binary"
	"fmt"
)

// This file implements a split-block Bloom filter (SBBF) over byte-string
// values — the membership half of the statistics system. The writer builds
// one filter per byte-string page and one per byte-string column; the
// footer persists them (v3) and the scan planner probes them to prove a
// string-equality predicate cannot match a page, a file, or (through the
// dataset manifest) a whole member file.
//
// The structure is the Parquet/Impala SBBF: the bit array is split into
// 256-bit blocks (8 x u32 words) and every value sets exactly one bit in
// each word of one block, chosen by eight odd "salt" multipliers over the
// value's 64-bit hash. A probe therefore touches a single cache line, and
// build order never matters — inserting the same value set in any order
// yields identical bits, which is what keeps the pipelined writer's output
// deterministic.
//
// Sizing: BloomDefaultBitsPerValue (12) bits per distinct value gives a
// false-positive rate of roughly 0.5% (Parquet's published SBBF curve:
// ~1% at 10.5 bits/value, ~0.4% at 12.5). False positives only cost a
// wasted read — membership pruning is conservative by construction.

// bloomMagic heads every serialized filter.
const bloomMagic = "SBF1"

// bloomHeaderSize is the serialized prefix: magic + u32 block count.
const bloomHeaderSize = 8

// bloomBlockBytes is the on-disk size of one 256-bit block.
const bloomBlockBytes = 32

// BloomDefaultBitsPerValue sizes a filter when the caller does not choose:
// ~0.5% false positives.
const BloomDefaultBitsPerValue = 12

// maxBloomBlocks bounds deserialized filters so a corrupt header cannot
// drive an unbounded allocation (1 << 20 blocks = 32 MiB).
const maxBloomBlocks = 1 << 20

// bloomSalts are the eight odd constants of the SBBF block hash; word i of
// the chosen block gets bit (h32 * bloomSalts[i]) >> 27.
var bloomSalts = [8]uint32{
	0x47b6137b, 0x44974d91, 0x8824ad5b, 0xa2b7289d,
	0x705495c7, 0x2df1424b, 0x9efc4947, 0x5c6bfb31,
}

// BloomHash is the 64-bit value hash every filter probe uses: FNV-64a
// over the bytes, then a splitmix64 finalizer. FNV alone avalanches too
// weakly for the multiply-shift block index (sequential keys land in
// correlated blocks and the measured false-positive rate blows past the
// sizing target); the finalizer restores full bit diffusion. Callers that
// probe many filters with the same value set should hash once and use
// AddHash/ContainsHash.
func BloomHash(v []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range v {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// bloomBlockIndex maps a hash to a block by multiply-shift over the high
// 32 bits, so any block count works (no power-of-two requirement).
func bloomBlockIndex(h uint64, nBlocks int) int {
	return int((h >> 32) * uint64(nBlocks) >> 32)
}

// BloomBuilder accumulates values into an SBBF sized at construction.
type BloomBuilder struct {
	words []uint32 // 8 per block
}

// NewBloomBuilder sizes a filter for nDistinct values at bitsPerValue bits
// each (<= 0 selects BloomDefaultBitsPerValue). The block count is exact
// for the requested budget, minimum one block.
func NewBloomBuilder(nDistinct, bitsPerValue int) *BloomBuilder {
	if bitsPerValue <= 0 {
		bitsPerValue = BloomDefaultBitsPerValue
	}
	bits := nDistinct * bitsPerValue
	nBlocks := (bits + 8*bloomBlockBytes - 1) / (8 * bloomBlockBytes)
	if nBlocks < 1 {
		nBlocks = 1
	}
	if nBlocks > maxBloomBlocks {
		nBlocks = maxBloomBlocks
	}
	return &BloomBuilder{words: make([]uint32, 8*nBlocks)}
}

// Add inserts a value.
func (b *BloomBuilder) Add(v []byte) { b.AddHash(BloomHash(v)) }

// AddHash inserts a pre-hashed value.
func (b *BloomBuilder) AddHash(h uint64) {
	base := 8 * bloomBlockIndex(h, len(b.words)/8)
	x := uint32(h)
	for i, salt := range bloomSalts {
		b.words[base+i] |= 1 << ((x * salt) >> 27)
	}
}

// Marshal serializes the filter: magic, block count, then the block words
// little-endian. Append-friendly: the result is self-contained.
func (b *BloomBuilder) Marshal() []byte {
	out := make([]byte, bloomHeaderSize+4*len(b.words))
	copy(out, bloomMagic)
	binary.LittleEndian.PutUint32(out[4:], uint32(len(b.words)/8))
	for i, w := range b.words {
		binary.LittleEndian.PutUint32(out[bloomHeaderSize+4*i:], w)
	}
	return out
}

// Bloom is a zero-copy probe view over a serialized filter: Contains reads
// words straight out of the underlying buffer, so opening one per probe
// batch costs only the header validation.
type Bloom struct {
	data    []byte // word region, past the header
	nBlocks int
}

// OpenBloom validates the header and returns a probe view over data. The
// buffer is retained, not copied.
func OpenBloom(data []byte) (*Bloom, error) {
	if len(data) < bloomHeaderSize {
		return nil, fmt.Errorf("enc: bloom of %d bytes is shorter than its header", len(data))
	}
	if string(data[:4]) != bloomMagic {
		return nil, fmt.Errorf("enc: bad bloom magic %q", data[:4])
	}
	n := int(binary.LittleEndian.Uint32(data[4:]))
	if n < 1 || n > maxBloomBlocks {
		return nil, fmt.Errorf("enc: bloom block count %d out of range", n)
	}
	if want := bloomHeaderSize + n*bloomBlockBytes; len(data) != want {
		return nil, fmt.Errorf("enc: bloom is %d bytes, want %d for %d blocks", len(data), want, n)
	}
	return &Bloom{data: data[bloomHeaderSize:], nBlocks: n}, nil
}

// Contains reports whether v may have been added (false positives at the
// sizing target; never false negatives).
func (f *Bloom) Contains(v []byte) bool { return f.ContainsHash(BloomHash(v)) }

// ContainsHash probes with a pre-computed BloomHash.
func (f *Bloom) ContainsHash(h uint64) bool {
	base := 4 * 8 * bloomBlockIndex(h, f.nBlocks)
	x := uint32(h)
	for i, salt := range bloomSalts {
		w := binary.LittleEndian.Uint32(f.data[base+4*i:])
		if w&(1<<((x*salt)>>27)) == 0 {
			return false
		}
	}
	return true
}

// NumBlocks returns the filter's 256-bit block count.
func (f *Bloom) NumBlocks() int { return f.nBlocks }
