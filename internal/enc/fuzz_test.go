package enc

import (
	"bytes"
	"encoding/binary"
	"testing"

	"bullion/internal/bitutil"
)

// Fuzz round-trips for the encoding entry points the core format is built
// on. Each target does two things per input:
//
//  1. derives a value slice from the fuzz bytes, encodes it with the
//     default cascade, decodes it back, and requires equality — the
//     selector must never pick a lossy scheme;
//  2. feeds the raw fuzz bytes to the decoder as a malformed stream and
//     requires an error or a clean result — never a panic (the decoders
//     face disk corruption and crossed streams in production).

// fuzzInts derives an int64 slice: 8-byte little-endian words, with the
// leftover tail bytes sign-extended so small payloads still vary.
func fuzzInts(data []byte) []int64 {
	var vs []int64
	for len(data) >= 8 {
		vs = append(vs, int64(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	for _, b := range data {
		vs = append(vs, int64(int8(b)))
	}
	return vs
}

func FuzzCascadeRoundTrip(f *testing.F) {
	// Seeds mirror the unit-test corpora: runs, sorted, clustered,
	// low-cardinality, negatives, and raw garbage for the decode half.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0})
	seed := make([]byte, 0, 256)
	for i := 0; i < 32; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, uint64(i*1000))
	}
	f.Add(seed)
	run := make([]byte, 0, 256)
	for i := 0; i < 32; i++ {
		run = binary.LittleEndian.AppendUint64(run, uint64(i/8))
	}
	f.Add(run)
	f.Add([]byte{0xff, 0xfe, 0x80, 0x01, 0x7f, 0x00, 0xaa, 0x55, 0x13})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 { // keep per-exec cost bounded
			data = data[:4096]
		}
		vs := fuzzInts(data)
		encoded, err := EncodeInts(nil, vs, DefaultOptions())
		if err != nil {
			t.Fatalf("EncodeInts(%d values): %v", len(vs), err)
		}
		decoded, err := DecodeInts(encoded, len(vs))
		if err != nil {
			t.Fatalf("DecodeInts round-trip: %v", err)
		}
		if len(decoded) != len(vs) {
			t.Fatalf("round-trip length %d != %d", len(decoded), len(vs))
		}
		for i := range vs {
			if decoded[i] != vs[i] {
				t.Fatalf("value %d: %d != %d (scheme %v)", i, decoded[i], vs[i], TopScheme(encoded))
			}
		}
		// Malformed-input half: raw fuzz bytes as a stream must not panic
		// (errors are expected and fine).
		for _, n := range []int{0, 1, len(vs), 7, 1024} {
			_, _ = DecodeInts(data, n)
		}
		// Nullable wrapper over the same values.
		valid := boolsFromBytes(data, len(vs))
		bm := bitmapOf(valid)
		nenc, err := EncodeNullableInts(nil, vs, bm, DefaultOptions())
		if err != nil {
			t.Fatalf("EncodeNullableInts: %v", err)
		}
		nvs, nvalid, err := DecodeNullableInts(nenc, len(vs))
		if err != nil {
			t.Fatalf("DecodeNullableInts round-trip: %v", err)
		}
		for i := range vs {
			if nvalid.Get(i) != valid[i] {
				t.Fatalf("validity %d flipped", i)
			}
			if valid[i] && nvs[i] != vs[i] {
				t.Fatalf("nullable value %d: %d != %d", i, nvs[i], vs[i])
			}
		}
		_, _, _ = DecodeNullableInts(data, 64)
	})
}

// fuzzBytesValues splits data into variable-length items using the first
// bytes as lengths, exercising Plain/Dict/Constant/FSST paths.
func fuzzBytesValues(data []byte) [][]byte {
	var vs [][]byte
	for len(data) > 0 {
		l := int(data[0]) % 17
		data = data[1:]
		if l > len(data) {
			l = len(data)
		}
		vs = append(vs, data[:l:l])
		data = data[l:]
	}
	return vs
}

func FuzzBytesRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("\x04news\x05video\x03ads\x04news\x05video"))
	f.Add(bytes.Repeat([]byte{3, 'a', 'b', 'c'}, 40)) // constant column
	f.Add([]byte{16, 'h', 't', 't', 'p', ':', '/', '/', 'e', 'x', 'a', 'm', 'p', 'l', 'e', '.', 'c'})
	f.Add([]byte{0xff, 0x00, 0x01, 0x80, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 { // keep per-exec cost bounded
			data = data[:4096]
		}
		vs := fuzzBytesValues(data)
		encoded, err := EncodeBytes(nil, vs, DefaultOptions())
		if err != nil {
			t.Fatalf("EncodeBytes(%d items): %v", len(vs), err)
		}
		decoded, err := DecodeBytes(encoded, len(vs))
		if err != nil {
			t.Fatalf("DecodeBytes round-trip: %v", err)
		}
		if len(decoded) != len(vs) {
			t.Fatalf("round-trip length %d != %d", len(decoded), len(vs))
		}
		for i := range vs {
			if !bytes.Equal(decoded[i], vs[i]) {
				t.Fatalf("item %d: %q != %q (scheme %v)", i, decoded[i], vs[i], TopScheme(encoded))
			}
		}
		for _, n := range []int{0, 1, len(vs), 513} {
			_, _ = DecodeBytes(data, n)
		}
	})
}

// FuzzBloomRoundTrip builds a split-block bloom filter from fuzz-derived
// byte strings, round-trips it through Marshal/OpenBloom, and requires
// every inserted value to probe true (no false negatives, ever). The raw
// fuzz bytes are also fed to OpenBloom as a hostile serialized filter:
// errors are fine, panics are not.
func FuzzBloomRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte("\x04news\x05video\x03ads\x04news"), uint8(12))
	f.Add(bytes.Repeat([]byte{1, 'x'}, 64), uint8(1))
	f.Add([]byte{'S', 'B', 'F', '1', 0xff, 0xff, 0xff, 0xff}, uint8(4))

	f.Fuzz(func(t *testing.T, data []byte, bits uint8) {
		if len(data) > 4096 { // keep per-exec cost bounded
			data = data[:4096]
		}
		vs := fuzzBytesValues(data)
		b := NewBloomBuilder(len(vs), int(bits)%24)
		for _, v := range vs {
			b.Add(v)
		}
		blob := b.Marshal()
		fl, err := OpenBloom(blob)
		if err != nil {
			t.Fatalf("OpenBloom rejected its own Marshal: %v", err)
		}
		for i, v := range vs {
			if !fl.Contains(v) {
				t.Fatalf("value %d (%q) missing: bloom has false negatives", i, v)
			}
		}
		// Hostile deserialization half: arbitrary bytes must never panic,
		// and an accepted filter must stay in bounds when probed.
		if fl, err := OpenBloom(data); err == nil {
			for _, v := range vs {
				_ = fl.Contains(v)
			}
			_ = fl.ContainsHash(0)
			_ = fl.ContainsHash(^uint64(0))
		}
	})
}

// fuzzTimestamps derives a DeltaDelta-friendly series: each fuzz byte
// perturbs a running delta, so the values look like jittered timestamps
// (the scheme's target distribution) while still reaching hostile shapes
// — sign flips, zero deltas, widening gaps — as the fuzzer mutates bytes.
func fuzzTimestamps(data []byte) []int64 {
	vs := make([]int64, 0, len(data))
	cur := int64(1_700_000_000_000)
	delta := int64(1000)
	for _, b := range data {
		delta += int64(int8(b))
		cur += delta
		vs = append(vs, cur)
	}
	return vs
}

// FuzzDeltaDeltaRoundTrip drives the DeltaDelta scheme directly (the
// cascade fuzz above only reaches it when the selector picks it): encode
// a fuzz-derived timestamp series with the scheme forced, require exact
// reconstruction through the second-order prefix sums, and feed the raw
// bytes back as a hostile DeltaDelta stream that must error, not panic.
func FuzzDeltaDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{0}, 100))           // constant delta: empty dd stream
	f.Add([]byte{1, 255, 3, 253, 5, 251, 7, 249}) // oscillating deltas
	f.Add(bytes.Repeat([]byte{127, 129}, 64))     // max jitter both directions
	f.Add([]byte{0x80, 0x7f, 0x00, 0xff, 0x13, 0x37})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 { // keep per-exec cost bounded
			data = data[:4096]
		}
		vs := fuzzTimestamps(data)
		if len(vs) > 0 { // the scheme refuses empty input by design
			encoded, err := EncodeIntsWith(nil, DeltaDelta, vs, DefaultOptions())
			if err != nil {
				// The running delta can only drift ~128 per step from a
				// 1.7e12 base, so overflow (the one legitimate refusal)
				// is unreachable here.
				t.Fatalf("EncodeIntsWith(DeltaDelta, %d values): %v", len(vs), err)
			}
			if TopScheme(encoded) != DeltaDelta {
				t.Fatalf("forced scheme encoded as %v", TopScheme(encoded))
			}
			decoded, err := DecodeInts(encoded, len(vs))
			if err != nil {
				t.Fatalf("DecodeInts round-trip: %v", err)
			}
			for i := range vs {
				if decoded[i] != vs[i] {
					t.Fatalf("value %d: %d != %d", i, decoded[i], vs[i])
				}
			}
		}
		// Malformed-input half: arbitrary bytes as a DeltaDelta payload.
		hostile := append([]byte{byte(DeltaDelta)}, data...)
		for _, n := range []int{0, 1, 2, len(vs), 1024} {
			_, _ = DecodeInts(hostile, n)
		}
	})
}

func boolsFromBytes(data []byte, n int) []bool {
	vs := make([]bool, n)
	for i := range vs {
		if len(data) == 0 {
			break
		}
		vs[i] = data[i%len(data)]&(1<<(i%8)) != 0
	}
	return vs
}

func bitmapOf(vs []bool) *bitutil.Bitmap {
	bm := bitutil.NewBitmap(len(vs))
	for i, v := range vs {
		if v {
			bm.Set(i)
		}
	}
	return bm
}

func FuzzBoolsRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0xff, 0xff}, uint16(100))       // all-true runs
	f.Add([]byte{0x00, 0x00}, uint16(2000))      // sparse/empty
	f.Add([]byte{0x01, 0x00, 0x00}, uint16(900)) // single set bit (Roaring/Sparse)
	f.Add([]byte{0xaa, 0x55, 0x13, 0x37}, uint16(257))

	f.Fuzz(func(t *testing.T, data []byte, nRaw uint16) {
		if len(data) > 4096 { // keep per-exec cost bounded
			data = data[:4096]
		}
		n := int(nRaw) % 4096
		vs := boolsFromBytes(data, n)
		encoded, err := EncodeBools(nil, vs, DefaultOptions())
		if err != nil {
			t.Fatalf("EncodeBools(%d): %v", n, err)
		}
		decoded, err := DecodeBools(encoded, n)
		if err != nil {
			t.Fatalf("DecodeBools round-trip: %v", err)
		}
		for i := range vs {
			if decoded[i] != vs[i] {
				t.Fatalf("bit %d flipped (scheme %v)", i, TopScheme(encoded))
			}
		}
		for _, m := range []int{0, 1, n, 777} {
			_, _ = DecodeBools(data, m)
		}
	})
}
