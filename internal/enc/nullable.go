package enc

import (
	"encoding/binary"

	"bullion/internal/bitutil"
)

// Null handling (Table 2: Nullable, SparseBool-as-subcolumn, Sentinel).
//
// Nullable wraps any integer value stream with a validity sub-column: one
// stream of null indicators (typically SparseBool — nulls are rare in
// feature data) plus a dense stream of the non-null values.
//
// Sentinel instead designates an unused integer as the in-band null marker,
// keeping a single sub-column; it applies only when the domain has a free
// value.
//
//	Nullable payload := n(uvarint) childValidity(bool stream) childValues
//	Sentinel payload := sentinel(varint) childValues

// EncodeNullableInts encodes vs where valid.Get(i) reports whether vs[i] is
// non-null. Null positions in vs are ignored.
func EncodeNullableInts(dst []byte, vs []int64, valid *bitutil.Bitmap, opts *Options) ([]byte, error) {
	if valid.Len() != len(vs) {
		return nil, corruptf("nullable: validity length %d != values %d", valid.Len(), len(vs))
	}
	// Prefer Sentinel when the value domain leaves a gap; otherwise wrap.
	if s, ok := findSentinel(vs, valid); ok && opts.allows(Sentinel) {
		return encodeSentinelInts(dst, vs, valid, s, opts)
	}
	return encodeNullableInts(dst, vs, valid, opts)
}

// DecodeNullableInts decodes an n-value nullable stream, returning the
// values (null positions hold 0) and the validity bitmap.
func DecodeNullableInts(src []byte, n int) ([]int64, *bitutil.Bitmap, error) {
	vals := make([]int64, n)
	vp := getBoolScratch(n)
	defer putBoolScratch(vp)
	if err := DecodeNullableIntsInto(vals, *vp, src); err != nil {
		return nil, nil, err
	}
	valid := bitutil.NewBitmap(n)
	for i, ok := range *vp {
		if ok {
			valid.Set(i)
		}
	}
	return vals, valid, nil
}

// DecodeNullableIntsInto decodes a nullable stream of len(vals) values
// into vals and valid (which must have equal length); null positions hold
// 0. Every element of both slices is overwritten, so callers may pass
// recycled slices.
func DecodeNullableIntsInto(vals []int64, valid []bool, src []byte) error {
	if len(valid) != len(vals) {
		return corruptf("nullable: validity length %d != values %d", len(valid), len(vals))
	}
	if len(src) == 0 {
		return corruptf("nullable: empty stream")
	}
	id := SchemeID(src[0])
	payload := src[1:]
	switch id {
	case Nullable:
		return decodeNullableIntsInto(vals, valid, payload)
	case Sentinel:
		return decodeSentinelIntsInto(vals, valid, payload)
	default:
		// A plain value stream: everything valid.
		if _, err := DecodeIntsInto(vals, src); err != nil {
			return err
		}
		for i := range valid {
			valid[i] = true
		}
		return nil
	}
}

func encodeNullableInts(dst []byte, vs []int64, valid *bitutil.Bitmap, opts *Options) ([]byte, error) {
	dst = append(dst, byte(Nullable))
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	indicators := make([]bool, len(vs))
	var dense []int64
	for i, v := range vs {
		if valid.Get(i) {
			indicators[i] = true
			dense = append(dense, v)
		}
	}
	validityStream, err := EncodeBools(nil, indicators, opts)
	if err != nil {
		return nil, err
	}
	dst = appendChild(dst, validityStream)
	child, err := encodeIntsDepth(nil, dense, opts, 1)
	if err != nil {
		return nil, err
	}
	return appendChild(dst, child), nil
}

func decodeNullableIntsInto(vals []int64, valid []bool, src []byte) error {
	n := len(vals)
	n64, sz := binary.Uvarint(src)
	if sz <= 0 || int(n64) != n {
		return corruptf("nullable: count mismatch: stream %d, caller %d", n64, n)
	}
	src = src[sz:]
	validityStream, src, err := readChild(src)
	if err != nil {
		return err
	}
	valueStream, _, err := readChild(src)
	if err != nil {
		return err
	}
	if _, err := DecodeBoolsInto(valid, validityStream); err != nil {
		return err
	}
	nDense := 0
	for _, ok := range valid {
		if ok {
			nDense++
		}
	}
	dp := getInt64Scratch(nDense)
	defer putInt64Scratch(dp)
	dense, err := DecodeIntsInto(*dp, valueStream)
	if err != nil {
		return err
	}
	d := 0
	for i, ok := range valid {
		if ok {
			vals[i] = dense[d]
			d++
		} else {
			vals[i] = 0
		}
	}
	return nil
}

// findSentinel looks for a value absent from the valid values of vs,
// preferring small magnitudes so downstream varint/FOR stay cheap.
func findSentinel(vs []int64, valid *bitutil.Bitmap) (int64, bool) {
	present := make(map[int64]bool, len(vs))
	for i, v := range vs {
		if valid.Get(i) {
			present[v] = true
		}
	}
	for _, cand := range []int64{-1, 0, -9223372036854775808, 9223372036854775807} {
		if !present[cand] {
			return cand, true
		}
	}
	return 0, false
}

func encodeSentinelInts(dst []byte, vs []int64, valid *bitutil.Bitmap, sentinel int64, opts *Options) ([]byte, error) {
	dst = append(dst, byte(Sentinel))
	dst = binary.AppendVarint(dst, sentinel)
	filled := make([]int64, len(vs))
	for i, v := range vs {
		if valid.Get(i) {
			filled[i] = v
		} else {
			filled[i] = sentinel
		}
	}
	child, err := encodeIntsDepth(nil, filled, opts, 1)
	if err != nil {
		return nil, err
	}
	return appendChild(dst, child), nil
}

func decodeSentinelIntsInto(vals []int64, valid []bool, src []byte) error {
	sentinel, sz := binary.Varint(src)
	if sz <= 0 {
		return corruptf("sentinel: bad sentinel value")
	}
	valueStream, _, err := readChild(src[sz:])
	if err != nil {
		return err
	}
	if _, err := DecodeIntsInto(vals, valueStream); err != nil {
		return err
	}
	for i, v := range vals {
		if v != sentinel {
			valid[i] = true
		} else {
			valid[i] = false
			vals[i] = 0
		}
	}
	return nil
}
