package enc

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

var bytesSchemes = []struct {
	id  SchemeID
	gen func(rng *rand.Rand, n int) [][]byte
}{
	{PlainB, genRandomBlobs},
	{DictB, genRepeatedBlobs},
	{FSST, genURLs},
	{ChunkedB, genURLs},
	{ConstantB, genConstantBlobs},
}

func genRandomBlobs(rng *rand.Rand, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, rng.Intn(40))
		rng.Read(b)
		out[i] = b
	}
	return out
}

func genRepeatedBlobs(rng *rand.Rand, n int) [][]byte {
	domain := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma"), []byte(""), []byte("delta-very-long-value")}
	out := make([][]byte, n)
	for i := range out {
		out[i] = domain[rng.Intn(len(domain))]
	}
	return out
}

func genURLs(rng *rand.Rand, n int) [][]byte {
	hosts := []string{"example.com", "bytedance.com", "video.cdn.net"}
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("https://%s/watch?v=%08x&t=%d",
			hosts[rng.Intn(len(hosts))], rng.Uint32(), rng.Intn(600)))
	}
	return out
}

func genConstantBlobs(rng *rand.Rand, n int) [][]byte {
	v := []byte("same-value")
	out := make([][]byte, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestBytesSchemesRoundTrip(t *testing.T) {
	opts := DefaultOptions()
	for _, tc := range bytesSchemes {
		t.Run(tc.id.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			for _, n := range []int{0, 1, 2, 100, 500} {
				vs := tc.gen(rng, n)
				encoded, err := EncodeBytesWith(nil, tc.id, vs, opts)
				if err != nil {
					if n == 0 && tc.id == FSST {
						continue // FSST cannot train on an empty corpus
					}
					t.Fatalf("n=%d: encode: %v", n, err)
				}
				got, err := DecodeBytes(encoded, n)
				if err != nil {
					t.Fatalf("n=%d: decode: %v", n, err)
				}
				for i := range vs {
					if !bytes.Equal(got[i], vs[i]) {
						t.Fatalf("n=%d value %d = %q, want %q", n, i, got[i], vs[i])
					}
				}
			}
		})
	}
}

func TestFSSTCompressesStructuredStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vs := genURLs(rng, 2000)
	opts := DefaultOptions()
	plain, _ := EncodeBytesWith(nil, PlainB, vs, opts)
	fsst, err := EncodeBytesWith(nil, FSST, vs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(fsst)) > 0.8*float64(len(plain)) {
		t.Fatalf("FSST %d > 80%% of plain %d on URLs", len(fsst), len(plain))
	}
}

func TestDictBytesCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vs := genRepeatedBlobs(rng, 2000)
	opts := DefaultOptions()
	plain, _ := EncodeBytesWith(nil, PlainB, vs, opts)
	dict, err := EncodeBytesWith(nil, DictB, vs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(dict)) > 0.25*float64(len(plain)) {
		t.Fatalf("DictB %d > 25%% of plain %d on repeated blobs", len(dict), len(plain))
	}
}

func TestBytesCascadeProperty(t *testing.T) {
	opts := DefaultOptions()
	f := func(seed int64, kind uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		vs := bytesSchemes[int(kind)%len(bytesSchemes)].gen(rng, n)
		encoded, err := EncodeBytes(nil, vs, opts)
		if err != nil {
			return false
		}
		got, err := DecodeBytes(encoded, n)
		if err != nil {
			return false
		}
		for i := range vs {
			if !bytes.Equal(got[i], vs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesDecodeCorrupt(t *testing.T) {
	if _, err := DecodeBytes([]byte{}, 2); err == nil {
		t.Fatal("empty stream decoded")
	}
	if _, err := DecodeBytes([]byte{byte(GorillaF)}, 2); err == nil {
		t.Fatal("float scheme id decoded as bytes")
	}
	opts := DefaultOptions()
	vs := genURLs(rand.New(rand.NewSource(1)), 50)
	encoded, _ := EncodeBytesWith(nil, FSST, vs, opts)
	if _, err := DecodeBytes(encoded[:4], 50); err == nil {
		t.Fatal("truncated FSST stream decoded")
	}
}

func TestFSSTEmptyAndEscapeHeavy(t *testing.T) {
	opts := DefaultOptions()
	// Values with bytes the table has never seen force the escape path.
	vs := [][]byte{{}, {0xFF, 0xFE, 0xFD}, []byte("aaa"), {0x00}}
	encoded, err := EncodeBytesWith(nil, FSST, vs, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(encoded, len(vs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if !bytes.Equal(got[i], vs[i]) {
			t.Fatalf("value %d = %q, want %q", i, got[i], vs[i])
		}
	}
}
