// Package enc implements Bullion's cascading encoding framework (paper §2.6,
// Table 2): a catalog of column encodings behind modular, composable
// interfaces, plus a sampling-based selector that picks a scheme per stream
// and recurses into the integer/float/byte sub-streams that composite
// schemes (RLE, dictionary, delta, ...) produce.
//
// Every encoded stream is self-describing:
//
//	stream  := schemeID(1 byte) payload
//	child   := uvarint(len(stream)) stream      // embedded sub-streams
//
// Decoders receive the value count from the caller (pages record counts in
// their headers), never from the stream itself.
package enc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// SchemeID identifies an encoding in the catalog. IDs are part of the file
// format; never renumber them.
type SchemeID uint8

// The encoding catalog (Table 2 of the paper).
const (
	// Integer schemes.
	Plain       SchemeID = 1  // Trivial: raw little-endian 64-bit
	BitPack     SchemeID = 2  // FixedBitWidth over non-negative values
	Varint      SchemeID = 3  // LEB128
	ZigZagVar   SchemeID = 4  // ZigZag + LEB128
	RLE         SchemeID = 5  // run values + run lengths sub-streams
	Dict        SchemeID = 6  // dictionary + codes sub-streams
	Delta       SchemeID = 7  // first value + zigzag deltas sub-stream
	FOR         SchemeID = 8  // frame-of-reference + bit-packing
	PFOR        SchemeID = 9  // patched FOR, 128-value blocks
	FastBP128   SchemeID = 10 // per-128-block bit packing
	Constant    SchemeID = 11 // single repeated value
	MainlyConst SchemeID = 12 // constant + exceptions (a.k.a. Frequency)
	Huffman     SchemeID = 13 // canonical Huffman for small-range ints
	BitShuffle  SchemeID = 14 // bit transpose + flate
	Chunked     SchemeID = 15 // flate over raw chunks (zstd substitute)
	DeltaDelta  SchemeID = 16 // zigzag delta-of-delta (timestamps, monotone ids)

	// Float schemes.
	PlainF    SchemeID = 32 // raw IEEE754 bits
	GorillaF  SchemeID = 33 // XOR leading/trailing-zero compression
	ChimpF    SchemeID = 34 // Chimp variant of Gorilla
	ALPF      SchemeID = 35 // adaptive lossless decimal-as-int, FOR cascade
	PseudoDec SchemeID = 36 // pseudodecimal mantissa/exponent + exceptions
	ConstantF SchemeID = 37 // single repeated float
	ChunkedF  SchemeID = 38 // flate over raw floats

	// Byte-string schemes.
	PlainB    SchemeID = 64 // uvarint length + bytes
	DictB     SchemeID = 65 // blob dictionary + codes
	FSST      SchemeID = 66 // static symbol table substring compression
	ChunkedB  SchemeID = 67 // flate over concatenated blobs + length stream
	ConstantB SchemeID = 68 // single repeated blob

	// Boolean / bitmap schemes.
	PlainBool  SchemeID = 96 // bit-packed
	SparseBool SchemeID = 97 // positions of the rare polarity
	Roaring    SchemeID = 98 // roaring containers (array/bitmap/run)

	// Null-handling wrappers (Table 2: Nullable, Sentinel). These wrap a
	// value stream together with validity information.
	Nullable SchemeID = 120 // validity bitmap sub-stream + dense values
	Sentinel SchemeID = 121 // in-band sentinel marks nulls
)

// String returns the catalog name of the scheme.
func (id SchemeID) String() string {
	if n, ok := schemeNames[id]; ok {
		return n
	}
	return fmt.Sprintf("scheme(%d)", uint8(id))
}

var schemeNames = map[SchemeID]string{
	Plain: "Plain", BitPack: "FixedBitWidth", Varint: "Varint",
	ZigZagVar: "ZigZag", RLE: "RLE", Dict: "Dictionary", Delta: "Delta",
	FOR: "FOR", PFOR: "SIMDFastPFOR", FastBP128: "SIMDFastBP128",
	Constant: "Constant", MainlyConst: "MainlyConstant", Huffman: "Huffman",
	BitShuffle: "BitShuffle", Chunked: "Chunked", DeltaDelta: "DeltaDelta",
	PlainF: "PlainFloat", GorillaF: "Gorilla", ChimpF: "Chimp",
	ALPF: "ALP", PseudoDec: "Pseudodecimal", ConstantF: "ConstantFloat",
	ChunkedF: "ChunkedFloat",
	PlainB:   "PlainBytes", DictB: "DictionaryBytes", FSST: "FSST",
	ChunkedB: "ChunkedBytes", ConstantB: "ConstantBytes",
	PlainBool: "PlainBool", SparseBool: "SparseBool", Roaring: "RoaringBitmap",
	Nullable: "Nullable", Sentinel: "Sentinel",
}

// Errors shared across the package.
var (
	ErrUnknownScheme = errors.New("enc: unknown scheme id")
	ErrCorrupt       = errors.New("enc: corrupt stream")
	ErrNotApplicable = errors.New("enc: scheme not applicable to this data")
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Options steers the cascade selector. The zero value is NOT usable; call
// DefaultOptions.
type Options struct {
	// MaxDepth bounds encoding recursion. Depth 0 encodes the top-level
	// stream; sub-streams at depth >= MaxDepth use terminal schemes only.
	// The paper (and BtrBlocks) recommend 1-2 levels.
	MaxDepth int
	// SampleSize is the number of values trial-encoded when selecting.
	SampleSize int
	// Weights form Nimble's linear objective over compressed size and
	// relative encode/decode cost. Size weight is implicitly 1.
	WriteWeight float64 // weight on relative encode cost
	ReadWeight  float64 // weight on relative decode cost
	// Allowed restricts the candidate set when non-nil (catalog ablations).
	Allowed map[SchemeID]bool
	// Cache, when non-nil, amortizes top-level scheme selection across the
	// pages these Options encode (see SelectorCache). Because the cache is
	// stateful and not concurrency-safe, it must not be shared across
	// columns; the core writer clones Options per column and installs one
	// cache in each clone.
	Cache *SelectorCache
	// ResampleDrift is the relative encoded-size drift beyond which a
	// cached selector decision is re-sampled (0 selects
	// DefaultResampleDrift). A negative value tells the core writer not to
	// install selector caches at all, restoring per-page selection.
	ResampleDrift float64
}

// DefaultOptions returns the selector configuration used by the Bullion
// writer unless overridden: two cascade levels, 1024-value samples, and a
// mildly read-optimized objective (training reads dominate ML workloads).
func DefaultOptions() *Options {
	return &Options{MaxDepth: 2, SampleSize: 1024, WriteWeight: 0.02, ReadWeight: 0.1}
}

func (o *Options) allows(id SchemeID) bool {
	return o.Allowed == nil || o.Allowed[id]
}

// appendChild embeds a complete child stream (length-prefixed).
func appendChild(dst, stream []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(stream)))
	return append(dst, stream...)
}

// readChild splits one length-prefixed child stream off src.
func readChild(src []byte) (stream, rest []byte, err error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 || n > uint64(len(src)-sz) {
		return nil, nil, corruptf("bad child stream length")
	}
	return src[sz : sz+int(n)], src[sz+int(n):], nil
}

// AppendLengthPrefixed appends stream to dst with a uvarint length prefix —
// the same framing composite schemes use for their sub-streams, exported
// for page layouts that compose multiple encoded streams.
func AppendLengthPrefixed(dst, stream []byte) []byte {
	return appendChild(dst, stream)
}

// ReadLengthPrefixed splits one length-prefixed stream off src.
func ReadLengthPrefixed(src []byte) (stream, rest []byte, err error) {
	return readChild(src)
}

// TopScheme returns the scheme id of an encoded stream (its first byte),
// for statistics and footer bookkeeping.
func TopScheme(stream []byte) SchemeID {
	if len(stream) == 0 {
		return 0
	}
	return SchemeID(stream[0])
}
