package enc

import (
	"encoding/binary"
	"sort"
)

// FSST (Table 2, [32]): Fast Static Symbol Table compression. A table of up
// to 255 symbols (each 1-8 bytes) is trained on the corpus; encoding
// replaces the longest matching symbol with a 1-byte code, escaping
// literal bytes with code 255. Optimized for structured short strings
// (URLs, emails, IDs) while keeping random access per value.
//
// This is a faithful re-implementation of the format and greedy matcher;
// the training loop is a simplified frequency-based variant of the
// original's iterative refinement (three rounds of counting + reselection).
//
// payload := nSym(1B) { symLen(1B) symBytes }*
//            childCompressedLens totalCompressed(uvarint) compressedBytes

const (
	fsstMaxSymbols = 255
	fsstEscape     = 255
	fsstMaxSymLen  = 8
	fsstRounds     = 3
)

// fsstTable is a trained symbol table.
type fsstTable struct {
	symbols [][]byte
	// index from first byte to candidate symbol ids, longest first.
	byFirst [256][]uint8
}

func (t *fsstTable) build() {
	for i := range t.byFirst {
		t.byFirst[i] = t.byFirst[i][:0]
	}
	order := make([]int, len(t.symbols))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(t.symbols[order[a]]) > len(t.symbols[order[b]])
	})
	for _, id := range order {
		s := t.symbols[id]
		if len(s) == 0 {
			continue
		}
		t.byFirst[s[0]] = append(t.byFirst[s[0]], uint8(id))
	}
}

// match returns the id and length of the longest symbol matching a prefix
// of data, or (-1, 0).
func (t *fsstTable) match(data []byte) (int, int) {
	if len(data) == 0 {
		return -1, 0
	}
	for _, id := range t.byFirst[data[0]] {
		s := t.symbols[id]
		if len(s) <= len(data) && string(s) == string(data[:len(s)]) {
			return int(id), len(s)
		}
	}
	return -1, 0
}

// trainFSST learns a symbol table from sample text with a few rounds of
// count-and-reselect, seeding from frequent bytes and growing to longer
// substrings (the shape of the original FSST algorithm).
func trainFSST(corpus [][]byte) *fsstTable {
	t := &fsstTable{}
	// Seed: most frequent single bytes.
	var byteFreq [256]int
	for _, v := range corpus {
		for _, b := range v {
			byteFreq[b]++
		}
	}
	type cand struct {
		s    string
		gain int
	}
	var seeds []cand
	for b := 0; b < 256; b++ {
		if byteFreq[b] > 0 {
			seeds = append(seeds, cand{string([]byte{byte(b)}), byteFreq[b]})
		}
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].gain > seeds[j].gain })
	if len(seeds) > fsstMaxSymbols {
		seeds = seeds[:fsstMaxSymbols]
	}
	for _, c := range seeds {
		t.symbols = append(t.symbols, []byte(c.s))
	}
	t.build()

	for round := 0; round < fsstRounds; round++ {
		// Count how often each current symbol is used and which symbol
		// pairs are adjacent; adjacent pairs become longer candidates.
		gain := map[string]int{}
		for _, v := range corpus {
			var prev []byte
			for off := 0; off < len(v); {
				id, l := t.match(v[off:])
				var cur []byte
				if id >= 0 {
					cur = t.symbols[id]
				} else {
					cur = v[off : off+1]
					l = 1
				}
				gain[string(cur)] += len(cur) - 1 // bytes saved vs escape cost
				if prev != nil && len(prev)+len(cur) <= fsstMaxSymLen {
					merged := string(prev) + string(cur)
					gain[merged] += len(merged) - 1
				}
				prev = cur
				off += l
			}
		}
		var cands []cand
		for s, g := range gain {
			if len(s) >= 1 && len(s) <= fsstMaxSymLen && g > 0 {
				cands = append(cands, cand{s, g})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].gain != cands[j].gain {
				return cands[i].gain > cands[j].gain
			}
			return cands[i].s < cands[j].s
		})
		if len(cands) > fsstMaxSymbols {
			cands = cands[:fsstMaxSymbols]
		}
		t.symbols = t.symbols[:0]
		for _, c := range cands {
			t.symbols = append(t.symbols, []byte(c.s))
		}
		t.build()
	}
	return t
}

// compress encodes one value with the table.
func (t *fsstTable) compress(dst, v []byte) []byte {
	for off := 0; off < len(v); {
		id, l := t.match(v[off:])
		if id >= 0 {
			dst = append(dst, byte(id))
			off += l
			continue
		}
		dst = append(dst, fsstEscape, v[off])
		off++
	}
	return dst
}

// decompress decodes exactly compLen compressed bytes.
func (t *fsstTable) decompress(dst, comp []byte) ([]byte, error) {
	for i := 0; i < len(comp); {
		c := comp[i]
		if c == fsstEscape {
			if i+1 >= len(comp) {
				return nil, corruptf("fsst: dangling escape")
			}
			dst = append(dst, comp[i+1])
			i += 2
			continue
		}
		if int(c) >= len(t.symbols) {
			return nil, corruptf("fsst: code %d beyond table of %d", c, len(t.symbols))
		}
		dst = append(dst, t.symbols[c]...)
		i++
	}
	return dst, nil
}

func encodeFSST(dst []byte, vs [][]byte, opts *Options, depth int) ([]byte, error) {
	sample := vs
	if len(sample) > 256 {
		sample = sample[:256]
	}
	t := trainFSST(sample)
	if len(t.symbols) == 0 {
		return nil, ErrNotApplicable
	}
	if len(t.symbols) > fsstMaxSymbols {
		t.symbols = t.symbols[:fsstMaxSymbols]
		t.build()
	}
	dst = append(dst, byte(len(t.symbols)))
	for _, s := range t.symbols {
		dst = append(dst, byte(len(s)))
		dst = append(dst, s...)
	}
	compLens := make([]int64, len(vs))
	var all []byte
	for i, v := range vs {
		before := len(all)
		all = t.compress(all, v)
		compLens[i] = int64(len(all) - before)
	}
	var err error
	if dst, err = encodeChildInts(dst, compLens, opts, depth+1); err != nil {
		return nil, err
	}
	dst = binary.AppendUvarint(dst, uint64(len(all)))
	return append(dst, all...), nil
}

func decodeFSST(dst [][]byte, src []byte) ([][]byte, error) {
	n := len(dst)
	if len(src) < 1 {
		return nil, corruptf("fsst: missing table size")
	}
	nSym := int(src[0])
	src = src[1:]
	t := &fsstTable{}
	for i := 0; i < nSym; i++ {
		if len(src) < 1 {
			return nil, corruptf("fsst: truncated table")
		}
		l := int(src[0])
		if l == 0 || l > fsstMaxSymLen || len(src) < 1+l {
			return nil, corruptf("fsst: bad symbol %d length %d", i, l)
		}
		t.symbols = append(t.symbols, src[1:1+l])
		src = src[1+l:]
	}
	lenStream, src, err := readChild(src)
	if err != nil {
		return nil, err
	}
	compLens, err := DecodeInts(lenStream, n)
	if err != nil {
		return nil, err
	}
	total, sz := binary.Uvarint(src)
	if sz <= 0 || total > uint64(len(src)-sz) {
		return nil, corruptf("fsst: bad corpus length")
	}
	comp := src[sz : sz+int(total)]
	off := 0
	for i, l := range compLens {
		if l < 0 || off+int(l) > len(comp) {
			return nil, corruptf("fsst: compressed lengths overflow corpus")
		}
		dec, err := t.decompress(nil, comp[off:off+int(l)])
		if err != nil {
			return nil, err
		}
		dst[i] = dec
		off += int(l)
	}
	return dst, nil
}
