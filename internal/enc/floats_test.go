package enc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var floatSchemes = []struct {
	id  SchemeID
	gen func(rng *rand.Rand, n int) []float64
}{
	{PlainF, genRandomFloats},
	{GorillaF, genTimeSeries},
	{ChimpF, genTimeSeries},
	{ALPF, genDecimals},
	{PseudoDec, genDecimals},
	{ConstantF, genConstantFloats},
	{ChunkedF, genRandomFloats},
}

func genRandomFloats(rng *rand.Rand, n int) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = rng.NormFloat64() * 1e6
	}
	return vs
}

func genTimeSeries(rng *rand.Rand, n int) []float64 {
	vs := make([]float64, n)
	cur := 100.0
	for i := range vs {
		cur += rng.NormFloat64() * 0.5
		vs[i] = cur
	}
	return vs
}

func genDecimals(rng *rand.Rand, n int) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = float64(rng.Intn(100000)) / 100 // two decimal places
	}
	return vs
}

func genConstantFloats(rng *rand.Rand, n int) []float64 {
	vs := make([]float64, n)
	c := rng.Float64()
	for i := range vs {
		vs[i] = c
	}
	return vs
}

func TestFloatSchemesRoundTrip(t *testing.T) {
	opts := DefaultOptions()
	for _, tc := range floatSchemes {
		t.Run(tc.id.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for _, n := range []int{0, 1, 2, 100, 1000} {
				vs := tc.gen(rng, n)
				encoded, err := EncodeFloatsWith(nil, tc.id, vs, opts)
				if err != nil {
					t.Fatalf("n=%d: encode: %v", n, err)
				}
				got, err := DecodeFloats(encoded, n)
				if err != nil {
					t.Fatalf("n=%d: decode: %v", n, err)
				}
				for i := range vs {
					if math.Float64bits(got[i]) != math.Float64bits(vs[i]) {
						t.Fatalf("n=%d: value %d = %v, want %v (lossless required)", n, i, got[i], vs[i])
					}
				}
			}
		})
	}
}

func TestFloatSpecialValues(t *testing.T) {
	opts := DefaultOptions()
	vs := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, math.SmallestNonzeroFloat64, 1.5, -2.25}
	for _, id := range []SchemeID{PlainF, GorillaF, ChimpF, ChunkedF} {
		encoded, err := EncodeFloatsWith(nil, id, vs, opts)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		got, err := DecodeFloats(encoded, len(vs))
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		for i := range vs {
			if math.Float64bits(got[i]) != math.Float64bits(vs[i]) {
				t.Fatalf("%v: value %d bits differ: %x vs %x", id, i,
					math.Float64bits(got[i]), math.Float64bits(vs[i]))
			}
		}
	}
}

func TestPseudoDecWithSparseExceptions(t *testing.T) {
	// Mostly decimals with a few special values: the exception path must be
	// bit-exact, including NaN and negative zero.
	opts := DefaultOptions()
	vs := make([]float64, 100)
	for i := range vs {
		vs[i] = float64(i) / 4
	}
	vs[10] = math.NaN()
	vs[20] = math.Inf(1)
	vs[30] = math.Copysign(0, -1)
	for _, id := range []SchemeID{PseudoDec, ALPF} {
		encoded, err := EncodeFloatsWith(nil, id, vs, opts)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		got, err := DecodeFloats(encoded, len(vs))
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		for i := range vs {
			if math.Float64bits(got[i]) != math.Float64bits(vs[i]) {
				t.Fatalf("%v: value %d bits %x, want %x", id, i,
					math.Float64bits(got[i]), math.Float64bits(vs[i]))
			}
		}
	}
}

func TestALPNotApplicableToNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vs := genRandomFloats(rng, 1000)
	if _, err := EncodeFloatsWith(nil, ALPF, vs, DefaultOptions()); err == nil {
		t.Fatal("ALP accepted non-decimal noise")
	}
}

func TestDecimalFor(t *testing.T) {
	cases := []struct {
		v    float64
		exp  int
		digs int64
	}{
		{1.5, 1, 15},
		{3.0, 0, 3},
		{0.25, 2, 25},
		{123.456, 3, 123456},
	}
	for _, c := range cases {
		e, d := decimalFor(c.v)
		if e != c.exp || d != c.digs {
			t.Errorf("decimalFor(%v) = (%d,%d), want (%d,%d)", c.v, e, d, c.exp, c.digs)
		}
	}
	if e, _ := decimalFor(math.NaN()); e != -1 {
		t.Error("decimalFor(NaN) should be -1")
	}
	if e, _ := decimalFor(math.Pi); e != -1 {
		t.Error("decimalFor(Pi) should fail within 18 digits of float64 precision")
	}
}

// Property: the float cascade is bit-exact for arbitrary bit patterns.
func TestFloatCascadeProperty(t *testing.T) {
	opts := DefaultOptions()
	opts.SampleSize = 64
	f := func(seed int64, kind uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300)
		vs := floatSchemes[int(kind)%len(floatSchemes)].gen(rng, n)
		encoded, err := EncodeFloats(nil, vs, opts)
		if err != nil {
			return false
		}
		got, err := DecodeFloats(encoded, n)
		if err != nil {
			return false
		}
		for i := range vs {
			if math.Float64bits(got[i]) != math.Float64bits(vs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGorillaCompressesTimeSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vs := genTimeSeries(rng, 4096)
	opts := DefaultOptions()
	plain, _ := EncodeFloatsWith(nil, PlainF, vs, opts)
	gorilla, err := EncodeFloatsWith(nil, GorillaF, vs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(gorilla) >= len(plain) {
		t.Fatalf("gorilla %d >= plain %d on a smooth series", len(gorilla), len(plain))
	}
	chimp, err := EncodeFloatsWith(nil, ChimpF, vs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(chimp) >= len(plain) {
		t.Fatalf("chimp %d >= plain %d on a smooth series", len(chimp), len(plain))
	}
}

func TestALPCompressesDecimals(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vs := genDecimals(rng, 4096)
	opts := DefaultOptions()
	plain, _ := EncodeFloatsWith(nil, PlainF, vs, opts)
	alp, err := EncodeFloatsWith(nil, ALPF, vs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(alp)) > 0.5*float64(len(plain)) {
		t.Fatalf("ALP %d > 50%% of plain %d on decimal data", len(alp), len(plain))
	}
}

func TestFloatDecodeCorrupt(t *testing.T) {
	if _, err := DecodeFloats([]byte{}, 3); err == nil {
		t.Fatal("empty stream decoded")
	}
	if _, err := DecodeFloats([]byte{byte(Plain)}, 3); err == nil {
		t.Fatal("int scheme id decoded as float")
	}
	opts := DefaultOptions()
	vs := genTimeSeries(rand.New(rand.NewSource(1)), 100)
	encoded, _ := EncodeFloatsWith(nil, GorillaF, vs, opts)
	if _, err := DecodeFloats(encoded[:8], 100); err == nil {
		t.Fatal("truncated gorilla stream decoded")
	}
}
