package enc

import (
	"encoding/binary"

	"bullion/internal/bitutil"
)

// EncodeInts appends an encoded stream for vs to dst, choosing the scheme
// with the cascade selector.
func EncodeInts(dst []byte, vs []int64, opts *Options) ([]byte, error) {
	return encodeIntsDepth(dst, vs, opts, 0)
}

// EncodeIntsWith appends an encoded stream using the given scheme. Composite
// schemes still cascade for their sub-streams.
func EncodeIntsWith(dst []byte, id SchemeID, vs []int64, opts *Options) ([]byte, error) {
	return encodeIntsWithDepth(dst, id, vs, opts, 0)
}

// DecodeInts decodes an n-value integer stream.
func DecodeInts(src []byte, n int) ([]int64, error) {
	out := make([]int64, n)
	return DecodeIntsInto(out, src)
}

// DecodeIntsInto decodes len(dst) values from src into dst.
func DecodeIntsInto(dst []int64, src []byte) ([]int64, error) {
	if len(src) == 0 {
		if len(dst) == 0 {
			return dst, nil
		}
		return nil, corruptf("empty stream for %d values", len(dst))
	}
	id := SchemeID(src[0])
	payload := src[1:]
	n := len(dst)
	switch id {
	case Plain:
		return decodePlainInts(dst, payload)
	case BitPack:
		return decodeBitPackInts(dst, payload)
	case Varint:
		return decodeVarints(dst, payload, false)
	case ZigZagVar:
		return decodeVarints(dst, payload, true)
	case RLE:
		return decodeRLEInts(dst, payload)
	case Dict:
		return decodeDictInts(dst, payload)
	case Delta:
		return decodeDeltaInts(dst, payload)
	case DeltaDelta:
		return decodeDeltaDeltaInts(dst, payload)
	case FOR:
		return decodeFORInts(dst, payload)
	case PFOR:
		return decodePFORInts(dst, payload)
	case FastBP128:
		return decodeBP128Ints(dst, payload)
	case Constant:
		return decodeConstantInts(dst, payload)
	case MainlyConst:
		return decodeMainlyConstInts(dst, payload)
	case Huffman:
		return decodeHuffmanInts(dst, payload)
	case BitShuffle:
		return decodeBitShuffleInts(dst, payload)
	case Chunked:
		return decodeChunkedInts(dst, payload)
	default:
		_ = n
		return nil, corruptf("%v is not an integer scheme", id)
	}
}

func encodeIntsDepth(dst []byte, vs []int64, opts *Options, depth int) ([]byte, error) {
	if depth == 0 && opts.Cache != nil {
		return opts.Cache.encodeInts(dst, vs, opts)
	}
	id := chooseIntScheme(vs, opts, depth)
	return encodeIntsWithDepth(dst, id, vs, opts, depth)
}

func encodeIntsWithDepth(dst []byte, id SchemeID, vs []int64, opts *Options, depth int) ([]byte, error) {
	dst = append(dst, byte(id))
	switch id {
	case Plain:
		return encodePlainInts(dst, vs), nil
	case BitPack:
		return encodeBitPackInts(dst, vs)
	case Varint:
		return encodeVarints(dst, vs, false)
	case ZigZagVar:
		return encodeVarints(dst, vs, true)
	case RLE:
		return encodeRLEInts(dst, vs, opts, depth)
	case Dict:
		return encodeDictInts(dst, vs, opts, depth)
	case Delta:
		return encodeDeltaInts(dst, vs, opts, depth)
	case DeltaDelta:
		return encodeDeltaDeltaInts(dst, vs, opts, depth)
	case FOR:
		return encodeFORInts(dst, vs)
	case PFOR:
		return encodePFORInts(dst, vs)
	case FastBP128:
		return encodeBP128Ints(dst, vs)
	case Constant:
		return encodeConstantInts(dst, vs)
	case MainlyConst:
		return encodeMainlyConstInts(dst, vs, opts, depth)
	case Huffman:
		return encodeHuffmanInts(dst, vs)
	case BitShuffle:
		return encodeBitShuffleInts(dst, vs)
	case Chunked:
		return encodeChunkedInts(dst, vs)
	default:
		return nil, corruptf("%v is not an integer scheme", id)
	}
}

// encodeChildInts encodes vs as a length-prefixed child stream.
func encodeChildInts(dst []byte, vs []int64, opts *Options, depth int) ([]byte, error) {
	child, err := encodeIntsDepth(nil, vs, opts, depth)
	if err != nil {
		return nil, err
	}
	return appendChild(dst, child), nil
}

// ---- Plain (Trivial) ----

func encodePlainInts(dst []byte, vs []int64) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

func decodePlainInts(dst []int64, src []byte) ([]int64, error) {
	if len(src) < 8*len(dst) {
		return nil, corruptf("plain ints: have %d bytes, need %d", len(src), 8*len(dst))
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return dst, nil
}

// ---- FixedBitWidth (BitPack) ----
//
// payload := width(1B) packedBits
// Applicable to non-negative inputs only; the selector checks.

func encodeBitPackInts(dst []byte, vs []int64) ([]byte, error) {
	p := getUint64Scratch(len(vs))
	defer putUint64Scratch(p)
	us := *p
	for i, v := range vs {
		if v < 0 {
			return nil, ErrNotApplicable
		}
		us[i] = uint64(v)
	}
	w := bitutil.MaxWidth(us)
	dst = append(dst, byte(w))
	return bitutil.Pack(dst, us, w), nil
}

func decodeBitPackInts(dst []int64, src []byte) ([]int64, error) {
	if len(src) < 1 {
		return nil, corruptf("bitpack: missing width")
	}
	w := int(src[0])
	if err := bitutil.UnpackInt64(dst, src[1:], w, 0); err != nil {
		return nil, corruptf("bitpack: %v", err)
	}
	return dst, nil
}

// ---- Varint (LEB128) / ZigZag ----

func encodeVarints(dst []byte, vs []int64, zigzag bool) ([]byte, error) {
	for _, v := range vs {
		var u uint64
		if zigzag {
			u = bitutil.ZigZag(v)
		} else {
			u = uint64(v)
		}
		dst = binary.AppendUvarint(dst, u)
	}
	return dst, nil
}

func decodeVarints(dst []int64, src []byte, zigzag bool) ([]int64, error) {
	off := 0
	for i := range dst {
		u, sz := binary.Uvarint(src[off:])
		if sz <= 0 {
			return nil, corruptf("varint: truncated at value %d", i)
		}
		off += sz
		if zigzag {
			dst[i] = bitutil.UnZigZag(u)
		} else {
			dst[i] = int64(u)
		}
	}
	return dst, nil
}

// ---- Constant ----

func encodeConstantInts(dst []byte, vs []int64) ([]byte, error) {
	if len(vs) == 0 {
		return binary.AppendVarint(dst, 0), nil
	}
	c := vs[0]
	for _, v := range vs {
		if v != c {
			return nil, ErrNotApplicable
		}
	}
	return binary.AppendVarint(dst, c), nil
}

func decodeConstantInts(dst []int64, src []byte) ([]int64, error) {
	c, sz := binary.Varint(src)
	if sz <= 0 {
		return nil, corruptf("constant: bad value")
	}
	fillInt64(dst, c)
	return dst, nil
}

// fillInt64 sets every element of dst to v, memset-style: seed one element
// and double the initialized prefix with copy, which the runtime turns
// into wide memmove operations instead of a per-value store loop.
func fillInt64(dst []int64, v int64) {
	if len(dst) == 0 {
		return
	}
	if bitutil.ScalarKernels {
		for i := range dst {
			dst[i] = v
		}
		return
	}
	dst[0] = v
	for filled := 1; filled < len(dst); filled *= 2 {
		copy(dst[filled:], dst[:filled])
	}
}

// ---- MainlyConstant (Frequency) ----
//
// payload := constant(varint) nExceptions(uvarint) childPositions childValues

func encodeMainlyConstInts(dst []byte, vs []int64, opts *Options, depth int) ([]byte, error) {
	if len(vs) == 0 {
		return nil, ErrNotApplicable
	}
	c := majorityValue(vs)
	var pos, exc []int64
	for i, v := range vs {
		if v != c {
			pos = append(pos, int64(i))
			exc = append(exc, v)
		}
	}
	dst = binary.AppendVarint(dst, c)
	dst = binary.AppendUvarint(dst, uint64(len(pos)))
	var err error
	if dst, err = encodeChildInts(dst, pos, opts, depth+1); err != nil {
		return nil, err
	}
	return encodeChildInts(dst, exc, opts, depth+1)
}

func decodeMainlyConstInts(dst []int64, src []byte) ([]int64, error) {
	c, sz := binary.Varint(src)
	if sz <= 0 {
		return nil, corruptf("mainlyconst: bad constant")
	}
	src = src[sz:]
	nExc, sz := binary.Uvarint(src)
	if sz <= 0 || nExc > uint64(len(dst)) {
		return nil, corruptf("mainlyconst: bad exception count")
	}
	src = src[sz:]
	posStream, src, err := readChild(src)
	if err != nil {
		return nil, err
	}
	excStream, _, err := readChild(src)
	if err != nil {
		return nil, err
	}
	pp := getInt64Scratch(int(nExc))
	defer putInt64Scratch(pp)
	pos, err := DecodeIntsInto(*pp, posStream)
	if err != nil {
		return nil, err
	}
	ep := getInt64Scratch(int(nExc))
	defer putInt64Scratch(ep)
	exc, err := DecodeIntsInto(*ep, excStream)
	if err != nil {
		return nil, err
	}
	fillInt64(dst, c)
	for i, p := range pos {
		if p < 0 || p >= int64(len(dst)) {
			return nil, corruptf("mainlyconst: exception position %d out of range", p)
		}
		dst[p] = exc[i]
	}
	return dst, nil
}

// majorityValue returns the most frequent value in vs (ties arbitrary).
func majorityValue(vs []int64) int64 {
	counts := make(map[int64]int, 64)
	best, bestN := vs[0], 0
	for _, v := range vs {
		counts[v]++
		if counts[v] > bestN {
			best, bestN = v, counts[v]
		}
	}
	return best
}

// ---- Chunked (flate over raw little-endian) ----

func encodeChunkedInts(dst []byte, vs []int64) ([]byte, error) {
	raw := encodePlainInts(nil, vs)
	return appendFlateChunks(dst, raw)
}

func decodeChunkedInts(dst []int64, src []byte) ([]int64, error) {
	raw, err := readFlateChunks(src, len(dst)*8)
	if err != nil {
		return nil, err
	}
	return decodePlainInts(dst, raw)
}

// ---- BitShuffle ----
//
// Transpose a matrix of values-by-bits so bits of equal significance are
// contiguous, then flate the transposed buffer. Low-entropy high bits
// become long zero runs.
//
// payload := width(1B) flateChunks(transposed)

func encodeBitShuffleInts(dst []byte, vs []int64) ([]byte, error) {
	up := getUint64Scratch(len(vs))
	defer putUint64Scratch(up)
	us := *up
	anyNeg := false
	for i, v := range vs {
		if v < 0 {
			anyNeg = true
		}
		us[i] = uint64(v)
	}
	w := 64
	if !anyNeg {
		w = bitutil.MaxWidth(us)
		if w == 0 {
			w = 1
		}
	}
	dst = append(dst, byte(w&0xff)) // 64 encodes as 64; width <= 64
	n := len(vs)
	tp := getByteScratch(bitutil.PackedLen(n*w, 1))
	defer putByteScratch(tp)
	trans := *tp
	clear(trans)
	for bit := 0; bit < w; bit++ {
		base := bit * n
		for i, u := range us {
			if u&(1<<uint(bit)) != 0 {
				p := base + i
				trans[p>>3] |= 1 << uint(p&7)
			}
		}
	}
	return appendFlateChunks(dst, trans)
}

func decodeBitShuffleInts(dst []int64, src []byte) ([]int64, error) {
	if len(src) < 1 {
		return nil, corruptf("bitshuffle: missing width")
	}
	w := int(src[0])
	if w == 0 || w > 64 {
		return nil, corruptf("bitshuffle: bad width %d", w)
	}
	n := len(dst)
	trans, err := readFlateChunks(src[1:], bitutil.PackedLen(n*w, 1))
	if err != nil {
		return nil, err
	}
	for i := range dst {
		dst[i] = 0
	}
	for bit := 0; bit < w; bit++ {
		base := bit * n
		for i := 0; i < n; i++ {
			p := base + i
			if trans[p>>3]&(1<<uint(p&7)) != 0 {
				dst[i] |= 1 << uint(bit)
			}
		}
	}
	return dst, nil
}

// intStats summarizes a []int64 for the selector.
type intStats struct {
	n          int
	min, max   int64
	distinct   int  // exact up to cap, else cap+1
	runs       int  // number of value runs
	sorted     bool // non-decreasing
	hasNeg     bool
	majorityN  int   // occurrences of the most common value
	deltaMin   int64 // min of successive deltas (valid when n > 1)
	deltaMax   int64
	deltaSafe  bool // no delta overflowed int64
	rangeWidth int  // bit width of (max-min), 65 on overflow
}

const distinctCap = 1024

func statsOf(vs []int64) intStats {
	s := intStats{n: len(vs), sorted: true, deltaSafe: true}
	if len(vs) == 0 {
		return s
	}
	s.min, s.max = vs[0], vs[0]
	s.runs = 1
	counts := make(map[int64]int, distinctCap+1)
	counts[vs[0]] = 1
	s.majorityN = 1
	for i := 1; i < len(vs); i++ {
		v := vs[i]
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
		if v != vs[i-1] {
			s.runs++
		}
		if v < vs[i-1] {
			s.sorted = false
		}
		d, ok := subOverflow(v, vs[i-1])
		if !ok {
			s.deltaSafe = false
		} else {
			if i == 1 || d < s.deltaMin {
				s.deltaMin = d
			}
			if i == 1 || d > s.deltaMax {
				s.deltaMax = d
			}
		}
		if len(counts) <= distinctCap {
			counts[v]++
			if counts[v] > s.majorityN {
				s.majorityN = counts[v]
			}
		}
	}
	s.distinct = len(counts)
	s.hasNeg = s.min < 0
	if r, ok := subOverflow(s.max, s.min); ok {
		s.rangeWidth = bitutil.WidthOf(uint64(r))
	} else {
		s.rangeWidth = 65
	}
	return s
}

// subOverflow computes a-b, reporting whether it fit in int64.
func subOverflow(a, b int64) (int64, bool) {
	d := a - b
	// Overflow iff a and b have different signs and d's sign differs from a's.
	if (a >= 0) != (b >= 0) && (d >= 0) != (a >= 0) {
		return 0, false
	}
	return d, true
}
