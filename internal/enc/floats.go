package enc

import (
	"encoding/binary"
	"math"
	"math/bits"

	"bullion/internal/bitutil"
)

// Float64 streams get their own cascade (Gorilla/Chimp/ALP/Pseudodecimal).
// Narrower float formats (FP32 and the quantized FP16/BF16/FP8 of §2.4)
// are stored as raw bit patterns through the *integer* cascade, which
// already handles fixed-width/dictionary/bit-shuffle compression of short
// bit strings well — see internal/quant.

// EncodeFloats appends an encoded stream for vs, choosing the scheme with
// the cascade selector.
func EncodeFloats(dst []byte, vs []float64, opts *Options) ([]byte, error) {
	return encodeFloatsDepth(dst, vs, opts, 0)
}

// EncodeFloatsWith appends an encoded stream using the given scheme.
func EncodeFloatsWith(dst []byte, id SchemeID, vs []float64, opts *Options) ([]byte, error) {
	return encodeFloatsWithDepth(dst, id, vs, opts, 0)
}

// DecodeFloats decodes an n-value float64 stream.
func DecodeFloats(src []byte, n int) ([]float64, error) {
	out := make([]float64, n)
	return DecodeFloatsInto(out, src)
}

// DecodeFloatsInto decodes len(dst) values from src into dst.
func DecodeFloatsInto(dst []float64, src []byte) ([]float64, error) {
	if len(src) == 0 {
		if len(dst) == 0 {
			return dst, nil
		}
		return nil, corruptf("empty stream for %d floats", len(dst))
	}
	id := SchemeID(src[0])
	payload := src[1:]
	switch id {
	case PlainF:
		return decodePlainFloats(dst, payload)
	case GorillaF:
		return decodeGorilla(dst, payload)
	case ChimpF:
		return decodeChimp(dst, payload)
	case ALPF:
		return decodeALP(dst, payload)
	case PseudoDec:
		return decodePseudoDec(dst, payload)
	case ConstantF:
		return decodeConstantFloats(dst, payload)
	case ChunkedF:
		return decodeChunkedFloats(dst, payload)
	default:
		return nil, corruptf("%v is not a float scheme", id)
	}
}

func encodeFloatsDepth(dst []byte, vs []float64, opts *Options, depth int) ([]byte, error) {
	if depth == 0 && opts.Cache != nil {
		return opts.Cache.encodeFloats(dst, vs, opts)
	}
	id := chooseFloatScheme(vs, opts, depth)
	return encodeFloatsWithDepth(dst, id, vs, opts, depth)
}

func encodeFloatsWithDepth(dst []byte, id SchemeID, vs []float64, opts *Options, depth int) ([]byte, error) {
	dst = append(dst, byte(id))
	switch id {
	case PlainF:
		return encodePlainFloats(dst, vs), nil
	case GorillaF:
		return encodeGorilla(dst, vs), nil
	case ChimpF:
		return encodeChimp(dst, vs), nil
	case ALPF:
		return encodeALP(dst, vs, opts, depth)
	case PseudoDec:
		return encodePseudoDec(dst, vs, opts, depth)
	case ConstantF:
		return encodeConstantFloats(dst, vs)
	case ChunkedF:
		return encodeChunkedFloats(dst, vs)
	default:
		return nil, corruptf("%v is not a float scheme", id)
	}
}

// ---- Plain ----

func encodePlainFloats(dst []byte, vs []float64) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

func decodePlainFloats(dst []float64, src []byte) ([]float64, error) {
	if len(src) < 8*len(dst) {
		return nil, corruptf("plain floats: have %d bytes, need %d", len(src), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return dst, nil
}

// ---- Constant ----

func encodeConstantFloats(dst []byte, vs []float64) ([]byte, error) {
	if len(vs) == 0 {
		return binary.LittleEndian.AppendUint64(dst, 0), nil
	}
	c := math.Float64bits(vs[0])
	for _, v := range vs {
		if math.Float64bits(v) != c {
			return nil, ErrNotApplicable
		}
	}
	return binary.LittleEndian.AppendUint64(dst, c), nil
}

func decodeConstantFloats(dst []float64, src []byte) ([]float64, error) {
	if len(src) < 8 {
		return nil, corruptf("constant float: short payload")
	}
	c := math.Float64frombits(binary.LittleEndian.Uint64(src))
	fillFloat64(dst, c)
	return dst, nil
}

// fillFloat64 mirrors fillInt64's copy-doubling memset for float runs.
func fillFloat64(dst []float64, v float64) {
	if len(dst) == 0 {
		return
	}
	if bitutil.ScalarKernels {
		for i := range dst {
			dst[i] = v
		}
		return
	}
	dst[0] = v
	for filled := 1; filled < len(dst); filled *= 2 {
		copy(dst[filled:], dst[:filled])
	}
}

// ---- Chunked ----

func encodeChunkedFloats(dst []byte, vs []float64) ([]byte, error) {
	return appendFlateChunks(dst, encodePlainFloats(nil, vs))
}

func decodeChunkedFloats(dst []float64, src []byte) ([]float64, error) {
	raw, err := readFlateChunks(src, len(dst)*8)
	if err != nil {
		return nil, err
	}
	return decodePlainFloats(dst, raw)
}

// ---- Gorilla (Table 2, [70]) ----
//
// XOR with the previous value; encode the meaningful (non-zero) window.
// Control bits: 0 → identical; 10 → reuse previous leading/trailing window;
// 11 → new window: 6-bit leading count, 6-bit meaningful length.

func encodeGorilla(dst []byte, vs []float64) []byte {
	w := bitutil.NewWriter(nil)
	var prev uint64
	prevLead, prevTrail := -1, -1
	for i, v := range vs {
		cur := math.Float64bits(v)
		if i == 0 {
			w.WriteBits(cur, 64)
			prev = cur
			continue
		}
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.WriteBit(false)
			continue
		}
		w.WriteBit(true)
		lead := bits.LeadingZeros64(xor)
		trail := bits.TrailingZeros64(xor)
		if lead > 63 {
			lead = 63
		}
		if prevLead >= 0 && lead >= prevLead && trail >= prevTrail {
			w.WriteBit(false)
			w.WriteBits(xor>>uint(prevTrail), 64-prevLead-prevTrail)
			continue
		}
		w.WriteBit(true)
		meaningful := 64 - lead - trail // in [1,64]; stored as meaningful-1
		w.WriteBits(uint64(lead), 6)
		w.WriteBits(uint64(meaningful-1), 6)
		w.WriteBits(xor>>uint(trail), meaningful)
		prevLead, prevTrail = lead, trail
	}
	return append(dst, w.Bytes()...)
}

// decodeGorilla reads the stream word-at-a-time: one Peek64 per value
// yields the control bits, the window header, and — for every mantissa
// narrow enough to share the peeked word (the overwhelmingly common case) —
// the meaningful bits themselves, so the per-value cost is a single
// unaligned load plus shifts. Values whose bits straddle the peek window
// or sit in the final 9 bytes fall back to ReadBitsAt. The Reader-based
// reference implementation survives as decodeGorillaScalar for the
// equivalence tests.
func decodeGorilla(dst []float64, src []byte) ([]float64, error) {
	if bitutil.ScalarKernels {
		return decodeGorillaScalar(dst, src)
	}
	if len(dst) == 0 {
		return dst, nil
	}
	first, ok := bitutil.ReadBitsAt(src, 0, 64)
	if !ok {
		return nil, corruptf("gorilla: truncated first value")
	}
	prev := first
	dst[0] = math.Float64frombits(first)
	bitPos := 64
	prevLead, prevTrail := 0, 0
	for i := 1; i < len(dst); i++ {
		w, wide := bitutil.Peek64(src, bitPos)
		if !wide {
			// Stream tail: per-field safe reads.
			b, ok := bitutil.ReadBitsAt(src, bitPos, 1)
			if !ok {
				return nil, corruptf("gorilla: truncated at value %d", i)
			}
			bitPos++
			if b == 0 {
				dst[i] = math.Float64frombits(prev)
				continue
			}
			nw, ok := bitutil.ReadBitsAt(src, bitPos, 1)
			if !ok {
				return nil, corruptf("gorilla: truncated at value %d", i)
			}
			bitPos++
			if nw == 1 {
				hdr, ok := bitutil.ReadBitsAt(src, bitPos, 12)
				if !ok {
					return nil, corruptf("gorilla: truncated window at value %d", i)
				}
				bitPos += 12
				prevLead = int(hdr & 0x3f)
				meaningful := int(hdr>>6) + 1
				if prevLead+meaningful > 64 {
					return nil, corruptf("gorilla: bad window lead=%d len=%d", prevLead, meaningful)
				}
				prevTrail = 64 - prevLead - meaningful
			}
			width := 64 - prevLead - prevTrail
			m, ok := bitutil.ReadBitsAt(src, bitPos, width)
			if !ok {
				return nil, corruptf("gorilla: truncated mantissa at value %d", i)
			}
			bitPos += width
			prev ^= m << uint(prevTrail)
			dst[i] = math.Float64frombits(prev)
			continue
		}
		if w&1 == 0 { // control bit 0: identical value
			bitPos++
			dst[i] = math.Float64frombits(prev)
			continue
		}
		used := 2
		if w&2 != 0 { // new leading/trailing window: 6+6 header bits
			prevLead = int(w>>2) & 0x3f
			meaningful := int(w>>8)&0x3f + 1
			if prevLead+meaningful > 64 {
				return nil, corruptf("gorilla: bad window lead=%d len=%d", prevLead, meaningful)
			}
			prevTrail = 64 - prevLead - meaningful
			used = 14
		}
		width := 64 - prevLead - prevTrail
		var m uint64
		if used+width <= 64 { // mantissa already in the peeked word
			m = (w >> uint(used)) & (uint64(1)<<uint(width) - 1)
			bitPos += used + width
		} else {
			var ok bool
			m, ok = bitutil.ReadBitsAt(src, bitPos+used, width)
			if !ok {
				return nil, corruptf("gorilla: truncated mantissa at value %d", i)
			}
			bitPos += used + width
		}
		prev ^= m << uint(prevTrail)
		dst[i] = math.Float64frombits(prev)
	}
	return dst, nil
}

func decodeGorillaScalar(dst []float64, src []byte) ([]float64, error) {
	r := bitutil.NewReader(src)
	var prev uint64
	prevLead, prevTrail := 0, 0
	for i := range dst {
		if i == 0 {
			v, err := r.ReadBits(64)
			if err != nil {
				return nil, corruptf("gorilla: %v", err)
			}
			prev = v
			dst[i] = math.Float64frombits(v)
			continue
		}
		same, err := r.ReadBit()
		if err != nil {
			return nil, corruptf("gorilla: %v", err)
		}
		if !same { // control bit 0: identical value
			dst[i] = math.Float64frombits(prev)
			continue
		}
		newWin, err := r.ReadBit()
		if err != nil {
			return nil, corruptf("gorilla: %v", err)
		}
		if newWin {
			lead64, err := r.ReadBits(6)
			if err != nil {
				return nil, corruptf("gorilla: %v", err)
			}
			mlen64, err := r.ReadBits(6)
			if err != nil {
				return nil, corruptf("gorilla: %v", err)
			}
			prevLead = int(lead64)
			meaningful := int(mlen64) + 1
			if prevLead+meaningful > 64 {
				return nil, corruptf("gorilla: bad window lead=%d len=%d", prevLead, meaningful)
			}
			prevTrail = 64 - prevLead - meaningful
		}
		width := 64 - prevLead - prevTrail
		m, err := r.ReadBits(width)
		if err != nil {
			return nil, corruptf("gorilla: %v", err)
		}
		prev ^= m << uint(prevTrail)
		dst[i] = math.Float64frombits(prev)
	}
	return dst, nil
}

// ---- Chimp (Table 2, [60]) ----
//
// Gorilla variant: 2-bit flags and a rounded 3-bit leading-zero code.
//
//	00 → xor == 0
//	01 → many trailing zeros: 3-bit lead code, 6-bit center length, center
//	10 → same leading count as previous: (64-lead) significant bits
//	11 → new leading count: 3-bit lead code, (64-lead) significant bits

var chimpLeadRound = [64]uint8{
	0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
	3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 7, 7, 7, 7, 7, 7,
	7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7,
	7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7,
}

var chimpLeadValue = [8]int{0, 8, 12, 16, 18, 20, 22, 24}

const chimpTrailThreshold = 6

func encodeChimp(dst []byte, vs []float64) []byte {
	w := bitutil.NewWriter(nil)
	var prev uint64
	prevLead := -1
	for i, v := range vs {
		cur := math.Float64bits(v)
		if i == 0 {
			w.WriteBits(cur, 64)
			prev = cur
			continue
		}
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.WriteBits(0b00, 2)
			prevLead = -1
			continue
		}
		lead := bits.LeadingZeros64(xor)
		if lead > 63 {
			lead = 63
		}
		leadCode := chimpLeadRound[lead]
		leadRounded := chimpLeadValue[leadCode]
		trail := bits.TrailingZeros64(xor)
		if trail > chimpTrailThreshold {
			center := 64 - leadRounded - trail
			w.WriteBits(0b01, 2)
			w.WriteBits(uint64(leadCode), 3)
			w.WriteBits(uint64(center), 6)
			w.WriteBits(xor>>uint(trail), center)
			prevLead = -1
			continue
		}
		if leadRounded == prevLead {
			w.WriteBits(0b10, 2)
			w.WriteBits(xor, 64-leadRounded)
			continue
		}
		w.WriteBits(0b11, 2)
		w.WriteBits(uint64(leadCode), 3)
		w.WriteBits(xor, 64-leadRounded)
		prevLead = leadRounded
	}
	return append(dst, w.Bytes()...)
}

// decodeChimp mirrors decodeGorilla's peek-based rewrite for the Chimp
// flag grammar: one Peek64 per value carries the 2-bit flag, the 3-bit
// lead code, the 6-bit center length, and usually the significant bits
// too; decodeChimpScalar is the Reader-based reference.
func decodeChimp(dst []float64, src []byte) ([]float64, error) {
	if bitutil.ScalarKernels {
		return decodeChimpScalar(dst, src)
	}
	if len(dst) == 0 {
		return dst, nil
	}
	first, ok := bitutil.ReadBitsAt(src, 0, 64)
	if !ok {
		return nil, corruptf("chimp: truncated first value")
	}
	prev := first
	dst[0] = math.Float64frombits(first)
	bitPos := 64
	prevLead := -1
	for i := 1; i < len(dst); i++ {
		w, wide := bitutil.Peek64(src, bitPos)
		if !wide {
			var ok bool
			if w, ok = bitutil.ReadBitsAt(src, bitPos, 2); !ok {
				return nil, corruptf("chimp: truncated at value %d", i)
			}
			// Fall through with only the flag bits peeked; the per-case
			// reads below re-fetch their fields through ReadBitsAt.
		}
		switch w & 0b11 {
		case 0b00:
			bitPos += 2
			prevLead = -1
		case 0b01:
			hdr, ok := bitutil.ReadBitsAt(src, bitPos+2, 9)
			if !ok {
				return nil, corruptf("chimp: truncated header at value %d", i)
			}
			lead := chimpLeadValue[hdr&0x7]
			center := int(hdr >> 3)
			if center == 0 || lead+center > 64 {
				return nil, corruptf("chimp: bad center lead=%d center=%d", lead, center)
			}
			var m uint64
			if wide && 11+center <= 64 {
				m = (w >> 11) & (uint64(1)<<uint(center) - 1)
			} else if m, ok = bitutil.ReadBitsAt(src, bitPos+11, center); !ok {
				return nil, corruptf("chimp: truncated center at value %d", i)
			}
			bitPos += 11 + center
			prev ^= m << uint(64-lead-center)
			prevLead = -1
		case 0b10:
			if prevLead < 0 {
				return nil, corruptf("chimp: flag 10 with no previous lead")
			}
			width := 64 - prevLead
			var m uint64
			var ok bool
			if wide && 2+width <= 64 {
				m = (w >> 2) & (uint64(1)<<uint(width) - 1)
			} else if m, ok = bitutil.ReadBitsAt(src, bitPos+2, width); !ok {
				return nil, corruptf("chimp: truncated xor at value %d", i)
			}
			bitPos += 2 + width
			prev ^= m
		case 0b11:
			var leadCode uint64
			var ok bool
			if wide {
				leadCode = (w >> 2) & 0x7
			} else if leadCode, ok = bitutil.ReadBitsAt(src, bitPos+2, 3); !ok {
				return nil, corruptf("chimp: truncated lead at value %d", i)
			}
			prevLead = chimpLeadValue[leadCode]
			width := 64 - prevLead
			var m uint64
			if wide && 5+width <= 64 {
				m = (w >> 5) & (uint64(1)<<uint(width) - 1)
			} else if m, ok = bitutil.ReadBitsAt(src, bitPos+5, width); !ok {
				return nil, corruptf("chimp: truncated xor at value %d", i)
			}
			bitPos += 5 + width
			prev ^= m
		}
		dst[i] = math.Float64frombits(prev)
	}
	return dst, nil
}

func decodeChimpScalar(dst []float64, src []byte) ([]float64, error) {
	r := bitutil.NewReader(src)
	var prev uint64
	prevLead := -1
	for i := range dst {
		if i == 0 {
			v, err := r.ReadBits(64)
			if err != nil {
				return nil, corruptf("chimp: %v", err)
			}
			prev = v
			dst[i] = math.Float64frombits(v)
			continue
		}
		flag, err := r.ReadBits(2)
		if err != nil {
			return nil, corruptf("chimp: %v", err)
		}
		switch flag {
		case 0b00:
			prevLead = -1
		case 0b01:
			leadCode, err := r.ReadBits(3)
			if err != nil {
				return nil, corruptf("chimp: %v", err)
			}
			center64, err := r.ReadBits(6)
			if err != nil {
				return nil, corruptf("chimp: %v", err)
			}
			lead := chimpLeadValue[leadCode]
			center := int(center64)
			if center == 0 || lead+center > 64 {
				return nil, corruptf("chimp: bad center lead=%d center=%d", lead, center)
			}
			trail := 64 - lead - center
			m, err := r.ReadBits(center)
			if err != nil {
				return nil, corruptf("chimp: %v", err)
			}
			prev ^= m << uint(trail)
			prevLead = -1
		case 0b10:
			if prevLead < 0 {
				return nil, corruptf("chimp: flag 10 with no previous lead")
			}
			m, err := r.ReadBits(64 - prevLead)
			if err != nil {
				return nil, corruptf("chimp: %v", err)
			}
			prev ^= m
		case 0b11:
			leadCode, err := r.ReadBits(3)
			if err != nil {
				return nil, corruptf("chimp: %v", err)
			}
			prevLead = chimpLeadValue[leadCode]
			m, err := r.ReadBits(64 - prevLead)
			if err != nil {
				return nil, corruptf("chimp: %v", err)
			}
			prev ^= m
		}
		dst[i] = math.Float64frombits(prev)
	}
	return dst, nil
}

// ---- ALP / Pseudodecimal (Table 2, [20] and [58]) ----
//
// ALP losslessly encodes doubles that originated as decimals: one exponent
// per stream, round(v*10^e) as a cascaded integer sub-column, bit-exact
// exceptions patched from a side list. Pseudodecimal is the BtrBlocks
// precursor: per-value (digits, exponent) pairs as two sub-columns.

const alpMaxExp = 18

// decimalFor returns the smallest exponent that reconstructs v exactly, or
// -1 if none does.
func decimalFor(v float64) (exp int, digits int64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1, 0
	}
	if v == 0 && math.Signbit(v) {
		return -1, 0 // -0 is not representable as digits/10^e
	}
	for e := 0; e <= alpMaxExp; e++ {
		scaled := v * pow10[e]
		if math.Abs(scaled) >= 1<<51 {
			return -1, 0
		}
		d := math.Round(scaled)
		if float64(int64(d))/pow10[e] == v {
			return e, int64(d)
		}
	}
	return -1, 0
}

// alpExact reports whether v reconstructs bit-exactly as round(v*10^e)/10^e
// and returns the integer digits when it does.
func alpExact(v float64, e int) (int64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	if v == 0 && math.Signbit(v) {
		return 0, false
	}
	if math.Abs(v*pow10[e]) >= 1<<51 {
		return 0, false
	}
	d := int64(math.Round(v * pow10[e]))
	if float64(d)/pow10[e] != v {
		return 0, false
	}
	return d, true
}

var pow10 = func() [alpMaxExp + 1]float64 {
	var p [alpMaxExp + 1]float64
	for i := range p {
		p[i] = math.Pow(10, float64(i))
	}
	return p
}()

// payload(ALP) := exp(1B) nExc(uvarint) childDigits excPos(child) excBits(8B each)

func encodeALP(dst []byte, vs []float64, opts *Options, depth int) ([]byte, error) {
	// One exponent for the stream: the max needed by encodable values.
	streamExp := 0
	encodable := 0
	for _, v := range vs {
		if e, _ := decimalFor(v); e >= 0 {
			encodable++
			if e > streamExp {
				streamExp = e
			}
		}
	}
	// ALP only pays off when most values are decimal.
	if encodable*10 < len(vs)*9 {
		return nil, ErrNotApplicable
	}
	digits := make([]int64, len(vs))
	var excPos []int64
	var excBits []uint64
	for i, v := range vs {
		if d, ok := alpExact(v, streamExp); ok {
			digits[i] = d
			continue
		}
		digits[i] = 0
		excPos = append(excPos, int64(i))
		excBits = append(excBits, math.Float64bits(v))
	}
	dst = append(dst, byte(streamExp))
	dst = binary.AppendUvarint(dst, uint64(len(excPos)))
	var err error
	if dst, err = encodeChildInts(dst, digits, opts, depth+1); err != nil {
		return nil, err
	}
	if dst, err = encodeChildInts(dst, excPos, opts, depth+1); err != nil {
		return nil, err
	}
	for _, b := range excBits {
		dst = binary.LittleEndian.AppendUint64(dst, b)
	}
	return dst, nil
}

func decodeALP(dst []float64, src []byte) ([]float64, error) {
	if len(src) < 1 {
		return nil, corruptf("alp: missing exponent")
	}
	exp := int(src[0])
	if exp > alpMaxExp {
		return nil, corruptf("alp: exponent %d out of range", exp)
	}
	src = src[1:]
	nExc, sz := binary.Uvarint(src)
	if sz <= 0 || nExc > uint64(len(dst)) {
		return nil, corruptf("alp: bad exception count")
	}
	src = src[sz:]
	digitStream, src, err := readChild(src)
	if err != nil {
		return nil, err
	}
	posStream, src, err := readChild(src)
	if err != nil {
		return nil, err
	}
	digits, err := DecodeInts(digitStream, len(dst))
	if err != nil {
		return nil, err
	}
	pos, err := DecodeInts(posStream, int(nExc))
	if err != nil {
		return nil, err
	}
	if len(src) < int(nExc)*8 {
		return nil, corruptf("alp: short exception bits")
	}
	for i := range dst {
		dst[i] = float64(digits[i]) / pow10[exp]
	}
	for i, p := range pos {
		if p < 0 || p >= int64(len(dst)) {
			return nil, corruptf("alp: exception position %d out of range", p)
		}
		dst[p] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return dst, nil
}

// payload(PseudoDec) := nExc(uvarint) childDigits childExps excPos(child) excBits(8B each)

func encodePseudoDec(dst []byte, vs []float64, opts *Options, depth int) ([]byte, error) {
	digits := make([]int64, len(vs))
	exps := make([]int64, len(vs))
	var excPos []int64
	var excBits []uint64
	for i, v := range vs {
		e, d := decimalFor(v)
		if e < 0 {
			excPos = append(excPos, int64(i))
			excBits = append(excBits, math.Float64bits(v))
			continue
		}
		digits[i], exps[i] = d, int64(e)
	}
	if len(excPos)*2 > len(vs) {
		return nil, ErrNotApplicable
	}
	dst = binary.AppendUvarint(dst, uint64(len(excPos)))
	var err error
	if dst, err = encodeChildInts(dst, digits, opts, depth+1); err != nil {
		return nil, err
	}
	if dst, err = encodeChildInts(dst, exps, opts, depth+1); err != nil {
		return nil, err
	}
	if dst, err = encodeChildInts(dst, excPos, opts, depth+1); err != nil {
		return nil, err
	}
	for _, b := range excBits {
		dst = binary.LittleEndian.AppendUint64(dst, b)
	}
	return dst, nil
}

func decodePseudoDec(dst []float64, src []byte) ([]float64, error) {
	nExc, sz := binary.Uvarint(src)
	if sz <= 0 || nExc > uint64(len(dst)) {
		return nil, corruptf("pseudodec: bad exception count")
	}
	src = src[sz:]
	digitStream, src, err := readChild(src)
	if err != nil {
		return nil, err
	}
	expStream, src, err := readChild(src)
	if err != nil {
		return nil, err
	}
	posStream, src, err := readChild(src)
	if err != nil {
		return nil, err
	}
	digits, err := DecodeInts(digitStream, len(dst))
	if err != nil {
		return nil, err
	}
	exps, err := DecodeInts(expStream, len(dst))
	if err != nil {
		return nil, err
	}
	pos, err := DecodeInts(posStream, int(nExc))
	if err != nil {
		return nil, err
	}
	if len(src) < int(nExc)*8 {
		return nil, corruptf("pseudodec: short exception bits")
	}
	for i := range dst {
		e := exps[i]
		if e < 0 || e > alpMaxExp {
			return nil, corruptf("pseudodec: exponent %d out of range", e)
		}
		dst[i] = float64(digits[i]) / pow10[e]
	}
	for i, p := range pos {
		if p < 0 || p >= int64(len(dst)) {
			return nil, corruptf("pseudodec: exception position %d out of range", p)
		}
		dst[p] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return dst, nil
}
