package enc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func genBools(rng *rand.Rand, n int, density float64) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Float64() < density
	}
	return out
}

func TestBoolSchemesRoundTrip(t *testing.T) {
	for _, id := range []SchemeID{PlainBool, SparseBool, Roaring} {
		t.Run(id.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			for _, n := range []int{0, 1, 63, 64, 65, 1000, 70000} {
				for _, density := range []float64{0, 0.01, 0.5, 0.99, 1} {
					vs := genBools(rng, n, density)
					encoded, err := EncodeBoolsWith(nil, id, vs)
					if err != nil {
						t.Fatalf("n=%d d=%v: %v", n, density, err)
					}
					got, err := DecodeBools(encoded, n)
					if err != nil {
						t.Fatalf("n=%d d=%v: %v", n, density, err)
					}
					for i := range vs {
						if got[i] != vs[i] {
							t.Fatalf("n=%d d=%v: bit %d = %v, want %v", n, density, i, got[i], vs[i])
						}
					}
				}
			}
		})
	}
}

func TestBoolSelectorDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	opts := DefaultOptions()
	sparse := genBools(rng, 10000, 0.005)
	if id := chooseBoolScheme(sparse, opts); id != SparseBool {
		t.Fatalf("selector picked %v for 0.5%% density", id)
	}
	dense := genBools(rng, 10000, 0.5)
	if id := chooseBoolScheme(dense, opts); id != Roaring {
		t.Fatalf("selector picked %v for dense large input", id)
	}
	small := genBools(rng, 100, 0.5)
	if id := chooseBoolScheme(small, opts); id != PlainBool {
		t.Fatalf("selector picked %v for small dense input", id)
	}
}

func TestSparseBoolBeatsPlainWhenSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vs := genBools(rng, 100000, 0.001)
	plain, _ := EncodeBoolsWith(nil, PlainBool, vs)
	sparse, _ := EncodeBoolsWith(nil, SparseBool, vs)
	if len(sparse) >= len(plain) {
		t.Fatalf("sparse %d >= plain %d at 0.1%% density", len(sparse), len(plain))
	}
}

func TestRoaringContainerTypes(t *testing.T) {
	// Run container: one long run.
	run := make([]bool, 70000)
	for i := 1000; i < 60000; i++ {
		run[i] = true
	}
	encRun, err := EncodeBoolsWith(nil, Roaring, run)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBools(encRun, len(run))
	if err != nil {
		t.Fatal(err)
	}
	for i := range run {
		if got[i] != run[i] {
			t.Fatalf("run container bit %d mismatch", i)
		}
	}
	// Runs must compress dramatically better than the array form would.
	if len(encRun) > 200 {
		t.Fatalf("run container took %d bytes for 2 runs", len(encRun))
	}

	// Bitmap container: dense random, avoid long runs.
	rng := rand.New(rand.NewSource(7))
	dense := genBools(rng, 65536, 0.5)
	encDense, err := EncodeBoolsWith(nil, Roaring, dense)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeBools(encDense, len(dense))
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense {
		if got[i] != dense[i] {
			t.Fatalf("bitmap container bit %d mismatch", i)
		}
	}
}

func TestBoolProperty(t *testing.T) {
	f := func(seed int64, densityRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3000)
		density := float64(densityRaw) / 255
		vs := genBools(rng, n, density)
		encoded, err := EncodeBools(nil, vs, DefaultOptions())
		if err != nil {
			return false
		}
		got, err := DecodeBools(encoded, n)
		if err != nil {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBoolDecodeCorrupt(t *testing.T) {
	if _, err := DecodeBools([]byte{}, 2); err == nil {
		t.Fatal("empty stream decoded")
	}
	if _, err := DecodeBools([]byte{byte(Roaring), 0xFF, 0xFF, 0xFF}, 100); err == nil {
		t.Fatal("garbage roaring stream decoded")
	}
}
