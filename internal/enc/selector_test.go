package enc

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// cachedOpts returns default options with a fresh selector cache.
func cachedOpts() *Options {
	o := DefaultOptions()
	o.Cache = NewSelectorCache(0)
	return o
}

// TestSelectorCacheReusesScheme: stationary pages must be selected once
// and reused, and every page must still round-trip.
func TestSelectorCacheReusesScheme(t *testing.T) {
	opts := cachedOpts()
	rng := rand.New(rand.NewSource(42))
	const pages, n = 16, 512
	for p := 0; p < pages; p++ {
		vs := make([]int64, n)
		for i := range vs {
			vs[i] = rng.Int63n(1 << 12)
		}
		opts.Cache.BeginPage()
		stream, err := EncodeInts(nil, vs, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeInts(stream, n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, vs) {
			t.Fatalf("page %d: round-trip mismatch", p)
		}
	}
	hits, resamples := opts.Cache.Stats()
	if resamples < 1 {
		t.Fatal("first page must run a full selection")
	}
	if hits < pages/2 {
		t.Fatalf("stationary pages barely reused the cache: %d hits, %d resamples", hits, resamples)
	}
}

// TestSelectorCacheResamplesOnDrift: a distribution shift big enough to
// move the compression ratio must trigger a fresh selection.
func TestSelectorCacheResamplesOnDrift(t *testing.T) {
	opts := cachedOpts()
	const n = 512
	encode := func(vs []int64) {
		t.Helper()
		opts.Cache.BeginPage()
		stream, err := EncodeInts(nil, vs, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeInts(stream, n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, vs) {
			t.Fatal("round-trip mismatch")
		}
	}
	small := make([]int64, n) // tiny range: bit-packs to almost nothing
	for i := range small {
		small[i] = int64(i % 4)
	}
	encode(small)
	_, before := opts.Cache.Stats()
	wide := make([]int64, n) // full-width values: same scheme would balloon
	rng := rand.New(rand.NewSource(7))
	for i := range wide {
		wide[i] = rng.Int63()
	}
	encode(wide)
	if _, after := opts.Cache.Stats(); after <= before {
		t.Fatalf("ratio drift did not trigger a resample (resamples %d -> %d)", before, after)
	}
}

// TestSelectorCacheConstantFallback: a cached Constant scheme stops
// applying the moment a page is not constant; the cache must fall back to
// full selection instead of failing.
func TestSelectorCacheConstantFallback(t *testing.T) {
	opts := cachedOpts()
	const n = 256
	constant := make([]int64, n)
	for i := range constant {
		constant[i] = 99
	}
	opts.Cache.BeginPage()
	stream, err := EncodeInts(nil, constant, opts)
	if err != nil {
		t.Fatal(err)
	}
	if TopScheme(stream) != Constant {
		t.Fatalf("constant page chose %v", TopScheme(stream))
	}
	varied := make([]int64, n)
	for i := range varied {
		varied[i] = int64(i)
	}
	opts.Cache.BeginPage()
	stream, err = EncodeInts(nil, varied, opts)
	if err != nil {
		t.Fatal(err)
	}
	if TopScheme(stream) == Constant {
		t.Fatal("non-constant page kept the Constant scheme")
	}
	got, err := DecodeInts(stream, n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, varied) {
		t.Fatal("round-trip mismatch after fallback")
	}
}

// TestSelectorCacheDeterministic: two caches fed the same page sequence
// must emit identical bytes — the property the parallel writer's
// byte-determinism rests on.
func TestSelectorCacheDeterministic(t *testing.T) {
	mkPages := func() [][]float64 {
		rng := rand.New(rand.NewSource(11))
		pages := make([][]float64, 12)
		for p := range pages {
			vs := make([]float64, 300)
			for i := range vs {
				vs[i] = float64(rng.Intn(1000)) / 8
			}
			pages[p] = vs
		}
		return pages
	}
	run := func() []byte {
		opts := cachedOpts()
		var all []byte
		for _, vs := range mkPages() {
			opts.Cache.BeginPage()
			stream, err := EncodeFloats(nil, vs, opts)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, stream...)
		}
		return all
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("identical page sequences produced different bytes")
	}
}

// TestSelectorCacheBytesStreams: the bytes cascade path through the cache
// round-trips and amortizes too.
func TestSelectorCacheBytesStreams(t *testing.T) {
	opts := cachedOpts()
	const pages, n = 8, 200
	for p := 0; p < pages; p++ {
		vs := make([][]byte, n)
		for i := range vs {
			vs[i] = []byte([]string{"news", "video", "ads", "social"}[(i+p)%4])
		}
		opts.Cache.BeginPage()
		stream, err := EncodeBytes(nil, vs, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBytes(stream, n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, vs) {
			t.Fatalf("page %d: round-trip mismatch", p)
		}
	}
	if hits, _ := opts.Cache.Stats(); hits == 0 {
		t.Fatal("bytes pages never hit the cache")
	}
}
