package enc

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 4, 100, 5000} {
		vals := make([][]byte, n)
		for i := range vals {
			vals[i] = []byte(fmt.Sprintf("value-%d-%d", i, rng.Int63()))
		}
		b := NewBloomBuilder(n, 0)
		for _, v := range vals {
			b.Add(v)
		}
		f, err := OpenBloom(b.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			if !f.Contains(v) {
				t.Fatalf("n=%d: added value %q not found", n, v)
			}
		}
	}
}

// TestBloomFalsePositiveRate checks the sizing target: at the default 12
// bits per distinct value the observed false-positive rate should be well
// under 2% (target ~0.5%).
func TestBloomFalsePositiveRate(t *testing.T) {
	const n = 10000
	b := NewBloomBuilder(n, 0)
	for i := 0; i < n; i++ {
		b.Add([]byte(fmt.Sprintf("member-%d", i)))
	}
	f, err := OpenBloom(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	falsePos := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Contains([]byte(fmt.Sprintf("absent-%d", i))) {
			falsePos++
		}
	}
	if rate := float64(falsePos) / probes; rate > 0.02 {
		t.Fatalf("false-positive rate %.4f exceeds 2%% at default sizing", rate)
	}
}

// TestBloomOrderIndependent pins the determinism property the pipelined
// writer relies on: the same value set in any insertion order must
// serialize to identical bytes.
func TestBloomOrderIndependent(t *testing.T) {
	vals := make([][]byte, 500)
	for i := range vals {
		vals[i] = []byte(fmt.Sprintf("v%d", i))
	}
	a := NewBloomBuilder(len(vals), 0)
	for _, v := range vals {
		a.Add(v)
	}
	b := NewBloomBuilder(len(vals), 0)
	for i := len(vals) - 1; i >= 0; i-- {
		b.Add(vals[i])
	}
	am, bm := a.Marshal(), b.Marshal()
	if string(am) != string(bm) {
		t.Fatal("insertion order changed the serialized filter")
	}
}

func TestBloomOpenRejectsCorrupt(t *testing.T) {
	b := NewBloomBuilder(10, 0)
	b.Add([]byte("x"))
	good := b.Marshal()
	cases := map[string][]byte{
		"empty":      {},
		"short":      good[:4],
		"bad magic":  append([]byte("XXXX"), good[4:]...),
		"truncated":  good[:len(good)-1],
		"overlong":   append(append([]byte{}, good...), 0),
		"zero count": {'S', 'B', 'F', '1', 0, 0, 0, 0},
		"huge count": {'S', 'B', 'F', '1', 0xff, 0xff, 0xff, 0xff},
	}
	for name, data := range cases {
		if _, err := OpenBloom(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
