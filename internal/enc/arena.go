package enc

import "sync"

// Pooled scratch buffers for the temporaries the codecs need around every
// page: bit-unpack staging ([]uint64), bit-shuffle transpose planes
// ([]byte), and dense-value staging for nullable streams ([]int64). The
// steady-state scan path decodes thousands of pages per second; without
// the pools each page costs one or more short-lived heap allocations that
// dominate the decode profile under GC pressure. Scratch never escapes a
// single encode/decode call, so a plain sync.Pool (pointer-to-slice to
// keep Put allocation-free) is enough.

const scratchDefaultCap = 1024 // one default-sized page of values

var uint64ScratchPool = sync.Pool{
	New: func() any {
		s := make([]uint64, 0, scratchDefaultCap)
		return &s
	},
}

// getUint64Scratch returns a pooled slice of length n (contents undefined).
func getUint64Scratch(n int) *[]uint64 {
	p := uint64ScratchPool.Get().(*[]uint64)
	if cap(*p) < n {
		*p = make([]uint64, n)
	}
	*p = (*p)[:n]
	return p
}

func putUint64Scratch(p *[]uint64) { uint64ScratchPool.Put(p) }

var int64ScratchPool = sync.Pool{
	New: func() any {
		s := make([]int64, 0, scratchDefaultCap)
		return &s
	},
}

// getInt64Scratch returns a pooled slice of length n (contents undefined).
func getInt64Scratch(n int) *[]int64 {
	p := int64ScratchPool.Get().(*[]int64)
	if cap(*p) < n {
		*p = make([]int64, n)
	}
	*p = (*p)[:n]
	return p
}

func putInt64Scratch(p *[]int64) { int64ScratchPool.Put(p) }

var boolScratchPool = sync.Pool{
	New: func() any {
		s := make([]bool, 0, scratchDefaultCap)
		return &s
	},
}

// getBoolScratch returns a pooled slice of length n (contents undefined).
func getBoolScratch(n int) *[]bool {
	p := boolScratchPool.Get().(*[]bool)
	if cap(*p) < n {
		*p = make([]bool, n)
	}
	*p = (*p)[:n]
	return p
}

func putBoolScratch(p *[]bool) { boolScratchPool.Put(p) }

var byteScratchPool = sync.Pool{
	New: func() any {
		s := make([]byte, 0, 8*scratchDefaultCap)
		return &s
	},
}

// getByteScratch returns a pooled slice of length n (contents undefined).
func getByteScratch(n int) *[]byte {
	p := byteScratchPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putByteScratch(p *[]byte) { byteScratchPool.Put(p) }
