package enc

import (
	"bytes"
	"math/rand"
	"testing"
)

// Focused edge cases at scheme boundaries: exact block sizes, exception
// floods, degenerate alphabets, and chunk limits.

func TestPFORExceptionFlood(t *testing.T) {
	// Half the values are far outliers: the 90th-percentile width heuristic
	// must still round-trip (exceptions carry the high bits).
	rng := rand.New(rand.NewSource(91))
	vs := make([]int64, 1000)
	for i := range vs {
		if i%2 == 0 {
			vs[i] = int64(rng.Intn(16))
		} else {
			vs[i] = int64(rng.Intn(1 << 40))
		}
	}
	encoded, err := EncodeIntsWith(nil, PFOR, vs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInts(encoded, len(vs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("value %d = %d, want %d", i, got[i], vs[i])
		}
	}
}

func TestBP128ExactBlockBoundaries(t *testing.T) {
	for _, n := range []int{127, 128, 129, 255, 256, 257, 384} {
		vs := make([]int64, n)
		for i := range vs {
			vs[i] = int64(i * 7 % 1000)
		}
		encoded, err := EncodeIntsWith(nil, FastBP128, vs, DefaultOptions())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := DecodeInts(encoded, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("n=%d value %d mismatch", n, i)
			}
		}
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	vs := make([]int64, 100)
	for i := range vs {
		vs[i] = 42
	}
	encoded, err := EncodeIntsWith(nil, Huffman, vs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInts(encoded, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if got[i] != 42 {
			t.Fatalf("value %d = %d", i, got[i])
		}
	}
}

func TestHuffmanRejectsWideAlphabet(t *testing.T) {
	vs := make([]int64, maxHuffmanSymbols+100)
	for i := range vs {
		vs[i] = int64(i) // more distinct symbols than the cap
	}
	if _, err := EncodeIntsWith(nil, Huffman, vs, DefaultOptions()); err == nil {
		t.Fatal("wide alphabet accepted")
	}
}

func TestChunkedMultiChunk(t *testing.T) {
	// > 256 KB of raw data forces multiple flate chunks.
	n := (ChunkSize/8)*2 + 1000
	rng := rand.New(rand.NewSource(92))
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = int64(rng.Intn(1000)) // compressible
	}
	encoded, err := EncodeIntsWith(nil, Chunked, vs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInts(encoded, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 997 {
		if got[i] != vs[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestFSSTMaxLengthSymbols(t *testing.T) {
	// A corpus dominated by one 8-byte substring exercises the max symbol
	// length.
	vs := make([][]byte, 500)
	for i := range vs {
		vs[i] = bytes.Repeat([]byte("ABCDEFGH"), 4)
	}
	encoded, err := EncodeBytesWith(nil, FSST, vs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(encoded, len(vs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if !bytes.Equal(got[i], vs[i]) {
			t.Fatalf("value %d mismatch", i)
		}
	}
	// 32 repeated bytes should compress to a handful of codes.
	raw := 32 * len(vs)
	if len(encoded) > raw/4 {
		t.Fatalf("FSST %d bytes on maximally repetitive corpus (raw %d)", len(encoded), raw)
	}
}

func TestRoaringCrossContainerBoundary(t *testing.T) {
	// Bits straddling the 65536-position container boundary.
	n := 3 * 65536
	vs := make([]bool, n)
	for i := 65530; i < 65542; i++ {
		vs[i] = true
	}
	vs[131072] = true
	vs[n-1] = true
	encoded, err := EncodeBoolsWith(nil, Roaring, vs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBools(encoded, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func TestDeltaAtSignedExtremes(t *testing.T) {
	// Deltas that individually fit int64 (monotone within range).
	vs := []int64{-1 << 62, 0, 1 << 62}
	encoded, err := EncodeIntsWith(nil, Delta, vs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInts(encoded, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("value %d = %d", i, got[i])
		}
	}
	// Deltas that overflow must be refused.
	if _, err := EncodeIntsWith(nil, Delta, []int64{-1 << 63, 1<<63 - 1}, DefaultOptions()); err == nil {
		t.Fatal("overflowing delta accepted")
	}
}

func TestVarintMaxUint(t *testing.T) {
	vs := []int64{-1} // as uint64: max value, 10-byte varint
	encoded, err := EncodeIntsWith(nil, Varint, vs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInts(encoded, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != -1 {
		t.Fatalf("got %d", got[0])
	}
}

func TestRLESingleRunWholePage(t *testing.T) {
	vs := make([]int64, 100000)
	for i := range vs {
		vs[i] = 7
	}
	encoded, err := EncodeIntsWith(nil, RLE, vs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(encoded) > 32 {
		t.Fatalf("single run took %d bytes", len(encoded))
	}
	got, err := DecodeInts(encoded, len(vs))
	if err != nil {
		t.Fatal(err)
	}
	if got[99999] != 7 {
		t.Fatal("mismatch")
	}
}

func TestMainlyConstAllExceptions(t *testing.T) {
	// Degenerate: no dominant value. Still round-trips (just not small).
	vs := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	encoded, err := EncodeIntsWith(nil, MainlyConst, vs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInts(encoded, len(vs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestGorillaAllIdentical(t *testing.T) {
	vs := make([]float64, 10000)
	for i := range vs {
		vs[i] = 3.14159
	}
	encoded, err := EncodeFloatsWith(nil, GorillaF, vs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// First value 8 bytes + 1 bit per repeat ≈ 1258 bytes.
	if len(encoded) > 1400 {
		t.Fatalf("identical floats took %d bytes", len(encoded))
	}
	got, err := DecodeFloats(encoded, len(vs))
	if err != nil {
		t.Fatal(err)
	}
	if got[9999] != 3.14159 {
		t.Fatal("mismatch")
	}
}
