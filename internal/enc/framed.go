package enc

import (
	"encoding/binary"

	"bullion/internal/bitutil"
)

// ---- Delta (Table 2) ----
//
// Stores the first value and zigzag'd successive differences; the delta
// sub-column cascades (monotonic sequences become tiny bit-packed values).
//
// payload := first(varint) childDeltas
//
// Not applicable when any successive difference overflows int64.

func encodeDeltaInts(dst []byte, vs []int64, opts *Options, depth int) ([]byte, error) {
	if len(vs) == 0 {
		return nil, ErrNotApplicable
	}
	deltas := make([]int64, len(vs)-1)
	for i := 1; i < len(vs); i++ {
		d, ok := subOverflow(vs[i], vs[i-1])
		if !ok {
			return nil, ErrNotApplicable
		}
		deltas[i-1] = int64(bitutil.ZigZag(d))
	}
	dst = binary.AppendVarint(dst, vs[0])
	return encodeChildInts(dst, deltas, opts, depth+1)
}

func decodeDeltaInts(dst []int64, src []byte) ([]int64, error) {
	if len(dst) == 0 {
		return dst, nil
	}
	first, sz := binary.Varint(src)
	if sz <= 0 {
		return nil, corruptf("delta: bad first value")
	}
	deltaStream, _, err := readChild(src[sz:])
	if err != nil {
		return nil, err
	}
	p := getInt64Scratch(len(dst) - 1)
	defer putInt64Scratch(p)
	deltas, err := DecodeIntsInto(*p, deltaStream)
	if err != nil {
		return nil, err
	}
	dst[0] = first
	for i := 1; i < len(dst); i++ {
		dst[i] = dst[i-1] + bitutil.UnZigZag(uint64(deltas[i-1]))
	}
	return dst, nil
}

// ---- DeltaDelta: zigzag delta-of-delta ----
//
// Stores the first value, the first delta, and the zigzag'd second-order
// differences as a cascaded sub-column. Timestamps and monotone ids have
// near-constant deltas, so the second-order stream collapses to tiny
// bit-packed values (mebo's delta-of-delta timestamp result).
//
// payload := first(varint) firstDelta(varint) childDeltaDeltas
//
// Not applicable when any first- or second-order difference overflows.

func encodeDeltaDeltaInts(dst []byte, vs []int64, opts *Options, depth int) ([]byte, error) {
	if len(vs) == 0 {
		return nil, ErrNotApplicable
	}
	dst = binary.AppendVarint(dst, vs[0])
	if len(vs) == 1 {
		return dst, nil
	}
	firstDelta, ok := subOverflow(vs[1], vs[0])
	if !ok {
		return nil, ErrNotApplicable
	}
	dds := make([]int64, len(vs)-2)
	prevDelta := firstDelta
	for i := 2; i < len(vs); i++ {
		d, ok := subOverflow(vs[i], vs[i-1])
		if !ok {
			return nil, ErrNotApplicable
		}
		dd, ok := subOverflow(d, prevDelta)
		if !ok {
			return nil, ErrNotApplicable
		}
		dds[i-2] = int64(bitutil.ZigZag(dd))
		prevDelta = d
	}
	dst = binary.AppendVarint(dst, firstDelta)
	return encodeChildInts(dst, dds, opts, depth+1)
}

func decodeDeltaDeltaInts(dst []int64, src []byte) ([]int64, error) {
	if len(dst) == 0 {
		return dst, nil
	}
	first, sz := binary.Varint(src)
	if sz <= 0 {
		return nil, corruptf("deltadelta: bad first value")
	}
	dst[0] = first
	if len(dst) == 1 {
		return dst, nil
	}
	src = src[sz:]
	firstDelta, sz := binary.Varint(src)
	if sz <= 0 {
		return nil, corruptf("deltadelta: bad first delta")
	}
	ddStream, _, err := readChild(src[sz:])
	if err != nil {
		return nil, err
	}
	p := getInt64Scratch(len(dst) - 2)
	defer putInt64Scratch(p)
	dds, err := DecodeIntsInto(*p, ddStream)
	if err != nil {
		return nil, err
	}
	delta := firstDelta
	dst[1] = first + delta
	for i := 2; i < len(dst); i++ {
		delta += bitutil.UnZigZag(uint64(dds[i-2]))
		dst[i] = dst[i-1] + delta
	}
	return dst, nil
}

// ---- FOR: frame-of-reference + bit-packing ----
//
// Declares a base (the minimum) and bit-packs offsets from it. Unlike
// Delta, every element is independently addressable, which is what makes
// the §2.1 in-place deletion path work on FOR pages.
//
// payload := base(varint) width(1B) packedOffsets

func encodeFORInts(dst []byte, vs []int64) ([]byte, error) {
	if len(vs) == 0 {
		dst = binary.AppendVarint(dst, 0)
		return append(dst, 0), nil
	}
	base := vs[0]
	for _, v := range vs {
		if v < base {
			base = v
		}
	}
	p := getUint64Scratch(len(vs))
	defer putUint64Scratch(p)
	us := *p
	for i, v := range vs {
		d, ok := subOverflow(v, base)
		if !ok {
			return nil, ErrNotApplicable
		}
		us[i] = uint64(d)
	}
	w := bitutil.MaxWidth(us)
	dst = binary.AppendVarint(dst, base)
	dst = append(dst, byte(w))
	return bitutil.Pack(dst, us, w), nil
}

func decodeFORInts(dst []int64, src []byte) ([]int64, error) {
	base, sz := binary.Varint(src)
	if sz <= 0 {
		return nil, corruptf("for: bad base")
	}
	src = src[sz:]
	if len(src) < 1 {
		return nil, corruptf("for: missing width")
	}
	w := int(src[0])
	if err := bitutil.UnpackInt64(dst, src[1:], w, base); err != nil {
		return nil, corruptf("for: %v", err)
	}
	return dst, nil
}

// blockSize is the block granularity for PFOR and FastBP128, matching the
// 128-value vectors the SIMD originals process per iteration. The Go ports
// are scalar — SIMD is a CPU-dispatch detail, the byte format is identical.
const blockSize = 128

// ---- SIMDFastBP128 ----
//
// Per-128-value-block bit packing with a per-block width byte. ZigZag maps
// signed input first so negatives stay cheap.
//
// payload := { width(1B) packed128 }*  (last block may be short)

func encodeBP128Ints(dst []byte, vs []int64) ([]byte, error) {
	p := getUint64Scratch(blockSize)
	defer putUint64Scratch(p)
	us := *p
	for lo := 0; lo < len(vs); lo += blockSize {
		hi := lo + blockSize
		if hi > len(vs) {
			hi = len(vs)
		}
		blk := us[:hi-lo]
		for i := range blk {
			blk[i] = bitutil.ZigZag(vs[lo+i])
		}
		w := bitutil.MaxWidth(blk)
		dst = append(dst, byte(w))
		dst = bitutil.Pack(dst, blk, w)
	}
	return dst, nil
}

func decodeBP128Ints(dst []int64, src []byte) ([]int64, error) {
	for lo := 0; lo < len(dst); lo += blockSize {
		hi := lo + blockSize
		if hi > len(dst) {
			hi = len(dst)
		}
		n := hi - lo
		if len(src) < 1 {
			return nil, corruptf("bp128: missing block width at value %d", lo)
		}
		w := int(src[0])
		src = src[1:]
		need := bitutil.PackedLen(n, w)
		if len(src) < need {
			return nil, corruptf("bp128: short block at value %d", lo)
		}
		if err := bitutil.UnpackZigZagInt64(dst[lo:hi], src[:need], w); err != nil {
			return nil, corruptf("bp128: %v", err)
		}
		src = src[need:]
	}
	return dst, nil
}

// ---- SIMDFastPFOR (patched frame-of-reference) ----
//
// Per 128-value block: pick the width covering ~90% of offsets; values
// needing more bits are "patched" — their low `width` bits go in the packed
// array and the remaining high bits plus positions go to exception lists.
//
// payload := { base(varint) width(1B) nExc(uvarint)
//              packed128 excPos(1B each) excHigh(varint each) }*

func encodePFORInts(dst []byte, vs []int64) ([]byte, error) {
	p := getUint64Scratch(blockSize)
	defer putUint64Scratch(p)
	us := *p
	for lo := 0; lo < len(vs); lo += blockSize {
		hi := lo + blockSize
		if hi > len(vs) {
			hi = len(vs)
		}
		blk := vs[lo:hi]
		base := blk[0]
		for _, v := range blk {
			if v < base {
				base = v
			}
		}
		offs := us[:len(blk)]
		for i, v := range blk {
			d, ok := subOverflow(v, base)
			if !ok {
				return nil, ErrNotApplicable
			}
			offs[i] = uint64(d)
		}
		w := pforWidth(offs)
		var excPos []byte
		var excHigh []uint64
		mask := ^uint64(0)
		if w < 64 {
			mask = (1 << uint(w)) - 1
		}
		lp := getUint64Scratch(len(offs))
		lows := *lp
		for i, u := range offs {
			lows[i] = u & mask
			if high := u &^ mask; high != 0 {
				excPos = append(excPos, byte(i))
				excHigh = append(excHigh, u>>uint(w))
			}
		}
		dst = binary.AppendVarint(dst, base)
		dst = append(dst, byte(w))
		dst = binary.AppendUvarint(dst, uint64(len(excPos)))
		dst = bitutil.Pack(dst, lows, w)
		putUint64Scratch(lp)
		dst = append(dst, excPos...)
		for _, h := range excHigh {
			dst = binary.AppendUvarint(dst, h)
		}
	}
	return dst, nil
}

// pforWidth picks the width covering at least 90% of offsets (the classic
// PFOR heuristic), trading a few exceptions for a narrower packed array.
func pforWidth(offs []uint64) int {
	var hist [65]int
	for _, u := range offs {
		hist[bitutil.WidthOf(u)]++
	}
	need := (len(offs)*9 + 9) / 10 // ceil(0.9n)
	covered := 0
	for w := 0; w <= 64; w++ {
		covered += hist[w]
		if covered >= need {
			return w
		}
	}
	return 64
}

func decodePFORInts(dst []int64, src []byte) ([]int64, error) {
	for lo := 0; lo < len(dst); lo += blockSize {
		hi := lo + blockSize
		if hi > len(dst) {
			hi = len(dst)
		}
		n := hi - lo
		base, sz := binary.Varint(src)
		if sz <= 0 {
			return nil, corruptf("pfor: bad base at value %d", lo)
		}
		src = src[sz:]
		if len(src) < 1 {
			return nil, corruptf("pfor: missing width")
		}
		w := int(src[0])
		src = src[1:]
		nExc, sz := binary.Uvarint(src)
		if sz <= 0 || nExc > uint64(n) {
			return nil, corruptf("pfor: bad exception count")
		}
		src = src[sz:]
		need := bitutil.PackedLen(n, w)
		if len(src) < need {
			return nil, corruptf("pfor: short packed block")
		}
		// Unpack the low bits with the base already added; exceptions then
		// patch in their high bits additively (low | high<<w == low + high<<w
		// because the bit ranges are disjoint).
		if err := bitutil.UnpackInt64(dst[lo:hi], src[:need], w, base); err != nil {
			return nil, corruptf("pfor: %v", err)
		}
		src = src[need:]
		if len(src) < int(nExc) {
			return nil, corruptf("pfor: short exception positions")
		}
		excPos := src[:nExc]
		src = src[nExc:]
		for _, p := range excPos {
			high, sz := binary.Uvarint(src)
			if sz <= 0 {
				return nil, corruptf("pfor: bad exception value")
			}
			src = src[sz:]
			if int(p) >= n {
				return nil, corruptf("pfor: exception position %d out of block", p)
			}
			dst[lo+int(p)] += int64(high << uint(w))
		}
	}
	return dst, nil
}
