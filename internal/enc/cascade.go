package enc

// The cascade selector. Following BtrBlocks and Procella, scheme selection
// is sampling-based: candidates are nominated from cheap distribution
// statistics, trial-encoded on a sample, and scored with a Nimble-style
// linear objective over compressed size and relative encode/decode cost
// (Options.WriteWeight / Options.ReadWeight). Composite winners cascade
// into their sub-streams up to Options.MaxDepth.

// relCost holds unit-less relative encode/decode costs per scheme, measured
// once against Plain=1 on this package's benchmarks. They only steer the
// linear objective; sizes come from real trial encodes.
type relCost struct{ enc, dec float64 }

var intCosts = map[SchemeID]relCost{
	Plain:       {0.2, 0.2},
	BitPack:     {0.6, 0.5},
	Varint:      {0.8, 1.0},
	ZigZagVar:   {0.9, 1.1},
	RLE:         {0.7, 0.4},
	Dict:        {1.4, 0.6},
	Delta:       {0.9, 0.8},
	DeltaDelta:  {1.0, 0.7},
	FOR:         {0.7, 0.5},
	PFOR:        {1.1, 0.7},
	FastBP128:   {0.8, 0.6},
	Constant:    {0.1, 0.05},
	MainlyConst: {0.9, 0.3},
	Huffman:     {3.0, 4.0},
	BitShuffle:  {5.0, 5.0},
	Chunked:     {6.0, 3.0},
}

var floatCosts = map[SchemeID]relCost{
	PlainF:    {0.2, 0.2},
	GorillaF:  {1.5, 1.5},
	ChimpF:    {1.6, 1.6},
	ALPF:      {1.2, 0.8},
	PseudoDec: {1.3, 0.9},
	ConstantF: {0.1, 0.05},
	ChunkedF:  {6.0, 3.0},
}

var bytesCosts = map[SchemeID]relCost{
	PlainB:    {0.2, 0.2},
	DictB:     {1.4, 0.6},
	FSST:      {3.0, 1.2},
	ChunkedB:  {6.0, 3.0},
	ConstantB: {0.1, 0.05},
}

// sampleInts takes up to opts.SampleSize values as a handful of contiguous
// runs, preserving local patterns (runs, deltas) that random point samples
// would destroy.
func sampleInts(vs []int64, size int) []int64 {
	if len(vs) <= size {
		return vs
	}
	const runs = 8
	runLen := size / runs
	out := make([]int64, 0, size)
	stride := (len(vs) - runLen) / (runs - 1)
	for r := 0; r < runs; r++ {
		lo := r * stride
		out = append(out, vs[lo:lo+runLen]...)
	}
	return out
}

// sampleFloats mirrors sampleInts for float streams.
func sampleFloats(vs []float64, size int) []float64 {
	if len(vs) <= size {
		return vs
	}
	const runs = 8
	runLen := size / runs
	out := make([]float64, 0, size)
	stride := (len(vs) - runLen) / (runs - 1)
	for r := 0; r < runs; r++ {
		lo := r * stride
		out = append(out, vs[lo:lo+runLen]...)
	}
	return out
}

// sampleBytes mirrors sampleInts for byte-string streams: strided
// contiguous runs, so a locally duplicate-heavy prefix (e.g. a masked
// page) cannot misrepresent the whole stream's cardinality.
func sampleBytes(vs [][]byte, size int) [][]byte {
	if len(vs) <= size {
		return vs
	}
	const runs = 8
	runLen := size / runs
	if runLen == 0 {
		runLen = 1
	}
	out := make([][]byte, 0, size)
	stride := (len(vs) - runLen) / (runs - 1)
	for r := 0; r < runs; r++ {
		lo := r * stride
		out = append(out, vs[lo:lo+runLen]...)
	}
	return out
}

// chooseIntScheme nominates candidates from statistics and returns the
// lowest-cost scheme for vs at the given cascade depth.
func chooseIntScheme(vs []int64, opts *Options, depth int) SchemeID {
	if len(vs) == 0 {
		return Plain
	}
	sample := sampleInts(vs, opts.SampleSize)
	s := statsOf(sample)

	if s.distinct == 1 && statsOf(vs).distinct == 1 && opts.allows(Constant) {
		return Constant
	}

	terminal := depth >= opts.MaxDepth
	var cands []SchemeID
	add := func(id SchemeID) {
		if opts.allows(id) {
			cands = append(cands, id)
		}
	}

	add(Plain)
	if !s.hasNeg {
		add(BitPack)
		add(Varint)
	}
	add(ZigZagVar)
	if s.rangeWidth <= 64 {
		add(FOR)
		add(PFOR)
	}
	add(FastBP128)
	if s.distinct <= maxHuffmanSymbols/2 {
		add(Huffman)
	}
	if !terminal {
		if s.runs*2 <= s.n {
			add(RLE)
		}
		if s.distinct <= distinctCap && s.distinct*2 <= s.n {
			add(Dict)
		}
		if s.majorityN*10 >= s.n*7 {
			add(MainlyConst)
		}
		if s.deltaSafe {
			add(Delta)
			// Second-order deltas only pay off when first-order deltas
			// cluster tightly (timestamps, monotone ids); the sortedness
			// gate keeps the trial-encode set lean on unordered streams.
			if s.sorted && s.n >= 3 {
				add(DeltaDelta)
			}
		}
		add(BitShuffle)
		add(Chunked)
	}
	if len(cands) == 0 {
		return Plain
	}

	best, bestScore := Plain, -1.0
	for _, id := range cands {
		trial, err := encodeIntsWithDepth(nil, id, sample, opts, depth)
		if err != nil {
			continue
		}
		score := objective(float64(len(trial)), intCosts[id], opts)
		if bestScore < 0 || score < bestScore {
			best, bestScore = id, score
		}
	}
	return best
}

// objective is the linear scoring function: size dominates, encode/decode
// costs contribute proportionally to their weights.
func objective(size float64, c relCost, opts *Options) float64 {
	return size * (1 + opts.WriteWeight*c.enc + opts.ReadWeight*c.dec)
}

// chooseFloatScheme mirrors chooseIntScheme for float64 streams.
func chooseFloatScheme(vs []float64, opts *Options, depth int) SchemeID {
	if len(vs) == 0 {
		return PlainF
	}
	allConst := true
	for _, v := range vs {
		if v != vs[0] {
			allConst = false
			break
		}
	}
	if allConst && opts.allows(ConstantF) {
		return ConstantF
	}
	sample := sampleFloats(vs, opts.SampleSize)
	var cands []SchemeID
	add := func(id SchemeID) {
		if opts.allows(id) {
			cands = append(cands, id)
		}
	}
	add(PlainF)
	add(GorillaF)
	add(ChimpF)
	if depth < opts.MaxDepth {
		add(ALPF)
		add(PseudoDec)
		add(ChunkedF)
	}
	best, bestScore := PlainF, -1.0
	for _, id := range cands {
		trial, err := encodeFloatsWithDepth(nil, id, sample, opts, depth)
		if err != nil {
			continue
		}
		score := objective(float64(len(trial)), floatCosts[id], opts)
		if bestScore < 0 || score < bestScore {
			best, bestScore = id, score
		}
	}
	return best
}

// chooseBytesScheme mirrors chooseIntScheme for [][]byte streams.
func chooseBytesScheme(vs [][]byte, opts *Options, depth int) SchemeID {
	if len(vs) == 0 {
		return PlainB
	}
	allConst := true
	for _, v := range vs {
		if string(v) != string(vs[0]) {
			allConst = false
			break
		}
	}
	if allConst && opts.allows(ConstantB) {
		return ConstantB
	}
	size := opts.SampleSize / 8 // blobs are heavier than ints; smaller sample
	if size < 16 {
		size = 16
	}
	sample := sampleBytes(vs, size)
	var cands []SchemeID
	add := func(id SchemeID) {
		if opts.allows(id) {
			cands = append(cands, id)
		}
	}
	add(PlainB)
	if depth < opts.MaxDepth {
		add(DictB)
		add(FSST)
		add(ChunkedB)
	}
	best, bestScore := PlainB, -1.0
	for _, id := range cands {
		trial, err := encodeBytesWithDepth(nil, id, sample, opts, depth)
		if err != nil {
			continue
		}
		score := objective(float64(len(trial)), bytesCosts[id], opts)
		if bestScore < 0 || score < bestScore {
			best, bestScore = id, score
		}
	}
	return best
}
