package enc

// Amortized cascade selection. The sampling-based selector (cascade.go)
// trial-encodes every nominated candidate, which makes scheme selection —
// not encoding — the dominant ingest cost when it reruns for every page
// (the per-chunk advisor overhead LEA and the columnar-format evaluations
// identify). A SelectorCache remembers the winning top-level scheme per
// stream of a logical column and reuses it for subsequent pages, falling
// back to a full re-selection only when the cached scheme stops applying
// or its compression ratio drifts past Options.ResampleDrift.

// DefaultResampleDrift is the relative encoded-size drift that invalidates
// a cached selector decision when Options.ResampleDrift is zero.
const DefaultResampleDrift = 0.25

// SelectorCache caches top-level cascade decisions across the successive
// pages of one logical column. A page may carry several top-level streams
// (list columns encode a lengths stream and a values stream); entries are
// keyed by the stream's ordinal within the page, which is fixed by the
// column's type. The cache is deterministic: given the same sequence of
// pages it makes the same decisions, regardless of what other columns do —
// this is what keeps parallel writers byte-identical to sequential ones.
//
// A SelectorCache is NOT safe for concurrent use. The core writer gives
// each column its own cache and encodes that column's pages in file order.
type SelectorCache struct {
	drift   float64
	ordinal int
	entries []selectorEntry

	hits      int64
	resamples int64
}

type selectorEntry struct {
	valid  bool
	scheme SchemeID
	ratio  float64 // encoded/raw size when the full selection last ran
}

// NewSelectorCache returns a cache that re-samples when the encoded-size
// ratio moves more than drift (relative) from the ratio observed at
// selection time. drift <= 0 selects DefaultResampleDrift.
func NewSelectorCache(drift float64) *SelectorCache {
	if drift <= 0 {
		drift = DefaultResampleDrift
	}
	return &SelectorCache{drift: drift}
}

// BeginPage resets the stream ordinal; the writer calls it once per page
// before the page's top-level Encode* calls.
func (c *SelectorCache) BeginPage() { c.ordinal = 0 }

// Stats reports how often the cache reused a decision versus running the
// full sampling-based selection (the first page of every stream counts as
// a resample).
func (c *SelectorCache) Stats() (hits, resamples int64) { return c.hits, c.resamples }

func (c *SelectorCache) entry() *selectorEntry {
	for c.ordinal >= len(c.entries) {
		c.entries = append(c.entries, selectorEntry{})
	}
	e := &c.entries[c.ordinal]
	c.ordinal++
	return e
}

// drifted reports whether ratio moved too far from the entry's baseline.
// The small absolute slack keeps near-zero baselines (constant pages) from
// re-sampling on sub-byte noise.
func (c *SelectorCache) drifted(base, ratio float64) bool {
	d := ratio - base
	if d < 0 {
		d = -d
	}
	return d > c.drift*base+1e-3
}

// encodeInts is the cached path of EncodeInts: try the remembered scheme,
// fall back to full selection when it errors (e.g. Constant on a page that
// is no longer constant) or drifts.
func (c *SelectorCache) encodeInts(dst []byte, vs []int64, opts *Options) ([]byte, error) {
	if len(vs) == 0 {
		return encodeIntsWithDepth(dst, chooseIntScheme(vs, opts, 0), vs, opts, 0)
	}
	e := c.entry()
	mark := len(dst)
	raw := 8 * float64(len(vs))
	if e.valid {
		out, err := encodeIntsWithDepth(dst, e.scheme, vs, opts, 0)
		if err == nil {
			if ratio := float64(len(out)-mark) / raw; !c.drifted(e.ratio, ratio) {
				c.hits++
				return out, nil
			}
		}
		dst = dst[:mark]
	}
	c.resamples++
	id := chooseIntScheme(vs, opts, 0)
	out, err := encodeIntsWithDepth(dst, id, vs, opts, 0)
	if err != nil {
		return nil, err
	}
	*e = selectorEntry{valid: true, scheme: id, ratio: float64(len(out)-mark) / raw}
	return out, nil
}

// encodeFloats mirrors encodeInts for float64 streams.
func (c *SelectorCache) encodeFloats(dst []byte, vs []float64, opts *Options) ([]byte, error) {
	if len(vs) == 0 {
		return encodeFloatsWithDepth(dst, chooseFloatScheme(vs, opts, 0), vs, opts, 0)
	}
	e := c.entry()
	mark := len(dst)
	raw := 8 * float64(len(vs))
	if e.valid {
		out, err := encodeFloatsWithDepth(dst, e.scheme, vs, opts, 0)
		if err == nil {
			if ratio := float64(len(out)-mark) / raw; !c.drifted(e.ratio, ratio) {
				c.hits++
				return out, nil
			}
		}
		dst = dst[:mark]
	}
	c.resamples++
	id := chooseFloatScheme(vs, opts, 0)
	out, err := encodeFloatsWithDepth(dst, id, vs, opts, 0)
	if err != nil {
		return nil, err
	}
	*e = selectorEntry{valid: true, scheme: id, ratio: float64(len(out)-mark) / raw}
	return out, nil
}

// encodeBytes mirrors encodeInts for byte-string streams.
func (c *SelectorCache) encodeBytes(dst []byte, vs [][]byte, opts *Options) ([]byte, error) {
	if len(vs) == 0 {
		return encodeBytesWithDepth(dst, chooseBytesScheme(vs, opts, 0), vs, opts, 0)
	}
	e := c.entry()
	mark := len(dst)
	raw := float64(len(vs))
	for _, v := range vs {
		raw += float64(len(v))
	}
	if e.valid {
		out, err := encodeBytesWithDepth(dst, e.scheme, vs, opts, 0)
		if err == nil {
			if ratio := float64(len(out)-mark) / raw; !c.drifted(e.ratio, ratio) {
				c.hits++
				return out, nil
			}
		}
		dst = dst[:mark]
	}
	c.resamples++
	id := chooseBytesScheme(vs, opts, 0)
	out, err := encodeBytesWithDepth(dst, id, vs, opts, 0)
	if err != nil {
		return nil, err
	}
	*e = selectorEntry{valid: true, scheme: id, ratio: float64(len(out)-mark) / raw}
	return out, nil
}
