package enc

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"io"
)

// ChunkSize is the raw-byte chunk granularity for the Chunked scheme,
// matching the paper's 256 KB (Table 2). Each chunk compresses
// independently so partial reads stay cheap.
const ChunkSize = 256 << 10

// appendFlateChunks compresses raw in ChunkSize chunks with DEFLATE (the
// stdlib substitute for zstd; see DESIGN.md substitutions) and appends:
//
//	nChunks(uvarint) { compressedLen(uvarint) compressedBytes }*
func appendFlateChunks(dst, raw []byte) ([]byte, error) {
	nChunks := (len(raw) + ChunkSize - 1) / ChunkSize
	dst = binary.AppendUvarint(dst, uint64(nChunks))
	var buf bytes.Buffer
	for c := 0; c < nChunks; c++ {
		lo := c * ChunkSize
		hi := lo + ChunkSize
		if hi > len(raw) {
			hi = len(raw)
		}
		buf.Reset()
		fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
		if err != nil {
			return nil, err
		}
		if _, err := fw.Write(raw[lo:hi]); err != nil {
			return nil, err
		}
		if err := fw.Close(); err != nil {
			return nil, err
		}
		dst = binary.AppendUvarint(dst, uint64(buf.Len()))
		dst = append(dst, buf.Bytes()...)
	}
	return dst, nil
}

// readFlateChunks decompresses a chunk sequence, verifying the total
// decompressed size equals want.
func readFlateChunks(src []byte, want int) ([]byte, error) {
	nChunks, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, corruptf("chunked: bad chunk count")
	}
	src = src[sz:]
	out := make([]byte, 0, want)
	for c := uint64(0); c < nChunks; c++ {
		clen, sz := binary.Uvarint(src)
		if sz <= 0 || clen > uint64(len(src)-sz) {
			return nil, corruptf("chunked: bad chunk %d length", c)
		}
		src = src[sz:]
		fr := flate.NewReader(bytes.NewReader(src[:clen]))
		dec, err := io.ReadAll(fr)
		if err != nil {
			return nil, corruptf("chunked: chunk %d: %v", c, err)
		}
		if err := fr.Close(); err != nil {
			return nil, corruptf("chunked: chunk %d close: %v", c, err)
		}
		out = append(out, dec...)
		src = src[clen:]
	}
	if len(out) != want {
		return nil, corruptf("chunked: decompressed %d bytes, want %d", len(out), want)
	}
	return out, nil
}
