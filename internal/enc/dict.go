package enc

import (
	"encoding/binary"
	"sort"

	"bullion/internal/bitutil"
)

// Dictionary (Table 2): unique values become integer codes. The dictionary
// is stored in the stream header (the paper stores it in the footer — the
// framing is the page's concern; the bytes are identical) and the code
// sub-column cascades, typically into bit-packing or RLE.
//
// Per §2.1, every dictionary reserves a mask entry: code len(dict) denotes
// a compliance-masked value. Encoders never emit it; the Level-2 deletion
// path repoints codes at it in place. Decoders materialize it as
// DictMaskValue.
//
// payload := dictLen(uvarint) childDictValues childCodes

// DictMaskValue is the value decoded for compliance-masked dictionary codes.
const DictMaskValue int64 = 0

func encodeDictInts(dst []byte, vs []int64, opts *Options, depth int) ([]byte, error) {
	uniq := make(map[int64]int64, 64)
	var dictVals []int64
	for _, v := range vs {
		if _, ok := uniq[v]; !ok {
			uniq[v] = 0
			dictVals = append(dictVals, v)
		}
	}
	// Sorted dictionaries compress better and make encoding deterministic.
	sort.Slice(dictVals, func(i, j int) bool { return dictVals[i] < dictVals[j] })
	for i, v := range dictVals {
		uniq[v] = int64(i)
	}
	codes := make([]int64, len(vs))
	for i, v := range vs {
		codes[i] = uniq[v]
	}
	dst = binary.AppendUvarint(dst, uint64(len(dictVals)))
	var err error
	if dst, err = encodeChildInts(dst, dictVals, opts, depth+1); err != nil {
		return nil, err
	}
	// Codes must remain in-place maskable at Level 2: the mask code is
	// len(dict), one beyond the largest real code, so codes are bit-packed
	// at a width wide enough to also represent the mask code rather than
	// letting the cascade pick a scheme that cannot hold an unseen value.
	child, err := encodeBitPackWidth(nil, codes, maskCodeWidth(len(dictVals)))
	if err != nil {
		return nil, err
	}
	return appendChild(dst, child), nil
}

// maskCodeWidth is the bit width holding codes 0..dictLen inclusive
// (dictLen itself being the reserved mask code).
func maskCodeWidth(dictLen int) int {
	w := 1
	for (1 << uint(w)) <= dictLen {
		w++
	}
	return w
}

// encodeBitPackWidth emits a complete BitPack stream at an explicit width.
func encodeBitPackWidth(dst []byte, vs []int64, w int) ([]byte, error) {
	p := getUint64Scratch(len(vs))
	defer putUint64Scratch(p)
	us := *p
	for i, v := range vs {
		if v < 0 || bitutil.WidthOf(uint64(v)) > w {
			return nil, ErrNotApplicable
		}
		us[i] = uint64(v)
	}
	dst = append(dst, byte(BitPack), byte(w))
	return bitutil.Pack(dst, us, w), nil
}

func decodeDictInts(dst []int64, src []byte) ([]int64, error) {
	dictLen, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, corruptf("dict: bad dictionary length")
	}
	// A dictionary cannot have more distinct values than rows; hostile
	// lengths must not drive allocations.
	if dictLen > uint64(len(dst))+1 {
		return nil, corruptf("dict: dictionary of %d entries for %d values", dictLen, len(dst))
	}
	src = src[sz:]
	dictStream, src, err := readChild(src)
	if err != nil {
		return nil, err
	}
	codeStream, _, err := readChild(src)
	if err != nil {
		return nil, err
	}
	dictVals, err := DecodeInts(dictStream, int(dictLen))
	if err != nil {
		return nil, err
	}
	codes, err := DecodeInts(codeStream, len(dst))
	if err != nil {
		return nil, err
	}
	for i, c := range codes {
		switch {
		case c >= 0 && c < int64(dictLen):
			dst[i] = dictVals[c]
		case c == int64(dictLen): // reserved compliance mask entry
			dst[i] = DictMaskValue
		default:
			return nil, corruptf("dict: code %d out of range [0,%d]", c, dictLen)
		}
	}
	return dst, nil
}
