package enc

import "encoding/binary"

// RLE (Table 2): consecutive identical elements become (value, count)
// pairs, stored as two sub-columns — run values and run lengths — each
// recursively encoded. Run lengths are small positive integers, so they
// typically cascade into bit-packing or varint.
//
// payload := nRuns(uvarint) childValues childLengths

func encodeRLEInts(dst []byte, vs []int64, opts *Options, depth int) ([]byte, error) {
	values, lengths := rleRuns(vs)
	dst = binary.AppendUvarint(dst, uint64(len(values)))
	var err error
	if dst, err = encodeChildInts(dst, values, opts, depth+1); err != nil {
		return nil, err
	}
	return encodeChildInts(dst, lengths, opts, depth+1)
}

// rleRuns splits vs into run values and run lengths.
func rleRuns(vs []int64) (values, lengths []int64) {
	for i := 0; i < len(vs); {
		j := i + 1
		for j < len(vs) && vs[j] == vs[i] {
			j++
		}
		values = append(values, vs[i])
		lengths = append(lengths, int64(j-i))
		i = j
	}
	return values, lengths
}

func decodeRLEInts(dst []int64, src []byte) ([]int64, error) {
	nRuns, sz := binary.Uvarint(src)
	if sz <= 0 || nRuns > uint64(len(dst)) {
		return nil, corruptf("rle: bad run count %d for %d values", nRuns, len(dst))
	}
	src = src[sz:]
	valStream, src, err := readChild(src)
	if err != nil {
		return nil, err
	}
	lenStream, _, err := readChild(src)
	if err != nil {
		return nil, err
	}
	vp := getInt64Scratch(int(nRuns))
	defer putInt64Scratch(vp)
	values, err := DecodeIntsInto(*vp, valStream)
	if err != nil {
		return nil, err
	}
	lp := getInt64Scratch(int(nRuns))
	defer putInt64Scratch(lp)
	lengths, err := DecodeIntsInto(*lp, lenStream)
	if err != nil {
		return nil, err
	}
	pos := 0
	for r := range values {
		l := int(lengths[r])
		if l <= 0 || pos+l > len(dst) {
			return nil, corruptf("rle: run %d length %d overflows %d values", r, l, len(dst))
		}
		fillInt64(dst[pos:pos+l], values[r])
		pos += l
	}
	if pos != len(dst) {
		return nil, corruptf("rle: runs cover %d of %d values", pos, len(dst))
	}
	return dst, nil
}
