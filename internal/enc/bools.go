package enc

import (
	"encoding/binary"
	"math/bits"
	"sort"

	"bullion/internal/bitutil"
)

// EncodeBools appends an encoded stream for the boolean column vs, choosing
// between bit-packing, sparse position lists, and roaring containers by
// density.
func EncodeBools(dst []byte, vs []bool, opts *Options) ([]byte, error) {
	id := chooseBoolScheme(vs, opts)
	return EncodeBoolsWith(dst, id, vs)
}

// EncodeBoolsWith appends an encoded stream using the given scheme.
func EncodeBoolsWith(dst []byte, id SchemeID, vs []bool) ([]byte, error) {
	dst = append(dst, byte(id))
	switch id {
	case PlainBool:
		return encodePlainBools(dst, vs), nil
	case SparseBool:
		return encodeSparseBools(dst, vs), nil
	case Roaring:
		return encodeRoaringBools(dst, vs), nil
	default:
		return nil, corruptf("%v is not a bool scheme", id)
	}
}

// DecodeBools decodes an n-value boolean stream.
func DecodeBools(src []byte, n int) ([]bool, error) {
	if len(src) == 0 && n == 0 {
		return nil, nil
	}
	return DecodeBoolsInto(make([]bool, n), src)
}

// DecodeBoolsInto decodes len(dst) values from src into dst. Every element
// of dst is overwritten, so callers may pass recycled slices.
func DecodeBoolsInto(dst []bool, src []byte) ([]bool, error) {
	if len(src) == 0 {
		if len(dst) == 0 {
			return dst, nil
		}
		return nil, corruptf("empty stream for %d bools", len(dst))
	}
	id := SchemeID(src[0])
	payload := src[1:]
	switch id {
	case PlainBool:
		return decodePlainBools(dst, payload)
	case SparseBool:
		return decodeSparseBools(dst, payload)
	case Roaring:
		return decodeRoaringBools(dst, payload)
	default:
		return nil, corruptf("%v is not a bool scheme", id)
	}
}

func chooseBoolScheme(vs []bool, opts *Options) SchemeID {
	ones := 0
	for _, v := range vs {
		if v {
			ones++
		}
	}
	minority := ones
	if len(vs)-ones < minority {
		minority = len(vs) - ones
	}
	// SparseBool: 4B/position beats 1 bit/value below ~3% density.
	if opts.allows(SparseBool) && len(vs) > 0 && minority*32 < len(vs) {
		return SparseBool
	}
	if opts.allows(Roaring) && len(vs) >= 4096 {
		return Roaring
	}
	if opts.allows(PlainBool) {
		return PlainBool
	}
	return PlainBool
}

// ---- PlainBool: bit-packed ----

func encodePlainBools(dst []byte, vs []bool) []byte {
	b := bitutil.NewBitmap(len(vs))
	for i, v := range vs {
		if v {
			b.Set(i)
		}
	}
	for _, w := range b.Words() {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

func decodePlainBools(dst []bool, src []byte) ([]bool, error) {
	words := (len(dst) + 63) / 64
	if len(src) < words*8 {
		return nil, corruptf("plainbool: have %d bytes, need %d", len(src), words*8)
	}
	for i := range dst {
		w := binary.LittleEndian.Uint64(src[(i>>6)*8:])
		dst[i] = w&(1<<uint(i&63)) != 0
	}
	return dst, nil
}

// ---- SparseBool: polarity bit + positions of the rare value ----
//
// payload := polarity(1B: the rare value) nPos(uvarint) positions(uvarint deltas)

func encodeSparseBools(dst []byte, vs []bool) []byte {
	ones := 0
	for _, v := range vs {
		if v {
			ones++
		}
	}
	rareIsTrue := ones*2 <= len(vs)
	var positions []int
	for i, v := range vs {
		if v == rareIsTrue {
			positions = append(positions, i)
		}
	}
	pol := byte(0)
	if rareIsTrue {
		pol = 1
	}
	dst = append(dst, pol)
	dst = binary.AppendUvarint(dst, uint64(len(positions)))
	prev := 0
	for _, p := range positions {
		dst = binary.AppendUvarint(dst, uint64(p-prev))
		prev = p
	}
	return dst
}

func decodeSparseBools(dst []bool, src []byte) ([]bool, error) {
	n := len(dst)
	if len(src) < 1 {
		return nil, corruptf("sparsebool: missing polarity")
	}
	rareIsTrue := src[0] == 1
	src = src[1:]
	nPos, sz := binary.Uvarint(src)
	if sz <= 0 || nPos > uint64(n) {
		return nil, corruptf("sparsebool: bad position count")
	}
	src = src[sz:]
	// Fill with the common value first: dst may be a recycled slice.
	for i := range dst {
		dst[i] = !rareIsTrue
	}
	pos := uint64(0)
	for i := uint64(0); i < nPos; i++ {
		d, sz := binary.Uvarint(src)
		if sz <= 0 {
			return nil, corruptf("sparsebool: truncated positions")
		}
		src = src[sz:]
		// Accumulate unsigned and reject wrap-around: a hostile delta must
		// not turn into a negative index.
		if pos += d; pos < d || pos >= uint64(n) {
			return nil, corruptf("sparsebool: position %d out of range", pos)
		}
		dst[pos] = rareIsTrue
	}
	return dst, nil
}

// ---- Roaring (Table 2, [13]) ----
//
// 16-bit-keyed containers over the set-bit positions; each container is the
// cheapest of an array (sorted uint16s), a bitmap (8 KB), or run list.
//
// payload := nContainers(uvarint)
//            { key(2B) type(1B) cardinality(uvarint) containerBytes }*

const (
	roaringArray  = 0
	roaringBitmap = 1
	roaringRun    = 2
)

func encodeRoaringBools(dst []byte, vs []bool) []byte {
	// Group set positions by high 16 bits.
	byKey := map[uint16][]uint16{}
	var keys []uint16
	for i, v := range vs {
		if !v {
			continue
		}
		k := uint16(i >> 16)
		if _, ok := byKey[k]; !ok {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], uint16(i&0xFFFF))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		lows := byKey[k] // already sorted: produced in index order
		dst = binary.LittleEndian.AppendUint16(dst, k)
		// Count runs to decide representation.
		runs := 0
		for i := 0; i < len(lows); {
			j := i + 1
			for j < len(lows) && lows[j] == lows[j-1]+1 {
				j++
			}
			runs++
			i = j
		}
		arrCost := 2 * len(lows)
		bmpCost := 8192
		runCost := 4 * runs
		switch {
		case runCost <= arrCost && runCost <= bmpCost:
			dst = append(dst, roaringRun)
			dst = binary.AppendUvarint(dst, uint64(runs))
			for i := 0; i < len(lows); {
				j := i + 1
				for j < len(lows) && lows[j] == lows[j-1]+1 {
					j++
				}
				dst = binary.LittleEndian.AppendUint16(dst, lows[i])
				dst = binary.LittleEndian.AppendUint16(dst, uint16(j-i-1)) // length-1
				i = j
			}
		case arrCost <= bmpCost:
			dst = append(dst, roaringArray)
			dst = binary.AppendUvarint(dst, uint64(len(lows)))
			for _, l := range lows {
				dst = binary.LittleEndian.AppendUint16(dst, l)
			}
		default:
			dst = append(dst, roaringBitmap)
			dst = binary.AppendUvarint(dst, uint64(len(lows)))
			var words [1024]uint64
			for _, l := range lows {
				words[l>>6] |= 1 << uint(l&63)
			}
			for _, w := range words {
				dst = binary.LittleEndian.AppendUint64(dst, w)
			}
		}
	}
	return dst
}

func decodeRoaringBools(dst []bool, src []byte) ([]bool, error) {
	n := len(dst)
	clear(dst) // dst may be a recycled slice
	nC, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, corruptf("roaring: bad container count")
	}
	src = src[sz:]
	setBit := func(key uint16, low uint16) error {
		i := int(key)<<16 | int(low)
		if i >= n {
			return corruptf("roaring: position %d out of range %d", i, n)
		}
		dst[i] = true
		return nil
	}
	for c := uint64(0); c < nC; c++ {
		if len(src) < 3 {
			return nil, corruptf("roaring: truncated container header")
		}
		key := binary.LittleEndian.Uint16(src)
		typ := src[2]
		src = src[3:]
		card, sz := binary.Uvarint(src)
		if sz <= 0 {
			return nil, corruptf("roaring: bad cardinality")
		}
		src = src[sz:]
		switch typ {
		case roaringArray:
			if len(src) < int(card)*2 {
				return nil, corruptf("roaring: truncated array container")
			}
			for i := uint64(0); i < card; i++ {
				if err := setBit(key, binary.LittleEndian.Uint16(src[2*i:])); err != nil {
					return nil, err
				}
			}
			src = src[card*2:]
		case roaringBitmap:
			if len(src) < 8192 {
				return nil, corruptf("roaring: truncated bitmap container")
			}
			for w := 0; w < 1024; w++ {
				word := binary.LittleEndian.Uint64(src[w*8:])
				for word != 0 {
					bitIdx := bits.TrailingZeros64(word)
					if err := setBit(key, uint16(w*64+bitIdx)); err != nil {
						return nil, err
					}
					word &= word - 1
				}
			}
			src = src[8192:]
		case roaringRun:
			for r := uint64(0); r < card; r++ {
				if len(src) < 4 {
					return nil, corruptf("roaring: truncated run container")
				}
				start := binary.LittleEndian.Uint16(src)
				length := int(binary.LittleEndian.Uint16(src[2:])) + 1
				src = src[4:]
				for i := 0; i < length; i++ {
					if err := setBit(key, start+uint16(i)); err != nil {
						return nil, err
					}
				}
			}
		default:
			return nil, corruptf("roaring: unknown container type %d", typ)
		}
	}
	return dst, nil
}
