package enc

import (
	"bytes"
	"encoding/binary"
	"sort"
)

// EncodeBytes appends an encoded stream for the byte-string column vs,
// choosing the scheme with the cascade selector.
func EncodeBytes(dst []byte, vs [][]byte, opts *Options) ([]byte, error) {
	return encodeBytesDepth(dst, vs, opts, 0)
}

// EncodeBytesWith appends an encoded stream using the given scheme.
func EncodeBytesWith(dst []byte, id SchemeID, vs [][]byte, opts *Options) ([]byte, error) {
	return encodeBytesWithDepth(dst, id, vs, opts, 0)
}

// DecodeBytes decodes an n-value byte-string stream. The returned values
// may alias src.
func DecodeBytes(src []byte, n int) ([][]byte, error) {
	if len(src) == 0 && n == 0 {
		return nil, nil
	}
	return DecodeBytesInto(make([][]byte, n), src)
}

// DecodeBytesInto decodes len(dst) values from src, reusing dst's outer
// slice. Every element is overwritten, so callers may pass recycled
// slices; the decoded values themselves may alias src.
func DecodeBytesInto(dst [][]byte, src []byte) ([][]byte, error) {
	if len(src) == 0 {
		if len(dst) == 0 {
			return dst, nil
		}
		return nil, corruptf("empty stream for %d strings", len(dst))
	}
	id := SchemeID(src[0])
	payload := src[1:]
	switch id {
	case PlainB:
		return decodePlainBytes(dst, payload)
	case DictB:
		return decodeDictBytes(dst, payload)
	case FSST:
		return decodeFSST(dst, payload)
	case ChunkedB:
		return decodeChunkedBytes(dst, payload)
	case ConstantB:
		return decodeConstantBytes(dst, payload)
	default:
		return nil, corruptf("%v is not a bytes scheme", id)
	}
}

func encodeBytesDepth(dst []byte, vs [][]byte, opts *Options, depth int) ([]byte, error) {
	if depth == 0 && opts.Cache != nil {
		return opts.Cache.encodeBytes(dst, vs, opts)
	}
	id := chooseBytesScheme(vs, opts, depth)
	return encodeBytesWithDepth(dst, id, vs, opts, depth)
}

func encodeBytesWithDepth(dst []byte, id SchemeID, vs [][]byte, opts *Options, depth int) ([]byte, error) {
	dst = append(dst, byte(id))
	switch id {
	case PlainB:
		return encodePlainBytes(dst, vs), nil
	case DictB:
		return encodeDictBytes(dst, vs, opts, depth)
	case FSST:
		return encodeFSST(dst, vs, opts, depth)
	case ChunkedB:
		return encodeChunkedBytes(dst, vs, opts, depth)
	case ConstantB:
		return encodeConstantBytes(dst, vs)
	default:
		return nil, corruptf("%v is not a bytes scheme", id)
	}
}

// ---- Plain: uvarint length + raw bytes per value ----

func encodePlainBytes(dst []byte, vs [][]byte) []byte {
	for _, v := range vs {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

func decodePlainBytes(dst [][]byte, src []byte) ([][]byte, error) {
	for i := range dst {
		l, sz := binary.Uvarint(src)
		if sz <= 0 || l > uint64(len(src)-sz) {
			return nil, corruptf("plain bytes: truncated at value %d", i)
		}
		dst[i] = src[sz : sz+int(l)]
		src = src[sz+int(l):]
	}
	return dst, nil
}

// ---- Constant ----

func encodeConstantBytes(dst []byte, vs [][]byte) ([]byte, error) {
	if len(vs) == 0 {
		return binary.AppendUvarint(dst, 0), nil
	}
	for _, v := range vs {
		if !bytes.Equal(v, vs[0]) {
			return nil, ErrNotApplicable
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(vs[0])))
	return append(dst, vs[0]...), nil
}

func decodeConstantBytes(dst [][]byte, src []byte) ([][]byte, error) {
	l, sz := binary.Uvarint(src)
	if sz <= 0 || l > uint64(len(src)-sz) {
		return nil, corruptf("constant bytes: bad value")
	}
	v := src[sz : sz+int(l)]
	for i := range dst {
		dst[i] = v
	}
	return dst, nil
}

// ---- Dictionary ----
//
// payload := dictLen(uvarint) dictBlob(plain bytes) childCodes
//
// Codes are bit-packed wide enough for the reserved mask code (see Dict for
// integers); masked codes decode to an empty string.

func encodeDictBytes(dst []byte, vs [][]byte, opts *Options, depth int) ([]byte, error) {
	idx := make(map[string]int64, 64)
	var uniq []string
	for _, v := range vs {
		s := string(v)
		if _, ok := idx[s]; !ok {
			idx[s] = 0
			uniq = append(uniq, s)
		}
	}
	sort.Strings(uniq)
	for i, s := range uniq {
		idx[s] = int64(i)
	}
	codes := make([]int64, len(vs))
	for i, v := range vs {
		codes[i] = idx[string(v)]
	}
	dst = binary.AppendUvarint(dst, uint64(len(uniq)))
	blobs := make([][]byte, len(uniq))
	for i, s := range uniq {
		blobs[i] = []byte(s)
	}
	dict := encodePlainBytes(nil, blobs)
	dst = binary.AppendUvarint(dst, uint64(len(dict)))
	dst = append(dst, dict...)
	child, err := encodeBitPackWidth(nil, codes, maskCodeWidth(len(uniq)))
	if err != nil {
		return nil, err
	}
	return appendChild(dst, child), nil
}

func decodeDictBytes(dst [][]byte, src []byte) ([][]byte, error) {
	n := len(dst)
	dictLen, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, corruptf("dictb: bad dict length")
	}
	if dictLen > uint64(n)+1 {
		return nil, corruptf("dictb: dictionary of %d entries for %d values", dictLen, n)
	}
	src = src[sz:]
	blobLen, sz := binary.Uvarint(src)
	if sz <= 0 || blobLen > uint64(len(src)-sz) {
		return nil, corruptf("dictb: bad blob length")
	}
	blobs, err := decodePlainBytes(make([][]byte, dictLen), src[sz:sz+int(blobLen)])
	if err != nil {
		return nil, err
	}
	codeStream, _, err := readChild(src[sz+int(blobLen):])
	if err != nil {
		return nil, err
	}
	cp := getInt64Scratch(n)
	defer putInt64Scratch(cp)
	codes, err := DecodeIntsInto(*cp, codeStream)
	if err != nil {
		return nil, err
	}
	for i, c := range codes {
		switch {
		case c >= 0 && c < int64(dictLen):
			dst[i] = blobs[c]
		case c == int64(dictLen): // compliance mask entry
			dst[i] = nil
		default:
			return nil, corruptf("dictb: code %d out of range", c)
		}
	}
	return dst, nil
}

// ---- Chunked: flate over concatenation + cascaded length sub-column ----

func encodeChunkedBytes(dst []byte, vs [][]byte, opts *Options, depth int) ([]byte, error) {
	lens := make([]int64, len(vs))
	total := 0
	for i, v := range vs {
		lens[i] = int64(len(v))
		total += len(v)
	}
	cat := make([]byte, 0, total)
	for _, v := range vs {
		cat = append(cat, v...)
	}
	var err error
	if dst, err = encodeChildInts(dst, lens, opts, depth+1); err != nil {
		return nil, err
	}
	dst = binary.AppendUvarint(dst, uint64(total))
	return appendFlateChunks(dst, cat)
}

func decodeChunkedBytes(dst [][]byte, src []byte) ([][]byte, error) {
	lenStream, src, err := readChild(src)
	if err != nil {
		return nil, err
	}
	lp := getInt64Scratch(len(dst))
	defer putInt64Scratch(lp)
	lens, err := DecodeIntsInto(*lp, lenStream)
	if err != nil {
		return nil, err
	}
	total, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, corruptf("chunkedb: bad total length")
	}
	cat, err := readFlateChunks(src[sz:], int(total))
	if err != nil {
		return nil, err
	}
	off := 0
	for i, l := range lens {
		if l < 0 || off+int(l) > len(cat) {
			return nil, corruptf("chunkedb: lengths overflow payload")
		}
		dst[i] = cat[off : off+int(l)]
		off += int(l)
	}
	return dst, nil
}
