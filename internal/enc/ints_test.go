package enc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// intSchemes lists every integer scheme with a generator producing data the
// scheme is applicable to.
var intSchemes = []struct {
	id  SchemeID
	gen func(rng *rand.Rand, n int) []int64
}{
	{Plain, genUniform},
	{BitPack, genSmallNonNeg},
	{Varint, genSmallNonNeg},
	{ZigZagVar, genSmallSigned},
	{RLE, genRuns},
	{Dict, genLowCardinality},
	{Delta, genSorted},
	{DeltaDelta, genSorted},
	{FOR, genClustered},
	{PFOR, genClusteredWithOutliers},
	{FastBP128, genSmallSigned},
	{Constant, genConstant},
	{MainlyConst, genMainlyConstant},
	{Huffman, genLowCardinality},
	{BitShuffle, genSmallNonNeg},
	{Chunked, genUniform},
}

func genUniform(rng *rand.Rand, n int) []int64 {
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = int64(rng.Uint64())
	}
	return vs
}

func genSmallNonNeg(rng *rand.Rand, n int) []int64 {
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = int64(rng.Intn(100000))
	}
	return vs
}

func genSmallSigned(rng *rand.Rand, n int) []int64 {
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = int64(rng.Intn(20001) - 10000)
	}
	return vs
}

func genRuns(rng *rand.Rand, n int) []int64 {
	vs := make([]int64, 0, n)
	for len(vs) < n {
		v := int64(rng.Intn(10))
		run := rng.Intn(20) + 1
		for r := 0; r < run && len(vs) < n; r++ {
			vs = append(vs, v)
		}
	}
	return vs
}

func genLowCardinality(rng *rand.Rand, n int) []int64 {
	domain := []int64{7, 42, -5, 1000000, 0, 13}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = domain[rng.Intn(len(domain))]
	}
	return vs
}

func genSorted(rng *rand.Rand, n int) []int64 {
	vs := make([]int64, n)
	cur := int64(-500)
	for i := range vs {
		cur += int64(rng.Intn(100))
		vs[i] = cur
	}
	return vs
}

func genClustered(rng *rand.Rand, n int) []int64 {
	base := int64(1 << 40)
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = base + int64(rng.Intn(4096))
	}
	return vs
}

func genClusteredWithOutliers(rng *rand.Rand, n int) []int64 {
	vs := genClustered(rng, n)
	for i := range vs {
		if rng.Intn(100) < 5 {
			vs[i] += int64(rng.Intn(1 << 30))
		}
	}
	return vs
}

func genConstant(rng *rand.Rand, n int) []int64 {
	vs := make([]int64, n)
	c := int64(rng.Intn(1000))
	for i := range vs {
		vs[i] = c
	}
	return vs
}

func genMainlyConstant(rng *rand.Rand, n int) []int64 {
	vs := make([]int64, n)
	for i := range vs {
		if rng.Intn(100) < 90 {
			vs[i] = 99
		} else {
			vs[i] = int64(rng.Intn(1000))
		}
	}
	return vs
}

func TestIntSchemesRoundTrip(t *testing.T) {
	opts := DefaultOptions()
	for _, tc := range intSchemes {
		t.Run(tc.id.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for _, n := range []int{0, 1, 2, 127, 128, 129, 1000} {
				if n == 0 && (tc.id == Delta || tc.id == DeltaDelta || tc.id == MainlyConst) {
					continue // not applicable to empty input by design
				}
				vs := tc.gen(rng, n)
				encoded, err := EncodeIntsWith(nil, tc.id, vs, opts)
				if err != nil {
					t.Fatalf("n=%d: encode: %v", n, err)
				}
				got, err := DecodeInts(encoded, n)
				if err != nil {
					t.Fatalf("n=%d: decode: %v", n, err)
				}
				for i := range vs {
					if got[i] != vs[i] {
						t.Fatalf("n=%d: value %d = %d, want %d", n, i, got[i], vs[i])
					}
				}
			}
		})
	}
}

// Property: for any input, the cascade-selected encoding round-trips.
func TestCascadeRoundTripProperty(t *testing.T) {
	opts := DefaultOptions()
	opts.SampleSize = 128
	f := func(seed int64, kind uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(600)
		gen := intSchemes[int(kind)%len(intSchemes)].gen
		vs := gen(rng, n)
		encoded, err := EncodeInts(nil, vs, opts)
		if err != nil {
			return false
		}
		got, err := DecodeInts(encoded, n)
		if err != nil {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIntBoundaryValues(t *testing.T) {
	opts := DefaultOptions()
	vs := []int64{math.MaxInt64, math.MinInt64, 0, -1, 1, math.MaxInt64 - 1, math.MinInt64 + 1}
	for _, id := range []SchemeID{Plain, ZigZagVar, FastBP128, Chunked, BitShuffle} {
		encoded, err := EncodeIntsWith(nil, id, vs, opts)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		got, err := DecodeInts(encoded, len(vs))
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("%v: value %d = %d, want %d", id, i, got[i], vs[i])
			}
		}
	}
	// The selector must survive extreme ranges (delta overflow paths).
	encoded, err := EncodeInts(nil, vs, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInts(encoded, len(vs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("cascade: value %d = %d, want %d", i, got[i], vs[i])
		}
	}
}

func TestBitPackRejectsNegatives(t *testing.T) {
	if _, err := EncodeIntsWith(nil, BitPack, []int64{-1}, DefaultOptions()); err == nil {
		t.Fatal("BitPack accepted a negative value")
	}
}

func TestConstantRejectsVarying(t *testing.T) {
	if _, err := EncodeIntsWith(nil, Constant, []int64{1, 2}, DefaultOptions()); err == nil {
		t.Fatal("Constant accepted varying values")
	}
}

func TestDecodeIntsCorrupt(t *testing.T) {
	opts := DefaultOptions()
	vs := genLowCardinality(rand.New(rand.NewSource(1)), 500)
	for _, tc := range intSchemes {
		encoded, err := EncodeIntsWith(nil, tc.id, vs, opts)
		if err != nil {
			// Constant (varying data) and BitPack (negatives) legitimately
			// refuse this distribution.
			if tc.id == Constant || tc.id == BitPack {
				continue
			}
			t.Fatalf("%v: %v", tc.id, err)
		}
		// Truncations must error, not panic or return garbage silently.
		for _, cut := range []int{0, 1, len(encoded) / 2} {
			if cut >= len(encoded) {
				continue
			}
			if _, err := DecodeInts(encoded[:cut], 500); err == nil && cut < len(encoded)-8 {
				// Some truncations of fixed-width payloads can still parse;
				// only hard-fail when meaningfully truncated streams decode.
				t.Logf("%v: truncation to %d decoded without error", tc.id, cut)
			}
		}
	}
	if _, err := DecodeInts([]byte{}, 5); err == nil {
		t.Fatal("empty stream decoded")
	}
	if _, err := DecodeInts([]byte{255}, 5); err == nil {
		t.Fatal("unknown scheme decoded")
	}
}

func TestDictMaskEntry(t *testing.T) {
	opts := DefaultOptions()
	vs := []int64{10, 20, 10, 30, 20, 10}
	encoded, err := EncodeIntsWith(nil, Dict, vs, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInts(encoded, len(vs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("value %d = %d, want %d", i, got[i], vs[i])
		}
	}
	// The codes sub-stream must be wide enough to hold the mask code even
	// when the real code range is an exact power of two (4 values -> codes
	// 0..3 -> width must be 3, not 2).
	vs4 := []int64{1, 2, 3, 4, 1, 2, 3, 4}
	if w := maskCodeWidth(4); w != 3 {
		t.Fatalf("maskCodeWidth(4) = %d, want 3", w)
	}
	if _, err := EncodeIntsWith(nil, Dict, vs4, opts); err != nil {
		t.Fatal(err)
	}
}

func TestRLERunsHelper(t *testing.T) {
	values, lengths := rleRuns([]int64{2, 2, 2, 6, 6, 6, 6, 6, 3})
	wantV := []int64{2, 6, 3}
	wantL := []int64{3, 5, 1}
	if len(values) != 3 {
		t.Fatalf("runs = %d, want 3", len(values))
	}
	for i := range wantV {
		if values[i] != wantV[i] || lengths[i] != wantL[i] {
			t.Fatalf("run %d = (%d,%d), want (%d,%d)", i, values[i], lengths[i], wantV[i], wantL[i])
		}
	}
}

func TestSubOverflow(t *testing.T) {
	if _, ok := subOverflow(math.MaxInt64, -1); ok {
		t.Fatal("MaxInt64 - (-1) should overflow")
	}
	if _, ok := subOverflow(math.MinInt64, 1); ok {
		t.Fatal("MinInt64 - 1 should overflow")
	}
	if d, ok := subOverflow(5, 3); !ok || d != 2 {
		t.Fatalf("5-3 = (%d,%v)", d, ok)
	}
	if d, ok := subOverflow(-5, -3); !ok || d != -2 {
		t.Fatalf("-5-(-3) = (%d,%v)", d, ok)
	}
}

func TestStatsOf(t *testing.T) {
	s := statsOf([]int64{1, 1, 2, 3, 3, 3})
	if s.n != 6 || s.min != 1 || s.max != 3 || !s.sorted || s.hasNeg {
		t.Fatalf("stats = %+v", s)
	}
	if s.runs != 3 {
		t.Fatalf("runs = %d, want 3", s.runs)
	}
	if s.distinct != 3 {
		t.Fatalf("distinct = %d, want 3", s.distinct)
	}
	if s.majorityN != 3 {
		t.Fatalf("majorityN = %d, want 3", s.majorityN)
	}
}

// Compression sanity: on their target distributions, schemes must beat
// Plain by a healthy margin.
func TestCompressionWins(t *testing.T) {
	opts := DefaultOptions()
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		name   string
		id     SchemeID
		gen    func(*rand.Rand, int) []int64
		atMost float64 // fraction of plain size
	}{
		{"rle-on-runs", RLE, genRuns, 0.2},
		{"dict-on-lowcard", Dict, genLowCardinality, 0.2},
		{"delta-on-sorted", Delta, genSorted, 0.2},
		{"for-on-clustered", FOR, genClustered, 0.2},
		{"bitpack-on-small", BitPack, genSmallNonNeg, 0.4},
		{"mainlyconst", MainlyConst, genMainlyConstant, 0.4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			vs := c.gen(rng, 4096)
			plain, err := EncodeIntsWith(nil, Plain, vs, opts)
			if err != nil {
				t.Fatal(err)
			}
			encoded, err := EncodeIntsWith(nil, c.id, vs, opts)
			if err != nil {
				t.Fatal(err)
			}
			if ratio := float64(len(encoded)) / float64(len(plain)); ratio > c.atMost {
				t.Errorf("%v: ratio %.3f > %.3f (encoded %d, plain %d)",
					c.id, ratio, c.atMost, len(encoded), len(plain))
			}
		})
	}
}

func TestCascadePicksConstant(t *testing.T) {
	vs := make([]int64, 1000)
	for i := range vs {
		vs[i] = 42
	}
	if id := chooseIntScheme(vs, DefaultOptions(), 0); id != Constant {
		t.Fatalf("selector picked %v for constant data", id)
	}
}

func TestCascadeDepthLimit(t *testing.T) {
	// At MaxDepth the selector must not pick composite schemes.
	opts := DefaultOptions()
	rng := rand.New(rand.NewSource(9))
	vs := genRuns(rng, 2000)
	id := chooseIntScheme(vs, opts, opts.MaxDepth)
	switch id {
	case RLE, Dict, Delta, DeltaDelta, MainlyConst, Chunked, BitShuffle:
		t.Fatalf("composite scheme %v chosen at max depth", id)
	}
}
